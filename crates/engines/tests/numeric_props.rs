//! Property tests for the shared numeric kernel: WebAssembly arithmetic
//! semantics checked against independent Rust reference computations,
//! plus agreement between the direct `apply_*` entry points and the
//! resolved function pointers used by the compiled tiers.

use engines::numeric::{apply_binary, apply_unary, binary_fn, unary_fn};
use proptest::prelude::*;
use wasm_core::instr::Instr;

fn b32(op: Instr, a: i32, b: i32) -> Result<u64, engines::Trap> {
    apply_binary(op, a as u32 as u64, b as u32 as u64)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// i32 add/sub/mul wrap; the result is zero-extended into the slot.
    #[test]
    fn i32_arith_wraps(a in any::<i32>(), b in any::<i32>()) {
        prop_assert_eq!(b32(Instr::I32Add, a, b).unwrap(), a.wrapping_add(b) as u32 as u64);
        prop_assert_eq!(b32(Instr::I32Sub, a, b).unwrap(), a.wrapping_sub(b) as u32 as u64);
        prop_assert_eq!(b32(Instr::I32Mul, a, b).unwrap(), a.wrapping_mul(b) as u32 as u64);
    }

    /// Signed division traps exactly on divide-by-zero and MIN / -1;
    /// everywhere else it matches Rust's truncating division.
    #[test]
    fn i32_div_s_semantics(a in any::<i32>(), b in any::<i32>()) {
        let got = b32(Instr::I32DivS, a, b);
        if b == 0 || (a == i32::MIN && b == -1) {
            prop_assert!(got.is_err());
        } else {
            prop_assert_eq!(got.unwrap(), (a / b) as u32 as u64);
        }
    }

    /// rem_s traps only on zero; MIN % -1 is defined as 0 in wasm.
    #[test]
    fn i32_rem_s_semantics(a in any::<i32>(), b in any::<i32>()) {
        let got = b32(Instr::I32RemS, a, b);
        if b == 0 {
            prop_assert!(got.is_err());
        } else if a == i32::MIN && b == -1 {
            prop_assert_eq!(got.unwrap(), 0);
        } else {
            prop_assert_eq!(got.unwrap(), (a % b) as u32 as u64);
        }
    }

    /// Shift and rotate counts are taken modulo the bit width.
    #[test]
    fn i32_shifts_mask_count(a in any::<i32>(), s in any::<i32>()) {
        prop_assert_eq!(b32(Instr::I32Shl, a, s).unwrap(), a.wrapping_shl(s as u32) as u32 as u64);
        prop_assert_eq!(b32(Instr::I32ShrS, a, s).unwrap(), a.wrapping_shr(s as u32) as u32 as u64);
        prop_assert_eq!(
            b32(Instr::I32ShrU, a, s).unwrap(),
            ((a as u32).wrapping_shr(s as u32)) as u64
        );
        prop_assert_eq!(
            b32(Instr::I32Rotl, a, s).unwrap(),
            (a as u32).rotate_left(s as u32 & 31) as u64
        );
    }

    /// i64 division mirrors the i32 rules at 64 bits.
    #[test]
    fn i64_div_s_semantics(a in any::<i64>(), b in any::<i64>()) {
        let got = apply_binary(Instr::I64DivS, a as u64, b as u64);
        if b == 0 || (a == i64::MIN && b == -1) {
            prop_assert!(got.is_err());
        } else {
            prop_assert_eq!(got.unwrap(), (a / b) as u64);
        }
    }

    /// f64 min/max propagate NaN and order -0.0 below +0.0.
    #[test]
    fn f64_min_max(a in any::<f64>(), b in any::<f64>()) {
        let min = f64::from_bits(
            apply_binary(Instr::F64Min, a.to_bits(), b.to_bits()).unwrap() );
        let max = f64::from_bits(
            apply_binary(Instr::F64Max, a.to_bits(), b.to_bits()).unwrap() );
        if a.is_nan() || b.is_nan() {
            prop_assert!(min.is_nan());
            prop_assert!(max.is_nan());
        } else if a == 0.0 && b == 0.0 {
            // min picks a negative zero if present; max a positive one.
            prop_assert_eq!(min.is_sign_negative(), a.is_sign_negative() || b.is_sign_negative());
            prop_assert_eq!(max.is_sign_positive(), a.is_sign_positive() || b.is_sign_positive());
        } else {
            prop_assert_eq!(min, a.min(b));
            prop_assert_eq!(max, a.max(b));
        }
    }

    /// f64.nearest rounds half-to-even, unlike Rust's `round`.
    #[test]
    fn f64_nearest_half_even(i in -1000i64..1000) {
        let x = i as f64 + 0.5;
        let got = f64::from_bits(apply_unary(Instr::F64Nearest, x.to_bits()).unwrap());
        // Round-half-even: i.5 rounds to the even of {i, i+1}.
        let even = if i % 2 == 0 { i as f64 } else { (i + 1) as f64 };
        prop_assert_eq!(got, even);
    }

    /// i32.trunc_f64_s traps outside the representable range and
    /// truncates toward zero inside it.
    #[test]
    fn trunc_traps_out_of_range(x in any::<f64>()) {
        let got = apply_unary(Instr::I32TruncF64S, x.to_bits());
        if x.is_nan() || x <= -2147483649.0 || x >= 2147483648.0 {
            prop_assert!(got.is_err());
        } else {
            prop_assert_eq!(got.unwrap(), (x.trunc() as i32) as u32 as u64);
        }
    }

    /// clz/ctz/popcnt agree with the hardware intrinsics.
    #[test]
    fn bit_counts(a in any::<i32>()) {
        let v = a as u32 as u64;
        prop_assert_eq!(apply_unary(Instr::I32Clz, v).unwrap(), (a as u32).leading_zeros() as u64);
        prop_assert_eq!(apply_unary(Instr::I32Ctz, v).unwrap(), (a as u32).trailing_zeros() as u64);
        prop_assert_eq!(apply_unary(Instr::I32Popcnt, v).unwrap(), (a as u32).count_ones() as u64);
    }

    /// The resolved function pointers (compiled-tier fast path) return the
    /// same bits as the direct `apply_*` dispatch for every operator.
    #[test]
    fn resolved_fns_match_dispatch(a in any::<u64>(), b in any::<u64>()) {
        use Instr::*;
        for op in [
            I32Add, I32Sub, I32Mul, I32DivS, I32DivU, I32RemS, I32RemU, I32And, I32Or,
            I32Xor, I32Shl, I32ShrS, I32ShrU, I32Rotl, I32Rotr, I32Eq, I32LtS, I32GtU,
            I64Add, I64Mul, I64DivS, I64Shl, I64LtS, F32Add, F32Mul, F32Div, F32Lt,
            F64Add, F64Sub, F64Mul, F64Div, F64Min, F64Max, F64Copysign, F64Eq, F64Le,
        ] {
            let direct = apply_binary(op, a, b);
            let resolved = binary_fn(op)(a, b);
            match (direct, resolved) {
                (Ok(x), Ok(y)) => prop_assert_eq!(x, y, "mismatch on {:?}", op),
                (Err(_), Err(_)) => {}
                _ => prop_assert!(false, "trap disagreement on {:?}", op),
            }
        }
        for op in [
            I32Clz, I32Ctz, I32Popcnt, I32Eqz, I64Eqz, I64Clz, I32WrapI64,
            I64ExtendI32S, I64ExtendI32U, F64Abs, F64Neg, F64Sqrt, F64Ceil, F64Floor,
            F64Trunc, F64Nearest, F32DemoteF64, F64PromoteF32, I32TruncF64S,
            F64ConvertI32S, F64ReinterpretI64, I64ReinterpretF64,
        ] {
            let direct = apply_unary(op, a);
            let resolved = unary_fn(op)(a);
            match (direct, resolved) {
                (Ok(x), Ok(y)) => prop_assert_eq!(x, y, "mismatch on {:?}", op),
                (Err(_), Err(_)) => {}
                _ => prop_assert!(false, "trap disagreement on {:?}", op),
            }
        }
    }
}
