//! Property tests for the IR verifier: arbitrary functions — random WaCC
//! programs through the real compiler, and randomly-shaped hand-built
//! modules with `br_table` dispatch — must pass the `wabench-analysis`
//! verifier after lowering and after every optimizing pipeline, with the
//! observable side-effect trace preserved end to end.
//!
//! In debug builds `optimize` additionally self-verifies after each
//! individual pass (a violation panics naming the pass); the assertions
//! here pin the end-state contract so it also holds under `--release`.

use std::rc::Rc;

use engines::jit::ir::RFunc;
use engines::jit::opt::{optimize, PassConfig};
use engines::jit::{lower, verify, Tier};
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use wasm_core::builder::ModuleBuilder;
use wasm_core::instr::{BlockType, Instr, MemArg};
use wasm_core::module::Module;
use wasm_core::types::{FuncType, ValType};

fn next(rng: &mut u64, m: u64) -> u64 {
    *rng ^= *rng << 13;
    *rng ^= *rng >> 7;
    *rng ^= *rng << 17;
    *rng % m
}

/// A random WaCC program exercising branches, loops, calls, and memory.
fn gen_source(seed: u64) -> String {
    let mut rng = seed | 1;
    let k1 = next(&mut rng, 64);
    let k2 = next(&mut rng, 1 << 16);
    let shift = next(&mut rng, 31) + 1;
    let addr_mask = 65528; // keep stores inside page 0, 8-byte aligned
    let arms = 2 + next(&mut rng, 4);
    let mut body = String::new();
    for arm in 0..arms {
        body.push_str(&format!(
            "        if (remu(t, {arms}) == {arm}) {{ t = t + helper(t ^ {}); }}\n",
            next(&mut rng, 1 << 12)
        ));
    }
    format!(
        "memory 1;
export fn test(a: i32, b: i32) -> i32 {{
    let t: i32 = a * {k1} + {k2};
    let i: i32 = 0;
    while (i < 8) {{
        store_i32((t & {addr_mask}), t);
{body}        if (t > 100000) {{ t = t - b; }} else {{ t = t + (b >>> {shift}); }}
        t = t ^ load_i32((i * 8) & {addr_mask});
        i = i + 1;
    }}
    return t;
}}
fn helper(x: i32) -> i32 {{
    if (x < 0) {{ return 0 - x; }}
    return x * 3 + 1;
}}"
    )
}

/// A random hand-built module centered on `br_table` dispatch (which the
/// WaCC compiler never emits) plus globals and memory traffic.
fn gen_br_table_module(seed: u64) -> Module {
    let mut rng = seed | 1;
    let narms = 2 + next(&mut rng, 5) as u32;
    let mut b = ModuleBuilder::new();
    b.memory(1, Some(2));
    let g = b.global(
        ValType::I32,
        true,
        wasm_core::module::ConstExpr::I32(next(&mut rng, 100) as i32),
    );
    let f = b.begin_func(FuncType::new(&[ValType::I32], &[ValType::I32]));
    let acc = b.new_local(ValType::I32);
    // narms nested blocks, innermost holding the br_table; each arm sets
    // a distinct accumulator value and a distinct store offset.
    for _ in 0..=narms {
        b.emit(Instr::Block(BlockType::Empty));
    }
    b.emit(Instr::LocalGet(0));
    b.emit_br_table((0..narms).collect(), narms);
    b.emit(Instr::End);
    for arm in 0..narms {
        let bits = next(&mut rng, 1 << 20) as i32;
        b.emit(Instr::I32Const(bits));
        b.emit(Instr::LocalSet(acc));
        b.emit(Instr::I32Const(arm as i32 * 8));
        b.emit(Instr::LocalGet(acc));
        b.emit(Instr::I32Store(MemArg::offset(16, 2)));
        b.emit(Instr::Br(narms - arm - 1));
        b.emit(Instr::End);
    }
    b.emit(Instr::LocalGet(acc));
    b.emit(Instr::GlobalGet(g));
    b.emit(Instr::I32Add);
    b.emit(Instr::GlobalSet(g));
    b.emit(Instr::GlobalGet(g));
    b.finish_func();
    b.export_func("dispatch", f);
    b.build()
}

/// Lowers every function of `module` and runs it through both optimizing
/// pipelines, asserting verifier cleanliness and trace preservation.
fn check_module(module: &Module) -> Result<(), TestCaseError> {
    wasm_core::validate::validate(module).expect("validate");
    let rc = Rc::new(module.clone());
    for config in [PassConfig::standard(), PassConfig::aggressive()] {
        for f in &rc.funcs {
            let mut rf: RFunc = lower::lower(&rc, f).expect("lower");
            let lowered = verify::verify_rfunc(&rf);
            prop_assert!(lowered.is_empty(), "lowered code: {lowered:?}");
            let trace_before = verify::effect_trace(&rf);
            optimize(&mut rf, &config);
            let after = verify::verify_rfunc(&rf);
            prop_assert!(after.is_empty(), "optimized code: {after:?}");
            let diverged =
                analysis::verify::effects_preserved("pipeline", &trace_before, &verify::effect_trace(&rf));
            prop_assert!(diverged.is_none(), "{}", diverged.unwrap());
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn random_wacc_programs_verify_through_every_pipeline(seed in any::<u64>()) {
        let src = gen_source(seed);
        let bytes = wacc::compile_to_bytes(&src, wacc::OptLevel::O2).expect("compile");
        let module = wasm_core::decode::decode(&bytes).expect("decode");
        check_module(&module)?;
    }

    #[test]
    fn random_br_table_modules_verify_through_every_pipeline(seed in any::<u64>()) {
        let module = gen_br_table_module(seed);
        check_module(&module)?;
    }

    #[test]
    fn compile_module_self_verifies_all_tiers(seed in any::<u64>()) {
        // End-to-end: in debug builds the per-pass verifier inside
        // `optimize` fires during `compile_module` itself.
        let module = Rc::new(gen_br_table_module(seed));
        for tier in [Tier::Singlepass, Tier::Cranelift, Tier::Llvm] {
            let (_, stats) = engines::jit::compile_module(module.clone(), tier).expect("compile");
            if verify::enabled() {
                prop_assert!(stats.passes.verify_ns > 0, "verify time unrecorded at {tier}");
            }
        }
    }
}
