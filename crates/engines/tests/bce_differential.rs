//! Differential property tests for proof-carrying check elimination.
//!
//! Random WaCC programs with near-bounds memory accesses, guarded and
//! unguarded divisions, and float truncations run through the tree
//! interpreter (the reference semantics: every check performed by the
//! host) and through the JIT at all three tiers, including the two that
//! run the bounds-check-elimination pass. For every seed and input the
//! engines must agree on the result, on the trap (kind *and* site: a
//! check eliminated too eagerly traps later, or not at all, and leaves
//! different side effects behind), on final globals, and on the final
//! linear-memory image — so divergence in trap *order* is caught even
//! when the trap kind matches.

use std::rc::Rc;

use engines::error::Trap;
use engines::interp::tree::TreeCode;
use engines::jit::{compile_module, Tier};
use engines::profiler::NullProfiler;
use engines::store::{Imports, Runtime};
use proptest::prelude::*;
use wasm_core::module::Module;
use wasm_core::types::{FuncType, ValType, Value};

/// Deterministic no-op stubs for the WASI imports every WaCC module
/// declares (none of the generated programs actually call them).
fn stub_imports() -> Imports {
    let mut imports = Imports::new();
    let i32x = |n: usize| vec![ValType::I32; n];
    for (name, params, ret) in [
        ("fd_write", i32x(4), true),
        ("fd_read", i32x(4), true),
        ("proc_exit", i32x(1), false),
        ("random_get", i32x(2), true),
    ] {
        imports.func(
            "wasi_snapshot_preview1",
            name,
            FuncType::new(&params, if ret { &[ValType::I32] } else { &[] }),
            move |_, _| Ok(ret.then_some(Value::I32(0))),
        );
    }
    imports.func(
        "wasi_snapshot_preview1",
        "clock_time_get",
        FuncType::new(&[ValType::I32, ValType::I64, ValType::I32], &[ValType::I32]),
        |_, _| Ok(Some(Value::I32(0))),
    );
    imports
}

fn next(rng: &mut u64, m: u64) -> u64 {
    *rng ^= *rng << 13;
    *rng ^= *rng >> 7;
    *rng ^= *rng << 17;
    *rng % m
}

/// A random program whose memory accesses hug the 64 KiB boundary, whose
/// divisions are sometimes guarded and sometimes not, and whose
/// truncations see values that occasionally overflow the target width.
fn gen_source(seed: u64) -> String {
    let mut rng = seed | 1;
    // Loop bound: sometimes provably in bounds, sometimes walking off
    // the end of page 0 mid-loop.
    let n = 8 + next(&mut rng, 24); // 8..32 iterations
    let stride = [4, 8, 512, 4096][next(&mut rng, 4) as usize];
    let base = 65536u64.saturating_sub(stride * next(&mut rng, 20));
    let divisor_mod = 1 + next(&mut rng, 6); // a % k: zero when k == 1 + a multiple
    let scale = 1 + next(&mut rng, 1000);
    format!(
        "memory 1;
export fn test(a: i32, b: i32) -> i32 {{
    let t: i32 = a;
    let f: f64 = (b as f64) * {scale}.0;
    for (let i: i32 = 0; i < {n}; i = i + 1) {{
        store_i32({base} + i * {stride}, t);
        t = t + load_i32({base} + i * {stride});
        let d: i32 = a % {divisor_mod};
        if (b > 4) {{
            if (d != 0) {{ t = t / d; }}
        }} else {{
            t = t + divu(i + 1, {divisor_mod});
        }}
        t = t ^ (f as i32);
        f = f * 0.5;
    }}
    return t;
}}"
    )
}

/// FNV-1a over the final linear-memory image plus globals: any
/// difference in which stores executed before a trap shows up here.
fn state_fingerprint(rt: &Runtime) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut eat = |byte: u8| {
        h ^= u64::from(byte);
        h = h.wrapping_mul(0x1000_0000_01b3);
    };
    if let Some(mem) = &rt.memory {
        let len = mem.size_bytes() as u32;
        for &b in mem.slice(0, len).expect("whole memory") {
            eat(b);
        }
    }
    for &g in &rt.globals {
        for b in g.to_le_bytes() {
            eat(b);
        }
    }
    h
}

type Outcome = (Result<Option<u64>, Trap>, u64);

fn run_tree(module: &Rc<Module>, idx: u32, args: &[u64]) -> Outcome {
    let code = TreeCode::load(module.clone()).expect("tree load");
    let mut rt =
        Runtime::instantiate(module, &stub_imports(), Box::new(())).expect("instantiate");
    let r = code.invoke(&mut rt, idx, args, &mut NullProfiler);
    (r, state_fingerprint(&rt))
}

fn run_jit(module: &Rc<Module>, tier: Tier, idx: u32, args: &[u64]) -> Outcome {
    let (code, _) = compile_module(module.clone(), tier).expect("compile");
    let mut rt =
        Runtime::instantiate(module, &stub_imports(), Box::new(())).expect("instantiate");
    let r = code.invoke(&mut rt, idx, args, &mut NullProfiler);
    (r, state_fingerprint(&rt))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn jit_with_bce_matches_tree_interpreter(seed in any::<u64>(), a in -8i32..8, b in 0i32..8) {
        let src = gen_source(seed);
        let bytes = wacc::compile_to_bytes(&src, wacc::OptLevel::O2).expect("compile");
        let module = Rc::new(wasm_core::decode::decode(&bytes).expect("decode"));
        wasm_core::validate::validate(&module).expect("validate");
        let idx = module.exported_func("test").expect("exported");
        let args = [a as u32 as u64, b as u32 as u64];

        let reference = run_tree(&module, idx, &args);
        for tier in [Tier::Singlepass, Tier::Cranelift, Tier::Llvm] {
            let got = run_jit(&module, tier, idx, &args);
            prop_assert_eq!(
                &got,
                &reference,
                "tier {} diverges from the tree interpreter on seed {} args ({}, {})\n{}",
                tier, seed, a, b, src
            );
        }
    }
}
