//! Property tests for `LinearMemory`: reads and writes must agree with a
//! flat byte-array reference model, bounds checks must be exact, and
//! `grow` must respect limits and preserve contents.

use engines::memory::LinearMemory;
use proptest::prelude::*;
use wasm_core::types::Limits;

const PAGE: u64 = 65536;

#[derive(Debug, Clone)]
enum Op {
    Write(u32, u32, [u8; 8]),
    Read(u32, u32),
    Grow(u32),
}

fn op_strategy(max_pages: u32) -> impl Strategy<Value = Op> {
    let span = max_pages as u64 * PAGE;
    prop_oneof![
        4 => (0..span as u32, 0u32..16, any::<[u8; 8]>()).prop_map(|(a, o, d)| Op::Write(a, o, d)),
        4 => (0..span as u32, 0u32..16).prop_map(|(a, o)| Op::Read(a, o)),
        1 => (0u32..3).prop_map(Op::Grow),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every read/write/grow agrees with a plain `Vec<u8>` model, and every
    /// out-of-bounds access traps in both.
    #[test]
    fn memory_matches_flat_model(
        ops in proptest::collection::vec(op_strategy(4), 1..200)
    ) {
        let max = 3u32;
        let mut mem = LinearMemory::new(Limits { min: 1, max: Some(max) });
        let mut model: Vec<u8> = vec![0; PAGE as usize];

        for op in ops {
            match op {
                Op::Write(addr, offset, data) => {
                    let ea = addr as u64 + offset as u64;
                    let real = mem.write::<8>(addr, offset, data);
                    if ea + 8 <= model.len() as u64 {
                        prop_assert!(real.is_ok(), "in-bounds write trapped at {ea}");
                        model[ea as usize..ea as usize + 8].copy_from_slice(&data);
                    } else {
                        prop_assert!(real.is_err(), "oob write succeeded at {ea}");
                    }
                }
                Op::Read(addr, offset) => {
                    let ea = addr as u64 + offset as u64;
                    let real = mem.read::<8>(addr, offset);
                    if ea + 8 <= model.len() as u64 {
                        let expect: [u8; 8] =
                            model[ea as usize..ea as usize + 8].try_into().unwrap();
                        prop_assert_eq!(real.expect("in-bounds read"), expect);
                    } else {
                        prop_assert!(real.is_err(), "oob read succeeded at {ea}");
                    }
                }
                Op::Grow(delta) => {
                    let old_pages = (model.len() as u64 / PAGE) as u32;
                    let got = mem.grow(delta);
                    if old_pages + delta <= max {
                        prop_assert_eq!(got, old_pages as i32);
                        model.resize(((old_pages + delta) as u64 * PAGE) as usize, 0);
                    } else {
                        prop_assert_eq!(got, -1, "grow past max succeeded");
                    }
                }
            }
            prop_assert_eq!(mem.size_bytes(), model.len());
        }

        // Full-content agreement at the end.
        let all = mem.slice(0, model.len() as u32).expect("full slice");
        prop_assert_eq!(all, &model[..]);
        // Peak covers the current size; resident never exceeds peak.
        prop_assert!(mem.peak_bytes() >= mem.size_bytes());
        prop_assert!(mem.resident_bytes() <= mem.peak_bytes());
    }

    /// Typed loads round-trip typed stores at arbitrary aligned and
    /// unaligned addresses.
    #[test]
    fn typed_round_trip(addr in 0u32..(PAGE as u32 - 8), v32 in any::<i32>(), v64 in any::<i64>()) {
        let mut mem = LinearMemory::new(Limits { min: 1, max: Some(1) });
        mem.store_i32(addr, 0, v32).unwrap();
        prop_assert_eq!(mem.load_i32(addr, 0).unwrap(), v32);
        mem.store_i64(addr, 0, v64).unwrap();
        prop_assert_eq!(mem.load_i64(addr, 0).unwrap(), v64);
        // Little-endian byte order, as wasm requires.
        let lo = mem.read::<1>(addr, 0).unwrap()[0];
        prop_assert_eq!(lo, v64 as u8);
    }

    /// `grow` preserves existing contents verbatim.
    #[test]
    fn grow_preserves_contents(data in proptest::collection::vec(any::<u8>(), 1..512)) {
        let mut mem = LinearMemory::new(Limits { min: 1, max: Some(4) });
        mem.write_slice(100, &data).unwrap();
        assert_eq!(mem.grow(2), 1);
        let back = mem.slice(100, data.len() as u32).unwrap();
        prop_assert_eq!(back, &data[..]);
        // The newly-grown region reads as zeros.
        let fresh = mem.slice(PAGE as u32, 64).unwrap();
        prop_assert!(fresh.iter().all(|b| *b == 0));
    }
}
