//! Property tests for the AOT artifact codec: decoding must be total
//! (error, never panic) over arbitrary bytes, and every compiled suite
//! kernel must survive a serialize/deserialize/execute round trip.

use engines::jit::aot::{from_bytes, to_bytes};
use engines::jit::{compile_module, Tier};
use proptest::prelude::*;
use std::rc::Rc;
use wasm_core::builder::ModuleBuilder;
use wasm_core::instr::Instr;
use wasm_core::types::{FuncType, ValType};

fn sample_bytes(tier: Tier) -> Vec<u8> {
    let mut b = ModuleBuilder::new();
    b.memory(1, Some(4));
    let f = b.begin_func(FuncType::new(&[ValType::I64], &[ValType::I64]));
    b.emit(Instr::LocalGet(0));
    b.emit(Instr::I64Const(0x0123_4567_89ab_cdef));
    b.emit(Instr::I64Xor);
    b.finish_func();
    b.export_func("f", f);
    let m = b.build();
    wasm_core::validate::validate(&m).unwrap();
    let (code, _) = compile_module(Rc::new(m), tier).unwrap();
    to_bytes(&code, tier)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary bytes never panic the decoder.
    #[test]
    fn garbage_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = from_bytes(&bytes);
    }

    /// Two-bit corruption of a real artifact either fails cleanly or
    /// still decodes; it never panics. (Single-bit flips are covered
    /// exhaustively by `every_single_bitflip_decodes_or_errors`.)
    #[test]
    fn bitflip_never_panics(
        pos1 in 0usize..4096, bit1 in 0u8..8,
        pos2 in 0usize..4096, bit2 in 0u8..8,
    ) {
        let mut bytes = sample_bytes(Tier::Cranelift);
        let n = bytes.len();
        bytes[pos1 % n] ^= 1 << bit1;
        bytes[pos2 % n] ^= 1 << bit2;
        let _ = from_bytes(&bytes);
    }

    /// Truncation at every prefix length fails cleanly.
    #[test]
    fn truncation_never_panics(cut_frac in 0.0f64..1.0) {
        let bytes = sample_bytes(Tier::Llvm);
        let cut = ((bytes.len() - 1) as f64 * cut_frac) as usize;
        prop_assert!(from_bytes(&bytes[..cut]).is_err());
    }
}

/// An artifact compiled from a real program, so the encoded stream
/// contains every op family the codec knows: constants, moves, fused
/// binaries, loads/stores, branches, compare-branches, calls, returns.
fn rich_artifact(tier: Tier) -> Vec<u8> {
    let src = r#"
        fn mix(x: i32, y: i32) -> i32 {
            return (x * 31 + y) ^ (x >> 3);
        }

        export fn run(n: i32) -> i32 {
            let acc: i32 = -n;
            for (let i: i32 = 0; i < n; i += 1) {
                store_i32(64 + (i % 16) * 4, acc);
                acc = mix(acc, load_i32(64 + ((i + 1) % 16) * 4));
                if (acc > 1000000) { acc = acc - 2000000; }
            }
            return acc;
        }
    "#;
    let wasm = wacc::compile_to_bytes(src, wacc::OptLevel::O2).expect("compile");
    let module = wasm_core::decode::decode(&wasm).expect("decode");
    wasm_core::validate::validate(&module).expect("valid");
    let (code, _) = compile_module(Rc::new(module), tier).expect("lower");
    to_bytes(&code, tier)
}

/// Exhaustive single-bit corruption: every possible one-bit flip of a
/// real artifact decodes or errors — never panics, never aborts.
#[test]
fn every_single_bitflip_decodes_or_errors() {
    for bytes in [sample_bytes(Tier::Cranelift), rich_artifact(Tier::Llvm)] {
        let mut work = bytes.clone();
        for pos in 0..bytes.len() {
            for bit in 0..8 {
                work[pos] ^= 1 << bit;
                let _ = from_bytes(&work);
                work[pos] ^= 1 << bit; // restore
            }
        }
    }
}

/// Every tier's artifact round-trips bit-exactly and executes.
#[test]
fn all_tiers_round_trip_and_execute() {
    use engines::profiler::NullProfiler;
    use engines::{Imports, Runtime};
    for tier in [Tier::Singlepass, Tier::Cranelift, Tier::Llvm] {
        let bytes = sample_bytes(tier);
        let (code, got_tier) = from_bytes(&bytes).expect("decode");
        assert_eq!(got_tier, tier);
        // Re-encoding the decoded artifact is byte-identical (canonical codec).
        assert_eq!(to_bytes(&code, tier), bytes, "non-canonical encoding for {tier:?}");
        let mut rt = Runtime::instantiate(&code.module, &Imports::new(), Box::new(())).unwrap();
        let idx = code.module.exported_func("f").unwrap();
        let out = code
            .invoke(&mut rt, idx, &[0xffff_0000_ffff_0000], &mut NullProfiler)
            .unwrap();
        assert_eq!(out, Some(0xffff_0000_ffff_0000 ^ 0x0123_4567_89ab_cdef));
    }
}
