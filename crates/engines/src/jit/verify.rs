//! Adapter between the register IR and the `wabench-analysis` verifier.
//!
//! [`view_of`] lowers an [`RFunc`] into the substrate-neutral
//! [`IrView`] the `analysis` crate checks: per op, the registers read
//! and written, the branch targets, whether control falls through, and a
//! rendering of the op's observable side effect. The pass driver in
//! `opt` calls [`check`] / [`check_pass`] after lowering and after every
//! pass when verification is [`enabled`] (debug builds, or the
//! `verify-ir` feature in release builds).
//!
//! Effect renderings deliberately contain no register numbers — copy
//! propagation renames registers freely — but do pin down everything a
//! pass must not change: the memory op and its constant offset, the
//! global index, the callee and arity. Trapping arithmetic is *not* part
//! of the trace: constant folding only rewrites a div/rem/trunc after
//! proving it cannot trap, which legitimately removes the trap site.

use crate::jit::ir::{RFunc, ROp, Reg};
use analysis::verify::{effect_trace_all, effects_preserved, verify, IrView, OpInfo, Violation};

/// Whether IR verification is active in this build.
pub fn enabled() -> bool {
    cfg!(any(debug_assertions, feature = "verify-ir"))
}

fn op_name(op: &ROp) -> &'static str {
    match op {
        ROp::Const { .. } => "Const",
        ROp::Move { .. } => "Move",
        ROp::Bin { .. } => "Bin",
        ROp::Bin2 { .. } => "Bin2",
        ROp::BinImm { .. } => "BinImm",
        ROp::Un { .. } => "Un",
        ROp::Load { .. } => "Load",
        ROp::Store { .. } => "Store",
        ROp::Select { .. } => "Select",
        ROp::GlobalGet { .. } => "GlobalGet",
        ROp::GlobalSet { .. } => "GlobalSet",
        ROp::MemSize { .. } => "MemSize",
        ROp::MemGrow { .. } => "MemGrow",
        ROp::Jump { .. } => "Jump",
        ROp::BrIf { .. } => "BrIf",
        ROp::BrIfZ { .. } => "BrIfZ",
        ROp::BrCmp { .. } => "BrCmp",
        ROp::BrCmpZ { .. } => "BrCmpZ",
        ROp::BrTable { .. } => "BrTable",
        ROp::Call { .. } => "Call",
        ROp::CallIndirect { .. } => "CallIndirect",
        ROp::Ret { .. } => "Ret",
        ROp::Trap => "Trap",
        ROp::Nop => "Nop",
    }
}

fn op_effect(op: &ROp) -> Option<String> {
    match *op {
        ROp::Store { op, offset, .. } => Some(format!("store {op:?}+{offset}")),
        ROp::GlobalSet { idx, .. } => Some(format!("global.set {idx}")),
        ROp::MemGrow { .. } => Some("memory.grow".to_string()),
        ROp::Call { f, nargs, ret, .. } => Some(format!("call {f} nargs={nargs} ret={ret}")),
        ROp::CallIndirect { type_idx, nargs, ret, .. } => {
            Some(format!("call_indirect type={type_idx} nargs={nargs} ret={ret}"))
        }
        _ => None,
    }
}

/// Builds the verifier's view of `f`.
pub fn view_of(f: &RFunc) -> IrView {
    let ops = f
        .ops
        .iter()
        .map(|op| {
            // `ROp::uses()` reports `[None; 3]` for calls ("handled
            // specially" everywhere): expand the contiguous argument
            // block, and the element-index register for indirect calls.
            let mut uses: Vec<u32> =
                op.uses().into_iter().flatten().map(u32::from).collect();
            match *op {
                ROp::Call { args, nargs, .. } => {
                    uses.extend((args..args + nargs as Reg).map(u32::from));
                }
                ROp::CallIndirect { elem, args, nargs, .. } => {
                    uses.push(u32::from(elem));
                    uses.extend((args..args + nargs as Reg).map(u32::from));
                }
                _ => {}
            }
            let targets = match *op {
                ROp::BrTable { table, .. } => f.tables[table as usize].clone(),
                _ => op.target().into_iter().collect(),
            };
            OpInfo {
                name: op_name(op),
                uses,
                def: op.def().map(u32::from),
                targets,
                falls_through: !op.is_terminator(),
                effect: op_effect(op),
            }
        })
        .collect();
    IrView {
        ops,
        nregs: u32::from(f.nregs),
        // Parameters and zero-initialized locals hold values on entry.
        entry_defined: u32::from(f.nlocals),
    }
}

/// Runs the verifier over `f`, returning all violations.
pub fn verify_rfunc(f: &RFunc) -> Vec<Violation> {
    verify(&view_of(f))
}

/// The function's observable side-effect trace in linear op order. The
/// pipeline never deletes an effectful op (it can only rewrite in place
/// or no-op pure defs), so every pass must preserve this exactly.
pub fn effect_trace(f: &RFunc) -> Vec<String> {
    effect_trace_all(&view_of(f))
}

fn fail(stage: &str, f: &RFunc, violations: &[Violation]) -> ! {
    let mut msg = format!(
        "IR verification failed after `{stage}` \
         (nregs={}, nlocals={}, {} ops): {} violation(s)",
        f.nregs,
        f.nlocals,
        f.ops.len(),
        violations.len()
    );
    for v in violations {
        msg.push_str("\n  - ");
        msg.push_str(&v.to_string());
    }
    if f.ops.len() <= 200 {
        msg.push_str("\nops:");
        for (i, op) in f.ops.iter().enumerate() {
            msg.push_str(&format!("\n  {i:4}: {op:?}"));
        }
    }
    panic!("{msg}");
}

/// Verifies `f` after `stage` (e.g. `"lower"`), panicking with full
/// context on any violation.
pub fn check(stage: &str, f: &RFunc) {
    let violations = verify_rfunc(f);
    if !violations.is_empty() {
        fail(stage, f, &violations);
    }
}

/// Verifies `f` after the pass named `pass` and checks the side-effect
/// trace against `before` (taken just before the pass ran).
pub fn check_pass(pass: &str, f: &RFunc, before: &[String]) {
    let mut violations = verify_rfunc(f);
    if let Some(v) = effects_preserved(pass, before, &effect_trace(f)) {
        violations.push(v);
    }
    if !violations.is_empty() {
        fail(pass, f, &violations);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn call_arguments_are_expanded_as_uses() {
        let call = ROp::Call { f: 2, args: 3, nargs: 2, ret: true };
        let f = RFunc {
            ops: vec![call, ROp::Ret { rs: 3, has: true }],
            nparams: 0,
            nlocals: 0,
            nregs: 5,
            result: true,
            tables: Vec::new(),
        };
        let view = view_of(&f);
        assert_eq!(view.ops[0].uses, vec![3, 4]);
        assert_eq!(view.ops[0].def, Some(3));

        let ind = ROp::CallIndirect { type_idx: 0, elem: 2, args: 3, nargs: 1, ret: false };
        let f2 = RFunc { ops: vec![ind, ROp::Ret { rs: 0, has: false }], nregs: 5, ..f };
        let view2 = view_of(&f2);
        assert_eq!(view2.ops[0].uses, vec![2, 3]);
        assert_eq!(view2.ops[0].def, None);
    }

    #[test]
    fn br_table_targets_come_from_the_pool() {
        let f = RFunc {
            ops: vec![
                ROp::Const { rd: 0, bits: 1 },
                ROp::BrTable { idx: 0, table: 0 },
                ROp::Ret { rs: 0, has: false },
                ROp::Ret { rs: 0, has: false },
            ],
            nparams: 0,
            nlocals: 0,
            nregs: 1,
            result: false,
            tables: vec![vec![2, 3, 2]],
        };
        let view = view_of(&f);
        assert_eq!(view.ops[1].targets, vec![2, 3, 2]);
        assert!(!view.ops[1].falls_through);
        assert!(verify_rfunc(&f).is_empty());
    }

    #[test]
    fn effect_trace_has_no_registers() {
        use wasm_core::instr::{Instr, MemArg};
        let store = Instr::I32Store(MemArg { align: 2, offset: 16 });
        let f = RFunc {
            ops: vec![
                ROp::Const { rd: 0, bits: 0 },
                ROp::Store { op: store, addr: 0, val: 0, offset: 16 },
                ROp::Ret { rs: 0, has: false },
            ],
            nparams: 0,
            nlocals: 0,
            nregs: 1,
            result: false,
            tables: Vec::new(),
        };
        let trace = effect_trace(&f);
        assert_eq!(trace.len(), 1);
        assert!(trace[0].contains("+16"), "{trace:?}");

        // Renaming the registers must not perturb the trace.
        let mut g = f.clone();
        g.nregs = 2;
        g.ops[0] = ROp::Const { rd: 1, bits: 0 };
        g.ops[1] = ROp::Store { op: store, addr: 1, val: 1, offset: 16 };
        assert_eq!(effect_trace(&g), trace);
    }

    #[test]
    fn use_before_def_is_caught_through_the_adapter() {
        let f = RFunc {
            ops: vec![
                ROp::Move { rd: 0, rs: 1 }, // r1 is a stack slot, never assigned
                ROp::Ret { rs: 0, has: true },
            ],
            nparams: 1,
            nlocals: 1,
            nregs: 2,
            result: true,
            tables: Vec::new(),
        };
        let v = verify_rfunc(&f);
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("not definitely assigned"), "{v:?}");
    }
}
