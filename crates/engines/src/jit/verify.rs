//! Adapter between the register IR and the `wabench-analysis` verifier.
//!
//! [`view_of`] lowers an [`RFunc`] into the substrate-neutral
//! [`IrView`] the `analysis` crate checks: per op, the registers read
//! and written, the branch targets, whether control falls through, and a
//! rendering of the op's observable side effect. The pass driver in
//! `opt` calls [`check`] / [`check_pass`] after lowering and after every
//! pass when verification is [`enabled`] (debug builds, or the
//! `verify-ir` feature in release builds).
//!
//! Effect renderings deliberately contain no register numbers — copy
//! propagation renames registers freely — but do pin down everything a
//! pass must not change: the memory op and its constant offset, the
//! global index, the callee and arity. Trapping arithmetic is *not* part
//! of the trace: constant folding only rewrites a div/rem/trunc after
//! proving it cannot trap, which legitimately removes the trap site.

use crate::jit::ir::{RFunc, ROp, Reg};
use analysis::verify::{effect_trace_all, effects_preserved, verify, IrView, OpInfo, Violation};

/// Whether IR verification is active in this build.
pub fn enabled() -> bool {
    cfg!(any(debug_assertions, feature = "verify-ir"))
}

fn op_name(op: &ROp) -> &'static str {
    match op {
        ROp::Const { .. } => "Const",
        ROp::Move { .. } => "Move",
        ROp::Bin { .. } => "Bin",
        ROp::Bin2 { .. } => "Bin2",
        ROp::BinImm { .. } => "BinImm",
        ROp::Un { .. } => "Un",
        ROp::Load { .. } => "Load",
        ROp::Store { .. } => "Store",
        ROp::Select { .. } => "Select",
        ROp::GlobalGet { .. } => "GlobalGet",
        ROp::GlobalSet { .. } => "GlobalSet",
        ROp::MemSize { .. } => "MemSize",
        ROp::MemGrow { .. } => "MemGrow",
        ROp::Jump { .. } => "Jump",
        ROp::BrIf { .. } => "BrIf",
        ROp::BrIfZ { .. } => "BrIfZ",
        ROp::BrCmp { .. } => "BrCmp",
        ROp::BrCmpZ { .. } => "BrCmpZ",
        ROp::BrTable { .. } => "BrTable",
        ROp::Call { .. } => "Call",
        ROp::CallIndirect { .. } => "CallIndirect",
        ROp::Ret { .. } => "Ret",
        ROp::Trap => "Trap",
        ROp::Nop => "Nop",
    }
}

fn op_effect(op: &ROp) -> Option<String> {
    match *op {
        ROp::Store { op, offset, .. } => Some(format!("store {op:?}+{offset}")),
        ROp::GlobalSet { idx, .. } => Some(format!("global.set {idx}")),
        ROp::MemGrow { .. } => Some("memory.grow".to_string()),
        ROp::Call { f, nargs, ret, .. } => Some(format!("call {f} nargs={nargs} ret={ret}")),
        ROp::CallIndirect { type_idx, nargs, ret, .. } => {
            Some(format!("call_indirect type={type_idx} nargs={nargs} ret={ret}"))
        }
        _ => None,
    }
}

/// Builds the verifier's view of `f`.
pub fn view_of(f: &RFunc) -> IrView {
    let ops = f
        .ops
        .iter()
        .map(|op| {
            // `ROp::uses()` reports `[None; 3]` for calls ("handled
            // specially" everywhere): expand the contiguous argument
            // block, and the element-index register for indirect calls.
            let mut uses: Vec<u32> =
                op.uses().into_iter().flatten().map(u32::from).collect();
            match *op {
                ROp::Call { args, nargs, .. } => {
                    uses.extend((args..args + nargs as Reg).map(u32::from));
                }
                ROp::CallIndirect { elem, args, nargs, .. } => {
                    uses.push(u32::from(elem));
                    uses.extend((args..args + nargs as Reg).map(u32::from));
                }
                _ => {}
            }
            let targets = match *op {
                ROp::BrTable { table, .. } => f.tables[table as usize].clone(),
                _ => op.target().into_iter().collect(),
            };
            OpInfo {
                name: op_name(op),
                uses,
                def: op.def().map(u32::from),
                targets,
                falls_through: !op.is_terminator(),
                effect: op_effect(op),
            }
        })
        .collect();
    IrView {
        ops,
        nregs: u32::from(f.nregs),
        // Parameters and zero-initialized locals hold values on entry.
        entry_defined: u32::from(f.nlocals),
    }
}

/// Runs the verifier over `f`, returning all violations.
pub fn verify_rfunc(f: &RFunc) -> Vec<Violation> {
    verify(&view_of(f))
}

/// The function's observable side-effect trace in linear op order. The
/// pipeline never deletes an effectful op (it can only rewrite in place
/// or no-op pure defs), so every pass must preserve this exactly.
pub fn effect_trace(f: &RFunc) -> Vec<String> {
    effect_trace_all(&view_of(f))
}

fn fail(stage: &str, f: &RFunc, violations: &[Violation]) -> ! {
    let mut msg = format!(
        "IR verification failed after `{stage}` \
         (nregs={}, nlocals={}, {} ops): {} violation(s)",
        f.nregs,
        f.nlocals,
        f.ops.len(),
        violations.len()
    );
    for v in violations {
        msg.push_str("\n  - ");
        msg.push_str(&v.to_string());
    }
    if f.ops.len() <= 200 {
        msg.push_str("\nops:");
        for (i, op) in f.ops.iter().enumerate() {
            msg.push_str(&format!("\n  {i:4}: {op:?}"));
        }
    }
    panic!("{msg}");
}

/// Verifies `f` after `stage` (e.g. `"lower"`), panicking with full
/// context on any violation.
pub fn check(stage: &str, f: &RFunc) {
    let violations = verify_rfunc(f);
    if !violations.is_empty() {
        fail(stage, f, &violations);
    }
}

/// Verifies `f` after the pass named `pass` and checks the side-effect
/// trace against `before` (taken just before the pass ran).
pub fn check_pass(pass: &str, f: &RFunc, before: &[String]) {
    let mut violations = verify_rfunc(f);
    if let Some(v) = effects_preserved(pass, before, &effect_trace(f)) {
        violations.push(v);
    }
    if !violations.is_empty() {
        fail(pass, f, &violations);
    }
}

// ---------------------------------------------------------------------------
// Range-analysis adapter (interval domain over the register IR)
// ---------------------------------------------------------------------------

use analysis::range::{
    AbsOp, BinOpKind, Check, CmpKind, FBin, Guard, IntBin, Interval, MonoF, Operand, Transfer,
    UnKind, Width,
};
use wasm_core::instr::Instr;

fn int_bin_kind(op: &Instr) -> Option<(Width, IntBin)> {
    use Instr::*;
    Some(match op {
        I32Add => (Width::W32, IntBin::Add),
        I32Sub => (Width::W32, IntBin::Sub),
        I32Mul => (Width::W32, IntBin::Mul),
        I32DivS => (Width::W32, IntBin::DivS),
        I32DivU => (Width::W32, IntBin::DivU),
        I32RemS => (Width::W32, IntBin::RemS),
        I32RemU => (Width::W32, IntBin::RemU),
        I32And => (Width::W32, IntBin::And),
        I32Or => (Width::W32, IntBin::Or),
        I32Xor => (Width::W32, IntBin::Xor),
        I32Shl => (Width::W32, IntBin::Shl),
        I32ShrS => (Width::W32, IntBin::ShrS),
        I32ShrU => (Width::W32, IntBin::ShrU),
        I32Rotl | I32Rotr => (Width::W32, IntBin::Rot),
        I64Add => (Width::W64, IntBin::Add),
        I64Sub => (Width::W64, IntBin::Sub),
        I64Mul => (Width::W64, IntBin::Mul),
        I64DivS => (Width::W64, IntBin::DivS),
        I64DivU => (Width::W64, IntBin::DivU),
        I64RemS => (Width::W64, IntBin::RemS),
        I64RemU => (Width::W64, IntBin::RemU),
        I64And => (Width::W64, IntBin::And),
        I64Or => (Width::W64, IntBin::Or),
        I64Xor => (Width::W64, IntBin::Xor),
        I64Shl => (Width::W64, IntBin::Shl),
        I64ShrS => (Width::W64, IntBin::ShrS),
        I64ShrU => (Width::W64, IntBin::ShrU),
        I64Rotl | I64Rotr => (Width::W64, IntBin::Rot),
        _ => return None,
    })
}

fn float_bin_kind(op: &Instr) -> Option<(Width, FBin)> {
    use Instr::*;
    Some(match op {
        F32Add => (Width::W32, FBin::Add),
        F32Sub => (Width::W32, FBin::Sub),
        F32Mul => (Width::W32, FBin::Mul),
        F32Div => (Width::W32, FBin::Div),
        F32Min => (Width::W32, FBin::Min),
        F32Max => (Width::W32, FBin::Max),
        F32Copysign => (Width::W32, FBin::CopySign),
        F64Add => (Width::W64, FBin::Add),
        F64Sub => (Width::W64, FBin::Sub),
        F64Mul => (Width::W64, FBin::Mul),
        F64Div => (Width::W64, FBin::Div),
        F64Min => (Width::W64, FBin::Min),
        F64Max => (Width::W64, FBin::Max),
        F64Copysign => (Width::W64, FBin::CopySign),
        _ => return None,
    })
}

fn cmp_guard_kind(op: &Instr) -> Option<(Width, CmpKind)> {
    use Instr::*;
    Some(match op {
        I32Eq => (Width::W32, CmpKind::Eq),
        I32Ne => (Width::W32, CmpKind::Ne),
        I32LtS => (Width::W32, CmpKind::LtS),
        I32LtU => (Width::W32, CmpKind::LtU),
        I32GtS => (Width::W32, CmpKind::GtS),
        I32GtU => (Width::W32, CmpKind::GtU),
        I32LeS => (Width::W32, CmpKind::LeS),
        I32LeU => (Width::W32, CmpKind::LeU),
        I32GeS => (Width::W32, CmpKind::GeS),
        I32GeU => (Width::W32, CmpKind::GeU),
        I64Eq => (Width::W64, CmpKind::Eq),
        I64Ne => (Width::W64, CmpKind::Ne),
        I64LtS => (Width::W64, CmpKind::LtS),
        I64LtU => (Width::W64, CmpKind::LtU),
        I64GtS => (Width::W64, CmpKind::GtS),
        I64GtU => (Width::W64, CmpKind::GtU),
        I64LeS => (Width::W64, CmpKind::LeS),
        I64LeU => (Width::W64, CmpKind::LeU),
        I64GeS => (Width::W64, CmpKind::GeS),
        I64GeU => (Width::W64, CmpKind::GeU),
        _ => return None,
    })
}

fn is_float_cmp(op: &Instr) -> bool {
    use Instr::*;
    matches!(
        op,
        F32Eq | F32Ne | F32Lt | F32Gt | F32Le | F32Ge | F64Eq | F64Ne | F64Lt | F64Gt | F64Le
            | F64Ge
    )
}

fn bin_op_kind(op: &Instr) -> Option<BinOpKind> {
    if let Some((w, k)) = int_bin_kind(op) {
        Some(BinOpKind::Int(w, k))
    } else if let Some((w, k)) = float_bin_kind(op) {
        Some(BinOpKind::Float(w, k))
    } else if cmp_guard_kind(op).is_some() || is_float_cmp(op) {
        Some(BinOpKind::Cmp)
    } else {
        None
    }
}

/// Width and signedness of a trapping division/remainder. The `signed`
/// flag marks the `MIN / -1` overflow case, which only `div_s` has
/// (`rem_s` of `MIN % -1` is defined as 0).
fn div_parts(op: &Instr) -> Option<(Width, bool)> {
    use Instr::*;
    Some(match op {
        I32DivS => (Width::W32, true),
        I64DivS => (Width::W64, true),
        I32DivU | I32RemS | I32RemU => (Width::W32, false),
        I64DivU | I64RemS | I64RemU => (Width::W64, false),
        _ => return None,
    })
}

fn div_check(op: &Instr, divisor: Option<Operand>, dividend: Option<Operand>) -> Option<Check> {
    div_parts(op).map(|(w, signed)| Check::Div { w, signed, divisor, dividend })
}

fn trunc_parts(op: &Instr) -> Option<(bool, Width)> {
    use Instr::*;
    Some(match op {
        I32TruncF32S | I32TruncF64S => (true, Width::W32),
        I32TruncF32U | I32TruncF64U => (false, Width::W32),
        I64TruncF32S | I64TruncF64S => (true, Width::W64),
        I64TruncF32U | I64TruncF64U => (false, Width::W64),
        _ => return None,
    })
}

fn un_kind(op: &Instr) -> Option<UnKind> {
    use Instr::*;
    Some(match op {
        I32Eqz | I64Eqz => UnKind::Eqz,
        I32Clz | I32Ctz | I32Popcnt => UnKind::BitCount(Width::W32),
        I64Clz | I64Ctz | I64Popcnt => UnKind::BitCount(Width::W64),
        I32WrapI64 => UnKind::Wrap,
        I64ExtendI32S => UnKind::ExtendS,
        I64ExtendI32U => UnKind::ExtendU,
        I32Extend8S | I64Extend8S => UnKind::Sext { bits: 8 },
        I32Extend16S | I64Extend16S => UnKind::Sext { bits: 16 },
        I64Extend32S => UnKind::Sext { bits: 32 },
        I32TruncF32S | I32TruncF64S => UnKind::Trunc { signed: true, dst: Width::W32 },
        I32TruncF32U | I32TruncF64U => UnKind::Trunc { signed: false, dst: Width::W32 },
        I64TruncF32S | I64TruncF64S => UnKind::Trunc { signed: true, dst: Width::W64 },
        I64TruncF32U | I64TruncF64U => UnKind::Trunc { signed: false, dst: Width::W64 },
        F32ConvertI32S => UnKind::Convert { signed: true, src: Width::W32, dst: Width::W32 },
        F32ConvertI32U => UnKind::Convert { signed: false, src: Width::W32, dst: Width::W32 },
        F32ConvertI64S => UnKind::Convert { signed: true, src: Width::W64, dst: Width::W32 },
        F32ConvertI64U => UnKind::Convert { signed: false, src: Width::W64, dst: Width::W32 },
        F64ConvertI32S => UnKind::Convert { signed: true, src: Width::W32, dst: Width::W64 },
        F64ConvertI32U => UnKind::Convert { signed: false, src: Width::W32, dst: Width::W64 },
        F64ConvertI64S => UnKind::Convert { signed: true, src: Width::W64, dst: Width::W64 },
        F64ConvertI64U => UnKind::Convert { signed: false, src: Width::W64, dst: Width::W64 },
        F32DemoteF64 => UnKind::Demote,
        F64PromoteF32 => UnKind::Promote,
        F32Neg => UnKind::FNeg(Width::W32),
        F64Neg => UnKind::FNeg(Width::W64),
        F32Abs => UnKind::FAbs(Width::W32),
        F64Abs => UnKind::FAbs(Width::W64),
        F32Sqrt => UnKind::FMono(Width::W32, MonoF::Sqrt),
        F64Sqrt => UnKind::FMono(Width::W64, MonoF::Sqrt),
        F32Ceil => UnKind::FMono(Width::W32, MonoF::Ceil),
        F64Ceil => UnKind::FMono(Width::W64, MonoF::Ceil),
        F32Floor => UnKind::FMono(Width::W32, MonoF::Floor),
        F64Floor => UnKind::FMono(Width::W64, MonoF::Floor),
        F32Trunc => UnKind::FMono(Width::W32, MonoF::Trunc),
        F64Trunc => UnKind::FMono(Width::W64, MonoF::Trunc),
        F32Nearest => UnKind::FMono(Width::W32, MonoF::Nearest),
        F64Nearest => UnKind::FMono(Width::W64, MonoF::Nearest),
        I32ReinterpretF32 | I64ReinterpretF64 | F32ReinterpretI32 | F64ReinterpretI64 => {
            UnKind::Reinterpret
        }
        _ => return None,
    })
}

fn load_range(op: &Instr) -> Interval {
    use Instr::*;
    match op {
        I32Load8U(_) | I64Load8U(_) => Interval::new(0, 255),
        I32Load8S(_) | I64Load8S(_) => Interval::new(-128, 127),
        I32Load16U(_) | I64Load16U(_) => Interval::new(0, 65535),
        I32Load16S(_) | I64Load16S(_) => Interval::new(-32768, 32767),
        I32Load(_) | I64Load32S(_) => analysis::range::I32_RANGE,
        I64Load32U(_) => Interval::new(0, u32::MAX as i64),
        _ => Interval::TOP,
    }
}

fn flow_of(f: &RFunc, i: usize) -> analysis::cfg::OpFlow {
    let op = &f.ops[i];
    let targets = match *op {
        ROp::BrTable { table, .. } => f.tables[table as usize].clone(),
        _ => op.target().into_iter().collect(),
    };
    analysis::cfg::OpFlow { targets, falls_through: !op.is_terminator() }
}

/// Resolves the value register `r` held when op `at` read it into an
/// operand still valid in the edge state of the branch at `branch`
/// (i.e. after all ops before the branch have executed): a constant, or
/// a register whose defining value provably survives to the branch.
/// Follows `Move` copy chains back to locals and constants.
fn resolve_operand(
    f: &RFunc,
    block_start: usize,
    branch: usize,
    r: Reg,
    at: usize,
) -> Option<Operand> {
    let mut r = r;
    let mut at = at;
    loop {
        let def = (block_start..at).rev().find(|&k| f.ops[k].def() == Some(r));
        match def {
            Some(k) => match f.ops[k] {
                ROp::Move { rs, .. } => {
                    r = rs;
                    at = k;
                }
                ROp::Const { bits, .. } => return Some(Operand::Const(bits)),
                _ => {
                    return if (at..branch).any(|j| f.ops[j].def() == Some(r)) {
                        None
                    } else {
                        Some(Operand::Reg(u32::from(r)))
                    };
                }
            },
            None => {
                // Defined before the block (local, param, or earlier
                // block): usable as long as nothing in between clobbers.
                return if (at..branch).any(|j| f.ops[j].def() == Some(r)) {
                    None
                } else {
                    Some(Operand::Reg(u32::from(r)))
                };
            }
        }
    }
}

/// Recovers a comparison guard for a `BrIf`/`BrIfZ` whose condition was
/// produced by a compare in the same basic block — the common shape of
/// unoptimized lowered code, where `cmp_fuse` has not run.
fn peek_guard(f: &RFunc, leader: &[bool], i: usize, cond: Reg, negate: bool) -> Option<Guard> {
    let block_start = (0..=i).rev().find(|&l| leader[l]).unwrap_or(0);
    let k = (block_start..i).rev().find(|&k| f.ops[k].def() == Some(cond))?;
    let (op, ra, rb_imm) = match f.ops[k] {
        ROp::Bin { op, ra, rb, .. } => (op, ra, Ok(rb)),
        ROp::BinImm { op, ra, imm, .. } => (op, ra, Err(imm)),
        _ => return None,
    };
    let (w, kind) = cmp_guard_kind(&op)?;
    // The condition register must still hold the compare result.
    if (k + 1..i).any(|j| f.ops[j].def() == Some(cond)) {
        return None;
    }
    let a = resolve_operand(f, block_start, i, ra, k)?;
    let b = match rb_imm {
        Ok(rb) => resolve_operand(f, block_start, i, rb, k)?,
        Err(imm) => Operand::Const(imm),
    };
    Some(Guard { kind: if negate { kind.negate() } else { kind }, w, a, b })
}

/// Lowers `f` into the `analysis::range` op vocabulary.
pub(crate) fn abs_ops(f: &RFunc) -> Vec<AbsOp> {
    let n = f.ops.len();
    let mut leader = vec![false; n.max(1)];
    if !leader.is_empty() {
        leader[0] = true;
    }
    for i in 0..n {
        let flow = flow_of(f, i);
        for &t in &flow.targets {
            leader[t as usize] = true;
        }
        if (!flow.targets.is_empty() || !flow.falls_through) && i + 1 < n {
            leader[i + 1] = true;
        }
    }

    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let flow = flow_of(f, i);
        let reg = |r: Reg| Operand::Reg(u32::from(r));
        let (def, transfer, guard, check) = match f.ops[i] {
            ROp::Const { rd, bits } => (Some(rd), Transfer::Bits(bits), None, None),
            ROp::Move { rd, rs } => (Some(rd), Transfer::Copy(u32::from(rs)), None, None),
            ROp::Bin { op, rd, ra, rb } => {
                let t = match bin_op_kind(&op) {
                    Some(k) => Transfer::Bin { op: k, a: reg(ra), b: reg(rb) },
                    None => Transfer::Opaque,
                };
                (Some(rd), t, None, div_check(&op, Some(reg(rb)), Some(reg(ra))))
            }
            ROp::BinImm { op, rd, ra, imm } => {
                let t = match bin_op_kind(&op) {
                    Some(k) => Transfer::Bin { op: k, a: reg(ra), b: Operand::Const(imm) },
                    None => Transfer::Opaque,
                };
                (Some(rd), t, None, div_check(&op, Some(Operand::Const(imm)), Some(reg(ra))))
            }
            ROp::Bin2 { op1, op2, rd, ra, rb, rc, swapped } => {
                let t = match (bin_op_kind(&op1), bin_op_kind(&op2)) {
                    (Some(k1), Some(k2)) => Transfer::Chain {
                        op1: k1,
                        op2: k2,
                        a: reg(ra),
                        b: reg(rb),
                        c: reg(rc),
                        swapped,
                    },
                    _ => Transfer::Opaque,
                };
                let c1 = div_check(&op1, Some(reg(rb)), Some(reg(ra)));
                let c2 = div_check(
                    &op2,
                    if swapped { None } else { Some(reg(rc)) },
                    if swapped { Some(reg(rc)) } else { None },
                );
                let check = match (c1, c2) {
                    // Both halves can trap: keep an unprovable residual
                    // so the pair is never eliminated.
                    (Some(_), Some(Check::Div { w, signed, .. })) => {
                        Some(Check::Div { w, signed, divisor: None, dividend: None })
                    }
                    (a, b) => a.or(b),
                };
                (Some(rd), t, None, check)
            }
            ROp::Un { op, rd, ra } => {
                let t = match un_kind(&op) {
                    Some(k) => Transfer::Un { op: k, a: u32::from(ra) },
                    None => Transfer::Opaque,
                };
                let check = trunc_parts(&op)
                    .map(|(signed, dst)| Check::Trunc { src: u32::from(ra), signed, dst });
                (Some(rd), t, None, check)
            }
            ROp::Load { op, rd, addr, offset } => (
                Some(rd),
                Transfer::Range(load_range(&op)),
                None,
                Some(Check::Mem {
                    addr: u32::from(addr),
                    offset: u64::from(offset),
                    len: u64::from(crate::interp::tree::load_width(&op)),
                }),
            ),
            ROp::Store { op, addr, offset, .. } => (
                None,
                Transfer::Opaque,
                None,
                Some(Check::Mem {
                    addr: u32::from(addr),
                    offset: u64::from(offset),
                    len: u64::from(crate::interp::tree::store_width(&op)),
                }),
            ),
            ROp::Select { rd, a, b, .. } => {
                (Some(rd), Transfer::Join(u32::from(a), u32::from(b)), None, None)
            }
            ROp::GlobalGet { rd, .. } => (Some(rd), Transfer::Opaque, None, None),
            ROp::MemSize { rd } => (Some(rd), Transfer::Range(Interval::new(0, 65536)), None, None),
            ROp::MemGrow { rd, .. } => {
                (Some(rd), Transfer::Range(Interval::new(-1, 65536)), None, None)
            }
            ROp::BrIf { cond, .. } => {
                let g = peek_guard(f, &leader, i, cond, false).unwrap_or(Guard {
                    kind: CmpKind::Ne,
                    w: Width::W32,
                    a: Operand::Reg(u32::from(cond)),
                    b: Operand::Const(0),
                });
                (None, Transfer::Opaque, Some(g), None)
            }
            ROp::BrIfZ { cond, .. } => {
                let g = peek_guard(f, &leader, i, cond, true).unwrap_or(Guard {
                    kind: CmpKind::Eq,
                    w: Width::W32,
                    a: Operand::Reg(u32::from(cond)),
                    b: Operand::Const(0),
                });
                (None, Transfer::Opaque, Some(g), None)
            }
            ROp::BrCmp { op, ra, rb, .. } => {
                let g = cmp_guard_kind(&op).map(|(w, kind)| Guard {
                    kind,
                    w,
                    a: resolve_operand(f, 0, i, ra, i).unwrap_or(reg(ra)),
                    b: resolve_operand(f, 0, i, rb, i).unwrap_or(reg(rb)),
                });
                (None, Transfer::Opaque, g, None)
            }
            ROp::BrCmpZ { op, ra, rb, .. } => {
                let g = cmp_guard_kind(&op).map(|(w, kind)| Guard {
                    kind: kind.negate(),
                    w,
                    a: resolve_operand(f, 0, i, ra, i).unwrap_or(reg(ra)),
                    b: resolve_operand(f, 0, i, rb, i).unwrap_or(reg(rb)),
                });
                (None, Transfer::Opaque, g, None)
            }
            ROp::Call { args, ret, .. } | ROp::CallIndirect { args, ret, .. } => {
                (if ret { Some(args) } else { None }, Transfer::Opaque, None, None)
            }
            ROp::GlobalSet { .. }
            | ROp::Jump { .. }
            | ROp::BrTable { .. }
            | ROp::Ret { .. }
            | ROp::Trap
            | ROp::Nop => (None, Transfer::Opaque, None, None),
        };
        out.push(AbsOp { flow, def: def.map(u32::from), transfer, guard, check });
    }
    out
}

/// Independently re-derives every proof obligation attached to `f`.
/// Returns one message per rejected obligation; empty means every
/// eliminated check is sound.
pub fn check_proofs(f: &RFunc) -> Vec<String> {
    if f.proofs.is_empty() {
        return Vec::new();
    }
    if f.ops.is_empty() {
        return vec!["proofs attached to an empty function".to_string()];
    }
    let ops = abs_ops(f);
    analysis::range::check_obligations(
        &ops,
        usize::from(f.nregs),
        usize::from(f.nparams),
        f.mem_min_bytes,
        &f.proofs,
    )
}

/// Static range-analysis summary of `f` for audit reports.
pub fn audit_rfunc(f: &RFunc) -> analysis::range::AuditFacts {
    if f.ops.is_empty() {
        return analysis::range::AuditFacts::default();
    }
    analysis::range::audit(
        &abs_ops(f),
        usize::from(f.nregs),
        usize::from(f.nparams),
        f.mem_min_bytes,
    )
}

/// Per-body-instruction safety marks for the interpreter tiers.
///
/// Runs the range analysis over the *unoptimized* lowering of `func` and
/// maps every provably safe check (bounds, division, truncation guard)
/// back through the lowering source map to the decoded instruction that
/// produced it. Interpreters consult the marks at decode time: a marked
/// site still performs its host-side check as defense in depth, but skips
/// the modeled check cost and reports the skip to the profiler.
pub(crate) fn safe_wasm_sites(
    module: &wasm_core::module::Module,
    func: &wasm_core::module::Func,
) -> Vec<bool> {
    use analysis::range::{div_safe, mem_safe, read_float, read_int, trunc_safe};
    let mut marks = vec![false; func.body.len()];
    let Ok((rf, srcmap)) = super::lower::lower_with_map(module, func) else {
        return marks;
    };
    if rf.ops.is_empty() {
        return marks;
    }
    let ops = abs_ops(&rf);
    let an = analysis::range::analyze(&ops, usize::from(rf.nregs), usize::from(rf.nparams));
    an.walk(&ops, |i, st| {
        let safe = match &ops[i].check {
            Some(Check::Mem { addr, offset, len }) => mem_safe(
                read_int(st, Operand::Reg(*addr), Width::W32),
                *offset,
                *len,
                rf.mem_min_bytes,
            ),
            Some(Check::Div { w, signed, divisor: Some(dv), dividend }) => {
                let dd = dividend.map(|d| read_int(st, d, *w));
                div_safe(read_int(st, *dv, *w), dd, *w, *signed)
            }
            Some(Check::Trunc { src, signed, dst }) => {
                trunc_safe(read_float(st, Operand::Reg(*src), Width::W64), *signed, *dst)
            }
            _ => false,
        };
        if safe {
            marks[srcmap[i] as usize] = true;
        }
    });
    marks
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn call_arguments_are_expanded_as_uses() {
        let call = ROp::Call { f: 2, args: 3, nargs: 2, ret: true };
        let f = RFunc {
            ops: vec![call, ROp::Ret { rs: 3, has: true }],
            nparams: 0,
            nlocals: 0,
            nregs: 5,
            result: true,
            tables: Vec::new(),
            ..RFunc::default()
        };
        let view = view_of(&f);
        assert_eq!(view.ops[0].uses, vec![3, 4]);
        assert_eq!(view.ops[0].def, Some(3));

        let ind = ROp::CallIndirect { type_idx: 0, elem: 2, args: 3, nargs: 1, ret: false };
        let f2 = RFunc { ops: vec![ind, ROp::Ret { rs: 0, has: false }], nregs: 5, ..f };
        let view2 = view_of(&f2);
        assert_eq!(view2.ops[0].uses, vec![2, 3]);
        assert_eq!(view2.ops[0].def, None);
    }

    #[test]
    fn br_table_targets_come_from_the_pool() {
        let f = RFunc {
            ops: vec![
                ROp::Const { rd: 0, bits: 1 },
                ROp::BrTable { idx: 0, table: 0 },
                ROp::Ret { rs: 0, has: false },
                ROp::Ret { rs: 0, has: false },
            ],
            nparams: 0,
            nlocals: 0,
            nregs: 1,
            result: false,
            tables: vec![vec![2, 3, 2]],
            ..RFunc::default()
        };
        let view = view_of(&f);
        assert_eq!(view.ops[1].targets, vec![2, 3, 2]);
        assert!(!view.ops[1].falls_through);
        assert!(verify_rfunc(&f).is_empty());
    }

    #[test]
    fn effect_trace_has_no_registers() {
        use wasm_core::instr::{Instr, MemArg};
        let store = Instr::I32Store(MemArg { align: 2, offset: 16 });
        let f = RFunc {
            ops: vec![
                ROp::Const { rd: 0, bits: 0 },
                ROp::Store { op: store, addr: 0, val: 0, offset: 16 },
                ROp::Ret { rs: 0, has: false },
            ],
            nparams: 0,
            nlocals: 0,
            nregs: 1,
            result: false,
            tables: Vec::new(),
            ..RFunc::default()
        };
        let trace = effect_trace(&f);
        assert_eq!(trace.len(), 1);
        assert!(trace[0].contains("+16"), "{trace:?}");

        // Renaming the registers must not perturb the trace.
        let mut g = f.clone();
        g.nregs = 2;
        g.ops[0] = ROp::Const { rd: 1, bits: 0 };
        g.ops[1] = ROp::Store { op: store, addr: 1, val: 1, offset: 16 };
        assert_eq!(effect_trace(&g), trace);
    }

    #[test]
    fn use_before_def_is_caught_through_the_adapter() {
        let f = RFunc {
            ops: vec![
                ROp::Move { rd: 0, rs: 1 }, // r1 is a stack slot, never assigned
                ROp::Ret { rs: 0, has: true },
            ],
            nparams: 1,
            nlocals: 1,
            nregs: 2,
            result: true,
            tables: Vec::new(),
            ..RFunc::default()
        };
        let v = verify_rfunc(&f);
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("not definitely assigned"), "{v:?}");
    }
}
