//! The compiled ("JIT") tiers: lowering, optimization, execution, and AOT
//! artifacts.
//!
//! Three tiers mirror the compilers the paper studies:
//!
//! | tier | pipeline | counterpart |
//! |---|---|---|
//! | [`Tier::Singlepass`] | lowering only | Wasmer SinglePass |
//! | [`Tier::Cranelift`] | standard passes ×1 | Wasmtime / Wasmer Cranelift |
//! | [`Tier::Llvm`] | extended passes ×3 + LVN | WAVM / Wasmer LLVM |

pub mod aot;
pub mod exec;
pub mod ir;
pub mod lower;
pub mod opt;
pub mod verify;

use std::rc::Rc;

use crate::profiler::{BranchKind, Profiler, CODE_BASE, META_BASE};
use exec::RegCode;
use opt::{PassConfig, PassStats};
use wasm_core::module::Module;

/// A compiled tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Tier {
    /// One-pass lowering, no optimization: fastest compile, slowest code.
    Singlepass,
    /// Standard optimization pipeline: balanced.
    Cranelift,
    /// Aggressive multi-round pipeline: slowest compile, best code.
    Llvm,
}

impl Tier {
    /// The pass configuration this tier runs.
    pub fn pass_config(self) -> PassConfig {
        match self {
            Tier::Singlepass => PassConfig::none(),
            Tier::Cranelift => PassConfig::standard(),
            Tier::Llvm => PassConfig::aggressive(),
        }
    }

    /// Whether the tier retains its IR after compilation (the LLVM tier
    /// keeps the module-level IR alive, inflating memory like WAVM does).
    pub fn retains_ir(self) -> bool {
        matches!(self, Tier::Llvm)
    }
}

impl std::fmt::Display for Tier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Tier::Singlepass => "singlepass",
            Tier::Cranelift => "cranelift",
            Tier::Llvm => "llvm",
        };
        f.write_str(s)
    }
}

/// Statistics describing the compilation, used for compile-cost profiling
/// and memory accounting.
#[derive(Debug, Clone, Copy, Default)]
pub struct CompileStats {
    /// Ops produced by lowering, before optimization.
    pub lowered_ops: usize,
    /// Ops in the final code.
    pub final_ops: usize,
    /// Aggregated pass statistics.
    pub passes: PassStats,
    /// Bytes of retained IR (LLVM tier only).
    pub retained_ir_bytes: usize,
}

impl CompileStats {
    /// Total abstract compile work: op visits across lowering and passes.
    pub fn total_work(&self) -> u64 {
        self.lowered_ops as u64 + self.passes.op_visits
    }
}

/// Compiles a validated module with the given tier.
///
/// # Errors
///
/// Fails only on malformed control structure, which validation excludes.
pub fn compile_module(
    module: Rc<Module>,
    tier: Tier,
) -> Result<(RegCode, CompileStats), wasm_core::ValidateError> {
    let _span = obs::span!("jit.compile", tier = tier, funcs = module.funcs.len());
    let config = tier.pass_config();
    let mut stats = CompileStats::default();
    let mut funcs = Vec::with_capacity(module.funcs.len());
    let num_imported = module.num_imported_funcs() as u32;
    for (i, f) in module.funcs.iter().enumerate() {
        let mut rf = {
            let _s = obs::span!("jit.lower");
            lower::lower(&module, f).map_err(|e| e.with_func(num_imported + i as u32))?
        };
        stats.lowered_ops += rf.ops.len();
        stats.passes.merge(opt::optimize(&mut rf, &config));
        stats.final_ops += rf.ops.len();
        funcs.push(rf);
    }
    if tier.retains_ir() {
        stats.retained_ir_bytes = stats.lowered_ops * 24;
    }
    if stats.passes.checks_eliminated > 0 {
        obs::metrics::counter("jit.checks.eliminated").add(stats.passes.checks_eliminated);
    }
    Ok((RegCode::new(module, funcs), stats))
}

/// Replays the microarchitectural cost of compilation into a profiler.
///
/// Compilation is real work the paper's Figures 6–10 capture inside the
/// runtime totals: every pass walks the IR (data reads/writes over the
/// metadata region) and runs compiler code (I-side fetches, branches).
pub fn replay_compile_cost<P: Profiler>(stats: &CompileStats, p: &mut P) {
    let compiler_code = CODE_BASE + 0x8_0000;
    // Lowering: read the decoded instruction, write an IR op.
    for i in 0..stats.lowered_ops as u64 {
        p.fetch(compiler_code + (i % 512) * 16, 16);
        p.read(META_BASE + i * 16, 16);
        p.write(META_BASE + 0x100_0000 + i * 24, 24);
        p.uops(14);
        if i % 4 == 0 {
            p.branch(
                compiler_code + (i % 512) * 16,
                BranchKind::Cond,
                i % 8 < 3,
                compiler_code,
            );
        }
    }
    // Passes: each op visit reads and may rewrite an IR op.
    for i in 0..stats.passes.op_visits {
        p.fetch(compiler_code + 0x2000 + (i % 1024) * 16, 16);
        p.read(
            META_BASE + 0x100_0000 + (i % (stats.lowered_ops.max(1) as u64)) * 24,
            24,
        );
        p.uops(9);
        if i % 5 == 0 {
            p.branch(
                compiler_code + 0x2000 + (i % 1024) * 16,
                BranchKind::Cond,
                i % 16 < 7,
                compiler_code,
            );
        }
    }
    // Code emission.
    for i in 0..stats.final_ops as u64 {
        p.fetch(compiler_code + 0x4000 + (i % 256) * 16, 16);
        p.write(CODE_BASE + 0x10_0000 + i * 8, 8);
        p.uops(6);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiler::CountingProfiler;
    use wasm_core::builder::ModuleBuilder;
    use wasm_core::instr::Instr;
    use wasm_core::types::{FuncType, ValType};

    fn sample_module() -> Rc<Module> {
        let mut b = ModuleBuilder::new();
        let f = b.begin_func(FuncType::new(&[ValType::I32], &[ValType::I32]));
        b.emit(Instr::LocalGet(0));
        b.emit(Instr::I32Const(3));
        b.emit(Instr::I32Mul);
        b.emit(Instr::I32Const(4));
        b.emit(Instr::I32Add);
        b.finish_func();
        b.export_func("f", f);
        let m = b.build();
        wasm_core::validate::validate(&m).unwrap();
        Rc::new(m)
    }

    #[test]
    fn tiers_order_compile_work() {
        let m = sample_module();
        let (_, sp) = compile_module(m.clone(), Tier::Singlepass).unwrap();
        let (_, cl) = compile_module(m.clone(), Tier::Cranelift).unwrap();
        let (_, ll) = compile_module(m, Tier::Llvm).unwrap();
        assert!(sp.total_work() < cl.total_work());
        assert!(cl.total_work() < ll.total_work());
        assert_eq!(sp.passes.op_visits, 0);
    }

    #[test]
    fn llvm_tier_retains_ir() {
        let m = sample_module();
        let (_, ll) = compile_module(m.clone(), Tier::Llvm).unwrap();
        let (_, cl) = compile_module(m, Tier::Cranelift).unwrap();
        assert!(ll.retained_ir_bytes > 0);
        assert_eq!(cl.retained_ir_bytes, 0);
    }

    #[test]
    fn optimizing_tiers_shrink_code() {
        let m = sample_module();
        let (_, sp) = compile_module(m.clone(), Tier::Singlepass).unwrap();
        let (_, cl) = compile_module(m, Tier::Cranelift).unwrap();
        assert!(cl.final_ops < sp.final_ops);
    }

    #[test]
    fn compile_cost_replay_is_proportional() {
        let m = sample_module();
        let (_, cl) = compile_module(m.clone(), Tier::Cranelift).unwrap();
        let (_, ll) = compile_module(m, Tier::Llvm).unwrap();
        let mut pc = CountingProfiler::default();
        let mut pl = CountingProfiler::default();
        replay_compile_cost(&cl, &mut pc);
        replay_compile_cost(&ll, &mut pl);
        assert!(pl.uops > pc.uops);
    }
}
