//! Optimization passes over the register IR.
//!
//! The `cranelift` tier runs one round of the standard pipeline; the
//! `llvm` tier runs the extended pipeline (plus local value numbering)
//! to a fixpoint, paying more compile time for better code — the same
//! trade the paper measures between Wasmer's Cranelift and LLVM backends.

use crate::jit::ir::{RFunc, ROp, Reg};
use crate::jit::verify;
use crate::numeric;
use wasm_core::instr::Instr;

/// Statistics from running a pass pipeline, used for compile-cost
/// modeling and the ablation benches.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PassStats {
    /// Number of op visits across all passes (∝ real compile work).
    pub op_visits: u64,
    /// Ops removed by DCE/compaction.
    pub removed: u64,
    /// Constants folded.
    pub folded: u64,
    /// Compare-and-branch fusions performed.
    pub fused: u64,
    /// Value-numbering replacements.
    pub cse_hits: u64,
    /// Runtime safety checks proven redundant (each carries a proof
    /// obligation in [`RFunc::proofs`]).
    pub checks_eliminated: u64,
    /// Wall time spent in the IR verifier between passes. Kept apart from
    /// `op_visits` so verification never inflates modeled compile work
    /// (`CompileStats::total_work`).
    pub verify_ns: u64,
}

impl PassStats {
    /// Accumulates another pass run into this total.
    pub fn merge(&mut self, other: PassStats) {
        self.op_visits += other.op_visits;
        self.removed += other.removed;
        self.folded += other.folded;
        self.fused += other.fused;
        self.cse_hits += other.cse_hits;
        self.checks_eliminated += other.checks_eliminated;
        self.verify_ns += other.verify_ns;
    }
}

/// Which optimization passes to run; the tiers choose different sets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PassConfig {
    /// Constant folding and propagation.
    pub const_fold: bool,
    /// Copy propagation.
    pub copy_prop: bool,
    /// Strength reduction (mul/div/rem by powers of two, identities).
    pub strength: bool,
    /// ALU chain (superinstruction) fusion.
    pub chain_fuse: bool,
    /// Constant-operand (immediate) fusion.
    pub imm_fuse: bool,
    /// Compare-and-branch fusion.
    pub cmp_fuse: bool,
    /// Dead code elimination.
    pub dce: bool,
    /// Local value numbering (CSE).
    pub lvn: bool,
    /// Interval-analysis check elimination (bounds, div, trunc guards).
    pub bce: bool,
    /// Pipeline iterations (fixpoint rounds).
    pub rounds: u32,
}

impl PassConfig {
    /// No optimization (the SinglePass tier).
    pub fn none() -> Self {
        PassConfig {
            const_fold: false,
            copy_prop: false,
            strength: false,
            chain_fuse: false,
            imm_fuse: false,
            cmp_fuse: false,
            dce: false,
            lvn: false,
            bce: false,
            rounds: 0,
        }
    }

    /// The standard pipeline (the Cranelift tier).
    pub fn standard() -> Self {
        PassConfig {
            const_fold: true,
            copy_prop: true,
            strength: true,
            chain_fuse: true,
            imm_fuse: true,
            cmp_fuse: true,
            dce: true,
            lvn: false,
            bce: true,
            rounds: 1,
        }
    }

    /// The aggressive pipeline (the LLVM tier).
    pub fn aggressive() -> Self {
        PassConfig {
            const_fold: true,
            copy_prop: true,
            strength: true,
            chain_fuse: true,
            imm_fuse: true,
            cmp_fuse: true,
            dce: true,
            lvn: true,
            bce: true,
            rounds: 8,
        }
    }
}

/// Runs the configured passes over a function.
///
/// In debug builds (and release builds with the `verify-ir` feature) the
/// `wabench-analysis` IR verifier runs on the lowered input and again
/// after every pass, panicking on any structural or dataflow violation
/// and on any change to the function's observable side-effect trace.
/// Time spent verifying is accounted separately in
/// [`PassStats::verify_ns`].
pub fn optimize(f: &mut RFunc, config: &PassConfig) -> PassStats {
    let mut stats = PassStats::default();
    if verify::enabled() {
        let t0 = std::time::Instant::now();
        verify::check("lower", f);
        stats.verify_ns += t0.elapsed().as_nanos() as u64;
    }
    // Compare-and-branch fusion runs before immediate fusion, so
    // comparisons feeding branches keep their register form; the
    // immediate pass then takes the rest.
    type Pass = fn(&mut RFunc) -> PassStats;
    let pipeline: [(&str, bool, Pass); 10] = [
        ("const_fold", config.const_fold, const_fold),
        ("copy_prop", config.copy_prop, copy_prop),
        ("strength_reduce", config.strength, strength_reduce),
        ("value_number", config.lvn, value_number),
        ("cmp_fuse", config.cmp_fuse, cmp_fuse),
        ("imm_fuse", config.imm_fuse, imm_fuse),
        ("chain_fuse", config.chain_fuse, chain_fuse),
        ("dce", config.dce, dce),
        ("dead_store", config.dce, dead_store),
        ("compact", true, compact),
    ];
    for _ in 0..config.rounds {
        for &(name, enabled, pass) in &pipeline {
            if !enabled {
                continue;
            }
            let _span = obs::span!("jit.pass", name = name);
            if !verify::enabled() {
                stats.merge(pass(f));
                continue;
            }
            let t0 = std::time::Instant::now();
            let before = verify::effect_trace(f);
            let snapshot_ns = t0.elapsed().as_nanos() as u64;
            stats.merge(pass(f));
            let t1 = std::time::Instant::now();
            verify::check_pass(name, f, &before);
            stats.verify_ns += snapshot_ns + t1.elapsed().as_nanos() as u64;
        }
    }
    // Check elimination runs once, after the scalar pipeline converges:
    // it sees the final op layout (proof obligations cite op indices) and
    // benefits from fused guards and folded address arithmetic.
    if config.bce {
        let _span = obs::span!("jit.pass", name = "check_elim");
        if !verify::enabled() {
            stats.merge(check_elim(f));
        } else {
            let t0 = std::time::Instant::now();
            let before = verify::effect_trace(f);
            let snapshot_ns = t0.elapsed().as_nanos() as u64;
            stats.merge(check_elim(f));
            let t1 = std::time::Instant::now();
            verify::check_pass("check_elim", f, &before);
            let violations = verify::check_proofs(f);
            assert!(
                violations.is_empty(),
                "check_elim emitted proofs its own checker rejects: {violations:#?}"
            );
            stats.verify_ns += snapshot_ns + t1.elapsed().as_nanos() as u64;
        }
    }
    if stats.verify_ns > 0 {
        obs::metrics::histogram("jit.verify").observe_ns(stats.verify_ns);
    }
    stats
}

/// Interval-analysis check elimination.
///
/// Two rounds over the interval analysis ([`analysis::range`], reached
/// through the [`verify::abs_ops`] adapter):
///
/// 1. Proven-non-trapping divisions whose results are dead become `Nop`
///    (ordinary DCE must keep them because they carry a potential trap).
/// 2. Every remaining check the analysis discharges — memory bounds,
///    division, float truncation — gets a proof [`Obligation`] recorded
///    in [`RFunc::proofs`]: the claimed interval plus an optional
///    dominating guard. The verifier re-derives each obligation from
///    scratch and rejects the function if any claim is unsound; the
///    execution tiers skip the modeled check cost for proven sites while
///    keeping the host-side check as defense in depth.
fn check_elim(f: &mut RFunc) -> PassStats {
    use analysis::range::{self, Check, CheckKind, Fact, Obligation, Operand, Width};
    let mut stats = PassStats::default();
    f.proofs.clear();
    if f.ops.is_empty() {
        return stats;
    }

    // Round 1: drop dead proven-safe divisions.
    let ops = verify::abs_ops(f);
    stats.op_visits += ops.len() as u64;
    let an = range::analyze(&ops, f.nregs as usize, f.nparams as usize);
    let mut safe_divs: Vec<usize> = Vec::new();
    an.walk(&ops, |i, st| {
        if let Some(Check::Div { w, signed, divisor: Some(dv), dividend }) = &ops[i].check {
            let iv = range::read_int(st, *dv, *w);
            let dd = dividend.map(|d| range::read_int(st, d, *w));
            if range::div_safe(iv, dd, *w, *signed) {
                safe_divs.push(i);
            }
        }
    });
    let mut removed_any = false;
    for &i in &safe_divs {
        let dead = f.ops[i]
            .def()
            .is_some_and(|rd| rd >= f.nlocals && !reg_used_after(f, i + 1, rd));
        if dead {
            f.ops[i] = ROp::Nop;
            stats.removed += 1;
            removed_any = true;
        }
    }
    if removed_any {
        stats.merge(dce(f));
        stats.merge(compact(f));
    }

    // Round 2: re-analyze the final layout and emit one obligation per
    // provable check. The claimed fact is exactly the derived interval,
    // so an honest proof always re-checks.
    let ops = verify::abs_ops(f);
    stats.op_visits += ops.len() as u64;
    let an = range::analyze(&ops, f.nregs as usize, f.nparams as usize);
    let idom = an.cfg.dominators();
    // Nearest strictly-dominating block whose terminating branch carries
    // a recoverable comparison guard.
    let guard_for = |b: usize| -> Option<u32> {
        let entry = an.cfg.rpo[0];
        let mut cur = b;
        loop {
            if cur == entry || idom[cur] == usize::MAX {
                return None;
            }
            cur = idom[cur];
            let last = an.cfg.blocks[cur].end - 1;
            if ops[last].guard.is_some() {
                return Some(last as u32);
            }
        }
    };
    let mut proofs: Vec<Obligation> = Vec::new();
    an.walk(&ops, |i, st| {
        let Some(check) = &ops[i].check else { return };
        let b = an.cfg.block_of[i];
        match check {
            Check::Mem { addr, offset, len } => {
                let iv = range::read_int(st, Operand::Reg(*addr), Width::W32);
                if range::mem_safe(iv, *offset, *len, f.mem_min_bytes) {
                    proofs.push(Obligation {
                        op: i as u32,
                        kind: CheckKind::MemInBounds,
                        fact: Fact::Int(iv),
                        guard: guard_for(b),
                    });
                }
            }
            Check::Div { w, signed, divisor: Some(dv), dividend } => {
                let iv = range::read_int(st, *dv, *w);
                let dd = dividend.map(|d| range::read_int(st, d, *w));
                if range::div_safe(iv, dd, *w, *signed) {
                    proofs.push(Obligation {
                        op: i as u32,
                        kind: CheckKind::DivSafe,
                        fact: Fact::Int(iv),
                        guard: guard_for(b),
                    });
                }
            }
            // A fused pair where both halves trap has no single divisor
            // operand; it stays an unprovable residual.
            Check::Div { divisor: None, .. } => {}
            Check::Trunc { src, signed, dst } => {
                let fv = range::read_float(st, Operand::Reg(*src), Width::W64);
                if range::trunc_safe(fv, *signed, *dst) {
                    proofs.push(Obligation {
                        op: i as u32,
                        kind: CheckKind::TruncSafe,
                        fact: Fact::Float(fv),
                        guard: guard_for(b),
                    });
                }
            }
        }
    });
    stats.checks_eliminated = proofs.len() as u64;
    f.proofs = proofs;
    stats
}

/// Op indices that are branch targets (region boundaries).
fn branch_targets(f: &RFunc) -> Vec<bool> {
    let mut t = vec![false; f.ops.len() + 1];
    for op in &f.ops {
        if let Some(target) = op.target() {
            if target != u32::MAX {
                t[target as usize] = true;
            }
        }
        if let ROp::BrTable { table, .. } = op {
            for &e in &f.tables[*table as usize] {
                if e != u32::MAX {
                    t[e as usize] = true;
                }
            }
        }
    }
    t
}

#[allow(clippy::needless_range_loop)] // index walks `targets`/`remap` and `f.ops` in lockstep
fn const_fold(f: &mut RFunc) -> PassStats {
    let mut stats = PassStats::default();
    let targets = branch_targets(f);
    let mut known: Vec<Option<u64>> = vec![None; f.nregs as usize];
    for i in 0..f.ops.len() {
        stats.op_visits += 1;
        if targets[i] {
            known.iter_mut().for_each(|k| *k = None);
        }
        let op = f.ops[i];
        let mut replace: Option<ROp> = None;
        match op {
            ROp::Const { rd, bits } => {
                known[rd as usize] = Some(bits);
                continue;
            }
            ROp::Move { rd, rs } => {
                known[rd as usize] = known[rs as usize];
                continue;
            }
            ROp::Bin { op: bop, rd, ra, rb } => {
                if let (Some(a), Some(b)) = (known[ra as usize], known[rb as usize]) {
                    // Never fold a trapping evaluation; leave it to runtime.
                    if let Ok(v) = numeric::apply_binary(bop, a, b) {
                        replace = Some(ROp::Const { rd, bits: v });
                        stats.folded += 1;
                    }
                }
            }
            ROp::Un { op: uop, rd, ra } => {
                if let Some(a) = known[ra as usize] {
                    if let Ok(v) = numeric::apply_unary(uop, a) {
                        replace = Some(ROp::Const { rd, bits: v });
                        stats.folded += 1;
                    }
                }
            }
            ROp::Select { rd, cond, a, b } => {
                if let Some(c) = known[cond as usize] {
                    replace = Some(ROp::Move {
                        rd,
                        rs: if c as u32 != 0 { a } else { b },
                    });
                    stats.folded += 1;
                }
            }
            ROp::BrIf { cond, target } => {
                if let Some(c) = known[cond as usize] {
                    replace = Some(if c as u32 != 0 {
                        ROp::Jump { target }
                    } else {
                        ROp::Nop
                    });
                    stats.folded += 1;
                }
            }
            ROp::BrIfZ { cond, target } => {
                if let Some(c) = known[cond as usize] {
                    replace = Some(if c as u32 == 0 {
                        ROp::Jump { target }
                    } else {
                        ROp::Nop
                    });
                    stats.folded += 1;
                }
            }
            _ => {}
        }
        if let Some(new_op) = replace {
            if let ROp::Const { rd, bits } = new_op {
                known[rd as usize] = Some(bits);
            } else if let Some(rd) = new_op.def() {
                known[rd as usize] = None;
            }
            f.ops[i] = new_op;
        } else if let Some(rd) = op.def() {
            known[rd as usize] = None;
        }
        // Control transfers end the straight-line region.
        if f.ops[i].target().is_some() || f.ops[i].is_terminator() {
            known.iter_mut().for_each(|k| *k = None);
        }
    }
    stats
}

#[allow(clippy::needless_range_loop)] // index walks `targets`/`remap` and `f.ops` in lockstep
fn copy_prop(f: &mut RFunc) -> PassStats {
    let mut stats = PassStats::default();
    let targets = branch_targets(f);
    // alias[r] = the register r currently mirrors.
    let mut alias: Vec<Reg> = (0..f.nregs).collect();
    for i in 0..f.ops.len() {
        stats.op_visits += 1;
        if targets[i] {
            for (r, a) in alias.iter_mut().enumerate() {
                *a = r as Reg;
            }
        }
        // Rewrite uses first (calls keep their contiguous arg block).
        let resolve = |alias: &[Reg], r: Reg| alias[r as usize];
        let op = &mut f.ops[i];
        match op {
            ROp::Move { rs, .. } | ROp::Un { ra: rs, .. } | ROp::GlobalSet { rs, .. }
            | ROp::MemGrow { rs, .. } => *rs = resolve(&alias, *rs),
            ROp::Bin { ra, rb, .. } | ROp::BrCmp { ra, rb, .. } | ROp::BrCmpZ { ra, rb, .. } => {
                *ra = resolve(&alias, *ra);
                *rb = resolve(&alias, *rb);
            }
            ROp::Load { addr, .. } => *addr = resolve(&alias, *addr),
            ROp::Store { addr, val, .. } => {
                *addr = resolve(&alias, *addr);
                *val = resolve(&alias, *val);
            }
            ROp::Select { cond, a, b, .. } => {
                *cond = resolve(&alias, *cond);
                *a = resolve(&alias, *a);
                *b = resolve(&alias, *b);
            }
            ROp::BrIf { cond, .. } | ROp::BrIfZ { cond, .. } | ROp::BrTable { idx: cond, .. } => {
                *cond = resolve(&alias, *cond)
            }
            ROp::Ret { rs, has } if *has => {
                *rs = resolve(&alias, *rs);
            }
            _ => {}
        }
        // Update alias state for the def.
        let op = f.ops[i];
        if let Some(rd) = op.def() {
            // Anything aliasing rd is stale.
            for a in alias.iter_mut() {
                if *a == rd {
                    // This alias would now read the wrong value; reset it
                    // (self-alias is identity).
                }
            }
            for (r, a) in alias.iter_mut().enumerate() {
                if *a == rd && r as Reg != rd {
                    *a = r as Reg;
                }
            }
            if let ROp::Move { rd, rs } = op {
                if rd != rs {
                    alias[rd as usize] = alias[rs as usize];
                } else {
                    alias[rd as usize] = rd;
                }
            } else {
                alias[rd as usize] = rd;
            }
        }
        if op.target().is_some() || op.is_terminator() {
            for (r, a) in alias.iter_mut().enumerate() {
                *a = r as Reg;
            }
        }
    }
    stats
}

#[allow(clippy::needless_range_loop)] // index walks `targets`/`remap` and `f.ops` in lockstep
fn strength_reduce(f: &mut RFunc) -> PassStats {
    let mut stats = PassStats::default();
    let targets = branch_targets(f);
    let mut known: Vec<Option<u64>> = vec![None; f.nregs as usize];
    for i in 0..f.ops.len() {
        stats.op_visits += 1;
        if targets[i] {
            known.iter_mut().for_each(|k| *k = None);
        }
        let op = f.ops[i];
        if let ROp::Bin { op: bop, rd, ra, rb } = op {
            let kb = known[rb as usize];
            let replacement = match (bop, kb) {
                (Instr::I32Mul | Instr::I64Mul, Some(k)) if k.is_power_of_two() => {
                    let shift = k.trailing_zeros() as u64;
                    let shl = if bop == Instr::I32Mul {
                        Instr::I32Shl
                    } else {
                        Instr::I64Shl
                    };
                    stats.folded += 1;
                    Some((ROp::Const { rd: rb, bits: shift }, ROp::Bin { op: shl, rd, ra, rb }))
                }
                (Instr::I32DivU | Instr::I64DivU, Some(k)) if k.is_power_of_two() && k > 0 => {
                    let shift = k.trailing_zeros() as u64;
                    let shr = if bop == Instr::I32DivU {
                        Instr::I32ShrU
                    } else {
                        Instr::I64ShrU
                    };
                    stats.folded += 1;
                    Some((ROp::Const { rd: rb, bits: shift }, ROp::Bin { op: shr, rd, ra, rb }))
                }
                (Instr::I32RemU | Instr::I64RemU, Some(k)) if k.is_power_of_two() && k > 0 => {
                    let mask = k - 1;
                    let and = if bop == Instr::I32RemU {
                        Instr::I32And
                    } else {
                        Instr::I64And
                    };
                    stats.folded += 1;
                    Some((ROp::Const { rd: rb, bits: mask }, ROp::Bin { op: and, rd, ra, rb }))
                }
                (Instr::I32Add | Instr::I64Add | Instr::I32Or | Instr::I64Or
                | Instr::I32Xor | Instr::I64Xor | Instr::I32Sub | Instr::I64Sub, Some(0)) => {
                    stats.folded += 1;
                    f.ops[i] = ROp::Move { rd, rs: ra };
                    known[rd as usize] = known[ra as usize];
                    continue;
                }
                _ => None,
            };
            if let Some((new_const, new_bin)) = replacement {
                // Overwrite the (now unused) const def of rb, then the bin.
                // The const def of rb must dominate; we conservatively only
                // rewrite when the previous op defines rb as that constant.
                if i > 0 && f.ops[i - 1].def() == Some(rb) {
                    f.ops[i - 1] = new_const;
                    f.ops[i] = new_bin;
                    if let ROp::Const { rd: krd, bits } = new_const {
                        known[krd as usize] = Some(bits);
                    }
                    known[rd as usize] = None;
                    continue;
                }
            }
        }
        match op {
            ROp::Const { rd, bits } => known[rd as usize] = Some(bits),
            ROp::Move { rd, rs } => known[rd as usize] = known[rs as usize],
            _ => {
                if let Some(rd) = op.def() {
                    known[rd as usize] = None;
                }
            }
        }
        if op.target().is_some() || op.is_terminator() {
            known.iter_mut().for_each(|k| *k = None);
        }
    }
    stats
}

/// Fuses adjacent dependent ALU operations into one superinstruction:
/// `t <- op1(ra, rb); rd <- op2(t, rc)` becomes a single `Bin2` when `t`
/// dies at the second operation.
fn chain_fuse(f: &mut RFunc) -> PassStats {
    let mut stats = PassStats::default();
    let targets = branch_targets(f);
    for i in 0..f.ops.len().saturating_sub(1) {
        stats.op_visits += 1;
        if targets[i + 1] {
            continue;
        }
        let (first, second) = (f.ops[i], f.ops[i + 1]);
        let ROp::Bin { op: op1, rd: t, ra, rb } = first else {
            continue;
        };
        let ROp::Bin { op: op2, rd, ra: sa, rb: sb } = second else {
            continue;
        };
        if t < f.nlocals || reg_used_after(f, i + 2, t) {
            continue;
        }
        // Exactly one operand of the second op consumes the chain value.
        let (rc, swapped) = if sa == t && sb != t {
            (sb, false)
        } else if sb == t && sa != t {
            (sa, true)
        } else {
            continue;
        };
        f.ops[i] = ROp::Nop;
        f.ops[i + 1] = ROp::Bin2 { op1, op2, rd, ra, rb, rc, swapped };
        stats.fused += 1;
    }
    stats
}

/// Fuses `Const rb; Bin op rd, ra, rb` into an immediate form when the
/// constant register dies at the operation.
fn imm_fuse(f: &mut RFunc) -> PassStats {
    let mut stats = PassStats::default();
    let targets = branch_targets(f);
    for i in 0..f.ops.len().saturating_sub(1) {
        stats.op_visits += 1;
        if targets[i + 1] {
            continue;
        }
        let (k, bin) = (f.ops[i], f.ops[i + 1]);
        if let (ROp::Const { rd: kreg, bits }, ROp::Bin { op, rd, ra, rb }) = (k, bin) {
            if rb == kreg && ra != kreg && kreg >= f.nlocals && !reg_used_after(f, i + 2, kreg) {
                f.ops[i] = ROp::Nop;
                f.ops[i + 1] = ROp::BinImm { op, rd, ra, imm: bits };
                stats.fused += 1;
            }
        }
    }
    stats
}

fn cmp_fuse(f: &mut RFunc) -> PassStats {
    let mut stats = PassStats::default();
    let targets = branch_targets(f);
    let is_cmp = |op: Instr| {
        use Instr::*;
        matches!(
            op,
            I32Eq | I32Ne | I32LtS | I32LtU | I32GtS | I32GtU | I32LeS | I32LeU | I32GeS
                | I32GeU | I64Eq | I64Ne | I64LtS | I64LtU | I64GtS | I64GtU | I64LeS | I64LeU
                | I64GeS | I64GeU | F32Eq | F32Ne | F32Lt | F32Gt | F32Le | F32Ge | F64Eq
                | F64Ne | F64Lt | F64Gt | F64Le | F64Ge
        )
    };
    for i in 0..f.ops.len().saturating_sub(1) {
        stats.op_visits += 1;
        if targets[i + 1] {
            continue; // the branch is a join point; cannot fuse across it
        }
        let (cmp, branch) = (f.ops[i], f.ops[i + 1]);
        if let ROp::Bin { op, rd, ra, rb } = cmp {
            if !is_cmp(op) || rd < f.nlocals {
                continue;
            }
            // rd must not be used after the branch (stack slots are dead
            // once consumed; verify with a bounded forward scan).
            let consumed_only_by_branch = match branch {
                ROp::BrIf { cond, .. } | ROp::BrIfZ { cond, .. } if cond == rd => {
                    !reg_used_after(f, i + 2, rd)
                }
                _ => false,
            };
            if !consumed_only_by_branch {
                continue;
            }
            match branch {
                ROp::BrIf { target, .. } => {
                    f.ops[i] = ROp::Nop;
                    f.ops[i + 1] = ROp::BrCmp { op, ra, rb, target };
                    stats.fused += 1;
                }
                ROp::BrIfZ { target, .. } => {
                    f.ops[i] = ROp::Nop;
                    f.ops[i + 1] = ROp::BrCmpZ { op, ra, rb, target };
                    stats.fused += 1;
                }
                _ => {}
            }
        }
    }
    stats
}

/// Scans forward from `start` until `reg` is redefined (or function end),
/// reporting whether it is read anywhere in between.
fn reg_used_after(f: &RFunc, start: usize, reg: Reg) -> bool {
    for op in &f.ops[start..] {
        for u in op.uses().into_iter().flatten() {
            if u == reg {
                return true;
            }
        }
        if let ROp::Call { args, nargs, .. } | ROp::CallIndirect { args, nargs, .. } = op {
            if reg >= *args && reg < args + *nargs as Reg {
                return true;
            }
        }
        if op.def() == Some(reg) {
            return false;
        }
    }
    false
}

fn dce(f: &mut RFunc) -> PassStats {
    let mut stats = PassStats::default();
    // Fixpoint: removing one dead op can make its inputs dead.
    loop {
        let mut used = vec![false; f.nregs as usize];
        for op in &f.ops {
            stats.op_visits += 1;
            for u in op.uses().into_iter().flatten() {
                used[u as usize] = true;
            }
            if let ROp::Call { args, nargs, .. } | ROp::CallIndirect { args, nargs, elem: _, .. } =
                op
            {
                for r in *args..args + *nargs as Reg {
                    used[r as usize] = true;
                }
            }
            if let ROp::CallIndirect { elem, .. } = op {
                used[*elem as usize] = true;
            }
        }
        let mut changed = false;
        for op in f.ops.iter_mut() {
            if op.has_side_effect() || matches!(op, ROp::Nop) {
                continue;
            }
            if let Some(rd) = op.def() {
                if !used[rd as usize] {
                    *op = ROp::Nop;
                    stats.removed += 1;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    stats
}

/// Backward dead-store elimination: a pure def overwritten before any read
/// is removed. Branches and terminators conservatively make every register
/// live (their successors are not tracked), and join points are sound for
/// free in a backward linear walk.
fn dead_store(f: &mut RFunc) -> PassStats {
    let mut stats = PassStats::default();
    let targets = branch_targets(f);
    let mut live = vec![true; f.nregs as usize];
    for i in (0..f.ops.len()).rev() {
        stats.op_visits += 1;
        let op = f.ops[i];
        if op.target().is_some() || op.is_terminator() {
            live.iter_mut().for_each(|l| *l = true);
        }
        if let Some(rd) = op.def() {
            if !live[rd as usize] && !op.has_side_effect() {
                f.ops[i] = ROp::Nop;
                stats.removed += 1;
                continue;
            }
            live[rd as usize] = false;
        }
        for u in op.uses().into_iter().flatten() {
            live[u as usize] = true;
        }
        if let ROp::Call { args, nargs, .. } | ROp::CallIndirect { args, nargs, .. } = op {
            for r in args..args + nargs as Reg {
                live[r as usize] = true;
            }
        }
        if let ROp::CallIndirect { elem, .. } = op {
            live[elem as usize] = true;
        }
        // Entering (backward) a join point: liveness computed linearly is
        // valid for the fall-through predecessor; nothing to reset. But a
        // position that *is* a target begins a region whose predecessors
        // may also fall in — still sound.
        let _ = &targets;
    }
    stats
}

/// Local value numbering within straight-line regions: pure recomputations
/// become moves.
#[allow(clippy::needless_range_loop)] // index walks `targets`/`remap` and `f.ops` in lockstep
fn value_number(f: &mut RFunc) -> PassStats {
    use std::collections::HashMap;
    let mut stats = PassStats::default();
    let targets = branch_targets(f);
    // Value number per register, bumped on redefinition.
    let mut version: Vec<u32> = vec![0; f.nregs as usize];
    let mut table: HashMap<(u64, u64, u64), (Reg, u32)> = HashMap::new();
    let key_op = |op: &ROp| -> Option<(u64, Reg, Reg)> {
        match *op {
            ROp::Bin { op, rd: _, ra, rb } if !ROp::Bin { op, rd: 0, ra, rb }.has_side_effect() => {
                Some((instr_key(op), ra, rb))
            }
            ROp::Un { op, rd: _, ra } if !ROp::Un { op, rd: 0, ra }.has_side_effect() => {
                Some((instr_key(op) | (1 << 32), ra, 0))
            }
            _ => None,
        }
    };
    for i in 0..f.ops.len() {
        stats.op_visits += 1;
        if targets[i] {
            table.clear();
            for v in version.iter_mut() {
                *v += 1;
            }
        }
        let op = f.ops[i];
        if let Some((k, ra, rb)) = key_op(&op) {
            let rd = op.def().expect("keyed ops define");
            let key = (
                k,
                (version[ra as usize] as u64) << 32 | ra as u64,
                (version[rb as usize] as u64) << 32 | rb as u64,
            );
            if let Some(&(prev, prev_ver)) = table.get(&key) {
                if version[prev as usize] == prev_ver && prev != rd {
                    f.ops[i] = ROp::Move { rd, rs: prev };
                    version[rd as usize] += 1;
                    stats.cse_hits += 1;
                    continue;
                }
            }
            version[rd as usize] += 1;
            table.insert(key, (rd, version[rd as usize]));
        } else if let Some(rd) = op.def() {
            version[rd as usize] += 1;
        }
        if op.target().is_some() || op.is_terminator() {
            table.clear();
            for v in version.iter_mut() {
                *v += 1;
            }
        }
    }
    stats
}

fn instr_key(i: Instr) -> u64 {
    // A stable discriminant for hashing: the opcode byte where one exists.
    wasm_core::opcode::simple_to_byte(&i).map(|b| b as u64).unwrap_or(0xFFFF)
}

/// Removes `Nop`s and remaps every branch target and jump table.
#[allow(clippy::needless_range_loop)] // index walks `targets`/`remap` and `f.ops` in lockstep
fn compact(f: &mut RFunc) -> PassStats {
    let mut stats = PassStats::default();
    let n = f.ops.len();
    let mut remap = vec![0u32; n + 1];
    let mut new_idx = 0u32;
    for i in 0..n {
        stats.op_visits += 1;
        remap[i] = new_idx;
        if !matches!(f.ops[i], ROp::Nop) {
            new_idx += 1;
        } else {
            stats.removed += 1;
        }
    }
    remap[n] = new_idx;
    if stats.removed == 0 {
        return stats;
    }
    let mut new_ops = Vec::with_capacity(new_idx as usize);
    for op in f.ops.iter() {
        if matches!(op, ROp::Nop) {
            continue;
        }
        let mut op = *op;
        if let Some(t) = op.target() {
            if t != u32::MAX {
                op.set_target(remap[t as usize]);
            }
        }
        new_ops.push(op);
    }
    for table in f.tables.iter_mut() {
        for e in table.iter_mut() {
            if *e != u32::MAX {
                *e = remap[*e as usize];
            }
        }
    }
    f.ops = new_ops;
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jit::lower::lower;
    use wasm_core::builder::ModuleBuilder;
    use wasm_core::types::{FuncType, ValType};

    fn lowered(build: impl FnOnce(&mut ModuleBuilder)) -> RFunc {
        let mut b = ModuleBuilder::new();
        build(&mut b);
        let m = b.build();
        wasm_core::validate::validate(&m).unwrap();
        lower(&m, &m.funcs[0]).unwrap()
    }

    #[test]
    fn const_folding_collapses_arithmetic() {
        let mut f = lowered(|b| {
            b.begin_func(FuncType::new(&[], &[ValType::I32]));
            b.emit(Instr::I32Const(6));
            b.emit(Instr::I32Const(7));
            b.emit(Instr::I32Mul);
            b.finish_func();
        });
        let before = f.ops.len();
        let stats = optimize(&mut f, &PassConfig::standard());
        assert!(stats.folded >= 1);
        assert!(f.ops.len() < before);
        // The function should now be: const 42, ret (after DCE+compact).
        assert!(f.ops.iter().any(|op| matches!(op, ROp::Const { bits: 42, .. })));
    }

    #[test]
    fn copy_prop_and_dce_remove_stack_shuffles() {
        // local.get 0; local.get 1; add → singlepass emits 2 moves + add.
        let mut f = lowered(|b| {
            b.begin_func(FuncType::new(&[ValType::I32, ValType::I32], &[ValType::I32]));
            b.emit(Instr::LocalGet(0));
            b.emit(Instr::LocalGet(1));
            b.emit(Instr::I32Add);
            b.finish_func();
        });
        optimize(&mut f, &PassConfig::standard());
        // The moves should be gone: add directly on r0, r1.
        assert!(
            f.ops
                .iter()
                .any(|op| matches!(op, ROp::Bin { op: Instr::I32Add, ra: 0, rb: 1, .. })),
            "{:?}",
            f.ops
        );
        assert!(!f.ops.iter().any(|op| matches!(op, ROp::Move { .. })));
    }

    #[test]
    fn never_folds_a_trap() {
        let mut f = lowered(|b| {
            b.begin_func(FuncType::new(&[], &[ValType::I32]));
            b.emit(Instr::I32Const(1));
            b.emit(Instr::I32Const(0));
            b.emit(Instr::I32DivS);
            b.finish_func();
        });
        optimize(&mut f, &PassConfig::aggressive());
        assert!(
            f.ops.iter().any(|op| matches!(
                op,
                ROp::Bin { op: Instr::I32DivS, .. } | ROp::BinImm { op: Instr::I32DivS, .. }
            )),
            "division by zero must stay: {:?}",
            f.ops
        );
    }

    #[test]
    fn strength_reduction_rewrites_mul_pow2() {
        let mut f = lowered(|b| {
            b.begin_func(FuncType::new(&[ValType::I32], &[ValType::I32]));
            b.emit(Instr::LocalGet(0));
            b.emit(Instr::I32Const(8));
            b.emit(Instr::I32Mul);
            b.finish_func();
        });
        optimize(&mut f, &PassConfig::standard());
        assert!(
            f.ops.iter().any(|op| matches!(
                op,
                ROp::Bin { op: Instr::I32Shl, .. } | ROp::BinImm { op: Instr::I32Shl, .. }
            )),
            "{:?}",
            f.ops
        );
    }

    #[test]
    fn cmp_fuse_produces_brcmp() {
        let mut f = lowered(|b| {
            b.begin_func(FuncType::new(&[ValType::I32], &[ValType::I32]));
            b.emit(Instr::Block(wasm_core::instr::BlockType::Empty));
            b.emit(Instr::LocalGet(0));
            b.emit(Instr::I32Const(10));
            b.emit(Instr::I32LtS);
            b.emit(Instr::BrIf(0));
            b.emit(Instr::End);
            b.emit(Instr::I32Const(1));
            b.finish_func();
        });
        let stats = optimize(&mut f, &PassConfig::standard());
        assert!(stats.fused >= 1, "{:?}", f.ops);
        assert!(f.ops.iter().any(|op| matches!(op, ROp::BrCmp { .. })));
    }

    #[test]
    fn value_numbering_reuses_computation() {
        // (a+b) + (a+b): llvm tier should compute a+b once.
        let mut f = lowered(|b| {
            b.begin_func(FuncType::new(&[ValType::I32, ValType::I32], &[ValType::I32]));
            b.emit(Instr::LocalGet(0));
            b.emit(Instr::LocalGet(1));
            b.emit(Instr::I32Add);
            b.emit(Instr::LocalGet(0));
            b.emit(Instr::LocalGet(1));
            b.emit(Instr::I32Add);
            b.emit(Instr::I32Add);
            b.finish_func();
        });
        let stats = optimize(&mut f, &PassConfig::aggressive());
        assert!(stats.cse_hits >= 1, "{:?}", f.ops);
        let adds = f
            .ops
            .iter()
            .filter(|op| matches!(op, ROp::Bin { op: Instr::I32Add, .. }))
            .count();
        assert_eq!(adds, 2, "{:?}", f.ops); // a+b once, then the outer add
    }

    #[test]
    fn aggressive_does_at_least_as_well_as_standard() {
        let build = |b: &mut ModuleBuilder| {
            b.begin_func(FuncType::new(&[ValType::I32], &[ValType::I32]));
            b.emit(Instr::LocalGet(0));
            b.emit(Instr::I32Const(3));
            b.emit(Instr::I32Add);
            b.emit(Instr::LocalGet(0));
            b.emit(Instr::I32Const(3));
            b.emit(Instr::I32Add);
            b.emit(Instr::I32Mul);
            b.finish_func();
        };
        let mut std_f = lowered(build);
        let mut agg_f = lowered(build);
        optimize(&mut std_f, &PassConfig::standard());
        optimize(&mut agg_f, &PassConfig::aggressive());
        assert!(agg_f.ops.len() <= std_f.ops.len());
    }
    #[test]
    fn check_elim_proves_constant_address_access() {
        let mut f = lowered(|b| {
            b.memory(1, None);
            b.begin_func(FuncType::new(&[], &[ValType::I64]));
            b.emit(Instr::I32Const(64));
            b.emit(Instr::I64Load(wasm_core::instr::MemArg { align: 3, offset: 0 }));
            b.finish_func();
        });
        let stats = optimize(&mut f, &PassConfig::standard());
        assert!(stats.checks_eliminated >= 1, "{:?}", f.ops);
        assert!(!f.proofs.is_empty());
        assert!(verify::check_proofs(&f).is_empty());
    }

    #[test]
    fn check_elim_uses_dominating_guard() {
        // if (i < 128) { return load(i); } return 0;
        let mut f = lowered(|b| {
            b.memory(1, None);
            b.begin_func(FuncType::new(&[ValType::I32], &[ValType::I32]));
            b.emit(Instr::Block(wasm_core::instr::BlockType::Empty));
            b.emit(Instr::LocalGet(0));
            b.emit(Instr::I32Const(128));
            b.emit(Instr::I32GeU);
            b.emit(Instr::BrIf(0));
            b.emit(Instr::LocalGet(0));
            b.emit(Instr::I32Load(wasm_core::instr::MemArg { align: 2, offset: 0 }));
            b.emit(Instr::Return);
            b.emit(Instr::End);
            b.emit(Instr::I32Const(0));
            b.finish_func();
        });
        let stats = optimize(&mut f, &PassConfig::standard());
        assert!(stats.checks_eliminated >= 1, "{:?}", f.ops);
        let mem = f
            .proofs
            .iter()
            .find(|p| p.kind == analysis::range::CheckKind::MemInBounds)
            .expect("bounds proof");
        assert!(mem.guard.is_some(), "proof should cite the range guard: {:?}", f.proofs);
        assert!(verify::check_proofs(&f).is_empty());
    }

    #[test]
    fn check_elim_drops_dead_safe_division() {
        let mut f = lowered(|b| {
            b.begin_func(FuncType::new(&[ValType::I32], &[ValType::I32]));
            b.emit(Instr::LocalGet(0));
            b.emit(Instr::I32Const(7));
            b.emit(Instr::I32DivU);
            b.emit(Instr::Drop);
            b.emit(Instr::I32Const(1));
            b.finish_func();
        });
        optimize(&mut f, &PassConfig::aggressive());
        assert!(
            !f.ops.iter().any(|op| matches!(
                op,
                ROp::Bin { op: Instr::I32DivU, .. } | ROp::BinImm { op: Instr::I32DivU, .. }
            )),
            "a dead division by a provably nonzero constant should vanish: {:?}",
            f.ops
        );
    }

    #[test]
    fn corrupted_proof_is_rejected() {
        let mut f = lowered(|b| {
            b.memory(1, None);
            b.begin_func(FuncType::new(&[], &[ValType::I64]));
            b.emit(Instr::I32Const(64));
            b.emit(Instr::I64Load(wasm_core::instr::MemArg { align: 3, offset: 0 }));
            b.finish_func();
        });
        optimize(&mut f, &PassConfig::standard());
        assert!(!f.proofs.is_empty());
        // Tamper 1: claim an unsafe (out-of-bounds) interval.
        let mut g = f.clone();
        g.proofs[0].fact = analysis::range::Fact::Int(analysis::range::Interval::new(0, 1 << 30));
        assert!(!verify::check_proofs(&g).is_empty());
        // Tamper 2: claim a narrower interval than derivable.
        let mut g = f.clone();
        g.proofs[0].fact = analysis::range::Fact::Int(analysis::range::Interval::exact(0));
        assert!(!verify::check_proofs(&g).is_empty());
        // Tamper 3: cite a non-guard op as the dominating guard.
        let mut g = f.clone();
        g.proofs[0].guard = Some(0);
        assert!(!verify::check_proofs(&g).is_empty());
        // Tamper 4: point at an op with no check at all.
        let mut g = f.clone();
        g.proofs[0].op = (g.ops.len() - 1) as u32;
        assert!(!verify::check_proofs(&g).is_empty());
    }

    #[test]
    fn immediate_fusion_removes_const_defs() {
        let mut f = lowered(|b| {
            b.begin_func(FuncType::new(&[ValType::I32], &[ValType::I32]));
            b.emit(Instr::LocalGet(0));
            b.emit(Instr::I32Const(3));
            b.emit(Instr::I32Add);
            b.emit(Instr::I32Const(10));
            b.emit(Instr::I32Mul);
            b.finish_func();
        });
        let stats = optimize(&mut f, &PassConfig::standard());
        assert!(stats.fused >= 1, "{:?}", f.ops);
        assert!(
            f.ops.iter().any(|op| matches!(op, ROp::BinImm { imm: 3, .. })),
            "{:?}",
            f.ops
        );
        // The const defs are gone.
        assert!(!f.ops.iter().any(|op| matches!(op, ROp::Const { .. })), "{:?}", f.ops);
    }
}
