//! One-pass lowering of WebAssembly stack code to register IR.
//!
//! This *is* the SinglePass tier: what it emits is executed directly by
//! the singlepass engine. The optimizing tiers run the passes in
//! [`super::opt`] over its output.

use crate::jit::ir::{RFunc, ROp, Reg};
use wasm_core::control::ControlMap;
use wasm_core::instr::Instr;
use wasm_core::module::Module;

/// A pending `br_table` trampoline: (op index to patch, table slot,
/// optional value move applied before the jump).
type Trampoline = (usize, u32, Option<(Reg, Reg)>);

struct OpenBlock {
    is_loop: bool,
    loop_target: u32,
    /// Stack height at entry (not counting locals).
    height: u16,
    arity: u8,
    end_arity: u8,
    /// Plain fixups: `ops` indices whose target is this block's end.
    fixups: Vec<usize>,
    /// Table fixups: `(table_idx, slot)` whose target is this block's end
    /// (slot == -1 is the default entry).
    table_fixups: Vec<(usize, i32)>,
    if_skip: Option<usize>,
    born_dead: bool,
    unreachable: bool,
}

/// Lowers one validated function to register IR.
///
/// # Errors
///
/// Fails only on malformed control structure, which validation excludes.
pub fn lower(
    module: &Module,
    func: &wasm_core::module::Func,
) -> Result<RFunc, wasm_core::ValidateError> {
    lower_with_map(module, func).map(|(f, _)| f)
}

/// Like [`lower`], but also returns a source map: for every emitted op,
/// the index of the wasm instruction it was lowered from. Used by the
/// interpreter tiers to carry range-analysis facts (computed over the
/// unoptimized register code) back to wasm instruction granularity.
///
/// # Errors
///
/// Fails only on malformed control structure, which validation excludes.
pub fn lower_with_map(
    module: &Module,
    func: &wasm_core::module::Func,
) -> Result<(RFunc, Vec<u32>), wasm_core::ValidateError> {
    let _map = ControlMap::build(&func.body)?;
    let ty = &module.types[func.type_idx as usize];
    let nparams = ty.params.len() as u16;
    let nlocals = nparams + func.locals.len() as u16;
    let has_result = !ty.results.is_empty();

    let mut out = RFunc {
        nparams,
        nlocals,
        result: has_result,
        mem_min_bytes: module.min_memory_pages() as u64 * 65536,
        ..RFunc::default()
    };
    let mut srcmap: Vec<u32> = Vec::new();
    let mut height: u16 = 0;
    let mut max_height: u16 = 0;
    let mut blocks: Vec<OpenBlock> = vec![OpenBlock {
        is_loop: false,
        loop_target: 0,
        height: 0,
        arity: has_result as u8,
        end_arity: has_result as u8,
        fixups: Vec::new(),
        table_fixups: Vec::new(),
        if_skip: None,
        born_dead: false,
        unreachable: false,
    }];

    // Register of the stack slot at height `h`.
    let slot = |h: u16| -> Reg { nlocals + h };

    let body = &func.body;
    let mut i = 0usize;
    while i < body.len() {
        let instr = &body[i];
        let dead = blocks.last().expect("block stack").unreachable;
        max_height = max_height.max(height);

        match instr {
            Instr::Block(bt) | Instr::Loop(bt) | Instr::If(bt) => {
                if dead {
                    blocks.push(OpenBlock {
                        is_loop: false,
                        loop_target: 0,
                        height,
                        arity: 0,
                        end_arity: 0,
                        fixups: Vec::new(),
                        table_fixups: Vec::new(),
                        if_skip: None,
                        born_dead: true,
                        unreachable: true,
                    });
                    i += 1;
                    continue;
                }
                let is_loop = matches!(instr, Instr::Loop(_));
                let is_if = matches!(instr, Instr::If(_));
                if is_if {
                    height -= 1;
                }
                let mut blk = OpenBlock {
                    is_loop,
                    loop_target: out.ops.len() as u32,
                    height,
                    arity: if is_loop { 0 } else { bt.arity() as u8 },
                    end_arity: bt.arity() as u8,
                    fixups: Vec::new(),
                    table_fixups: Vec::new(),
                    if_skip: None,
                    born_dead: false,
                    unreachable: false,
                };
                if is_if {
                    blk.if_skip = Some(out.ops.len());
                    out.ops.push(ROp::BrIfZ {
                        cond: slot(height),
                        target: u32::MAX,
                    });
                }
                blocks.push(blk);
            }
            Instr::Else => {
                let (entry_height, was_dead, born_dead) = {
                    let blk = blocks.last().expect("blocks");
                    (blk.height, blk.unreachable, blk.born_dead)
                };
                let jump_site = if was_dead {
                    None
                } else {
                    let s = out.ops.len();
                    out.ops.push(ROp::Jump { target: u32::MAX });
                    Some(s)
                };
                let else_start = out.ops.len() as u32;
                let blk = blocks.last_mut().expect("blocks");
                if let Some(skip) = blk.if_skip.take() {
                    out.ops[skip].set_target(else_start);
                }
                if let Some(s) = jump_site {
                    blk.fixups.push(s);
                }
                blk.unreachable = born_dead;
                height = entry_height;
            }
            Instr::End => {
                let blk = blocks.pop().expect("blocks");
                let end_pos = out.ops.len() as u32;
                if let Some(skip) = blk.if_skip {
                    out.ops[skip].set_target(end_pos);
                }
                for site in &blk.fixups {
                    out.ops[*site].set_target(end_pos);
                }
                for (table, slot_idx) in &blk.table_fixups {
                    let t = &mut out.tables[*table];
                    let pos = if *slot_idx < 0 {
                        t.len() - 1
                    } else {
                        *slot_idx as usize
                    };
                    t[pos] = end_pos;
                }
                height = blk.height + blk.end_arity as u16;
                if blocks.is_empty() {
                    out.ops.push(ROp::Ret {
                        rs: slot(0),
                        has: has_result,
                    });
                    break;
                }
            }
            _ if dead => {}
            Instr::Br(d) => {
                emit_branch(&mut out, &mut blocks, *d, &mut height, nlocals, None);
                blocks.last_mut().expect("blocks").unreachable = true;
            }
            Instr::BrIf(d) => {
                height -= 1;
                let cond = slot(height);
                emit_branch(&mut out, &mut blocks, *d, &mut height, nlocals, Some(cond));
            }
            Instr::BrTable(pool) => {
                height -= 1;
                let sel = slot(height);
                let table = &module.br_tables[*pool as usize];
                let table_idx = out.tables.len();
                // Resolve each entry; entries needing a value move get a
                // trampoline emitted right after the BrTable (dead space).
                let mut entries: Vec<u32> = Vec::with_capacity(table.targets.len() + 1);
                let mut trampolines: Vec<Trampoline> = Vec::new();
                for (slot_idx, &d) in table
                    .targets
                    .iter()
                    .chain(std::iter::once(&table.default))
                    .enumerate()
                {
                    let is_default = slot_idx == table.targets.len();
                    let bidx = blocks.len() - 1 - d as usize;
                    let blk = &blocks[bidx];
                    let keep = blk.arity;
                    let needs_move = keep == 1 && height != blk.height + 1;
                    let mv = if needs_move {
                        Some((slot(blk.height), slot(height - 1)))
                    } else {
                        None
                    };
                    if blk.is_loop && mv.is_none() {
                        entries.push(blk.loop_target);
                    } else {
                        // Trampoline (also used for forward targets needing
                        // moves; plain forward targets are patched in place).
                        if mv.is_none() {
                            entries.push(u32::MAX);
                            let sl = if is_default { -1 } else { slot_idx as i32 };
                            blocks[bidx].table_fixups.push((table_idx, sl));
                        } else {
                            entries.push(u32::MAX); // patched to trampoline below
                            trampolines.push((slot_idx, d, mv));
                        }
                    }
                }
                out.tables.push(entries);
                out.ops.push(ROp::BrTable {
                    idx: sel,
                    table: table_idx as u32,
                });
                for (slot_idx, d, mv) in trampolines {
                    let tramp = out.ops.len() as u32;
                    out.tables[table_idx][slot_idx] = tramp;
                    let (rd, rs) = mv.expect("trampolines only for moves");
                    out.ops.push(ROp::Move { rd, rs });
                    let bidx = blocks.len() - 1 - d as usize;
                    if blocks[bidx].is_loop {
                        let t = blocks[bidx].loop_target;
                        out.ops.push(ROp::Jump { target: t });
                    } else {
                        let s = out.ops.len();
                        out.ops.push(ROp::Jump { target: u32::MAX });
                        blocks[bidx].fixups.push(s);
                    }
                }
                blocks.last_mut().expect("blocks").unreachable = true;
            }
            Instr::Return => {
                out.ops.push(ROp::Ret {
                    rs: if has_result { slot(height - 1) } else { 0 },
                    has: has_result,
                });
                blocks.last_mut().expect("blocks").unreachable = true;
            }
            Instr::Unreachable => {
                out.ops.push(ROp::Trap);
                blocks.last_mut().expect("blocks").unreachable = true;
            }
            Instr::Nop => {}
            Instr::Drop => height -= 1,
            Instr::Select => {
                height -= 2;
                out.ops.push(ROp::Select {
                    rd: slot(height - 1),
                    cond: slot(height + 1),
                    a: slot(height - 1),
                    b: slot(height),
                });
            }
            Instr::LocalGet(n) => {
                out.ops.push(ROp::Move {
                    rd: slot(height),
                    rs: *n as Reg,
                });
                height += 1;
            }
            Instr::LocalSet(n) => {
                height -= 1;
                out.ops.push(ROp::Move {
                    rd: *n as Reg,
                    rs: slot(height),
                });
            }
            Instr::LocalTee(n) => {
                out.ops.push(ROp::Move {
                    rd: *n as Reg,
                    rs: slot(height - 1),
                });
            }
            Instr::GlobalGet(n) => {
                out.ops.push(ROp::GlobalGet {
                    rd: slot(height),
                    idx: *n,
                });
                height += 1;
            }
            Instr::GlobalSet(n) => {
                height -= 1;
                out.ops.push(ROp::GlobalSet {
                    idx: *n,
                    rs: slot(height),
                });
            }
            Instr::MemorySize => {
                out.ops.push(ROp::MemSize { rd: slot(height) });
                height += 1;
            }
            Instr::MemoryGrow => {
                out.ops.push(ROp::MemGrow {
                    rd: slot(height - 1),
                    rs: slot(height - 1),
                });
            }
            Instr::I32Const(v) => {
                out.ops.push(ROp::Const {
                    rd: slot(height),
                    bits: *v as u32 as u64,
                });
                height += 1;
            }
            Instr::I64Const(v) => {
                out.ops.push(ROp::Const {
                    rd: slot(height),
                    bits: *v as u64,
                });
                height += 1;
            }
            Instr::F32Const(b) => {
                out.ops.push(ROp::Const {
                    rd: slot(height),
                    bits: *b as u64,
                });
                height += 1;
            }
            Instr::F64Const(b) => {
                out.ops.push(ROp::Const {
                    rd: slot(height),
                    bits: *b,
                });
                height += 1;
            }
            Instr::Call(f) => {
                let cty = module.func_type(*f).expect("validated");
                let nargs = cty.params.len() as u16;
                let ret = !cty.results.is_empty();
                height -= nargs;
                out.ops.push(ROp::Call {
                    f: *f,
                    args: slot(height),
                    nargs: nargs as u8,
                    ret,
                });
                if ret {
                    height += 1;
                }
            }
            Instr::CallIndirect(type_idx) => {
                let cty = &module.types[*type_idx as usize];
                let nargs = cty.params.len() as u16;
                let ret = !cty.results.is_empty();
                height -= 1; // element index
                let elem = slot(height);
                height -= nargs;
                out.ops.push(ROp::CallIndirect {
                    type_idx: *type_idx,
                    elem,
                    args: slot(height),
                    nargs: nargs as u8,
                    ret,
                });
                if ret {
                    height += 1;
                }
            }
            other => {
                if let Some((_, m)) = wasm_core::opcode::mem_opcode(other) {
                    if crate::interp::tree::is_store_op(other) {
                        height -= 2;
                        out.ops.push(ROp::Store {
                            op: *other,
                            addr: slot(height),
                            val: slot(height + 1),
                            offset: m.offset,
                        });
                    } else {
                        out.ops.push(ROp::Load {
                            op: *other,
                            rd: slot(height - 1),
                            addr: slot(height - 1),
                            offset: m.offset,
                        });
                    }
                } else if crate::numeric::is_binary(*other) {
                    height -= 1;
                    out.ops.push(ROp::Bin {
                        op: *other,
                        rd: slot(height - 1),
                        ra: slot(height - 1),
                        rb: slot(height),
                    });
                } else if crate::numeric::is_unary(*other) {
                    out.ops.push(ROp::Un {
                        op: *other,
                        rd: slot(height - 1),
                        ra: slot(height - 1),
                    });
                } else {
                    unreachable!("unhandled instruction in lowering: {other:?}");
                }
            }
        }
        srcmap.resize(out.ops.len(), i as u32);
        i += 1;
    }
    srcmap.resize(out.ops.len(), body.len().saturating_sub(1) as u32);

    out.nregs = nlocals + max_height + 2;
    Ok((out, srcmap))
}

/// Emits a branch of depth `d`; `cond` is `Some(reg)` for `br_if`.
fn emit_branch(
    out: &mut RFunc,
    blocks: &mut [OpenBlock],
    d: u32,
    height: &mut u16,
    nlocals: u16,
    cond: Option<Reg>,
) {
    let bidx = blocks.len() - 1 - d as usize;
    let (is_loop, loop_target, bheight, arity) = {
        let b = &blocks[bidx];
        (b.is_loop, b.loop_target, b.height, b.arity)
    };
    let slot = |h: u16| -> Reg { nlocals + h };
    let needs_move = arity == 1 && *height != bheight + 1;
    let mv = if needs_move {
        Some(ROp::Move {
            rd: slot(bheight),
            rs: slot(*height - 1),
        })
    } else {
        None
    };

    match cond {
        None => {
            if let Some(m) = mv {
                out.ops.push(m);
            }
            if is_loop {
                out.ops.push(ROp::Jump {
                    target: loop_target,
                });
            } else {
                let s = out.ops.len();
                out.ops.push(ROp::Jump { target: u32::MAX });
                blocks[bidx].fixups.push(s);
            }
        }
        Some(c) => {
            match mv {
                None => {
                    if is_loop {
                        out.ops.push(ROp::BrIf {
                            cond: c,
                            target: loop_target,
                        });
                    } else {
                        let s = out.ops.len();
                        out.ops.push(ROp::BrIf {
                            cond: c,
                            target: u32::MAX,
                        });
                        blocks[bidx].fixups.push(s);
                    }
                }
                Some(m) => {
                    // if (!c) skip; move; jump target; skip:
                    let skip_site = out.ops.len();
                    out.ops.push(ROp::BrIfZ {
                        cond: c,
                        target: u32::MAX,
                    });
                    out.ops.push(m);
                    if is_loop {
                        out.ops.push(ROp::Jump {
                            target: loop_target,
                        });
                    } else {
                        let s = out.ops.len();
                        out.ops.push(ROp::Jump { target: u32::MAX });
                        blocks[bidx].fixups.push(s);
                    }
                    let after = out.ops.len() as u32;
                    out.ops[skip_site].set_target(after);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wasm_core::builder::ModuleBuilder;
    use wasm_core::types::{FuncType, ValType};

    fn lower_module(m: &Module) -> Vec<RFunc> {
        wasm_core::validate::validate(m).unwrap();
        m.funcs.iter().map(|f| lower(m, f).unwrap()).collect()
    }

    #[test]
    fn add_lowers_to_register_code() {
        let mut b = ModuleBuilder::new();
        b.begin_func(FuncType::new(&[ValType::I32, ValType::I32], &[ValType::I32]));
        b.emit(Instr::LocalGet(0));
        b.emit(Instr::LocalGet(1));
        b.emit(Instr::I32Add);
        b.finish_func();
        let m = b.build();
        let f = &lower_module(&m)[0];
        // move r2<-r0; move r3<-r1; add r2<-r2,r3; ret r2
        assert_eq!(f.ops.len(), 4);
        assert!(matches!(f.ops[2], ROp::Bin { op: Instr::I32Add, rd: 2, ra: 2, rb: 3 }));
        assert!(matches!(f.ops[3], ROp::Ret { rs: 2, has: true }));
    }

    #[test]
    fn nregs_covers_stack_depth() {
        let mut b = ModuleBuilder::new();
        b.begin_func(FuncType::new(&[], &[ValType::I32]));
        for _ in 0..5 {
            b.emit(Instr::I32Const(1));
        }
        for _ in 0..4 {
            b.emit(Instr::I32Add);
        }
        b.finish_func();
        let m = b.build();
        let f = &lower_module(&m)[0];
        assert!(f.nregs >= 5);
    }

    #[test]
    fn branch_with_value_emits_move() {
        // block (result i32): const 1; const 2; br 0 (carries 2 from height 2 to 0)
        let mut b = ModuleBuilder::new();
        b.begin_func(FuncType::new(&[], &[ValType::I32]));
        b.emit(Instr::Block(wasm_core::instr::BlockType::Value(ValType::I32)));
        b.emit(Instr::I32Const(1));
        b.emit(Instr::I32Const(2));
        b.emit(Instr::Br(0));
        b.emit(Instr::End);
        b.finish_func();
        let m = b.build();
        let f = &lower_module(&m)[0];
        assert!(
            f.ops.iter().any(|op| matches!(op, ROp::Move { rd: 0, rs: 1 })),
            "expected value move, got {:?}",
            f.ops
        );
    }
}
