//! Ahead-of-time compilation artifacts.
//!
//! An artifact is a self-contained binary image of a compiled module:
//! loading it skips decoding, validation, lowering, and optimization —
//! exactly the cost AOT removes in the paper's Figure 3 / Table 4. The
//! format is a compact custom binary encoding (real AOT images are
//! binary, and the workspace deliberately carries no serialization
//! framework dependency).

use std::rc::Rc;

use crate::error::EngineError;
use crate::jit::exec::RegCode;
use crate::jit::ir::{RFunc, ROp};
use crate::jit::Tier;
use analysis::range;
use wasm_core::instr::{Instr, MemArg};
use wasm_core::leb::{self, Reader};

/// Artifact magic: `WAOT`.
const MAGIC: &[u8; 4] = b"WAOT";
/// Artifact format version. Version 2 added the per-function minimum
/// memory size and check-elimination proof obligations; loading
/// re-derives every obligation, so a tampered artifact is rejected.
const VERSION: u32 = 2;

/// Serializes a compiled module into an AOT artifact.
pub fn to_bytes(code: &RegCode, tier: Tier) -> Vec<u8> {
    let mut out = Vec::with_capacity(4096);
    out.extend_from_slice(MAGIC);
    leb::write_u32(&mut out, VERSION);
    out.push(match tier {
        Tier::Singlepass => 0,
        Tier::Cranelift => 1,
        Tier::Llvm => 2,
    });
    // Embed the module (needed for types/exports/data at instantiation).
    let module_bytes = wasm_core::encode::encode(&code.module);
    leb::write_u32(&mut out, module_bytes.len() as u32);
    out.extend_from_slice(&module_bytes);
    // Compiled functions.
    leb::write_u32(&mut out, code.funcs.len() as u32);
    for f in &code.funcs {
        write_func(&mut out, f);
    }
    out
}

/// Deserializes an AOT artifact.
///
/// # Errors
///
/// Returns [`EngineError::BadArtifact`] on malformed input, wrong magic or
/// version; the embedded module is re-decoded and must be well-formed.
pub fn from_bytes(bytes: &[u8]) -> Result<(RegCode, Tier), EngineError> {
    let bad = |m: &str| EngineError::BadArtifact(m.to_string());
    let mut r = Reader::new(bytes);
    if r.bytes(4).map_err(|_| bad("truncated header"))? != MAGIC {
        return Err(bad("wrong magic"));
    }
    let version = r.u32().map_err(|_| bad("truncated version"))?;
    if version != VERSION {
        return Err(EngineError::BadArtifact(format!(
            "unsupported artifact version {version}"
        )));
    }
    let tier = match r.byte().map_err(|_| bad("truncated tier"))? {
        0 => Tier::Singlepass,
        1 => Tier::Cranelift,
        2 => Tier::Llvm,
        t => return Err(EngineError::BadArtifact(format!("unknown tier {t}"))),
    };
    let mlen = r.u32().map_err(|_| bad("truncated module length"))? as usize;
    let module_bytes = r.bytes(mlen).map_err(|_| bad("truncated module"))?;
    let module = wasm_core::decode::decode(module_bytes)?;
    let nfuncs = r.u32().map_err(|_| bad("truncated func count"))? as usize;
    if nfuncs != module.funcs.len() {
        return Err(bad("function count mismatch"));
    }
    // Counts are untrusted: cap every pre-allocation by what the remaining
    // bytes could possibly encode (each element costs at least one byte).
    let mut funcs = Vec::with_capacity(nfuncs.min(r.remaining()));
    for _ in 0..nfuncs {
        funcs.push(read_func(&mut r).map_err(|_| bad("truncated function"))?);
    }
    let code = RegCode::try_new(Rc::new(module), funcs)
        .map_err(|e| EngineError::BadArtifact(format!("invalid code: {e}")))?;
    Ok((code, tier))
}

fn write_func(out: &mut Vec<u8>, f: &RFunc) {
    leb::write_u32(out, f.nparams as u32);
    leb::write_u32(out, f.nlocals as u32);
    leb::write_u32(out, f.nregs as u32);
    out.push(f.result as u8);
    leb::write_u32(out, f.tables.len() as u32);
    for t in &f.tables {
        leb::write_u32(out, t.len() as u32);
        for e in t {
            leb::write_u32(out, *e);
        }
    }
    leb::write_u32(out, f.ops.len() as u32);
    for op in &f.ops {
        write_op(out, op);
    }
    leb::write_u64(out, f.mem_min_bytes);
    leb::write_u32(out, f.proofs.len() as u32);
    for p in &f.proofs {
        write_obligation(out, p);
    }
}

/// Guard sentinel for "no dominating guard".
const NO_GUARD: u32 = u32::MAX;

fn write_obligation(out: &mut Vec<u8>, p: &range::Obligation) {
    leb::write_u32(out, p.op);
    out.push(match p.kind {
        range::CheckKind::MemInBounds => 0,
        range::CheckKind::DivSafe => 1,
        range::CheckKind::TruncSafe => 2,
    });
    match p.fact {
        range::Fact::Int(iv) => {
            out.push(0);
            leb::write_u64(out, iv.lo as u64);
            leb::write_u64(out, iv.hi as u64);
        }
        range::Fact::Float(fv) => {
            out.push(1);
            leb::write_u64(out, fv.lo.to_bits());
            leb::write_u64(out, fv.hi.to_bits());
            out.push(fv.nan as u8);
        }
    }
    leb::write_u32(out, p.guard.unwrap_or(NO_GUARD));
}

fn read_obligation(r: &mut Reader<'_>) -> Result<range::Obligation, wasm_core::DecodeError> {
    fn bad(r: &Reader<'_>) -> wasm_core::DecodeError {
        wasm_core::DecodeError {
            offset: r.pos(),
            kind: wasm_core::error::DecodeErrorKind::UnknownOpcode(0),
        }
    }
    let op = r.u32()?;
    let kind = match r.byte()? {
        0 => range::CheckKind::MemInBounds,
        1 => range::CheckKind::DivSafe,
        2 => range::CheckKind::TruncSafe,
        _ => return Err(bad(r)),
    };
    let fact = match r.byte()? {
        0 => {
            let lo = r.u64()? as i64;
            let hi = r.u64()? as i64;
            range::Fact::Int(range::Interval { lo, hi })
        }
        1 => {
            let lo = f64::from_bits(r.u64()?);
            let hi = f64::from_bits(r.u64()?);
            let nan = r.byte()? != 0;
            range::Fact::Float(range::FInterval { lo, hi, nan })
        }
        _ => return Err(bad(r)),
    };
    let g = r.u32()?;
    Ok(range::Obligation { op, kind, fact, guard: (g != NO_GUARD).then_some(g) })
}

fn read_func(r: &mut Reader<'_>) -> Result<RFunc, wasm_core::DecodeError> {
    // Frame dimensions are u16 in the IR; an overflowing count is corrupt,
    // not truncatable.
    let dim = |r: &mut Reader<'_>, v: u32| {
        u16::try_from(v).map_err(|_| wasm_core::DecodeError {
            offset: r.pos(),
            kind: wasm_core::DecodeErrorKind::IntTooLarge,
        })
    };
    let v = r.u32()?;
    let nparams = dim(r, v)?;
    let v = r.u32()?;
    let nlocals = dim(r, v)?;
    let v = r.u32()?;
    let nregs = dim(r, v)?;
    let result = r.byte()? != 0;
    let ntables = r.u32()? as usize;
    let mut tables = Vec::with_capacity(ntables.min(r.remaining()));
    for _ in 0..ntables {
        let n = r.u32()? as usize;
        let mut t = Vec::with_capacity(n.min(r.remaining()));
        for _ in 0..n {
            t.push(r.u32()?);
        }
        tables.push(t);
    }
    let nops = r.u32()? as usize;
    let mut ops = Vec::with_capacity(nops.min(r.remaining()));
    for _ in 0..nops {
        ops.push(read_op(r)?);
    }
    let mem_min_bytes = r.u64()?;
    let nproofs = r.u32()? as usize;
    let mut proofs = Vec::with_capacity(nproofs.min(r.remaining()));
    for _ in 0..nproofs {
        proofs.push(read_obligation(r)?);
    }
    Ok(RFunc {
        ops,
        nparams,
        nlocals,
        nregs,
        result,
        tables,
        mem_min_bytes,
        proofs,
    })
}

/// Encodes an [`Instr`] operator as its binary opcode byte.
fn instr_byte(i: Instr) -> u8 {
    if let Some(b) = wasm_core::opcode::simple_to_byte(&i) {
        return b;
    }
    if let Some((b, _)) = wasm_core::opcode::mem_opcode(&i) {
        return b;
    }
    unreachable!("IR operators always have opcode bytes: {i:?}")
}

fn instr_from_byte(b: u8) -> Option<Instr> {
    wasm_core::opcode::simple_from_byte(b)
        .or_else(|| wasm_core::opcode::mem_from_byte(b, MemArg::default()))
}

fn write_op(out: &mut Vec<u8>, op: &ROp) {
    use ROp::*;
    match *op {
        Const { rd, bits } => {
            out.push(0);
            leb::write_u32(out, rd as u32);
            leb::write_u64(out, bits);
        }
        Move { rd, rs } => {
            out.push(1);
            leb::write_u32(out, rd as u32);
            leb::write_u32(out, rs as u32);
        }
        Bin { op, rd, ra, rb } => {
            out.push(2);
            out.push(instr_byte(op));
            leb::write_u32(out, rd as u32);
            leb::write_u32(out, ra as u32);
            leb::write_u32(out, rb as u32);
        }
        Un { op, rd, ra } => {
            out.push(3);
            out.push(instr_byte(op));
            leb::write_u32(out, rd as u32);
            leb::write_u32(out, ra as u32);
        }
        Load { op, rd, addr, offset } => {
            out.push(4);
            out.push(instr_byte(op));
            leb::write_u32(out, rd as u32);
            leb::write_u32(out, addr as u32);
            leb::write_u32(out, offset);
        }
        Store { op, addr, val, offset } => {
            out.push(5);
            out.push(instr_byte(op));
            leb::write_u32(out, addr as u32);
            leb::write_u32(out, val as u32);
            leb::write_u32(out, offset);
        }
        Select { rd, cond, a, b } => {
            out.push(6);
            leb::write_u32(out, rd as u32);
            leb::write_u32(out, cond as u32);
            leb::write_u32(out, a as u32);
            leb::write_u32(out, b as u32);
        }
        GlobalGet { rd, idx } => {
            out.push(7);
            leb::write_u32(out, rd as u32);
            leb::write_u32(out, idx);
        }
        GlobalSet { idx, rs } => {
            out.push(8);
            leb::write_u32(out, idx);
            leb::write_u32(out, rs as u32);
        }
        MemSize { rd } => {
            out.push(9);
            leb::write_u32(out, rd as u32);
        }
        MemGrow { rd, rs } => {
            out.push(10);
            leb::write_u32(out, rd as u32);
            leb::write_u32(out, rs as u32);
        }
        Jump { target } => {
            out.push(11);
            leb::write_u32(out, target);
        }
        BrIf { cond, target } => {
            out.push(12);
            leb::write_u32(out, cond as u32);
            leb::write_u32(out, target);
        }
        BrIfZ { cond, target } => {
            out.push(13);
            leb::write_u32(out, cond as u32);
            leb::write_u32(out, target);
        }
        BrCmp { op, ra, rb, target } => {
            out.push(14);
            out.push(instr_byte(op));
            leb::write_u32(out, ra as u32);
            leb::write_u32(out, rb as u32);
            leb::write_u32(out, target);
        }
        BrCmpZ { op, ra, rb, target } => {
            out.push(15);
            out.push(instr_byte(op));
            leb::write_u32(out, ra as u32);
            leb::write_u32(out, rb as u32);
            leb::write_u32(out, target);
        }
        BrTable { idx, table } => {
            out.push(16);
            leb::write_u32(out, idx as u32);
            leb::write_u32(out, table);
        }
        Call { f, args, nargs, ret } => {
            out.push(17);
            leb::write_u32(out, f);
            leb::write_u32(out, args as u32);
            out.push(nargs);
            out.push(ret as u8);
        }
        CallIndirect { type_idx, elem, args, nargs, ret } => {
            out.push(18);
            leb::write_u32(out, type_idx);
            leb::write_u32(out, elem as u32);
            leb::write_u32(out, args as u32);
            out.push(nargs);
            out.push(ret as u8);
        }
        Ret { rs, has } => {
            out.push(19);
            leb::write_u32(out, rs as u32);
            out.push(has as u8);
        }
        Trap => out.push(20),
        Nop => out.push(21),
        Bin2 { op1, op2, rd, ra, rb, rc, swapped } => {
            out.push(23);
            out.push(instr_byte(op1));
            out.push(instr_byte(op2));
            leb::write_u32(out, rd as u32);
            leb::write_u32(out, ra as u32);
            leb::write_u32(out, rb as u32);
            leb::write_u32(out, rc as u32);
            out.push(swapped as u8);
        }
        BinImm { op, rd, ra, imm } => {
            out.push(22);
            out.push(instr_byte(op));
            leb::write_u32(out, rd as u32);
            leb::write_u32(out, ra as u32);
            leb::write_u64(out, imm);
        }
    }
}

fn read_op(r: &mut Reader<'_>) -> Result<ROp, wasm_core::DecodeError> {
    use ROp::*;
    fn bad() -> wasm_core::DecodeError {
        wasm_core::DecodeError {
            offset: 0,
            kind: wasm_core::error::DecodeErrorKind::UnknownOpcode(0),
        }
    }
    let tag = r.byte()?;
    Ok(match tag {
        0 => Const {
            rd: r.u32()? as u16,
            bits: r.u64()?,
        },
        1 => Move {
            rd: r.u32()? as u16,
            rs: r.u32()? as u16,
        },
        2 => {
            let op = instr_from_byte(r.byte()?).ok_or_else(bad)?;
            Bin {
                op,
                rd: r.u32()? as u16,
                ra: r.u32()? as u16,
                rb: r.u32()? as u16,
            }
        }
        3 => {
            let op = instr_from_byte(r.byte()?).ok_or_else(bad)?;
            Un {
                op,
                rd: r.u32()? as u16,
                ra: r.u32()? as u16,
            }
        }
        4 => {
            let op = instr_from_byte(r.byte()?).ok_or_else(bad)?;
            Load {
                op,
                rd: r.u32()? as u16,
                addr: r.u32()? as u16,
                offset: r.u32()?,
            }
        }
        5 => {
            let op = instr_from_byte(r.byte()?).ok_or_else(bad)?;
            Store {
                op,
                addr: r.u32()? as u16,
                val: r.u32()? as u16,
                offset: r.u32()?,
            }
        }
        6 => Select {
            rd: r.u32()? as u16,
            cond: r.u32()? as u16,
            a: r.u32()? as u16,
            b: r.u32()? as u16,
        },
        7 => GlobalGet {
            rd: r.u32()? as u16,
            idx: r.u32()?,
        },
        8 => GlobalSet {
            idx: r.u32()?,
            rs: r.u32()? as u16,
        },
        9 => MemSize {
            rd: r.u32()? as u16,
        },
        10 => MemGrow {
            rd: r.u32()? as u16,
            rs: r.u32()? as u16,
        },
        11 => Jump { target: r.u32()? },
        12 => BrIf {
            cond: r.u32()? as u16,
            target: r.u32()?,
        },
        13 => BrIfZ {
            cond: r.u32()? as u16,
            target: r.u32()?,
        },
        14 => {
            let op = instr_from_byte(r.byte()?).ok_or_else(bad)?;
            BrCmp {
                op,
                ra: r.u32()? as u16,
                rb: r.u32()? as u16,
                target: r.u32()?,
            }
        }
        15 => {
            let op = instr_from_byte(r.byte()?).ok_or_else(bad)?;
            BrCmpZ {
                op,
                ra: r.u32()? as u16,
                rb: r.u32()? as u16,
                target: r.u32()?,
            }
        }
        16 => BrTable {
            idx: r.u32()? as u16,
            table: r.u32()?,
        },
        17 => Call {
            f: r.u32()?,
            args: r.u32()? as u16,
            nargs: r.byte()?,
            ret: r.byte()? != 0,
        },
        18 => CallIndirect {
            type_idx: r.u32()?,
            elem: r.u32()? as u16,
            args: r.u32()? as u16,
            nargs: r.byte()?,
            ret: r.byte()? != 0,
        },
        19 => Ret {
            rs: r.u32()? as u16,
            has: r.byte()? != 0,
        },
        20 => Trap,
        21 => Nop,
        22 => {
            let op = instr_from_byte(r.byte()?).ok_or_else(bad)?;
            BinImm {
                op,
                rd: r.u32()? as u16,
                ra: r.u32()? as u16,
                imm: r.u64()?,
            }
        }
        23 => {
            let op1 = instr_from_byte(r.byte()?).ok_or_else(bad)?;
            let op2 = instr_from_byte(r.byte()?).ok_or_else(bad)?;
            Bin2 {
                op1,
                op2,
                rd: r.u32()? as u16,
                ra: r.u32()? as u16,
                rb: r.u32()? as u16,
                rc: r.u32()? as u16,
                swapped: r.byte()? != 0,
            }
        }
        _ => return Err(bad()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jit::compile_module;
    use wasm_core::builder::ModuleBuilder;
    use wasm_core::instr::{BlockType, Instr};
    use wasm_core::types::{FuncType, ValType};

    fn sample() -> RegCode {
        let mut b = ModuleBuilder::new();
        b.memory(1, None);
        let f = b.begin_func(FuncType::new(&[ValType::I32], &[ValType::I32]));
        let l = b.new_local(ValType::I32);
        b.emit(Instr::Block(BlockType::Empty));
        b.emit(Instr::LocalGet(0));
        b.emit(Instr::I32Const(10));
        b.emit(Instr::I32LtS);
        b.emit(Instr::BrIf(0));
        b.emit(Instr::I32Const(4));
        b.emit(Instr::LocalSet(l));
        b.emit(Instr::End);
        b.emit(Instr::LocalGet(l));
        b.finish_func();
        b.export_func("f", f);
        let m = b.build();
        wasm_core::validate::validate(&m).unwrap();
        compile_module(Rc::new(m), Tier::Cranelift).unwrap().0
    }

    #[test]
    fn artifact_round_trips() {
        let code = sample();
        let bytes = to_bytes(&code, Tier::Cranelift);
        let (loaded, tier) = from_bytes(&bytes).unwrap();
        assert_eq!(tier, Tier::Cranelift);
        assert_eq!(loaded.funcs, code.funcs);
        assert_eq!(*loaded.module, *code.module);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_bytes(b"not an artifact").is_err());
        let code = sample();
        let mut bytes = to_bytes(&code, Tier::Llvm);
        bytes[0] = b'X';
        assert!(from_bytes(&bytes).is_err());
    }

    #[test]
    fn rejects_truncation() {
        let code = sample();
        let bytes = to_bytes(&code, Tier::Singlepass);
        for cut in [5, bytes.len() / 2, bytes.len() - 1] {
            assert!(from_bytes(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn proofs_round_trip_and_tampering_is_rejected() {
        let mut b = ModuleBuilder::new();
        b.memory(1, None);
        let f = b.begin_func(FuncType::new(&[], &[ValType::I64]));
        b.emit(Instr::I32Const(64));
        b.emit(Instr::I64Load(Default::default()));
        b.finish_func();
        b.export_func("f", f);
        let m = b.build();
        wasm_core::validate::validate(&m).unwrap();
        let mut code = compile_module(Rc::new(m), Tier::Cranelift).unwrap().0;
        assert!(!code.funcs[0].proofs.is_empty(), "const-address load should be proven");

        // Honest proofs survive the round trip (and its re-derivation).
        let (loaded, _) = from_bytes(&to_bytes(&code, Tier::Cranelift)).unwrap();
        assert_eq!(loaded.funcs[0].proofs, code.funcs[0].proofs);

        // A widened (unsafe) claim must be rejected at load time.
        code.funcs[0].proofs[0].fact =
            range::Fact::Int(range::Interval::new(0, i32::MAX as i64));
        let err = from_bytes(&to_bytes(&code, Tier::Cranelift));
        assert!(
            matches!(&err, Err(EngineError::BadArtifact(m)) if m.contains("proof")),
            "{err:?}"
        );
    }

    #[test]
    fn loaded_artifact_executes() {
        use crate::profiler::NullProfiler;
        use crate::store::{Imports, Runtime};
        let code = sample();
        let bytes = to_bytes(&code, Tier::Cranelift);
        let (loaded, _) = from_bytes(&bytes).unwrap();
        let mut rt = Runtime::instantiate(&loaded.module, &Imports::new(), Box::new(())).unwrap();
        let idx = loaded.module.exported_func("f").unwrap();
        assert_eq!(loaded.invoke(&mut rt, idx, &[5], &mut NullProfiler).unwrap(), Some(0));
        assert_eq!(loaded.invoke(&mut rt, idx, &[50], &mut NullProfiler).unwrap(), Some(4));
    }
}
