//! The register-based internal IR that the compiled tiers produce.
//!
//! WebAssembly's operand stack has statically known heights at every
//! program point, so a one-pass "stack slot = virtual register" allocation
//! turns stack code into register code: locals occupy registers
//! `0..nlocals`, and the stack slot at height `h` occupies register
//! `nlocals + h`. The optimizing tiers then rewrite this code.

use wasm_core::instr::Instr;

/// A virtual register index.
pub type Reg = u16;

/// A register-IR operation. Branch targets are op indices within the
/// function.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ROp {
    /// `rd <- bits`
    Const {
        /// Destination.
        rd: Reg,
        /// Raw 64-bit value.
        bits: u64,
    },
    /// `rd <- rs`
    Move {
        /// Destination.
        rd: Reg,
        /// Source.
        rs: Reg,
    },
    /// `rd <- op(ra, rb)` — `op` is a binary numeric [`Instr`].
    Bin {
        /// The operator.
        op: Instr,
        /// Destination.
        rd: Reg,
        /// Left operand.
        ra: Reg,
        /// Right operand.
        rb: Reg,
    },
    /// Fused ALU chain: `rd <- op2(op1(ra, rb), rc)` (or with the chain
    /// value as `op2`'s second operand when `swapped`). One dispatch for
    /// two operations — the optimizing tiers' superinstructions.
    Bin2 {
        /// First operator.
        op1: Instr,
        /// Second operator.
        op2: Instr,
        /// Destination.
        rd: Reg,
        /// First operand of `op1`.
        ra: Reg,
        /// Second operand of `op1`.
        rb: Reg,
        /// Remaining operand of `op2`.
        rc: Reg,
        /// When set, `rd <- op2(rc, op1(ra, rb))`.
        swapped: bool,
    },
    /// `rd <- op(ra, imm)` — binary op with a fused constant operand
    /// (the optimizing tiers' immediate forms).
    BinImm {
        /// The operator.
        op: Instr,
        /// Destination.
        rd: Reg,
        /// Left operand.
        ra: Reg,
        /// Fused right operand (raw bits).
        imm: u64,
    },
    /// `rd <- op(ra)` — `op` is a unary numeric [`Instr`].
    Un {
        /// The operator.
        op: Instr,
        /// Destination.
        rd: Reg,
        /// Operand.
        ra: Reg,
    },
    /// `rd <- memory[addr + offset]` with `op`'s width/sign behavior.
    Load {
        /// The load instruction.
        op: Instr,
        /// Destination.
        rd: Reg,
        /// Address register.
        addr: Reg,
        /// Constant offset.
        offset: u32,
    },
    /// `memory[addr + offset] <- val` with `op`'s width behavior.
    Store {
        /// The store instruction.
        op: Instr,
        /// Address register.
        addr: Reg,
        /// Value register.
        val: Reg,
        /// Constant offset.
        offset: u32,
    },
    /// `rd <- cond != 0 ? a : b`
    Select {
        /// Destination.
        rd: Reg,
        /// Condition.
        cond: Reg,
        /// Value if non-zero.
        a: Reg,
        /// Value if zero.
        b: Reg,
    },
    /// `rd <- globals[idx]`
    GlobalGet {
        /// Destination.
        rd: Reg,
        /// Global index.
        idx: u32,
    },
    /// `globals[idx] <- rs`
    GlobalSet {
        /// Global index.
        idx: u32,
        /// Source.
        rs: Reg,
    },
    /// `rd <- memory.size`
    MemSize {
        /// Destination.
        rd: Reg,
    },
    /// `rd <- memory.grow(rs)`
    MemGrow {
        /// Destination.
        rd: Reg,
        /// Page delta.
        rs: Reg,
    },
    /// Unconditional jump.
    Jump {
        /// Target op index.
        target: u32,
    },
    /// Jump if `cond != 0`.
    BrIf {
        /// Condition register.
        cond: Reg,
        /// Target op index.
        target: u32,
    },
    /// Jump if `cond == 0`.
    BrIfZ {
        /// Condition register.
        cond: Reg,
        /// Target op index.
        target: u32,
    },
    /// Fused compare-and-branch: jump if `cmp(ra, rb)` is true.
    BrCmp {
        /// The comparison instruction.
        op: Instr,
        /// Left operand.
        ra: Reg,
        /// Right operand.
        rb: Reg,
        /// Target op index.
        target: u32,
    },
    /// Fused compare-and-branch: jump if `cmp(ra, rb)` is false.
    BrCmpZ {
        /// The comparison instruction.
        op: Instr,
        /// Left operand.
        ra: Reg,
        /// Right operand.
        rb: Reg,
        /// Target op index.
        target: u32,
    },
    /// Jump through a table (pool index) selected by `idx`.
    BrTable {
        /// Selector register.
        idx: Reg,
        /// Index into the function's jump-table pool.
        table: u32,
    },
    /// Direct call: arguments in `args..args+nargs`, result to `args`.
    Call {
        /// Callee (combined function index space).
        f: u32,
        /// First argument register.
        args: Reg,
        /// Argument count.
        nargs: u8,
        /// Whether the callee returns a value.
        ret: bool,
    },
    /// Indirect call through table 0.
    CallIndirect {
        /// Expected type index.
        type_idx: u32,
        /// Element-index register.
        elem: Reg,
        /// First argument register.
        args: Reg,
        /// Argument count.
        nargs: u8,
        /// Whether the callee returns a value.
        ret: bool,
    },
    /// Return, with the result in `rs` when `has` is set.
    Ret {
        /// Result register.
        rs: Reg,
        /// Whether a result is returned.
        has: bool,
    },
    /// Unconditional trap (`unreachable`).
    Trap,
    /// No-op (produced by optimization; removed by compaction).
    Nop,
}

impl ROp {
    /// Registers this op reads.
    pub fn uses(&self) -> [Option<Reg>; 3] {
        use ROp::*;
        match *self {
            Const { .. } | GlobalGet { .. } | MemSize { .. } | Jump { .. } | Trap | Nop => {
                [None, None, None]
            }
            Move { rs, .. }
            | Un { ra: rs, .. }
            | BinImm { ra: rs, .. }
            | GlobalSet { rs, .. }
            | MemGrow { rs, .. } => [Some(rs), None, None],
            Bin { ra, rb, .. } | BrCmp { ra, rb, .. } | BrCmpZ { ra, rb, .. } => {
                [Some(ra), Some(rb), None]
            }
            Bin2 { ra, rb, rc, .. } => [Some(ra), Some(rb), Some(rc)],
            Load { addr, .. } => [Some(addr), None, None],
            Store { addr, val, .. } => [Some(addr), Some(val), None],
            Select { cond, a, b, .. } => [Some(cond), Some(a), Some(b)],
            BrIf { cond, .. } | BrIfZ { cond, .. } | BrTable { idx: cond, .. } => {
                [Some(cond), None, None]
            }
            Call { .. } | CallIndirect { .. } => [None, None, None], // handled specially
            Ret { rs, has } => [if has { Some(rs) } else { None }, None, None],
        }
    }

    /// The register this op defines, if any.
    pub fn def(&self) -> Option<Reg> {
        use ROp::*;
        match *self {
            Const { rd, .. }
            | Move { rd, .. }
            | Bin { rd, .. }
            | Bin2 { rd, .. }
            | BinImm { rd, .. }
            | Un { rd, .. }
            | Load { rd, .. }
            | Select { rd, .. }
            | GlobalGet { rd, .. }
            | MemSize { rd }
            | MemGrow { rd, .. } => Some(rd),
            Call { args, ret, .. } | CallIndirect { args, ret, .. } => {
                if ret {
                    Some(args)
                } else {
                    None
                }
            }
            _ => None,
        }
    }

    /// Whether the op has side effects beyond its register def (memory,
    /// globals, control flow, traps, calls).
    pub fn has_side_effect(&self) -> bool {
        use ROp::*;
        match self {
            Store { .. } | GlobalSet { .. } | MemGrow { .. } | Jump { .. } | BrIf { .. }
            | BrIfZ { .. } | BrCmp { .. } | BrCmpZ { .. } | BrTable { .. } | Call { .. }
            | CallIndirect { .. } | Ret { .. } | Trap => true,
            // Division/remainder can trap, so Bin is only pure for
            // non-trapping operators.
            Bin2 { op1, op2, .. } => {
                let trapping = |op: &Instr| matches!(
                    op,
                    Instr::I32DivS | Instr::I32DivU | Instr::I32RemS | Instr::I32RemU
                        | Instr::I64DivS | Instr::I64DivU | Instr::I64RemS | Instr::I64RemU
                );
                trapping(op1) || trapping(op2)
            }
            Bin { op, .. } | BinImm { op, .. } => matches!(
                op,
                Instr::I32DivS
                    | Instr::I32DivU
                    | Instr::I32RemS
                    | Instr::I32RemU
                    | Instr::I64DivS
                    | Instr::I64DivU
                    | Instr::I64RemS
                    | Instr::I64RemU
            ),
            // Float-to-int truncations can trap.
            Un { op, .. } => matches!(
                op,
                Instr::I32TruncF32S
                    | Instr::I32TruncF32U
                    | Instr::I32TruncF64S
                    | Instr::I32TruncF64U
                    | Instr::I64TruncF32S
                    | Instr::I64TruncF32U
                    | Instr::I64TruncF64S
                    | Instr::I64TruncF64U
            ),
            // Loads can trap (OOB), so they are not freely removable.
            Load { .. } => true,
            _ => false,
        }
    }

    /// Whether this op unconditionally transfers control.
    pub fn is_terminator(&self) -> bool {
        matches!(
            self,
            ROp::Jump { .. } | ROp::BrTable { .. } | ROp::Ret { .. } | ROp::Trap
        )
    }

    /// The branch target, if this op has exactly one.
    pub fn target(&self) -> Option<u32> {
        use ROp::*;
        match *self {
            Jump { target }
            | BrIf { target, .. }
            | BrIfZ { target, .. }
            | BrCmp { target, .. }
            | BrCmpZ { target, .. } => Some(target),
            _ => None,
        }
    }

    /// Rewrites the branch target, if this op has one.
    pub fn set_target(&mut self, new: u32) {
        use ROp::*;
        match self {
            Jump { target }
            | BrIf { target, .. }
            | BrIfZ { target, .. }
            | BrCmp { target, .. }
            | BrCmpZ { target, .. } => *target = new,
            _ => {}
        }
    }
}

/// A compiled function in register IR.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RFunc {
    /// The operations.
    pub ops: Vec<ROp>,
    /// Number of parameters.
    pub nparams: u16,
    /// Number of locals (including parameters).
    pub nlocals: u16,
    /// Total virtual registers used (locals + max stack depth).
    pub nregs: u16,
    /// Whether the function returns a value.
    pub result: bool,
    /// Jump-table pool for `BrTable` (targets plus default last).
    pub tables: Vec<Vec<u32>>,
    /// Declared minimum linear-memory size in bytes (sound lower bound
    /// for bounds-check elimination — memory only grows).
    pub mem_min_bytes: u64,
    /// Proof obligations for eliminated safety checks, re-derivable by
    /// `jit::verify::check_proofs`.
    pub proofs: Vec<analysis::range::Obligation>,
}

impl RFunc {
    /// Estimated machine-code bytes (used for memory accounting and
    /// I-cache addressing): real tiers emit roughly 8 bytes per IR op.
    pub fn machine_code_bytes(&self) -> usize {
        self.ops.len() * 8 + self.tables.iter().map(|t| t.len() * 4).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uses_and_defs() {
        let op = ROp::Bin {
            op: Instr::I32Add,
            rd: 3,
            ra: 1,
            rb: 2,
        };
        assert_eq!(op.def(), Some(3));
        assert_eq!(op.uses(), [Some(1), Some(2), None]);
        assert!(!op.has_side_effect());

        let div = ROp::Bin {
            op: Instr::I32DivS,
            rd: 3,
            ra: 1,
            rb: 2,
        };
        assert!(div.has_side_effect());
    }

    #[test]
    fn target_rewrite() {
        let mut op = ROp::BrIf { cond: 0, target: 5 };
        assert_eq!(op.target(), Some(5));
        op.set_target(9);
        assert_eq!(op.target(), Some(9));
        assert!(ROp::Ret { rs: 0, has: false }.is_terminator());
        assert!(!op.is_terminator());
    }
}
