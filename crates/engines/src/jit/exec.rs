//! The register-IR executor used by all compiled tiers.
//!
//! In the real systems this would be machine code; here a tight dispatch
//! loop over register ops plays that role. The profiled personality
//! reflects compiled code: instructions fetched from the I-side code
//! region, no per-op indirect dispatch, direct branches where the compiler
//! resolved them, and operands in registers (no operand-stack memory
//! traffic).

use crate::error::Trap;
use crate::interp::tree::{load_op, load_width, store_op, store_width};
use crate::jit::ir::{RFunc, ROp};
use crate::numeric::{self, BinFn, UnFn};
use crate::profiler::{BranchKind, Profiler, CODE_BASE, GLOBALS_BASE, HEAP_BASE, STACK_BASE};
use crate::store::Runtime;
use wasm_core::instr::InstrClass;
use wasm_core::module::Module;
use std::rc::Rc;

/// Estimated encoded bytes per IR op ("machine code").
const OP_BYTES: u64 = 8;

/// A numeric handler resolved at compile time. Calling through these
/// function pointers (instead of re-decoding the operator on every
/// execution) is the portable analogue of the machine code a real JIT
/// emits.
#[derive(Clone, Copy)]
enum Resolved {
    Bin(BinFn),
    Bin2(BinFn, BinFn),
    Un(UnFn),
    Other,
}

impl std::fmt::Debug for Resolved {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Resolved::Bin(_) => "Bin",
            Resolved::Bin2(..) => "Bin2",
            Resolved::Un(_) => "Un",
            Resolved::Other => "Other",
        };
        f.write_str(s)
    }
}

/// Compiled code for an entire module.
#[derive(Debug)]
pub struct RegCode {
    /// The source module (types, exports, br_tables).
    pub module: Rc<Module>,
    /// Compiled functions (module-defined only).
    pub funcs: Vec<RFunc>,
    /// Profiled code base address per function.
    pub func_base: Vec<u64>,
    /// Imported function count.
    pub num_imported: u32,
    /// Per-function resolved numeric handlers, parallel to `funcs[i].ops`.
    resolved: Vec<Vec<Resolved>>,
    /// Per-op "check statically proven redundant" flags, parallel to
    /// `funcs[i].ops`, materialized from each function's proof
    /// obligations. Safe sites skip the modeled check cost (the host
    /// bounds check stays as defense in depth).
    safe: Vec<Vec<bool>>,
}

impl RegCode {
    /// Assembles compiled functions into executable code, assigning code
    /// addresses.
    ///
    /// # Panics
    ///
    /// Panics if a function violates the executor's invariants — trusted
    /// compiler output must be well-formed, so a violation is a compiler
    /// bug. Use [`RegCode::try_new`] for untrusted (deserialized) input.
    pub fn new(module: Rc<Module>, funcs: Vec<RFunc>) -> RegCode {
        for (i, f) in funcs.iter().enumerate() {
            if let Err(e) = check_code(f, i, &module) {
                panic!("compiler invariant violated in function {i}: {e}");
            }
        }
        RegCode::new_unchecked(module, funcs)
    }

    /// Assembles compiled functions from an untrusted source (an AOT
    /// artifact), validating every invariant the executor relies on.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn try_new(module: Rc<Module>, funcs: Vec<RFunc>) -> Result<RegCode, String> {
        if funcs.len() != module.funcs.len() {
            return Err(format!(
                "artifact has {} functions, module defines {}",
                funcs.len(),
                module.funcs.len()
            ));
        }
        for (i, f) in funcs.iter().enumerate() {
            check_code(f, i, &module).map_err(|e| format!("function {i}: {e}"))?;
            // Untrusted proofs get the full treatment: re-derive every
            // obligation from scratch. A corrupt or malicious artifact
            // must not buy itself skipped checks.
            let violations = crate::jit::verify::check_proofs(f);
            if let Some(v) = violations.first() {
                return Err(format!("function {i}: unsound elimination proof: {v}"));
            }
        }
        Ok(RegCode::new_unchecked(module, funcs))
    }

    fn new_unchecked(module: Rc<Module>, funcs: Vec<RFunc>) -> RegCode {
        let mut func_base = Vec::with_capacity(funcs.len());
        let mut cursor = CODE_BASE + 0x10_0000; // past the runtime stubs
        let mut resolved = Vec::with_capacity(funcs.len());
        let mut safe = Vec::with_capacity(funcs.len());
        for f in &funcs {
            func_base.push(cursor);
            cursor += f.ops.len() as u64 * OP_BYTES;
            let mut s = vec![false; f.ops.len()];
            for proof in &f.proofs {
                s[proof.op as usize] = true;
            }
            safe.push(s);
            resolved.push(
                f.ops
                    .iter()
                    .map(|op| match op {
                        ROp::Bin { op, .. }
                        | ROp::BinImm { op, .. }
                        | ROp::BrCmp { op, .. }
                        | ROp::BrCmpZ { op, .. } => Resolved::Bin(numeric::binary_fn(*op)),
                        ROp::Bin2 { op1, op2, .. } => {
                            Resolved::Bin2(numeric::binary_fn(*op1), numeric::binary_fn(*op2))
                        }
                        ROp::Un { op, .. } => Resolved::Un(numeric::unary_fn(*op)),
                        _ => Resolved::Other,
                    })
                    .collect(),
            );
        }
        RegCode {
            num_imported: module.num_imported_funcs() as u32,
            module,
            funcs,
            func_base,
            resolved,
            safe,
        }
    }

    /// Total "machine code" bytes, for memory accounting.
    pub fn code_bytes(&self) -> usize {
        self.funcs.iter().map(|f| f.machine_code_bytes()).sum()
    }

    /// Invokes function `func_idx` with raw argument slots.
    ///
    /// # Errors
    ///
    /// Returns any trap raised during execution.
    pub fn invoke<P: Profiler>(
        &self,
        rt: &mut Runtime,
        func_idx: u32,
        args: &[u64],
        p: &mut P,
    ) -> Result<Option<u64>, Trap> {
        // One contiguous frame arena per invocation: compiled code keeps
        // its register frames on the machine stack, not the heap.
        let mut frames: Vec<u64> = Vec::with_capacity(4096);
        self.call(rt, func_idx, args, 0, &mut frames, p)
    }

    fn call<P: Profiler>(
        &self,
        rt: &mut Runtime,
        func_idx: u32,
        args: &[u64],
        depth: usize,
        frames: &mut Vec<u64>,
        p: &mut P,
    ) -> Result<Option<u64>, Trap> {
        if depth >= rt.call_depth_limit {
            return Err(Trap::StackOverflow);
        }
        if func_idx < self.num_imported {
            return rt.call_host(func_idx, args).map(Some);
        }
        let fi = (func_idx - self.num_imported) as usize;
        let f = &self.funcs[fi];
        let base = self.func_base[fi];
        let resolved = &self.resolved[fi];
        let safe = &self.safe[fi];

        let frame_base = frames.len();
        frames.resize(frame_base + f.nregs as usize, 0);
        frames[frame_base..frame_base + args.len()].copy_from_slice(args);
        // Frame setup: compiled code spills the frame to the real stack.
        p.write(STACK_BASE + depth as u64 * 256, (f.nregs as u32).min(16) * 8);
        p.uops(2);
        rt.peak_value_stack = rt.peak_value_stack.max(frames.len());

        let result = self.exec_frame(rt, f, base, resolved, safe, frame_base, depth, frames, p);
        frames.truncate(frame_base);
        result
    }

    #[allow(clippy::too_many_arguments)]
    fn exec_frame<P: Profiler>(
        &self,
        rt: &mut Runtime,
        f: &RFunc,
        base: u64,
        resolved: &[Resolved],
        safe: &[bool],
        frame_base: usize,
        depth: usize,
        frames: &mut Vec<u64>,
        p: &mut P,
    ) -> Result<Option<u64>, Trap> {

        macro_rules! reg {
            ($r:expr) => {
                // SAFETY: check_code proved the operand index < nregs, and
                // the frame [frame_base, frame_base + nregs) is allocated.
                unsafe { *frames.get_unchecked(frame_base + $r as usize) }
            };
        }
        macro_rules! set_reg {
            ($r:expr, $v:expr) => {{
                let v = $v;
                // SAFETY: as above.
                unsafe { *frames.get_unchecked_mut(frame_base + $r as usize) = v }
            }};
        }
        let mut pc: usize = 0;
        // Accounts µops for an op carrying an implicit safety check:
        // proven-safe sites skip the modeled check µop and report the
        // skip; `checked` is the cost with the check included.
        macro_rules! checked_uops {
            ($checked:expr) => {{
                let c: u64 = $checked;
                // SAFETY: `safe` is parallel to `f.ops`, and `pc` is in
                // bounds by the loop invariant below.
                if unsafe { *safe.get_unchecked(pc) } {
                    p.uops((c - 1).max(1));
                    p.check_skipped();
                } else {
                    p.uops(c);
                }
            }};
        }
        // SAFETY throughout this loop: `check_code` proved every register
        // operand < nregs (the frame size) and every branch target < the
        // op count, and the final op is a terminator, so `pc` always stays
        // in bounds between branches.
        loop {
            let op = unsafe { f.ops.get_unchecked(pc) };
            let site = base + pc as u64 * OP_BYTES;
            p.fetch(site, OP_BYTES as u32);

            match *op {
                ROp::Const { rd, bits } => {
                    set_reg!(rd, bits);
                    p.uops(1);
                }
                ROp::Move { rd, rs } => {
                    set_reg!(rd, reg!(rs));
                    p.uops(1);
                }
                ROp::Bin { op, rd, ra, rb } => {
                    let h = match resolved[pc] {
                        Resolved::Bin(h) => h,
                        _ => unreachable!("resolved table parallel to ops"),
                    };
                    set_reg!(rd, h(reg!(ra), reg!(rb))?);
                    checked_uops!(op_cost(op.class()));
                }
                ROp::Bin2 { op1, op2, rd, ra, rb, rc, swapped } => {
                    let (h1, h2) = match resolved[pc] {
                        Resolved::Bin2(h1, h2) => (h1, h2),
                        _ => unreachable!("resolved table parallel to ops"),
                    };
                    let _ = (op1, op2);
                    let v1 = h1(reg!(ra), reg!(rb))?;
                    let v = if swapped {
                        h2(reg!(rc), v1)?
                    } else {
                        h2(v1, reg!(rc))?
                    };
                    set_reg!(rd, v);
                    checked_uops!(2);
                }
                ROp::BinImm { op, rd, ra, imm } => {
                    let h = match resolved[pc] {
                        Resolved::Bin(h) => h,
                        _ => unreachable!("resolved table parallel to ops"),
                    };
                    set_reg!(rd, h(reg!(ra), imm)?);
                    checked_uops!(op_cost(op.class()));
                }
                ROp::Un { op, rd, ra } => {
                    let h = match resolved[pc] {
                        Resolved::Un(h) => h,
                        _ => unreachable!("resolved table parallel to ops"),
                    };
                    set_reg!(rd, h(reg!(ra))?);
                    checked_uops!(op_cost(op.class()));
                }
                ROp::Load { op, rd, addr, offset } => {
                    let a = reg!(addr) as u32;
                    let mem = rt.memory.as_ref().expect("validated memory");
                    set_reg!(rd, load_op(mem, &op, a, offset)?);
                    p.read(HEAP_BASE + a as u64 + offset as u64, load_width(&op));
                    // Address computation + access, plus the bounds check
                    // unless the compiler proved it redundant.
                    checked_uops!(2);
                }
                ROp::Store { op, addr, val, offset } => {
                    let a = reg!(addr) as u32;
                    let mem = rt.memory.as_mut().expect("validated memory");
                    store_op(mem, &op, a, offset, reg!(val))?;
                    p.write(HEAP_BASE + a as u64 + offset as u64, store_width(&op));
                    checked_uops!(2);
                }
                ROp::Select { rd, cond, a, b } => {
                    let v = if reg!(cond) as u32 != 0 { reg!(a) } else { reg!(b) };
                    set_reg!(rd, v);
                    p.uops(1); // cmov
                }
                ROp::GlobalGet { rd, idx } => {
                    set_reg!(rd, rt.globals[idx as usize]);
                    p.read(GLOBALS_BASE + idx as u64 * 8, 8);
                    p.uops(1);
                }
                ROp::GlobalSet { idx, rs } => {
                    rt.globals[idx as usize] = reg!(rs);
                    p.write(GLOBALS_BASE + idx as u64 * 8, 8);
                    p.uops(1);
                }
                ROp::MemSize { rd } => {
                    let v = rt.memory.as_ref().expect("validated memory").size_pages() as u64;
                    set_reg!(rd, v);
                    p.uops(2);
                }
                ROp::MemGrow { rd, rs } => {
                    let delta = reg!(rs) as u32;
                    let v = rt.memory.as_mut().expect("validated memory").grow(delta) as u32 as u64;
                    set_reg!(rd, v);
                    p.uops(20);
                }
                ROp::Jump { target } => {
                    p.branch(site, BranchKind::Uncond, true, base + target as u64 * OP_BYTES);
                    p.uops(1);
                    pc = target as usize;
                    continue;
                }
                ROp::BrIf { cond, target } => {
                    let taken = reg!(cond) as u32 != 0;
                    p.branch(site, BranchKind::Cond, taken, base + target as u64 * OP_BYTES);
                    p.uops(1);
                    if taken {
                        pc = target as usize;
                        continue;
                    }
                }
                ROp::BrIfZ { cond, target } => {
                    let taken = reg!(cond) as u32 == 0;
                    p.branch(site, BranchKind::Cond, taken, base + target as u64 * OP_BYTES);
                    p.uops(1);
                    if taken {
                        pc = target as usize;
                        continue;
                    }
                }
                ROp::BrCmp { op, ra, rb, target } => {
                    let h = match resolved[pc] {
                        Resolved::Bin(h) => h,
                        _ => unreachable!("resolved table parallel to ops"),
                    };
                    let _ = op;
                    let taken = h(reg!(ra), reg!(rb))? as u32 != 0;
                    p.branch(site, BranchKind::Cond, taken, base + target as u64 * OP_BYTES);
                    p.uops(1); // cmp+jcc pair retires as a fused µop
                    if taken {
                        pc = target as usize;
                        continue;
                    }
                }
                ROp::BrCmpZ { op, ra, rb, target } => {
                    let h = match resolved[pc] {
                        Resolved::Bin(h) => h,
                        _ => unreachable!("resolved table parallel to ops"),
                    };
                    let _ = op;
                    let taken = h(reg!(ra), reg!(rb))? as u32 == 0;
                    p.branch(site, BranchKind::Cond, taken, base + target as u64 * OP_BYTES);
                    p.uops(1);
                    if taken {
                        pc = target as usize;
                        continue;
                    }
                }
                ROp::BrTable { idx, table } => {
                    let t = &f.tables[table as usize];
                    let sel = (reg!(idx) as u32 as usize).min(t.len() - 1);
                    let target = t[sel];
                    p.read(site + 4, 8); // jump-table entry load
                    p.branch(site, BranchKind::Indirect, true, base + target as u64 * OP_BYTES);
                    p.uops(2);
                    pc = target as usize;
                    continue;
                }
                ROp::Call { f: callee, args, nargs, ret } => {
                    let a = frame_base + args as usize;
                    let mut call_buf = [0u64; 16];
                    let call_vec;
                    let call_args: &[u64] = if nargs as usize <= 16 {
                        call_buf[..nargs as usize]
                            .copy_from_slice(&frames[a..a + nargs as usize]);
                        &call_buf[..nargs as usize]
                    } else {
                        call_vec = frames[a..a + nargs as usize].to_vec();
                        &call_vec
                    };
                    p.branch(site, BranchKind::Call, true, CODE_BASE + callee as u64 * 0x80);
                    p.uops(2);
                    let r = self.call(rt, callee, call_args, depth + 1, frames, p)?;
                    if ret {
                        set_reg!(args, r.expect("typed result"));
                    }
                }
                ROp::CallIndirect { type_idx, elem, args, nargs, ret } => {
                    let e = reg!(elem) as u32;
                    let callee = rt
                        .table
                        .get(e as usize)
                        .copied()
                        .flatten()
                        .ok_or(Trap::UndefinedElement)?;
                    let want = &self.module.types[type_idx as usize];
                    let have = self.module.func_type(callee).ok_or(Trap::UndefinedElement)?;
                    if want != have {
                        return Err(Trap::IndirectCallTypeMismatch);
                    }
                    let a = frame_base + args as usize;
                    let mut call_buf = [0u64; 16];
                    let call_vec;
                    let call_args: &[u64] = if nargs as usize <= 16 {
                        call_buf[..nargs as usize]
                            .copy_from_slice(&frames[a..a + nargs as usize]);
                        &call_buf[..nargs as usize]
                    } else {
                        call_vec = frames[a..a + nargs as usize].to_vec();
                        &call_vec
                    };
                    p.read(crate::profiler::META_BASE + e as u64 * 8, 8); // table slot
                    p.branch(site, BranchKind::IndirectCall, true, CODE_BASE + callee as u64 * 0x80);
                    p.uops(4); // bounds + signature check
                    let r = self.call(rt, callee, call_args, depth + 1, frames, p)?;
                    if ret {
                        set_reg!(args, r.expect("typed result"));
                    }
                }
                ROp::Ret { rs, has } => {
                    p.branch(site, BranchKind::Ret, true, CODE_BASE);
                    p.uops(1);
                    return Ok(if has { Some(reg!(rs)) } else { None });
                }
                ROp::Trap => return Err(Trap::Unreachable),
                ROp::Nop => {}
            }
            pc += 1;
        }
    }
}

/// Checks the invariants the executor relies on for its unchecked
/// register-file and code indexing (the analogue of a JIT trusting its own
/// emitted code), plus every module reference the execution loop indexes
/// without bounds checks: callees, call signatures, globals, and types.
///
/// `func_idx` is the function's position among the module-defined
/// functions (the artifact/compiler index, excluding imports).
///
/// # Errors
///
/// Returns a description of the first violated invariant. For trusted
/// compiler output a violation is a compiler bug ([`RegCode::new`]
/// panics on it); for a deserialized artifact it means corrupt or
/// malicious input ([`RegCode::try_new`] reports it).
fn check_code(f: &RFunc, func_idx: usize, module: &Module) -> Result<(), String> {
    let nregs = f.nregs;
    let nops = f.ops.len() as u32;
    let num_imported = module.num_imported_funcs() as u32;
    let check_reg = |r: u16| {
        if r < nregs {
            Ok(())
        } else {
            Err(format!("register {r} out of frame ({nregs})"))
        }
    };
    let check_target = |t: u32| {
        if t == u32::MAX {
            Err("unpatched branch target".to_string())
        } else if t < nops {
            Ok(())
        } else {
            Err(format!("branch target {t} out of function ({nops} ops)"))
        }
    };
    // The call protocol copies the caller's argument slice into the callee
    // frame and wraps the result per the callee's signature, so frame
    // geometry and the wasm type must agree.
    let sig = module
        .func_type(num_imported + func_idx as u32)
        .ok_or("function has no module type")?;
    if f.nparams as usize != sig.params.len() {
        return Err(format!(
            "{} params in code, {} in signature",
            f.nparams,
            sig.params.len()
        ));
    }
    if f.result == sig.results.is_empty() {
        return Err("result flag disagrees with signature".to_string());
    }
    if f.nlocals < f.nparams || f.nregs < f.nlocals {
        return Err(format!(
            "frame geometry inverted: {} params, {} locals, {} regs",
            f.nparams, f.nlocals, f.nregs
        ));
    }
    if nops == 0 {
        return Err("empty function body".to_string());
    }
    for op in &f.ops {
        for u in op.uses().into_iter().flatten() {
            check_reg(u)?;
        }
        if let Some(d) = op.def() {
            check_reg(d)?;
        }
        if let Some(t) = op.target() {
            check_target(t)?;
        }
        // Operator class must match the op shape, or handler resolution
        // (`binary_fn`/`unary_fn`/`load_op`/`store_op`) has no entry.
        match op {
            ROp::Bin { op, .. }
            | ROp::BinImm { op, .. }
            | ROp::BrCmp { op, .. }
            | ROp::BrCmpZ { op, .. }
                if !numeric::is_binary(*op) =>
            {
                return Err(format!("{op:?} is not a binary operator"));
            }
            ROp::Bin2 { op1, op2, .. }
                if !numeric::is_binary(*op1) || !numeric::is_binary(*op2) =>
            {
                return Err(format!("{op1:?}/{op2:?} is not a binary operator"));
            }
            ROp::Un { op, .. } if !numeric::is_unary(*op) => {
                return Err(format!("{op:?} is not a unary operator"));
            }
            ROp::Load { op, .. } if !crate::interp::tree::is_load_op(op) => {
                return Err(format!("{op:?} is not a load"));
            }
            ROp::Store { op, .. } if !crate::interp::tree::is_store_op(op) => {
                return Err(format!("{op:?} is not a store"));
            }
            _ => {}
        }
        match op {
            ROp::Call { f: callee, args, nargs, ret } => {
                let csig = module
                    .func_type(*callee)
                    .ok_or_else(|| format!("callee {callee} out of module"))?;
                check_call_window(*args, *nargs, *ret, csig, nregs)?;
            }
            ROp::CallIndirect { type_idx, elem, args, nargs, ret } => {
                check_reg(*elem)?;
                let tsig = module
                    .types
                    .get(*type_idx as usize)
                    .ok_or_else(|| format!("call type {type_idx} out of module"))?;
                check_call_window(*args, *nargs, *ret, tsig, nregs)?;
            }
            ROp::GlobalGet { idx, .. } | ROp::GlobalSet { idx, .. }
                if *idx as usize >= module.total_globals() =>
            {
                return Err(format!("global {idx} out of module"));
            }
            ROp::BrTable { table, .. } => {
                let t = f
                    .tables
                    .get(*table as usize)
                    .ok_or_else(|| format!("jump table {table} out of function"))?;
                if t.is_empty() {
                    return Err("empty jump table".to_string());
                }
                for e in t {
                    check_target(*e)?;
                }
            }
            ROp::Ret { has, .. } if *has != f.result => {
                return Err("return arity disagrees with signature".to_string());
            }
            _ => {}
        }
    }
    // The last op must not fall off the end.
    if !f.ops.last().expect("non-empty").is_terminator() {
        return Err("function may fall off the end".to_string());
    }
    // Proof obligations must cite real ops (the semantic re-derivation
    // happens in `verify::check_proofs`; this keeps indexing safe).
    for p in &f.proofs {
        if p.op as usize >= f.ops.len() {
            return Err(format!("proof obligation cites op {} out of function", p.op));
        }
    }
    Ok(())
}

/// Checks a call's argument window against the frame and its arity and
/// result flag against the callee signature.
fn check_call_window(
    args: u16,
    nargs: u8,
    ret: bool,
    callee_sig: &wasm_core::types::FuncType,
    nregs: u16,
) -> Result<(), String> {
    if nargs as usize != callee_sig.params.len() {
        return Err(format!(
            "{} call args, callee takes {}",
            nargs,
            callee_sig.params.len()
        ));
    }
    if ret && callee_sig.results.is_empty() {
        return Err("call expects a result from a void callee".to_string());
    }
    if args as u32 + nargs as u32 > nregs as u32 {
        return Err("call argument window out of frame".to_string());
    }
    // The result is written back to the window base, so the base register
    // must exist even for a zero-argument call.
    if ret && args >= nregs {
        return Err("call result register out of frame".to_string());
    }
    Ok(())
}

/// µop cost of a numeric op in compiled code.
fn op_cost(class: InstrClass) -> u64 {
    match class {
        InstrClass::SlowArith => 20,
        InstrClass::FloatArith => 2,
        _ => 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jit::lower::lower;
    use crate::jit::opt::{optimize, PassConfig};
    use crate::profiler::{CountingProfiler, NullProfiler};
    use crate::store::Imports;
    use wasm_core::builder::ModuleBuilder;
    use wasm_core::instr::{BlockType, Instr};
    use wasm_core::types::{FuncType, ValType};

    fn compile(m: Module, config: &PassConfig) -> RegCode {
        wasm_core::validate::validate(&m).unwrap();
        let module = Rc::new(m);
        let funcs: Vec<RFunc> = module
            .funcs
            .iter()
            .map(|f| {
                let mut rf = lower(&module, f).unwrap();
                optimize(&mut rf, config);
                rf
            })
            .collect();
        RegCode::new(module, funcs)
    }

    fn run(m: Module, name: &str, args: &[u64], config: &PassConfig) -> Result<Option<u64>, Trap> {
        let idx = m.exported_func(name).unwrap();
        let code = compile(m, config);
        let mut rt = Runtime::instantiate(&code.module, &Imports::new(), Box::new(())).unwrap();
        code.invoke(&mut rt, idx, args, &mut NullProfiler)
    }

    fn loop_sum_module() -> Module {
        let mut b = ModuleBuilder::new();
        let f = b.begin_func(FuncType::new(&[ValType::I32], &[ValType::I32]));
        let sum = b.new_local(ValType::I32);
        let i = b.new_local(ValType::I32);
        b.emit(Instr::Loop(BlockType::Empty));
        b.emit(Instr::LocalGet(i));
        b.emit(Instr::I32Const(1));
        b.emit(Instr::I32Add);
        b.emit(Instr::LocalSet(i));
        b.emit(Instr::LocalGet(sum));
        b.emit(Instr::LocalGet(i));
        b.emit(Instr::I32Add);
        b.emit(Instr::LocalSet(sum));
        b.emit(Instr::LocalGet(i));
        b.emit(Instr::LocalGet(0));
        b.emit(Instr::I32LtS);
        b.emit(Instr::BrIf(0));
        b.emit(Instr::End);
        b.emit(Instr::LocalGet(sum));
        b.finish_func();
        b.export_func("sum", f);
        b.build()
    }

    #[test]
    fn loop_sum_all_tiers_agree() {
        for config in [PassConfig::none(), PassConfig::standard(), PassConfig::aggressive()] {
            assert_eq!(
                run(loop_sum_module(), "sum", &[100], &config).unwrap(),
                Some(5050),
                "{config:?}"
            );
        }
    }

    #[test]
    fn optimized_code_executes_fewer_ops() {
        let m = loop_sum_module();
        let idx = m.exported_func("sum").unwrap();

        let mut uops = Vec::new();
        for config in [PassConfig::none(), PassConfig::standard()] {
            let code = compile(m.clone(), &config);
            let mut rt =
                Runtime::instantiate(&code.module, &Imports::new(), Box::new(())).unwrap();
            let mut p = CountingProfiler::default();
            code.invoke(&mut rt, idx, &[1000], &mut p).unwrap();
            uops.push(p.uops);
        }
        assert!(
            uops[1] < uops[0],
            "optimized {} should beat singlepass {}",
            uops[1],
            uops[0]
        );
    }

    #[test]
    fn compiled_tier_has_no_dispatch_indirect_branches() {
        let m = loop_sum_module();
        let idx = m.exported_func("sum").unwrap();
        let code = compile(m, &PassConfig::standard());
        let mut rt = Runtime::instantiate(&code.module, &Imports::new(), Box::new(())).unwrap();
        let mut p = CountingProfiler::default();
        code.invoke(&mut rt, idx, &[100], &mut p).unwrap();
        assert_eq!(p.indirect_branches, 0);
    }

    #[test]
    fn traps_match_interpreters() {
        let mut b = ModuleBuilder::new();
        b.memory(1, None);
        let f = b.begin_func(FuncType::new(&[], &[ValType::I32]));
        b.emit(Instr::I32Const(-4));
        b.emit(Instr::I32Load(Default::default()));
        b.finish_func();
        b.export_func("oob", f);
        assert_eq!(
            run(b.build(), "oob", &[], &PassConfig::standard()),
            Err(Trap::MemoryOutOfBounds)
        );
    }

    #[test]
    fn call_between_compiled_functions() {
        let mut b = ModuleBuilder::new();
        let dbl = b.begin_func(FuncType::new(&[ValType::I64], &[ValType::I64]));
        b.emit(Instr::LocalGet(0));
        b.emit(Instr::LocalGet(0));
        b.emit(Instr::I64Add);
        b.finish_func();
        let f = b.begin_func(FuncType::new(&[ValType::I64], &[ValType::I64]));
        b.emit(Instr::LocalGet(0));
        b.emit(Instr::Call(dbl));
        b.emit(Instr::Call(dbl));
        b.finish_func();
        b.export_func("quad", f);
        assert_eq!(
            run(b.build(), "quad", &[11], &PassConfig::aggressive()).unwrap(),
            Some(44)
        );
    }

    #[test]
    fn br_table_via_jump_table() {
        let mut b = ModuleBuilder::new();
        let f = b.begin_func(FuncType::new(&[ValType::I32], &[ValType::I32]));
        let out = b.new_local(ValType::I32);
        b.emit(Instr::Block(BlockType::Empty));
        b.emit(Instr::Block(BlockType::Empty));
        b.emit(Instr::LocalGet(0));
        b.emit_br_table(vec![0], 1);
        b.emit(Instr::End);
        b.emit(Instr::I32Const(10));
        b.emit(Instr::LocalSet(out));
        b.emit(Instr::End);
        b.emit(Instr::LocalGet(out));
        b.emit(Instr::I32Const(5));
        b.emit(Instr::I32Add);
        b.finish_func();
        b.export_func("t", f);
        let m = b.build();
        // case 0: falls to inner end, sets 10, result 15
        assert_eq!(run(m.clone(), "t", &[0], &PassConfig::standard()).unwrap(), Some(15));
        // default: jumps past the set, out stays 0, result 5
        assert_eq!(run(m, "t", &[3], &PassConfig::standard()).unwrap(), Some(5));
    }
}
