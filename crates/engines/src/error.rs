//! Runtime error types: traps, link errors, and engine errors.

use std::error::Error;
use std::fmt;

/// A WebAssembly trap: abnormal termination of execution.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Trap {
    /// A memory access was outside the bounds of linear memory.
    MemoryOutOfBounds,
    /// Integer division or remainder by zero.
    DivisionByZero,
    /// `INT_MIN / -1` style overflow in signed division.
    IntegerOverflow,
    /// A float-to-int truncation had no representable result.
    InvalidConversionToInt,
    /// The `unreachable` instruction executed.
    Unreachable,
    /// `call_indirect` through a null/out-of-bounds table element.
    UndefinedElement,
    /// `call_indirect` signature mismatch.
    IndirectCallTypeMismatch,
    /// The runtime call stack limit was exceeded.
    StackOverflow,
    /// Execution exceeded the configured fuel budget.
    OutOfFuel,
    /// The guest requested termination via WASI `proc_exit`.
    Exit(i32),
    /// A host function reported an error.
    Host(String),
}

impl fmt::Display for Trap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Trap::MemoryOutOfBounds => write!(f, "out of bounds memory access"),
            Trap::DivisionByZero => write!(f, "integer divide by zero"),
            Trap::IntegerOverflow => write!(f, "integer overflow"),
            Trap::InvalidConversionToInt => write!(f, "invalid conversion to integer"),
            Trap::Unreachable => write!(f, "unreachable executed"),
            Trap::UndefinedElement => write!(f, "undefined table element"),
            Trap::IndirectCallTypeMismatch => write!(f, "indirect call type mismatch"),
            Trap::StackOverflow => write!(f, "call stack exhausted"),
            Trap::OutOfFuel => write!(f, "fuel exhausted"),
            Trap::Exit(code) => write!(f, "guest exited with code {code}"),
            Trap::Host(msg) => write!(f, "host error: {msg}"),
        }
    }
}

impl Error for Trap {}

/// An error while linking imports at instantiation time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinkError {
    /// Description of the missing or mismatched import.
    pub message: String,
}

impl LinkError {
    /// Creates a link error.
    pub fn new(message: impl Into<String>) -> Self {
        LinkError {
            message: message.into(),
        }
    }
}

impl fmt::Display for LinkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "link error: {}", self.message)
    }
}

impl Error for LinkError {}

/// A top-level engine error: decode, validation, link, or trap.
#[derive(Debug)]
#[non_exhaustive]
pub enum EngineError {
    /// The module bytes failed to decode.
    Decode(wasm_core::DecodeError),
    /// The module failed validation.
    Validate(wasm_core::ValidateError),
    /// Instantiation failed to link imports.
    Link(LinkError),
    /// Execution trapped.
    Trap(Trap),
    /// An AOT artifact was malformed or built by a different engine.
    BadArtifact(String),
    /// A deterministic fault-injection hook vetoed the operation (chaos
    /// testing only; never produced on a clean run).
    Injected(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Decode(e) => write!(f, "{e}"),
            EngineError::Validate(e) => write!(f, "{e}"),
            EngineError::Link(e) => write!(f, "{e}"),
            EngineError::Trap(t) => write!(f, "trap: {t}"),
            EngineError::BadArtifact(m) => write!(f, "bad AOT artifact: {m}"),
            EngineError::Injected(m) => write!(f, "injected fault: {m}"),
        }
    }
}

impl Error for EngineError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            EngineError::Decode(e) => Some(e),
            EngineError::Validate(e) => Some(e),
            EngineError::Link(e) => Some(e),
            EngineError::Trap(t) => Some(t),
            EngineError::BadArtifact(_) | EngineError::Injected(_) => None,
        }
    }
}

impl From<wasm_core::DecodeError> for EngineError {
    fn from(e: wasm_core::DecodeError) -> Self {
        EngineError::Decode(e)
    }
}

impl From<wasm_core::ValidateError> for EngineError {
    fn from(e: wasm_core::ValidateError) -> Self {
        EngineError::Validate(e)
    }
}

impl From<LinkError> for EngineError {
    fn from(e: LinkError) -> Self {
        EngineError::Link(e)
    }
}

impl From<Trap> for EngineError {
    fn from(t: Trap) -> Self {
        EngineError::Trap(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trap_display() {
        assert_eq!(Trap::DivisionByZero.to_string(), "integer divide by zero");
        assert_eq!(Trap::Exit(3).to_string(), "guest exited with code 3");
    }

    #[test]
    fn engine_error_from_trap() {
        let e: EngineError = Trap::Unreachable.into();
        assert!(matches!(e, EngineError::Trap(Trap::Unreachable)));
        assert!(e.source().is_some());
    }
}
