//! Memory accounting: a per-instance breakdown of runtime-owned memory,
//! standing in for the paper's maximum-resident-set-size measurements.

/// A breakdown of the memory a runtime instance holds, in bytes.
///
/// `linear_memory_peak` is the guest's own data (the part a native build
/// of the program would also allocate); everything else is runtime
/// overhead. The sum plays the role of MRSS in the Figure 5 experiment.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoryReport {
    /// Fixed footprint of the runtime binary itself (code, allocator
    /// arenas, runtime tables). Calibrated per engine to the documented
    /// baseline RSS of the real runtime it models.
    pub runtime_fixed: usize,
    /// The Wasm binary retained in memory.
    pub module_binary: usize,
    /// Decoded module structures (types, bodies, segments).
    pub decoded_module: usize,
    /// Engine code: interpreter bytecode, threaded code, or machine code.
    pub code: usize,
    /// Retained compiler IR (the LLVM-style tier keeps it alive).
    pub retained_ir: usize,
    /// Side metadata: control maps, jump tables, type tables.
    pub metadata: usize,
    /// Peak of the value/call stack.
    pub exec_stack_peak: usize,
    /// Peak guest linear memory.
    pub linear_memory_peak: usize,
}

impl MemoryReport {
    /// Total peak memory (the MRSS analogue).
    pub fn total(&self) -> usize {
        self.runtime_fixed
            + self.module_binary
            + self.decoded_module
            + self.code
            + self.retained_ir
            + self.metadata
            + self.exec_stack_peak
            + self.linear_memory_peak
    }

    /// Runtime-owned overhead: everything except the guest's own data.
    pub fn runtime_overhead(&self) -> usize {
        self.total() - self.linear_memory_peak
    }

    /// MRSS normalized to a native execution with the given peak footprint
    /// (guest data plus the native process baseline).
    pub fn normalized_to_native(&self, native_peak: usize) -> f64 {
        self.total() as f64 / native_peak.max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_add_up() {
        let r = MemoryReport {
            runtime_fixed: 100,
            module_binary: 10,
            decoded_module: 20,
            code: 30,
            retained_ir: 5,
            metadata: 15,
            exec_stack_peak: 8,
            linear_memory_peak: 1000,
        };
        assert_eq!(r.total(), 1188);
        assert_eq!(r.runtime_overhead(), 188);
        assert!((r.normalized_to_native(1100) - 1.08).abs() < 0.001);
    }

    #[test]
    fn normalization_guards_zero() {
        let r = MemoryReport::default();
        assert_eq!(r.normalized_to_native(0), 0.0);
    }
}
