//! Fallible-compile hook: a thread-local injection point that lets a
//! host (the wabench service under a fault plan) make
//! [`Engine::compile`](crate::Engine::compile) fail deterministically
//! for chosen `(engine, module)` pairs.
//!
//! The hook is thread-local and scoped: installing returns an RAII
//! guard, and the hook is only consulted on the installing thread while
//! the guard lives. Code that never installs one — the serial harness
//! runner, unit tests, every measurement path — pays one thread-local
//! read per compile and can never observe an injected failure.

use std::cell::RefCell;

use crate::engine::EngineKind;
use crate::error::EngineError;

type Hook = Box<dyn Fn(EngineKind, &[u8]) -> Option<String>>;

thread_local! {
    static HOOK: RefCell<Option<Hook>> = const { RefCell::new(None) };
}

/// RAII guard for an installed compile-fault hook; dropping it
/// uninstalls the hook from the current thread.
#[derive(Debug)]
pub struct ScopedCompileFault {
    _not_send: std::marker::PhantomData<*const ()>,
}

impl ScopedCompileFault {
    /// Installs `hook` on the current thread, replacing any previous
    /// hook. The hook returns `Some(reason)` to fail a compile.
    pub fn install(hook: impl Fn(EngineKind, &[u8]) -> Option<String> + 'static) -> ScopedCompileFault {
        HOOK.with(|h| *h.borrow_mut() = Some(Box::new(hook)));
        ScopedCompileFault {
            _not_send: std::marker::PhantomData,
        }
    }
}

impl Drop for ScopedCompileFault {
    fn drop(&mut self) {
        HOOK.with(|h| *h.borrow_mut() = None);
    }
}

/// Consulted at the top of `Engine::compile`; `Err` when the installed
/// hook (if any) vetoes this compile.
pub(crate) fn check(kind: EngineKind, bytes: &[u8]) -> Result<(), EngineError> {
    let verdict = HOOK.with(|h| h.borrow().as_ref().and_then(|hook| hook(kind, bytes)));
    match verdict {
        Some(reason) => Err(EngineError::Injected(reason)),
        None => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Engine;

    /// A minimal valid empty module: magic + version.
    const EMPTY_WASM: &[u8] = &[0x00, 0x61, 0x73, 0x6d, 0x01, 0x00, 0x00, 0x00];

    #[test]
    fn hook_is_scoped_and_selective() {
        let jit = Engine::new(EngineKind::Wasmtime);
        let interp = Engine::new(EngineKind::Wasm3);
        assert!(jit.compile(EMPTY_WASM).is_ok(), "no hook: clean compile");
        {
            let _guard = ScopedCompileFault::install(|kind, _bytes| {
                kind.tier()
                    .is_some()
                    .then(|| format!("injected compile failure ({})", kind.name()))
            });
            let err = jit.compile(EMPTY_WASM).expect_err("hook vetoes JITs");
            assert!(matches!(err, EngineError::Injected(_)), "{err}");
            assert!(err.to_string().contains("injected"));
            assert!(
                interp.compile(EMPTY_WASM).is_ok(),
                "hook passes interpreters through"
            );
        }
        assert!(jit.compile(EMPTY_WASM).is_ok(), "guard dropped: hook gone");
    }

    #[test]
    fn hook_does_not_leak_across_threads() {
        let _guard = ScopedCompileFault::install(|_, _| Some("always".to_string()));
        std::thread::spawn(|| {
            let engine = Engine::new(EngineKind::Wasmtime);
            assert!(engine.compile(EMPTY_WASM).is_ok());
        })
        .join()
        .unwrap();
    }
}
