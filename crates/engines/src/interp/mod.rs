//! The two interpretation-based engines.
//!
//! - [`tree`]: a classic in-place interpreter over the decoded instruction
//!   stream with a runtime label stack — the execution strategy of WAMR's
//!   classic interpreter.
//! - [`threaded`]: a pre-translated direct-threaded interpreter with
//!   resolved branch targets and fused super-instructions — the execution
//!   strategy of Wasm3.

pub mod threaded;
pub mod tree;

/// A runtime control-stack entry used by the tree interpreter.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Label {
    /// pc of the matching `End`.
    pub end_pc: u32,
    /// pc just after the opening instruction (loop branch target).
    pub start_pc: u32,
    /// Value-stack height at entry.
    pub height: u32,
    /// Number of result values carried over a branch (0 or 1).
    pub arity: u8,
    /// Loops branch to their start and keep their label.
    pub is_loop: bool,
}
