//! The Wasm3-style direct-threaded interpreter.
//!
//! At load time each function body is *translated* into a linear stream of
//! threaded operations ([`TOp`]): branch targets are fully resolved (no
//! runtime label stack), dead code is dropped, and common sequences are
//! fused into super-instructions (`local.get a; local.get b; binop` and
//! friends). Execution is a single dispatch loop over the translated
//! stream. This matches Wasm3's "M3" translation strategy: a one-time
//! translation cost buys a much faster steady-state interpreter than the
//! classic in-place design in [`super::tree`].

use std::rc::Rc;

use crate::error::Trap;
use crate::interp::tree::{
    is_store_op, load_op, load_width, numeric_cost, store_op, store_width,
};
use crate::numeric;
use crate::profiler::{BranchKind, Profiler, BYTECODE_BASE, CODE_BASE, HEAP_BASE, STACK_BASE};
use crate::store::Runtime;
use wasm_core::control::ControlMap;
use wasm_core::instr::Instr;
use wasm_core::module::Module;

/// Bytes one threaded op occupies in the profiled address space.
const TOP_BYTES: u64 = 24;

/// How much super-instruction fusion the translator performs.
///
/// The default ([`FusionLevel::Const`]) fuses constant operands only.
/// This calibrates the engine against the compiled tiers: real Wasm3
/// dispatches through continuation calls with memory-passed operands,
/// which cost more than this host's match dispatch, so fusing local reads
/// as well would make the model *faster* relative to the compiled tiers
/// than the real system is. [`FusionLevel::Full`] exists for the
/// dispatch-technique ablation benches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FusionLevel {
    /// Plain threading: resolved branches, no fusion.
    None,
    /// Fuse constant operands (`const k; binop` → `KBin`).
    Const,
    /// Additionally fuse local reads (`get a; get b; binop` → `Get2Bin`).
    Full,
}

/// How a taken branch repairs the value stack: keep the top `keep` values,
/// placing them at absolute height `height`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StackFix {
    /// Absolute value-stack height after the branch (excluding kept values).
    pub height: u16,
    /// Number of values carried over the branch (0 or 1 in the MVP).
    pub keep: u8,
}

/// A threaded operation with resolved targets.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TOp {
    /// Push a constant.
    Const(u64),
    /// Push local `n`.
    GetLocal(u16),
    /// Pop into local `n`.
    SetLocal(u16),
    /// Copy top of stack into local `n`.
    TeeLocal(u16),
    /// Push global `n`.
    GetGlobal(u32),
    /// Pop into global `n`.
    SetGlobal(u32),
    /// Pop and discard.
    Drop,
    /// Ternary select.
    Select,
    /// Fused `local.get a; local.get b; <binop>`.
    Get2Bin {
        /// First operand local.
        a: u16,
        /// Second operand local.
        b: u16,
        /// The binary operator.
        op: Instr,
    },
    /// Fused `local.get a; <const k>; <binop>`.
    GetKBin {
        /// First operand local.
        a: u16,
        /// Constant second operand (raw bits).
        k: u64,
        /// The binary operator.
        op: Instr,
    },
    /// Fused `<const k>; <binop>` (second operand constant).
    KBin {
        /// Constant second operand (raw bits).
        k: u64,
        /// The binary operator.
        op: Instr,
    },
    /// Fused `local.get a; <binop>` (second operand from local).
    GetBin {
        /// Second operand local.
        a: u16,
        /// The binary operator.
        op: Instr,
    },
    /// Plain binary operator on the two top stack values.
    Bin(Instr),
    /// Plain unary operator on the top stack value.
    Un(Instr),
    /// Memory load with constant offset.
    Load {
        /// The load instruction (width/sign behavior).
        op: Instr,
        /// Constant offset.
        offset: u32,
        /// Translation-time range analysis proved the access in bounds;
        /// the modeled bounds-check cost is skipped (the host check
        /// remains as defense in depth).
        safe: bool,
    },
    /// Memory store with constant offset.
    Store {
        /// The store instruction (width behavior).
        op: Instr,
        /// Constant offset.
        offset: u32,
        /// Translation-time range analysis proved the access in bounds.
        safe: bool,
    },
    /// Unconditional jump.
    Br {
        /// Target op index.
        target: u32,
        /// Stack repair.
        fix: StackFix,
    },
    /// Jump if popped value is non-zero.
    BrIf {
        /// Target op index.
        target: u32,
        /// Stack repair.
        fix: StackFix,
    },
    /// Jump if popped value is zero (used for `if` lowering).
    BrIfZ {
        /// Target op index.
        target: u32,
        /// Stack repair.
        fix: StackFix,
    },
    /// Resolved `br_table`: index into the per-function table pool.
    BrTable(u32),
    /// Direct call.
    Call {
        /// Callee function index (combined index space).
        f: u32,
        /// Argument count.
        nargs: u8,
        /// Whether a result is pushed.
        ret: bool,
    },
    /// Indirect call through table 0.
    CallIndirect {
        /// Expected type index.
        type_idx: u32,
        /// Argument count.
        nargs: u8,
        /// Whether a result is pushed.
        ret: bool,
    },
    /// Return from the function (result on top of stack if the function
    /// has one).
    Ret,
    /// `memory.size`.
    MemSize,
    /// `memory.grow`.
    MemGrow,
    /// `unreachable`.
    Unreachable,
}

/// A resolved `br_table` arm: target op index plus the stack repair
/// applied when taking it.
type TableArm = (u32, StackFix);
/// A translated jump table: explicit arms plus the default arm.
type JumpTable = (Vec<TableArm>, TableArm);
/// A translated function.
#[derive(Debug, Clone)]
pub struct TFunc {
    ops: Vec<TOp>,
    /// `params + locals` count.
    nlocals: u16,
    result: bool,
    /// Profiled base address of this function's threaded code.
    base: u64,
    /// Resolved `br_table` entries: `(target, fix)` lists plus default.
    tables: Vec<JumpTable>,
}

/// Loaded and translated code for the threaded interpreter.
#[derive(Debug)]
pub struct ThreadedCode {
    /// The decoded module (kept for types/exports).
    pub module: Rc<Module>,
    funcs: Vec<TFunc>,
    num_imported: u32,
}

struct OpenBlock {
    is_loop: bool,
    /// Translated-op index loops branch back to.
    loop_target: u32,
    /// Stack height at entry.
    height: u16,
    /// Branch arity (0 for loops).
    arity: u8,
    /// Result arity at end.
    end_arity: u8,
    /// Forward-branch sites to patch with the block's end position.
    /// Plain entries are `ops` indices; table entries are encoded with
    /// [`TABLE_FIXUP_FLAG`].
    fixups: Vec<usize>,
    /// `BrIfZ` emitted at `if`, patched to the else-arm (or end).
    if_skip: Option<usize>,
    /// Whether the enclosing context was already dead when this block
    /// opened (its `else` arm is then dead too).
    born_dead: bool,
    /// Set when the current position is unreachable.
    unreachable: bool,
}

impl ThreadedCode {
    /// Translates a validated module into threaded code.
    ///
    /// # Errors
    ///
    /// Fails only on malformed control structure, which validation has
    /// already excluded.
    pub fn load(module: Rc<Module>) -> Result<ThreadedCode, wasm_core::ValidateError> {
        Self::load_with_options(module, FusionLevel::Const)
    }

    /// Like [`load`](Self::load) with an explicit [`FusionLevel`] (used by
    /// the dispatch-technique ablation benches).
    pub fn load_with_options(
        module: Rc<Module>,
        fuse: FusionLevel,
    ) -> Result<ThreadedCode, wasm_core::ValidateError> {
        let mut funcs = Vec::with_capacity(module.funcs.len());
        let mut base = BYTECODE_BASE;
        let num_imported = module.num_imported_funcs() as u32;
        for (i, f) in module.funcs.iter().enumerate() {
            let ty = &module.types[f.type_idx as usize];
            let safe = crate::jit::verify::safe_wasm_sites(&module, f);
            let tf = translate(
                &module,
                f,
                ty.params.len(),
                !ty.results.is_empty(),
                base,
                fuse,
                &safe,
            )
            .map_err(|e| e.with_func(num_imported + i as u32))?;
            base += tf.ops.len() as u64 * TOP_BYTES;
            funcs.push(tf);
        }
        Ok(ThreadedCode {
            num_imported: module.num_imported_funcs() as u32,
            module,
            funcs,
        })
    }

    /// Approximate engine-owned bytes (threaded code + tables).
    pub fn code_bytes(&self) -> usize {
        self.funcs
            .iter()
            .map(|f| {
                f.ops.len() * TOP_BYTES as usize
                    + f.tables
                        .iter()
                        .map(|(t, _)| (t.len() + 1) * 8)
                        .sum::<usize>()
            })
            .sum()
    }

    /// Total translated ops (for tests and fusion statistics).
    pub fn total_ops(&self) -> usize {
        self.funcs.iter().map(|f| f.ops.len()).sum()
    }

    /// Invokes function `func_idx` with raw argument slots.
    ///
    /// # Errors
    ///
    /// Returns any trap raised during execution.
    pub fn invoke<P: Profiler>(
        &self,
        rt: &mut Runtime,
        func_idx: u32,
        args: &[u64],
        p: &mut P,
    ) -> Result<Option<u64>, Trap> {
        self.call(rt, func_idx, args, 0, p)
    }

    fn call<P: Profiler>(
        &self,
        rt: &mut Runtime,
        func_idx: u32,
        args: &[u64],
        depth: usize,
        p: &mut P,
    ) -> Result<Option<u64>, Trap> {
        if depth >= rt.call_depth_limit {
            return Err(Trap::StackOverflow);
        }
        if func_idx < self.num_imported {
            return rt.call_host(func_idx, args).map(Some);
        }
        let tf = &self.funcs[(func_idx - self.num_imported) as usize];

        let mut locals = vec![0u64; tf.nlocals as usize];
        locals[..args.len()].copy_from_slice(args);
        let mut stack: Vec<u64> = Vec::with_capacity(16);
        let mut pc: usize = 0;

        macro_rules! pop {
            () => {{
                p.read(STACK_BASE + stack.len() as u64 * 8, 8);
                stack.pop().expect("validated stack")
            }};
        }
        macro_rules! push {
            ($v:expr) => {{
                let v = $v;
                stack.push(v);
                p.write(STACK_BASE + stack.len() as u64 * 8, 8);
            }};
        }
        macro_rules! apply_fix {
            ($fix:expr) => {{
                let fix = $fix;
                let keep = fix.keep as usize;
                let from = stack.len() - keep;
                for k in 0..keep {
                    stack[fix.height as usize + k] = stack[from + k];
                }
                stack.truncate(fix.height as usize + keep);
            }};
        }

        loop {
            let op = &tf.ops[pc];
            let site = tf.base + pc as u64 * TOP_BYTES;
            // Threaded personality: one bytecode word read plus the
            // computed-goto dispatch (indirect branch), cheaper than the
            // classic interpreter's decode.
            p.fetch(CODE_BASE + 0x4000, 16);
            p.read(site, 8);
            p.branch(
                CODE_BASE + 0x4000,
                BranchKind::Indirect,
                true,
                CODE_BASE + 0x4100 + top_slot(op) * 0x40,
            );
            p.uops(4); // fetch-next + operand move + dispatch

            match *op {
                TOp::Const(v) => push!(v),
                TOp::GetLocal(i) => {
                    p.read(STACK_BASE + i as u64 * 8, 8);
                    push!(locals[i as usize]);
                }
                TOp::SetLocal(i) => {
                    let v = pop!();
                    locals[i as usize] = v;
                    p.write(STACK_BASE + i as u64 * 8, 8);
                }
                TOp::TeeLocal(i) => {
                    locals[i as usize] = *stack.last().expect("validated stack");
                    p.write(STACK_BASE + i as u64 * 8, 8);
                }
                TOp::GetGlobal(i) => {
                    p.read(crate::profiler::GLOBALS_BASE + i as u64 * 8, 8);
                    push!(rt.globals[i as usize]);
                }
                TOp::SetGlobal(i) => {
                    let v = pop!();
                    rt.globals[i as usize] = v;
                    p.write(crate::profiler::GLOBALS_BASE + i as u64 * 8, 8);
                }
                TOp::Drop => {
                    pop!();
                }
                TOp::Select => {
                    let c = pop!();
                    let b = pop!();
                    let a = pop!();
                    push!(if c as u32 != 0 { a } else { b });
                    p.uops(1);
                }
                TOp::Get2Bin { a, b, op } => {
                    p.read(STACK_BASE + a as u64 * 8, 8);
                    p.read(STACK_BASE + b as u64 * 8, 8);
                    push!(numeric::apply_binary(op, locals[a as usize], locals[b as usize])?);
                    p.uops(numeric_cost(&op));
                }
                TOp::GetKBin { a, k, op } => {
                    p.read(STACK_BASE + a as u64 * 8, 8);
                    push!(numeric::apply_binary(op, locals[a as usize], k)?);
                    p.uops(numeric_cost(&op));
                }
                TOp::KBin { k, op } => {
                    let a = pop!();
                    push!(numeric::apply_binary(op, a, k)?);
                    p.uops(numeric_cost(&op));
                }
                TOp::GetBin { a, op } => {
                    let lhs = pop!();
                    p.read(STACK_BASE + a as u64 * 8, 8);
                    push!(numeric::apply_binary(op, lhs, locals[a as usize])?);
                    p.uops(numeric_cost(&op));
                }
                TOp::Bin(op) => {
                    let b = pop!();
                    let a = pop!();
                    push!(numeric::apply_binary(op, a, b)?);
                    p.uops(numeric_cost(&op));
                }
                TOp::Un(op) => {
                    let a = pop!();
                    push!(numeric::apply_unary(op, a)?);
                    p.uops(numeric_cost(&op));
                }
                TOp::Load { op, offset, safe } => {
                    let addr = pop!() as u32;
                    let mem = rt.memory.as_ref().expect("validated memory");
                    let v = load_op(mem, &op, addr, offset)?;
                    p.read(HEAP_BASE + addr as u64 + offset as u64, load_width(&op));
                    // Access plus bounds check, unless translation proved
                    // the check redundant.
                    if safe {
                        p.uops(1);
                        p.check_skipped();
                    } else {
                        p.uops(2);
                    }
                    push!(v);
                }
                TOp::Store { op, offset, safe } => {
                    let v = pop!();
                    let addr = pop!() as u32;
                    let mem = rt.memory.as_mut().expect("validated memory");
                    store_op(mem, &op, addr, offset, v)?;
                    p.write(HEAP_BASE + addr as u64 + offset as u64, store_width(&op));
                    if safe {
                        p.uops(1);
                        p.check_skipped();
                    } else {
                        p.uops(2);
                    }
                }
                TOp::Br { target, fix } => {
                    apply_fix!(fix);
                    pc = target as usize;
                    continue;
                }
                TOp::BrIf { target, fix } => {
                    let c = pop!();
                    let taken = c as u32 != 0;
                    p.branch(site, BranchKind::Cond, taken, tf.base + target as u64 * TOP_BYTES);
                    if taken {
                        apply_fix!(fix);
                        pc = target as usize;
                        continue;
                    }
                }
                TOp::BrIfZ { target, fix } => {
                    let c = pop!();
                    let taken = c as u32 == 0;
                    p.branch(site, BranchKind::Cond, taken, tf.base + target as u64 * TOP_BYTES);
                    if taken {
                        apply_fix!(fix);
                        pc = target as usize;
                        continue;
                    }
                }
                TOp::BrTable(t) => {
                    let idx = pop!() as u32 as usize;
                    let (targets, default) = &tf.tables[t as usize];
                    let (target, fix) = targets.get(idx).copied().unwrap_or(*default);
                    p.read(site + 8, 8);
                    p.branch(site, BranchKind::Indirect, true, tf.base + target as u64 * TOP_BYTES);
                    apply_fix!(fix);
                    pc = target as usize;
                    continue;
                }
                TOp::Call { f, nargs, ret } => {
                    let start = stack.len() - nargs as usize;
                    let call_args: Vec<u64> = stack[start..].to_vec();
                    stack.truncate(start);
                    p.branch(site, BranchKind::Call, true, CODE_BASE + f as u64 * 0x80);
                    p.uops(5);
                    let r = self.call(rt, f, &call_args, depth + 1, p)?;
                    if ret {
                        push!(r.expect("typed result"));
                    }
                }
                TOp::CallIndirect {
                    type_idx,
                    nargs,
                    ret,
                } => {
                    let elem = pop!() as u32;
                    let f = rt
                        .table
                        .get(elem as usize)
                        .copied()
                        .flatten()
                        .ok_or(Trap::UndefinedElement)?;
                    let want = &self.module.types[type_idx as usize];
                    let have = self.module.func_type(f).ok_or(Trap::UndefinedElement)?;
                    if want != have {
                        return Err(Trap::IndirectCallTypeMismatch);
                    }
                    let start = stack.len() - nargs as usize;
                    let call_args: Vec<u64> = stack[start..].to_vec();
                    stack.truncate(start);
                    p.branch(site, BranchKind::IndirectCall, true, CODE_BASE + f as u64 * 0x80);
                    p.uops(8);
                    let r = self.call(rt, f, &call_args, depth + 1, p)?;
                    if ret {
                        push!(r.expect("typed result"));
                    }
                }
                TOp::Ret => {
                    rt.peak_value_stack = rt.peak_value_stack.max(stack.len() + locals.len());
                    p.branch(site, BranchKind::Ret, true, CODE_BASE);
                    return Ok(if tf.result { stack.pop() } else { None });
                }
                TOp::MemSize => {
                    let mem = rt.memory.as_ref().expect("validated memory");
                    push!(mem.size_pages() as u64);
                }
                TOp::MemGrow => {
                    let delta = pop!() as u32;
                    let mem = rt.memory.as_mut().expect("validated memory");
                    push!(mem.grow(delta) as u32 as u64);
                    p.uops(20);
                }
                TOp::Unreachable => return Err(Trap::Unreachable),
            }
            pc += 1;
        }
    }
}

/// Dispatch slot id per op kind, for modeling the dispatch branch target.
fn top_slot(op: &TOp) -> u64 {
    match op {
        TOp::Const(_) => 0,
        TOp::GetLocal(_) => 1,
        TOp::SetLocal(_) => 2,
        TOp::TeeLocal(_) => 3,
        TOp::GetGlobal(_) => 4,
        TOp::SetGlobal(_) => 5,
        TOp::Drop => 6,
        TOp::Select => 7,
        TOp::Get2Bin { .. } => 8,
        TOp::GetKBin { .. } => 9,
        TOp::KBin { .. } => 10,
        TOp::GetBin { .. } => 11,
        TOp::Bin(_) => 12,
        TOp::Un(_) => 13,
        TOp::Load { .. } => 14,
        TOp::Store { .. } => 15,
        TOp::Br { .. } => 16,
        TOp::BrIf { .. } => 17,
        TOp::BrIfZ { .. } => 18,
        TOp::BrTable(_) => 19,
        TOp::Call { .. } => 20,
        TOp::CallIndirect { .. } => 21,
        TOp::Ret => 22,
        TOp::MemSize => 23,
        TOp::MemGrow => 24,
        TOp::Unreachable => 25,
    }
}

/// Marks a fixup entry as targeting a `br_table` pool entry.
const TABLE_FIXUP_FLAG: usize = 1 << 62;

fn encode_table_fixup(table_idx: usize, slot: i32) -> usize {
    TABLE_FIXUP_FLAG | (table_idx << 16) | ((slot + 1) as usize & 0xFFFF)
}

fn translate(
    module: &Module,
    func: &wasm_core::module::Func,
    nparams: usize,
    has_result: bool,
    base: u64,
    fuse: FusionLevel,
    safe: &[bool],
) -> Result<TFunc, wasm_core::ValidateError> {
    // Validation has passed, so control structure is sound.
    let _map = ControlMap::build(&func.body)?;
    let nlocals = (nparams + func.locals.len()) as u16;

    let mut ops: Vec<TOp> = Vec::with_capacity(func.body.len());
    let mut tables: Vec<JumpTable> = Vec::new();
    let mut height: u16 = 0;
    let mut blocks: Vec<OpenBlock> = vec![OpenBlock {
        is_loop: false,
        loop_target: 0,
        height: 0,
        arity: has_result as u8,
        end_arity: has_result as u8,
        fixups: Vec::new(),
        if_skip: None,
        born_dead: false,
        unreachable: false,
    }];

    let patch = |ops: &mut [TOp],
                 tables: &mut [JumpTable],
                 site: usize,
                 end_pos: u32| {
        if site & TABLE_FIXUP_FLAG != 0 {
            let table_idx = (site & !TABLE_FIXUP_FLAG) >> 16;
            let slot = (site & 0xFFFF) as i32 - 1;
            let (targets, default) = &mut tables[table_idx];
            if slot < 0 {
                default.0 = end_pos;
            } else {
                targets[slot as usize].0 = end_pos;
            }
        } else {
            match &mut ops[site] {
                TOp::Br { target, .. }
                | TOp::BrIf { target, .. }
                | TOp::BrIfZ { target, .. } => *target = end_pos,
                other => unreachable!("fixup site is not a branch: {other:?}"),
            }
        }
    };

    let body = &func.body;
    let mut i = 0usize;
    while i < body.len() {
        let instr = &body[i];
        let dead = blocks.last().expect("block stack").unreachable;

        // Structural instructions are processed even in dead code to keep
        // the block stack aligned; everything else in dead code is skipped.
        match instr {
            Instr::Block(bt) | Instr::Loop(bt) | Instr::If(bt) => {
                if dead {
                    blocks.push(OpenBlock {
                        is_loop: false,
                        loop_target: 0,
                        height,
                        arity: 0,
                        end_arity: 0,
                        fixups: Vec::new(),
                        if_skip: None,
                        born_dead: true,
                        unreachable: true,
                    });
                    i += 1;
                    continue;
                }
                let is_loop = matches!(instr, Instr::Loop(_));
                let is_if = matches!(instr, Instr::If(_));
                if is_if {
                    height -= 1; // the condition
                }
                let mut blk = OpenBlock {
                    is_loop,
                    loop_target: ops.len() as u32,
                    height,
                    arity: if is_loop { 0 } else { bt.arity() as u8 },
                    end_arity: bt.arity() as u8,
                    fixups: Vec::new(),
                    if_skip: None,
                    born_dead: false,
                    unreachable: false,
                };
                if is_if {
                    // Branch over the then-arm when the condition is zero;
                    // patched at Else (to the else start) or End.
                    blk.if_skip = Some(ops.len());
                    ops.push(TOp::BrIfZ {
                        target: u32::MAX,
                        fix: StackFix { height, keep: 0 },
                    });
                }
                blocks.push(blk);
            }
            Instr::Else => {
                let (entry_height, end_arity, was_dead, born_dead) = {
                    let blk = blocks.last().expect("block stack");
                    (blk.height, blk.end_arity, blk.unreachable, blk.born_dead)
                };
                // Jump over the else-arm at the end of a live then-arm.
                let jump_site = if was_dead {
                    None
                } else {
                    let s = ops.len();
                    ops.push(TOp::Br {
                        target: u32::MAX,
                        fix: StackFix {
                            height: entry_height,
                            keep: end_arity,
                        },
                    });
                    Some(s)
                };
                let else_start = ops.len() as u32;
                let blk = blocks.last_mut().expect("block stack");
                if let Some(skip) = blk.if_skip.take() {
                    patch(&mut ops, &mut tables, skip, else_start);
                }
                if let Some(s) = jump_site {
                    blocks.last_mut().expect("block stack").fixups.push(s);
                }
                let blk = blocks.last_mut().expect("block stack");
                blk.unreachable = born_dead;
                height = entry_height;
            }
            Instr::End => {
                let blk = blocks.pop().expect("block stack");
                let end_pos = ops.len() as u32;
                if let Some(skip) = blk.if_skip {
                    patch(&mut ops, &mut tables, skip, end_pos);
                }
                for site in &blk.fixups {
                    patch(&mut ops, &mut tables, *site, end_pos);
                }
                height = blk.height + blk.end_arity as u16;
                if blocks.is_empty() {
                    ops.push(TOp::Ret);
                    break;
                }
            }
            _ if dead => {}
            Instr::Br(d) => {
                let (target, fix) = branch_info(&blocks, *d);
                ops.push(TOp::Br { target, fix });
                record_fixup(&mut blocks, *d, ops.len() - 1);
                blocks.last_mut().expect("block stack").unreachable = true;
            }
            Instr::BrIf(d) => {
                height -= 1; // condition
                let (target, fix) = branch_info(&blocks, *d);
                ops.push(TOp::BrIf { target, fix });
                record_fixup(&mut blocks, *d, ops.len() - 1);
            }
            Instr::BrTable(pool) => {
                height -= 1; // index
                let table = &module.br_tables[*pool as usize];
                let table_idx = tables.len();
                let mut resolved = Vec::with_capacity(table.targets.len());
                for (slot, &d) in table.targets.iter().enumerate() {
                    let (target, fix) = branch_info(&blocks, d);
                    resolved.push((target, fix));
                    record_fixup_encoded(&mut blocks, d, encode_table_fixup(table_idx, slot as i32));
                }
                let (dt, dfix) = branch_info(&blocks, table.default);
                record_fixup_encoded(
                    &mut blocks,
                    table.default,
                    encode_table_fixup(table_idx, -1),
                );
                tables.push((resolved, (dt, dfix)));
                ops.push(TOp::BrTable(table_idx as u32));
                blocks.last_mut().expect("block stack").unreachable = true;
            }
            Instr::Return => {
                ops.push(TOp::Ret);
                blocks.last_mut().expect("block stack").unreachable = true;
            }
            Instr::Unreachable => {
                ops.push(TOp::Unreachable);
                blocks.last_mut().expect("block stack").unreachable = true;
            }
            Instr::Call(f) => {
                let ty = module.func_type(*f).expect("validated");
                height = height - ty.params.len() as u16 + ty.results.len() as u16;
                ops.push(TOp::Call {
                    f: *f,
                    nargs: ty.params.len() as u8,
                    ret: !ty.results.is_empty(),
                });
            }
            Instr::CallIndirect(type_idx) => {
                let ty = &module.types[*type_idx as usize];
                height = height - 1 - ty.params.len() as u16 + ty.results.len() as u16;
                ops.push(TOp::CallIndirect {
                    type_idx: *type_idx,
                    nargs: ty.params.len() as u8,
                    ret: !ty.results.is_empty(),
                });
            }
            Instr::Nop => {}
            Instr::Drop => {
                height -= 1;
                ops.push(TOp::Drop);
            }
            Instr::Select => {
                height -= 2;
                ops.push(TOp::Select);
            }
            Instr::LocalGet(n) => {
                // Fusion lookahead: get a; get b; bin  /  get a; const; bin
                // / get a; bin. Numeric ops are never branch targets, so
                // fusing across them is safe.
                let a = *n as u16;
                match (body.get(i + 1), body.get(i + 2)) {
                    _ if fuse != FusionLevel::Full => {
                        ops.push(TOp::GetLocal(a));
                        height += 1;
                    }
                    (Some(Instr::LocalGet(b)), Some(op2)) if numeric::is_binary(*op2) => {
                        ops.push(TOp::Get2Bin {
                            a,
                            b: *b as u16,
                            op: *op2,
                        });
                        height += 1;
                        i += 3;
                        continue;
                    }
                    (Some(k), Some(op2))
                        if const_bits(k).is_some() && numeric::is_binary(*op2) =>
                    {
                        ops.push(TOp::GetKBin {
                            a,
                            k: const_bits(k).expect("checked"),
                            op: *op2,
                        });
                        height += 1;
                        i += 3;
                        continue;
                    }
                    (Some(op1), _) if numeric::is_binary(*op1) => {
                        ops.push(TOp::GetBin { a, op: *op1 });
                        // pops one, pushes one: net zero
                        i += 2;
                        continue;
                    }
                    _ => {
                        ops.push(TOp::GetLocal(a));
                        height += 1;
                    }
                }
            }
            Instr::LocalSet(n) => {
                height -= 1;
                ops.push(TOp::SetLocal(*n as u16));
            }
            Instr::LocalTee(n) => {
                ops.push(TOp::TeeLocal(*n as u16));
            }
            Instr::GlobalGet(n) => {
                height += 1;
                ops.push(TOp::GetGlobal(*n));
            }
            Instr::GlobalSet(n) => {
                height -= 1;
                ops.push(TOp::SetGlobal(*n));
            }
            Instr::MemorySize => {
                height += 1;
                ops.push(TOp::MemSize);
            }
            Instr::MemoryGrow => {
                ops.push(TOp::MemGrow);
            }
            Instr::I32Const(_) | Instr::I64Const(_) | Instr::F32Const(_) | Instr::F64Const(_) => {
                let k = const_bits(instr).expect("const");
                // Fusion: const k; bin  →  KBin.
                if fuse != FusionLevel::None {
                    if let Some(op2) = body.get(i + 1) {
                        if numeric::is_binary(*op2) {
                            ops.push(TOp::KBin { k, op: *op2 });
                            i += 2;
                            continue;
                        }
                    }
                }
                height += 1;
                ops.push(TOp::Const(k));
            }
            other => {
                if let Some((_, m)) = wasm_core::opcode::mem_opcode(other) {
                    let is_safe = safe.get(i).copied().unwrap_or(false);
                    if is_store_op(other) {
                        height -= 2;
                        ops.push(TOp::Store {
                            op: *other,
                            offset: m.offset,
                            safe: is_safe,
                        });
                    } else {
                        ops.push(TOp::Load {
                            op: *other,
                            offset: m.offset,
                            safe: is_safe,
                        });
                    }
                } else if numeric::is_binary(*other) {
                    height -= 1;
                    ops.push(TOp::Bin(*other));
                } else if numeric::is_unary(*other) {
                    ops.push(TOp::Un(*other));
                } else {
                    unreachable!("unhandled instruction in translation: {other:?}");
                }
            }
        }
        i += 1;
    }

    Ok(TFunc {
        ops,
        nlocals,
        result: has_result,
        base,
        tables,
    })
}

fn const_bits(i: &Instr) -> Option<u64> {
    match *i {
        Instr::I32Const(v) => Some(v as u32 as u64),
        Instr::I64Const(v) => Some(v as u64),
        Instr::F32Const(b) => Some(b as u64),
        Instr::F64Const(b) => Some(b),
        _ => None,
    }
}

/// Computes the (possibly unpatched) target and stack fix for a branch of
/// depth `d`.
fn branch_info(blocks: &[OpenBlock], d: u32) -> (u32, StackFix) {
    let blk = &blocks[blocks.len() - 1 - d as usize];
    let fix = StackFix {
        height: blk.height,
        keep: blk.arity,
    };
    if blk.is_loop {
        (blk.loop_target, fix)
    } else {
        (u32::MAX, fix) // forward; patched at End
    }
}

/// Records `site` (an `ops` index) for later patching if the branch targets
/// a forward label.
fn record_fixup(blocks: &mut [OpenBlock], d: u32, site: usize) {
    let idx = blocks.len() - 1 - d as usize;
    if !blocks[idx].is_loop {
        blocks[idx].fixups.push(site);
    }
}

/// Records an already-encoded fixup (used for `br_table` pool entries).
fn record_fixup_encoded(blocks: &mut [OpenBlock], d: u32, encoded: usize) {
    let idx = blocks.len() - 1 - d as usize;
    if !blocks[idx].is_loop {
        blocks[idx].fixups.push(encoded);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiler::NullProfiler;
    use crate::store::Imports;
    use wasm_core::builder::ModuleBuilder;
    use wasm_core::instr::BlockType;
    use wasm_core::types::{FuncType, ValType};

    fn run(module: Module, name: &str, args: &[u64]) -> Result<Option<u64>, Trap> {
        wasm_core::validate::validate(&module).unwrap();
        let idx = module.exported_func(name).unwrap();
        let code = ThreadedCode::load(Rc::new(module)).unwrap();
        let mut rt = Runtime::instantiate(&code.module, &Imports::new(), Box::new(())).unwrap();
        code.invoke(&mut rt, idx, args, &mut NullProfiler)
    }

    #[test]
    fn add_with_fusion() {
        let mut b = ModuleBuilder::new();
        let f = b.begin_func(FuncType::new(&[ValType::I32, ValType::I32], &[ValType::I32]));
        b.emit(Instr::LocalGet(0));
        b.emit(Instr::LocalGet(1));
        b.emit(Instr::I32Add);
        b.finish_func();
        b.export_func("add", f);
        let m = b.build();
        wasm_core::validate::validate(&m).unwrap();
        let code = ThreadedCode::load_with_options(Rc::new(m), FusionLevel::Full).unwrap();
        // get+get+add fuses into a single op, plus Ret.
        assert_eq!(code.total_ops(), 2);
        let mut rt = Runtime::instantiate(&code.module, &Imports::new(), Box::new(())).unwrap();
        let idx = code.module.exported_func("add").unwrap();
        assert_eq!(
            code.invoke(&mut rt, idx, &[2, 40], &mut NullProfiler).unwrap(),
            Some(42)
        );
    }

    #[test]
    fn loop_sums() {
        let mut b = ModuleBuilder::new();
        let f = b.begin_func(FuncType::new(&[ValType::I32], &[ValType::I32]));
        let sum = b.new_local(ValType::I32);
        let i = b.new_local(ValType::I32);
        b.emit(Instr::Loop(BlockType::Empty));
        b.emit(Instr::LocalGet(i));
        b.emit(Instr::I32Const(1));
        b.emit(Instr::I32Add);
        b.emit(Instr::LocalSet(i));
        b.emit(Instr::LocalGet(sum));
        b.emit(Instr::LocalGet(i));
        b.emit(Instr::I32Add);
        b.emit(Instr::LocalSet(sum));
        b.emit(Instr::LocalGet(i));
        b.emit(Instr::LocalGet(0));
        b.emit(Instr::I32LtS);
        b.emit(Instr::BrIf(0));
        b.emit(Instr::End);
        b.emit(Instr::LocalGet(sum));
        b.finish_func();
        b.export_func("sum", f);
        assert_eq!(run(b.build(), "sum", &[10]).unwrap(), Some(55));
    }

    #[test]
    fn if_else_both_arms() {
        let mut b = ModuleBuilder::new();
        let f = b.begin_func(FuncType::new(&[ValType::I32], &[ValType::I32]));
        b.emit(Instr::LocalGet(0));
        b.emit(Instr::If(BlockType::Value(ValType::I32)));
        b.emit(Instr::I32Const(10));
        b.emit(Instr::Else);
        b.emit(Instr::I32Const(20));
        b.emit(Instr::End);
        b.finish_func();
        b.export_func("pick", f);
        let m = b.build();
        assert_eq!(run(m.clone(), "pick", &[7]).unwrap(), Some(10));
        assert_eq!(run(m, "pick", &[0]).unwrap(), Some(20));
    }

    #[test]
    fn block_br_carries_value() {
        // block (result i32): i32.const 5; br 0; end
        let mut b = ModuleBuilder::new();
        let f = b.begin_func(FuncType::new(&[], &[ValType::I32]));
        b.emit(Instr::Block(BlockType::Value(ValType::I32)));
        b.emit(Instr::I32Const(5));
        b.emit(Instr::Br(0));
        b.emit(Instr::End);
        b.finish_func();
        b.export_func("v", f);
        assert_eq!(run(b.build(), "v", &[]).unwrap(), Some(5));
    }

    #[test]
    fn dead_code_is_dropped() {
        let mut b = ModuleBuilder::new();
        let f = b.begin_func(FuncType::new(&[], &[ValType::I32]));
        b.emit(Instr::Block(BlockType::Empty));
        b.emit(Instr::Br(0));
        b.emit(Instr::I32Const(1)); // dead
        b.emit(Instr::Drop); // dead
        b.emit(Instr::End);
        b.emit(Instr::I32Const(9));
        b.finish_func();
        b.export_func("d", f);
        let m = b.build();
        wasm_core::validate::validate(&m).unwrap();
        let code = ThreadedCode::load(Rc::new(m)).unwrap();
        // Br, Const, Ret — dead const/drop dropped.
        assert_eq!(code.total_ops(), 3);
        let mut rt = Runtime::instantiate(&code.module, &Imports::new(), Box::new(())).unwrap();
        let idx = code.module.exported_func("d").unwrap();
        assert_eq!(code.invoke(&mut rt, idx, &[], &mut NullProfiler).unwrap(), Some(9));
    }

    #[test]
    fn memory_round_trip() {
        let mut b = ModuleBuilder::new();
        b.memory(1, None);
        let f = b.begin_func(FuncType::new(&[], &[ValType::I64]));
        b.emit(Instr::I32Const(32));
        b.emit(Instr::I64Const(-7));
        b.emit(Instr::I64Store(Default::default()));
        b.emit(Instr::I32Const(32));
        b.emit(Instr::I64Load(Default::default()));
        b.finish_func();
        b.export_func("m", f);
        assert_eq!(run(b.build(), "m", &[]).unwrap(), Some((-7i64) as u64));
    }

    #[test]
    fn calls_work() {
        let mut b = ModuleBuilder::new();
        let sq = b.begin_func(FuncType::new(&[ValType::I32], &[ValType::I32]));
        b.emit(Instr::LocalGet(0));
        b.emit(Instr::LocalGet(0));
        b.emit(Instr::I32Mul);
        b.finish_func();
        let f = b.begin_func(FuncType::new(&[ValType::I32], &[ValType::I32]));
        b.emit(Instr::LocalGet(0));
        b.emit(Instr::Call(sq));
        b.emit(Instr::I32Const(1));
        b.emit(Instr::I32Add);
        b.finish_func();
        b.export_func("sq1", f);
        assert_eq!(run(b.build(), "sq1", &[6]).unwrap(), Some(37));
    }

    #[test]
    fn provably_safe_accesses_skip_the_modeled_check() {
        use crate::profiler::CountingProfiler;
        let mut b = ModuleBuilder::new();
        b.memory(1, None);
        let f = b.begin_func(FuncType::new(&[], &[ValType::I64]));
        b.emit(Instr::I32Const(32));
        b.emit(Instr::I64Const(-7));
        b.emit(Instr::I64Store(Default::default()));
        b.emit(Instr::I32Const(32));
        b.emit(Instr::I64Load(Default::default()));
        b.finish_func();
        b.export_func("m", f);
        let m = b.build();
        wasm_core::validate::validate(&m).unwrap();
        let code = ThreadedCode::load(Rc::new(m)).unwrap();
        let mut rt = Runtime::instantiate(&code.module, &Imports::new(), Box::new(())).unwrap();
        let idx = code.module.exported_func("m").unwrap();
        let mut p = CountingProfiler::default();
        assert_eq!(code.invoke(&mut rt, idx, &[], &mut p).unwrap(), Some(-7i64 as u64));
        // Constant-address store + load, both within the 64 KiB minimum.
        assert_eq!(p.checks_skipped, 2);
    }

    #[test]
    fn traps_propagate() {
        let mut b = ModuleBuilder::new();
        let f = b.begin_func(FuncType::new(&[], &[]));
        b.emit(Instr::Unreachable);
        b.finish_func();
        b.export_func("u", f);
        assert_eq!(run(b.build(), "u", &[]), Err(Trap::Unreachable));
    }
}
