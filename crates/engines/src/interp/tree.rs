//! The WAMR-style classic interpreter.
//!
//! Executes the decoded instruction stream *in place*: no pre-translation
//! beyond the per-function [`ControlMap`]. Every step fetches the decoded
//! instruction (a data access — the bytecode lives in the heap, not the
//! I-cache), dispatches through an indirect branch, and manipulates an
//! explicit operand stack. This is the cheapest engine to load and the
//! slowest to run, matching WAMR's profile in the paper.

use std::rc::Rc;

use crate::error::Trap;
use crate::interp::Label;
use crate::numeric;
use crate::profiler::{BranchKind, Profiler, BYTECODE_BASE, CODE_BASE, HEAP_BASE, STACK_BASE};
use crate::store::Runtime;
use wasm_core::control::ControlMap;
use wasm_core::instr::{BlockType, Instr};
use wasm_core::module::Module;

/// Bytes of bytecode one decoded instruction occupies in the profiled
/// address space (size of the in-memory `Instr`).
const INSTR_BYTES: u64 = 16;

/// Loaded (but untranslated) code for the tree interpreter.
#[derive(Debug)]
pub struct TreeCode {
    /// The decoded module.
    pub module: Rc<Module>,
    maps: Vec<ControlMap>,
    /// Profiled bytecode base address of each module-defined function.
    func_base: Vec<u64>,
    /// Per-function, per-instruction marks for safety checks the range
    /// analysis proved redundant at load time. Marked sites keep the
    /// host-side check (defense in depth) but skip its modeled cost.
    safe: Vec<Vec<bool>>,
    num_imported: u32,
}

impl TreeCode {
    /// Prepares a validated module for tree interpretation.
    ///
    /// # Errors
    ///
    /// Returns a trap-like validation failure only if control structure is
    /// malformed, which validation has already excluded.
    pub fn load(module: Rc<Module>) -> Result<TreeCode, wasm_core::ValidateError> {
        let mut maps = Vec::with_capacity(module.funcs.len());
        let mut func_base = Vec::with_capacity(module.funcs.len());
        let mut safe = Vec::with_capacity(module.funcs.len());
        let mut cursor = BYTECODE_BASE;
        let num_imported = module.num_imported_funcs() as u32;
        for (i, f) in module.funcs.iter().enumerate() {
            maps.push(
                ControlMap::build(&f.body)
                    .map_err(|e| e.with_func(num_imported + i as u32))?,
            );
            safe.push(crate::jit::verify::safe_wasm_sites(&module, f));
            func_base.push(cursor);
            cursor += f.body.len() as u64 * INSTR_BYTES;
        }
        Ok(TreeCode {
            module,
            maps,
            func_base,
            safe,
            num_imported,
        })
    }

    /// Approximate bytes of engine-owned storage for this code (decoded
    /// instructions plus control maps), for memory accounting.
    pub fn code_bytes(&self) -> usize {
        let instrs: usize = self.module.funcs.iter().map(|f| f.body.len()).sum();
        let maps: usize = self.maps.iter().map(|m| m.end_of.len() * 8).sum();
        instrs * INSTR_BYTES as usize + maps
    }

    /// Invokes function `func_idx` with raw argument slots.
    ///
    /// # Errors
    ///
    /// Returns any trap raised during execution.
    pub fn invoke<P: Profiler>(
        &self,
        rt: &mut Runtime,
        func_idx: u32,
        args: &[u64],
        p: &mut P,
    ) -> Result<Option<u64>, Trap> {
        self.call(rt, func_idx, args, 0, p)
    }

    fn call<P: Profiler>(
        &self,
        rt: &mut Runtime,
        func_idx: u32,
        args: &[u64],
        depth: usize,
        p: &mut P,
    ) -> Result<Option<u64>, Trap> {
        if depth >= rt.call_depth_limit {
            return Err(Trap::StackOverflow);
        }
        if func_idx < self.num_imported {
            return rt.call_host(func_idx, args).map(Some);
        }
        let local_idx = (func_idx - self.num_imported) as usize;
        let func = &self.module.funcs[local_idx];
        let map = &self.maps[local_idx];
        let safe = &self.safe[local_idx];
        let base = self.func_base[local_idx];
        let ty = &self.module.types[func.type_idx as usize];
        let result_arity = ty.results.len() as u8;

        let mut locals: Vec<u64> = Vec::with_capacity(args.len() + func.locals.len());
        locals.extend_from_slice(args);
        locals.resize(args.len() + func.locals.len(), 0u64);

        let mut stack: Vec<u64> = Vec::with_capacity(16);
        let mut labels: Vec<Label> = Vec::with_capacity(8);
        labels.push(Label {
            end_pc: (func.body.len() - 1) as u32,
            start_pc: 0,
            height: 0,
            arity: result_arity,
            is_loop: false,
        });

        let body = &func.body;
        let mut pc: usize = 0;

        macro_rules! pop {
            () => {{
                p.read(STACK_BASE + stack.len() as u64 * 8, 8);
                stack.pop().expect("validated stack")
            }};
        }
        macro_rules! push {
            ($v:expr) => {{
                let v = $v;
                stack.push(v);
                p.write(STACK_BASE + stack.len() as u64 * 8, 8);
            }};
        }

        loop {
            let instr = &body[pc];
            let site = base + pc as u64 * INSTR_BYTES;
            // Interpreter personality: fetch the handler (I-side), read the
            // bytecode word (D-side), and take the dispatch indirect branch.
            p.fetch(CODE_BASE, 24);
            p.read(site, INSTR_BYTES as u32);
            let handler = CODE_BASE + 0x100 + dispatch_slot(instr) * 0x40;
            p.branch(CODE_BASE + 0x20, BranchKind::Indirect, true, handler);
            p.uops(9); // operand decode + bounds checks + dispatch sequence

            use Instr::*;
            match *instr {
                Nop => {}
                Unreachable => return Err(Trap::Unreachable),
                Block(bt) => {
                    labels.push(Label {
                        end_pc: map.end(pc) as u32,
                        start_pc: pc as u32 + 1,
                        height: stack.len() as u32,
                        arity: bt.arity() as u8,
                        is_loop: false,
                    });
                    p.uops(2);
                }
                Loop(_) => {
                    labels.push(Label {
                        end_pc: map.end(pc) as u32,
                        start_pc: pc as u32 + 1,
                        height: stack.len() as u32,
                        arity: 0,
                        is_loop: true,
                    });
                    p.uops(2);
                }
                If(bt) => {
                    let cond = pop!();
                    let end_pc = map.end(pc) as u32;
                    labels.push(Label {
                        end_pc,
                        start_pc: pc as u32 + 1,
                        height: stack.len() as u32,
                        arity: bt.arity() as u8,
                        is_loop: false,
                    });
                    let taken = cond as u32 == 0;
                    let target = match map.else_branch(pc) {
                        Some(e) => e + 1,
                        None => end_pc as usize, // jump to End; label popped there
                    };
                    p.branch(site, BranchKind::Cond, taken, base + target as u64 * INSTR_BYTES);
                    p.uops(2);
                    if taken {
                        pc = target;
                        continue;
                    }
                }
                Else => {
                    // Falling into an else means the then-arm finished:
                    // jump to the matching End (and pop there).
                    let target = map.end(pc);
                    p.branch(site, BranchKind::Uncond, true, base + target as u64 * INSTR_BYTES);
                    pc = target;
                    continue;
                }
                End => {
                    let label = labels.pop().expect("validated labels");
                    debug_assert!(stack.len() >= label.height as usize);
                    if labels.is_empty() {
                        rt.peak_value_stack = rt.peak_value_stack.max(stack.len() + locals.len());
                        p.branch(site, BranchKind::Ret, true, CODE_BASE);
                        return Ok(if result_arity == 1 { stack.pop() } else { None });
                    }
                }
                Br(d) => {
                    pc = self.do_branch(&mut stack, &mut labels, d, p)?;
                    p.branch(
                        site,
                        BranchKind::Uncond,
                        true,
                        if pc == usize::MAX { CODE_BASE } else { base + pc as u64 * INSTR_BYTES },
                    );
                    if pc == usize::MAX {
                        rt.peak_value_stack = rt.peak_value_stack.max(stack.len() + locals.len());
                        return Ok(if result_arity == 1 { stack.pop() } else { None });
                    }
                    continue;
                }
                BrIf(d) => {
                    let cond = pop!();
                    let taken = cond as u32 != 0;
                    if taken {
                        let t = self.do_branch(&mut stack, &mut labels, d, p)?;
                        let target = if t == usize::MAX {
                            CODE_BASE
                        } else {
                            base + t as u64 * INSTR_BYTES
                        };
                        p.branch(site, BranchKind::Cond, true, target);
                        if t == usize::MAX {
                            rt.peak_value_stack =
                                rt.peak_value_stack.max(stack.len() + locals.len());
                            return Ok(if result_arity == 1 { stack.pop() } else { None });
                        }
                        pc = t;
                        continue;
                    } else {
                        p.branch(site, BranchKind::Cond, false, 0);
                    }
                }
                BrTable(pool) => {
                    let idx = pop!() as u32;
                    let table = &self.module.br_tables[pool as usize];
                    let d = *table
                        .targets
                        .get(idx as usize)
                        .unwrap_or(&table.default);
                    p.read(site + 8, 8); // jump-table lookup
                    let t = self.do_branch(&mut stack, &mut labels, d, p)?;
                    let target = if t == usize::MAX {
                        CODE_BASE
                    } else {
                        base + t as u64 * INSTR_BYTES
                    };
                    p.branch(site, BranchKind::Indirect, true, target);
                    if t == usize::MAX {
                        rt.peak_value_stack = rt.peak_value_stack.max(stack.len() + locals.len());
                        return Ok(if result_arity == 1 { stack.pop() } else { None });
                    }
                    pc = t;
                    continue;
                }
                Return => {
                    rt.peak_value_stack = rt.peak_value_stack.max(stack.len() + locals.len());
                    p.branch(site, BranchKind::Ret, true, CODE_BASE);
                    return Ok(if result_arity == 1 { stack.pop() } else { None });
                }
                Call(f) => {
                    let callee_ty = self
                        .module
                        .func_type(f)
                        .expect("validated call target");
                    let nargs = callee_ty.params.len();
                    let has_result = !callee_ty.results.is_empty();
                    let args_start = stack.len() - nargs;
                    let call_args: Vec<u64> = stack[args_start..].to_vec();
                    stack.truncate(args_start);
                    p.branch(site, BranchKind::Call, true, CODE_BASE + f as u64 * 0x80);
                    p.uops(6); // frame setup
                    let r = self.call(rt, f, &call_args, depth + 1, p)?;
                    if has_result {
                        push!(r.expect("typed result"));
                    }
                }
                CallIndirect(type_idx) => {
                    let elem = pop!() as u32;
                    let f = rt
                        .table
                        .get(elem as usize)
                        .copied()
                        .flatten()
                        .ok_or(Trap::UndefinedElement)?;
                    let want = &self.module.types[type_idx as usize];
                    let have = self.module.func_type(f).ok_or(Trap::UndefinedElement)?;
                    if want != have {
                        return Err(Trap::IndirectCallTypeMismatch);
                    }
                    let nargs = want.params.len();
                    let has_result = !want.results.is_empty();
                    let args_start = stack.len() - nargs;
                    let call_args: Vec<u64> = stack[args_start..].to_vec();
                    stack.truncate(args_start);
                    p.branch(site, BranchKind::IndirectCall, true, CODE_BASE + f as u64 * 0x80);
                    p.uops(10); // table lookup + signature check + frame
                    let r = self.call(rt, f, &call_args, depth + 1, p)?;
                    if has_result {
                        push!(r.expect("typed result"));
                    }
                }
                Drop => {
                    pop!();
                }
                Select => {
                    let c = pop!();
                    let b = pop!();
                    let a = pop!();
                    push!(if c as u32 != 0 { a } else { b });
                    p.uops(1);
                }
                LocalGet(i) => {
                    p.read(STACK_BASE + i as u64 * 8, 8);
                    push!(locals[i as usize]);
                }
                LocalSet(i) => {
                    let v = pop!();
                    locals[i as usize] = v;
                    p.write(STACK_BASE + i as u64 * 8, 8);
                }
                LocalTee(i) => {
                    let v = *stack.last().expect("validated stack");
                    locals[i as usize] = v;
                    p.write(STACK_BASE + i as u64 * 8, 8);
                }
                GlobalGet(i) => {
                    p.read(crate::profiler::GLOBALS_BASE + i as u64 * 8, 8);
                    push!(rt.globals[i as usize]);
                }
                GlobalSet(i) => {
                    let v = pop!();
                    rt.globals[i as usize] = v;
                    p.write(crate::profiler::GLOBALS_BASE + i as u64 * 8, 8);
                }
                MemorySize => {
                    let mem = rt.memory.as_ref().expect("validated memory");
                    push!(mem.size_pages() as u64);
                }
                MemoryGrow => {
                    let delta = pop!() as u32;
                    let mem = rt.memory.as_mut().expect("validated memory");
                    push!(mem.grow(delta) as u32 as u64);
                    p.uops(20);
                }
                I32Const(v) => push!(v as u32 as u64),
                I64Const(v) => push!(v as u64),
                F32Const(bits) => push!(bits as u64),
                F64Const(bits) => push!(bits),
                ref op => {
                    if let Some((_, m)) = wasm_core::opcode::mem_opcode(op) {
                        // Memory access instructions.
                        let (val, is_store) = if is_store_op(op) {
                            (Some(pop!()), true)
                        } else {
                            (None, false)
                        };
                        let addr = pop!() as u32;
                        let mem = rt.memory.as_mut().expect("validated memory");
                        let ea = HEAP_BASE + addr as u64 + m.offset as u64;
                        // Address computation + access, plus the bounds
                        // check unless load-time analysis proved it
                        // redundant.
                        if is_store {
                            let v = val.expect("store value");
                            store_op(mem, op, addr, m.offset, v)?;
                            p.write(ea, store_width(op));
                        } else {
                            let loaded = load_op(mem, op, addr, m.offset)?;
                            p.read(ea, load_width(op));
                            push!(loaded);
                        }
                        if safe[pc] {
                            p.uops(1);
                            p.check_skipped();
                        } else {
                            p.uops(2);
                        }
                    } else if numeric::is_binary(*op) {
                        let b = pop!();
                        let a = pop!();
                        push!(numeric::apply_binary(*op, a, b)?);
                        let c = numeric_cost(op);
                        if safe[pc] {
                            p.uops((c - 1).max(1));
                            p.check_skipped();
                        } else {
                            p.uops(c);
                        }
                    } else if numeric::is_unary(*op) {
                        let a = pop!();
                        push!(numeric::apply_unary(*op, a)?);
                        let c = numeric_cost(op);
                        if safe[pc] {
                            p.uops((c - 1).max(1));
                            p.check_skipped();
                        } else {
                            p.uops(c);
                        }
                    } else {
                        unreachable!("unhandled instruction {op:?}");
                    }
                }
            }
            pc += 1;
        }
    }

    /// Performs a branch of depth `d`. Returns the new pc, or `usize::MAX`
    /// to signal a function return.
    fn do_branch<P: Profiler>(
        &self,
        stack: &mut Vec<u64>,
        labels: &mut Vec<Label>,
        d: u32,
        p: &mut P,
    ) -> Result<usize, Trap> {
        let idx = labels.len() - 1 - d as usize;
        let label = labels[idx];
        // Carry the result values over the branch.
        let keep = label.arity as usize;
        let vals_start = stack.len() - keep;
        for k in 0..keep {
            stack[label.height as usize + k] = stack[vals_start + k];
        }
        stack.truncate(label.height as usize + keep);
        p.uops(3); // label walk + stack adjust

        if idx == 0 {
            return Ok(usize::MAX); // branch to function label = return
        }
        if label.is_loop {
            labels.truncate(idx + 1); // loop label survives
            Ok(label.start_pc as usize)
        } else {
            labels.truncate(idx);
            Ok(label.end_pc as usize + 1)
        }
    }
}

/// Stable per-opcode dispatch slot for modeling the indirect dispatch
/// branch target (one handler per opcode class).
fn dispatch_slot(i: &Instr) -> u64 {
    // A compact, stable discriminant: use the encoded opcode byte when one
    // exists, otherwise a small synthetic id.
    if let Some(b) = wasm_core::opcode::simple_to_byte(i) {
        return b as u64;
    }
    if let Some((b, _)) = wasm_core::opcode::mem_opcode(i) {
        return b as u64;
    }
    use Instr::*;
    match i {
        Block(_) => 0x02,
        Loop(_) => 0x03,
        If(_) => 0x04,
        Br(_) => 0x0C,
        BrIf(_) => 0x0D,
        BrTable(_) => 0x0E,
        Call(_) => 0x10,
        CallIndirect(_) => 0x11,
        LocalGet(_) => 0x20,
        LocalSet(_) => 0x21,
        LocalTee(_) => 0x22,
        GlobalGet(_) => 0x23,
        GlobalSet(_) => 0x24,
        MemorySize => 0x3F,
        MemoryGrow => 0x40,
        I32Const(_) => 0x41,
        I64Const(_) => 0x42,
        F32Const(_) => 0x43,
        F64Const(_) => 0x44,
        _ => 0xFF,
    }
}

/// Extra µops a numeric instruction costs beyond dispatch.
pub(crate) fn numeric_cost(op: &Instr) -> u64 {
    use wasm_core::instr::InstrClass;
    match op.class() {
        InstrClass::SlowArith => 20,
        InstrClass::FloatArith => 3,
        _ => 1,
    }
}

pub(crate) fn is_store_op(op: &Instr) -> bool {
    use Instr::*;
    matches!(
        op,
        I32Store(_)
            | I64Store(_)
            | F32Store(_)
            | F64Store(_)
            | I32Store8(_)
            | I32Store16(_)
            | I64Store8(_)
            | I64Store16(_)
            | I64Store32(_)
    )
}

/// Whether `op` is one of the load instructions `load_op` handles.
pub(crate) fn is_load_op(op: &Instr) -> bool {
    use Instr::*;
    matches!(
        op,
        I32Load(_)
            | I64Load(_)
            | F32Load(_)
            | F64Load(_)
            | I32Load8S(_)
            | I32Load8U(_)
            | I32Load16S(_)
            | I32Load16U(_)
            | I64Load8S(_)
            | I64Load8U(_)
            | I64Load16S(_)
            | I64Load16U(_)
            | I64Load32S(_)
            | I64Load32U(_)
    )
}

pub(crate) fn load_width(op: &Instr) -> u32 {
    use Instr::*;
    match op {
        I32Load8S(_) | I32Load8U(_) | I64Load8S(_) | I64Load8U(_) => 1,
        I32Load16S(_) | I32Load16U(_) | I64Load16S(_) | I64Load16U(_) => 2,
        I32Load(_) | F32Load(_) | I64Load32S(_) | I64Load32U(_) => 4,
        _ => 8,
    }
}

pub(crate) fn store_width(op: &Instr) -> u32 {
    use Instr::*;
    match op {
        I32Store8(_) | I64Store8(_) => 1,
        I32Store16(_) | I64Store16(_) => 2,
        I32Store(_) | F32Store(_) | I64Store32(_) => 4,
        _ => 8,
    }
}

/// Executes a load instruction against memory, returning the raw slot.
pub(crate) fn load_op(
    mem: &crate::memory::LinearMemory,
    op: &Instr,
    addr: u32,
    offset: u32,
) -> Result<u64, Trap> {
    use Instr::*;
    Ok(match op {
        I32Load(_) | F32Load(_) => u32::from_le_bytes(mem.read::<4>(addr, offset)?) as u64,
        I64Load(_) | F64Load(_) => u64::from_le_bytes(mem.read::<8>(addr, offset)?),
        I32Load8S(_) => mem.read::<1>(addr, offset)?[0] as i8 as i32 as u32 as u64,
        I32Load8U(_) => mem.read::<1>(addr, offset)?[0] as u64,
        I32Load16S(_) => {
            i16::from_le_bytes(mem.read::<2>(addr, offset)?) as i32 as u32 as u64
        }
        I32Load16U(_) => u16::from_le_bytes(mem.read::<2>(addr, offset)?) as u64,
        I64Load8S(_) => mem.read::<1>(addr, offset)?[0] as i8 as i64 as u64,
        I64Load8U(_) => mem.read::<1>(addr, offset)?[0] as u64,
        I64Load16S(_) => i16::from_le_bytes(mem.read::<2>(addr, offset)?) as i64 as u64,
        I64Load16U(_) => u16::from_le_bytes(mem.read::<2>(addr, offset)?) as u64,
        I64Load32S(_) => i32::from_le_bytes(mem.read::<4>(addr, offset)?) as i64 as u64,
        I64Load32U(_) => u32::from_le_bytes(mem.read::<4>(addr, offset)?) as u64,
        other => unreachable!("not a load: {other:?}"),
    })
}

/// Executes a store instruction against memory.
pub(crate) fn store_op(
    mem: &mut crate::memory::LinearMemory,
    op: &Instr,
    addr: u32,
    offset: u32,
    val: u64,
) -> Result<(), Trap> {
    use Instr::*;
    match op {
        I32Store(_) | F32Store(_) => mem.write(addr, offset, (val as u32).to_le_bytes()),
        I64Store(_) | F64Store(_) => mem.write(addr, offset, val.to_le_bytes()),
        I32Store8(_) | I64Store8(_) => mem.write(addr, offset, [val as u8]),
        I32Store16(_) | I64Store16(_) => mem.write(addr, offset, (val as u16).to_le_bytes()),
        I64Store32(_) => mem.write(addr, offset, (val as u32).to_le_bytes()),
        other => unreachable!("not a store: {other:?}"),
    }
}

// `BlockType` is referenced via pattern matches above; silence the otherwise
// unused import lint while keeping the signature explicit.
#[allow(unused)]
fn _uses(_b: BlockType) {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiler::NullProfiler;
    use crate::store::Imports;
    use wasm_core::builder::ModuleBuilder;
    use wasm_core::types::{FuncType, ValType};

    fn run(module: Module, name: &str, args: &[u64]) -> Result<Option<u64>, Trap> {
        wasm_core::validate::validate(&module).unwrap();
        let idx = module.exported_func(name).unwrap();
        let code = TreeCode::load(Rc::new(module)).unwrap();
        let mut rt = Runtime::instantiate(&code.module, &Imports::new(), Box::new(())).unwrap();
        code.invoke(&mut rt, idx, args, &mut NullProfiler)
    }

    use wasm_core::module::Module;

    #[test]
    fn add_function() {
        let mut b = ModuleBuilder::new();
        let f = b.begin_func(FuncType::new(&[ValType::I32, ValType::I32], &[ValType::I32]));
        b.emit(Instr::LocalGet(0));
        b.emit(Instr::LocalGet(1));
        b.emit(Instr::I32Add);
        b.finish_func();
        b.export_func("add", f);
        assert_eq!(run(b.build(), "add", &[2, 40]).unwrap(), Some(42));
    }

    #[test]
    fn loop_sums_to_n() {
        // sum = 0; i = 0; loop { i += 1; sum += i; br_if (i < n) } -> sum
        let mut b = ModuleBuilder::new();
        let f = b.begin_func(FuncType::new(&[ValType::I32], &[ValType::I32]));
        let sum = b.new_local(ValType::I32);
        let i = b.new_local(ValType::I32);
        b.emit(Instr::Loop(BlockType::Empty));
        b.emit(Instr::LocalGet(i));
        b.emit(Instr::I32Const(1));
        b.emit(Instr::I32Add);
        b.emit(Instr::LocalSet(i));
        b.emit(Instr::LocalGet(sum));
        b.emit(Instr::LocalGet(i));
        b.emit(Instr::I32Add);
        b.emit(Instr::LocalSet(sum));
        b.emit(Instr::LocalGet(i));
        b.emit(Instr::LocalGet(0));
        b.emit(Instr::I32LtS);
        b.emit(Instr::BrIf(0));
        b.emit(Instr::End);
        b.emit(Instr::LocalGet(sum));
        b.finish_func();
        b.export_func("sum", f);
        assert_eq!(run(b.build(), "sum", &[10]).unwrap(), Some(55));
    }

    #[test]
    fn division_by_zero_traps() {
        let mut b = ModuleBuilder::new();
        let f = b.begin_func(FuncType::new(&[], &[ValType::I32]));
        b.emit(Instr::I32Const(1));
        b.emit(Instr::I32Const(0));
        b.emit(Instr::I32DivS);
        b.finish_func();
        b.export_func("boom", f);
        assert_eq!(run(b.build(), "boom", &[]), Err(Trap::DivisionByZero));
    }

    #[test]
    fn memory_store_load() {
        let mut b = ModuleBuilder::new();
        b.memory(1, None);
        let f = b.begin_func(FuncType::new(&[], &[ValType::I32]));
        b.emit(Instr::I32Const(16));
        b.emit(Instr::I32Const(-99));
        b.emit(Instr::I32Store(Default::default()));
        b.emit(Instr::I32Const(16));
        b.emit(Instr::I32Load(Default::default()));
        b.finish_func();
        b.export_func("mem", f);
        assert_eq!(run(b.build(), "mem", &[]).unwrap(), Some((-99i32) as u32 as u64));
    }

    #[test]
    fn if_else_selects_arm() {
        let mut b = ModuleBuilder::new();
        let f = b.begin_func(FuncType::new(&[ValType::I32], &[ValType::I32]));
        b.emit(Instr::LocalGet(0));
        b.emit(Instr::If(BlockType::Value(ValType::I32)));
        b.emit(Instr::I32Const(10));
        b.emit(Instr::Else);
        b.emit(Instr::I32Const(20));
        b.emit(Instr::End);
        b.finish_func();
        b.export_func("pick", f);
        let m = b.build();
        assert_eq!(run(m.clone(), "pick", &[1]).unwrap(), Some(10));
        assert_eq!(run(m, "pick", &[0]).unwrap(), Some(20));
    }

    #[test]
    fn recursive_call_and_overflow() {
        // f(n) = n == 0 ? 0 : f(n-1) + 1, plus infinite recursion traps.
        let mut b = ModuleBuilder::new();
        let f = b.begin_func(FuncType::new(&[ValType::I32], &[ValType::I32]));
        b.emit(Instr::LocalGet(0));
        b.emit(Instr::I32Eqz);
        b.emit(Instr::If(BlockType::Value(ValType::I32)));
        b.emit(Instr::I32Const(0));
        b.emit(Instr::Else);
        b.emit(Instr::LocalGet(0));
        b.emit(Instr::I32Const(1));
        b.emit(Instr::I32Sub);
        b.emit(Instr::Call(0));
        b.emit(Instr::I32Const(1));
        b.emit(Instr::I32Add);
        b.emit(Instr::End);
        b.finish_func();
        b.export_func("depth", f);
        let m = b.build();
        assert_eq!(run(m.clone(), "depth", &[100]).unwrap(), Some(100));
        // Use a small engine limit so the overflow trap fires well before
        // the host stack is at risk in debug builds.
        wasm_core::validate::validate(&m).unwrap();
        let idx = m.exported_func("depth").unwrap();
        let code = TreeCode::load(Rc::new(m)).unwrap();
        let mut rt = Runtime::instantiate(&code.module, &Imports::new(), Box::new(())).unwrap();
        rt.call_depth_limit = 64;
        assert_eq!(
            code.invoke(&mut rt, idx, &[1 << 20], &mut NullProfiler),
            Err(Trap::StackOverflow)
        );
    }

    #[test]
    fn br_table_dispatches() {
        // switch(x): case 0 -> 100, case 1 -> 200, default -> 300
        let mut b = ModuleBuilder::new();
        let f = b.begin_func(FuncType::new(&[ValType::I32], &[ValType::I32]));
        let out = b.new_local(ValType::I32);
        b.emit(Instr::Block(BlockType::Empty)); // depth 2 (outer)
        b.emit(Instr::Block(BlockType::Empty)); // depth 1
        b.emit(Instr::Block(BlockType::Empty)); // depth 0
        b.emit(Instr::LocalGet(0));
        b.emit_br_table(vec![0, 1], 2);
        b.emit(Instr::End);
        b.emit(Instr::I32Const(100));
        b.emit(Instr::LocalSet(out));
        b.emit(Instr::Br(1));
        b.emit(Instr::End);
        b.emit(Instr::I32Const(200));
        b.emit(Instr::LocalSet(out));
        b.emit(Instr::Br(0));
        b.emit(Instr::End);
        b.emit(Instr::LocalGet(out));
        b.emit(Instr::I32Eqz);
        b.emit(Instr::If(BlockType::Empty));
        b.emit(Instr::I32Const(300));
        b.emit(Instr::LocalSet(out));
        b.emit(Instr::End);
        b.emit(Instr::LocalGet(out));
        b.finish_func();
        b.export_func("switch", f);
        let m = b.build();
        assert_eq!(run(m.clone(), "switch", &[0]).unwrap(), Some(100));
        assert_eq!(run(m.clone(), "switch", &[1]).unwrap(), Some(200));
        assert_eq!(run(m, "switch", &[9]).unwrap(), Some(300));
    }

    #[test]
    fn profiler_sees_dispatch_events() {
        use crate::profiler::CountingProfiler;
        let mut b = ModuleBuilder::new();
        let f = b.begin_func(FuncType::new(&[], &[ValType::I32]));
        b.emit(Instr::I32Const(5));
        b.emit(Instr::I32Const(6));
        b.emit(Instr::I32Mul);
        b.finish_func();
        b.export_func("m", f);
        let m = b.build();
        wasm_core::validate::validate(&m).unwrap();
        let idx = m.exported_func("m").unwrap();
        let code = TreeCode::load(Rc::new(m)).unwrap();
        let mut rt = Runtime::instantiate(&code.module, &Imports::new(), Box::new(())).unwrap();
        let mut p = CountingProfiler::default();
        assert_eq!(code.invoke(&mut rt, idx, &[], &mut p).unwrap(), Some(30));
        // 4 instructions (2 consts, mul, end): one indirect dispatch each.
        assert_eq!(p.indirect_branches, 4);
        assert!(p.uops >= 16);
        assert!(p.reads >= 4); // bytecode reads
    }

    #[test]
    fn provably_safe_accesses_skip_the_modeled_check() {
        use crate::profiler::CountingProfiler;
        let mut b = ModuleBuilder::new();
        b.memory(1, None);
        let f = b.begin_func(FuncType::new(&[], &[ValType::I64]));
        b.emit(Instr::I32Const(64));
        b.emit(Instr::I64Const(-3));
        b.emit(Instr::I64Store(Default::default()));
        b.emit(Instr::I32Const(64));
        b.emit(Instr::I64Load(Default::default()));
        b.finish_func();
        b.export_func("m", f);
        let m = b.build();
        wasm_core::validate::validate(&m).unwrap();
        let idx = m.exported_func("m").unwrap();
        let code = TreeCode::load(Rc::new(m)).unwrap();
        let mut rt = Runtime::instantiate(&code.module, &Imports::new(), Box::new(())).unwrap();
        let mut p = CountingProfiler::default();
        assert_eq!(code.invoke(&mut rt, idx, &[], &mut p).unwrap(), Some(-3i64 as u64));
        // Both constant-address accesses are provably within the 64 KiB
        // minimum memory, so both modeled bounds checks are skipped.
        assert_eq!(p.checks_skipped, 2);
    }

    #[test]
    fn unprovable_accesses_keep_the_modeled_check() {
        use crate::profiler::CountingProfiler;
        let mut b = ModuleBuilder::new();
        b.memory(1, None);
        let f = b.begin_func(FuncType::new(&[ValType::I32], &[ValType::I64]));
        b.emit(Instr::LocalGet(0));
        b.emit(Instr::I64Load(Default::default()));
        b.finish_func();
        b.export_func("m", f);
        let m = b.build();
        wasm_core::validate::validate(&m).unwrap();
        let idx = m.exported_func("m").unwrap();
        let code = TreeCode::load(Rc::new(m)).unwrap();
        let mut rt = Runtime::instantiate(&code.module, &Imports::new(), Box::new(())).unwrap();
        let mut p = CountingProfiler::default();
        // Unbounded parameter address: no proof, no skip.
        assert_eq!(code.invoke(&mut rt, idx, &[16], &mut p).unwrap(), Some(0));
        assert_eq!(p.checks_skipped, 0);
    }
}
