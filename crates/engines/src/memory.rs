//! Linear memory with bounds checking and peak-usage accounting.

use crate::error::Trap;
use wasm_core::types::{Limits, PAGE_SIZE};

/// Hard cap on memory growth (64K pages = 4 GiB) used when a module
/// declares no maximum.
const ABSOLUTE_MAX_PAGES: u32 = 65536;

/// A WebAssembly linear memory.
///
/// All accesses are bounds-checked and return [`Trap::MemoryOutOfBounds`]
/// on violation. The memory tracks its peak committed size for the
/// MRSS-style accounting used in the memory-overhead experiments.
#[derive(Debug, Clone)]
pub struct LinearMemory {
    bytes: Vec<u8>,
    limits: Limits,
    peak_bytes: usize,
}

impl LinearMemory {
    /// Creates a memory with the given limits, zero-initialized.
    pub fn new(limits: Limits) -> Self {
        let size = limits.min as usize * PAGE_SIZE as usize;
        LinearMemory {
            bytes: vec![0; size],
            limits,
            peak_bytes: size,
        }
    }

    /// Current size in pages.
    pub fn size_pages(&self) -> u32 {
        (self.bytes.len() / PAGE_SIZE as usize) as u32
    }

    /// Current size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.bytes.len()
    }

    /// Peak committed size in bytes over the memory's lifetime.
    pub fn peak_bytes(&self) -> usize {
        self.peak_bytes
    }

    /// Resident-set estimate: bytes up to the last touched (non-zero)
    /// page. Wasm runtimes reserve large address ranges but the OS only
    /// commits pages actually written, which is what MRSS measures.
    pub fn resident_bytes(&self) -> usize {
        let page = PAGE_SIZE as usize;
        let mut end = self.bytes.len();
        while end > 0 {
            let start = end - page.min(end);
            if self.bytes[start..end].iter().any(|b| *b != 0) {
                return end;
            }
            end = start;
        }
        0
    }

    /// Grows the memory by `delta` pages, returning the old page count, or
    /// `-1` if growth is not possible (mirrors `memory.grow` semantics).
    pub fn grow(&mut self, delta: u32) -> i32 {
        let old = self.size_pages();
        let Some(new) = old.checked_add(delta) else {
            return -1;
        };
        let max = self.limits.max.unwrap_or(ABSOLUTE_MAX_PAGES);
        if new > max || new > ABSOLUTE_MAX_PAGES {
            return -1;
        }
        self.bytes.resize(new as usize * PAGE_SIZE as usize, 0);
        self.peak_bytes = self.peak_bytes.max(self.bytes.len());
        old as i32
    }

    #[inline]
    fn check(&self, addr: u32, offset: u32, len: u32) -> Result<usize, Trap> {
        let ea = addr as u64 + offset as u64;
        if ea + len as u64 > self.bytes.len() as u64 {
            return Err(Trap::MemoryOutOfBounds);
        }
        Ok(ea as usize)
    }

    /// Reads `N` bytes at `addr + offset`.
    ///
    /// # Errors
    ///
    /// Traps if the access is out of bounds.
    #[inline]
    pub fn read<const N: usize>(&self, addr: u32, offset: u32) -> Result<[u8; N], Trap> {
        let ea = self.check(addr, offset, N as u32)?;
        let mut out = [0u8; N];
        out.copy_from_slice(&self.bytes[ea..ea + N]);
        Ok(out)
    }

    /// Writes `N` bytes at `addr + offset`.
    ///
    /// # Errors
    ///
    /// Traps if the access is out of bounds.
    #[inline]
    pub fn write<const N: usize>(&mut self, addr: u32, offset: u32, data: [u8; N]) -> Result<(), Trap> {
        let ea = self.check(addr, offset, N as u32)?;
        self.bytes[ea..ea + N].copy_from_slice(&data);
        Ok(())
    }

    /// Borrows a byte range.
    ///
    /// # Errors
    ///
    /// Traps if the range is out of bounds.
    pub fn slice(&self, addr: u32, len: u32) -> Result<&[u8], Trap> {
        let ea = self.check(addr, 0, len)?;
        Ok(&self.bytes[ea..ea + len as usize])
    }

    /// Mutably borrows a byte range.
    ///
    /// # Errors
    ///
    /// Traps if the range is out of bounds.
    pub fn slice_mut(&mut self, addr: u32, len: u32) -> Result<&mut [u8], Trap> {
        let ea = self.check(addr, 0, len)?;
        Ok(&mut self.bytes[ea..ea + len as usize])
    }

    /// Copies `data` into memory at `addr` (used for data segments and WASI).
    ///
    /// # Errors
    ///
    /// Traps if the range is out of bounds.
    pub fn write_slice(&mut self, addr: u32, data: &[u8]) -> Result<(), Trap> {
        self.slice_mut(addr, data.len() as u32)?.copy_from_slice(data);
        Ok(())
    }

    // Typed accessors used by every engine.

    /// Loads an `i32`.
    ///
    /// # Errors
    ///
    /// Traps on out-of-bounds access.
    #[inline]
    pub fn load_i32(&self, addr: u32, offset: u32) -> Result<i32, Trap> {
        Ok(i32::from_le_bytes(self.read::<4>(addr, offset)?))
    }

    /// Loads an `i64`.
    ///
    /// # Errors
    ///
    /// Traps on out-of-bounds access.
    #[inline]
    pub fn load_i64(&self, addr: u32, offset: u32) -> Result<i64, Trap> {
        Ok(i64::from_le_bytes(self.read::<8>(addr, offset)?))
    }

    /// Stores an `i32`.
    ///
    /// # Errors
    ///
    /// Traps on out-of-bounds access.
    #[inline]
    pub fn store_i32(&mut self, addr: u32, offset: u32, v: i32) -> Result<(), Trap> {
        self.write(addr, offset, v.to_le_bytes())
    }

    /// Stores an `i64`.
    ///
    /// # Errors
    ///
    /// Traps on out-of-bounds access.
    #[inline]
    pub fn store_i64(&mut self, addr: u32, offset: u32, v: i64) -> Result<(), Trap> {
        self.write(addr, offset, v.to_le_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_initialized() {
        let m = LinearMemory::new(Limits::at_least(1));
        assert_eq!(m.size_pages(), 1);
        assert_eq!(m.load_i32(0, 0).unwrap(), 0);
        assert_eq!(m.load_i64(65528, 0).unwrap(), 0);
    }

    #[test]
    fn bounds_checked() {
        let mut m = LinearMemory::new(Limits::at_least(1));
        assert_eq!(m.load_i32(65533, 0), Err(Trap::MemoryOutOfBounds));
        assert_eq!(m.load_i32(65532, 4), Err(Trap::MemoryOutOfBounds));
        assert_eq!(m.store_i64(u32::MAX, u32::MAX, 0), Err(Trap::MemoryOutOfBounds));
        // Offset + addr can exceed u32 without wrapping.
        assert_eq!(m.load_i32(u32::MAX, 1), Err(Trap::MemoryOutOfBounds));
    }

    #[test]
    fn store_then_load() {
        let mut m = LinearMemory::new(Limits::at_least(1));
        m.store_i32(100, 4, -12345).unwrap();
        assert_eq!(m.load_i32(104, 0).unwrap(), -12345);
        m.store_i64(200, 0, i64::MIN).unwrap();
        assert_eq!(m.load_i64(200, 0).unwrap(), i64::MIN);
    }

    #[test]
    fn grow_respects_max() {
        let mut m = LinearMemory::new(Limits::bounded(1, 3));
        assert_eq!(m.grow(1), 1);
        assert_eq!(m.size_pages(), 2);
        assert_eq!(m.grow(2), -1);
        assert_eq!(m.grow(1), 2);
        assert_eq!(m.grow(1), -1);
        assert_eq!(m.peak_bytes(), 3 * PAGE_SIZE as usize);
    }

    #[test]
    fn grow_zero_is_size_query() {
        let mut m = LinearMemory::new(Limits::at_least(2));
        assert_eq!(m.grow(0), 2);
    }

    #[test]
    fn resident_tracks_touched_pages() {
        let mut m = LinearMemory::new(Limits::at_least(64));
        assert_eq!(m.resident_bytes(), 0);
        m.store_i32(5 * PAGE_SIZE, 0, 7).unwrap();
        assert_eq!(m.resident_bytes(), 6 * PAGE_SIZE as usize);
        assert_eq!(m.peak_bytes(), 64 * PAGE_SIZE as usize);
    }

    #[test]
    fn slice_round_trip() {
        let mut m = LinearMemory::new(Limits::at_least(1));
        m.write_slice(10, b"hello").unwrap();
        assert_eq!(m.slice(10, 5).unwrap(), b"hello");
        assert!(m.slice(65535, 2).is_err());
    }
}
