//! The unified engine facade: five named engines, one API.
//!
//! ```
//! use engines::{Engine, EngineKind, Imports};
//! use wasm_core::builder::ModuleBuilder;
//! use wasm_core::types::{FuncType, ValType, Value};
//! use wasm_core::instr::Instr;
//!
//! let mut b = ModuleBuilder::new();
//! let f = b.begin_func(FuncType::new(&[ValType::I32], &[ValType::I32]));
//! b.emit(Instr::LocalGet(0));
//! b.emit(Instr::I32Const(1));
//! b.emit(Instr::I32Add);
//! b.finish_func();
//! b.export_func("incr", f);
//! let bytes = wasm_core::encode::encode(&b.build());
//!
//! for kind in EngineKind::all() {
//!     let engine = Engine::new(kind);
//!     let compiled = engine.compile(&bytes)?;
//!     let mut instance = compiled.instantiate(&Imports::new(), Box::new(()))?;
//!     let out = instance.invoke("incr", &[Value::I32(41)])?;
//!     assert_eq!(out, Some(Value::I32(42)));
//! }
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::any::Any;
use std::rc::Rc;

use crate::account::MemoryReport;
use crate::error::{EngineError, Trap};
use crate::interp::threaded::ThreadedCode;
use crate::interp::tree::TreeCode;
use crate::jit::exec::RegCode;
use crate::jit::{compile_module, replay_compile_cost, CompileStats, Tier};
use crate::memory::LinearMemory;
use crate::profiler::{NullProfiler, Profiler};
use crate::store::{Imports, Runtime};
use wasm_core::module::Module;
use wasm_core::types::Value;

/// A Wasmer-style pluggable compiler backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Backend {
    /// One-pass compilation, no optimization.
    Singlepass,
    /// The default balanced backend.
    Cranelift,
    /// The aggressive backend.
    Llvm,
}

impl Backend {
    /// All three backends.
    pub fn all() -> [Backend; 3] {
        [Backend::Singlepass, Backend::Cranelift, Backend::Llvm]
    }

    fn tier(self) -> Tier {
        match self {
            Backend::Singlepass => Tier::Singlepass,
            Backend::Cranelift => Tier::Cranelift,
            Backend::Llvm => Tier::Llvm,
        }
    }
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Backend::Singlepass => "singlepass",
            Backend::Cranelift => "cranelift",
            Backend::Llvm => "llvm",
        };
        f.write_str(s)
    }
}

/// One of the five studied standalone WebAssembly runtimes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EngineKind {
    /// Cranelift-based compiling runtime (Bytecode Alliance's flagship).
    Wasmtime,
    /// LLVM-based compiling runtime.
    Wavm,
    /// Pluggable-backend compiling runtime.
    Wasmer(Backend),
    /// Pre-translating direct-threaded interpreter.
    Wasm3,
    /// Classic in-place interpreter (WebAssembly Micro Runtime).
    Wamr,
}

impl EngineKind {
    /// The five engines in their default configurations (Wasmer uses its
    /// default Cranelift backend), in the paper's presentation order.
    pub fn all() -> [EngineKind; 5] {
        [
            EngineKind::Wasmtime,
            EngineKind::Wavm,
            EngineKind::Wasmer(Backend::Cranelift),
            EngineKind::Wasm3,
            EngineKind::Wamr,
        ]
    }

    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            EngineKind::Wasmtime => "Wasmtime",
            EngineKind::Wavm => "WAVM",
            EngineKind::Wasmer(Backend::Cranelift) => "Wasmer",
            EngineKind::Wasmer(Backend::Singlepass) => "Wasmer-SinglePass",
            EngineKind::Wasmer(Backend::Llvm) => "Wasmer-LLVM",
            EngineKind::Wasm3 => "Wasm3",
            EngineKind::Wamr => "WAMR",
        }
    }

    /// Whether this engine interprets rather than compiles.
    pub fn is_interpreter(self) -> bool {
        matches!(self, EngineKind::Wasm3 | EngineKind::Wamr)
    }

    /// The compiled tier used, when the engine compiles.
    pub fn tier(self) -> Option<Tier> {
        match self {
            EngineKind::Wasmtime => Some(Tier::Cranelift),
            EngineKind::Wavm => Some(Tier::Llvm),
            EngineKind::Wasmer(b) => Some(b.tier()),
            EngineKind::Wasm3 | EngineKind::Wamr => None,
        }
    }

    /// A stable one-byte code for wire formats and artifact-store keys.
    ///
    /// Codes are append-only: existing assignments never change, so
    /// on-disk artifacts and socket peers from older builds keep
    /// decoding.
    pub fn code(self) -> u8 {
        match self {
            EngineKind::Wasmtime => 0,
            EngineKind::Wavm => 1,
            EngineKind::Wasmer(Backend::Singlepass) => 2,
            EngineKind::Wasmer(Backend::Cranelift) => 3,
            EngineKind::Wasmer(Backend::Llvm) => 4,
            EngineKind::Wasm3 => 5,
            EngineKind::Wamr => 6,
        }
    }

    /// Decodes a [`code`](Self::code) byte.
    pub fn from_code(code: u8) -> Option<EngineKind> {
        Some(match code {
            0 => EngineKind::Wasmtime,
            1 => EngineKind::Wavm,
            2 => EngineKind::Wasmer(Backend::Singlepass),
            3 => EngineKind::Wasmer(Backend::Cranelift),
            4 => EngineKind::Wasmer(Backend::Llvm),
            5 => EngineKind::Wasm3,
            6 => EngineKind::Wamr,
            _ => return None,
        })
    }

    /// Parses a CLI spelling (`wasmtime`, `wavm`, `wasmer`,
    /// `wasmer-singlepass`, `wasmer-llvm`, `wasm3`, `wamr`).
    pub fn parse(s: &str) -> Option<EngineKind> {
        Some(match s.to_ascii_lowercase().as_str() {
            "wasmtime" => EngineKind::Wasmtime,
            "wavm" => EngineKind::Wavm,
            "wasmer" | "wasmer-cranelift" => EngineKind::Wasmer(Backend::Cranelift),
            "wasmer-singlepass" => EngineKind::Wasmer(Backend::Singlepass),
            "wasmer-llvm" => EngineKind::Wasmer(Backend::Llvm),
            "wasm3" => EngineKind::Wasm3,
            "wamr" => EngineKind::Wamr,
            _ => return None,
        })
    }

    /// Fixed process footprint of the modeled runtime, in bytes.
    ///
    /// Interpreters are tiny embeddable libraries; the compiling runtimes
    /// link a code generator (WAVM links LLVM, hence its size). These
    /// baselines are calibrated to the real runtimes' documented RSS and
    /// are the only non-measured component of [`MemoryReport`].
    pub fn fixed_footprint(self) -> usize {
        match self {
            EngineKind::Wasmtime => 8 << 20,
            EngineKind::Wavm => 14 << 20,
            EngineKind::Wasmer(Backend::Cranelift) => 9 << 20,
            EngineKind::Wasmer(Backend::Singlepass) => 7 << 20,
            EngineKind::Wasmer(Backend::Llvm) => 15 << 20,
            EngineKind::Wasm3 => 5 << 19, // ~2.5 MiB standalone process
            EngineKind::Wamr => 3 << 20,
        }
    }
}

impl std::fmt::Display for EngineKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A standalone WebAssembly runtime engine.
#[derive(Debug, Clone, Copy)]
pub struct Engine {
    kind: EngineKind,
}

#[derive(Debug)]
enum Code {
    Tree(TreeCode),
    Threaded(ThreadedCode),
    Reg(Box<RegCode>, CompileStats, Tier),
}

/// A module prepared for execution by a particular engine.
#[derive(Debug)]
pub struct CompiledModule {
    kind: EngineKind,
    code: Code,
    module: Rc<Module>,
    module_binary_len: usize,
}

/// An instantiated module, ready to invoke exports.
pub struct Instance<'m> {
    compiled: &'m CompiledModule,
    rt: Runtime,
}

impl Engine {
    /// Creates an engine of the given kind.
    pub fn new(kind: EngineKind) -> Engine {
        Engine { kind }
    }

    /// This engine's kind.
    pub fn kind(&self) -> EngineKind {
        self.kind
    }

    /// Decodes, validates, and prepares a binary module for execution
    /// (translation or tier compilation, depending on the engine).
    ///
    /// # Errors
    ///
    /// Returns decode or validation errors for malformed modules.
    pub fn compile(&self, bytes: &[u8]) -> Result<CompiledModule, EngineError> {
        let _span = obs::span!("engine.compile", engine = self.kind.name());
        crate::faultpoint::check(self.kind, bytes)?;
        let t0 = std::time::Instant::now();
        let module = {
            let _s = obs::span!("engine.decode");
            wasm_core::decode::decode(bytes)?
        };
        {
            let _s = obs::span!("engine.validate");
            wasm_core::validate::validate(&module)?;
        }
        let module = Rc::new(module);
        let code = match self.kind.tier() {
            None => {
                let _s = obs::span!("engine.translate");
                match self.kind {
                    EngineKind::Wamr => Code::Tree(TreeCode::load(module.clone())?),
                    EngineKind::Wasm3 => Code::Threaded(ThreadedCode::load(module.clone())?),
                    _ => unreachable!(),
                }
            }
            Some(tier) => {
                let (code, stats) = compile_module(module.clone(), tier)?;
                Code::Reg(Box::new(code), stats, tier)
            }
        };
        obs::metrics::histogram(&format!("engine.compile.{}", self.kind.name()))
            .observe_ns(t0.elapsed().as_nanos() as u64);
        Ok(CompiledModule {
            kind: self.kind,
            code,
            module,
            module_binary_len: bytes.len(),
        })
    }

    /// Like [`compile`](Self::compile), but also replays the
    /// microarchitectural cost of compilation/translation into `p`.
    ///
    /// # Errors
    ///
    /// Returns decode or validation errors for malformed modules.
    pub fn compile_profiled<P: Profiler>(
        &self,
        bytes: &[u8],
        p: &mut P,
    ) -> Result<CompiledModule, EngineError> {
        let mut span = obs::span!("engine.compile.profiled", engine = self.kind.name());
        // Sample only when the span will be recorded: the null-sink path
        // must not even read the profiler.
        let before = if span.active() { p.perf_counters() } else { None };
        let compiled = self.compile(bytes)?;
        match &compiled.code {
            Code::Reg(_, stats, _) => replay_compile_cost(stats, p),
            Code::Threaded(code) => {
                // Translation reads every decoded instruction once and
                // writes a threaded op.
                let stats = CompileStats {
                    lowered_ops: code.total_ops(),
                    final_ops: code.total_ops(),
                    ..CompileStats::default()
                };
                replay_compile_cost(&stats, p);
            }
            Code::Tree(_) => {
                // In-place interpretation: only the control-map scan.
                let stats = CompileStats {
                    lowered_ops: compiled.module.code_size() / 4,
                    final_ops: 0,
                    ..CompileStats::default()
                };
                replay_compile_cost(&stats, p);
            }
        }
        if let (Some(before), Some(after)) = (before, p.perf_counters()) {
            span.set_counters(after.delta_since(before));
        }
        Ok(compiled)
    }

    /// Produces an AOT artifact for later loading.
    ///
    /// # Errors
    ///
    /// Returns an error for malformed modules, or a
    /// [`EngineError::BadArtifact`] if this engine is an interpreter
    /// (interpretation-based runtimes have no AOT mode, as in the paper).
    pub fn precompile(&self, bytes: &[u8]) -> Result<Vec<u8>, EngineError> {
        let _span = obs::span!("engine.aot.precompile", engine = self.kind.name());
        let compiled = self.compile(bytes)?;
        match &compiled.code {
            Code::Reg(code, _, tier) => Ok(crate::jit::aot::to_bytes(code, *tier)),
            _ => Err(EngineError::BadArtifact(format!(
                "{} is an interpreter and has no AOT mode",
                self.kind
            ))),
        }
    }

    /// Loads an AOT artifact, skipping decode/validate/compile.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::BadArtifact`] if the artifact is malformed
    /// or was produced by a different tier than this engine uses.
    pub fn load_artifact(&self, artifact: &[u8]) -> Result<CompiledModule, EngineError> {
        let _span = obs::span!("engine.aot.load", engine = self.kind.name());
        let want = self.kind.tier().ok_or_else(|| {
            EngineError::BadArtifact(format!("{} has no AOT mode", self.kind))
        })?;
        let (code, tier) = crate::jit::aot::from_bytes(artifact)?;
        if tier != want {
            return Err(EngineError::BadArtifact(format!(
                "artifact was compiled by the {tier} tier, engine uses {want}"
            )));
        }
        let module = code.module.clone();
        Ok(CompiledModule {
            kind: self.kind,
            code: Code::Reg(Box::new(code), CompileStats::default(), tier),
            module,
            module_binary_len: artifact.len(),
        })
    }
}

impl CompiledModule {
    /// The engine kind that produced this code.
    pub fn kind(&self) -> EngineKind {
        self.kind
    }

    /// The decoded module.
    pub fn module(&self) -> &Module {
        &self.module
    }

    /// Compile statistics (zero for interpreters and loaded artifacts).
    pub fn compile_stats(&self) -> CompileStats {
        match &self.code {
            Code::Reg(_, stats, _) => *stats,
            _ => CompileStats::default(),
        }
    }

    /// Bytes of engine-owned code (bytecode / threaded ops / machine code).
    pub fn code_bytes(&self) -> usize {
        match &self.code {
            Code::Tree(c) => c.code_bytes(),
            Code::Threaded(c) => c.code_bytes(),
            Code::Reg(c, _, _) => c.code_bytes(),
        }
    }

    /// Instantiates the module, running its start function.
    ///
    /// # Errors
    ///
    /// Returns link errors for missing imports, or a trap raised by the
    /// start function.
    pub fn instantiate(
        &self,
        imports: &Imports,
        host_data: Box<dyn Any>,
    ) -> Result<Instance<'_>, EngineError> {
        let rt = Runtime::instantiate(&self.module, imports, host_data)?;
        let mut instance = Instance { compiled: self, rt };
        if let Some(start) = self.module.start {
            instance
                .invoke_idx(start, &[], &mut NullProfiler)
                .map_err(EngineError::Trap)?;
        }
        Ok(instance)
    }
}

impl std::fmt::Debug for Instance<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Instance")
            .field("engine", &self.compiled.kind.name())
            .field("runtime", &self.rt)
            .finish()
    }
}

impl<'m> Instance<'m> {
    /// Invokes an exported function by name.
    ///
    /// # Errors
    ///
    /// Traps raised by execution, or [`Trap::Host`] for an unknown export
    /// or argument type mismatch.
    pub fn invoke(&mut self, name: &str, args: &[Value]) -> Result<Option<Value>, Trap> {
        self.invoke_profiled(name, args, &mut NullProfiler)
    }

    /// Invokes an exported function with profiling hooks.
    ///
    /// # Errors
    ///
    /// Same as [`invoke`](Self::invoke).
    pub fn invoke_profiled<P: Profiler>(
        &mut self,
        name: &str,
        args: &[Value],
        p: &mut P,
    ) -> Result<Option<Value>, Trap> {
        let func_idx = self
            .compiled
            .module
            .exported_func(name)
            .ok_or_else(|| Trap::Host(format!("no exported function {name:?}")))?;
        let ty = self
            .compiled
            .module
            .func_type(func_idx)
            .ok_or_else(|| Trap::Host("export type missing".into()))?
            .clone();
        if ty.params.len() != args.len()
            || ty.params.iter().zip(args).any(|(t, v)| *t != v.ty())
        {
            return Err(Trap::Host(format!(
                "argument mismatch for {name:?}: expected {ty}"
            )));
        }
        let raw: Vec<u64> = args.iter().map(|v| v.to_bits()).collect();
        let mut span = obs::span!(
            "engine.execute",
            engine = self.compiled.kind.name(),
            func = name
        );
        let before = if span.active() { p.perf_counters() } else { None };
        let t0 = std::time::Instant::now();
        let out = self.invoke_idx(func_idx, &raw, p)?;
        obs::metrics::histogram(&format!("engine.execute.{}", self.compiled.kind.name()))
            .observe_ns(t0.elapsed().as_nanos() as u64);
        if let (Some(before), Some(after)) = (before, p.perf_counters()) {
            span.set_counters(after.delta_since(before));
        }
        Ok(match (out, ty.results.first()) {
            (Some(bits), Some(t)) => Some(Value::from_bits(*t, bits)),
            _ => None,
        })
    }

    fn invoke_idx<P: Profiler>(
        &mut self,
        func_idx: u32,
        args: &[u64],
        p: &mut P,
    ) -> Result<Option<u64>, Trap> {
        match &self.compiled.code {
            Code::Tree(c) => c.invoke(&mut self.rt, func_idx, args, p),
            Code::Threaded(c) => c.invoke(&mut self.rt, func_idx, args, p),
            Code::Reg(c, _, _) => c.invoke(&mut self.rt, func_idx, args, p),
        }
    }

    /// The instance's linear memory, if present.
    pub fn memory(&self) -> Option<&LinearMemory> {
        self.rt.memory.as_ref()
    }

    /// Mutable access to the instance's linear memory.
    pub fn memory_mut(&mut self) -> Option<&mut LinearMemory> {
        self.rt.memory.as_mut()
    }

    /// Host state installed at instantiation.
    pub fn host_data(&self) -> &dyn Any {
        &*self.rt.host_data
    }

    /// Mutable host state.
    pub fn host_data_mut(&mut self) -> &mut dyn Any {
        &mut *self.rt.host_data
    }

    /// Sets the maximum call depth before a [`Trap::StackOverflow`].
    pub fn set_call_depth_limit(&mut self, limit: usize) {
        self.rt.call_depth_limit = limit;
    }

    /// A breakdown of the memory this instance (and its engine) holds.
    pub fn memory_report(&self) -> MemoryReport {
        let module = &self.compiled.module;
        let decoded = module.code_size() * 16
            + module.types.len() * 32
            + module.data.iter().map(|d| d.bytes.len()).sum::<usize>();
        let (retained_ir, metadata) = match &self.compiled.code {
            Code::Reg(_, stats, _) => (stats.retained_ir_bytes, module.br_tables.len() * 64),
            Code::Tree(_) => (0, module.code_size() * 8),
            Code::Threaded(_) => (0, module.br_tables.len() * 64),
        };
        MemoryReport {
            runtime_fixed: self.compiled.kind.fixed_footprint(),
            module_binary: self.compiled.module_binary_len,
            decoded_module: decoded,
            code: self.compiled.code_bytes(),
            retained_ir,
            metadata,
            exec_stack_peak: self.rt.peak_value_stack * 8,
            linear_memory_peak: self.rt.peak_linear_memory(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wasm_core::builder::ModuleBuilder;
    use wasm_core::instr::Instr;
    use wasm_core::types::{FuncType, ValType};

    fn incr_module_bytes() -> Vec<u8> {
        let mut b = ModuleBuilder::new();
        b.memory(1, None);
        let f = b.begin_func(FuncType::new(&[ValType::I32], &[ValType::I32]));
        b.emit(Instr::LocalGet(0));
        b.emit(Instr::I32Const(1));
        b.emit(Instr::I32Add);
        b.finish_func();
        b.export_func("incr", f);
        wasm_core::encode::encode(&b.build())
    }

    #[test]
    fn all_five_engines_agree() {
        let bytes = incr_module_bytes();
        for kind in EngineKind::all() {
            let engine = Engine::new(kind);
            let compiled = engine.compile(&bytes).unwrap();
            let mut inst = compiled.instantiate(&Imports::new(), Box::new(())).unwrap();
            let out = inst.invoke("incr", &[Value::I32(41)]).unwrap();
            assert_eq!(out, Some(Value::I32(42)), "{kind}");
        }
    }

    #[test]
    fn wasmer_backends_agree() {
        let bytes = incr_module_bytes();
        for backend in Backend::all() {
            let engine = Engine::new(EngineKind::Wasmer(backend));
            let compiled = engine.compile(&bytes).unwrap();
            let mut inst = compiled.instantiate(&Imports::new(), Box::new(())).unwrap();
            assert_eq!(
                inst.invoke("incr", &[Value::I32(1)]).unwrap(),
                Some(Value::I32(2)),
                "{backend}"
            );
        }
    }

    #[test]
    fn argument_type_mismatch_is_reported() {
        let bytes = incr_module_bytes();
        let compiled = Engine::new(EngineKind::Wasmtime).compile(&bytes).unwrap();
        let mut inst = compiled.instantiate(&Imports::new(), Box::new(())).unwrap();
        assert!(matches!(
            inst.invoke("incr", &[Value::F64(1.0)]),
            Err(Trap::Host(_))
        ));
        assert!(matches!(inst.invoke("missing", &[]), Err(Trap::Host(_))));
    }

    #[test]
    fn aot_round_trip_skips_compile() {
        let bytes = incr_module_bytes();
        for kind in [
            EngineKind::Wasmtime,
            EngineKind::Wavm,
            EngineKind::Wasmer(Backend::Cranelift),
        ] {
            let engine = Engine::new(kind);
            let artifact = engine.precompile(&bytes).unwrap();
            let compiled = engine.load_artifact(&artifact).unwrap();
            assert_eq!(compiled.compile_stats().total_work(), 0);
            let mut inst = compiled.instantiate(&Imports::new(), Box::new(())).unwrap();
            assert_eq!(
                inst.invoke("incr", &[Value::I32(9)]).unwrap(),
                Some(Value::I32(10)),
                "{kind}"
            );
        }
    }

    #[test]
    fn interpreters_reject_aot() {
        let bytes = incr_module_bytes();
        assert!(Engine::new(EngineKind::Wasm3).precompile(&bytes).is_err());
        assert!(Engine::new(EngineKind::Wamr).precompile(&bytes).is_err());
    }

    #[test]
    fn artifact_tier_mismatch_rejected() {
        let bytes = incr_module_bytes();
        let artifact = Engine::new(EngineKind::Wavm).precompile(&bytes).unwrap();
        assert!(Engine::new(EngineKind::Wasmtime).load_artifact(&artifact).is_err());
    }

    #[test]
    fn memory_reports_rank_engines() {
        let bytes = incr_module_bytes();
        let mut totals = Vec::new();
        for kind in [EngineKind::Wavm, EngineKind::Wasm3] {
            let compiled = Engine::new(kind).compile(&bytes).unwrap();
            let mut inst = compiled.instantiate(&Imports::new(), Box::new(())).unwrap();
            inst.invoke("incr", &[Value::I32(0)]).unwrap();
            totals.push(inst.memory_report().runtime_overhead());
        }
        assert!(totals[0] > totals[1], "WAVM should out-consume Wasm3");
    }

    #[test]
    fn engine_codes_round_trip() {
        let mut kinds: Vec<EngineKind> = EngineKind::all().to_vec();
        kinds.extend(Backend::all().map(EngineKind::Wasmer));
        for kind in kinds {
            assert_eq!(EngineKind::from_code(kind.code()), Some(kind));
        }
        assert_eq!(EngineKind::from_code(200), None);
        assert_eq!(EngineKind::parse("WAVM"), Some(EngineKind::Wavm));
        assert_eq!(
            EngineKind::parse("wasmer"),
            Some(EngineKind::Wasmer(Backend::Cranelift))
        );
        assert_eq!(EngineKind::parse("v8"), None);
    }

    #[test]
    fn start_function_runs_at_instantiation() {
        let mut b = ModuleBuilder::new();
        b.memory(1, None);
        let s = b.begin_func(FuncType::new(&[], &[]));
        b.emit(Instr::I32Const(0));
        b.emit(Instr::I32Const(123));
        b.emit(Instr::I32Store(Default::default()));
        b.finish_func();
        let g = b.begin_func(FuncType::new(&[], &[ValType::I32]));
        b.emit(Instr::I32Const(0));
        b.emit(Instr::I32Load(Default::default()));
        b.finish_func();
        b.export_func("get", g);
        b.start(s);
        let bytes = wasm_core::encode::encode(&b.build());
        for kind in EngineKind::all() {
            let compiled = Engine::new(kind).compile(&bytes).unwrap();
            let mut inst = compiled.instantiate(&Imports::new(), Box::new(())).unwrap();
            assert_eq!(inst.invoke("get", &[]).unwrap(), Some(Value::I32(123)), "{kind}");
        }
    }
}
