//! Shared instance state: imports, host functions, globals, tables, and
//! the instantiation logic common to all five engines.

use std::any::Any;
use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;

use crate::error::{LinkError, Trap};
use crate::memory::LinearMemory;
use wasm_core::module::{ConstExpr, ImportKind, Module};
use wasm_core::types::{FuncType, ValType, Value};

/// Context passed to host functions: the guest's memory plus arbitrary
/// host state (e.g. a WASI context).
pub struct HostCtx<'a> {
    /// The instance's linear memory, if it has one.
    pub memory: Option<&'a mut LinearMemory>,
    /// Host-defined state installed at instantiation.
    pub data: &'a mut dyn Any,
}

impl fmt::Debug for HostCtx<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("HostCtx")
            .field("has_memory", &self.memory.is_some())
            .finish()
    }
}

/// A host function callable from the guest.
pub type HostFn = Rc<dyn Fn(&mut HostCtx<'_>, &[Value]) -> Result<Option<Value>, Trap>>;

/// The set of host items provided to instantiation.
#[derive(Default, Clone)]
pub struct Imports {
    funcs: HashMap<(String, String), (FuncType, HostFn)>,
    globals: HashMap<(String, String), Value>,
}

impl Imports {
    /// Creates an empty import set.
    pub fn new() -> Self {
        Imports::default()
    }

    /// Registers a host function under `module.name`.
    pub fn func(
        &mut self,
        module: &str,
        name: &str,
        ty: FuncType,
        f: impl Fn(&mut HostCtx<'_>, &[Value]) -> Result<Option<Value>, Trap> + 'static,
    ) -> &mut Self {
        self.funcs
            .insert((module.to_string(), name.to_string()), (ty, Rc::new(f)));
        self
    }

    /// Registers an immutable global import value.
    pub fn global(&mut self, module: &str, name: &str, value: Value) -> &mut Self {
        self.globals
            .insert((module.to_string(), name.to_string()), value);
        self
    }

    fn lookup_func(&self, module: &str, name: &str) -> Option<&(FuncType, HostFn)> {
        self.funcs.get(&(module.to_string(), name.to_string()))
    }

    fn lookup_global(&self, module: &str, name: &str) -> Option<Value> {
        self.globals
            .get(&(module.to_string(), name.to_string()))
            .copied()
    }
}

impl fmt::Debug for Imports {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Imports")
            .field("funcs", &self.funcs.keys().collect::<Vec<_>>())
            .field("globals", &self.globals.keys().collect::<Vec<_>>())
            .finish()
    }
}

/// Default maximum call depth before a stack-overflow trap.
pub const DEFAULT_CALL_DEPTH_LIMIT: usize = 2048;

/// The mutable runtime state of an instantiated module, shared by all
/// engine executors.
pub struct Runtime {
    /// Linear memory (at most one in the MVP).
    pub memory: Option<LinearMemory>,
    /// Raw global values (imports first, then module-defined).
    pub globals: Vec<u64>,
    /// Types of the globals, parallel to `globals`.
    pub global_types: Vec<ValType>,
    /// Table 0: function indices.
    pub table: Vec<Option<u32>>,
    /// Imported host functions, indexed by imported-function position.
    pub host_funcs: Vec<(FuncType, HostFn)>,
    /// Host state handed to host functions.
    pub host_data: Box<dyn Any>,
    /// Maximum call depth.
    pub call_depth_limit: usize,
    /// High-water mark of the value stack (slots), for memory accounting.
    pub peak_value_stack: usize,
}

impl fmt::Debug for Runtime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Runtime")
            .field("memory_pages", &self.memory.as_ref().map(|m| m.size_pages()))
            .field("globals", &self.globals.len())
            .field("table", &self.table.len())
            .field("host_funcs", &self.host_funcs.len())
            .finish()
    }
}

impl Runtime {
    /// Builds runtime state for `module` using `imports`, performing all
    /// instantiation-time work except running the start function: memory
    /// and table allocation, global initialization, and active segment
    /// copying.
    ///
    /// # Errors
    ///
    /// Returns a [`LinkError`] for missing/mismatched imports, or a
    /// [`Trap`]-equivalent link error if an active segment is out of
    /// bounds.
    pub fn instantiate(
        module: &Module,
        imports: &Imports,
        host_data: Box<dyn Any>,
    ) -> Result<Runtime, LinkError> {
        let mut host_funcs = Vec::new();
        let mut imported_globals: Vec<(ValType, u64)> = Vec::new();
        for imp in &module.imports {
            match &imp.kind {
                ImportKind::Func(type_idx) => {
                    let want = module
                        .types
                        .get(*type_idx as usize)
                        .ok_or_else(|| LinkError::new("import type index out of bounds"))?;
                    let (ty, f) = imports.lookup_func(&imp.module, &imp.name).ok_or_else(|| {
                        LinkError::new(format!(
                            "missing function import {}.{}",
                            imp.module, imp.name
                        ))
                    })?;
                    if ty != want {
                        return Err(LinkError::new(format!(
                            "function import {}.{} type mismatch: want {want}, have {ty}",
                            imp.module, imp.name
                        )));
                    }
                    host_funcs.push((ty.clone(), f.clone()));
                }
                ImportKind::Global(g) => {
                    let v = imports.lookup_global(&imp.module, &imp.name).ok_or_else(|| {
                        LinkError::new(format!(
                            "missing global import {}.{}",
                            imp.module, imp.name
                        ))
                    })?;
                    if v.ty() != g.val_type {
                        return Err(LinkError::new(format!(
                            "global import {}.{} type mismatch",
                            imp.module, imp.name
                        )));
                    }
                    imported_globals.push((g.val_type, v.to_bits()));
                }
                ImportKind::Memory(_) | ImportKind::Table(_) => {
                    return Err(LinkError::new(
                        "memory/table imports are not supported by these engines",
                    ));
                }
            }
        }

        let memory = module.memory_type(0).map(|m| LinearMemory::new(m.limits));
        let mut memory = memory;

        // Globals: imported first, then module-defined.
        let mut globals: Vec<u64> = imported_globals.iter().map(|(_, v)| *v).collect();
        let mut global_types: Vec<ValType> = imported_globals.iter().map(|(t, _)| *t).collect();
        for g in &module.globals {
            let bits = eval_const(&g.init, &imported_globals);
            globals.push(bits);
            global_types.push(g.ty.val_type);
        }

        // Table + element segments.
        let mut table: Vec<Option<u32>> = match module.table_type(0) {
            Some(t) => vec![None; t.limits.min as usize],
            None => Vec::new(),
        };
        for seg in &module.elems {
            let off = eval_const(&seg.offset, &imported_globals) as u32 as usize;
            if off + seg.funcs.len() > table.len() {
                return Err(LinkError::new("element segment out of bounds"));
            }
            for (i, f) in seg.funcs.iter().enumerate() {
                table[off + i] = Some(*f);
            }
        }

        // Data segments.
        for seg in &module.data {
            let off = eval_const(&seg.offset, &imported_globals) as u32;
            let mem = memory
                .as_mut()
                .ok_or_else(|| LinkError::new("data segment without memory"))?;
            mem.write_slice(off, &seg.bytes)
                .map_err(|_| LinkError::new("data segment out of bounds"))?;
        }

        Ok(Runtime {
            memory,
            globals,
            global_types,
            table,
            host_funcs,
            host_data,
            call_depth_limit: DEFAULT_CALL_DEPTH_LIMIT,
            peak_value_stack: 0,
        })
    }

    /// Calls imported host function `idx` with raw argument slots, returning
    /// a raw result slot (0 for void functions).
    ///
    /// # Errors
    ///
    /// Propagates any trap raised by the host function.
    pub fn call_host(&mut self, idx: u32, args: &[u64]) -> Result<u64, Trap> {
        let (ty, f) = self.host_funcs[idx as usize].clone();
        let vals: Vec<Value> = ty
            .params
            .iter()
            .zip(args)
            .map(|(t, bits)| Value::from_bits(*t, *bits))
            .collect();
        let mut ctx = HostCtx {
            memory: self.memory.as_mut(),
            data: &mut *self.host_data,
        };
        let result = f(&mut ctx, &vals)?;
        match (result, ty.results.first()) {
            (Some(v), Some(want)) if v.ty() == *want => Ok(v.to_bits()),
            (None, None) => Ok(0),
            _ => Err(Trap::Host(
                "host function returned wrong result type".to_string(),
            )),
        }
    }

    /// Resident guest memory in bytes (touched pages, the MRSS analogue).
    pub fn peak_linear_memory(&self) -> usize {
        self.memory.as_ref().map(|m| m.resident_bytes()).unwrap_or(0)
    }
}

fn eval_const(expr: &ConstExpr, imported_globals: &[(ValType, u64)]) -> u64 {
    match *expr {
        ConstExpr::I32(v) => v as u32 as u64,
        ConstExpr::I64(v) => v as u64,
        ConstExpr::F32(bits) => bits as u64,
        ConstExpr::F64(bits) => bits,
        ConstExpr::GlobalGet(i) => imported_globals[i as usize].1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wasm_core::builder::ModuleBuilder;
    use wasm_core::types::Limits;

    #[test]
    fn missing_import_is_link_error() {
        let mut b = ModuleBuilder::new();
        b.import_func("env", "f", FuncType::new(&[], &[]));
        let m = b.build();
        let err = Runtime::instantiate(&m, &Imports::new(), Box::new(())).unwrap_err();
        assert!(err.message.contains("missing function import"));
    }

    #[test]
    fn import_type_mismatch_is_link_error() {
        let mut b = ModuleBuilder::new();
        b.import_func("env", "f", FuncType::new(&[ValType::I32], &[]));
        let m = b.build();
        let mut imports = Imports::new();
        imports.func("env", "f", FuncType::new(&[], &[]), |_, _| Ok(None));
        assert!(Runtime::instantiate(&m, &imports, Box::new(())).is_err());
    }

    #[test]
    fn data_segments_initialize_memory() {
        let mut b = ModuleBuilder::new();
        b.memory(1, None);
        b.data(8, vec![1, 2, 3, 4]);
        let m = b.build();
        let rt = Runtime::instantiate(&m, &Imports::new(), Box::new(())).unwrap();
        let mem = rt.memory.as_ref().unwrap();
        assert_eq!(mem.load_i32(8, 0).unwrap(), i32::from_le_bytes([1, 2, 3, 4]));
    }

    #[test]
    fn out_of_bounds_data_segment_fails() {
        let mut b = ModuleBuilder::new();
        b.memory(1, None);
        b.data(65534, vec![1, 2, 3, 4]);
        let m = b.build();
        assert!(Runtime::instantiate(&m, &Imports::new(), Box::new(())).is_err());
    }

    #[test]
    fn elem_segments_fill_table() {
        let mut b = ModuleBuilder::new();
        b.table(4, None);
        let f = b.begin_func(FuncType::new(&[], &[]));
        b.finish_func();
        b.elems(1, vec![f]);
        let m = b.build();
        let rt = Runtime::instantiate(&m, &Imports::new(), Box::new(())).unwrap();
        assert_eq!(rt.table, vec![None, Some(0), None, None]);
    }

    #[test]
    fn host_function_round_trip() {
        let mut b = ModuleBuilder::new();
        b.import_func("m", "double", FuncType::new(&[ValType::I32], &[ValType::I32]));
        let module = b.build();
        let mut imports = Imports::new();
        imports.func(
            "m",
            "double",
            FuncType::new(&[ValType::I32], &[ValType::I32]),
            |_, args| Ok(Some(Value::I32(args[0].unwrap_i32() * 2))),
        );
        let mut rt = Runtime::instantiate(&module, &imports, Box::new(())).unwrap();
        assert_eq!(rt.call_host(0, &[21]).unwrap(), 42);
    }

    #[test]
    fn imported_global_feeds_initializer() {
        use wasm_core::module::{Global, Import};
        use wasm_core::types::{GlobalType, Mutability};
        let mut m = Module::new();
        m.imports.push(Import {
            module: "env".into(),
            name: "base".into(),
            kind: ImportKind::Global(GlobalType {
                val_type: ValType::I32,
                mutability: Mutability::Const,
            }),
        });
        m.globals.push(Global {
            ty: GlobalType {
                val_type: ValType::I32,
                mutability: Mutability::Var,
            },
            init: ConstExpr::GlobalGet(0),
        });
        let mut imports = Imports::new();
        imports.global("env", "base", Value::I32(77));
        let rt = Runtime::instantiate(&m, &imports, Box::new(())).unwrap();
        assert_eq!(rt.globals, vec![77, 77]);
        let _ = Limits::at_least(1);
    }
}
