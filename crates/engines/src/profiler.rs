//! Profiling hooks threaded through every engine's execution loop.
//!
//! In profiled mode an engine reports, for every step it takes, the
//! instruction fetches, retired micro-ops, data accesses, and branches it
//! would perform on real hardware. The `archsim` crate implements
//! [`Profiler`] with a cache hierarchy and branch predictors; the
//! [`NullProfiler`] compiles to nothing for plain timing runs.
//!
//! ## Synthetic address space
//!
//! Profiled addresses live in a flat synthetic 64-bit space so the cache
//! simulator can distinguish the regions that matter:
//!
//! | region | base | contents |
//! |---|---|---|
//! | handler/machine code | [`CODE_BASE`] | engine handler code & compiled code (I-side) |
//! | bytecode | [`BYTECODE_BASE`] | decoded/threaded bytecode, fetched as *data* by interpreters |
//! | metadata | [`META_BASE`] | engine tables: type info, control maps, br_tables |
//! | value stack | [`STACK_BASE`] | operand stack, locals, call frames |
//! | globals | [`GLOBALS_BASE`] | module globals |
//! | linear memory | [`HEAP_BASE`] | the guest's linear memory |

/// Base address of compiled code / interpreter handler code (I-side).
pub const CODE_BASE: u64 = 0x1000_0000;
/// Base address of decoded bytecode (interpreters fetch this as data).
pub const BYTECODE_BASE: u64 = 0x2000_0000;
/// Base address of runtime metadata (control maps, type tables).
pub const META_BASE: u64 = 0x5000_0000;
/// Base address of globals storage.
pub const GLOBALS_BASE: u64 = 0x6000_0000;
/// Base address of the value/call stack region.
pub const STACK_BASE: u64 = 0x7000_0000;
/// Base address of guest linear memory.
pub const HEAP_BASE: u64 = 0x8000_0000;

/// What kind of control transfer a [`Profiler::branch`] event describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BranchKind {
    /// Conditional direct branch.
    Cond,
    /// Unconditional direct branch.
    Uncond,
    /// Indirect branch (interpreter dispatch, `br_table`).
    Indirect,
    /// Direct call.
    Call,
    /// Indirect call (`call_indirect`, host call through a table).
    IndirectCall,
    /// Function return.
    Ret,
}

/// Receives microarchitectural events from a profiled execution.
///
/// Implementations must be cheap: engines call these in their innermost
/// loops. All default implementations are no-ops so simple profilers can
/// override only what they need.
pub trait Profiler {
    /// `len` bytes of instruction fetch at `addr` (I-side).
    #[inline]
    fn fetch(&mut self, addr: u64, len: u32) {
        let _ = (addr, len);
    }

    /// `n` retired micro-ops.
    #[inline]
    fn uops(&mut self, n: u64) {
        let _ = n;
    }

    /// Data read of `len` bytes at `addr`.
    #[inline]
    fn read(&mut self, addr: u64, len: u32) {
        let _ = (addr, len);
    }

    /// Data write of `len` bytes at `addr`.
    #[inline]
    fn write(&mut self, addr: u64, len: u32) {
        let _ = (addr, len);
    }

    /// A branch at `site` of the given kind; `taken` and `target` describe
    /// its resolution.
    #[inline]
    fn branch(&mut self, site: u64, kind: BranchKind, taken: bool, target: u64) {
        let _ = (site, kind, taken, target);
    }

    /// A runtime safety check (bounds, division, truncation guard) was
    /// statically proven redundant and skipped at this step. Lets the
    /// simulator report how much modeled work check elimination removed.
    #[inline]
    fn check_skipped(&mut self) {}

    /// A `perf stat`-shaped snapshot of accumulated counters, for
    /// attaching deltas to trace spans. `None` (the default) means this
    /// profiler has nothing to report — the instrumentation sites then
    /// skip sampling entirely.
    #[inline]
    fn perf_counters(&self) -> Option<obs::trace::SpanCounters> {
        None
    }
}

/// A profiler that ignores everything; used for plain timing runs.
///
/// With this type every hook inlines to nothing, so unprofiled execution
/// pays no cost.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullProfiler;

impl Profiler for NullProfiler {}

/// A simple event-counting profiler, useful in tests and as a lightweight
/// alternative to the full architectural simulation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CountingProfiler {
    /// Total instruction-fetch events.
    pub fetches: u64,
    /// Total retired micro-ops.
    pub uops: u64,
    /// Total data reads.
    pub reads: u64,
    /// Total data writes.
    pub writes: u64,
    /// Total branch events.
    pub branches: u64,
    /// Branch events that were taken.
    pub taken_branches: u64,
    /// Indirect branches (dispatch, br_table, indirect calls).
    pub indirect_branches: u64,
    /// Safety checks skipped thanks to static elimination proofs.
    pub checks_skipped: u64,
}

impl Profiler for CountingProfiler {
    #[inline]
    fn fetch(&mut self, _addr: u64, _len: u32) {
        self.fetches += 1;
    }

    #[inline]
    fn uops(&mut self, n: u64) {
        self.uops += n;
    }

    #[inline]
    fn read(&mut self, _addr: u64, _len: u32) {
        self.reads += 1;
    }

    #[inline]
    fn write(&mut self, _addr: u64, _len: u32) {
        self.writes += 1;
    }

    #[inline]
    fn branch(&mut self, _site: u64, kind: BranchKind, taken: bool, _target: u64) {
        self.branches += 1;
        if taken {
            self.taken_branches += 1;
        }
        if matches!(kind, BranchKind::Indirect | BranchKind::IndirectCall) {
            self.indirect_branches += 1;
        }
    }

    #[inline]
    fn check_skipped(&mut self) {
        self.checks_skipped += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_profiler_counts() {
        let mut p = CountingProfiler::default();
        p.fetch(CODE_BASE, 4);
        p.uops(3);
        p.read(HEAP_BASE, 8);
        p.write(HEAP_BASE + 8, 4);
        p.branch(CODE_BASE, BranchKind::Indirect, true, CODE_BASE + 64);
        p.branch(CODE_BASE, BranchKind::Cond, false, 0);
        assert_eq!(p.fetches, 1);
        assert_eq!(p.uops, 3);
        assert_eq!(p.reads, 1);
        assert_eq!(p.writes, 1);
        assert_eq!(p.branches, 2);
        assert_eq!(p.taken_branches, 1);
        assert_eq!(p.indirect_branches, 1);
    }

    #[test]
    fn regions_are_disjoint() {
        let bases = [
            CODE_BASE,
            BYTECODE_BASE,
            META_BASE,
            GLOBALS_BASE,
            STACK_BASE,
            HEAP_BASE,
        ];
        for w in bases.windows(2) {
            assert!(w[0] < w[1]);
            // Each region has at least 256 MiB of room.
            assert!(w[1] - w[0] >= 0x1000_0000);
        }
    }
}
