//! # engines
//!
//! Five standalone WebAssembly runtime engines over a shared execution
//! substrate, reproducing the execution strategies of the runtimes studied
//! in the paper:
//!
//! | engine | strategy | paper counterpart |
//! |---|---|---|
//! | `Wamr` | classic in-place interpreter | WAMR |
//! | `Wasm3` | pre-translated direct-threaded interpreter | Wasm3 |
//! | `Wasmer(Singlepass)` | one-pass compiled register code | Wasmer SinglePass |
//! | `Wasmtime`, `Wasmer(Cranelift)` | optimizing compiled tier | Wasmtime / Wasmer Cranelift |
//! | `Wavm`, `Wasmer(Llvm)` | aggressive multi-pass compiled tier | WAVM / Wasmer LLVM |
//!
//! All engines share linear memory, traps, numeric semantics, and host
//! function linking, and all support profiled execution through the
//! [`profiler::Profiler`] hooks.

#![warn(missing_docs)]

pub mod account;
pub mod engine;
pub mod error;
pub mod faultpoint;
pub mod interp;
pub mod jit;
pub mod memory;
pub mod numeric;
pub mod profiler;
pub mod store;


pub use engine::{Backend, CompiledModule, Engine, EngineKind, Instance};
pub use error::{EngineError, LinkError, Trap};
pub use memory::LinearMemory;
pub use profiler::{NullProfiler, Profiler};
pub use store::{HostCtx, Imports, Runtime};
