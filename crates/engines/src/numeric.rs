//! Shared numeric semantics for all engines.
//!
//! Every engine (both interpreters and all compiled tiers) evaluates pure
//! numeric instructions through these functions, so WebAssembly semantics
//! — shift masking, division traps, float-to-int conversion traps, NaN
//! propagation in min/max, round-half-to-even — are implemented exactly
//! once.

// Range checks are written in the spec's explicit `v < lo || v > hi`
// form rather than `!(lo..=hi).contains(&v)` to keep them literally
// comparable with the wasm specification text.
#![allow(clippy::manual_range_contains)]
//!
//! Values are passed as raw 64-bit slots: `i32`/`f32` live in the low 32
//! bits (zero-extended), matching how the engines store their operand
//! stacks and registers.

use crate::error::Trap;
use wasm_core::instr::Instr;

#[inline]
fn b32(x: u64) -> u32 {
    x as u32
}

#[inline]
fn f32v(x: u64) -> f32 {
    f32::from_bits(x as u32)
}

#[inline]
fn f64v(x: u64) -> f64 {
    f64::from_bits(x)
}

#[inline]
fn ret_i32(x: i32) -> u64 {
    x as u32 as u64
}

#[inline]
fn ret_u32(x: u32) -> u64 {
    x as u64
}

#[inline]
fn ret_f32(x: f32) -> u64 {
    x.to_bits() as u64
}

#[inline]
fn ret_f64(x: f64) -> u64 {
    x.to_bits()
}

#[inline]
fn bool32(b: bool) -> u64 {
    b as u64
}

/// WebAssembly `fNN.min`: NaN-propagating, -0 < +0.
#[inline]
fn wasm_min_f32(a: f32, b: f32) -> f32 {
    if a.is_nan() || b.is_nan() {
        f32::NAN
    } else if a == b {
        // Distinguish -0 and +0.
        f32::from_bits(a.to_bits() | b.to_bits())
    } else if a < b {
        a
    } else {
        b
    }
}

#[inline]
fn wasm_max_f32(a: f32, b: f32) -> f32 {
    if a.is_nan() || b.is_nan() {
        f32::NAN
    } else if a == b {
        f32::from_bits(a.to_bits() & b.to_bits())
    } else if a > b {
        a
    } else {
        b
    }
}

#[inline]
fn wasm_min_f64(a: f64, b: f64) -> f64 {
    if a.is_nan() || b.is_nan() {
        f64::NAN
    } else if a == b {
        f64::from_bits(a.to_bits() | b.to_bits())
    } else if a < b {
        a
    } else {
        b
    }
}

#[inline]
fn wasm_max_f64(a: f64, b: f64) -> f64 {
    if a.is_nan() || b.is_nan() {
        f64::NAN
    } else if a == b {
        f64::from_bits(a.to_bits() & b.to_bits())
    } else if a > b {
        a
    } else {
        b
    }
}

/// Round half to even (`fNN.nearest`). Uses the IEEE `round_ties_even`.
#[inline]
fn nearest_f32(x: f32) -> f32 {
    let r = x.round();
    if (x - x.trunc()).abs() == 0.5 {
        // Ties: round to even.
        let even = 2.0 * (x / 2.0).round();
        if (even - x).abs() == 0.5 {
            even
        } else {
            r
        }
    } else {
        r
    }
}

#[inline]
fn nearest_f64(x: f64) -> f64 {
    let r = x.round();
    if (x - x.trunc()).abs() == 0.5 {
        let even = 2.0 * (x / 2.0).round();
        if (even - x).abs() == 0.5 {
            even
        } else {
            r
        }
    } else {
        r
    }
}

macro_rules! trunc_checked {
    ($val:expr, $f:ty, $lo:expr, $hi:expr, $to:ty) => {{
        let v = $val;
        if v.is_nan() {
            return Err(Trap::InvalidConversionToInt);
        }
        let t = v.trunc();
        if t < $lo || t > $hi {
            return Err(Trap::IntegerOverflow);
        }
        t as $to
    }};
}

/// Applies a unary numeric instruction to a raw value.
///
/// # Errors
///
/// Traps on invalid float-to-int conversions.
///
/// # Panics
///
/// Panics if `op` is not a unary numeric instruction (callers dispatch on
/// validated code, so this indicates an engine bug).
#[inline]
pub fn apply_unary(op: Instr, a: u64) -> Result<u64, Trap> {
    use Instr::*;
    Ok(match op {
        I32Eqz => bool32(b32(a) == 0),
        I64Eqz => bool32(a == 0),
        I32Clz => ret_u32(b32(a).leading_zeros()),
        I32Ctz => ret_u32(b32(a).trailing_zeros()),
        I32Popcnt => ret_u32(b32(a).count_ones()),
        I64Clz => a.leading_zeros() as u64,
        I64Ctz => a.trailing_zeros() as u64,
        I64Popcnt => a.count_ones() as u64,
        F32Abs => ret_f32(f32v(a).abs()),
        F32Neg => ret_f32(-f32v(a)),
        F32Ceil => ret_f32(f32v(a).ceil()),
        F32Floor => ret_f32(f32v(a).floor()),
        F32Trunc => ret_f32(f32v(a).trunc()),
        F32Nearest => ret_f32(nearest_f32(f32v(a))),
        F32Sqrt => ret_f32(f32v(a).sqrt()),
        F64Abs => ret_f64(f64v(a).abs()),
        F64Neg => ret_f64(-f64v(a)),
        F64Ceil => ret_f64(f64v(a).ceil()),
        F64Floor => ret_f64(f64v(a).floor()),
        F64Trunc => ret_f64(f64v(a).trunc()),
        F64Nearest => ret_f64(nearest_f64(f64v(a))),
        F64Sqrt => ret_f64(f64v(a).sqrt()),
        I32WrapI64 => ret_u32(a as u32),
        I64ExtendI32S => (b32(a) as i32) as i64 as u64,
        I64ExtendI32U => b32(a) as u64,
        I32Extend8S => ret_i32(b32(a) as i8 as i32),
        I32Extend16S => ret_i32(b32(a) as i16 as i32),
        I64Extend8S => (a as i8) as i64 as u64,
        I64Extend16S => (a as i16) as i64 as u64,
        I64Extend32S => (a as i32) as i64 as u64,
        I32TruncF32S => ret_i32(trunc_checked!(f32v(a), f32, -2147483648.0f32, 2147483520.0f32, i32)),
        I32TruncF32U => ret_u32(trunc_checked!(f32v(a), f32, 0.0f32, 4294967040.0f32, u32)),
        I32TruncF64S => {
            ret_i32(trunc_checked!(f64v(a), f64, -2147483648.0f64, 2147483647.0f64, i32))
        }
        I32TruncF64U => ret_u32(trunc_checked!(f64v(a), f64, 0.0f64, 4294967295.0f64, u32)),
        I64TruncF32S => {
            trunc_checked!(f32v(a), f32, -9223372036854775808.0f32, 9223371487098961920.0f32, i64)
                as u64
        }
        I64TruncF32U => {
            trunc_checked!(f32v(a), f32, 0.0f32, 18446742974197923840.0f32, u64)
        }
        I64TruncF64S => {
            trunc_checked!(
                f64v(a),
                f64,
                -9223372036854775808.0f64,
                9223372036854774784.0f64,
                i64
            ) as u64
        }
        I64TruncF64U => {
            trunc_checked!(f64v(a), f64, 0.0f64, 18446744073709549568.0f64, u64)
        }
        F32ConvertI32S => ret_f32(b32(a) as i32 as f32),
        F32ConvertI32U => ret_f32(b32(a) as f32),
        F32ConvertI64S => ret_f32(a as i64 as f32),
        F32ConvertI64U => ret_f32(a as f32),
        F32DemoteF64 => ret_f32(f64v(a) as f32),
        F64ConvertI32S => ret_f64(b32(a) as i32 as f64),
        F64ConvertI32U => ret_f64(b32(a) as f64),
        F64ConvertI64S => ret_f64(a as i64 as f64),
        F64ConvertI64U => ret_f64(a as f64),
        F64PromoteF32 => ret_f64(f32v(a) as f64),
        I32ReinterpretF32 | F32ReinterpretI32 => ret_u32(b32(a)),
        I64ReinterpretF64 | F64ReinterpretI64 => a,
        other => panic!("apply_unary called with non-unary instruction {other:?}"),
    })
}

/// Applies a binary numeric instruction to two raw values (`a` is the
/// first-pushed operand).
///
/// # Errors
///
/// Traps on division by zero and signed-division overflow.
///
/// # Panics
///
/// Panics if `op` is not a binary numeric instruction.
#[inline]
pub fn apply_binary(op: Instr, a: u64, b: u64) -> Result<u64, Trap> {
    use Instr::*;
    let ai = b32(a) as i32;
    let bi = b32(b) as i32;
    let au = b32(a);
    let bu = b32(b);
    let al = a as i64;
    let bl = b as i64;
    Ok(match op {
        I32Eq => bool32(au == bu),
        I32Ne => bool32(au != bu),
        I32LtS => bool32(ai < bi),
        I32LtU => bool32(au < bu),
        I32GtS => bool32(ai > bi),
        I32GtU => bool32(au > bu),
        I32LeS => bool32(ai <= bi),
        I32LeU => bool32(au <= bu),
        I32GeS => bool32(ai >= bi),
        I32GeU => bool32(au >= bu),
        I64Eq => bool32(a == b),
        I64Ne => bool32(a != b),
        I64LtS => bool32(al < bl),
        I64LtU => bool32(a < b),
        I64GtS => bool32(al > bl),
        I64GtU => bool32(a > b),
        I64LeS => bool32(al <= bl),
        I64LeU => bool32(a <= b),
        I64GeS => bool32(al >= bl),
        I64GeU => bool32(a >= b),
        F32Eq => bool32(f32v(a) == f32v(b)),
        F32Ne => bool32(f32v(a) != f32v(b)),
        F32Lt => bool32(f32v(a) < f32v(b)),
        F32Gt => bool32(f32v(a) > f32v(b)),
        F32Le => bool32(f32v(a) <= f32v(b)),
        F32Ge => bool32(f32v(a) >= f32v(b)),
        F64Eq => bool32(f64v(a) == f64v(b)),
        F64Ne => bool32(f64v(a) != f64v(b)),
        F64Lt => bool32(f64v(a) < f64v(b)),
        F64Gt => bool32(f64v(a) > f64v(b)),
        F64Le => bool32(f64v(a) <= f64v(b)),
        F64Ge => bool32(f64v(a) >= f64v(b)),
        I32Add => ret_u32(au.wrapping_add(bu)),
        I32Sub => ret_u32(au.wrapping_sub(bu)),
        I32Mul => ret_u32(au.wrapping_mul(bu)),
        I32DivS => {
            if bi == 0 {
                return Err(Trap::DivisionByZero);
            }
            if ai == i32::MIN && bi == -1 {
                return Err(Trap::IntegerOverflow);
            }
            ret_i32(ai.wrapping_div(bi))
        }
        I32DivU => {
            if bu == 0 {
                return Err(Trap::DivisionByZero);
            }
            ret_u32(au / bu)
        }
        I32RemS => {
            if bi == 0 {
                return Err(Trap::DivisionByZero);
            }
            ret_i32(ai.wrapping_rem(bi))
        }
        I32RemU => {
            if bu == 0 {
                return Err(Trap::DivisionByZero);
            }
            ret_u32(au % bu)
        }
        I32And => ret_u32(au & bu),
        I32Or => ret_u32(au | bu),
        I32Xor => ret_u32(au ^ bu),
        I32Shl => ret_u32(au.wrapping_shl(bu)),
        I32ShrS => ret_i32(ai.wrapping_shr(bu)),
        I32ShrU => ret_u32(au.wrapping_shr(bu)),
        I32Rotl => ret_u32(au.rotate_left(bu & 31)),
        I32Rotr => ret_u32(au.rotate_right(bu & 31)),
        I64Add => a.wrapping_add(b),
        I64Sub => a.wrapping_sub(b),
        I64Mul => a.wrapping_mul(b),
        I64DivS => {
            if bl == 0 {
                return Err(Trap::DivisionByZero);
            }
            if al == i64::MIN && bl == -1 {
                return Err(Trap::IntegerOverflow);
            }
            al.wrapping_div(bl) as u64
        }
        I64DivU => {
            if b == 0 {
                return Err(Trap::DivisionByZero);
            }
            a / b
        }
        I64RemS => {
            if bl == 0 {
                return Err(Trap::DivisionByZero);
            }
            al.wrapping_rem(bl) as u64
        }
        I64RemU => {
            if b == 0 {
                return Err(Trap::DivisionByZero);
            }
            a % b
        }
        I64And => a & b,
        I64Or => a | b,
        I64Xor => a ^ b,
        I64Shl => a.wrapping_shl(b as u32),
        I64ShrS => (al.wrapping_shr(b as u32)) as u64,
        I64ShrU => a.wrapping_shr(b as u32),
        I64Rotl => a.rotate_left((b & 63) as u32),
        I64Rotr => a.rotate_right((b & 63) as u32),
        F32Add => ret_f32(f32v(a) + f32v(b)),
        F32Sub => ret_f32(f32v(a) - f32v(b)),
        F32Mul => ret_f32(f32v(a) * f32v(b)),
        F32Div => ret_f32(f32v(a) / f32v(b)),
        F32Min => ret_f32(wasm_min_f32(f32v(a), f32v(b))),
        F32Max => ret_f32(wasm_max_f32(f32v(a), f32v(b))),
        F32Copysign => ret_f32(f32v(a).copysign(f32v(b))),
        F64Add => ret_f64(f64v(a) + f64v(b)),
        F64Sub => ret_f64(f64v(a) - f64v(b)),
        F64Mul => ret_f64(f64v(a) * f64v(b)),
        F64Div => ret_f64(f64v(a) / f64v(b)),
        F64Min => ret_f64(wasm_min_f64(f64v(a), f64v(b))),
        F64Max => ret_f64(wasm_max_f64(f64v(a), f64v(b))),
        F64Copysign => ret_f64(f64v(a).copysign(f64v(b))),
        other => panic!("apply_binary called with non-binary instruction {other:?}"),
    })
}


/// A pre-resolved binary operator (used by the compiled tiers: resolving
/// the operator once at compile time and calling through a function
/// pointer is the portable analogue of emitting the instruction).
pub type BinFn = fn(u64, u64) -> Result<u64, Trap>;
/// A pre-resolved unary operator.
pub type UnFn = fn(u64) -> Result<u64, Trap>;

macro_rules! resolve_ops {
    ($name:ident, $apply:ident, $ty:ty, ($($v:ident),* $(,)?)) => {
        /// Resolves `op` to a direct function pointer.
        ///
        /// # Panics
        ///
        /// Panics if `op` is not in this operator class.
        pub fn $name(op: Instr) -> $ty {
            $(
                #[allow(non_snake_case)]
                #[inline]
                fn $v(a: u64, b: u64) -> Result<u64, Trap> {
                    apply_binary(Instr::$v, a, b)
                }
            )*
            match op {
                $(Instr::$v => $v,)*
                other => panic!("no resolved handler for {other:?}"),
            }
        }
    };
}

resolve_ops!(binary_fn, apply_binary, BinFn, (
    I32Eq, I32Ne, I32LtS, I32LtU, I32GtS, I32GtU, I32LeS, I32LeU, I32GeS, I32GeU,
    I64Eq, I64Ne, I64LtS, I64LtU, I64GtS, I64GtU, I64LeS, I64LeU, I64GeS, I64GeU,
    F32Eq, F32Ne, F32Lt, F32Gt, F32Le, F32Ge,
    F64Eq, F64Ne, F64Lt, F64Gt, F64Le, F64Ge,
    I32Add, I32Sub, I32Mul, I32DivS, I32DivU, I32RemS, I32RemU,
    I32And, I32Or, I32Xor, I32Shl, I32ShrS, I32ShrU, I32Rotl, I32Rotr,
    I64Add, I64Sub, I64Mul, I64DivS, I64DivU, I64RemS, I64RemU,
    I64And, I64Or, I64Xor, I64Shl, I64ShrS, I64ShrU, I64Rotl, I64Rotr,
    F32Add, F32Sub, F32Mul, F32Div, F32Min, F32Max, F32Copysign,
    F64Add, F64Sub, F64Mul, F64Div, F64Min, F64Max, F64Copysign,
));

/// Resolves a unary `op` to a direct function pointer.
///
/// # Panics
///
/// Panics if `op` is not a unary numeric instruction.
pub fn unary_fn(op: Instr) -> UnFn {
    macro_rules! table {
        ($($v:ident),* $(,)?) => {{
            $(
                #[allow(non_snake_case)]
                #[inline]
                fn $v(a: u64) -> Result<u64, Trap> {
                    apply_unary(Instr::$v, a)
                }
            )*
            match op {
                $(Instr::$v => $v,)*
                other => panic!("no resolved handler for {other:?}"),
            }
        }};
    }
    table!(
        I32Eqz, I64Eqz,
        I32Clz, I32Ctz, I32Popcnt, I64Clz, I64Ctz, I64Popcnt,
        F32Abs, F32Neg, F32Ceil, F32Floor, F32Trunc, F32Nearest, F32Sqrt,
        F64Abs, F64Neg, F64Ceil, F64Floor, F64Trunc, F64Nearest, F64Sqrt,
        I32WrapI64, I64ExtendI32S, I64ExtendI32U,
        I32Extend8S, I32Extend16S, I64Extend8S, I64Extend16S, I64Extend32S,
        I32TruncF32S, I32TruncF32U, I32TruncF64S, I32TruncF64U,
        I64TruncF32S, I64TruncF32U, I64TruncF64S, I64TruncF64U,
        F32ConvertI32S, F32ConvertI32U, F32ConvertI64S, F32ConvertI64U,
        F64ConvertI32S, F64ConvertI32U, F64ConvertI64S, F64ConvertI64U,
        F32DemoteF64, F64PromoteF32,
        I32ReinterpretF32, I64ReinterpretF64, F32ReinterpretI32, F64ReinterpretI64,
    )
}

/// Whether `op` is handled by [`apply_unary`].
pub fn is_unary(op: Instr) -> bool {
    use Instr::*;
    matches!(
        op,
        I32Eqz | I64Eqz
            | I32Clz | I32Ctz | I32Popcnt | I64Clz | I64Ctz | I64Popcnt
            | F32Abs | F32Neg | F32Ceil | F32Floor | F32Trunc | F32Nearest | F32Sqrt
            | F64Abs | F64Neg | F64Ceil | F64Floor | F64Trunc | F64Nearest | F64Sqrt
            | I32WrapI64 | I64ExtendI32S | I64ExtendI32U
            | I32Extend8S | I32Extend16S | I64Extend8S | I64Extend16S | I64Extend32S
            | I32TruncF32S | I32TruncF32U | I32TruncF64S | I32TruncF64U
            | I64TruncF32S | I64TruncF32U | I64TruncF64S | I64TruncF64U
            | F32ConvertI32S | F32ConvertI32U | F32ConvertI64S | F32ConvertI64U
            | F64ConvertI32S | F64ConvertI32U | F64ConvertI64S | F64ConvertI64U
            | F32DemoteF64 | F64PromoteF32
            | I32ReinterpretF32 | I64ReinterpretF64 | F32ReinterpretI32 | F64ReinterpretI64
    )
}

/// Whether `op` is handled by [`apply_binary`].
pub fn is_binary(op: Instr) -> bool {
    use Instr::*;
    matches!(
        op,
        I32Eq | I32Ne | I32LtS | I32LtU | I32GtS | I32GtU | I32LeS | I32LeU | I32GeS | I32GeU
            | I64Eq | I64Ne | I64LtS | I64LtU | I64GtS | I64GtU | I64LeS | I64LeU | I64GeS
            | I64GeU
            | F32Eq | F32Ne | F32Lt | F32Gt | F32Le | F32Ge
            | F64Eq | F64Ne | F64Lt | F64Gt | F64Le | F64Ge
            | I32Add | I32Sub | I32Mul | I32DivS | I32DivU | I32RemS | I32RemU
            | I32And | I32Or | I32Xor | I32Shl | I32ShrS | I32ShrU | I32Rotl | I32Rotr
            | I64Add | I64Sub | I64Mul | I64DivS | I64DivU | I64RemS | I64RemU
            | I64And | I64Or | I64Xor | I64Shl | I64ShrS | I64ShrU | I64Rotl | I64Rotr
            | F32Add | F32Sub | F32Mul | F32Div | F32Min | F32Max | F32Copysign
            | F64Add | F64Sub | F64Mul | F64Div | F64Min | F64Max | F64Copysign
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u(op: Instr, a: u64) -> u64 {
        apply_unary(op, a).unwrap()
    }

    fn b(op: Instr, a: u64, bb: u64) -> u64 {
        apply_binary(op, a, bb).unwrap()
    }

    #[test]
    fn i32_wrapping_arithmetic() {
        assert_eq!(b(Instr::I32Add, ret_i32(i32::MAX), 1), ret_i32(i32::MIN));
        assert_eq!(b(Instr::I32Mul, ret_i32(-3), ret_i32(7)), ret_i32(-21));
        assert_eq!(b(Instr::I32Sub, 0, 1), ret_i32(-1));
    }

    #[test]
    fn division_traps() {
        assert_eq!(
            apply_binary(Instr::I32DivS, 5, 0),
            Err(Trap::DivisionByZero)
        );
        assert_eq!(
            apply_binary(Instr::I32DivS, ret_i32(i32::MIN), ret_i32(-1)),
            Err(Trap::IntegerOverflow)
        );
        assert_eq!(
            apply_binary(Instr::I64RemU, 5, 0),
            Err(Trap::DivisionByZero)
        );
        // rem_s(MIN, -1) == 0, no trap.
        assert_eq!(b(Instr::I32RemS, ret_i32(i32::MIN), ret_i32(-1)), 0);
    }

    #[test]
    fn shifts_mask_count() {
        assert_eq!(b(Instr::I32Shl, 1, 33), 2);
        assert_eq!(b(Instr::I64Shl, 1, 65), 2);
        assert_eq!(b(Instr::I32ShrS, ret_i32(-8), 1), ret_i32(-4));
        assert_eq!(b(Instr::I32Rotl, 0x8000_0001, 1), 3);
    }

    #[test]
    fn float_min_max_nan_and_zero() {
        let nan = ret_f32(f32::NAN);
        assert!(f32::from_bits(b(Instr::F32Min, nan, ret_f32(1.0)) as u32).is_nan());
        // min(-0, +0) = -0
        let r = b(Instr::F32Min, ret_f32(-0.0), ret_f32(0.0));
        assert_eq!(r as u32, (-0.0f32).to_bits());
        // max(-0, +0) = +0
        let r = b(Instr::F32Max, ret_f32(-0.0), ret_f32(0.0));
        assert_eq!(r as u32, 0.0f32.to_bits());
    }

    #[test]
    fn nearest_ties_to_even() {
        assert_eq!(f64::from_bits(u(Instr::F64Nearest, ret_f64(2.5))), 2.0);
        assert_eq!(f64::from_bits(u(Instr::F64Nearest, ret_f64(3.5))), 4.0);
        assert_eq!(f64::from_bits(u(Instr::F64Nearest, ret_f64(-2.5))), -2.0);
        assert_eq!(f32::from_bits(u(Instr::F32Nearest, ret_f32(0.5)) as u32), 0.0);
    }

    #[test]
    fn trunc_traps_on_nan_and_overflow() {
        assert_eq!(
            apply_unary(Instr::I32TruncF64S, ret_f64(f64::NAN)),
            Err(Trap::InvalidConversionToInt)
        );
        assert_eq!(
            apply_unary(Instr::I32TruncF64S, ret_f64(3e9)),
            Err(Trap::IntegerOverflow)
        );
        assert_eq!(u(Instr::I32TruncF64S, ret_f64(-3.99)), ret_i32(-3));
        assert_eq!(u(Instr::I32TruncF64U, ret_f64(4294967295.0)), ret_u32(u32::MAX));
    }

    #[test]
    fn extensions_and_wraps() {
        assert_eq!(u(Instr::I64ExtendI32S, ret_i32(-1)), u64::MAX);
        assert_eq!(u(Instr::I64ExtendI32U, ret_i32(-1)), 0xFFFF_FFFF);
        assert_eq!(u(Instr::I32WrapI64, 0x1_0000_0005), 5);
        assert_eq!(u(Instr::I32Extend8S, 0x80), ret_i32(-128));
        assert_eq!(u(Instr::I64Extend32S, 0x8000_0000), (-2147483648i64) as u64);
    }

    #[test]
    fn clz_ctz_popcnt() {
        assert_eq!(u(Instr::I32Clz, 1), 31);
        assert_eq!(u(Instr::I32Clz, 0), 32);
        assert_eq!(u(Instr::I32Ctz, 8), 3);
        assert_eq!(u(Instr::I64Popcnt, u64::MAX), 64);
    }

    #[test]
    fn comparisons_signedness() {
        assert_eq!(b(Instr::I32LtS, ret_i32(-1), 1), 1);
        assert_eq!(b(Instr::I32LtU, ret_i32(-1), 1), 0);
        assert_eq!(b(Instr::I64GtU, u64::MAX, 0), 1);
        assert_eq!(b(Instr::I64GtS, u64::MAX, 0), 0);
    }

    #[test]
    fn reinterpret_round_trip() {
        let bits = ret_f64(1.25);
        assert_eq!(u(Instr::I64ReinterpretF64, bits), bits);
        assert_eq!(u(Instr::F64ReinterpretI64, bits), bits);
    }

    #[test]
    fn classification_consistency() {
        assert!(is_unary(Instr::I32Eqz));
        assert!(is_binary(Instr::F64Copysign));
        assert!(!is_unary(Instr::I32Add));
        assert!(!is_binary(Instr::Nop));
    }
}
