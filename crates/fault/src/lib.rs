//! Deterministic fault injection and resilience primitives.
//!
//! A [`FaultPlan`] is a seeded description of *where* and *how often* to
//! inject failures into the service stack: store read/write corruption,
//! spurious artifact-cache misses, simulated engine compile failures,
//! worker panics, and job-level scheduling delays. Decisions are pure
//! functions of the plan seed plus either a caller-supplied key
//! ([`FaultPlan::keyed`] — the same content always fails, so retries are
//! futile and recovery paths must engage) or a per-site draw counter
//! ([`FaultPlan::transient`] — a retry sees a fresh draw and usually
//! succeeds). Nothing here consults a clock or an OS RNG, so a chaos run
//! is reproducible from its spec string alone.
//!
//! The crate also provides the [`Breaker`] circuit-breaker state machine
//! (Closed → Open after N consecutive failures → HalfOpen probe after a
//! cooldown) that the scheduler keys per engine.
//!
//! Plans parse from a compact spec (`WABENCH_FAULTS` or `--faults`):
//!
//! ```text
//! seed=11,store.read=0.05,store.write=0.05,cache.miss=0.05,compile=0.05,panic=0.05,delay=0.05:2ms
//! ```

#![warn(missing_docs)]

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Number of injection sites (length of [`Site::ALL`]).
const N_SITES: usize = 7;

/// An injection site: one place in the stack where a fault can fire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Site {
    /// Artifact-store lookups return "corrupt" for the keyed entry.
    StoreRead,
    /// Artifact-store writes flip a payload byte on the way to disk.
    StoreWrite,
    /// Artifact-store lookups spuriously miss an intact entry.
    CacheMiss,
    /// Engine compilation of the keyed module fails (JIT tiers only).
    CompileFail,
    /// The job's execution thread panics mid-job.
    WorkerPanic,
    /// The worker sleeps before running the job (scheduling delay).
    JobDelay,
    /// The whole process aborts when a worker picks up a job — a
    /// backend-kill switch for multi-node failover chaos. Unlike
    /// [`Site::WorkerPanic`] (caught and retried in-process), a crash
    /// takes the daemon down hard; only a fronting router can absorb
    /// it.
    Crash,
}

impl Site {
    /// Every site, in stable wire-code order.
    pub const ALL: [Site; N_SITES] = [
        Site::StoreRead,
        Site::StoreWrite,
        Site::CacheMiss,
        Site::CompileFail,
        Site::WorkerPanic,
        Site::JobDelay,
        Site::Crash,
    ];

    /// Stable wire byte (also the internal array index).
    pub fn code(self) -> u8 {
        match self {
            Site::StoreRead => 0,
            Site::StoreWrite => 1,
            Site::CacheMiss => 2,
            Site::CompileFail => 3,
            Site::WorkerPanic => 4,
            Site::JobDelay => 5,
            Site::Crash => 6,
        }
    }

    /// Decodes a wire byte.
    pub fn from_code(b: u8) -> Option<Site> {
        Site::ALL.get(b as usize).copied()
    }

    /// The spec-string key (`store.read`, `compile`, ...).
    pub fn key(self) -> &'static str {
        match self {
            Site::StoreRead => "store.read",
            Site::StoreWrite => "store.write",
            Site::CacheMiss => "cache.miss",
            Site::CompileFail => "compile",
            Site::WorkerPanic => "panic",
            Site::JobDelay => "delay",
            Site::Crash => "crash",
        }
    }

    /// The obs counter bumped each time this site injects a fault.
    pub fn counter_name(self) -> &'static str {
        match self {
            Site::StoreRead => "fault.injected.store.read",
            Site::StoreWrite => "fault.injected.store.write",
            Site::CacheMiss => "fault.injected.cache.miss",
            Site::CompileFail => "fault.injected.compile",
            Site::WorkerPanic => "fault.injected.panic",
            Site::JobDelay => "fault.injected.delay",
            Site::Crash => "fault.injected.crash",
        }
    }

    fn from_key(key: &str) -> Option<Site> {
        Site::ALL.iter().copied().find(|s| s.key() == key)
    }
}

impl std::fmt::Display for Site {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.key())
    }
}

/// SplitMix64 finalizer: a cheap, well-mixed 64-bit hash used for every
/// fault decision and for the scheduler's deterministic retry jitter.
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A seeded, deterministic fault-injection plan.
///
/// Thread-safe: decision counters are atomics, everything else is
/// immutable after parse. Share one plan per process behind an `Arc` so
/// the injected-fault tallies aggregate across workers.
#[derive(Debug)]
pub struct FaultPlan {
    seed: u64,
    rates: [f64; N_SITES],
    delay: Duration,
    /// Per-site draw counters for `transient` decisions.
    seqs: [AtomicU64; N_SITES],
    /// Per-site count of decisions that came back "inject".
    injected: [AtomicU64; N_SITES],
}

impl FaultPlan {
    /// Parses a spec string: comma-separated `key=value` pairs where
    /// `key` is `seed` or a [`Site`] key and `value` is a probability in
    /// `[0, 1]`. The `delay` site takes an optional duration suffix
    /// (`delay=0.05:2ms`, default 10ms).
    ///
    /// # Errors
    ///
    /// A human-readable message for unknown keys, unparseable numbers,
    /// or out-of-range probabilities.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut seed = 0u64;
        let mut rates = [0.0f64; N_SITES];
        let mut delay = Duration::from_millis(10);
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("fault spec: {part:?} is not key=value"))?;
            if key == "seed" {
                seed = value
                    .parse()
                    .map_err(|_| format!("fault spec: bad seed {value:?}"))?;
                continue;
            }
            let site = Site::from_key(key).ok_or_else(|| {
                format!(
                    "fault spec: unknown site {key:?} (known: seed, {})",
                    Site::ALL.map(Site::key).join(", ")
                )
            })?;
            let (prob, suffix) = match value.split_once(':') {
                Some((p, s)) => (p, Some(s)),
                None => (value, None),
            };
            let rate: f64 = prob
                .parse()
                .map_err(|_| format!("fault spec: bad probability {prob:?} for {key}"))?;
            if !(0.0..=1.0).contains(&rate) {
                return Err(format!(
                    "fault spec: probability {rate} for {key} outside [0, 1]"
                ));
            }
            rates[site.code() as usize] = rate;
            if let Some(suffix) = suffix {
                if site != Site::JobDelay {
                    return Err(format!("fault spec: {key} takes no duration suffix"));
                }
                delay = parse_duration(suffix)?;
            }
        }
        Ok(FaultPlan {
            seed,
            rates,
            delay,
            seqs: Default::default(),
            injected: Default::default(),
        })
    }

    /// Reads a plan from `WABENCH_FAULTS`; `Ok(None)` when unset/empty.
    ///
    /// # Errors
    ///
    /// Parse errors from [`FaultPlan::parse`].
    pub fn from_env() -> Result<Option<FaultPlan>, String> {
        match std::env::var("WABENCH_FAULTS") {
            Ok(spec) if !spec.trim().is_empty() => FaultPlan::parse(&spec).map(Some),
            _ => Ok(None),
        }
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The configured injection probability for a site.
    pub fn rate(&self, site: Site) -> f64 {
        self.rates[site.code() as usize]
    }

    /// The sleep injected when [`Site::JobDelay`] fires.
    pub fn delay_duration(&self) -> Duration {
        self.delay
    }

    /// One decision as a pure function of `(seed, site, stream)`.
    fn roll(&self, site: Site, stream: u64) -> bool {
        let i = site.code() as usize;
        let rate = self.rates[i];
        if rate <= 0.0 {
            return false;
        }
        let salt = (site.code() as u64 + 1).wrapping_mul(0xA076_1D64_78BD_642F);
        let draw = mix64(self.seed ^ mix64(salt ^ stream));
        // Top 53 bits → uniform in [0, 1).
        let u = (draw >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let inject = u < rate;
        if inject {
            self.injected[i].fetch_add(1, Ordering::Relaxed);
            obs::metrics::counter(site.counter_name()).inc();
        }
        inject
    }

    /// A *keyed* decision: deterministic per `(seed, site, key)`. The
    /// same content fails every time, so a retry cannot paper over it —
    /// the degradation/repair path has to engage. Used for compile
    /// failures (keyed by module hash × engine) and store corruption
    /// (keyed by artifact key).
    pub fn keyed(&self, site: Site, key: u64) -> bool {
        self.roll(site, key)
    }

    /// A *transient* decision: each call consumes the site's next draw,
    /// so a retry re-rolls and usually clears. Used for worker panics,
    /// spurious cache misses, and scheduling delays.
    pub fn transient(&self, site: Site) -> bool {
        let stream = self.seqs[site.code() as usize].fetch_add(1, Ordering::Relaxed);
        // Offset transient streams away from keyed hashes.
        self.roll(site, stream ^ 0x7453_4E41_4953_4E54)
    }

    /// `Some(delay)` when a [`Site::JobDelay`] draw fires.
    pub fn job_delay(&self) -> Option<Duration> {
        self.transient(Site::JobDelay).then_some(self.delay)
    }

    /// Per-site injected-fault counts, in [`Site::ALL`] order.
    pub fn injected(&self) -> Vec<(Site, u64)> {
        Site::ALL
            .iter()
            .map(|s| (*s, self.injected[s.code() as usize].load(Ordering::Relaxed)))
            .collect()
    }

    /// Total faults injected across all sites.
    pub fn injected_total(&self) -> u64 {
        self.injected.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }
}

impl std::fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "seed={}", self.seed)?;
        for site in Site::ALL {
            let rate = self.rate(site);
            if rate > 0.0 {
                write!(f, ",{}={rate}", site.key())?;
                if site == Site::JobDelay {
                    write!(f, ":{}ms", self.delay.as_millis())?;
                }
            }
        }
        Ok(())
    }
}

fn parse_duration(s: &str) -> Result<Duration, String> {
    let bad = || format!("fault spec: bad duration {s:?} (use e.g. 5ms or 2s)");
    if let Some(ms) = s.strip_suffix("ms") {
        let v: u64 = ms.parse().map_err(|_| bad())?;
        Ok(Duration::from_millis(v))
    } else if let Some(secs) = s.strip_suffix('s') {
        let v: u64 = secs.parse().map_err(|_| bad())?;
        Ok(Duration::from_secs(v))
    } else {
        Err(bad())
    }
}

/// Circuit-breaker tuning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive failures that trip the breaker open.
    pub threshold: u32,
    /// How long an open breaker rejects work before probing again.
    pub cooldown: Duration,
}

impl Default for BreakerConfig {
    fn default() -> BreakerConfig {
        BreakerConfig {
            threshold: 8,
            cooldown: Duration::from_secs(1),
        }
    }
}

/// Circuit-breaker state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: work flows.
    Closed,
    /// Tripped: work is rejected until the cooldown elapses.
    Open,
    /// Cooldown elapsed: one probe is admitted; its outcome decides.
    HalfOpen,
}

impl BreakerState {
    /// Stable wire byte.
    pub fn byte(self) -> u8 {
        match self {
            BreakerState::Closed => 0,
            BreakerState::Open => 1,
            BreakerState::HalfOpen => 2,
        }
    }

    /// Decodes a wire byte.
    pub fn from_byte(b: u8) -> Option<BreakerState> {
        Some(match b {
            0 => BreakerState::Closed,
            1 => BreakerState::Open,
            2 => BreakerState::HalfOpen,
            _ => return None,
        })
    }

    /// Lowercase human name (`closed` / `open` / `half-open`).
    pub fn name(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half-open",
        }
    }
}

/// A state transition worth logging/counting, returned by
/// [`Breaker::record`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerEvent {
    /// Closed → Open: the failure threshold was reached.
    Opened,
    /// HalfOpen → Open: the probe failed.
    Reopened,
    /// Open/HalfOpen → Closed: a success healed the breaker.
    Closed,
}

/// Point-in-time breaker observation (serves the `Health` reply).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerSnapshot {
    /// Current state.
    pub state: BreakerState,
    /// Current consecutive-failure run.
    pub consecutive_failures: u32,
    /// Times the breaker has tripped open over its lifetime.
    pub trips: u64,
}

/// A per-resource circuit breaker (the scheduler keys one per engine).
///
/// Not internally synchronized: callers hold it behind their own lock.
#[derive(Debug)]
pub struct Breaker {
    cfg: BreakerConfig,
    state: BreakerState,
    consecutive: u32,
    trips: u64,
    opened_at: Option<Instant>,
}

impl Breaker {
    /// A closed breaker with the given tuning.
    pub fn new(cfg: BreakerConfig) -> Breaker {
        Breaker {
            cfg,
            state: BreakerState::Closed,
            consecutive: 0,
            trips: 0,
            opened_at: None,
        }
    }

    /// Should work be admitted right now? An open breaker whose cooldown
    /// has elapsed moves to half-open and admits the probe.
    pub fn admit(&mut self) -> bool {
        match self.state {
            BreakerState::Closed | BreakerState::HalfOpen => true,
            BreakerState::Open => {
                let elapsed = self
                    .opened_at
                    .is_none_or(|t| t.elapsed() >= self.cfg.cooldown);
                if elapsed {
                    self.state = BreakerState::HalfOpen;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Records a job outcome; returns a transition when one happened.
    pub fn record(&mut self, ok: bool) -> Option<BreakerEvent> {
        if ok {
            let was = self.state;
            self.consecutive = 0;
            self.state = BreakerState::Closed;
            self.opened_at = None;
            (was != BreakerState::Closed).then_some(BreakerEvent::Closed)
        } else {
            self.consecutive += 1;
            match self.state {
                BreakerState::HalfOpen => {
                    self.trip();
                    Some(BreakerEvent::Reopened)
                }
                BreakerState::Closed if self.consecutive >= self.cfg.threshold => {
                    self.trip();
                    Some(BreakerEvent::Opened)
                }
                _ => None,
            }
        }
    }

    fn trip(&mut self) {
        self.state = BreakerState::Open;
        self.trips += 1;
        self.opened_at = Some(Instant::now());
    }

    /// Current state.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Observation for health reporting.
    pub fn snapshot(&self) -> BreakerSnapshot {
        BreakerSnapshot {
            state: self.state,
            consecutive_failures: self.consecutive,
            trips: self.trips,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_full_spec_round_trips() {
        let plan = FaultPlan::parse(
            "seed=11,store.read=0.05,store.write=0.1,cache.miss=0.2,compile=0.3,panic=0.4,delay=0.5:2ms",
        )
        .unwrap();
        assert_eq!(plan.seed(), 11);
        assert_eq!(plan.rate(Site::StoreRead), 0.05);
        assert_eq!(plan.rate(Site::CompileFail), 0.3);
        assert_eq!(plan.delay_duration(), Duration::from_millis(2));
        // Display renders a spec that parses back to the same plan.
        let again = FaultPlan::parse(&plan.to_string()).unwrap();
        assert_eq!(again.seed(), plan.seed());
        for site in Site::ALL {
            assert_eq!(again.rate(site), plan.rate(site));
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(FaultPlan::parse("nonsense").is_err());
        assert!(FaultPlan::parse("bogus.site=0.5").is_err());
        assert!(FaultPlan::parse("compile=1.5").is_err());
        assert!(FaultPlan::parse("compile=-0.1").is_err());
        assert!(FaultPlan::parse("compile=abc").is_err());
        assert!(FaultPlan::parse("compile=0.5:5ms").is_err(), "suffix only on delay");
        assert!(FaultPlan::parse("delay=0.5:5parsecs").is_err());
        assert!(FaultPlan::parse("seed=x").is_err());
    }

    #[test]
    fn site_codes_round_trip() {
        for site in Site::ALL {
            assert_eq!(Site::from_code(site.code()), Some(site));
            assert_eq!(Site::from_key(site.key()), Some(site));
        }
        assert_eq!(Site::from_code(200), None);
    }

    #[test]
    fn keyed_decisions_are_deterministic_and_order_free() {
        let a = FaultPlan::parse("seed=7,compile=0.5").unwrap();
        let b = FaultPlan::parse("seed=7,compile=0.5").unwrap();
        // Interleave differently; keyed answers must agree anyway.
        let keys: Vec<u64> = (0..64).map(|i| i * 977).collect();
        let from_a: Vec<bool> = keys.iter().map(|k| a.keyed(Site::CompileFail, *k)).collect();
        let from_b: Vec<bool> = keys
            .iter()
            .rev()
            .map(|k| b.keyed(Site::CompileFail, *k))
            .collect();
        let from_b: Vec<bool> = from_b.into_iter().rev().collect();
        assert_eq!(from_a, from_b);
        assert!(from_a.iter().any(|x| *x) && from_a.iter().any(|x| !*x));
        // A different seed gives a different pattern.
        let c = FaultPlan::parse("seed=8,compile=0.5").unwrap();
        let from_c: Vec<bool> = keys.iter().map(|k| c.keyed(Site::CompileFail, *k)).collect();
        assert_ne!(from_a, from_c);
    }

    #[test]
    fn transient_decisions_rerol_per_call() {
        let a = FaultPlan::parse("seed=3,panic=0.5").unwrap();
        let b = FaultPlan::parse("seed=3,panic=0.5").unwrap();
        let seq_a: Vec<bool> = (0..64).map(|_| a.transient(Site::WorkerPanic)).collect();
        let seq_b: Vec<bool> = (0..64).map(|_| b.transient(Site::WorkerPanic)).collect();
        assert_eq!(seq_a, seq_b, "same seed, same draw sequence");
        assert!(seq_a.iter().any(|x| *x) && seq_a.iter().any(|x| !*x));
    }

    #[test]
    fn rates_zero_and_one_are_absolute() {
        let never = FaultPlan::parse("seed=1").unwrap();
        let always = FaultPlan::parse("seed=1,compile=1.0,panic=1").unwrap();
        for k in 0..100 {
            assert!(!never.keyed(Site::CompileFail, k));
            assert!(always.keyed(Site::CompileFail, k));
            assert!(always.transient(Site::WorkerPanic));
        }
        assert_eq!(never.injected_total(), 0);
        assert_eq!(always.injected_total(), 200);
    }

    #[test]
    fn injection_rate_is_statistically_sane() {
        let plan = FaultPlan::parse("seed=42,store.read=0.05").unwrap();
        let hits = (0..10_000)
            .filter(|k| plan.keyed(Site::StoreRead, mix64(*k)))
            .count();
        // 5% of 10k = 500 expected; allow a generous band.
        assert!((300..700).contains(&hits), "got {hits}");
        let counts = plan.injected();
        assert_eq!(counts[Site::StoreRead.code() as usize].1, hits as u64);
    }

    #[test]
    fn breaker_trips_cools_down_and_heals() {
        let mut b = Breaker::new(BreakerConfig {
            threshold: 3,
            cooldown: Duration::from_millis(20),
        });
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.admit());
        assert_eq!(b.record(false), None);
        assert_eq!(b.record(false), None);
        assert_eq!(b.record(false), Some(BreakerEvent::Opened));
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.admit(), "open breaker rejects inside cooldown");
        std::thread::sleep(Duration::from_millis(25));
        assert!(b.admit(), "cooldown elapsed: probe admitted");
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert_eq!(b.record(false), Some(BreakerEvent::Reopened));
        assert_eq!(b.snapshot().trips, 2);
        std::thread::sleep(Duration::from_millis(25));
        assert!(b.admit());
        assert_eq!(b.record(true), Some(BreakerEvent::Closed));
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.snapshot().consecutive_failures, 0);
        // A lone success stays Closed and reports no transition.
        assert_eq!(b.record(true), None);
    }

    #[test]
    fn breaker_state_bytes_round_trip() {
        for s in [
            BreakerState::Closed,
            BreakerState::Open,
            BreakerState::HalfOpen,
        ] {
            assert_eq!(BreakerState::from_byte(s.byte()), Some(s));
        }
        assert_eq!(BreakerState::from_byte(9), None);
    }
}
