//! Open-loop correctness: the latency recording must be
//! coordinated-omission-safe. A closed-loop driver that waits for each
//! result before sending the next *pauses its own clock* while the
//! service stalls, so a stalled worker barely moves the recorded p99.
//! Our open-loop recording measures from intended arrival, so the same
//! stall must *inflate* the tail — that inversion is what this test
//! pins.

use harness::matrix::MatrixCell;
use load::mix::Mix;
use load::run::{execute, Phase, RunConfig, Target};
use svc::job::{JobMode, Scale};

/// A one-cell mix of the cheapest kind of job, so the only latency in
/// play is the latency the test injects.
fn tiny_mix() -> Mix {
    Mix {
        name: "test-single".to_string(),
        cells: vec![MatrixCell {
            benchmark: "crc32",
            engine: engines::EngineKind::Wasmtime,
            level: wacc::OptLevel::O2,
            mode: JobMode::Exec,
        }],
    }
}

fn config(faults: Option<String>) -> RunConfig {
    RunConfig {
        seed: 7,
        mix: tiny_mix(),
        scale: Scale::Test,
        // 25 jobs arriving over ~125ms on a single worker.
        qps: 200.0,
        jobs: 25,
        phases: vec![Phase {
            name: "cold".into(),
            warm: false,
        }],
        target: Target::InProc {
            workers: 1,
            faults,
            store_dir: None,
        },
        collectors: 2,
        stitch: false,
    }
}

#[test]
fn stalled_worker_inflates_recorded_p99() {
    let clean = execute(&config(None)).expect("clean run");
    // Every job sleeps 50ms on the single worker: service capacity is
    // 20 jobs/s against 200/s arrivals, so the backlog (and the
    // intended-arrival latency) must grow throughout the run.
    let stalled = execute(&config(Some("seed=1,delay=1.0:50ms".to_string())))
        .expect("stalled run");

    assert_eq!(clean.artifact.totals.completed, 25);
    assert_eq!(stalled.artifact.totals.completed, 25);

    let clean_p99 = clean.latency.quantile_ns(0.99);
    let stalled_p99 = stalled.latency.quantile_ns(0.99);
    // 25 jobs × 50ms on one worker: the tail job waits most of the
    // ~1.25s backlog. Anything under 400ms would mean the stall was
    // omitted from the recording.
    assert!(
        stalled_p99 > 400_000_000,
        "stalled p99 {} must carry the backlog",
        obs::metrics::fmt_ns(stalled_p99)
    );
    assert!(
        stalled_p99 > 2 * clean_p99,
        "stalled p99 {} must exceed clean p99 {}",
        obs::metrics::fmt_ns(stalled_p99),
        obs::metrics::fmt_ns(clean_p99)
    );
    // The artifact carries the same signal per cell.
    let cell = stalled.artifact.cell("Wasmtime/-O2").expect("cell recorded");
    assert!(cell.p99_ns > 400_000_000, "{}", cell.p99_ns);
    // And the saturation signal: the queue must have backed up well
    // beyond the single worker.
    assert!(
        stalled.artifact.totals.peak_queue_depth >= 5,
        "peak queue {} must show saturation",
        stalled.artifact.totals.peak_queue_depth
    );
}

#[test]
fn inproc_run_emits_a_coherent_artifact() {
    let report = execute(&config(None)).expect("run");
    let a = &report.artifact;
    assert_eq!(a.config.driver, "inproc");
    assert_eq!(a.config.seed, 7);
    assert_eq!(a.totals.submitted, 25);
    assert_eq!(
        a.totals.ok + a.totals.degraded + a.totals.failed,
        a.totals.completed
    );
    assert_eq!(a.totals.protocol_errors, 0);
    assert!(a.totals.qps > 0.0);
    assert_eq!(a.cells.len(), 1);
    assert_eq!(a.cells[0].count, 25);
    assert!(a.cells[0].p50_ns <= a.cells[0].p99_ns);
    assert!(a.cells[0].p99_ns <= a.cells[0].max_ns);
    // The artifact round-trips through its JSON form.
    let back = load::bench::BenchArtifact::parse(&a.to_json()).expect("parses");
    assert_eq!(&back, a);
}
