//! End-to-end request tracing through a real run: every submit carries
//! a deterministic trace id, the collectors record client-side spans,
//! and the post-run stitch against the scheduler's `TraceDump` yields a
//! Chrome trace that validates (the same check `wabench-trace-check`
//! applies).

use harness::matrix::MatrixCell;
use load::mix::Mix;
use load::run::{execute, Phase, RunConfig, Target};
use load::traces;
use svc::job::{JobMode, Scale};

fn tiny_mix() -> Mix {
    Mix {
        name: "test-single".to_string(),
        cells: vec![MatrixCell {
            benchmark: "crc32",
            engine: engines::EngineKind::Wasmtime,
            level: wacc::OptLevel::O2,
            mode: JobMode::Exec,
        }],
    }
}

fn config(stitch: bool) -> RunConfig {
    RunConfig {
        seed: 11,
        mix: tiny_mix(),
        scale: Scale::Test,
        qps: 500.0,
        jobs: 12,
        phases: vec![Phase {
            name: "cold".into(),
            warm: false,
        }],
        target: Target::InProc {
            workers: 2,
            faults: None,
            store_dir: None,
        },
        collectors: 2,
        stitch,
    }
}

#[test]
fn fixed_seed_runs_tag_requests_identically() {
    let ids_of = |report: &load::run::RunReport| {
        let mut ids: Vec<u64> = report.client_spans.iter().map(|s| s.trace_id).collect();
        ids.sort_unstable();
        ids
    };
    let a = execute(&config(false)).expect("first run");
    let b = execute(&config(false)).expect("second run");
    assert_eq!(a.client_spans.len(), 12, "every job collected a span");
    assert_eq!(ids_of(&a), ids_of(&b), "trace ids are a pure function of the seed");

    // And they are exactly the advertised sequence for (seed, phase 0).
    let mut expected = traces::trace_ids(11, 0, 12);
    expected.sort_unstable();
    assert_eq!(ids_of(&a), expected);
}

#[test]
fn stitched_run_produces_valid_chrome_trace() {
    let report = execute(&config(true)).expect("run");
    let trace = report.stitched.expect("stitch requested");
    // Every request contributes a client lane and a server lane.
    assert_eq!(trace.threads.len(), report.client_spans.len() * 2);
    let doc = obs::chrome::export_string(&trace);
    let summary = obs::chrome::validate(&doc).expect("stitched trace validates");
    assert!(summary.names.iter().any(|n| n == "client.request"));
    assert!(summary.names.iter().any(|n| n == "server.job"));
    assert!(summary.names.iter().any(|n| n == "queue.wait"));
    // Server spans sit inside client lanes' time range per request: the
    // server lane root must start no earlier than the client submit
    // (same process ⇒ offset ≈ 0, slack for the midpoint estimate).
    for pair in trace.threads.chunks(2) {
        let client = &pair[0].events[0];
        let server = &pair[1].events[0];
        assert!(
            server.start_ns + 5_000_000 >= client.start_ns,
            "server span starts {} but client submitted {}",
            server.start_ns,
            client.start_ns
        );
    }
}
