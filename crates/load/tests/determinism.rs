//! The determinism contract: a run's arrival schedule and job mix are a
//! pure function of `--seed`, like `wabench-fault` plans — so any BENCH
//! trajectory point can be reproduced exactly from its recorded config.

use load::arrivals;
use load::mix::Mix;

#[test]
fn same_seed_produces_identical_schedule_and_mix() {
    for preset in harness::matrix::PRESETS {
        let mix = Mix::preset(preset).expect("preset resolves");
        for phase in 0..2u64 {
            assert_eq!(
                arrivals::schedule(7, phase, 100, 250.0),
                arrivals::schedule(7, phase, 100, 250.0),
                "{preset} phase {phase}: schedules must match"
            );
            assert_eq!(
                mix.sample(7, phase, 100),
                mix.sample(7, phase, 100),
                "{preset} phase {phase}: mixes must match"
            );
        }
    }
}

#[test]
fn different_seeds_diverge() {
    let mix = Mix::preset("fig1").unwrap();
    assert_ne!(
        arrivals::schedule(7, 0, 100, 250.0),
        arrivals::schedule(8, 0, 100, 250.0)
    );
    assert_ne!(mix.sample(7, 0, 100), mix.sample(8, 0, 100));
}

#[test]
fn warm_and_cold_phases_use_distinct_streams() {
    // Phases salt the stream: the warm phase must not replay the cold
    // phase's arrivals (that would correlate store hits with arrival
    // bursts), but both stay deterministic per seed.
    let mix = Mix::preset("fig1").unwrap();
    assert_ne!(
        arrivals::schedule(7, 0, 100, 250.0),
        arrivals::schedule(7, 1, 100, 250.0)
    );
    assert_ne!(mix.sample(7, 0, 100), mix.sample(7, 1, 100));
}

#[test]
fn schedule_is_independent_of_execution_order() {
    // The schedule is computed up front from the seed alone — nothing
    // about it depends on wall-clock time, so two computations any
    // distance apart agree. (The run loop *sleeps* to these offsets; it
    // never derives them from observed completions.)
    let first = arrivals::schedule(42, 0, 500, 1000.0);
    std::thread::sleep(std::time::Duration::from_millis(20));
    assert_eq!(first, arrivals::schedule(42, 0, 500, 1000.0));
}
