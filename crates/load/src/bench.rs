//! The versioned `BENCH_<timestamp>.json` trajectory artifact.
//!
//! One artifact per load run: the run configuration (including the
//! seed, so any trajectory point can be reproduced exactly), sustained
//! throughput and outcome totals, and per engine×level cell latency
//! quantiles. Artifacts are the input to `wabench-prof diff`'s
//! throughput/SLO gate, so the format is versioned and parsed strictly:
//! readers reject schemas and versions they do not understand.
//!
//! The workspace builds offline with no serialization framework, so the
//! writer is hand-rolled and the reader goes through [`obs::json`],
//! like the `prof` baseline store.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;

use obs::json::{self, Value};

/// Schema tag every artifact carries — how `wabench-prof diff` sniffs a
/// BENCH file apart from a baseline file.
pub const BENCH_SCHEMA: &str = "wabench-bench";

/// Artifact layout version this build writes.
pub const BENCH_VERSION: u64 = 1;

/// The run configuration, echoed into the artifact.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct BenchConfig {
    /// The arrival/mix seed.
    pub seed: u64,
    /// Mix preset name (`fig1`, `arch`, ...).
    pub mix: String,
    /// Workload scale spelling (`test`/`profile`/`timing`).
    pub scale: String,
    /// Target arrival rate, jobs per second.
    pub qps: f64,
    /// Jobs per phase.
    pub jobs: u64,
    /// How the stack was driven: `inproc` or `socket`.
    pub driver: String,
    /// Worker threads (in-process driver; 0 when unknown over a socket).
    pub workers: u64,
    /// Fault plan spec, empty when none was armed.
    pub faults: String,
    /// Comma-joined phase names, in run order (`cold,warm`).
    pub phases: String,
}

/// Run-level outcome totals.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct BenchTotals {
    /// Jobs submitted across all phases.
    pub submitted: u64,
    /// Jobs whose results were collected.
    pub completed: u64,
    /// ... of which clean.
    pub ok: u64,
    /// ... correct but degraded (e.g. interpreter fallback).
    pub degraded: u64,
    /// ... failed/panicked/timed out.
    pub failed: u64,
    /// Transport-level errors talking to the service (0 in-process).
    pub protocol_errors: u64,
    /// Submits the target refused with a protocol v9 `Busy` reply
    /// (router admission control). Refused work, not errors: the run
    /// keeps going and the artifact records how much was turned away.
    pub shed: u64,
    /// Wall seconds from first intended arrival to last collection.
    pub wall_s: f64,
    /// Sustained throughput: completed / wall_s.
    pub qps: f64,
    /// Peak scheduler queue depth (protocol v6 Health; 0 if unknown).
    pub peak_queue_depth: u64,
}

/// Latency summary for one engine×level cell, nanoseconds, measured
/// from *intended* arrival to collected completion.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct BenchCell {
    /// `engine/level` key, e.g. `Wasmtime/-O2`.
    pub cell: String,
    /// Collected completions in the cell.
    pub count: u64,
    /// Mean latency.
    pub mean_ns: u64,
    /// Median.
    pub p50_ns: u64,
    /// 95th percentile.
    pub p95_ns: u64,
    /// 99th percentile.
    pub p99_ns: u64,
    /// Worst observation.
    pub max_ns: u64,
}

/// One live-telemetry sample interval, echoed from the server's
/// protocol v7 `Series` window into the artifact (optional: present
/// only when the run's target was sampling).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct BenchSeriesPoint {
    /// Monotone sample number since the server's sampler started.
    pub seq: u64,
    /// Sample time on the server trace clock, ns.
    pub t_ns: u64,
    /// Nanoseconds the sample covers.
    pub interval_ns: u64,
    /// Jobs completed during the interval.
    pub completed: u64,
    /// ... of which failed.
    pub failed: u64,
    /// Queue depth at sample time.
    pub queue_depth: u64,
    /// Interval job-latency median, ns (0 when idle).
    pub p50_ns: u64,
    /// Interval job-latency p99, ns (0 when idle).
    pub p99_ns: u64,
}

/// Per-shard attribution when the run's target was a `wabench-router`
/// socket, echoed from the protocol v9 `Backends` reply (optional:
/// plain `wabench-served` targets have no routing table and the
/// section stays absent).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct BenchBackend {
    /// Shard name from the router config.
    pub name: String,
    /// Whether the shard's last health probe succeeded.
    pub healthy: bool,
    /// Jobs the router forwarded to this shard.
    pub forwarded: u64,
    /// Jobs diverted off this shard to a ring replica.
    pub failovers: u64,
}

/// One complete trajectory point.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct BenchArtifact {
    /// Run configuration.
    pub config: BenchConfig,
    /// Outcome totals.
    pub totals: BenchTotals,
    /// Per-cell latency summaries, sorted by cell key.
    pub cells: Vec<BenchCell>,
    /// The server's live sample window over the run (empty — and
    /// omitted from the JSON — when the target ran without a sampler,
    /// so v1 artifacts from older writers parse unchanged).
    pub series: Vec<BenchSeriesPoint>,
    /// Per-shard routing attribution (empty — and omitted from the
    /// JSON — when the target was not a router).
    pub backends: Vec<BenchBackend>,
}

impl BenchArtifact {
    /// Serializes the artifact as a single JSON document. `{}` on f64
    /// prints the shortest round-tripping representation.
    pub fn to_json(&self) -> String {
        let c = &self.config;
        let t = &self.totals;
        let mut s = format!(
            "{{\"schema\":\"{BENCH_SCHEMA}\",\"v\":{BENCH_VERSION},\n\
             \"config\":{{\"seed\":{},\"mix\":\"{}\",\"scale\":\"{}\",\"qps\":{},\"jobs\":{},\"driver\":\"{}\",\"workers\":{},\"faults\":\"{}\",\"phases\":\"{}\"}},\n",
            c.seed,
            json::escape(&c.mix),
            json::escape(&c.scale),
            c.qps,
            c.jobs,
            json::escape(&c.driver),
            c.workers,
            json::escape(&c.faults),
            json::escape(&c.phases),
        );
        let _ = writeln!(
            s,
            "\"totals\":{{\"submitted\":{},\"completed\":{},\"ok\":{},\"degraded\":{},\"failed\":{},\"protocol_errors\":{},\"shed\":{},\"wall_s\":{},\"qps\":{},\"peak_queue_depth\":{}}},",
            t.submitted,
            t.completed,
            t.ok,
            t.degraded,
            t.failed,
            t.protocol_errors,
            t.shed,
            t.wall_s,
            t.qps,
            t.peak_queue_depth,
        );
        s.push_str("\"cells\":[");
        let mut sorted: BTreeMap<&str, &BenchCell> = BTreeMap::new();
        for cell in &self.cells {
            sorted.insert(&cell.cell, cell);
        }
        for (i, cell) in sorted.values().enumerate() {
            if i > 0 {
                s.push_str(",\n");
            }
            let _ = write!(
                s,
                "{{\"cell\":\"{}\",\"count\":{},\"mean_ns\":{},\"p50_ns\":{},\"p95_ns\":{},\"p99_ns\":{},\"max_ns\":{}}}",
                json::escape(&cell.cell),
                cell.count,
                cell.mean_ns,
                cell.p50_ns,
                cell.p95_ns,
                cell.p99_ns,
                cell.max_ns,
            );
        }
        s.push(']');
        if !self.series.is_empty() {
            s.push_str(",\n\"series\":[");
            for (i, p) in self.series.iter().enumerate() {
                if i > 0 {
                    s.push_str(",\n");
                }
                let _ = write!(
                    s,
                    "{{\"seq\":{},\"t_ns\":{},\"interval_ns\":{},\"completed\":{},\"failed\":{},\"queue_depth\":{},\"p50_ns\":{},\"p99_ns\":{}}}",
                    p.seq,
                    p.t_ns,
                    p.interval_ns,
                    p.completed,
                    p.failed,
                    p.queue_depth,
                    p.p50_ns,
                    p.p99_ns,
                );
            }
            s.push(']');
        }
        if !self.backends.is_empty() {
            s.push_str(",\n\"backends\":[");
            for (i, b) in self.backends.iter().enumerate() {
                if i > 0 {
                    s.push_str(",\n");
                }
                let _ = write!(
                    s,
                    "{{\"name\":\"{}\",\"healthy\":{},\"forwarded\":{},\"failovers\":{}}}",
                    json::escape(&b.name),
                    b.healthy,
                    b.forwarded,
                    b.failovers,
                );
            }
            s.push(']');
        }
        s.push_str("}\n");
        s
    }

    /// Parses an artifact document.
    ///
    /// # Errors
    ///
    /// A message on malformed JSON, a wrong schema tag, an unsupported
    /// version, or a missing field.
    pub fn parse(doc: &str) -> Result<BenchArtifact, String> {
        let v = json::parse(doc)?;
        match v.get("schema").and_then(Value::as_str) {
            Some(BENCH_SCHEMA) => {}
            Some(other) => return Err(format!("not a BENCH artifact (schema {other:?})")),
            None => return Err("not a BENCH artifact (no schema tag)".to_string()),
        }
        let version = num(&v, "v")? as u64;
        if version == 0 || version > BENCH_VERSION {
            return Err(format!(
                "unsupported BENCH version {version} (this build reads up to v{BENCH_VERSION})"
            ));
        }
        let c = v.get("config").ok_or("missing config object")?;
        let t = v.get("totals").ok_or("missing totals object")?;
        let cells_v = v
            .get("cells")
            .and_then(Value::as_arr)
            .ok_or("missing cells array")?;
        let mut cells = Vec::with_capacity(cells_v.len());
        for cv in cells_v {
            cells.push(BenchCell {
                cell: str_field(cv, "cell")?,
                count: num(cv, "count")? as u64,
                mean_ns: num(cv, "mean_ns")? as u64,
                p50_ns: num(cv, "p50_ns")? as u64,
                p95_ns: num(cv, "p95_ns")? as u64,
                p99_ns: num(cv, "p99_ns")? as u64,
                max_ns: num(cv, "max_ns")? as u64,
            });
        }
        // `backends` is optional: absent (non-router targets, older
        // writers) means empty.
        let mut backends = Vec::new();
        if let Some(backends_v) = v.get("backends").and_then(Value::as_arr) {
            for bv in backends_v {
                backends.push(BenchBackend {
                    name: str_field(bv, "name")?,
                    healthy: matches!(bv.get("healthy"), Some(Value::Bool(true))),
                    forwarded: num(bv, "forwarded")? as u64,
                    failovers: num(bv, "failovers")? as u64,
                });
            }
        }
        // `series` is optional: absent (pre-telemetry writers, sampler
        // off) means empty.
        let mut series = Vec::new();
        if let Some(series_v) = v.get("series").and_then(Value::as_arr) {
            for sv in series_v {
                series.push(BenchSeriesPoint {
                    seq: num(sv, "seq")? as u64,
                    t_ns: num(sv, "t_ns")? as u64,
                    interval_ns: num(sv, "interval_ns")? as u64,
                    completed: num(sv, "completed")? as u64,
                    failed: num(sv, "failed")? as u64,
                    queue_depth: num(sv, "queue_depth")? as u64,
                    p50_ns: num(sv, "p50_ns")? as u64,
                    p99_ns: num(sv, "p99_ns")? as u64,
                });
            }
        }
        Ok(BenchArtifact {
            config: BenchConfig {
                seed: num(c, "seed")? as u64,
                mix: str_field(c, "mix")?,
                scale: str_field(c, "scale")?,
                qps: num(c, "qps")?,
                jobs: num(c, "jobs")? as u64,
                driver: str_field(c, "driver")?,
                workers: num(c, "workers")? as u64,
                faults: str_field(c, "faults")?,
                phases: str_field(c, "phases")?,
            },
            totals: BenchTotals {
                submitted: num(t, "submitted")? as u64,
                completed: num(t, "completed")? as u64,
                ok: num(t, "ok")? as u64,
                degraded: num(t, "degraded")? as u64,
                failed: num(t, "failed")? as u64,
                protocol_errors: num(t, "protocol_errors")? as u64,
                // Absent in artifacts written before routed serving.
                shed: t.get("shed").and_then(Value::as_num).unwrap_or(0.0) as u64,
                wall_s: num(t, "wall_s")?,
                qps: num(t, "qps")?,
                peak_queue_depth: num(t, "peak_queue_depth")? as u64,
            },
            cells,
            series,
            backends,
        })
    }

    /// Reads an artifact file.
    ///
    /// # Errors
    ///
    /// I/O failures and parse errors, both prefixed with the path.
    pub fn read_file(path: &Path) -> Result<BenchArtifact, String> {
        let doc =
            std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        BenchArtifact::parse(&doc).map_err(|e| format!("{}: {e}", path.display()))
    }

    /// Whether a document looks like a BENCH artifact (cheap sniff for
    /// `wabench-prof diff`, which also accepts JSON-lines baselines).
    pub fn sniff(doc: &str) -> bool {
        doc.trim_start()
            .starts_with(&format!("{{\"schema\":\"{BENCH_SCHEMA}\""))
    }

    /// The latency summary for `cell`, if recorded.
    pub fn cell(&self, cell: &str) -> Option<&BenchCell> {
        self.cells.iter().find(|c| c.cell == cell)
    }
}

fn num(v: &Value, key: &str) -> Result<f64, String> {
    v.get(key)
        .and_then(Value::as_num)
        .ok_or_else(|| format!("missing numeric field {key:?}"))
}

fn str_field(v: &Value, key: &str) -> Result<String, String> {
    Ok(v.get(key)
        .and_then(Value::as_str)
        .ok_or_else(|| format!("missing string field {key:?}"))?
        .to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BenchArtifact {
        BenchArtifact {
            config: BenchConfig {
                seed: 7,
                mix: "fig1".into(),
                scale: "test".into(),
                qps: 200.0,
                jobs: 40,
                driver: "socket".into(),
                workers: 4,
                faults: String::new(),
                phases: "cold,warm".into(),
            },
            totals: BenchTotals {
                submitted: 80,
                completed: 80,
                ok: 78,
                degraded: 1,
                failed: 1,
                protocol_errors: 0,
                shed: 0,
                wall_s: 0.4125,
                qps: 193.9,
                peak_queue_depth: 9,
            },
            cells: vec![
                BenchCell {
                    cell: "wasm3/-O2".into(),
                    count: 41,
                    mean_ns: 900_000,
                    p50_ns: 800_000,
                    p95_ns: 2_000_000,
                    p99_ns: 3_500_000,
                    max_ns: 4_000_000,
                },
                BenchCell {
                    cell: "wasmtime/-O2".into(),
                    count: 39,
                    mean_ns: 500_000,
                    p50_ns: 400_000,
                    p95_ns: 1_000_000,
                    p99_ns: 1_500_000,
                    max_ns: 1_600_000,
                },
            ],
            series: Vec::new(),
            backends: Vec::new(),
        }
    }

    #[test]
    fn artifacts_round_trip_exactly() {
        let a = sample();
        assert_eq!(BenchArtifact::parse(&a.to_json()).expect("parses"), a);
    }

    #[test]
    fn series_window_round_trips_and_is_omitted_when_empty() {
        let mut a = sample();
        assert!(
            !a.to_json().contains("\"series\""),
            "empty window stays off the wire for v1 compatibility"
        );
        a.series = vec![
            BenchSeriesPoint {
                seq: 3,
                t_ns: 1_000_000,
                interval_ns: 250_000_000,
                completed: 40,
                failed: 1,
                queue_depth: 6,
                p50_ns: 700_000,
                p99_ns: 3_000_000,
            },
            BenchSeriesPoint {
                seq: 4,
                t_ns: 251_000_000,
                interval_ns: 250_000_000,
                completed: 38,
                failed: 0,
                queue_depth: 2,
                p50_ns: 650_000,
                p99_ns: 2_100_000,
            },
        ];
        let back = BenchArtifact::parse(&a.to_json()).expect("parses");
        assert_eq!(back, a);
        assert_eq!(back.series.len(), 2);
    }

    #[test]
    fn backends_section_round_trips_and_is_omitted_when_absent() {
        let mut a = sample();
        assert!(
            !a.to_json().contains("\"backends\""),
            "non-router runs must not grow a backends section"
        );
        a.totals.shed = 3;
        a.backends = vec![
            BenchBackend {
                name: "shard-0".into(),
                healthy: true,
                forwarded: 50,
                failovers: 0,
            },
            BenchBackend {
                name: "shard-1".into(),
                healthy: false,
                forwarded: 27,
                failovers: 3,
            },
        ];
        let back = BenchArtifact::parse(&a.to_json()).expect("parses");
        assert_eq!(back, a);
        assert_eq!(back.totals.shed, 3);
        assert!(!back.backends[1].healthy);
    }

    #[test]
    fn pre_router_totals_without_shed_still_parse() {
        let doc = sample().to_json().replace("\"shed\":0,", "");
        let back = BenchArtifact::parse(&doc).expect("old artifact parses");
        assert_eq!(back.totals.shed, 0);
    }

    #[test]
    fn sniff_separates_artifacts_from_baselines() {
        assert!(BenchArtifact::sniff(&sample().to_json()));
        assert!(!BenchArtifact::sniff("{\"v\":2,\"bench\":\"crc32\"}"));
        assert!(!BenchArtifact::sniff("not json"));
    }

    #[test]
    fn wrong_schema_and_future_versions_are_rejected() {
        let doc = sample().to_json().replace(BENCH_SCHEMA, "other-schema");
        let err = BenchArtifact::parse(&doc).expect_err("must reject");
        assert!(err.contains("schema"), "{err}");
        let doc = sample().to_json().replace("\"v\":1", "\"v\":99");
        let err = BenchArtifact::parse(&doc).expect_err("must reject");
        assert!(err.contains("version 99"), "{err}");
    }

    #[test]
    fn cells_serialize_sorted_by_key() {
        let mut a = sample();
        a.cells.reverse();
        let back = BenchArtifact::parse(&a.to_json()).expect("parses");
        assert_eq!(back.cells[0].cell, "wasm3/-O2");
        assert_eq!(back.cells[1].cell, "wasmtime/-O2");
        assert!(back.cell("wasmtime/-O2").is_some());
        assert!(back.cell("wavm/-O2").is_none());
    }
}
