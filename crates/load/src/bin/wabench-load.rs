//! `wabench-load` — the open-loop load generator.
//!
//! ```text
//! wabench-load run      --seed N [--mix fig1] [--scale test] [--qps Q] [--jobs N]
//!                       [--phases cold,warm] [--socket PATH | --workers N [--faults PLAN] [--store DIR]]
//!                       [--collectors N] [--out PATH] [--stitch-out FILE] [--log LEVEL]
//! wabench-load schedule --seed N [--mix fig1] [--qps Q] [--jobs N] [--phase I] [--head K]
//! ```
//!
//! `run` drives the stack — in-process by default, or a live
//! `wabench-served` daemon with `--socket` — with seeded Poisson
//! arrivals sampled from a figure matrix, records latency from each
//! job's *intended* arrival (coordinated-omission-safe), prints a
//! summary, and writes a versioned `BENCH_<timestamp>.json` trajectory
//! artifact (to `--out`, a file or directory; default the current
//! directory). Exit code 0 only if jobs completed and no protocol
//! errors occurred — `wabench-prof diff` consumes the artifact for the
//! throughput/SLO gate.
//!
//! Every submit carries a deterministic client-originated trace id
//! (protocol v7). `--stitch-out FILE` fetches the server's `TraceDump`
//! after the run, estimates the clock offset from the fetch round-trip,
//! stitches the client `submit → response` spans against the server
//! queue/compile/execute spans, and writes one Chrome trace that
//! `wabench-trace-check` accepts.
//!
//! `schedule` prints the first arrivals and sampled cells for a seed
//! without running anything: the determinism contract, inspectable.

use std::path::PathBuf;
use std::process::exit;

use load::mix::Mix;
use load::run::{execute, Phase, RunConfig, Target};
use load::{arrivals, scale_name};
use svc::job::Scale;

fn usage() -> ! {
    obs::error!(
        "usage: wabench-load <run|schedule> [options]\n\
         \n\
         run      --seed N [--mix fig1|fig2|fig3|fig4|arch] [--scale test|profile|timing]\n\
         \x20        [--qps Q] [--jobs N] [--phases cold,warm]\n\
         \x20        [--socket PATH | --workers N [--faults PLAN] [--store DIR]]\n\
         \x20        [--collectors N] [--out PATH] [--stitch-out FILE]\n\
         schedule --seed N [--mix fig1] [--qps Q] [--jobs N] [--phase I] [--head K]\n\
         \n\
         common: --log error|warn|info|debug (overrides WABENCH_LOG)\n\
         PLAN is a wabench-fault spec like 'seed=7,compile=0.05,delay=0.05:2ms'"
    );
    exit(2);
}

fn take_value(args: &[String], i: &mut usize, flag: &str) -> String {
    *i += 1;
    match args.get(*i) {
        Some(v) => v.clone(),
        None => {
            obs::error!("missing value for {flag}");
            usage();
        }
    }
}

struct Opts {
    seed: u64,
    mix: String,
    scale: Scale,
    qps: f64,
    jobs: usize,
    phases: String,
    socket: Option<PathBuf>,
    workers: usize,
    faults: Option<String>,
    store: Option<PathBuf>,
    collectors: usize,
    out: Option<PathBuf>,
    stitch_out: Option<PathBuf>,
    phase: u64,
    head: usize,
}

fn parse_opts(args: &[String]) -> Opts {
    let mut o = Opts {
        seed: 7,
        mix: "fig1".to_string(),
        scale: Scale::Test,
        qps: 100.0,
        jobs: 50,
        phases: "cold,warm".to_string(),
        socket: None,
        workers: 4,
        faults: None,
        store: None,
        collectors: 0,
        out: None,
        stitch_out: None,
        phase: 0,
        head: 10,
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--seed" => {
                o.seed = take_value(args, &mut i, "--seed").parse().unwrap_or_else(|_| {
                    obs::error!("--seed needs an integer");
                    usage();
                })
            }
            "--mix" => o.mix = take_value(args, &mut i, "--mix"),
            "--scale" => {
                let v = take_value(args, &mut i, "--scale");
                o.scale = Scale::parse(&v).unwrap_or_else(|| {
                    obs::error!("unknown scale {v:?}");
                    usage();
                })
            }
            "--qps" => {
                o.qps = take_value(args, &mut i, "--qps")
                    .parse()
                    .ok()
                    .filter(|q: &f64| q.is_finite() && *q > 0.0)
                    .unwrap_or_else(|| {
                        obs::error!("--qps needs a positive number");
                        usage();
                    })
            }
            "--jobs" => {
                o.jobs = take_value(args, &mut i, "--jobs")
                    .parse()
                    .ok()
                    .filter(|n| *n > 0)
                    .unwrap_or_else(|| {
                        obs::error!("--jobs needs a positive integer");
                        usage();
                    })
            }
            "--phases" => o.phases = take_value(args, &mut i, "--phases"),
            "--socket" => o.socket = Some(PathBuf::from(take_value(args, &mut i, "--socket"))),
            "--workers" => {
                o.workers = take_value(args, &mut i, "--workers")
                    .parse()
                    .ok()
                    .filter(|n| *n > 0)
                    .unwrap_or_else(|| {
                        obs::error!("--workers needs a positive integer");
                        usage();
                    })
            }
            "--faults" => o.faults = Some(take_value(args, &mut i, "--faults")),
            "--store" => o.store = Some(PathBuf::from(take_value(args, &mut i, "--store"))),
            "--collectors" => {
                o.collectors = take_value(args, &mut i, "--collectors")
                    .parse()
                    .unwrap_or_else(|_| {
                        obs::error!("--collectors needs an integer");
                        usage();
                    })
            }
            "--out" => o.out = Some(PathBuf::from(take_value(args, &mut i, "--out"))),
            "--stitch-out" => {
                o.stitch_out = Some(PathBuf::from(take_value(args, &mut i, "--stitch-out")))
            }
            "--log" => {
                let v = take_value(args, &mut i, "--log");
                match obs::logger::Level::parse(&v) {
                    Some(lvl) => obs::logger::set_level(lvl),
                    None => {
                        obs::error!("unknown log level {v:?} (use error|warn|info|debug)");
                        usage();
                    }
                }
            }
            "--phase" => {
                o.phase = take_value(args, &mut i, "--phase").parse().unwrap_or_else(|_| {
                    obs::error!("--phase needs an integer");
                    usage();
                })
            }
            "--head" => {
                o.head = take_value(args, &mut i, "--head").parse().unwrap_or_else(|_| {
                    obs::error!("--head needs an integer");
                    usage();
                })
            }
            other => {
                obs::error!("unknown option {other}");
                usage();
            }
        }
        i += 1;
    }
    o
}

fn resolve_mix(name: &str) -> Mix {
    Mix::preset(name).unwrap_or_else(|| {
        obs::error!(
            "unknown mix {name:?} (presets: {})",
            harness::matrix::PRESETS.join(", ")
        );
        usage();
    })
}

/// Where the artifact lands: `--out` as given when it names a file, a
/// timestamped `BENCH_*.json` inside it when it is a directory (default
/// the current directory).
fn artifact_path(out: &Option<PathBuf>) -> PathBuf {
    let stamp = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    let name = format!("BENCH_{stamp}.json");
    match out {
        Some(p) if p.is_dir() => p.join(name),
        Some(p) => p.clone(),
        None => PathBuf::from(name),
    }
}

fn cmd_run(o: &Opts) {
    let phases = Phase::parse_list(&o.phases).unwrap_or_else(|e| {
        obs::error!("--phases: {e}");
        usage();
    });
    let target = match &o.socket {
        Some(path) => Target::Socket { path: path.clone() },
        None => Target::InProc {
            workers: o.workers,
            faults: o.faults.clone(),
            store_dir: o.store.clone(),
        },
    };
    let cfg = RunConfig {
        seed: o.seed,
        mix: resolve_mix(&o.mix),
        scale: o.scale,
        qps: o.qps,
        jobs: o.jobs,
        phases,
        target,
        collectors: o.collectors,
        stitch: o.stitch_out.is_some(),
    };
    let report = execute(&cfg).unwrap_or_else(|e| {
        obs::error!("load run failed: {e}");
        exit(1);
    });
    let a = &report.artifact;
    let t = &a.totals;
    println!(
        "load run: seed {} mix {} scale {} target {:.0} qps → sustained {:.1} qps over {:.2}s",
        a.config.seed, a.config.mix, a.config.scale, a.config.qps, t.qps, t.wall_s
    );
    println!(
        "jobs: {} submitted, {} completed ({} ok, {} degraded, {} failed), {} protocol errors, {} shed, peak queue {}",
        t.submitted, t.completed, t.ok, t.degraded, t.failed, t.protocol_errors, t.shed, t.peak_queue_depth
    );
    for b in &a.backends {
        println!(
            "shard {} [{}]: {} forwarded, {} failovers",
            b.name,
            if b.healthy { "healthy" } else { "DOWN" },
            b.forwarded,
            b.failovers,
        );
    }
    println!("latency: {}", report.latency.summary());
    for cell in &a.cells {
        println!(
            "cell {}: n={} p50={} p95={} p99={} max={}",
            cell.cell,
            cell.count,
            obs::metrics::fmt_ns(cell.p50_ns),
            obs::metrics::fmt_ns(cell.p95_ns),
            obs::metrics::fmt_ns(cell.p99_ns),
            obs::metrics::fmt_ns(cell.max_ns),
        );
    }
    let path = artifact_path(&o.out);
    if let Err(e) = std::fs::write(&path, a.to_json()) {
        obs::error!("writing {}: {e}", path.display());
        exit(1);
    }
    println!("artifact: {}", path.display());
    if let (Some(stitch_path), Some(trace)) = (&o.stitch_out, &report.stitched) {
        match obs::chrome::export_file(trace, stitch_path) {
            Ok(()) => println!(
                "stitched trace: {} ({} requests)",
                stitch_path.display(),
                trace.threads.len() / 2
            ),
            Err(e) => {
                obs::error!("writing {}: {e}", stitch_path.display());
                exit(1);
            }
        }
    }
    if t.completed == 0 || t.protocol_errors > 0 {
        obs::error!("run unhealthy: {} completed, {} protocol errors", t.completed, t.protocol_errors);
        exit(1);
    }
}

fn cmd_schedule(o: &Opts) {
    let mix = resolve_mix(&o.mix);
    let schedule = arrivals::schedule(o.seed, o.phase, o.jobs, o.qps);
    let sample = mix.sample(o.seed, o.phase, o.jobs);
    println!(
        "schedule: seed {} phase {} mix {} ({} cells) {} jobs at {} qps, scale {}",
        o.seed,
        o.phase,
        mix.name,
        mix.cells.len(),
        o.jobs,
        o.qps,
        scale_name(o.scale),
    );
    for (i, (offset, &cell)) in schedule.iter().zip(&sample).take(o.head).enumerate() {
        let c = &mix.cells[cell];
        println!(
            "{i:4}  +{:>10.3}ms  {} on {} at {} ({:?})",
            offset.as_secs_f64() * 1e3,
            c.benchmark,
            c.engine.name(),
            c.level,
            c.mode,
        );
    }
    if o.jobs > o.head {
        println!("... {} more", o.jobs - o.head);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else { usage() };
    let o = parse_opts(&args[1..]);
    match cmd.as_str() {
        "run" => cmd_run(&o),
        "schedule" => cmd_schedule(&o),
        _ => usage(),
    }
}
