//! Job mixes: which cells a run draws its jobs from.
//!
//! A mix is a named set of [`harness::matrix`] cells plus a
//! deterministic sampler. The presets are exactly the paper's figure
//! matrices, so the traffic a load run generates is made of cells the
//! figures actually measure.

use harness::matrix::{self, MatrixCell};
use svc::job::{JobSpec, Scale};

use crate::rng::Rng;

/// Job-mix draws use this salt stream (disjoint from arrivals).
const MIX_SALT: u64 = 0x317;

/// A named set of matrix cells to draw jobs from.
#[derive(Debug, Clone)]
pub struct Mix {
    /// Preset name (recorded in the BENCH artifact).
    pub name: String,
    /// The cells; sampling is uniform over this list.
    pub cells: Vec<MatrixCell>,
}

impl Mix {
    /// Resolves a [`harness::matrix`] preset name.
    pub fn preset(name: &str) -> Option<Mix> {
        Some(Mix {
            name: name.to_string(),
            cells: matrix::preset(name)?,
        })
    }

    /// Draws `n` cell indexes, deterministic in `(seed, phase)`.
    pub fn sample(&self, seed: u64, phase: u64, n: usize) -> Vec<usize> {
        let mut rng = Rng::new(seed, MIX_SALT ^ phase);
        (0..n).map(|_| rng.next_index(self.cells.len())).collect()
    }

    /// The job for one sampled index.
    pub fn spec(&self, index: usize, scale: Scale, warm: bool) -> JobSpec {
        self.cells[index].spec(scale, warm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_resolve_and_unknown_names_do_not() {
        for name in matrix::PRESETS {
            let mix = Mix::preset(name).expect("preset resolves");
            assert!(!mix.cells.is_empty());
            assert_eq!(mix.name, name);
        }
        assert!(Mix::preset("nope").is_none());
    }

    #[test]
    fn sampling_is_deterministic_and_in_range() {
        let mix = Mix::preset("fig1").unwrap();
        let a = mix.sample(7, 0, 200);
        assert_eq!(a, mix.sample(7, 0, 200));
        assert_ne!(a, mix.sample(8, 0, 200));
        assert_ne!(a, mix.sample(7, 1, 200));
        assert!(a.iter().all(|&i| i < mix.cells.len()));
        // 200 draws over a 250-cell matrix must not collapse onto one
        // cell — the sampler actually spreads.
        let first = a[0];
        assert!(a.iter().any(|&i| i != first));
    }
}
