//! The load generator's deterministic random stream.
//!
//! Built on [`fault::mix64`] (a SplitMix64 finalizer) exactly like the
//! fault plans: a run is a pure function of its `--seed`, so two runs
//! with the same seed produce identical arrival schedules and job
//! mixes — the property the determinism tests pin.

/// A counter-mode SplitMix64 stream.
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

/// The SplitMix64 increment (odd, so the counter orbit covers all 2^64
/// states).
const GOLDEN: u64 = 0x9e37_79b9_7f4a_7c15;

impl Rng {
    /// A stream seeded from `seed`, independent per `salt` — phases use
    /// distinct salts so cold and warm draws do not correlate.
    pub fn new(seed: u64, salt: u64) -> Rng {
        Rng {
            state: fault::mix64(seed ^ fault::mix64(salt.wrapping_add(GOLDEN))),
        }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN);
        fault::mix64(self.state)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 mantissa bits, the standard uniform-double construction.
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform index in `[0, n)`; 0 when `n == 0`.
    pub fn next_index(&mut self, n: usize) -> usize {
        if n == 0 {
            0
        } else {
            (self.next_u64() % n as u64) as usize
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::new(7, 0);
        let mut b = Rng::new(7, 0);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn salts_decorrelate_phases() {
        let mut a = Rng::new(7, 0);
        let mut b = Rng::new(7, 1);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0, "salted streams must diverge");
    }

    #[test]
    fn f64_draws_stay_in_unit_interval() {
        let mut r = Rng::new(42, 3);
        for _ in 0..1000 {
            let u = r.next_f64();
            assert!((0.0..1.0).contains(&u), "{u}");
        }
    }
}
