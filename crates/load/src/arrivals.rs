//! Open-loop arrival schedules.
//!
//! A schedule is the list of *intended* submission offsets from the
//! start of a phase. The generator sleeps until each offset and submits
//! without waiting for earlier jobs — if the service falls behind, the
//! backlog (and the recorded latency) grows, exactly as a real queue
//! would. Latency is later measured from these intended offsets, never
//! from the (possibly delayed) send time, which is what makes the
//! recording coordinated-omission-safe.

use std::time::Duration;

use crate::rng::Rng;

/// Inter-arrival draws use this salt stream.
const ARRIVAL_SALT: u64 = 0xa11;

/// A Poisson process arrival schedule: `n` offsets at an average of
/// `qps` arrivals per second, deterministic in `(seed, phase)`.
///
/// # Panics
///
/// Panics if `qps` is not finite and positive — the CLI validates
/// before calling.
pub fn schedule(seed: u64, phase: u64, n: usize, qps: f64) -> Vec<Duration> {
    assert!(qps.is_finite() && qps > 0.0, "qps must be positive");
    let mut rng = Rng::new(seed, ARRIVAL_SALT ^ phase);
    let mut at = 0.0f64;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        // Inverse-CDF exponential inter-arrival; 1-u is in (0, 1] so the
        // log is finite.
        let u = rng.next_f64();
        at += -(1.0 - u).ln() / qps;
        out.push(Duration::from_secs_f64(at));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedules_are_deterministic_per_seed_and_phase() {
        assert_eq!(schedule(7, 0, 50, 100.0), schedule(7, 0, 50, 100.0));
        assert_ne!(schedule(7, 0, 50, 100.0), schedule(8, 0, 50, 100.0));
        assert_ne!(schedule(7, 0, 50, 100.0), schedule(7, 1, 50, 100.0));
    }

    #[test]
    fn offsets_increase_and_track_the_rate() {
        let s = schedule(42, 0, 2_000, 500.0);
        for w in s.windows(2) {
            assert!(w[0] < w[1], "offsets must be strictly increasing");
        }
        // 2000 arrivals at 500/s should span ~4s; allow wide slack, the
        // point is the rate parameter is honored, not tight statistics.
        let span = s.last().unwrap().as_secs_f64();
        assert!((2.0..8.0).contains(&span), "span {span}");
    }

    #[test]
    #[should_panic(expected = "qps must be positive")]
    fn zero_rate_is_refused() {
        schedule(1, 0, 1, 0.0);
    }
}
