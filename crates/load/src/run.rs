//! The open-loop run loop.
//!
//! One submitter thread walks the arrival schedule: it sleeps until
//! each *intended* arrival offset, submits the sampled job without
//! waiting for earlier results, and hands `(job id, intended instant,
//! cell)` to a pool of collector threads. Collectors block on results
//! and record latency as `collection time − intended arrival` into
//! [`obs::metrics::Histogram`]s — never from the send time, so a
//! stalled service *inflates* the recorded tail instead of silently
//! pausing the clock (the coordinated-omission trap a closed-loop
//! driver falls into).

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Instant;

use obs::metrics::{Histogram, HistogramSnapshot};
use obs::stitch::ClientSpan;
use obs::trace::Trace;
use svc::job::{JobResult, Outcome, Scale, TraceCtx};
use svc::scheduler::{Config, HealthReport, Scheduler};
use svc::proto::BackendsReport;
use svc::server::{Client, Submission};
use svc::telemetry::{SeriesReport, TraceReport};

use crate::bench::{
    BenchArtifact, BenchBackend, BenchCell, BenchConfig, BenchSeriesPoint, BenchTotals,
};
use crate::mix::Mix;
use crate::{arrivals, scale_name, traces};

/// What the generator drives.
#[derive(Debug, Clone)]
pub enum Target {
    /// An in-process scheduler (spun up and torn down by the run).
    InProc {
        /// Worker threads.
        workers: usize,
        /// Fault plan spec (`wabench-fault` grammar), if any.
        faults: Option<String>,
        /// Artifact-store directory for warm-phase hits, if any.
        store_dir: Option<PathBuf>,
    },
    /// A live `wabench-served` daemon over its Unix socket.
    Socket {
        /// Socket path.
        path: PathBuf,
    },
}

/// One run phase: a full arrival schedule at one warm/cold setting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Phase {
    /// `cold` or `warm` (recorded in the artifact).
    pub name: String,
    /// Whether jobs consult the artifact store.
    pub warm: bool,
}

impl Phase {
    /// Parses a comma-joined phase list (`cold`, `warm`, `cold,warm`).
    ///
    /// # Errors
    ///
    /// A message naming the unknown phase.
    pub fn parse_list(s: &str) -> Result<Vec<Phase>, String> {
        s.split(',')
            .map(|p| match p.trim() {
                "cold" => Ok(Phase {
                    name: "cold".into(),
                    warm: false,
                }),
                "warm" => Ok(Phase {
                    name: "warm".into(),
                    warm: true,
                }),
                other => Err(format!("unknown phase {other:?} (want cold or warm)")),
            })
            .collect()
    }
}

/// A full run description.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Seed for arrivals and the job mix.
    pub seed: u64,
    /// The job mix.
    pub mix: Mix,
    /// Workload scale.
    pub scale: Scale,
    /// Target arrival rate, jobs per second.
    pub qps: f64,
    /// Jobs per phase.
    pub jobs: usize,
    /// Phases, in order.
    pub phases: Vec<Phase>,
    /// What to drive.
    pub target: Target,
    /// Collector threads (0 = pick from the target).
    pub collectors: usize,
    /// Fetch the server's `TraceDump` after the run and stitch it
    /// against the collected client spans into [`RunReport::stitched`].
    pub stitch: bool,
}

/// What a run produced: the artifact plus the overall latency shape.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// The trajectory artifact (serialize with
    /// [`BenchArtifact::to_json`]).
    pub artifact: BenchArtifact,
    /// All-cell latency distribution, for human summaries.
    pub latency: HistogramSnapshot,
    /// Client-side `submit → response` spans, one per collected job,
    /// keyed by the deterministic trace ids ([`traces::trace_ids`]).
    pub client_spans: Vec<ClientSpan>,
    /// The stitched client+server Chrome trace, when
    /// [`RunConfig::stitch`] was set and the dump matched any spans.
    pub stitched: Option<Trace>,
}

/// Either side of the service boundary, submit half.
enum Submitter {
    InProc(Arc<Scheduler>),
    Socket(Client),
}

impl Submitter {
    /// Submits, distinguishing a router's `Busy` admission refusal
    /// (protocol v9) from a transport failure. In-process targets have
    /// no admission layer and always accept.
    fn submit_traced(
        &mut self,
        spec: svc::job::JobSpec,
        ctx: TraceCtx,
    ) -> Result<Submission, String> {
        match self {
            Submitter::InProc(s) => Ok(Submission::Accepted(s.submit_traced(spec, ctx))),
            Submitter::Socket(c) => c.try_submit_traced(spec, ctx).map_err(|e| e.to_string()),
        }
    }

    /// The router's routing table, when the target is one. Plain
    /// `wabench-served` shards refuse `Backends` with an `Err` reply
    /// and in-process targets have no routing tier — both yield `None`
    /// and the artifact's backends section stays absent.
    fn backends(&mut self) -> Option<BackendsReport> {
        match self {
            Submitter::InProc(_) => None,
            Submitter::Socket(c) => c.backends().ok(),
        }
    }

    fn health(&mut self) -> Result<HealthReport, String> {
        match self {
            Submitter::InProc(s) => Ok(s.health()),
            Submitter::Socket(c) => c.health().map_err(|e| e.to_string()),
        }
    }

    fn trace_dump(&mut self) -> Result<TraceReport, String> {
        match self {
            Submitter::InProc(s) => Ok(s.trace_dump()),
            Submitter::Socket(c) => c.trace_dump().map_err(|e| e.to_string()),
        }
    }

    fn series(&mut self) -> Result<SeriesReport, String> {
        match self {
            Submitter::InProc(s) => Ok(s.series()),
            Submitter::Socket(c) => c.series().map_err(|e| e.to_string()),
        }
    }
}

/// Shared tallies the collectors update.
#[derive(Default)]
struct Tallies {
    completed: AtomicU64,
    ok: AtomicU64,
    degraded: AtomicU64,
    failed: AtomicU64,
    protocol_errors: AtomicU64,
    shed: AtomicU64,
}

impl Tallies {
    fn record(&self, res: &JobResult) {
        self.completed.fetch_add(1, Ordering::Relaxed);
        match res.outcome() {
            Outcome::Clean => self.ok.fetch_add(1, Ordering::Relaxed),
            Outcome::Degraded => self.degraded.fetch_add(1, Ordering::Relaxed),
            Outcome::Failed => self.failed.fetch_add(1, Ordering::Relaxed),
        };
    }
}

/// Executes a run: all phases, latency recording, artifact assembly.
///
/// # Errors
///
/// Configuration errors (bad fault plan, empty mix), store I/O errors,
/// and a failure to *connect* to a socket target. Per-job transport
/// errors do not abort the run — they are tallied as
/// `protocol_errors` in the artifact.
pub fn execute(cfg: &RunConfig) -> Result<RunReport, String> {
    if cfg.mix.cells.is_empty() {
        return Err("job mix has no cells".to_string());
    }
    if !(cfg.qps.is_finite() && cfg.qps > 0.0) {
        return Err("qps must be positive".to_string());
    }
    if cfg.jobs == 0 || cfg.phases.is_empty() {
        return Err("need at least one job and one phase".to_string());
    }

    // Spin up / connect to the target.
    let (mut submitter, sched, workers, faults_spec) = match &cfg.target {
        Target::InProc {
            workers,
            faults,
            store_dir,
        } => {
            let plan = match faults {
                Some(spec) => Some(Arc::new(
                    fault::FaultPlan::parse(spec).map_err(|e| format!("--faults: {e}"))?,
                )),
                None => None,
            };
            let sched = Arc::new(
                Scheduler::start(Config {
                    workers: (*workers).max(1),
                    store_dir: store_dir.clone(),
                    faults: plan,
                    ..Config::default()
                })
                .map_err(|e| format!("scheduler start: {e}"))?,
            );
            (
                Submitter::InProc(Arc::clone(&sched)),
                Some(sched),
                (*workers).max(1) as u64,
                faults.clone().unwrap_or_default(),
            )
        }
        Target::Socket { path } => (
            Submitter::Socket(
                Client::connect(path).map_err(|e| format!("connect {}: {e}", path.display()))?,
            ),
            None,
            0,
            String::new(),
        ),
    };

    // One histogram per engine×level cell key, plus a global one.
    let mut key_index: HashMap<String, usize> = HashMap::new();
    let mut keys: Vec<String> = Vec::new();
    let key_of_cell: Vec<usize> = cfg
        .mix
        .cells
        .iter()
        .map(|c| {
            let key = c.cell_key();
            *key_index.entry(key.clone()).or_insert_with(|| {
                keys.push(key);
                keys.len() - 1
            })
        })
        .collect();
    let per_key: Arc<Vec<Histogram>> =
        Arc::new((0..keys.len()).map(|_| Histogram::default()).collect());
    let global = Arc::new(Histogram::default());
    let tallies = Arc::new(Tallies::default());
    let spans: Arc<Mutex<Vec<ClientSpan>>> = Arc::new(Mutex::new(Vec::new()));

    let collectors = if cfg.collectors > 0 {
        cfg.collectors
    } else {
        (workers as usize).max(2)
    };

    let mut submitted = 0u64;
    let mut wall_s = 0.0f64;
    for (phase_idx, phase) in cfg.phases.iter().enumerate() {
        let schedule = arrivals::schedule(cfg.seed, phase_idx as u64, cfg.jobs, cfg.qps);
        let sample = cfg.mix.sample(cfg.seed, phase_idx as u64, cfg.jobs);
        let trace_ids = traces::trace_ids(cfg.seed, phase_idx as u64, cfg.jobs);

        let (tx, rx) = mpsc::channel::<Pending>();
        let rx = Arc::new(Mutex::new(rx));
        let handles: Vec<_> = (0..collectors)
            .map(|_| {
                let rx = Arc::clone(&rx);
                let per_key = Arc::clone(&per_key);
                let global = Arc::clone(&global);
                let tallies = Arc::clone(&tallies);
                let spans = Arc::clone(&spans);
                match (&sched, &cfg.target) {
                    (Some(s), _) => {
                        let s = Arc::clone(s);
                        std::thread::spawn(move || {
                            collect_inproc(&s, &rx, &per_key, &global, &tallies, &spans);
                        })
                    }
                    (None, Target::Socket { path }) => {
                        let path = path.clone();
                        std::thread::spawn(move || {
                            collect_socket(&path, &rx, &per_key, &global, &tallies, &spans);
                        })
                    }
                    (None, Target::InProc { .. }) => unreachable!("inproc always has sched"),
                }
            })
            .collect();

        let start = Instant::now();
        for ((offset, &cell_idx), &trace_id) in schedule.iter().zip(&sample).zip(&trace_ids) {
            let intended = start + *offset;
            let now = Instant::now();
            if intended > now {
                std::thread::sleep(intended - now);
            }
            let spec = cfg.mix.spec(cell_idx, cfg.scale, phase.warm);
            let begin_ns = obs::trace::now_ns();
            let ctx = TraceCtx {
                trace_id,
                origin_ns: begin_ns,
            };
            match submitter.submit_traced(spec, ctx) {
                Ok(Submission::Accepted(id)) => {
                    submitted += 1;
                    // Collector gone ⇒ nothing will record this job; the
                    // tally below still counts the submission.
                    let _ = tx.send(Pending {
                        id,
                        intended,
                        key: key_of_cell[cell_idx],
                        trace_id,
                        begin_ns,
                    });
                }
                // A router refusing admission is refused work, not a
                // broken wire: tallied separately, the loop keeps its
                // arrival schedule (open-loop — no retry storm).
                Ok(Submission::Busy { .. }) => {
                    tallies.shed.fetch_add(1, Ordering::Relaxed);
                }
                Err(_) => {
                    tallies.protocol_errors.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        drop(tx);
        for h in handles {
            let _ = h.join();
        }
        wall_s += start.elapsed().as_secs_f64();
    }

    // Saturation signal: the scheduler's queue high-water mark.
    let peak_queue_depth = submitter.health().map_or(0, |h| h.peak_queue_depth);
    // The target's live sample window, if it was sampling (pre-v7
    // servers answer Err; a sampler-less target answers empty) — either
    // way the artifact's optional series section just stays absent.
    let series = submitter.series().map_or_else(
        |_| Vec::new(),
        |r| {
            r.points
                .iter()
                .map(|p| BenchSeriesPoint {
                    seq: p.seq,
                    t_ns: p.t_ns,
                    interval_ns: p.interval_ns,
                    completed: p.completed,
                    failed: p.failed,
                    queue_depth: p.queue_depth,
                    p50_ns: p.lat.p50_ns,
                    p99_ns: p.lat.p99_ns,
                })
                .collect()
        },
    );
    // Routed runs also capture per-shard attribution (None elsewhere).
    let backends = submitter.backends().map_or_else(Vec::new, |r| {
        r.backends
            .iter()
            .map(|b| BenchBackend {
                name: b.name.clone(),
                healthy: b.healthy,
                forwarded: b.forwarded,
                failovers: b.failovers,
            })
            .collect()
    });
    let client_spans = std::mem::take(&mut *spans.lock().expect("span log"));
    // Stitch while the target is still up: bracket the dump fetch on
    // the client clock for the round-trip offset estimate.
    let stitched = if cfg.stitch {
        let before_ns = obs::trace::now_ns();
        let report = submitter.trace_dump()?;
        let after_ns = obs::trace::now_ns();
        let trace = traces::stitch_report(&client_spans, &report, before_ns, after_ns);
        if trace.threads.is_empty() {
            return Err(format!(
                "stitch matched no requests: {} client spans vs {} server records",
                client_spans.len(),
                report.all_records().len()
            ));
        }
        Some(trace)
    } else {
        None
    };
    drop(submitter);
    drop(sched); // joins the in-process workers

    let completed = tallies.completed.load(Ordering::Relaxed);
    let cells = keys
        .iter()
        .enumerate()
        .filter_map(|(i, key)| {
            let snap = per_key[i].snapshot();
            if snap.count == 0 {
                return None;
            }
            Some(BenchCell {
                cell: key.clone(),
                count: snap.count,
                mean_ns: snap.mean_ns() as u64,
                p50_ns: snap.quantile_ns(0.50),
                p95_ns: snap.quantile_ns(0.95),
                p99_ns: snap.quantile_ns(0.99),
                max_ns: snap.max_ns,
            })
        })
        .collect();

    let artifact = BenchArtifact {
        config: BenchConfig {
            seed: cfg.seed,
            mix: cfg.mix.name.clone(),
            scale: scale_name(cfg.scale).to_string(),
            qps: cfg.qps,
            jobs: cfg.jobs as u64,
            driver: match cfg.target {
                Target::InProc { .. } => "inproc".to_string(),
                Target::Socket { .. } => "socket".to_string(),
            },
            workers,
            faults: faults_spec,
            phases: cfg
                .phases
                .iter()
                .map(|p| p.name.as_str())
                .collect::<Vec<_>>()
                .join(","),
        },
        totals: BenchTotals {
            submitted,
            completed,
            ok: tallies.ok.load(Ordering::Relaxed),
            degraded: tallies.degraded.load(Ordering::Relaxed),
            failed: tallies.failed.load(Ordering::Relaxed),
            protocol_errors: tallies.protocol_errors.load(Ordering::Relaxed),
            shed: tallies.shed.load(Ordering::Relaxed),
            wall_s,
            qps: if wall_s > 0.0 {
                completed as f64 / wall_s
            } else {
                0.0
            },
            peak_queue_depth,
        },
        cells,
        series,
        backends,
    };
    Ok(RunReport {
        artifact,
        latency: global.snapshot(),
        client_spans,
        stitched,
    })
}

/// One in-flight job as handed from the submitter to the collectors.
struct Pending {
    id: u64,
    intended: Instant,
    key: usize,
    trace_id: u64,
    begin_ns: u64,
}

/// Pulls one pending job off the shared channel.
fn next_job(rx: &Mutex<mpsc::Receiver<Pending>>) -> Option<Pending> {
    rx.lock().expect("collector channel lock").recv().ok()
}

fn record(
    job: &Pending,
    res: &JobResult,
    per_key: &[Histogram],
    global: &Histogram,
    tallies: &Tallies,
    spans: &Mutex<Vec<ClientSpan>>,
) {
    // Intended arrival → observed completion: queueing delay a stalled
    // worker causes lands in the tail instead of being omitted.
    let lat_ns = Instant::now().duration_since(job.intended).as_nanos() as u64;
    per_key[job.key].observe_ns(lat_ns);
    global.observe_ns(lat_ns);
    tallies.record(res);
    spans.lock().expect("span log").push(ClientSpan {
        trace_id: job.trace_id,
        begin_ns: job.begin_ns,
        end_ns: obs::trace::now_ns(),
    });
}

fn collect_inproc(
    sched: &Scheduler,
    rx: &Mutex<mpsc::Receiver<Pending>>,
    per_key: &[Histogram],
    global: &Histogram,
    tallies: &Tallies,
    spans: &Mutex<Vec<ClientSpan>>,
) {
    while let Some(job) = next_job(rx) {
        let res = sched.wait(job.id);
        record(&job, &res, per_key, global, tallies, spans);
    }
}

fn collect_socket(
    path: &std::path::Path,
    rx: &Mutex<mpsc::Receiver<Pending>>,
    per_key: &[Histogram],
    global: &Histogram,
    tallies: &Tallies,
    spans: &Mutex<Vec<ClientSpan>>,
) {
    let mut client = match Client::connect(path) {
        Ok(c) => c,
        Err(_) => {
            // Drain so the submitter is not blocked; every lost job is a
            // protocol error.
            while next_job(rx).is_some() {
                tallies.protocol_errors.fetch_add(1, Ordering::Relaxed);
            }
            return;
        }
    };
    while let Some(job) = next_job(rx) {
        match client.wait(job.id) {
            Ok(res) => record(&job, &res, per_key, global, tallies, spans),
            Err(_) => {
                tallies.protocol_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}
