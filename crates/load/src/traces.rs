//! Deterministic per-request trace ids and client↔server stitching.
//!
//! Every submitted job carries a client-originated 64-bit trace id
//! drawn from the same counter-mode [`crate::rng::Rng`] stream family
//! as arrivals and the job mix: the id sequence is a pure function of
//! `(seed, phase)`, so two runs with the same seed tag their requests
//! identically — which makes trace diffs between runs meaningful and is
//! pinned by the determinism tests.
//!
//! After a run, [`stitch_report`] joins the client-side spans the
//! collectors recorded against the server-side phase digests fetched
//! via the protocol v7 `TraceDump` request, shifting server timestamps
//! onto the client clock with [`obs::stitch::clock_offset_ns`]. The
//! output is a Chrome-exportable [`obs::trace::Trace`] that
//! `wabench-trace-check` accepts.

use obs::stitch::{self, ClientSpan, ServerPhases};
use obs::trace::Trace;
use svc::telemetry::TraceReport;

use crate::rng::Rng;

/// Trace-id draws use this salt stream (disjoint from arrivals/mix).
const TRACE_SALT: u64 = 0x7_ace;

/// The deterministic trace-id sequence for one phase: `n` nonzero ids,
/// a pure function of `(seed, phase)`. Zero means "untraced" on the
/// wire, so a zero draw (one in 2^64) is remapped.
pub fn trace_ids(seed: u64, phase: u64, n: usize) -> Vec<u64> {
    let mut rng = Rng::new(seed, TRACE_SALT ^ phase);
    (0..n)
        .map(|_| match rng.next_u64() {
            0 => 1,
            id => id,
        })
        .collect()
}

/// Flattens a `TraceDump` reply into the phase digests to stitch
/// against (recent ∪ exemplars, deduplicated).
pub fn server_phases(report: &TraceReport) -> Vec<ServerPhases> {
    report.all_records().into_iter().map(|r| r.phases).collect()
}

/// Stitches collected client spans against a `TraceDump` reply into one
/// Chrome-exportable trace. `client_before_ns` / `client_after_ns`
/// bracket the fetch on the client clock; the reply's `server_now_ns`
/// completes the round-trip clock-offset estimate.
pub fn stitch_report(
    clients: &[ClientSpan],
    report: &TraceReport,
    client_before_ns: u64,
    client_after_ns: u64,
) -> Trace {
    let offset = stitch::clock_offset_ns(client_before_ns, client_after_ns, report.server_now_ns);
    stitch::stitch(clients, &server_phases(report), offset)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_sequences_are_deterministic_and_nonzero() {
        let a = trace_ids(7, 0, 100);
        assert_eq!(a, trace_ids(7, 0, 100), "same seed+phase, same ids");
        assert_ne!(a, trace_ids(8, 0, 100), "seed changes the sequence");
        assert_ne!(a, trace_ids(7, 1, 100), "phase changes the sequence");
        assert!(a.iter().all(|id| *id != 0), "0 is the untraced sentinel");
        let mut dedup = a.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), a.len(), "ids collide");
    }

    #[test]
    fn stitch_report_joins_on_trace_id() {
        use obs::stitch::ServerPhases;
        use svc::telemetry::TraceRecord;

        let clients = [ClientSpan {
            trace_id: 42,
            begin_ns: 1_000,
            end_ns: 9_000,
        }];
        let report = TraceReport {
            server_now_ns: 5_500, // client midpoint 5_000 → offset +500
            slow_threshold_ns: 0,
            recent: vec![TraceRecord {
                label: "x".into(),
                ok: true,
                phases: ServerPhases {
                    trace_id: 42,
                    enqueue_ns: 2_000,
                    start_ns: 3_000,
                    done_ns: 8_000,
                    ..ServerPhases::default()
                },
            }],
            exemplars: Vec::new(),
        };
        let trace = stitch_report(&clients, &report, 4_000, 6_000);
        assert_eq!(trace.threads.len(), 2, "one client + one server lane");
        let server = &trace.threads[1];
        // offset +500: server enqueue 2_000 lands at client 1_500.
        assert_eq!(server.events[0].start_ns, 1_500);
        obs::chrome::validate(&obs::chrome::export_string(&trace)).expect("validates");
    }
}
