//! # load — open-loop load generation and tail-latency suites
//!
//! The paper characterizes runtimes one execution at a time; this crate
//! answers the serving question the ROADMAP's north star asks: *what
//! QPS does the stack sustain at a p99 SLO?* It drives the `svc`
//! scheduler — in-process or over the `wabench-served` Unix socket —
//! with an **open-loop** workload:
//!
//! - **Seeded Poisson arrivals** ([`arrivals`]): submission times are
//!   drawn ahead of time from a [`fault::mix64`]-based stream, so a run
//!   is a pure function of its `--seed` (like `wabench-fault` plans).
//! - **Figure-matrix job mixes** ([`mix`]): traffic is sampled from the
//!   fig1–fig9 engine×level×mode matrices via [`harness::matrix`], at a
//!   chosen scale, in cold-store and warm-store phases.
//! - **Coordinated-omission-safe latency** ([`run`]): latency is
//!   recorded from each job's *intended* arrival time, never its send
//!   time, into [`obs::metrics::Histogram`]s — a stalled worker makes
//!   the recorded tail worse, it cannot pause the clock.
//! - **End-to-end request traces** ([`traces`]): every submit carries a
//!   deterministic client-originated trace id (protocol v7); after the
//!   run the client-side `submit → response` spans are stitched against
//!   the server's `TraceDump` phase digests into one Chrome trace.
//! - **BENCH trajectory artifacts** ([`bench`]): every run emits a
//!   versioned `BENCH_<timestamp>.json` (config + seed, sustained QPS,
//!   per engine×level p50/p95/p99/max, outcome counts) that
//!   `wabench-prof diff` gates on, making the perf trajectory a
//!   first-class CI artifact.

#![warn(missing_docs)]

pub mod arrivals;
pub mod bench;
pub mod mix;
pub mod rng;
pub mod run;
pub mod traces;

use svc::job::Scale;

/// The artifact spelling of a scale (matches `Scale::parse`).
pub fn scale_name(scale: Scale) -> &'static str {
    match scale {
        Scale::Test => "test",
        Scale::Profile => "profile",
        Scale::Timing => "timing",
    }
}
