//! Basic-block construction and dominators over a flat op array.
//!
//! The substrate is deliberately minimal: per op, which ops it may branch
//! to and whether control can fall through to the next op. Both the JIT
//! register IR (via the engines adapter) and any other linear IR can be
//! described this way without this crate knowing the instruction set.

/// Control-flow facts for one op in a linear instruction array.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OpFlow {
    /// Explicit branch targets (op indices). Empty for straight-line ops.
    pub targets: Vec<u32>,
    /// Whether control can continue to `op + 1` (false for unconditional
    /// jumps, returns, traps, and table dispatches).
    pub falls_through: bool,
}

impl OpFlow {
    /// A plain op: no branches, control continues to the next op.
    pub fn linear() -> OpFlow {
        OpFlow { targets: Vec::new(), falls_through: true }
    }
}

/// A maximal straight-line run of ops `[start, end)`.
#[derive(Debug, Clone)]
pub struct Block {
    /// Index of the first op in the block.
    pub start: usize,
    /// One past the last op in the block.
    pub end: usize,
    /// Successor block indices (deduplicated, in discovery order).
    pub succs: Vec<usize>,
    /// Predecessor block indices (deduplicated).
    pub preds: Vec<usize>,
}

/// A control-flow graph over a linear op array.
#[derive(Debug, Clone)]
pub struct Cfg {
    /// Blocks in op order; block 0 is the entry.
    pub blocks: Vec<Block>,
    /// Map from op index to owning block index.
    pub block_of: Vec<usize>,
    /// Reachable block indices in reverse postorder (entry first).
    pub rpo: Vec<usize>,
}

impl Cfg {
    /// Builds the CFG. `flows[i]` describes op `i`; every target must be
    /// `< flows.len()` (the verifier checks that *before* building).
    pub fn build(flows: &[OpFlow]) -> Cfg {
        let n = flows.len();
        assert!(n > 0, "cannot build a CFG over an empty op array");

        // Leaders: op 0, every branch target, and every op following a
        // control transfer (branch or non-falling-through op).
        let mut leader = vec![false; n];
        leader[0] = true;
        for (i, f) in flows.iter().enumerate() {
            for &t in &f.targets {
                leader[t as usize] = true;
            }
            if (!f.targets.is_empty() || !f.falls_through) && i + 1 < n {
                leader[i + 1] = true;
            }
        }

        let mut blocks = Vec::new();
        let mut block_of = vec![0usize; n];
        for i in 0..n {
            if leader[i] {
                blocks.push(Block { start: i, end: i + 1, succs: Vec::new(), preds: Vec::new() });
            }
            let b = blocks.len() - 1;
            block_of[i] = b;
            blocks[b].end = i + 1;
        }

        // Edges from each block's last op.
        for b in 0..blocks.len() {
            let last = blocks[b].end - 1;
            let f = &flows[last];
            let add = |blocks: &mut Vec<Block>, to: usize| {
                if !blocks[b].succs.contains(&to) {
                    blocks[b].succs.push(to);
                    blocks[to].preds.push(b);
                }
            };
            if f.falls_through && last + 1 < n {
                add(&mut blocks, block_of[last + 1]);
            }
            for &t in &f.targets {
                add(&mut blocks, block_of[t as usize]);
            }
        }

        // Reverse postorder via iterative DFS from the entry.
        let nb = blocks.len();
        let mut state = vec![0u8; nb]; // 0 unvisited, 1 on stack, 2 done
        let mut post = Vec::with_capacity(nb);
        let mut stack = vec![(0usize, 0usize)];
        state[0] = 1;
        while let Some(&(b, next)) = stack.last() {
            if next < blocks[b].succs.len() {
                stack.last_mut().expect("nonempty").1 += 1;
                let s = blocks[b].succs[next];
                if state[s] == 0 {
                    state[s] = 1;
                    stack.push((s, 0));
                }
            } else {
                state[b] = 2;
                post.push(b);
                stack.pop();
            }
        }
        post.reverse();

        Cfg { blocks, block_of, rpo: post }
    }

    /// True if `block` is reachable from the entry.
    pub fn is_reachable(&self, block: usize) -> bool {
        self.rpo.contains(&block)
    }

    /// Immediate dominators for reachable blocks (Cooper–Harvey–Kennedy).
    /// Returns `idom[b]`, with the entry mapped to itself and unreachable
    /// blocks mapped to `usize::MAX`.
    pub fn dominators(&self) -> Vec<usize> {
        let nb = self.blocks.len();
        let mut rpo_pos = vec![usize::MAX; nb];
        for (i, &b) in self.rpo.iter().enumerate() {
            rpo_pos[b] = i;
        }

        let mut idom = vec![usize::MAX; nb];
        let entry = self.rpo[0];
        idom[entry] = entry;

        let intersect = |idom: &[usize], rpo_pos: &[usize], mut a: usize, mut b: usize| {
            while a != b {
                while rpo_pos[a] > rpo_pos[b] {
                    a = idom[a];
                }
                while rpo_pos[b] > rpo_pos[a] {
                    b = idom[b];
                }
            }
            a
        };

        let mut changed = true;
        while changed {
            changed = false;
            for &b in self.rpo.iter().skip(1) {
                let mut new_idom = usize::MAX;
                for &p in &self.blocks[b].preds {
                    if idom[p] == usize::MAX {
                        continue; // unprocessed or unreachable predecessor
                    }
                    new_idom = if new_idom == usize::MAX {
                        p
                    } else {
                        intersect(&idom, &rpo_pos, new_idom, p)
                    };
                }
                if new_idom != usize::MAX && idom[b] != new_idom {
                    idom[b] = new_idom;
                    changed = true;
                }
            }
        }
        idom
    }

    /// True if reachable block `a` dominates reachable block `b`.
    pub fn dominates(&self, idom: &[usize], a: usize, b: usize) -> bool {
        let entry = self.rpo[0];
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            if cur == entry || idom[cur] == usize::MAX {
                return false;
            }
            cur = idom[cur];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn jump(to: u32) -> OpFlow {
        OpFlow { targets: vec![to], falls_through: false }
    }

    fn branch(to: u32) -> OpFlow {
        OpFlow { targets: vec![to], falls_through: true }
    }

    fn halt() -> OpFlow {
        OpFlow { targets: Vec::new(), falls_through: false }
    }

    #[test]
    fn straight_line_is_one_block() {
        let flows = vec![OpFlow::linear(), OpFlow::linear(), halt()];
        let cfg = Cfg::build(&flows);
        assert_eq!(cfg.blocks.len(), 1);
        assert_eq!(cfg.blocks[0].start, 0);
        assert_eq!(cfg.blocks[0].end, 3);
        assert_eq!(cfg.rpo, vec![0]);
    }

    #[test]
    fn diamond_shape() {
        // 0: brif -> 3 ; 1: op ; 2: jump -> 4 ; 3: op ; 4: ret
        let flows = vec![branch(3), OpFlow::linear(), jump(4), OpFlow::linear(), halt()];
        let cfg = Cfg::build(&flows);
        assert_eq!(cfg.blocks.len(), 4);
        let b0 = cfg.block_of[0];
        let then = cfg.block_of[1];
        let els = cfg.block_of[3];
        let join = cfg.block_of[4];
        assert_eq!(cfg.blocks[b0].succs.len(), 2);
        assert_eq!(cfg.blocks[then].succs, vec![join]);
        assert_eq!(cfg.blocks[els].succs, vec![join]);
        assert_eq!(cfg.blocks[join].preds.len(), 2);

        let idom = cfg.dominators();
        assert_eq!(idom[then], b0);
        assert_eq!(idom[els], b0);
        assert_eq!(idom[join], b0);
        assert!(cfg.dominates(&idom, b0, join));
        assert!(!cfg.dominates(&idom, then, join));
    }

    #[test]
    fn loop_back_edge() {
        // 0: op ; 1: op ; 2: brif -> 1 ; 3: ret
        let flows = vec![OpFlow::linear(), OpFlow::linear(), branch(1), halt()];
        let cfg = Cfg::build(&flows);
        let head = cfg.block_of[1];
        let exit = cfg.block_of[3];
        assert!(cfg.blocks[head].succs.contains(&head) || cfg.blocks[cfg.block_of[2]].succs.contains(&head));
        let idom = cfg.dominators();
        assert!(cfg.dominates(&idom, cfg.block_of[0], exit));
    }

    #[test]
    fn unreachable_block_excluded_from_rpo() {
        // 0: jump -> 2 ; 1: op (dead) ; 2: ret
        let flows = vec![jump(2), OpFlow::linear(), halt()];
        let cfg = Cfg::build(&flows);
        assert_eq!(cfg.blocks.len(), 3);
        assert!(!cfg.is_reachable(cfg.block_of[1]));
        assert!(cfg.is_reachable(cfg.block_of[2]));
    }
}
