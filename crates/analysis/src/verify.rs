//! IR verifier over a substrate-neutral view of a register function.
//!
//! The engines crate lowers its `RFunc` into an [`IrView`] (one
//! [`OpInfo`] per op) and calls [`verify`] after every optimization
//! pass. The checks mirror the executor's `check_code` invariants and
//! extend them with dataflow:
//!
//! 1. non-empty body, and no reachable fall-off-the-end;
//! 2. every branch/table target resolved (no `u32::MAX` sentinel
//!    survivors) and in bounds;
//! 3. every register operand within the declared frame;
//! 4. no reachable use of a register that is not definitely assigned;
//! 5. optionally, via [`effects_preserved`], that a pass did not add,
//!    drop, or reorder observable side effects.

use crate::cfg::{Cfg, OpFlow};
use crate::dataflow::{definite_assignment, BitSet, DefUse};

/// One op of the function under verification, as facts.
#[derive(Debug, Clone)]
pub struct OpInfo {
    /// Mnemonic used in violation messages (e.g. `"BrIf"`).
    pub name: &'static str,
    /// Registers this op reads.
    pub uses: Vec<u32>,
    /// Register this op writes, if any.
    pub def: Option<u32>,
    /// Raw branch targets, including any unresolved sentinel values.
    pub targets: Vec<u32>,
    /// Whether control may continue to the next op.
    pub falls_through: bool,
    /// Rendered observable side effect, if the op has one. Registers
    /// must NOT appear in the rendering (copy propagation renames them);
    /// shape and immediates (memory offset, callee, global index) must.
    pub effect: Option<String>,
}

/// A substrate-neutral register function: what the verifier sees.
#[derive(Debug, Clone)]
pub struct IrView {
    /// Ops in execution order.
    pub ops: Vec<OpInfo>,
    /// Size of the register frame; all operands must be below this.
    pub nregs: u32,
    /// Registers `[0, entry_defined)` hold values on entry (parameters
    /// and zero-initialized locals).
    pub entry_defined: u32,
}

/// A single verifier finding.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Offending op index, when the finding is op-specific.
    pub op: Option<usize>,
    /// What went wrong, with full context.
    pub message: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.op {
            Some(op) => write!(f, "op {op}: {}", self.message),
            None => f.write_str(&self.message),
        }
    }
}

fn violation(op: usize, message: String) -> Violation {
    Violation { op: Some(op), message }
}

/// Verifies structural and dataflow invariants of `view`, returning all
/// violations found (empty means the function is well-formed).
pub fn verify(view: &IrView) -> Vec<Violation> {
    let mut out = Vec::new();
    let nops = view.ops.len();
    if nops == 0 {
        return vec![Violation { op: None, message: "empty function body".into() }];
    }

    // Structural checks first; the CFG build assumes in-bounds targets
    // and the dataflow stage assumes in-frame registers.
    let mut structurally_sound = true;
    let mut regs_sound = true;
    for (i, op) in view.ops.iter().enumerate() {
        for &t in &op.targets {
            if t as usize >= nops {
                structurally_sound = false;
                out.push(violation(
                    i,
                    format!(
                        "{}: branch target {t} out of bounds (function has {nops} ops){}",
                        op.name,
                        if t == u32::MAX { " — unresolved fixup sentinel" } else { "" }
                    ),
                ));
            }
        }
        if let Some(d) = op.def {
            if d >= view.nregs {
                regs_sound = false;
                out.push(violation(
                    i,
                    format!("{}: defines r{d} outside frame of {} regs", op.name, view.nregs),
                ));
            }
        }
        for &u in &op.uses {
            if u >= view.nregs {
                regs_sound = false;
                out.push(violation(
                    i,
                    format!("{}: reads r{u} outside frame of {} regs", op.name, view.nregs),
                ));
            }
        }
    }
    if !structurally_sound || !regs_sound {
        return out; // cannot build a CFG / register sets over bad indices
    }

    let flows: Vec<OpFlow> = view
        .ops
        .iter()
        .map(|op| OpFlow { targets: op.targets.clone(), falls_through: op.falls_through })
        .collect();
    let cfg = Cfg::build(&flows);

    // Terminator well-formedness: a reachable final op must not fall
    // through past the end of the function.
    let last = nops - 1;
    if view.ops[last].falls_through && cfg.is_reachable(cfg.block_of[last]) {
        out.push(violation(
            last,
            format!("{}: reachable control falls off the end of the function", view.ops[last].name),
        ));
    }

    // Use-before-def over reachable blocks via definite assignment.
    let du = DefUse {
        nregs: view.nregs as usize,
        defs: view.ops.iter().map(|op| op.def).collect(),
        uses: view.ops.iter().map(|op| op.uses.clone()).collect(),
    };
    let mut entry = BitSet::empty(view.nregs as usize);
    for r in 0..view.entry_defined.min(view.nregs) {
        entry.insert(r as usize);
    }
    let sol = definite_assignment(&cfg, &du, &entry);
    for &b in &cfg.rpo {
        let mut assigned = sol.inputs[b].clone();
        let blk = &cfg.blocks[b];
        for i in blk.start..blk.end {
            let op = &view.ops[i];
            for &u in &op.uses {
                if !assigned.contains(u as usize) {
                    out.push(violation(
                        i,
                        format!("{}: reads r{u} which is not definitely assigned on every path", op.name),
                    ));
                }
            }
            if let Some(d) = op.def {
                assigned.insert(d as usize);
            }
        }
    }

    out
}

/// The observable side-effect trace of `view` over *every* op in linear
/// order, reachable or not. The right trace for pass pipelines that only
/// rewrite ops in place or replace them with no-ops: effectful ops are
/// never deleted, so the trace must survive every pass exactly.
pub fn effect_trace_all(view: &IrView) -> Vec<String> {
    view.ops.iter().filter_map(|op| op.effect.clone()).collect()
}

/// The observable side-effect trace of `view`: effect renderings of
/// reachable ops, in op order. Unreachable ops are excluded so that
/// dead-code elimination does not perturb the trace.
pub fn effect_trace(view: &IrView) -> Vec<String> {
    if view.ops.is_empty() {
        return Vec::new();
    }
    let flows: Vec<OpFlow> = view
        .ops
        .iter()
        .map(|op| {
            // Tolerate unresolved targets: treat them as non-edges so a
            // trace can still be taken from a structurally broken
            // function (verify() reports the real problem separately).
            let targets =
                op.targets.iter().copied().filter(|&t| (t as usize) < view.ops.len()).collect();
            OpFlow { targets, falls_through: op.falls_through }
        })
        .collect();
    let cfg = Cfg::build(&flows);
    view.ops
        .iter()
        .enumerate()
        .filter(|(i, _)| cfg.is_reachable(cfg.block_of[*i]))
        .filter_map(|(_, op)| op.effect.clone())
        .collect()
}

/// Checks that a pass preserved the side-effect trace: `after` must be
/// exactly `before`. Returns a violation describing the first divergence
/// otherwise.
pub fn effects_preserved(pass: &str, before: &[String], after: &[String]) -> Option<Violation> {
    if before == after {
        return None;
    }
    let first = before
        .iter()
        .zip(after.iter())
        .position(|(b, a)| b != a)
        .unwrap_or_else(|| before.len().min(after.len()));
    let describe = |trace: &[String]| -> String {
        trace.get(first).map_or_else(|| "<end of trace>".into(), |s| s.clone())
    };
    Some(Violation {
        op: None,
        message: format!(
            "pass '{pass}' changed the side-effect trace at position {first}: \
             before `{}` ({} effects), after `{}` ({} effects)",
            describe(before),
            before.len(),
            describe(after),
            after.len(),
        ),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(name: &'static str) -> OpInfo {
        OpInfo { name, uses: vec![], def: None, targets: vec![], falls_through: true, effect: None }
    }

    fn ret() -> OpInfo {
        OpInfo { falls_through: false, ..op("Ret") }
    }

    fn view(ops: Vec<OpInfo>, nregs: u32, entry_defined: u32) -> IrView {
        IrView { ops, nregs, entry_defined }
    }

    #[test]
    fn clean_function_verifies() {
        // r0 is a param; r1 = f(r0); ret r1
        let ops = vec![
            OpInfo { uses: vec![0], def: Some(1), ..op("Mov") },
            OpInfo { uses: vec![1], ..ret() },
        ];
        assert!(verify(&view(ops, 2, 1)).is_empty());
    }

    #[test]
    fn empty_body_rejected() {
        let v = verify(&view(vec![], 0, 0));
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("empty"));
    }

    #[test]
    fn dangling_target_rejected() {
        let ops = vec![OpInfo { targets: vec![u32::MAX], ..op("Jump") }, ret()];
        let v = verify(&view(ops, 1, 1));
        assert!(v.iter().any(|x| x.message.contains("out of bounds")));
        assert!(v.iter().any(|x| x.message.contains("sentinel")));
    }

    #[test]
    fn register_out_of_frame_rejected() {
        let ops = vec![OpInfo { def: Some(7), ..op("Const") }, ret()];
        let v = verify(&view(ops, 3, 0));
        assert!(v.iter().any(|x| x.message.contains("outside frame")));
    }

    #[test]
    fn fall_off_end_rejected() {
        let ops = vec![op("Add")];
        let v = verify(&view(ops, 1, 1));
        assert!(v.iter().any(|x| x.message.contains("falls off the end")));
    }

    #[test]
    fn use_before_def_rejected_only_on_unassigned_path() {
        // 0: BrIf -> 2 (uses r0) ; 1: def r1 ; 2: use r1 ; 3: ret
        // r1 is assigned only on the fallthrough path.
        let ops = vec![
            OpInfo { uses: vec![0], targets: vec![2], ..op("BrIf") },
            OpInfo { def: Some(1), ..op("Const") },
            OpInfo { uses: vec![1], def: Some(0), ..op("Mov") },
            ret(),
        ];
        let v = verify(&view(ops, 2, 1));
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].op, Some(2));
        assert!(v[0].message.contains("not definitely assigned"));
    }

    #[test]
    fn unreachable_garbage_is_ignored() {
        // 0: Jump -> 2 ; 1: use of never-assigned r9... but r9 < nregs and
        // the op is unreachable, so only reachable facts are checked.
        let ops = vec![
            OpInfo { targets: vec![2], falls_through: false, ..op("Jump") },
            OpInfo { uses: vec![3], ..op("Mov") },
            ret(),
        ];
        assert!(verify(&view(ops, 4, 1)).is_empty());
    }

    #[test]
    fn effect_trace_skips_unreachable_and_detects_reorder() {
        let store = |o: u32| OpInfo { effect: Some(format!("store+{o}")), ..op("Store") };
        let a = view(vec![store(0), store(8), ret()], 1, 1);
        let b = view(vec![store(8), store(0), ret()], 1, 1);
        let ta = effect_trace(&a);
        let tb = effect_trace(&b);
        assert_eq!(ta.len(), 2);
        assert!(effects_preserved("test", &ta, &ta).is_none());
        let viol = effects_preserved("swap", &ta, &tb).expect("reorder detected");
        assert!(viol.message.contains("swap"));

        // Dead store behind an unconditional jump is not part of the trace.
        let c = view(
            vec![
                OpInfo { targets: vec![2], falls_through: false, ..op("Jump") },
                store(4),
                ret(),
            ],
            1,
            1,
        );
        assert!(effect_trace(&c).is_empty());

        // Dropping an effect is also a divergence.
        let dropped = effects_preserved("dce", &ta, &effect_trace(&c));
        assert!(dropped.expect("drop detected").message.contains("0 effects"));
    }
}
