//! Static analysis for the wabench toolchain.
//!
//! One control-flow-graph and worklist-dataflow framework ([`cfg`],
//! [`dataflow`]) instantiated over two substrates:
//!
//! * [`verify`] — an IR verifier for the JIT's register IR. The engines
//!   crate adapts its `RFunc` into an [`verify::IrView`] and checks every
//!   optimization pass's output for use-before-def, dangling branch
//!   targets, register-bound violations, broken terminators, and
//!   reordered side effects.
//! * [`lint`] — source-level diagnostics over the WaCC typed AST
//!   (unused variables/functions, unreachable statements, constant
//!   division by zero, constant out-of-bounds memory accesses), surfaced
//!   by the `wabench-lint` binary in the harness crate.
//! * [`range`] — interval (value-range) abstract interpretation with
//!   widening/narrowing and branch refinement, consumed by the JIT's
//!   check-elimination pass, the interpreter decode-time safety marks,
//!   and the `wabench-audit` static reports. Eliminations are
//!   proof-carrying: [`range::check_obligations`] independently
//!   re-derives every claimed fact.
//!
//! The crate deliberately depends only on `wasm-core` and `wacc`; the
//! engines crate depends on *it*, keeping the dependency graph acyclic.

pub mod cfg;
pub mod dataflow;
pub mod lint;
pub mod range;
pub mod verify;
