//! Source-level lints over the checked WaCC AST.
//!
//! Six lints, all running on the unoptimized (`-O0`) typed AST so that
//! nothing the optimizer would delete escapes inspection:
//!
//! * `unused-function` — a non-exported function unreachable from any
//!   exported function through the call graph;
//! * `unused-variable` — a `let` whose slot is never read;
//! * `unreachable-code` — a statement after a diverging statement
//!   (`return`/`break`/`continue`, an `if` whose arms both diverge, or a
//!   constant-condition infinite loop);
//! * `const-div-zero` — integer `/`, `%`, `divu`, `remu` with a literal
//!   zero divisor (guaranteed trap if reached);
//! * `const-oob` — a memory intrinsic whose literal address lies outside
//!   the program's declared linear memory (suppressed for positive
//!   addresses when the program grows memory at runtime);
//! * `dead-guard` — a `for` loop whose induction variable provably never
//!   reaches its guard's bound (the interval of values the variable can
//!   take never intersects the guard's exit set), so the guard can never
//!   fail and the loop never terminates through it.
//!
//! Findings are [`Diagnostic`]s with 1-based lines into the *linted*
//! source. Front-ends that lint a composed source (common helpers +
//! program + prelude) use [`window`] to keep only findings from the
//! program's own lines and rebase them.

use wacc::ast::{Builtin, Expr, ExprKind, FuncDef, Lit, Program, Stmt};
use wacc::error::{CompileError, Diagnostic};
use wacc::OptLevel;

/// Parses and checks `src` (the WaCC prelude is appended, as in normal
/// compilation) and runs all lints on the unoptimized AST.
///
/// # Errors
///
/// Returns the first lexical, syntax, or type error; lints only run on
/// programs that compile.
pub fn lint_source(src: &str) -> Result<Vec<Diagnostic>, CompileError> {
    let program = wacc::frontend(src, OptLevel::O0)?;
    Ok(lint_program(&program))
}

/// Runs all lints on an already-checked program.
pub fn lint_program(program: &Program) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    unused_functions(program, &mut diags);
    let grows_memory = program_grows_memory(program);
    for f in &program.funcs {
        unused_variables(f, &mut diags);
        unreachable_statements(&f.body, &mut diags);
        for_each_stmt(&f.body, &mut |s| dead_guard(s, &mut diags));
        for_each_expr(&f.body, &mut |e| {
            const_div_zero(e, &mut diags);
            const_oob(e, program.memory_pages, grows_memory, &mut diags);
        });
    }
    diags.sort_by(|a, b| (a.line, a.code).cmp(&(b.line, b.code)));
    diags
}

/// Keeps only findings inside the window a program's own lines occupy in
/// a composed source, and rebases them to be 1-based within the program.
///
/// The lexer emits 1-based lines, so a program preceded by `offset`
/// composed lines occupies exactly lines `offset + 1 ..= offset + len`
/// (both edges inclusive): a finding on the program's first or last line
/// is kept and rebases to `1` / `len` respectively. `offset + len`
/// saturates rather than wrapping for degenerate windows.
pub fn window(diags: Vec<Diagnostic>, offset: u32, len: u32) -> Vec<Diagnostic> {
    let first = offset.saturating_add(1);
    let last = offset.saturating_add(len);
    diags
        .into_iter()
        .filter(|d| d.line >= first && d.line <= last)
        .map(|mut d| {
            d.line -= offset;
            d
        })
        .collect()
}

// ---------------------------------------------------------------------
// unused-function

fn unused_functions(program: &Program, diags: &mut Vec<Diagnostic>) {
    use std::collections::{HashMap, HashSet, VecDeque};

    let index: HashMap<&str, usize> =
        program.funcs.iter().enumerate().map(|(i, f)| (f.name.as_str(), i)).collect();

    // Direct callees per function, by name (WaCC has no indirect calls).
    let mut callees: Vec<Vec<usize>> = vec![Vec::new(); program.funcs.len()];
    for (i, f) in program.funcs.iter().enumerate() {
        for_each_expr(&f.body, &mut |e| {
            if let ExprKind::Call(name, _) = &e.kind {
                if let Some(&j) = index.get(name.as_str()) {
                    callees[i].push(j);
                }
            }
        });
    }

    let mut reached: HashSet<usize> = HashSet::new();
    let mut queue: VecDeque<usize> = program
        .funcs
        .iter()
        .enumerate()
        .filter(|(_, f)| f.exported)
        .map(|(i, _)| i)
        .collect();
    reached.extend(queue.iter().copied());
    while let Some(i) = queue.pop_front() {
        for &j in &callees[i] {
            if reached.insert(j) {
                queue.push_back(j);
            }
        }
    }

    for (i, f) in program.funcs.iter().enumerate() {
        if !f.exported && !reached.contains(&i) {
            diags.push(Diagnostic::warning(
                f.line,
                "unused-function",
                format!("function `{}` is never called from any exported function", f.name),
            ));
        }
    }
}

// ---------------------------------------------------------------------
// unused-variable

fn unused_variables(f: &FuncDef, diags: &mut Vec<Diagnostic>) {
    use std::collections::HashMap;

    // All `let` declarations, by resolved slot (slots are unique within
    // a function: the checker allocates them monotonically).
    let mut lets: HashMap<u32, (&str, u32)> = HashMap::new();
    for_each_stmt(&f.body, &mut |s| {
        if let Stmt::Let { name, init, slot, .. } = s {
            lets.insert(*slot, (name.as_str(), init.line));
        }
    });

    // A slot is "read" if it appears as a `Local` expression anywhere —
    // including inside the value of a compound assignment to itself.
    let mut read = vec![false; f.nlocals as usize];
    for_each_expr(&f.body, &mut |e| {
        if let ExprKind::Local(slot) = e.kind {
            if let Some(r) = read.get_mut(slot as usize) {
                *r = true;
            }
        }
    });

    let mut unused: Vec<_> = lets
        .into_iter()
        .filter(|(slot, _)| !read.get(*slot as usize).copied().unwrap_or(true))
        .collect();
    unused.sort_by_key(|(slot, _)| *slot);
    for (_, (name, line)) in unused {
        diags.push(Diagnostic::warning(
            line,
            "unused-variable",
            format!("variable `{name}` in `{}` is never read", f.name),
        ));
    }
}

// ---------------------------------------------------------------------
// unreachable-code

/// Whether a statement never lets control continue to the next statement
/// in its list.
fn diverges(stmt: &Stmt) -> bool {
    match stmt {
        Stmt::Return(..) | Stmt::Break(_) | Stmt::Continue(_) => true,
        Stmt::If { then, els, .. } => block_diverges(then) && block_diverges(els),
        Stmt::Block(body) => block_diverges(body),
        Stmt::While { cond, body } => const_true(cond) && !breaks_out(body),
        _ => false,
    }
}

fn block_diverges(stmts: &[Stmt]) -> bool {
    stmts.iter().any(diverges)
}

fn const_true(cond: &Expr) -> bool {
    matches!(cond.kind, ExprKind::Lit(Lit::I32(n)) if n != 0)
        || matches!(cond.kind, ExprKind::Lit(Lit::I64(n)) if n != 0)
}

/// Whether `break` can escape this loop body (not counting breaks bound
/// to nested loops).
fn breaks_out(stmts: &[Stmt]) -> bool {
    stmts.iter().any(|s| match s {
        Stmt::Break(_) => true,
        Stmt::If { then, els, .. } => breaks_out(then) || breaks_out(els),
        Stmt::Block(body) => breaks_out(body),
        // A nested loop captures its own breaks.
        Stmt::While { .. } | Stmt::For { .. } => false,
        _ => false,
    })
}

fn unreachable_statements(stmts: &[Stmt], diags: &mut Vec<Diagnostic>) {
    for (i, s) in stmts.iter().enumerate() {
        // Recurse first so nested findings inside the diverging statement
        // itself (e.g. dead code inside an if-arm) are still reported.
        match s {
            Stmt::If { then, els, .. } => {
                unreachable_statements(then, diags);
                unreachable_statements(els, diags);
            }
            Stmt::While { body, .. } => unreachable_statements(body, diags),
            Stmt::For { body, .. } => unreachable_statements(body, diags),
            Stmt::Block(body) => unreachable_statements(body, diags),
            _ => {}
        }
        if diverges(s) {
            if let Some(next) = stmts.get(i + 1) {
                // An empty block has no line of its own; anchor the
                // finding on the diverging statement so it stays 1-based
                // and survives windowing.
                let line = match stmt_line(next) {
                    0 => stmt_line(s).max(1),
                    l => l,
                };
                diags.push(Diagnostic::warning(
                    line,
                    "unreachable-code",
                    "statement is unreachable".to_string(),
                ));
            }
            // Statements past the first unreachable one are implied.
            break;
        }
    }
}

fn stmt_line(stmt: &Stmt) -> u32 {
    match stmt {
        Stmt::Let { init, .. } => init.line,
        Stmt::Assign { value, .. } => value.line,
        Stmt::Expr(e) => e.line,
        Stmt::If { cond, .. } | Stmt::While { cond, .. } => cond.line,
        Stmt::For { init, .. } => stmt_line(init),
        Stmt::Break(line) | Stmt::Continue(line) | Stmt::Return(_, line) => *line,
        Stmt::Block(body) => body.first().map_or(0, stmt_line),
    }
}

// ---------------------------------------------------------------------
// dead-guard

/// The integer constant a literal evaluates to, if it is one.
fn int_lit(e: &Expr) -> Option<i64> {
    match e.kind {
        ExprKind::Lit(Lit::I32(v)) => Some(i64::from(v)),
        ExprKind::Lit(Lit::I64(v)) => Some(v),
        _ => None,
    }
}

/// `(slot, entry value)` when `stmt` sets a local to an integer constant.
fn const_induction_init(stmt: &Stmt) -> Option<(u32, i64)> {
    match stmt {
        Stmt::Let { slot, init, .. } => Some((*slot, int_lit(init)?)),
        Stmt::Assign { target: wacc::ast::AssignTarget::Local(slot), value, .. } => {
            Some((*slot, int_lit(value)?))
        }
        _ => None,
    }
}

/// `(comparison, bound)` with the induction variable normalized to the
/// left-hand side, when `cond` compares `slot` against a constant.
fn guard_bound(cond: &Expr, slot: u32) -> Option<(wacc::ast::BinOp, i64)> {
    use wacc::ast::BinOp;
    let ExprKind::Bin(op @ (BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge), lhs, rhs) = &cond.kind
    else {
        return None;
    };
    if matches!(lhs.kind, ExprKind::Local(s) if s == slot) {
        return Some((*op, int_lit(rhs)?));
    }
    if matches!(rhs.kind, ExprKind::Local(s) if s == slot) {
        // `bound < i` reads as `i > bound`, and so on.
        let flipped = match op {
            BinOp::Lt => BinOp::Gt,
            BinOp::Le => BinOp::Ge,
            BinOp::Gt => BinOp::Lt,
            _ => BinOp::Le,
        };
        return Some((flipped, int_lit(lhs)?));
    }
    None
}

/// The constant the step statement adds to `slot` each iteration.
fn const_step(stmt: &Stmt, slot: u32) -> Option<i64> {
    use wacc::ast::BinOp;
    let Stmt::Assign { target: wacc::ast::AssignTarget::Local(s), value, .. } = stmt else {
        return None;
    };
    if *s != slot {
        return None;
    }
    let ExprKind::Bin(op @ (BinOp::Add | BinOp::Sub), lhs, rhs) = &value.kind else {
        return None;
    };
    match (&lhs.kind, &rhs.kind) {
        (ExprKind::Local(v), _) if *v == slot => {
            let k = int_lit(rhs)?;
            Some(if *op == BinOp::Add { k } else { k.checked_neg()? })
        }
        // `k + i` commutes; `k - i` is not an induction step.
        (_, ExprKind::Local(v)) if *v == slot && *op == BinOp::Add => int_lit(lhs),
        _ => None,
    }
}

/// Whether any statement in `stmts` writes `slot` (the step is analyzed
/// separately; any other write invalidates the induction model).
fn writes_slot(stmts: &[Stmt], slot: u32) -> bool {
    let mut found = false;
    for_each_stmt(stmts, &mut |s| {
        if matches!(
            s,
            Stmt::Assign { target: wacc::ast::AssignTarget::Local(v), .. } if *v == slot
        ) {
            found = true;
        }
    });
    found
}

/// Flags `for` loops whose induction variable provably never reaches the
/// guard's bound. With a constant entry value and a constant step, every
/// value the variable takes lies in one interval of the value-range
/// domain; if that interval never meets the guard's *exit set* (the
/// values for which the guard is false) the guard can never fail — it is
/// dead, and the loop only terminates through a `break` or `return`.
fn dead_guard(stmt: &Stmt, diags: &mut Vec<Diagnostic>) {
    use crate::range::Interval;
    use wacc::ast::BinOp;

    let Stmt::For { init, cond, step, body } = stmt else { return };
    let Some((slot, entry)) = const_induction_init(init) else { return };
    let Some((cmp, bound)) = guard_bound(cond, slot) else { return };
    let Some(delta) = const_step(step, slot) else { return };
    if writes_slot(body, slot) {
        return;
    }
    if !cond_holds(cmp, entry, bound) {
        // Guard is false on entry: the loop never runs. Real, but the
        // unreachable-code story, not a dead guard.
        return;
    }

    // Every value the induction variable takes (ignoring wrapping — a
    // wrapped counter means ~2^32 iterations first, worth flagging too).
    let reach = match delta.cmp(&0) {
        std::cmp::Ordering::Greater => Interval::new(entry, i64::MAX),
        std::cmp::Ordering::Less => Interval::new(i64::MIN, entry),
        std::cmp::Ordering::Equal => Interval::exact(entry),
    };
    // Values for which the guard fails and the loop exits.
    let exit = match cmp {
        BinOp::Lt => Interval::new(bound, i64::MAX),
        BinOp::Le => Interval::new(bound.saturating_add(1), i64::MAX),
        BinOp::Gt => Interval::new(i64::MIN, bound),
        _ => Interval::new(i64::MIN, bound.saturating_sub(1)),
    };
    if reach.meet(exit).is_empty() {
        diags.push(Diagnostic::warning(
            cond.line,
            "dead-guard",
            format!(
                "loop guard can never fail: induction variable starts at {entry}, steps by \
                 {delta}, and never reaches the bound {bound}"
            ),
        ));
    }
}

/// Evaluates an integer comparison between two constants.
fn cond_holds(cmp: wacc::ast::BinOp, lhs: i64, rhs: i64) -> bool {
    use wacc::ast::BinOp;
    match cmp {
        BinOp::Lt => lhs < rhs,
        BinOp::Le => lhs <= rhs,
        BinOp::Gt => lhs > rhs,
        _ => lhs >= rhs,
    }
}

// ---------------------------------------------------------------------
// const-div-zero

fn int_zero(e: &Expr) -> bool {
    matches!(e.kind, ExprKind::Lit(Lit::I32(0)) | ExprKind::Lit(Lit::I64(0)))
}

fn const_div_zero(e: &Expr, diags: &mut Vec<Diagnostic>) {
    use wacc::ast::BinOp;
    let divisor = match &e.kind {
        ExprKind::Bin(BinOp::Div | BinOp::Rem, _, rhs) if rhs.ty.is_int() => Some(rhs.as_ref()),
        ExprKind::Builtin(Builtin::DivU | Builtin::RemU, args) => args.get(1),
        _ => None,
    };
    if let Some(d) = divisor {
        if int_zero(d) {
            diags.push(Diagnostic::error(
                d.line,
                "const-div-zero",
                "division by constant zero always traps".to_string(),
            ));
        }
    }
}

// ---------------------------------------------------------------------
// const-oob

/// Bytes accessed by a memory intrinsic, if `b` is one.
fn access_size(b: Builtin) -> Option<u32> {
    use Builtin::*;
    Some(match b {
        LoadU8 | LoadI8 | StoreU8 => 1,
        LoadU16 | LoadI16 | StoreU16 => 2,
        LoadI32 | LoadF32 | StoreI32 | StoreF32 => 4,
        LoadI64 | LoadF64 | StoreI64 | StoreF64 => 8,
        _ => return None,
    })
}

fn program_grows_memory(program: &Program) -> bool {
    let mut grows = false;
    for f in &program.funcs {
        for_each_expr(&f.body, &mut |e| {
            if matches!(e.kind, ExprKind::Builtin(Builtin::MemoryGrow, _)) {
                grows = true;
            }
        });
    }
    grows
}

fn const_oob(e: &Expr, memory_pages: u32, grows_memory: bool, diags: &mut Vec<Diagnostic>) {
    let ExprKind::Builtin(b, args) = &e.kind else { return };
    let Some(size) = access_size(*b) else { return };
    let Some(addr_expr) = args.first() else { return };
    let ExprKind::Lit(Lit::I32(addr)) = addr_expr.kind else { return };

    let limit = memory_pages as u64 * 65536;
    if addr < 0 {
        // Addresses are unsigned at runtime: a negative literal wraps to
        // the top of the 4 GiB space, far beyond any reachable memory.
        diags.push(Diagnostic::error(
            addr_expr.line,
            "const-oob",
            format!("negative address {addr} wraps out of bounds and always traps"),
        ));
    } else if !grows_memory && addr as u64 + size as u64 > limit {
        diags.push(Diagnostic::error(
            addr_expr.line,
            "const-oob",
            format!(
                "{size}-byte access at constant address {addr} exceeds the {memory_pages}-page \
                 ({limit}-byte) linear memory"
            ),
        ));
    }
}

// ---------------------------------------------------------------------
// AST walkers

/// Calls `f` on every statement, including nested ones, pre-order.
fn for_each_stmt<'a>(stmts: &'a [Stmt], f: &mut impl FnMut(&'a Stmt)) {
    for s in stmts {
        f(s);
        match s {
            Stmt::If { then, els, .. } => {
                for_each_stmt(then, f);
                for_each_stmt(els, f);
            }
            Stmt::While { body, .. } => for_each_stmt(body, f),
            Stmt::For { init, step, body, .. } => {
                for_each_stmt(std::slice::from_ref(init), f);
                for_each_stmt(std::slice::from_ref(step), f);
                for_each_stmt(body, f);
            }
            Stmt::Block(body) => for_each_stmt(body, f),
            _ => {}
        }
    }
}

/// Calls `f` on every expression in every statement, pre-order.
fn for_each_expr<'a>(stmts: &'a [Stmt], f: &mut impl FnMut(&'a Expr)) {
    fn walk<'a>(e: &'a Expr, f: &mut impl FnMut(&'a Expr)) {
        f(e);
        match &e.kind {
            ExprKind::Bin(_, a, b) => {
                walk(a, f);
                walk(b, f);
            }
            ExprKind::Un(_, a) | ExprKind::Cast(a, _) => walk(a, f),
            ExprKind::Call(_, args) | ExprKind::Builtin(_, args) => {
                for a in args {
                    walk(a, f);
                }
            }
            ExprKind::Lit(_)
            | ExprKind::Local(_)
            | ExprKind::Global(_)
            | ExprKind::Name(_)
            | ExprKind::Str(_) => {}
        }
    }
    for_each_stmt(stmts, &mut |s| match s {
        Stmt::Let { init: e, .. } | Stmt::Assign { value: e, .. } | Stmt::Expr(e) => walk(e, f),
        Stmt::If { cond, .. } | Stmt::While { cond, .. } | Stmt::For { cond, .. } => walk(cond, f),
        Stmt::Return(Some(e), _) => walk(e, f),
        _ => {}
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codes_at(diags: &[Diagnostic]) -> Vec<(&'static str, u32)> {
        diags.iter().map(|d| (d.code, d.line)).collect()
    }

    /// Lints `src` and drops prelude findings (lines past the source).
    fn lint_user(src: &str) -> Vec<Diagnostic> {
        let lines = src.lines().count() as u32;
        window(lint_source(src).expect("compiles"), 0, lines)
    }

    #[test]
    fn clean_program_has_no_findings() {
        let src = "export fn main() -> i32 {\n    let x: i32 = 6;\n    return x * 7;\n}\n";
        assert!(lint_user(src).is_empty());
    }

    #[test]
    fn unused_variable_and_function_found() {
        let src = "\
fn helper(a: i32) -> i32 {
    return a + 1;
}
export fn main() -> i32 {
    let dead: i32 = 3;
    return 42;
}
";
        let diags = lint_user(src);
        assert_eq!(codes_at(&diags), vec![("unused-function", 1), ("unused-variable", 5)]);
        assert!(diags[0].msg.contains("helper"));
        assert!(diags[1].msg.contains("dead"));
    }

    #[test]
    fn transitively_called_function_is_used() {
        let src = "\
fn inner() -> i32 { return 1; }
fn outer() -> i32 { return inner(); }
export fn main() -> i32 { return outer(); }
";
        assert!(lint_user(src).is_empty());
    }

    #[test]
    fn unreachable_after_return_and_in_if_arms() {
        let src = "\
export fn main() -> i32 {
    if (1) {
        return 2;
        let x: i32 = 1;
    }
    return 3;
}
";
        let diags = lint_user(src);
        // Line 4 is dead after the return; `x` is also never read.
        assert!(diags.iter().any(|d| d.code == "unreachable-code" && d.line == 4));
    }

    #[test]
    fn diverging_if_makes_tail_unreachable() {
        let src = "\
export fn main(n: i32) -> i32 {
    if (n) {
        return 1;
    } else {
        return 0;
    }
    return 9;
}
";
        let diags = lint_user(src);
        assert!(diags.iter().any(|d| d.code == "unreachable-code" && d.line == 7));
    }

    #[test]
    fn const_div_zero_int_only() {
        let src = "\
export fn main() -> i32 {
    let a: i32 = 10 / 0;
    let b: f64 = 1.0 / 0.0;
    return a + (b as i32) + divu(7, 0);
}
";
        let diags = lint_user(src);
        let dz: Vec<u32> = diags
            .iter()
            .filter(|d| d.code == "const-div-zero")
            .map(|d| d.line)
            .collect();
        assert_eq!(dz, vec![2, 4], "integer and divu hits only; float div is defined");
    }

    #[test]
    fn const_oob_respects_memory_directive() {
        let src = "\
memory 1;
export fn main() -> i32 {
    store_i32(65532, 1);
    store_i32(65533, 1);
    return load_i32(-4);
}
";
        let diags = lint_user(src);
        let oob: Vec<u32> =
            diags.iter().filter(|d| d.code == "const-oob").map(|d| d.line).collect();
        // 65532+4 = 65536 fits exactly; 65533+4 spills; -4 wraps.
        assert_eq!(oob, vec![4, 5]);
    }

    #[test]
    fn memory_grow_suppresses_positive_oob() {
        let src = "\
memory 1;
export fn main() -> i32 {
    let grown: i32 = memory_grow(4);
    store_i32(100000, grown);
    return load_i32(-8);
}
";
        let diags = lint_user(src);
        let oob: Vec<u32> =
            diags.iter().filter(|d| d.code == "const-oob").map(|d| d.line).collect();
        assert_eq!(oob, vec![5], "only the negative address remains a finding");
    }

    #[test]
    fn window_rebases_and_filters() {
        let diags = vec![
            Diagnostic::warning(3, "unused-variable", "in common"),
            Diagnostic::warning(12, "unused-variable", "in program"),
            Diagnostic::warning(40, "unused-function", "in prelude"),
        ];
        let kept = window(diags, 10, 20);
        assert_eq!(codes_at(&kept), vec![("unused-variable", 2)]);
    }

    #[test]
    fn window_keeps_both_edges_inclusive() {
        // A 20-line program after 10 composed lines occupies lines
        // 11..=30: both edge lines are the program's own.
        let diags = vec![
            Diagnostic::warning(10, "unused-variable", "last common line"),
            Diagnostic::warning(11, "unused-variable", "first program line"),
            Diagnostic::warning(30, "unused-variable", "last program line"),
            Diagnostic::warning(31, "unused-variable", "first prelude line"),
        ];
        let kept = window(diags, 10, 20);
        assert_eq!(
            codes_at(&kept),
            vec![("unused-variable", 1), ("unused-variable", 20)]
        );
    }

    #[test]
    fn window_zero_length_keeps_nothing_and_does_not_wrap() {
        assert!(window(vec![Diagnostic::warning(5, "x", "m")], 5, 0).is_empty());
        // Saturating edges: a window at the top of the line space must
        // not wrap around and resurrect early lines.
        assert!(window(vec![Diagnostic::warning(1, "x", "m")], u32::MAX - 1, 5).is_empty());
    }

    #[test]
    fn dead_guard_flags_wrong_direction_step() {
        let src = "\
export fn main() -> i32 {
    let sum: i32 = 0;
    for (let i: i32 = 0; i < 10; i = i - 1) {
        sum = sum + 1;
        if (sum > 100) { break; }
    }
    return sum;
}
";
        let diags = lint_user(src);
        assert!(
            diags.iter().any(|d| d.code == "dead-guard" && d.line == 3),
            "descending counter never reaches an upper bound; got {diags:?}"
        );
    }

    #[test]
    fn dead_guard_flags_zero_step() {
        let src = "\
export fn main() -> i32 {
    let n: i32 = 0;
    for (let i: i32 = 5; i <= 9; i = i + 0) {
        n = n + 1;
        if (n > 3) { return n; }
    }
    return n;
}
";
        let diags = lint_user(src);
        assert!(diags.iter().any(|d| d.code == "dead-guard" && d.line == 3), "got {diags:?}");
    }

    #[test]
    fn dead_guard_is_quiet_for_normal_loops() {
        let src = "\
export fn main() -> i32 {
    let sum: i32 = 0;
    for (let i: i32 = 0; i < 10; i = i + 1) {
        sum = sum + i;
    }
    for (let j: i32 = 10; j > 0; j = j - 2) {
        sum = sum + j;
    }
    return sum;
}
";
        assert!(
            lint_user(src).iter().all(|d| d.code != "dead-guard"),
            "well-formed induction loops must not be flagged"
        );
    }

    #[test]
    fn dead_guard_is_quiet_when_body_writes_the_variable() {
        let src = "\
export fn main() -> i32 {
    let sum: i32 = 0;
    for (let i: i32 = 0; i < 10; i = i - 1) {
        i = i + 2;
        sum = sum + 1;
    }
    return sum;
}
";
        assert!(
            lint_user(src).iter().all(|d| d.code != "dead-guard"),
            "a body write invalidates the induction model"
        );
    }

    #[test]
    fn infinite_loop_diverges_unless_it_breaks() {
        let src = "\
export fn main() -> i32 {
    while (1) {
        let x: i32 = 0;
        if (x) { break; }
    }
    return 1;
}
";
        assert!(
            lint_user(src).iter().all(|d| d.code != "unreachable-code"),
            "loop with a break falls through"
        );

        let src2 = "\
export fn main() -> i32 {
    while (1) {
        wasi_proc_exit(0);
    }
    return 1;
}
";
        let diags = lint_user(src2);
        assert!(
            diags.iter().any(|d| d.code == "unreachable-code" && d.line == 5),
            "breakless while(1) never falls through; got {diags:?}"
        );
    }
}
