//! Worklist dataflow over bit-vector domains.
//!
//! The solver is parameterized by direction and meet operator; the
//! concrete analyses the verifier and lint need — liveness, reaching
//! definitions, definite assignment — are provided as thin wrappers over
//! it, each taking a [`DefUse`] summary of the op array plus the [`Cfg`].

use crate::cfg::Cfg;

/// A fixed-width bit set over `nbits` elements.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    nbits: usize,
}

impl BitSet {
    /// The empty set over a universe of `nbits` elements.
    pub fn empty(nbits: usize) -> BitSet {
        BitSet { words: vec![0; nbits.div_ceil(64)], nbits }
    }

    /// The full set over a universe of `nbits` elements.
    pub fn full(nbits: usize) -> BitSet {
        let mut s = BitSet { words: vec![!0u64; nbits.div_ceil(64)], nbits };
        s.clear_excess();
        s
    }

    fn clear_excess(&mut self) {
        let rem = self.nbits % 64;
        if rem != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
    }

    /// Number of elements in the universe.
    pub fn capacity(&self) -> usize {
        self.nbits
    }

    /// Adds `bit`; returns true if it was newly inserted.
    pub fn insert(&mut self, bit: usize) -> bool {
        debug_assert!(bit < self.nbits);
        let (w, m) = (bit / 64, 1u64 << (bit % 64));
        let newly = self.words[w] & m == 0;
        self.words[w] |= m;
        newly
    }

    /// Removes `bit`.
    pub fn remove(&mut self, bit: usize) {
        debug_assert!(bit < self.nbits);
        self.words[bit / 64] &= !(1u64 << (bit % 64));
    }

    /// Membership test.
    pub fn contains(&self, bit: usize) -> bool {
        debug_assert!(bit < self.nbits);
        self.words[bit / 64] & (1u64 << (bit % 64)) != 0
    }

    /// `self |= other`; returns true if `self` changed.
    pub fn union_with(&mut self, other: &BitSet) -> bool {
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let before = *a;
            *a |= b;
            changed |= *a != before;
        }
        changed
    }

    /// `self &= other`; returns true if `self` changed.
    pub fn intersect_with(&mut self, other: &BitSet) -> bool {
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let before = *a;
            *a &= b;
            changed |= *a != before;
        }
        changed
    }

    /// `self -= other` (set difference).
    pub fn subtract(&mut self, other: &BitSet) {
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// Number of set bits.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterator over set bits in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.nbits).filter(move |&b| self.contains(b))
    }
}

/// Analysis direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Information flows from predecessors to successors.
    Forward,
    /// Information flows from successors to predecessors.
    Backward,
}

/// How states from multiple control-flow edges combine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Meet {
    /// May-analysis: a fact holds if it holds on *some* path.
    Union,
    /// Must-analysis: a fact holds only if it holds on *every* path.
    Intersection,
}

/// Per-block fixpoint states. For forward analyses `inputs[b]` is the
/// state at block entry and `outputs[b]` at block exit; for backward
/// analyses `inputs[b]` is the state at block *exit* (the meet over
/// successors) and `outputs[b]` at block entry.
#[derive(Debug, Clone)]
pub struct Solution {
    /// Meet-side state per block.
    pub inputs: Vec<BitSet>,
    /// Transfer-side state per block.
    pub outputs: Vec<BitSet>,
}

/// Solves a gen/kill dataflow problem to fixpoint with a worklist.
///
/// `gen`/`kill` are per *block* (compose per-op facts before calling, or
/// use the wrappers below). `boundary` is the input state at the entry
/// block (forward) or at exit blocks (backward). With
/// `Meet::Intersection`, interior blocks start from the full set
/// (optimistic); with `Meet::Union`, from the empty set.
pub fn solve(
    cfg: &Cfg,
    dir: Direction,
    meet: Meet,
    gen: &[BitSet],
    kill: &[BitSet],
    nbits: usize,
    boundary: &BitSet,
) -> Solution {
    let nb = cfg.blocks.len();
    let init = match meet {
        Meet::Union => BitSet::empty(nbits),
        Meet::Intersection => BitSet::full(nbits),
    };
    let mut inputs = vec![init.clone(); nb];
    let mut outputs = vec![init; nb];

    // Iteration order: RPO for forward problems, post-order for backward.
    let order: Vec<usize> = match dir {
        Direction::Forward => cfg.rpo.clone(),
        Direction::Backward => cfg.rpo.iter().rev().copied().collect(),
    };

    let edges_in = |b: usize| -> &[usize] {
        match dir {
            Direction::Forward => &cfg.blocks[b].preds,
            Direction::Backward => &cfg.blocks[b].succs,
        }
    };
    let is_boundary = |b: usize| -> bool {
        match dir {
            Direction::Forward => b == cfg.rpo[0],
            Direction::Backward => cfg.blocks[b].succs.is_empty(),
        }
    };

    let mut changed = true;
    while changed {
        changed = false;
        for &b in &order {
            let mut input = if is_boundary(b) {
                boundary.clone()
            } else {
                match meet {
                    Meet::Union => BitSet::empty(nbits),
                    Meet::Intersection => BitSet::full(nbits),
                }
            };
            for &e in edges_in(b) {
                // Unreachable edges contribute nothing meaningful; skip
                // them so they cannot poison a must-analysis.
                if !cfg.is_reachable(e) {
                    continue;
                }
                match meet {
                    Meet::Union => {
                        input.union_with(&outputs[e]);
                    }
                    Meet::Intersection => {
                        input.intersect_with(&outputs[e]);
                    }
                }
            }
            let mut output = input.clone();
            output.subtract(&kill[b]);
            output.union_with(&gen[b]);
            if output != outputs[b] || input != inputs[b] {
                inputs[b] = input;
                outputs[b] = output;
                changed = true;
            }
        }
    }
    Solution { inputs, outputs }
}

/// Per-op definition and use summary of a linear op array, the common
/// input to the register-domain analyses.
#[derive(Debug, Clone)]
pub struct DefUse {
    /// Size of the register universe.
    pub nregs: usize,
    /// Register defined by each op, if any.
    pub defs: Vec<Option<u32>>,
    /// Registers read by each op.
    pub uses: Vec<Vec<u32>>,
}

/// Forward must-analysis: which registers are definitely assigned on
/// entry to each block, given `entry_defined` at function entry.
/// `inputs[b]` is the definitely-assigned set at block entry.
pub fn definite_assignment(cfg: &Cfg, du: &DefUse, entry_defined: &BitSet) -> Solution {
    let nb = cfg.blocks.len();
    let mut gen = vec![BitSet::empty(du.nregs); nb];
    let kill = vec![BitSet::empty(du.nregs); nb];
    for (b, blk) in cfg.blocks.iter().enumerate() {
        for op in blk.start..blk.end {
            if let Some(d) = du.defs[op] {
                gen[b].insert(d as usize);
            }
        }
    }
    solve(cfg, Direction::Forward, Meet::Intersection, &gen, &kill, du.nregs, entry_defined)
}

/// Backward may-analysis: which registers are live (read before being
/// overwritten) at block entry. `outputs[b]` is live-in of block `b`.
pub fn liveness(cfg: &Cfg, du: &DefUse) -> Solution {
    let nb = cfg.blocks.len();
    let mut gen = vec![BitSet::empty(du.nregs); nb];
    let mut kill = vec![BitSet::empty(du.nregs); nb];
    for (b, blk) in cfg.blocks.iter().enumerate() {
        // Walk backward so "use before def within the block" wins.
        for op in (blk.start..blk.end).rev() {
            if let Some(d) = du.defs[op] {
                gen[b].remove(d as usize);
                kill[b].insert(d as usize);
            }
            for &u in &du.uses[op] {
                gen[b].insert(u as usize);
                kill[b].remove(u as usize);
            }
        }
    }
    let boundary = BitSet::empty(du.nregs);
    solve(cfg, Direction::Backward, Meet::Union, &gen, &kill, du.nregs, &boundary)
}

/// Forward may-analysis over *op indices*: which defining ops reach each
/// block entry. Two defs of the same register kill each other.
/// `inputs[b]` is the reaching-def set (bits are op indices) at entry.
pub fn reaching_definitions(cfg: &Cfg, du: &DefUse) -> Solution {
    let nops = du.defs.len();
    let nb = cfg.blocks.len();

    // All defining ops per register, to build kill sets.
    let mut defs_of_reg: Vec<Vec<usize>> = vec![Vec::new(); du.nregs];
    for (op, d) in du.defs.iter().enumerate() {
        if let Some(d) = d {
            defs_of_reg[*d as usize].push(op);
        }
    }

    let mut gen = vec![BitSet::empty(nops); nb];
    let mut kill = vec![BitSet::empty(nops); nb];
    for (b, blk) in cfg.blocks.iter().enumerate() {
        for op in blk.start..blk.end {
            if let Some(d) = du.defs[op] {
                for &other in &defs_of_reg[d as usize] {
                    gen[b].remove(other);
                    kill[b].insert(other);
                }
                gen[b].insert(op);
                kill[b].remove(op);
            }
        }
    }
    let boundary = BitSet::empty(nops);
    solve(cfg, Direction::Forward, Meet::Union, &gen, &kill, nops, &boundary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::{Cfg, OpFlow};

    fn branch(to: u32) -> OpFlow {
        OpFlow { targets: vec![to], falls_through: true }
    }

    fn halt() -> OpFlow {
        OpFlow { targets: Vec::new(), falls_through: false }
    }

    #[test]
    fn bitset_basics() {
        let mut s = BitSet::empty(130);
        assert!(s.insert(0));
        assert!(s.insert(129));
        assert!(!s.insert(129));
        assert!(s.contains(129));
        assert_eq!(s.count(), 2);
        s.remove(0);
        assert!(!s.contains(0));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![129]);
        assert_eq!(BitSet::full(130).count(), 130);
    }

    /// Diamond where only one arm assigns r1: the join must NOT consider
    /// r1 definitely assigned, though the assigning arm itself does.
    #[test]
    fn definite_assignment_is_must() {
        // 0: brif->2 ; 1: def r1 ; 2: ret  (arm at op 1 falls into 2)
        let flows = vec![branch(2), OpFlow::linear(), halt()];
        let cfg = Cfg::build(&flows);
        let du = DefUse {
            nregs: 2,
            defs: vec![None, Some(1), None],
            uses: vec![vec![0], vec![], vec![]],
        };
        let mut entry = BitSet::empty(2);
        entry.insert(0); // r0 is a param
        let sol = definite_assignment(&cfg, &du, &entry);
        let join = cfg.block_of[2];
        assert!(sol.inputs[join].contains(0));
        assert!(!sol.inputs[join].contains(1), "r1 assigned on only one path");
    }

    #[test]
    fn liveness_loop_keeps_counter_live() {
        // 0: def r0 ; 1: use r0, def r0 ; 2: brif->1 (uses r1) ; 3: ret
        let flows = vec![OpFlow::linear(), OpFlow::linear(), branch(1), halt()];
        let cfg = Cfg::build(&flows);
        let du = DefUse {
            nregs: 2,
            defs: vec![Some(0), Some(0), None, None],
            uses: vec![vec![], vec![0], vec![1], vec![]],
        };
        let sol = liveness(&cfg, &du);
        let head = cfg.block_of[1];
        // r0 is redefined from itself each iteration: live into the loop.
        assert!(sol.outputs[head].contains(0));
        assert!(sol.outputs[head].contains(1));
        // Nothing is live into the entry block before r0's def... except
        // r1, which op 2 reads and nothing ever defines.
        let entry = cfg.block_of[0];
        assert!(!sol.outputs[entry].contains(0) || du.defs[0] != Some(0));
        assert!(sol.outputs[entry].contains(1));
    }

    #[test]
    fn reaching_defs_merge_at_join() {
        // 0: def r0 ; 1: brif->3 ; 2: def r0 ; 3: use r0 (ret)
        let flows = vec![OpFlow::linear(), branch(3), OpFlow::linear(), halt()];
        let cfg = Cfg::build(&flows);
        let du = DefUse {
            nregs: 1,
            defs: vec![Some(0), None, Some(0), None],
            uses: vec![vec![], vec![], vec![], vec![0]],
        };
        let sol = reaching_definitions(&cfg, &du);
        let join = cfg.block_of[3];
        let reaching: Vec<usize> = sol.inputs[join].iter().collect();
        assert_eq!(reaching, vec![0, 2], "both defs reach the join");
    }
}
