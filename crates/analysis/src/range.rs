//! Interval (value-range) abstract interpretation over a linear op array.
//!
//! The domain tracks, per register, the *semantic* value the producing op
//! wrote: a signed-`i64` interval for integer producers and an `f64`
//! interval (plus a may-be-NaN flag) for float producers. Soundness of
//! mixing the two facets in one slot rests on wasm type-correctness:
//! every def has uniformly-typed uses, so a register written by a 32-bit
//! integer op is only ever read at 32-bit integer width, and the facet a
//! consumer reads is the facet the producer constrained.
//!
//! Clients describe their IR as a `Vec<AbsOp>` — control flow
//! ([`crate::cfg::OpFlow`]), an optional defined register, a [`Transfer`]
//! describing the value written, an optional branch [`Guard`] (for edge
//! refinement), and an optional safety [`Check`] (memory bounds, div
//! trap, float→int truncation trap). [`analyze`] runs a
//! widening/narrowing fixpoint over the [`crate::cfg::Cfg`] and the
//! result replays per-op entry states via [`Analysis::walk`].
//!
//! Consumers that *eliminate* checks emit [`Obligation`]s — the claimed
//! range fact plus an optional dominating guard op — and
//! [`check_obligations`] independently re-derives every claim from
//! scratch, rejecting any obligation whose fact is not implied by the
//! analysis or whose fact does not imply safety. [`audit`] summarises a
//! function for static reports (check counts, unreachable blocks,
//! always-trapping sites, constant-address loads).

use crate::cfg::{Cfg, OpFlow};

/// Lower/upper bounds of a 32-bit signed value, as `i64`.
pub const I32_RANGE: Interval = Interval { lo: i32::MIN as i64, hi: i32::MAX as i64 };

// ---------------------------------------------------------------------------
// Integer intervals
// ---------------------------------------------------------------------------

/// A signed-`i64` interval `[lo, hi]`. `lo > hi` encodes the empty set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    /// Inclusive lower bound.
    pub lo: i64,
    /// Inclusive upper bound.
    pub hi: i64,
}

impl Interval {
    /// The full `i64` range.
    pub const TOP: Interval = Interval { lo: i64::MIN, hi: i64::MAX };
    /// The empty interval.
    pub const EMPTY: Interval = Interval { lo: i64::MAX, hi: i64::MIN };

    /// The singleton `[v, v]`.
    pub fn exact(v: i64) -> Interval {
        Interval { lo: v, hi: v }
    }

    /// `[lo, hi]`, normalised to [`Interval::EMPTY`] when `lo > hi`.
    pub fn new(lo: i64, hi: i64) -> Interval {
        if lo > hi { Interval::EMPTY } else { Interval { lo, hi } }
    }

    /// True when the interval contains no values.
    pub fn is_empty(self) -> bool {
        self.lo > self.hi
    }

    /// True when the interval is a single value.
    pub fn singleton(self) -> Option<i64> {
        if self.lo == self.hi { Some(self.lo) } else { None }
    }

    /// True when `v` is in the interval.
    pub fn contains(self, v: i64) -> bool {
        self.lo <= v && v <= self.hi
    }

    /// Set union (interval hull).
    pub fn join(self, other: Interval) -> Interval {
        if self.is_empty() {
            return other;
        }
        if other.is_empty() {
            return self;
        }
        Interval { lo: self.lo.min(other.lo), hi: self.hi.max(other.hi) }
    }

    /// Set intersection.
    pub fn meet(self, other: Interval) -> Interval {
        Interval::new(self.lo.max(other.lo), self.hi.min(other.hi))
    }

    /// True when `self ⊆ other`.
    pub fn subset(self, other: Interval) -> bool {
        self.is_empty() || (other.lo <= self.lo && self.hi <= other.hi)
    }

    /// The built-in widening thresholds (always part of the set).
    pub const THRESHOLDS: [i64; 10] = [
        i64::MIN,
        i32::MIN as i64,
        -1,
        0,
        1,
        255,
        65535,
        i32::MAX as i64,
        u32::MAX as i64,
        i64::MAX,
    ];

    /// Threshold widening: bounds that grew past `self` jump outward to
    /// the nearest member of the threshold set, guaranteeing each bound
    /// changes only a bounded number of times. `extra` adds
    /// program-derived landing points (guard constants), so loop bounds
    /// are not overshot straight to a type extreme.
    pub fn widen_with(self, next: Interval, extra: &[i64]) -> Interval {
        if self.is_empty() {
            return next;
        }
        if next.is_empty() {
            return self;
        }
        let cands = |pick: &dyn Fn(i64) -> bool, max_side: bool| -> i64 {
            let builtin = Self::THRESHOLDS.iter().copied().filter(|&t| pick(t));
            let seeded = extra.iter().copied().filter(|&t| pick(t));
            if max_side {
                builtin.chain(seeded).max().unwrap_or(i64::MIN)
            } else {
                builtin.chain(seeded).min().unwrap_or(i64::MAX)
            }
        };
        let lo = if next.lo >= self.lo {
            self.lo
        } else {
            // Largest threshold <= next.lo (i64::MIN always qualifies).
            cands(&|t| t <= next.lo, true)
        };
        let hi = if next.hi <= self.hi {
            self.hi
        } else {
            cands(&|t| t >= next.hi, false)
        };
        Interval { lo, hi }
    }

    /// [`Interval::widen_with`] over the built-in thresholds only.
    pub fn widen(self, next: Interval) -> Interval {
        self.widen_with(next, &[])
    }
}

// ---------------------------------------------------------------------------
// Float intervals
// ---------------------------------------------------------------------------

/// An `f64` interval `[lo, hi]` plus a may-be-NaN flag. `f32` values are
/// tracked exactly as their `f64` widening. `lo > hi` encodes "no
/// non-NaN value".
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FInterval {
    /// Inclusive lower bound of non-NaN values.
    pub lo: f64,
    /// Inclusive upper bound of non-NaN values.
    pub hi: f64,
    /// Whether the value may be NaN.
    pub nan: bool,
}

impl FInterval {
    /// Any float, including NaN.
    pub const TOP: FInterval = FInterval { lo: f64::NEG_INFINITY, hi: f64::INFINITY, nan: true };
    /// No non-NaN value and not NaN (empty).
    pub const EMPTY: FInterval = FInterval { lo: f64::INFINITY, hi: f64::NEG_INFINITY, nan: false };

    /// The singleton `[v, v]` (NaN maps to nan-only).
    pub fn exact(v: f64) -> FInterval {
        if v.is_nan() {
            FInterval { lo: f64::INFINITY, hi: f64::NEG_INFINITY, nan: true }
        } else {
            FInterval { lo: v, hi: v, nan: false }
        }
    }

    /// `[lo, hi]` non-NaN values plus an explicit NaN flag.
    pub fn new(lo: f64, hi: f64, nan: bool) -> FInterval {
        if lo > hi || lo.is_nan() || hi.is_nan() {
            FInterval { lo: f64::INFINITY, hi: f64::NEG_INFINITY, nan }
        } else {
            FInterval { lo, hi, nan }
        }
    }

    /// True when no value (NaN or otherwise) is possible.
    pub fn is_empty(self) -> bool {
        self.lo > self.hi && !self.nan
    }

    /// Set union.
    pub fn join(self, other: FInterval) -> FInterval {
        let nan = self.nan || other.nan;
        if self.lo > self.hi {
            return FInterval { nan, ..other };
        }
        if other.lo > other.hi {
            return FInterval { nan, ..self };
        }
        FInterval { lo: self.lo.min(other.lo), hi: self.hi.max(other.hi), nan }
    }

    /// Widening: any growth jumps straight to the affected infinity, and
    /// a newly-possible NaN sticks.
    pub fn widen(self, next: FInterval) -> FInterval {
        if self.lo > self.hi {
            return next;
        }
        if next.lo > next.hi {
            return FInterval { nan: self.nan || next.nan, ..self };
        }
        FInterval {
            lo: if next.lo < self.lo { f64::NEG_INFINITY } else { self.lo },
            hi: if next.hi > self.hi { f64::INFINITY } else { self.hi },
            nan: self.nan || next.nan,
        }
    }

    /// True when `self ⊆ other`.
    pub fn subset(self, other: FInterval) -> bool {
        if self.nan && !other.nan {
            return false;
        }
        self.lo > self.hi || (other.lo <= self.lo && self.hi <= other.hi)
    }
}

/// Largest `f32` (as `f64`) strictly below `x`, for outward rounding of
/// `f64` bounds into `f32` arithmetic.
fn f32_below(x: f64) -> f64 {
    let y = x as f32;
    if (y as f64) <= x { y as f64 } else { next_down32(y) as f64 }
}

/// Smallest `f32` (as `f64`) at or above `x`.
fn f32_above(x: f64) -> f64 {
    let y = x as f32;
    if (y as f64) >= x { y as f64 } else { next_up32(y) as f64 }
}

fn next_down32(x: f32) -> f32 {
    if x.is_nan() || x == f32::NEG_INFINITY {
        return x;
    }
    if x == 0.0 {
        return -f32::from_bits(1);
    }
    let bits = x.to_bits();
    f32::from_bits(if x > 0.0 { bits - 1 } else { bits + 1 })
}

fn next_up32(x: f32) -> f32 {
    if x.is_nan() || x == f32::INFINITY {
        return x;
    }
    if x == 0.0 {
        return f32::from_bits(1);
    }
    let bits = x.to_bits();
    f32::from_bits(if x > 0.0 { bits + 1 } else { bits - 1 })
}

// ---------------------------------------------------------------------------
// Abstract values
// ---------------------------------------------------------------------------

/// Both facets of one register slot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AbsVal {
    /// Integer facet (semantic signed value of the producer).
    pub int: Interval,
    /// Float facet.
    pub fl: FInterval,
}

impl AbsVal {
    /// Unconstrained.
    pub const TOP: AbsVal = AbsVal { int: Interval::TOP, fl: FInterval::TOP };

    /// The zero-initialised slot: integer 0 and float +0.0.
    pub fn zero() -> AbsVal {
        AbsVal { int: Interval::exact(0), fl: FInterval::exact(0.0) }
    }

    /// An integer-producing op's result (float facet unconstrained).
    pub fn int(iv: Interval) -> AbsVal {
        AbsVal { int: iv, fl: FInterval::TOP }
    }

    /// A float-producing op's result (integer facet unconstrained).
    pub fn float(fv: FInterval) -> AbsVal {
        AbsVal { int: Interval::TOP, fl: fv }
    }

    /// A raw-bits constant: the type is erased at the IR level, so both
    /// facets join every width's reading of the bits.
    pub fn of_bits(bits: u64) -> AbsVal {
        let i64r = Interval::exact(bits as i64);
        let i32r = Interval::exact(bits as u32 as i32 as i64);
        let f64r = FInterval::exact(f64::from_bits(bits));
        let f32r = FInterval::exact(f32::from_bits(bits as u32) as f64);
        AbsVal { int: i64r.join(i32r), fl: f64r.join(f32r) }
    }

    /// Set union, facet-wise.
    pub fn join(self, other: AbsVal) -> AbsVal {
        AbsVal { int: self.int.join(other.int), fl: self.fl.join(other.fl) }
    }

    /// Widening, facet-wise, with extra integer landing thresholds.
    pub fn widen_with(self, next: AbsVal, extra: &[i64]) -> AbsVal {
        AbsVal { int: self.int.widen_with(next.int, extra), fl: self.fl.widen(next.fl) }
    }

    /// Widening, facet-wise.
    pub fn widen(self, next: AbsVal) -> AbsVal {
        self.widen_with(next, &[])
    }
}

// ---------------------------------------------------------------------------
// Op vocabulary
// ---------------------------------------------------------------------------

/// Operand of a transfer: a register or an immediate (raw bits,
/// interpreted at the consuming op's width).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Operand {
    /// Register index.
    Reg(u32),
    /// Immediate bits.
    Const(u64),
}

/// Integer operation width.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Width {
    /// 32-bit.
    W32,
    /// 64-bit.
    W64,
}

impl Width {
    fn range(self) -> Interval {
        match self {
            Width::W32 => I32_RANGE,
            Width::W64 => Interval::TOP,
        }
    }

    /// Minimum signed value at this width.
    pub fn min_signed(self) -> i64 {
        match self {
            Width::W32 => i32::MIN as i64,
            Width::W64 => i64::MIN,
        }
    }
}

/// Comparison predicates (wasm relops).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum CmpKind {
    Eq,
    Ne,
    LtS,
    LtU,
    GtS,
    GtU,
    LeS,
    LeU,
    GeS,
    GeU,
}

impl CmpKind {
    /// The predicate that holds exactly when `self` does not.
    pub fn negate(self) -> CmpKind {
        match self {
            CmpKind::Eq => CmpKind::Ne,
            CmpKind::Ne => CmpKind::Eq,
            CmpKind::LtS => CmpKind::GeS,
            CmpKind::LtU => CmpKind::GeU,
            CmpKind::GtS => CmpKind::LeS,
            CmpKind::GtU => CmpKind::LeU,
            CmpKind::LeS => CmpKind::GtS,
            CmpKind::LeU => CmpKind::GtU,
            CmpKind::GeS => CmpKind::LtS,
            CmpKind::GeU => CmpKind::LtU,
        }
    }
}

/// Integer binary operators with interval transfer functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum IntBin {
    Add,
    Sub,
    Mul,
    DivS,
    DivU,
    RemS,
    RemU,
    And,
    Or,
    Xor,
    Shl,
    ShrS,
    ShrU,
    Rot,
}

/// Float binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum FBin {
    Add,
    Sub,
    Mul,
    Div,
    Min,
    Max,
    CopySign,
}

/// Binary op descriptor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOpKind {
    /// Integer arithmetic at a width.
    Int(Width, IntBin),
    /// Float arithmetic at a width.
    Float(Width, FBin),
    /// Any comparison: result is `[0, 1]`.
    Cmp,
}

/// Unary op descriptor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnKind {
    /// `eqz`: result `[0, 1]`.
    Eqz,
    /// `clz`/`ctz`/`popcnt` at a width: `[0, bits]`.
    BitCount(Width),
    /// `i32.wrap_i64`.
    Wrap,
    /// `i64.extend_i32_s`.
    ExtendS,
    /// `i64.extend_i32_u`.
    ExtendU,
    /// `extendN_s` within a width: result in `[-2^(n-1), 2^(n-1)-1]`.
    Sext {
        /// Number of low bits sign-extended.
        bits: u32,
    },
    /// Float→int truncation; range of the *successful* result.
    Trunc {
        /// Signedness of the destination integer.
        signed: bool,
        /// Destination integer width.
        dst: Width,
    },
    /// Int→float conversion.
    Convert {
        /// Signedness of the source integer.
        signed: bool,
        /// Source integer width.
        src: Width,
        /// Destination float width.
        dst: Width,
    },
    /// `f32.demote_f64`.
    Demote,
    /// `f64.promote_f32`.
    Promote,
    /// Float negate at a width.
    FNeg(Width),
    /// Float abs at a width.
    FAbs(Width),
    /// Monotone float rounding/sqrt at a width.
    FMono(Width, MonoF),
    /// Bit reinterpretation (both facets unconstrained).
    Reinterpret,
}

/// Monotone single-operand float functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum MonoF {
    Sqrt,
    Ceil,
    Floor,
    Trunc,
    Nearest,
}

/// How an op computes its defined register.
#[derive(Debug, Clone, PartialEq)]
pub enum Transfer {
    /// Constant bits (type-erased).
    Bits(u64),
    /// Copy of another register.
    Copy(u32),
    /// Binary operation.
    Bin {
        /// Operator.
        op: BinOpKind,
        /// Left operand.
        a: Operand,
        /// Right operand.
        b: Operand,
    },
    /// Fused pair `t = op1(a, b); rd = swapped ? op2(c, t) : op2(t, c)`.
    Chain {
        /// Inner operator.
        op1: BinOpKind,
        /// Outer operator.
        op2: BinOpKind,
        /// Inner left operand.
        a: Operand,
        /// Inner right operand.
        b: Operand,
        /// Outer second operand.
        c: Operand,
        /// Whether `c` is the *left* operand of `op2`.
        swapped: bool,
    },
    /// Unary operation.
    Un {
        /// Operator.
        op: UnKind,
        /// Operand register.
        a: u32,
    },
    /// Either of two registers (select).
    Join(u32, u32),
    /// Opaque but integer-bounded (loads of known width, memory.size…).
    Range(Interval),
    /// Unconstrained.
    Opaque,
}

/// A branch condition: the branch is taken exactly when `kind(a, b)`
/// holds at width `w`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Guard {
    /// Predicate.
    pub kind: CmpKind,
    /// Comparison width.
    pub w: Width,
    /// Left operand.
    pub a: Operand,
    /// Right operand.
    pub b: Operand,
}

/// A runtime safety check attached to an op.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Check {
    /// Linear-memory access: traps unless
    /// `addr_u32 + offset + len <= memory_bytes`.
    Mem {
        /// Address register (read as u32).
        addr: u32,
        /// Static offset.
        offset: u64,
        /// Access width in bytes.
        len: u64,
    },
    /// Integer division/remainder trap guard.
    Div {
        /// Width.
        w: Width,
        /// Signed (adds the `MIN / -1` overflow case for div).
        signed: bool,
        /// Divisor, when identifiable (`None` ⇒ unprovable).
        divisor: Option<Operand>,
        /// Dividend, when identifiable (helps exclude overflow).
        dividend: Option<Operand>,
    },
    /// Float→int truncation trap guard.
    Trunc {
        /// Source float register.
        src: u32,
        /// Signedness of the destination.
        signed: bool,
        /// Destination width.
        dst: Width,
    },
}

/// One op, as the analysis sees it.
#[derive(Debug, Clone, PartialEq)]
pub struct AbsOp {
    /// Control-flow facts.
    pub flow: OpFlow,
    /// Defined register, if any.
    pub def: Option<u32>,
    /// Value transfer for the defined register.
    pub transfer: Transfer,
    /// Branch condition (branching ops only).
    pub guard: Option<Guard>,
    /// Safety check this op performs at runtime.
    pub check: Option<Check>,
}

impl AbsOp {
    /// A straight-line op with no def, guard, or check.
    pub fn nop() -> AbsOp {
        AbsOp {
            flow: OpFlow::linear(),
            def: None,
            transfer: Transfer::Opaque,
            guard: None,
            check: None,
        }
    }
}

// ---------------------------------------------------------------------------
// Reading operands
// ---------------------------------------------------------------------------

/// The integer facet of `o` read at width `w` (32-bit reads meet with
/// the `i32` range — sound because a 32-bit consumer only ever reads
/// registers whose producers wrote `i32`-ranged semantic values).
pub fn read_int(state: &[AbsVal], o: Operand, w: Width) -> Interval {
    match o {
        Operand::Const(bits) => Interval::exact(match w {
            Width::W32 => bits as u32 as i32 as i64,
            Width::W64 => bits as i64,
        }),
        Operand::Reg(r) => state.get(r as usize).map_or(AbsVal::TOP, |v| *v).int.meet(w.range()),
    }
}

/// The float facet of `o` read at width `w`.
pub fn read_float(state: &[AbsVal], o: Operand, w: Width) -> FInterval {
    match o {
        Operand::Const(bits) => FInterval::exact(match w {
            Width::W32 => f32::from_bits(bits as u32) as f64,
            Width::W64 => f64::from_bits(bits),
        }),
        Operand::Reg(r) => state.get(r as usize).map_or(AbsVal::TOP, |v| *v).fl,
    }
}

// ---------------------------------------------------------------------------
// Integer transfer kernels
// ---------------------------------------------------------------------------

fn fit(w: Width, lo: i128, hi: i128) -> Interval {
    let r = w.range();
    if lo >= r.lo as i128 && hi <= r.hi as i128 {
        Interval { lo: lo as i64, hi: hi as i64 }
    } else {
        r
    }
}

/// Smallest `2^k - 1 >= h` (for `h >= 0`).
fn pow2_mask(h: i64) -> i64 {
    let mut m: i64 = 0;
    while m < h && m < i64::MAX / 2 {
        m = m * 2 + 1;
    }
    m.max(h)
}

/// Unsigned view `[ulo, uhi]` (as u128) of a signed interval at width
/// `w`, or `None` when the interval spans the sign boundary.
fn unsigned_view(w: Width, iv: Interval) -> Option<(u128, u128)> {
    if iv.is_empty() {
        return None;
    }
    match w {
        Width::W32 => {
            if iv.lo >= 0 {
                Some((iv.lo as u128, iv.hi as u128))
            } else if iv.hi < 0 {
                Some((iv.lo as i32 as u32 as u128, iv.hi as i32 as u32 as u128))
            } else {
                None
            }
        }
        Width::W64 => {
            if iv.lo >= 0 {
                Some((iv.lo as u128, iv.hi as u128))
            } else if iv.hi < 0 {
                Some((iv.lo as u64 as u128, iv.hi as u64 as u128))
            } else {
                None
            }
        }
    }
}

/// Signed result interval for an unsigned-valued result `[0, uhi]`.
fn from_unsigned_max(w: Width, uhi: u128) -> Interval {
    match w {
        Width::W32 => {
            if uhi <= i32::MAX as u128 {
                Interval { lo: 0, hi: uhi as i64 }
            } else {
                I32_RANGE
            }
        }
        Width::W64 => {
            if uhi <= i64::MAX as u128 {
                Interval { lo: 0, hi: uhi as i64 }
            } else {
                Interval::TOP
            }
        }
    }
}

/// Shift amount range: wasm masks the amount by `bits - 1`.
fn shift_amount(w: Width, b: Interval) -> (u32, u32) {
    let bits = match w {
        Width::W32 => 32i64,
        Width::W64 => 64,
    };
    if b.lo >= 0 && b.hi < bits {
        (b.lo as u32, b.hi as u32)
    } else {
        (0, bits as u32 - 1)
    }
}

fn int_bin(w: Width, k: IntBin, a: Interval, b: Interval) -> Interval {
    if a.is_empty() || b.is_empty() {
        return Interval::EMPTY;
    }
    let top = w.range();
    match k {
        IntBin::Add => fit(w, a.lo as i128 + b.lo as i128, a.hi as i128 + b.hi as i128),
        IntBin::Sub => fit(w, a.lo as i128 - b.hi as i128, a.hi as i128 - b.lo as i128),
        IntBin::Mul => {
            let ps = [
                a.lo as i128 * b.lo as i128,
                a.lo as i128 * b.hi as i128,
                a.hi as i128 * b.lo as i128,
                a.hi as i128 * b.hi as i128,
            ];
            fit(w, ps.iter().copied().min().unwrap_or(0), ps.iter().copied().max().unwrap_or(0))
        }
        IntBin::DivS | IntBin::RemS => {
            // |result| is bounded by |dividend| (quotient magnitude can
            // only shrink for |divisor| >= 1; the MIN/-1 case traps).
            let m = (a.lo as i128).abs().max((a.hi as i128).abs());
            let iv = fit(w, -m, m);
            if k == IntBin::RemS && a.lo >= 0 {
                iv.meet(Interval { lo: 0, hi: a.hi })
            } else {
                iv
            }
        }
        IntBin::DivU => match unsigned_view(w, a) {
            Some((_, uhi)) => from_unsigned_max(w, uhi),
            None => from_unsigned_max(w, u128::MAX),
        },
        IntBin::RemU => {
            // result <u divisor (when divisor != 0) and result <=u dividend.
            let mut uhi = match unsigned_view(w, a) {
                Some((_, ua)) => ua,
                None => u128::MAX,
            };
            if let Some((blo, bhi)) = unsigned_view(w, b) {
                if blo >= 1 {
                    uhi = uhi.min(bhi - 1);
                }
            }
            from_unsigned_max(w, uhi)
        }
        IntBin::And => {
            // AND with a non-negative operand clears the sign bit and
            // cannot exceed that operand.
            let nn: Vec<i64> =
                [a, b].iter().filter(|iv| iv.lo >= 0).map(|iv| iv.hi).collect();
            match nn.iter().copied().min() {
                Some(h) => Interval { lo: 0, hi: h },
                None => top,
            }
        }
        IntBin::Or | IntBin::Xor => {
            if a.lo >= 0 && b.lo >= 0 {
                Interval { lo: 0, hi: pow2_mask(a.hi.max(b.hi)) }
            } else {
                top
            }
        }
        IntBin::Shl => {
            let (slo, shi) = shift_amount(w, b);
            if a.lo >= 0 {
                let hi = (a.hi as i128) << shi;
                if hi <= top.hi as i128 {
                    Interval { lo: a.lo << slo, hi: hi as i64 }
                } else {
                    top
                }
            } else {
                top
            }
        }
        IntBin::ShrS => {
            let (slo, shi) = shift_amount(w, b);
            let cands =
                [a.lo >> slo, a.lo >> shi, a.hi >> slo, a.hi >> shi];
            Interval {
                lo: cands.iter().copied().min().unwrap_or(top.lo),
                hi: cands.iter().copied().max().unwrap_or(top.hi),
            }
        }
        IntBin::ShrU => {
            let (slo, shi) = shift_amount(w, b);
            if a.lo >= 0 {
                // Non-negative: unsigned == signed shift.
                Interval { lo: a.lo >> shi, hi: a.hi >> slo }
            } else if slo >= 1 {
                let umax = match w {
                    Width::W32 => u32::MAX as u128,
                    Width::W64 => u64::MAX as u128,
                };
                from_unsigned_max(w, umax >> slo)
            } else {
                top
            }
        }
        IntBin::Rot => top,
    }
}

// ---------------------------------------------------------------------------
// Float transfer kernels
// ---------------------------------------------------------------------------

/// Round an interval's bounds outward to `f32`-representable values when
/// the op executes in `f32`.
fn at_width(w: Width, f: FInterval) -> FInterval {
    match w {
        Width::W64 => f,
        Width::W32 => {
            if f.lo > f.hi {
                f
            } else {
                FInterval { lo: f32_below(f.lo), hi: f32_above(f.hi), nan: f.nan }
            }
        }
    }
}

fn unbounded(f: FInterval) -> bool {
    f.lo == f64::NEG_INFINITY || f.hi == f64::INFINITY
}

fn contains_zero(f: FInterval) -> bool {
    f.lo <= 0.0 && f.hi >= 0.0
}

fn float_bin(w: Width, k: FBin, a0: FInterval, b0: FInterval) -> FInterval {
    let a = at_width(w, a0);
    let b = at_width(w, b0);
    if a.is_empty() || b.is_empty() {
        return FInterval::EMPTY;
    }
    let nan = a.nan || b.nan;
    if a.lo > a.hi || b.lo > b.hi {
        // One side is NaN-only: arithmetic yields NaN.
        return FInterval { lo: f64::INFINITY, hi: f64::NEG_INFINITY, nan: true };
    }
    let r = match k {
        FBin::Add => {
            let (lo, hi) = (a.lo + b.lo, a.hi + b.hi);
            if lo.is_nan() || hi.is_nan() {
                FInterval::TOP
            } else {
                FInterval { lo, hi, nan }
            }
        }
        FBin::Sub => {
            let (lo, hi) = (a.lo - b.hi, a.hi - b.lo);
            if lo.is_nan() || hi.is_nan() {
                FInterval::TOP
            } else {
                FInterval { lo, hi, nan }
            }
        }
        FBin::Mul => {
            // 0 * inf = NaN can arise away from endpoints; go TOP when
            // an unbounded interval meets one containing zero.
            if (unbounded(a) && contains_zero(b)) || (unbounded(b) && contains_zero(a)) {
                FInterval::TOP
            } else {
                let ps = [a.lo * b.lo, a.lo * b.hi, a.hi * b.lo, a.hi * b.hi];
                if ps.iter().any(|p| p.is_nan()) {
                    FInterval::TOP
                } else {
                    FInterval {
                        lo: ps.iter().copied().fold(f64::INFINITY, f64::min),
                        hi: ps.iter().copied().fold(f64::NEG_INFINITY, f64::max),
                        nan,
                    }
                }
            }
        }
        FBin::Div => {
            if contains_zero(b) || (unbounded(a) && unbounded(b)) {
                FInterval::TOP
            } else {
                let ps = [a.lo / b.lo, a.lo / b.hi, a.hi / b.lo, a.hi / b.hi];
                if ps.iter().any(|p| p.is_nan()) {
                    FInterval::TOP
                } else {
                    FInterval {
                        lo: ps.iter().copied().fold(f64::INFINITY, f64::min),
                        hi: ps.iter().copied().fold(f64::NEG_INFINITY, f64::max),
                        nan,
                    }
                }
            }
        }
        FBin::Min => FInterval { lo: a.lo.min(b.lo), hi: a.hi.min(b.hi), nan },
        FBin::Max => FInterval { lo: a.lo.max(b.lo), hi: a.hi.max(b.hi), nan },
        FBin::CopySign => {
            let m = a.lo.abs().max(a.hi.abs());
            FInterval { lo: -m, hi: m, nan: a.nan }
        }
    };
    at_width(w, r)
}

// ---------------------------------------------------------------------------
// Transfer evaluation
// ---------------------------------------------------------------------------

fn eval_bin(state: &[AbsVal], op: BinOpKind, a: Operand, b: Operand) -> AbsVal {
    match op {
        BinOpKind::Int(w, k) => {
            AbsVal::int(int_bin(w, k, read_int(state, a, w), read_int(state, b, w)))
        }
        BinOpKind::Float(w, k) => {
            AbsVal::float(float_bin(w, k, read_float(state, a, w), read_float(state, b, w)))
        }
        BinOpKind::Cmp => AbsVal::int(Interval { lo: 0, hi: 1 }),
    }
}

/// Evaluate a binary op on already-read abstract values (for chains,
/// where the intermediate has no register).
fn eval_bin_vals(op: BinOpKind, a: AbsVal, b: AbsVal) -> AbsVal {
    match op {
        BinOpKind::Int(w, k) => {
            AbsVal::int(int_bin(w, k, a.int.meet(w.range()), b.int.meet(w.range())))
        }
        BinOpKind::Float(w, k) => {
            AbsVal::float(float_bin(w, k, at_width(w, a.fl), at_width(w, b.fl)))
        }
        BinOpKind::Cmp => AbsVal::int(Interval { lo: 0, hi: 1 }),
    }
}

fn operand_val(state: &[AbsVal], o: Operand) -> AbsVal {
    match o {
        Operand::Reg(r) => state.get(r as usize).map_or(AbsVal::TOP, |v| *v),
        Operand::Const(bits) => AbsVal::of_bits(bits),
    }
}

fn eval_un(state: &[AbsVal], op: UnKind, a: u32) -> AbsVal {
    let v = state.get(a as usize).map_or(AbsVal::TOP, |v| *v);
    match op {
        UnKind::Eqz => AbsVal::int(Interval { lo: 0, hi: 1 }),
        UnKind::BitCount(w) => AbsVal::int(Interval {
            lo: 0,
            hi: match w {
                Width::W32 => 32,
                Width::W64 => 64,
            },
        }),
        UnKind::Wrap => {
            let i = v.int;
            if i.subset(I32_RANGE) {
                AbsVal::int(i)
            } else {
                AbsVal::int(I32_RANGE)
            }
        }
        UnKind::ExtendS => AbsVal::int(v.int.meet(I32_RANGE)),
        UnKind::ExtendU => {
            let i = v.int.meet(I32_RANGE);
            if i.lo >= 0 {
                AbsVal::int(i)
            } else {
                AbsVal::int(Interval { lo: 0, hi: u32::MAX as i64 })
            }
        }
        UnKind::Sext { bits } => {
            let half = 1i64 << (bits - 1);
            AbsVal::int(Interval { lo: -half, hi: half - 1 })
        }
        UnKind::Trunc { signed, dst } => {
            let f = v.fl;
            if f.lo > f.hi {
                return AbsVal::int(dst.range());
            }
            let clamp = |x: f64, lo: i64, hi: i64| -> i64 {
                let t = x.trunc();
                if t <= lo as f64 {
                    lo
                } else if t >= hi as f64 {
                    hi
                } else {
                    t as i64
                }
            };
            if signed {
                let r = dst.range();
                AbsVal::int(Interval::new(clamp(f.lo, r.lo, r.hi), clamp(f.hi, r.lo, r.hi)))
            } else {
                // Unsigned result, then signed reading of the producer.
                let umax = match dst {
                    Width::W32 => u32::MAX as u128,
                    Width::W64 => u64::MAX as u128,
                };
                let uhi = if f.hi <= 0.0 {
                    0
                } else if f.hi >= umax as f64 {
                    umax
                } else {
                    f.hi.trunc() as u128
                };
                AbsVal::int(from_unsigned_max(dst, uhi))
            }
        }
        UnKind::Convert { signed, src, dst } => {
            let i = v.int.meet(src.range());
            if i.is_empty() {
                return AbsVal::float(FInterval::EMPTY);
            }
            let (lo, hi) = if signed || i.lo >= 0 {
                (i.lo as f64, i.hi as f64)
            } else {
                // Unsigned reading of a sign-spanning interval.
                match src {
                    Width::W32 => (0.0, u32::MAX as f64),
                    Width::W64 => (0.0, u64::MAX as f64),
                }
            };
            // int-as-f64 rounds to nearest; nudge outward to stay sound
            // for 64-bit sources that don't fit exactly.
            let lo = if lo > i64::MIN as f64 { lo - 1.0 } else { lo };
            let hi = if hi < u64::MAX as f64 { hi + 1.0 } else { hi };
            AbsVal::float(at_width(dst, FInterval { lo, hi, nan: false }))
        }
        UnKind::Demote => AbsVal::float(at_width(Width::W32, v.fl)),
        UnKind::Promote => AbsVal::float(v.fl),
        UnKind::FNeg(w) => {
            let f = at_width(w, v.fl);
            if f.lo > f.hi {
                AbsVal::float(f)
            } else {
                AbsVal::float(FInterval { lo: -f.hi, hi: -f.lo, nan: f.nan })
            }
        }
        UnKind::FAbs(w) => {
            let f = at_width(w, v.fl);
            if f.lo > f.hi {
                AbsVal::float(f)
            } else {
                let hi = f.lo.abs().max(f.hi.abs());
                let lo = if contains_zero(f) { 0.0 } else { f.lo.abs().min(f.hi.abs()) };
                AbsVal::float(FInterval { lo, hi, nan: f.nan })
            }
        }
        UnKind::FMono(w, m) => {
            let f = at_width(w, v.fl);
            if f.lo > f.hi {
                return AbsVal::float(f);
            }
            let apply = |x: f64| match m {
                MonoF::Sqrt => x.sqrt(),
                MonoF::Ceil => x.ceil(),
                MonoF::Floor => x.floor(),
                MonoF::Trunc => x.trunc(),
                MonoF::Nearest => {
                    // round-half-to-even; floor/ceil bracket it.
                    x.floor()
                }
            };
            let apply_hi = |x: f64| match m {
                MonoF::Nearest => x.ceil(),
                _ => apply(x),
            };
            let (mut lo, hi) = (apply(f.lo), apply_hi(f.hi));
            let mut nan = f.nan;
            if m == MonoF::Sqrt && f.lo < 0.0 {
                nan = true;
                lo = 0.0;
            }
            if lo.is_nan() || hi.is_nan() {
                AbsVal::float(FInterval { lo: f64::NEG_INFINITY, hi: f64::INFINITY, nan: true })
            } else {
                AbsVal::float(at_width(w, FInterval { lo, hi, nan }))
            }
        }
        UnKind::Reinterpret => AbsVal::TOP,
    }
}

/// The abstract value an op's transfer produces in `state`.
pub fn eval_transfer(state: &[AbsVal], t: &Transfer) -> AbsVal {
    match t {
        Transfer::Bits(bits) => AbsVal::of_bits(*bits),
        Transfer::Copy(r) => state.get(*r as usize).map_or(AbsVal::TOP, |v| *v),
        Transfer::Bin { op, a, b } => eval_bin(state, *op, *a, *b),
        Transfer::Chain { op1, op2, a, b, c, swapped } => {
            let t = eval_bin_vals(*op1, operand_val(state, *a), operand_val(state, *b));
            let cv = operand_val(state, *c);
            if *swapped {
                eval_bin_vals(*op2, cv, t)
            } else {
                eval_bin_vals(*op2, t, cv)
            }
        }
        Transfer::Un { op, a } => eval_un(state, *op, *a),
        Transfer::Join(a, b) => {
            operand_val(state, Operand::Reg(*a)).join(operand_val(state, Operand::Reg(*b)))
        }
        Transfer::Range(iv) => AbsVal::int(*iv),
        Transfer::Opaque => AbsVal::TOP,
    }
}

// ---------------------------------------------------------------------------
// Guard refinement
// ---------------------------------------------------------------------------

fn sat_add(v: i64, d: i64) -> i64 {
    v.saturating_add(d)
}

/// Refined `(a, b)` intervals under predicate `kind` at width `w`, or
/// `None` when the predicate is infeasible for the current intervals
/// (the edge is unreachable).
fn refine_pair(kind: CmpKind, ia: Interval, ib: Interval) -> Option<(Interval, Interval)> {
    if ia.is_empty() || ib.is_empty() {
        return None;
    }
    let (ra, rb) = match kind {
        CmpKind::Eq => {
            let m = ia.meet(ib);
            (m, m)
        }
        CmpKind::Ne => {
            let mut ra = ia;
            let mut rb = ib;
            if let Some(v) = ib.singleton() {
                if ra.lo == v {
                    ra = Interval::new(sat_add(v, 1), ra.hi);
                } else if ra.hi == v {
                    ra = Interval::new(ra.lo, sat_add(v, -1));
                }
            }
            if let Some(v) = ia.singleton() {
                if rb.lo == v {
                    rb = Interval::new(sat_add(v, 1), rb.hi);
                } else if rb.hi == v {
                    rb = Interval::new(rb.lo, sat_add(v, -1));
                }
            }
            if ia.singleton().is_some() && ia == ib {
                return None;
            }
            (ra, rb)
        }
        CmpKind::LtS => (
            ia.meet(Interval::new(i64::MIN, sat_add(ib.hi, -1))),
            ib.meet(Interval::new(sat_add(ia.lo, 1), i64::MAX)),
        ),
        CmpKind::LeS => {
            (ia.meet(Interval::new(i64::MIN, ib.hi)), ib.meet(Interval::new(ia.lo, i64::MAX)))
        }
        CmpKind::GtS => (
            ia.meet(Interval::new(sat_add(ib.lo, 1), i64::MAX)),
            ib.meet(Interval::new(i64::MIN, sat_add(ia.hi, -1))),
        ),
        CmpKind::GeS => {
            (ia.meet(Interval::new(ib.lo, i64::MAX)), ib.meet(Interval::new(i64::MIN, ia.hi)))
        }
        // Unsigned predicates: refinements are justified only when the
        // relevant side is known non-negative (then unsigned order
        // coincides with signed order on the learned bound).
        CmpKind::LtU => {
            let ra = if ib.lo >= 0 {
                ia.meet(Interval::new(0, sat_add(ib.hi, -1)))
            } else {
                ia
            };
            let rb = if ib.lo >= 0 && ia.lo >= 0 {
                ib.meet(Interval::new(sat_add(ia.lo, 1), i64::MAX))
            } else {
                ib
            };
            (ra, rb)
        }
        CmpKind::LeU => {
            let ra = if ib.lo >= 0 { ia.meet(Interval::new(0, ib.hi)) } else { ia };
            let rb = if ib.lo >= 0 && ia.lo >= 0 {
                ib.meet(Interval::new(ia.lo, i64::MAX))
            } else {
                ib
            };
            (ra, rb)
        }
        CmpKind::GtU => {
            let ra = if ia.lo >= 0 && ib.lo >= 0 {
                ia.meet(Interval::new(sat_add(ib.lo, 1), i64::MAX))
            } else {
                ia
            };
            let rb = if ia.lo >= 0 {
                ib.meet(Interval::new(0, sat_add(ia.hi, -1)))
            } else {
                ib
            };
            (ra, rb)
        }
        CmpKind::GeU => {
            let ra = if ia.lo >= 0 && ib.lo >= 0 {
                ia.meet(Interval::new(ib.lo, i64::MAX))
            } else {
                ia
            };
            let rb = if ia.lo >= 0 { ib.meet(Interval::new(0, ia.hi)) } else { ib };
            (ra, rb)
        }
    };
    if ra.is_empty() || rb.is_empty() {
        return None;
    }
    Some((ra, rb))
}

/// Apply `guard` (or its negation, for the fall-through edge) to a
/// state. Returns `None` when the edge is infeasible.
fn refine_state(state: &[AbsVal], guard: &Guard, taken: bool) -> Option<Vec<AbsVal>> {
    let kind = if taken { guard.kind } else { guard.kind.negate() };
    let ia = read_int(state, guard.a, guard.w);
    let ib = read_int(state, guard.b, guard.w);
    let (ra, rb) = refine_pair(kind, ia, ib)?;
    let mut out = state.to_vec();
    if let Operand::Reg(r) = guard.a {
        if let Some(slot) = out.get_mut(r as usize) {
            slot.int = slot.int.meet(ra);
        }
    }
    if let Operand::Reg(r) = guard.b {
        if let Some(slot) = out.get_mut(r as usize) {
            slot.int = slot.int.meet(rb);
        }
    }
    Some(out)
}

// ---------------------------------------------------------------------------
// Fixpoint
// ---------------------------------------------------------------------------

/// Result of [`analyze`]: the CFG plus per-block entry states (`None`
/// for blocks the analysis proves unreachable).
pub struct Analysis {
    /// The control-flow graph the fixpoint ran over.
    pub cfg: Cfg,
    /// Per-block entry state, indexed by block.
    pub entry: Vec<Option<Vec<AbsVal>>>,
}

fn initial_state(nregs: usize, nparams: usize) -> Vec<AbsVal> {
    // Params are unconstrained; every other slot is zero-initialised by
    // the execution engines (mirroring wasm local zero-init).
    (0..nregs).map(|r| if r < nparams { AbsVal::TOP } else { AbsVal::zero() }).collect()
}

/// Per-instruction observer for [`flow_block`]: called with the
/// instruction index and the state *before* its transfer applies.
type Visit<'a> = &'a mut dyn FnMut(usize, &[AbsVal]);

/// Push a block's entry state through its ops and produce the refined
/// out-state per successor edge `(succ_block, state)`.
fn flow_block(
    ops: &[AbsOp],
    cfg: &Cfg,
    b: usize,
    mut state: Vec<AbsVal>,
    mut visit: Option<Visit<'_>>,
) -> Vec<(usize, Vec<AbsVal>)> {
    let blk = &cfg.blocks[b];
    for (i, op) in ops.iter().enumerate().take(blk.end).skip(blk.start) {
        if let Some(f) = visit.as_deref_mut() {
            f(i, &state);
        }
        if let Some(rd) = op.def {
            let v = eval_transfer(&state, &op.transfer);
            if let Some(slot) = state.get_mut(rd as usize) {
                *slot = v;
            }
        }
    }
    let last = blk.end - 1;
    let flow = &ops[last].flow;
    let guard = ops[last].guard.as_ref();
    let mut out: Vec<(usize, Vec<AbsVal>)> = Vec::new();
    let mut push = |succ: usize, st: Vec<AbsVal>| {
        for (s, old) in out.iter_mut() {
            if *s == succ {
                let joined: Vec<AbsVal> =
                    old.iter().zip(&st).map(|(a, b)| a.join(*b)).collect();
                *old = joined;
                return;
            }
        }
        out.push((succ, st));
    };
    if flow.falls_through && last + 1 < ops.len() {
        let succ = cfg.block_of[last + 1];
        match guard {
            Some(g) => {
                if let Some(st) = refine_state(&state, g, false) {
                    push(succ, st);
                }
            }
            None => push(succ, state.clone()),
        }
    }
    for &t in &flow.targets {
        let succ = cfg.block_of[t as usize];
        match guard {
            Some(g) => {
                if let Some(st) = refine_state(&state, g, true) {
                    push(succ, st);
                }
            }
            None => push(succ, state.clone()),
        }
    }
    out
}

/// Runs the widening/narrowing interval fixpoint over `ops`.
///
/// `nregs` is the register-file size, `nparams` the number of leading
/// parameter registers (unconstrained at entry; the rest start at zero,
/// matching engine zero-initialisation).
pub fn analyze(ops: &[AbsOp], nregs: usize, nparams: usize) -> Analysis {
    let flows: Vec<OpFlow> = ops.iter().map(|o| o.flow.clone()).collect();
    let cfg = Cfg::build(&flows);
    let nb = cfg.blocks.len();
    let entry_block = cfg.rpo[0];
    let init = initial_state(nregs, nparams);

    // Seed widening thresholds with guard constants (and their
    // neighbours, for strict comparisons) so loop bounds become landing
    // points instead of being overshot to a type extreme.
    let mut thresholds: Vec<i64> = Vec::new();
    for op in ops {
        if let Some(g) = &op.guard {
            for o in [g.a, g.b] {
                if let Operand::Const(bits) = o {
                    for v in [bits as i64, bits as u32 as i32 as i64] {
                        thresholds.push(v);
                        thresholds.push(v.saturating_sub(1));
                        thresholds.push(v.saturating_add(1));
                    }
                }
            }
        }
    }
    thresholds.sort_unstable();
    thresholds.dedup();

    const WIDEN_AFTER: u32 = 2;
    let max_iters = 16 * nb + 64;

    let mut entry: Vec<Option<Vec<AbsVal>>> = vec![None; nb];
    entry[entry_block] = Some(init.clone());
    let mut joins = vec![0u32; nb];
    let mut iters = 0usize;
    loop {
        let mut changed = false;
        iters += 1;
        for &b in &cfg.rpo {
            let Some(st) = entry[b].clone() else { continue };
            for (succ, new) in flow_block(ops, &cfg, b, st, None) {
                if succ == entry_block {
                    // The entry state is an invariant floor: join it in
                    // so back edges into op 0 stay sound.
                    match &mut entry[entry_block] {
                        Some(old) => {
                            let j: Vec<AbsVal> =
                                old.iter().zip(&new).map(|(a, b)| a.join(*b)).collect();
                            let j = if joins[succ] >= WIDEN_AFTER {
                                old.iter().zip(&j).map(|(a, b)| a.widen_with(*b, &thresholds)).collect()
                            } else {
                                j
                            };
                            if j != *old {
                                *old = j;
                                joins[succ] += 1;
                                changed = true;
                            }
                        }
                        None => unreachable!("entry block seeded"),
                    }
                    continue;
                }
                match &mut entry[succ] {
                    None => {
                        entry[succ] = Some(new);
                        joins[succ] += 1;
                        changed = true;
                    }
                    Some(old) => {
                        let j: Vec<AbsVal> =
                            old.iter().zip(&new).map(|(a, b)| a.join(*b)).collect();
                        let j: Vec<AbsVal> = if joins[succ] >= WIDEN_AFTER {
                            old.iter().zip(&j).map(|(a, b)| a.widen_with(*b, &thresholds)).collect()
                        } else {
                            j
                        };
                        if j != *old {
                            *old = j;
                            joins[succ] += 1;
                            changed = true;
                        }
                    }
                }
            }
        }
        if !changed {
            break;
        }
        if iters > max_iters {
            // Defensive bail-out: give every reachable block TOP.
            let top = vec![AbsVal::TOP; nregs];
            for &b in &cfg.rpo {
                entry[b] = Some(if b == entry_block { init.clone() } else { top.clone() });
            }
            break;
        }
    }

    // Two descending (narrowing) passes: recompute each entry as the
    // plain join over predecessor edge-states of the post-fixpoint
    // solution. Sound because applying F to a post-fixpoint stays above
    // the least fixpoint.
    for _ in 0..2 {
        let mut next: Vec<Option<Vec<AbsVal>>> = vec![None; nb];
        next[entry_block] = Some(init.clone());
        for &b in &cfg.rpo {
            let Some(st) = entry[b].clone() else { continue };
            for (succ, new) in flow_block(ops, &cfg, b, st, None) {
                match &mut next[succ] {
                    None => next[succ] = Some(new),
                    Some(old) => {
                        let j: Vec<AbsVal> =
                            old.iter().zip(&new).map(|(a, b)| a.join(*b)).collect();
                        *old = j;
                    }
                }
            }
        }
        entry = next;
    }

    Analysis { cfg, entry }
}

impl Analysis {
    /// Replays the per-op entry state over every reachable block:
    /// `visit(op_index, state_before_op)`.
    pub fn walk(&self, ops: &[AbsOp], mut visit: impl FnMut(usize, &[AbsVal])) {
        for &b in &self.cfg.rpo {
            let Some(st) = self.entry[b].clone() else { continue };
            flow_block(ops, &self.cfg, b, st, Some(&mut visit));
        }
    }

    /// True when the analysis proved the block containing `op` can never
    /// execute (CFG-unreachable or all incoming edges infeasible).
    pub fn op_unreachable(&self, op: usize) -> bool {
        self.entry[self.cfg.block_of[op]].is_none()
    }
}

// ---------------------------------------------------------------------------
// Safety predicates (shared by the prover and the checker)
// ---------------------------------------------------------------------------

/// True when an address interval proves `addr + offset + len <=
/// mem_bytes` for a u32 address read (memory can only grow, so the
/// declared minimum is a sound lower bound at any program point).
pub fn mem_safe(addr: Interval, offset: u64, len: u64, mem_bytes: u64) -> bool {
    !addr.is_empty()
        && addr.lo >= 0
        && (addr.hi as u64).saturating_add(offset).saturating_add(len) <= mem_bytes
}

/// True when the divisor interval (and optionally the dividend) proves
/// an integer division cannot trap.
pub fn div_safe(divisor: Interval, dividend: Option<Interval>, w: Width, signed: bool) -> bool {
    if divisor.is_empty() {
        return false;
    }
    let nonzero = divisor.lo > 0 || divisor.hi < 0;
    if !nonzero {
        return false;
    }
    if !signed {
        return true;
    }
    // Signed overflow: MIN / -1.
    let no_minus_one = divisor.lo > -1 || divisor.hi < -1;
    let no_min = dividend.is_some_and(|d| !d.is_empty() && d.lo > w.min_signed());
    no_minus_one || no_min
}

/// True when a float interval proves a `trunc` to (`signed`, `dst`)
/// cannot trap.
pub fn trunc_safe(f: FInterval, signed: bool, dst: Width) -> bool {
    if f.nan {
        return false;
    }
    if f.lo > f.hi {
        return true; // no value at all: vacuously safe
    }
    match (dst, signed) {
        (Width::W32, true) => f.lo > -2147483649.0 && f.hi < 2147483648.0,
        (Width::W32, false) => f.lo > -1.0 && f.hi < 4294967296.0,
        (Width::W64, true) => f.lo >= -9223372036854775808.0 && f.hi < 9223372036854775808.0,
        (Width::W64, false) => f.lo > -1.0 && f.hi < 18446744073709551616.0,
    }
}

// ---------------------------------------------------------------------------
// Proof obligations
// ---------------------------------------------------------------------------

/// Which check an obligation discharges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckKind {
    /// Memory access proven in bounds.
    MemInBounds,
    /// Division proven non-trapping.
    DivSafe,
    /// Truncation proven non-trapping.
    TruncSafe,
}

/// The range fact an obligation claims.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Fact {
    /// An integer interval (address or divisor).
    Int(Interval),
    /// A float interval (truncation source).
    Float(FInterval),
}

/// A machine-checkable elimination proof: "at op `op`, the checked
/// quantity lies in `fact` (witnessed by the analysis, optionally
/// sharpened by the dominating guard `guard`), and `fact` implies the
/// check cannot fail".
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Obligation {
    /// Op index carrying the eliminated check.
    pub op: u32,
    /// Which check is discharged.
    pub kind: CheckKind,
    /// Claimed range fact.
    pub fact: Fact,
    /// Op index of a dominating branch guard that the fact relies on,
    /// if any.
    pub guard: Option<u32>,
}

/// Independently re-derives every obligation against a fresh analysis
/// of `ops`. Returns one message per rejected obligation (empty =
/// all proofs check out).
pub fn check_obligations(
    ops: &[AbsOp],
    nregs: usize,
    nparams: usize,
    mem_bytes: u64,
    obligations: &[Obligation],
) -> Vec<String> {
    let mut errs = Vec::new();
    if obligations.is_empty() {
        return errs;
    }
    let analysis = analyze(ops, nregs, nparams);
    let idom = analysis.cfg.dominators();

    // Snapshot entry states at every obligation op in one replay.
    let mut want: Vec<u32> = obligations.iter().map(|o| o.op).collect();
    want.sort_unstable();
    want.dedup();
    let mut states: Vec<(u32, Vec<AbsVal>)> = Vec::new();
    analysis.walk(ops, |i, st| {
        if want.binary_search(&(i as u32)).is_ok() {
            states.push((i as u32, st.to_vec()));
        }
    });

    for (n, ob) in obligations.iter().enumerate() {
        let tag = format!("obligation #{n} (op {})", ob.op);
        let Some(op) = ops.get(ob.op as usize) else {
            errs.push(format!("{tag}: op index out of range"));
            continue;
        };
        let Some(state) = states.iter().find(|(i, _)| *i == ob.op).map(|(_, s)| s) else {
            errs.push(format!("{tag}: op is unreachable, fact cannot be re-derived"));
            continue;
        };

        // 1. The claimed fact must be implied by the analysis (the
        //    derived interval must be a subset of the claim).
        // 2. The claimed fact must imply the check cannot fail.
        match (&op.check, ob.kind, ob.fact) {
            (Some(Check::Mem { addr, offset, len }), CheckKind::MemInBounds, Fact::Int(claim)) => {
                let derived = read_int(state, Operand::Reg(*addr), Width::W32);
                if !derived.subset(claim) {
                    errs.push(format!(
                        "{tag}: derived address {derived:?} is not within claimed {claim:?}"
                    ));
                } else if !mem_safe(claim, *offset, *len, mem_bytes) {
                    errs.push(format!(
                        "{tag}: claimed address {claim:?} does not prove {offset}+{len} in {mem_bytes} bytes"
                    ));
                }
            }
            (
                Some(Check::Div { w, signed, divisor, dividend }),
                CheckKind::DivSafe,
                Fact::Int(claim),
            ) => {
                let Some(dv) = divisor else {
                    errs.push(format!("{tag}: division has no identifiable divisor"));
                    continue;
                };
                let derived = read_int(state, *dv, *w);
                let dd = dividend.map(|d| read_int(state, d, *w));
                if !derived.subset(claim) {
                    errs.push(format!(
                        "{tag}: derived divisor {derived:?} is not within claimed {claim:?}"
                    ));
                } else if !div_safe(claim, dd, *w, *signed) {
                    errs.push(format!("{tag}: claimed divisor {claim:?} does not prove safety"));
                }
            }
            (Some(Check::Trunc { src, signed, dst }), CheckKind::TruncSafe, Fact::Float(claim)) => {
                let derived = read_float(state, Operand::Reg(*src), Width::W64);
                if !derived.subset(claim) {
                    errs.push(format!(
                        "{tag}: derived source {derived:?} is not within claimed {claim:?}"
                    ));
                } else if !trunc_safe(claim, *signed, *dst) {
                    errs.push(format!("{tag}: claimed source {claim:?} does not prove safety"));
                }
            }
            (None, ..) => errs.push(format!("{tag}: op carries no check")),
            _ => errs.push(format!("{tag}: obligation kind does not match the op's check")),
        }

        // 3. The cited guard, if any, must be a real branch guard that
        //    strictly dominates the check.
        if let Some(g) = ob.guard {
            match ops.get(g as usize) {
                Some(gop) if gop.guard.is_some() => {
                    let gb = analysis.cfg.block_of[g as usize];
                    let ob_b = analysis.cfg.block_of[ob.op as usize];
                    if gb == ob_b || !analysis.cfg.dominates(&idom, gb, ob_b) {
                        errs.push(format!("{tag}: guard op {g} does not dominate the check"));
                    }
                }
                _ => errs.push(format!("{tag}: guard op {g} is not a branch guard")),
            }
        }
    }
    errs
}

// ---------------------------------------------------------------------------
// Audit
// ---------------------------------------------------------------------------

/// Static per-function facts for audit reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AuditFacts {
    /// Basic blocks in the function.
    pub blocks: u64,
    /// Blocks the analysis proves unreachable.
    pub unreachable_blocks: u64,
    /// Runtime safety checks in the function.
    pub checks_total: u64,
    /// Checks the analysis proves can never fail.
    pub checks_provable: u64,
    /// Check sites proven to *always* trap when reached at the declared
    /// minimum memory size (before any growth).
    pub always_trapping: u64,
    /// Memory accesses whose address is a compile-time constant.
    pub const_addr_loads: u64,
}

/// Summarises `ops` for a static audit report.
pub fn audit(ops: &[AbsOp], nregs: usize, nparams: usize, mem_bytes: u64) -> AuditFacts {
    let analysis = analyze(ops, nregs, nparams);
    let mut facts = AuditFacts {
        blocks: analysis.cfg.blocks.len() as u64,
        ..AuditFacts::default()
    };
    for b in 0..analysis.cfg.blocks.len() {
        if analysis.entry[b].is_none() {
            facts.unreachable_blocks += 1;
        }
    }
    facts.checks_total = ops.iter().filter(|o| o.check.is_some()).count() as u64;
    analysis.walk(ops, |i, state| {
        let Some(check) = &ops[i].check else { return };
        match check {
            Check::Mem { addr, offset, len } => {
                let iv = read_int(state, Operand::Reg(*addr), Width::W32);
                if mem_safe(iv, *offset, *len, mem_bytes) {
                    facts.checks_provable += 1;
                } else if !iv.is_empty()
                    && iv.lo >= 0
                    && (iv.lo as u64).saturating_add(*offset).saturating_add(*len) > mem_bytes
                {
                    facts.always_trapping += 1;
                }
                if iv.singleton().is_some() {
                    facts.const_addr_loads += 1;
                }
            }
            Check::Div { w, signed, divisor, dividend } => {
                let Some(dv) = divisor else { return };
                let iv = read_int(state, *dv, *w);
                let dd = dividend.map(|d| read_int(state, d, *w));
                if div_safe(iv, dd, *w, *signed) {
                    facts.checks_provable += 1;
                } else if iv.singleton() == Some(0) {
                    facts.always_trapping += 1;
                }
            }
            Check::Trunc { src, signed, dst } => {
                let f = read_float(state, Operand::Reg(*src), Width::W64);
                if trunc_safe(f, *signed, *dst) {
                    facts.checks_provable += 1;
                } else if f.lo > f.hi && f.nan {
                    facts.always_trapping += 1;
                }
            }
        }
    });
    facts
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(def: Option<u32>, transfer: Transfer) -> AbsOp {
        AbsOp { flow: OpFlow::linear(), def, transfer, guard: None, check: None }
    }

    trait Tap: Sized {
        fn tap(mut self, f: impl FnOnce(&mut Self)) -> Self {
            f(&mut self);
            self
        }
    }
    impl<T> Tap for T {}

    fn halt() -> AbsOp {
        AbsOp::nop().tap(|o| o.flow = OpFlow { targets: Vec::new(), falls_through: false })
    }

    fn int_of(a: &Analysis, ops: &[AbsOp], at: usize, reg: u32) -> Interval {
        let mut got = None;
        a.walk(ops, |i, st| {
            if i == at {
                got = Some(read_int(st, Operand::Reg(reg), Width::W32));
            }
        });
        got.expect("op reachable")
    }

    #[test]
    fn interval_algebra() {
        let a = Interval::new(0, 10);
        let b = Interval::new(5, 20);
        assert_eq!(a.meet(b), Interval::new(5, 10));
        assert_eq!(a.join(b), Interval::new(0, 20));
        assert!(Interval::new(3, 7).subset(a));
        assert!(!b.subset(a));
        assert!(Interval::new(4, 2).is_empty());
        assert_eq!(Interval::EMPTY.join(a), a);
        assert_eq!(a.meet(Interval::new(11, 12)), Interval::EMPTY);
    }

    #[test]
    fn widening_jumps_to_thresholds() {
        let w = Interval::exact(0).widen(Interval::new(0, 3));
        assert_eq!(w, Interval::new(0, 255));
        let w2 = w.widen(Interval::new(-2, 300));
        assert_eq!(w2.lo, i32::MIN as i64);
        assert_eq!(w2.hi, 65535);
        // Seeded thresholds land exactly on program constants.
        let w3 = w.widen_with(Interval::new(0, 300), &[299, 300, 301]);
        assert_eq!(w3.hi, 300);
    }

    #[test]
    fn const_joins_both_width_readings() {
        let v = AbsVal::of_bits(0xFFFF_FFFF);
        assert!(v.int.contains(-1));
        assert!(v.int.contains(u32::MAX as i64));
    }

    #[test]
    fn mask_transfer_is_nonnegative() {
        let st = vec![AbsVal::TOP];
        let v = eval_bin(
            &st,
            BinOpKind::Int(Width::W32, IntBin::And),
            Operand::Reg(0),
            Operand::Const(65528),
        );
        assert_eq!(v.int, Interval::new(0, 65528));
    }

    #[test]
    fn remu_bounded_by_divisor() {
        let st = vec![AbsVal::TOP];
        let v = eval_bin(
            &st,
            BinOpKind::Int(Width::W32, IntBin::RemU),
            Operand::Reg(0),
            Operand::Const(16),
        );
        assert_eq!(v.int, Interval::new(0, 15));
    }

    #[test]
    fn loop_widening_terminates_and_narrowing_recovers_bound() {
        // r1 = 0; loop: r1 = r1 + 1; if r1 < 100 goto loop; halt
        let ops = vec![
            op(Some(1), Transfer::Bits(0)),
            op(
                Some(1),
                Transfer::Bin {
                    op: BinOpKind::Int(Width::W32, IntBin::Add),
                    a: Operand::Reg(1),
                    b: Operand::Const(1),
                },
            ),
            AbsOp::nop().tap(|o| {
                o.flow = OpFlow { targets: vec![1], falls_through: true };
                o.guard = Some(Guard {
                    kind: CmpKind::LtS,
                    w: Width::W32,
                    a: Operand::Reg(1),
                    b: Operand::Const(100),
                });
            }),
            halt(),
        ];
        let a = analyze(&ops, 2, 0);
        // Inside the loop (at the increment) the counter is [0, 99]:
        // entry 0 joined with the refined back edge.
        assert_eq!(int_of(&a, &ops, 1, 1), Interval::new(0, 99));
        // After the (not-taken) exit edge the counter is exactly 100.
        assert_eq!(int_of(&a, &ops, 3, 1), Interval::exact(100));
    }

    #[test]
    fn branch_refinement_splits_ranges() {
        // r1 = param. if r1 < 10 goto T(3); fall: halt ; T: halt
        let ops = vec![
            op(Some(1), Transfer::Copy(0)),
            AbsOp::nop().tap(|o| {
                o.flow = OpFlow { targets: vec![3], falls_through: true };
                o.guard = Some(Guard {
                    kind: CmpKind::LtS,
                    w: Width::W32,
                    a: Operand::Reg(1),
                    b: Operand::Const(10),
                });
            }),
            halt(),
            halt(),
        ];
        let a = analyze(&ops, 2, 1);
        assert_eq!(int_of(&a, &ops, 3, 1), Interval::new(i32::MIN as i64, 9));
        assert_eq!(int_of(&a, &ops, 2, 1), Interval::new(10, i32::MAX as i64));
    }

    #[test]
    fn unsigned_guard_learns_nonnegative_bound() {
        // if r0 <u 100 goto T(2); halt; T: halt  (r0 is a param)
        let ops = vec![
            AbsOp::nop().tap(|o| {
                o.flow = OpFlow { targets: vec![2], falls_through: true };
                o.guard = Some(Guard {
                    kind: CmpKind::LtU,
                    w: Width::W32,
                    a: Operand::Reg(0),
                    b: Operand::Const(100),
                });
            }),
            halt(),
            halt(),
        ];
        let a = analyze(&ops, 1, 1);
        assert_eq!(int_of(&a, &ops, 2, 0), Interval::new(0, 99));
    }

    #[test]
    fn infeasible_edge_marks_block_unreachable() {
        // r1 = 5. if r1 < 3 goto T(2); halt; T: halt — T is dead.
        let ops = vec![
            op(Some(1), Transfer::Bits(5)),
            AbsOp::nop().tap(|o| {
                o.flow = OpFlow { targets: vec![3], falls_through: true };
                o.guard = Some(Guard {
                    kind: CmpKind::LtS,
                    w: Width::W32,
                    a: Operand::Reg(1),
                    b: Operand::Const(3),
                });
            }),
            halt(),
            halt(),
        ];
        let a = analyze(&ops, 2, 0);
        assert!(a.op_unreachable(3));
        assert!(!a.op_unreachable(2));
    }

    #[test]
    fn trunc_safety_bounds_are_exact() {
        let ok = FInterval::new(-2147483648.0, 2147483647.0, false);
        assert!(trunc_safe(ok, true, Width::W32));
        let hi = FInterval::new(0.0, 2147483648.0, false);
        assert!(!trunc_safe(hi, true, Width::W32));
        let nan = FInterval::new(0.0, 1.0, true);
        assert!(!trunc_safe(nan, true, Width::W32));
        assert!(trunc_safe(FInterval::new(-0.5, 4294967295.0, false), false, Width::W32));
        assert!(!trunc_safe(FInterval::new(-1.0, 10.0, false), false, Width::W32));
    }

    #[test]
    fn div_safety_needs_nonzero_and_no_overflow() {
        assert!(div_safe(Interval::new(1, 10), None, Width::W32, false));
        assert!(!div_safe(Interval::new(0, 10), None, Width::W32, false));
        // Signed: divisor could be -1, dividend unknown -> unsafe.
        assert!(!div_safe(Interval::new(-5, -1), None, Width::W32, true));
        // ...but a dividend above MIN discharges the overflow case.
        assert!(div_safe(
            Interval::new(-5, -1),
            Some(Interval::new(0, 7)),
            Width::W32,
            true
        ));
        assert!(div_safe(Interval::new(2, 9), None, Width::W32, true));
    }

    fn guarded_mem_ops() -> Vec<AbsOp> {
        // r1 = param; if r1 <u 1000 goto T(2); halt; T: load [r1+0,4]; halt
        vec![
            op(Some(1), Transfer::Copy(0)),
            AbsOp::nop().tap(|o| {
                o.flow = OpFlow { targets: vec![3], falls_through: true };
                o.guard = Some(Guard {
                    kind: CmpKind::LtU,
                    w: Width::W32,
                    a: Operand::Reg(1),
                    b: Operand::Const(1000),
                });
            }),
            halt(),
            op(Some(2), Transfer::Range(I32_RANGE)).tap(|o| {
                o.check = Some(Check::Mem { addr: 1, offset: 0, len: 4 });
            }),
            halt(),
        ]
    }

    #[test]
    fn obligation_roundtrip_accepts_honest_proof() {
        let ops = guarded_mem_ops();
        let ob = Obligation {
            op: 3,
            kind: CheckKind::MemInBounds,
            fact: Fact::Int(Interval::new(0, 999)),
            guard: Some(1),
        };
        let errs = check_obligations(&ops, 3, 1, 65536, &[ob]);
        assert!(errs.is_empty(), "{errs:?}");
    }

    #[test]
    fn corrupted_obligations_are_rejected() {
        let ops = guarded_mem_ops();
        // Claim narrower than derivable: verifier cannot re-derive it.
        let narrow = Obligation {
            op: 3,
            kind: CheckKind::MemInBounds,
            fact: Fact::Int(Interval::new(0, 10)),
            guard: Some(1),
        };
        assert!(!check_obligations(&ops, 3, 1, 65536, &[narrow]).is_empty());
        // Claim wide enough to derive but too wide to be safe.
        let unsafe_wide = Obligation {
            op: 3,
            kind: CheckKind::MemInBounds,
            fact: Fact::Int(Interval::new(0, 70000)),
            guard: Some(1),
        };
        assert!(!check_obligations(&ops, 3, 1, 65536, &[unsafe_wide]).is_empty());
        // Guard that is not a branch.
        let bad_guard = Obligation {
            op: 3,
            kind: CheckKind::MemInBounds,
            fact: Fact::Int(Interval::new(0, 999)),
            guard: Some(0),
        };
        assert!(!check_obligations(&ops, 3, 1, 65536, &[bad_guard]).is_empty());
        // Obligation pointing at an op with no check.
        let no_check = Obligation {
            op: 0,
            kind: CheckKind::MemInBounds,
            fact: Fact::Int(Interval::new(0, 999)),
            guard: None,
        };
        assert!(!check_obligations(&ops, 3, 1, 65536, &[no_check]).is_empty());
    }

    #[test]
    fn audit_counts_checks_and_dead_blocks() {
        let mut ops = guarded_mem_ops();
        // Add an always-trapping constant access past the 1-page bound.
        ops.push(op(Some(2), Transfer::Bits(70000)));
        // (dead: after halt — instead splice before final halt)
        let facts = audit(&ops, 3, 1, 65536);
        assert_eq!(facts.checks_total, 1);
        assert_eq!(facts.checks_provable, 1);
        assert_eq!(facts.unreachable_blocks, 1); // the op pushed after halt
    }

    #[test]
    fn audit_flags_always_trapping_and_const_loads() {
        // r1 = 70000; load [r1]; halt  — with 1 page of memory.
        let ops = vec![
            op(Some(1), Transfer::Bits(70000)),
            op(Some(2), Transfer::Range(I32_RANGE)).tap(|o| {
                o.check = Some(Check::Mem { addr: 1, offset: 0, len: 4 });
            }),
            halt(),
        ];
        let facts = audit(&ops, 3, 0, 65536);
        assert_eq!(facts.checks_total, 1);
        assert_eq!(facts.checks_provable, 0);
        assert_eq!(facts.always_trapping, 1);
        assert_eq!(facts.const_addr_loads, 1);
    }

    #[test]
    fn narrowing_is_a_postfixpoint() {
        // Stress: nested loop with widening must terminate quickly.
        let ops = vec![
            op(Some(0), Transfer::Bits(0)),
            op(
                Some(0),
                Transfer::Bin {
                    op: BinOpKind::Int(Width::W32, IntBin::Add),
                    a: Operand::Reg(0),
                    b: Operand::Const(3),
                },
            ),
            AbsOp::nop().tap(|o| {
                o.flow = OpFlow { targets: vec![1], falls_through: true };
                o.guard = Some(Guard {
                    kind: CmpKind::LtS,
                    w: Width::W32,
                    a: Operand::Reg(0),
                    b: Operand::Const(1_000_000),
                });
            }),
            halt(),
        ];
        let a = analyze(&ops, 1, 0);
        let at_inc = int_of(&a, &ops, 1, 0);
        assert!(at_inc.lo >= 0);
        assert!(at_inc.hi < 1_000_000, "{at_inc:?}");
        let after = int_of(&a, &ops, 3, 0);
        assert!(after.lo >= 1_000_000, "{after:?}");
    }

    #[test]
    fn float_convert_and_trunc_chain() {
        // r1 = param & 255 (i32); r2 = convert_s(r1); trunc r2 -> safe.
        let ops = vec![
            op(
                Some(1),
                Transfer::Bin {
                    op: BinOpKind::Int(Width::W32, IntBin::And),
                    a: Operand::Reg(0),
                    b: Operand::Const(255),
                },
            ),
            op(
                Some(2),
                Transfer::Un {
                    op: UnKind::Convert { signed: true, src: Width::W32, dst: Width::W64 },
                    a: 1,
                },
            ),
            op(Some(3), Transfer::Un { op: UnKind::Trunc { signed: true, dst: Width::W32 }, a: 2 })
                .tap(|o| o.check = Some(Check::Trunc { src: 2, signed: true, dst: Width::W32 })),
            halt(),
        ];
        let a = analyze(&ops, 4, 1);
        let mut f = None;
        a.walk(&ops, |i, st| {
            if i == 2 {
                f = Some(read_float(st, Operand::Reg(2), Width::W64));
            }
        });
        let f = f.unwrap();
        assert!(trunc_safe(f, true, Width::W32), "{f:?}");
        let facts = audit(&ops, 4, 1, 65536);
        assert_eq!(facts.checks_provable, 1);
    }
}
