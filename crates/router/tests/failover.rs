//! End-to-end routing over real sockets: jobs submitted through the
//! router land on shards and complete, a stopped shard's keys fail
//! over to the surviving replica, and admission control sheds with
//! `Busy` at the watermark.

#![cfg(unix)]

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

use router::ring::Ring;
use router::{BackendCfg, RouterConfig};
use svc::job::{JobMode, JobSpec, Scale};
use svc::scheduler::{Config, Scheduler};
use svc::server::{serve, Client, Submission};

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("wabench-router-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create test dir");
    dir
}

fn start_shard(socket: &Path) -> std::thread::JoinHandle<std::io::Result<()>> {
    let sched = Arc::new(
        Scheduler::start(Config {
            workers: 1,
            ..Config::default()
        })
        .expect("start scheduler"),
    );
    let path = socket.to_path_buf();
    let handle = std::thread::spawn(move || serve(&path, sched));
    wait_ready(socket);
    handle
}

fn wait_ready(socket: &Path) {
    for _ in 0..400 {
        if let Ok(mut c) = Client::connect(socket) {
            if c.ping().is_ok() {
                return;
            }
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    panic!("server at {} never came up", socket.display());
}

fn start_router(
    socket: &Path,
    cfg: RouterConfig,
) -> std::thread::JoinHandle<std::io::Result<()>> {
    let path = socket.to_path_buf();
    let handle = std::thread::spawn(move || router::serve(&path, &cfg));
    wait_ready(socket);
    handle
}

fn two_shards(dir: &Path) -> (Vec<BackendCfg>, Vec<std::thread::JoinHandle<std::io::Result<()>>>) {
    let mut backends = Vec::new();
    let mut handles = Vec::new();
    for i in 0..2 {
        let sock = dir.join(format!("shard{i}.sock"));
        handles.push(start_shard(&sock));
        backends.push(BackendCfg {
            name: format!("shard-{i}"),
            socket: sock,
        });
    }
    (backends, handles)
}

fn spec(bench: &str) -> JobSpec {
    JobSpec {
        benchmark: bench.to_string(),
        engine: engines::EngineKind::Wasm3,
        level: wacc::OptLevel::O0,
        scale: Scale::Test,
        mode: JobMode::Exec,
        warm: false,
    }
}

/// Registered benchmark names whose ring primary is the given shard,
/// mirroring the router's key (benchmark|level byte|engine code with
/// Wasm3/O0 as used by [`spec`]).
fn benches_owned_by(ring: &Ring, shard: usize, want: usize) -> Vec<String> {
    let mut out = Vec::new();
    for b in suite::all() {
        let key = format!(
            "{}|{}|{}",
            b.name,
            0, // level_byte(O0)
            engines::EngineKind::Wasm3.code()
        );
        if ring.primary(key.as_bytes()) == Some(shard) {
            out.push(b.name.to_string());
            if out.len() == want {
                break;
            }
        }
    }
    assert_eq!(out.len(), want, "registry too small for {want} keys on shard {shard}");
    out
}

#[test]
fn routed_jobs_complete_and_are_attributed_per_backend() {
    let dir = tmp_dir("route");
    let (backends, shard_handles) = two_shards(&dir);
    let rsock = dir.join("router.sock");
    let router_handle = start_router(
        &rsock,
        RouterConfig {
            backends,
            probe_interval: Duration::from_millis(20),
            ..RouterConfig::default()
        },
    );

    let ring = Ring::new(&["shard-0".to_string(), "shard-1".to_string()]);
    // One key per shard so both must serve traffic.
    let mut benches = benches_owned_by(&ring, 0, 2);
    benches.extend(benches_owned_by(&ring, 1, 2));

    let mut client = Client::connect(&rsock).expect("connect router");
    client.ping().expect("ping through router");
    let ids: Vec<u64> = benches
        .iter()
        .map(|b| client.submit(spec(b)).expect("submit through router"))
        .collect();
    for id in &ids {
        let res = client.wait(*id).expect("wait through router");
        assert!(res.ok(), "routed job failed: {res:?}");
        assert_eq!(res.id, *id, "router must answer with its own job id");
    }

    let report = client.backends().expect("backends report");
    assert_eq!(report.backends.len(), 2);
    let forwarded: u64 = report.backends.iter().map(|b| b.forwarded).sum();
    assert_eq!(forwarded, ids.len() as u64, "every job attributed to a shard");
    for b in &report.backends {
        assert!(b.healthy, "shard {} should be healthy", b.name);
        assert!(b.forwarded >= 2, "shard {} served no traffic", b.name);
    }

    // Aggregated stats must account for the whole fleet's jobs.
    let stats = client.stats().expect("aggregated stats");
    assert_eq!(stats.completed, ids.len() as u64);

    client.shutdown().expect("router shutdown");
    router_handle.join().expect("join").expect("router serve");
    for (i, h) in shard_handles.into_iter().enumerate() {
        let mut c = Client::connect(&dir.join(format!("shard{i}.sock"))).expect("shard alive");
        c.shutdown().expect("shard shutdown");
        h.join().expect("join").expect("shard serve");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn dead_shard_keys_fail_over_to_the_replica() {
    let dir = tmp_dir("failover");
    let (backends, shard_handles) = two_shards(&dir);
    let rsock = dir.join("router.sock");
    let router_handle = start_router(
        &rsock,
        RouterConfig {
            backends,
            probe_interval: Duration::from_millis(20),
            ..RouterConfig::default()
        },
    );

    // Stop shard-0; its socket disappears and its keys must fail over.
    let mut c0 = Client::connect(&dir.join("shard0.sock")).expect("shard-0 alive");
    c0.shutdown().expect("stop shard-0");

    let ring = Ring::new(&["shard-0".to_string(), "shard-1".to_string()]);
    let benches = benches_owned_by(&ring, 0, 2);
    let mut client = Client::connect(&rsock).expect("connect router");
    for b in &benches {
        let id = client.submit(spec(b)).expect("submit during outage");
        let res = client.wait(id).expect("wait during outage");
        assert!(res.ok(), "failed-over job failed: {res:?}");
    }

    let report = client.backends().expect("backends report");
    let dead = report.backends.iter().find(|b| b.name == "shard-0").unwrap();
    let alive = report.backends.iter().find(|b| b.name == "shard-1").unwrap();
    assert!(
        dead.failovers >= benches.len() as u64,
        "failovers must count jobs moved off the dead shard: {report:?}"
    );
    assert_eq!(dead.forwarded, 0, "a dead shard cannot accept jobs");
    assert_eq!(alive.forwarded, benches.len() as u64);
    assert!(alive.healthy);

    client.shutdown().expect("router shutdown");
    router_handle.join().expect("join").expect("router serve");
    let mut handles = shard_handles.into_iter();
    handles.next().unwrap().join().expect("join").expect("shard-0 serve");
    let mut c1 = Client::connect(&dir.join("shard1.sock")).expect("shard-1 alive");
    c1.shutdown().expect("stop shard-1");
    handles.next().unwrap().join().expect("join").expect("shard-1 serve");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn admission_control_sheds_with_busy_at_the_watermark() {
    let dir = tmp_dir("busy");
    let (backends, shard_handles) = two_shards(&dir);
    let rsock = dir.join("router.sock");
    // Watermark zero: the aggregate depth (0) is already at it, so
    // every submit is shed — deterministic admission refusal.
    let router_handle = start_router(
        &rsock,
        RouterConfig {
            backends,
            watermark: 0,
            retry_after_ms: 123,
            probe_interval: Duration::from_millis(20),
            ..RouterConfig::default()
        },
    );

    let mut client = Client::connect(&rsock).expect("connect router");
    match client
        .try_submit_traced(spec("crc32"), Default::default())
        .expect("exchange")
    {
        Submission::Busy { retry_after_ms } => assert_eq!(retry_after_ms, 123),
        Submission::Accepted(id) => panic!("submit must be shed, got job {id}"),
    }
    let report = client.backends().expect("backends report");
    assert_eq!(report.shed, 1);
    assert_eq!(report.watermark, 0);

    client.shutdown().expect("router shutdown");
    router_handle.join().expect("join").expect("router serve");
    for (i, h) in shard_handles.into_iter().enumerate() {
        let mut c = Client::connect(&dir.join(format!("shard{i}.sock"))).expect("shard alive");
        c.shutdown().expect("shard shutdown");
        h.join().expect("join").expect("shard serve");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn per_shard_requests_are_refused_with_the_router_prefix() {
    let dir = tmp_dir("refuse");
    let (backends, shard_handles) = two_shards(&dir);
    let rsock = dir.join("router.sock");
    let router_handle = start_router(
        &rsock,
        RouterConfig {
            backends,
            probe_interval: Duration::from_millis(20),
            ..RouterConfig::default()
        },
    );

    let mut client = Client::connect(&rsock).expect("connect router");
    for err in [
        client.series().unwrap_err(),
        client.trace_dump().unwrap_err(),
        client.stats_ext().unwrap_err(),
        client.profile_dump().unwrap_err(),
        client.alert_log().unwrap_err(),
    ] {
        let msg = err.to_string();
        assert!(
            msg.contains("router:"),
            "per-shard refusals must carry the router: prefix, got {msg:?}"
        );
    }
    // Health and Stats, by contrast, aggregate fine.
    client.health().expect("aggregated health");
    client.stats().expect("aggregated stats");

    client.shutdown().expect("router shutdown");
    router_handle.join().expect("join").expect("router serve");
    for (i, h) in shard_handles.into_iter().enumerate() {
        let mut c = Client::connect(&dir.join(format!("shard{i}.sock"))).expect("shard alive");
        c.shutdown().expect("shard shutdown");
        h.join().expect("join").expect("shard serve");
    }
    let _ = std::fs::remove_dir_all(&dir);
}
