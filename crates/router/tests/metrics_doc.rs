//! Keeps `docs/METRICS.md` honest for the routing tier: every counter
//! the router registers (the [`router::COUNTERS`] list) must have a
//! documented row, and the list itself must stay in sync with what a
//! live router actually registers.

use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

use router::{BackendCfg, RouterConfig};
use svc::scheduler::{Config, Scheduler};
use svc::server::{serve, Client};

const DOC: &str = include_str!("../../../docs/METRICS.md");

#[test]
fn every_router_counter_has_a_metrics_doc_row() {
    for name in router::COUNTERS {
        assert!(
            DOC.contains(&format!("`{name}`")),
            "docs/METRICS.md is missing a row for `{name}`"
        );
    }
}

/// Drive a real router briefly, then assert every `router.*` name in
/// the live registry is covered by [`router::COUNTERS`] (and therefore
/// by the doc check above) — a counter added to the code but not the
/// list fails here.
#[test]
fn live_registry_router_counters_are_all_listed() {
    let dir = std::env::temp_dir().join(format!("wabench-rmetrics-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create test dir");

    let shard_sock = dir.join("shard.sock");
    let sched = Arc::new(Scheduler::start(Config { workers: 1, ..Config::default() }).expect("sched"));
    let shard_path = shard_sock.clone();
    let shard = std::thread::spawn(move || serve(&shard_path, sched));
    wait_ready(&shard_sock);

    let rsock = dir.join("router.sock");
    let cfg = RouterConfig {
        backends: vec![BackendCfg { name: "shard-0".to_string(), socket: shard_sock.clone() }],
        watermark: 0, // shed immediately: registers router.shed
        probe_interval: Duration::from_millis(10),
        ..RouterConfig::default()
    };
    let rpath = rsock.clone();
    let rhandle = std::thread::spawn(move || router::serve(&rpath, &cfg));
    wait_ready(&rsock);

    let mut client = Client::connect(&rsock).expect("connect router");
    let spec = svc::job::JobSpec::exec(
        "crc32",
        engines::EngineKind::Wasm3,
        wacc::OptLevel::O0,
        svc::job::Scale::Test,
    );
    // Shed one submit so the shed counter exists.
    let _ = client.try_submit_traced(spec, Default::default()).expect("exchange");
    client.shutdown().expect("router shutdown");
    rhandle.join().expect("join").expect("router serve");
    let mut c = Client::connect(&shard_sock).expect("shard alive");
    c.shutdown().expect("shard shutdown");
    shard.join().expect("join").expect("shard serve");

    for (name, _) in obs::metrics::counters_with_prefix("router.") {
        assert!(
            router::COUNTERS.contains(&name.as_str()),
            "router registers `{name}` but it is missing from router::COUNTERS \
             (add it there and to docs/METRICS.md)"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

fn wait_ready(socket: &Path) {
    for _ in 0..400 {
        if let Ok(mut c) = Client::connect(socket) {
            if c.ping().is_ok() {
                return;
            }
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    panic!("server at {} never came up", socket.display());
}
