//! Consistent-hash ring over the shard fleet.
//!
//! Jobs are sharded on the store's content-address key (benchmark ×
//! opt level × engine), so a module's compiled artifacts stay hot in
//! **one** shard's store instead of being recompiled everywhere. The
//! classic vnode construction keeps that placement stable under fleet
//! changes: each backend owns ~[`VNODES`] pseudo-random points on a
//! `u64` ring, a key routes to the first point at or after its hash,
//! and removing one of N backends remaps only ~1/N of the keyspace
//! (the arcs the dead backend owned) instead of reshuffling everything
//! — which is exactly what keeps the *other* shards' artifact stores
//! warm through a failover.

use svc::hash::fnv64;

/// Ring point hash: FNV-1a, then a strong bit-mix finalizer. Raw FNV of
/// short, near-identical strings (`shard-4#17`) clusters badly enough
/// that one backend can own half or double its fair share of the ring;
/// the mix restores avalanche so per-backend ownership concentrates
/// around 1/N.
fn point(bytes: &[u8]) -> u64 {
    fault::mix64(fnv64(bytes))
}

/// Virtual nodes per backend. Enough that per-backend load imbalance
/// stays in the low percents; few enough that building the ring is
/// trivially cheap.
pub const VNODES: usize = 100;

/// An immutable consistent-hash ring over backend indices `0..n`.
#[derive(Debug, Clone)]
pub struct Ring {
    /// `(point, backend index)`, sorted by point.
    points: Vec<(u64, usize)>,
    backends: usize,
}

impl Ring {
    /// Builds the ring from backend labels. Labels (not indices) seed
    /// the vnode hashes so a fleet described in a different order
    /// produces the same placement.
    pub fn new(labels: &[String]) -> Ring {
        let mut points: Vec<(u64, usize)> = Vec::with_capacity(labels.len() * VNODES);
        for (idx, label) in labels.iter().enumerate() {
            for v in 0..VNODES {
                points.push((point(format!("{label}#{v}").as_bytes()), idx));
            }
        }
        points.sort_unstable();
        Ring {
            points,
            backends: labels.len(),
        }
    }

    /// Backend count the ring was built over.
    pub fn len(&self) -> usize {
        self.backends
    }

    /// Whether the ring has no backends.
    pub fn is_empty(&self) -> bool {
        self.backends == 0
    }

    /// Every backend index in preference order for `key`: the owner of
    /// the first ring point at or after the key's hash, then each
    /// *distinct* backend encountered walking the ring — the failover
    /// replica order.
    pub fn replicas(&self, key: &[u8]) -> Vec<usize> {
        let mut order = Vec::with_capacity(self.backends);
        if self.points.is_empty() {
            return order;
        }
        let h = point(key);
        let start = self.points.partition_point(|(p, _)| *p < h);
        for i in 0..self.points.len() {
            let (_, idx) = self.points[(start + i) % self.points.len()];
            if !order.contains(&idx) {
                order.push(idx);
                if order.len() == self.backends {
                    break;
                }
            }
        }
        order
    }

    /// The primary backend for `key` (first replica).
    pub fn primary(&self, key: &[u8]) -> Option<usize> {
        self.replicas(key).first().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labels(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("shard-{i}")).collect()
    }

    fn keys(n: usize) -> Vec<Vec<u8>> {
        (0..n).map(|i| format!("bench-{i}|O2|3").into_bytes()).collect()
    }

    #[test]
    fn replicas_are_distinct_and_cover_the_fleet() {
        let ring = Ring::new(&labels(5));
        for key in keys(50) {
            let order = ring.replicas(&key);
            assert_eq!(order.len(), 5);
            let mut sorted = order.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 5, "replica order must be a permutation");
        }
    }

    #[test]
    fn placement_is_deterministic_and_order_independent() {
        let ring_a = Ring::new(&labels(4));
        // Same labels listed in reverse: placement must not change
        // (indices differ, the label behind them must not).
        let mut rev = labels(4);
        rev.reverse();
        let ring_b = Ring::new(&rev);
        for key in keys(100) {
            let a = ring_a.primary(&key).unwrap();
            let b = ring_b.primary(&key).unwrap();
            assert_eq!(labels(4)[a], rev[b], "primary differs under relabeling");
        }
    }

    /// The consistent-hashing contract: removing 1 of N backends remaps
    /// only the keys the dead backend owned — about 1/N of them — and
    /// every key it did own moves to its *next* replica, so a router
    /// failing over walks exactly this ring order.
    #[test]
    fn removing_one_backend_remaps_about_one_nth_of_keys() {
        const N: usize = 5;
        const KEYS: usize = 2000;
        let full = Ring::new(&labels(N));
        // Drop the last backend; the survivors keep their labels.
        let reduced = Ring::new(&labels(N - 1));
        let mut moved = 0usize;
        for key in keys(KEYS) {
            let before = full.primary(&key).unwrap();
            let after = reduced.primary(&key).unwrap();
            if before == N - 1 {
                // Owned by the removed backend: must move, and must
                // land on its old second choice.
                moved += 1;
                assert_eq!(
                    after,
                    full.replicas(&key)[1],
                    "evicted key must fail over to its next replica"
                );
            } else {
                assert_eq!(before, after, "surviving placements must not move");
            }
        }
        let frac = moved as f64 / KEYS as f64;
        assert!(
            (0.10..=0.30).contains(&frac),
            "expected ~1/{N} of keys to move, got {frac:.3}"
        );
    }
}
