//! `wabench-router` — the sharding front-end daemon.
//!
//! ```text
//! wabench-router serve    --socket PATH --backend [NAME=]SOCK [--backend ...]
//!                         [--watermark N] [--retry-after-ms N] [--probe-ms N]
//! wabench-router status   --socket PATH
//! wabench-router shutdown --socket PATH
//! ```
//!
//! `serve` fronts every `--backend` shard behind one socket speaking
//! the ordinary `wabench-served` protocol: clients point `wabench-load`
//! (or any `svc::server::Client`) at the router socket and get
//! consistent-hash sharding, health-probed failover, and admission
//! control for free. See `docs/DEPLOYMENT.md` for topology and
//! `docs/OPERATIONS.md` for the runbook.
//!
//! `status` prints the routing table (the protocol v9 `Backends`
//! reply): per-shard health, queue depth, forwarded and failover
//! counts, plus the admission watermark and shed total.
//!
//! Exit codes: `0` clean shutdown, `1` server/socket error, `2` usage
//! error.

use std::path::PathBuf;
use std::process::exit;
use std::time::Duration;

use router::{BackendCfg, RouterConfig};
use svc::server::Client;

fn usage() -> ! {
    obs::error!(
        "usage: wabench-router <serve|status|shutdown> [options]\n\
         \n\
         serve    --socket PATH --backend [NAME=]SOCK [--backend ...]\n\
         \u{20}        [--watermark N] [--retry-after-ms N] [--probe-ms N]\n\
         status   --socket PATH\n\
         shutdown --socket PATH\n\
         \n\
         common: --log error|warn|info|debug (overrides WABENCH_LOG)\n\
         A backend is NAME=SOCKET or a bare socket path (named shard-N);\n\
         at least one is required. See docs/DEPLOYMENT.md."
    );
    exit(2);
}

fn take_value(args: &[String], i: &mut usize, flag: &str) -> String {
    *i += 1;
    match args.get(*i) {
        Some(v) => v.clone(),
        None => {
            obs::error!("missing value for {flag}");
            usage();
        }
    }
}

struct Opts {
    socket: Option<PathBuf>,
    backends: Vec<BackendCfg>,
    watermark: u64,
    retry_after_ms: u32,
    probe_ms: u64,
}

fn parse_opts(args: &[String]) -> Opts {
    let mut o = Opts {
        socket: None,
        backends: Vec::new(),
        watermark: RouterConfig::default().watermark,
        retry_after_ms: RouterConfig::default().retry_after_ms,
        probe_ms: RouterConfig::default().probe_interval.as_millis() as u64,
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--socket" => o.socket = Some(PathBuf::from(take_value(args, &mut i, "--socket"))),
            "--backend" => {
                let v = take_value(args, &mut i, "--backend");
                let (name, sock) = match v.split_once('=') {
                    Some((n, s)) if !n.is_empty() && !s.is_empty() => (n.to_string(), s),
                    Some(_) => {
                        obs::error!("bad backend spec {v:?} (use NAME=SOCKET)");
                        usage();
                    }
                    None => (format!("shard-{}", o.backends.len()), v.as_str()),
                };
                o.backends.push(BackendCfg {
                    name,
                    socket: PathBuf::from(sock),
                });
            }
            "--watermark" => {
                o.watermark = take_value(args, &mut i, "--watermark")
                    .parse()
                    .ok()
                    .filter(|n| *n > 0)
                    .unwrap_or_else(|| {
                        obs::error!("--watermark needs a positive integer");
                        usage();
                    })
            }
            "--retry-after-ms" => {
                o.retry_after_ms = take_value(args, &mut i, "--retry-after-ms")
                    .parse()
                    .unwrap_or_else(|_| {
                        obs::error!("--retry-after-ms needs an integer");
                        usage();
                    })
            }
            "--probe-ms" => {
                o.probe_ms = take_value(args, &mut i, "--probe-ms")
                    .parse()
                    .ok()
                    .filter(|n| *n > 0)
                    .unwrap_or_else(|| {
                        obs::error!("--probe-ms needs a positive integer");
                        usage();
                    })
            }
            "--log" => {
                let v = take_value(args, &mut i, "--log");
                match obs::logger::Level::parse(&v) {
                    Some(lvl) => obs::logger::set_level(lvl),
                    None => {
                        obs::error!("unknown log level {v:?} (use error|warn|info|debug)");
                        usage();
                    }
                }
            }
            other => {
                obs::error!("unknown option {other:?}");
                usage();
            }
        }
        i += 1;
    }
    o
}

fn need_socket(o: &Opts) -> PathBuf {
    o.socket.clone().unwrap_or_else(|| {
        obs::error!("--socket is required");
        usage();
    })
}

fn cmd_serve(o: &Opts) {
    let socket = need_socket(o);
    if o.backends.is_empty() {
        obs::error!("at least one --backend is required");
        usage();
    }
    let mut seen = std::collections::HashSet::new();
    for b in &o.backends {
        if !seen.insert(&b.name) {
            obs::error!("duplicate backend name {:?}", b.name);
            usage();
        }
    }
    let cfg = RouterConfig {
        backends: o.backends.clone(),
        watermark: o.watermark,
        retry_after_ms: o.retry_after_ms,
        probe_interval: Duration::from_millis(o.probe_ms),
        ..RouterConfig::default()
    };
    obs::info!(
        "wabench-router: listening on {} ({} shards, watermark {})",
        socket.display(),
        cfg.backends.len(),
        cfg.watermark
    );
    for b in &cfg.backends {
        obs::info!("  shard {} at {}", b.name, b.socket.display());
    }
    if let Err(e) = router::serve(&socket, &cfg) {
        obs::error!("router error: {e}");
        exit(1);
    }
}

fn cmd_status(o: &Opts) {
    let socket = need_socket(o);
    let mut client = Client::connect(&socket).unwrap_or_else(|e| {
        obs::error!("connect {}: {e}", socket.display());
        exit(1);
    });
    let report = client.backends().unwrap_or_else(|e| {
        obs::error!("backends: {e}");
        exit(1);
    });
    println!(
        "admission: watermark {}, {} submits shed",
        report.watermark, report.shed
    );
    for b in &report.backends {
        println!(
            "shard {} [{}] at {}: queue {}, {} forwarded, {} failovers",
            b.name,
            if b.healthy { "healthy" } else { "DOWN" },
            b.socket,
            b.queue_depth,
            b.forwarded,
            b.failovers
        );
    }
}

fn cmd_shutdown(o: &Opts) {
    let socket = need_socket(o);
    let mut client = Client::connect(&socket).unwrap_or_else(|e| {
        obs::error!("connect {}: {e}", socket.display());
        exit(1);
    });
    client.shutdown().unwrap_or_else(|e| {
        obs::error!("shutdown: {e}");
        exit(1);
    });
    println!("router stopped (shards left running)");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else { usage() };
    let opts = parse_opts(&args[1..]);
    match cmd.as_str() {
        "serve" => cmd_serve(&opts),
        "status" => cmd_status(&opts),
        "shutdown" => cmd_shutdown(&opts),
        _ => usage(),
    }
}
