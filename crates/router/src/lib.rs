//! # router — `wabench-router`, the multi-node serving tier
//!
//! Fronts N `wabench-served` shards behind one Unix socket speaking
//! the same wire protocol (`svc::proto`), turning the single-node
//! daemon into a horizontally scalable fleet:
//!
//! - **Sharding** — submits route over a consistent-hash [`ring`] keyed
//!   by the artifact store's content address (benchmark × opt level ×
//!   engine), so a module's compiled artifacts stay hot in one shard's
//!   store. See `docs/DEPLOYMENT.md`.
//! - **Health probes** — a background thread rides the protocol v4
//!   `Health` request against every shard on a fixed cadence, feeding
//!   per-backend liveness and queue depth into routing decisions.
//! - **Failover** — a per-backend circuit breaker ([`fault::Breaker`])
//!   opens after consecutive transport failures; submits skip open or
//!   unreachable backends and fail over to the next ring replica, and
//!   jobs stranded on a crashed shard are resubmitted from the router's
//!   saved spec.
//! - **Admission control** — when the fleet's aggregate queue depth
//!   crosses a watermark, new submits are refused with the protocol v9
//!   `Busy` reply (carrying a retry-after hint) instead of deepening
//!   the overload.
//!
//! The router runs on the same nonblocking [`svc::reactor`] as the
//! daemon itself; forwarded exchanges are short unix-socket round
//! trips, and `Wait`s park in the reactor and are driven by `Poll`s
//! against the owning shard from the tick hook.
//!
//! Per-shard observability requests (`Series`, `TraceDump`,
//! `ProfileDump`, `AlertLog`, `StatsExt`) are answered with an `Err`
//! prefixed `router:` pointing at the shard sockets — `wabench-top`
//! and `wabench-doctor` key off that prefix to degrade gracefully.

#![warn(missing_docs)]

pub mod ring;

use std::collections::HashMap;
use std::io;
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use fault::{Breaker, BreakerConfig};
use svc::job::{JobSpec, TraceCtx};
use svc::proto::{BackendStatus, BackendsReport, Request, Response};
use svc::reactor::{Action, Handler, Resolution, Token};
use svc::scheduler::HealthReport;
use svc::server::{bind_socket, SocketGuard};
use svc::wire::{level_byte, read_frame, write_frame};
use svc::JobResult;

use ring::Ring;

/// Counter: submits accepted by a backend on the router's behalf.
pub const C_FORWARDED: &str = "router.forwarded";
/// Counter: submits or stranded jobs moved off a failed/open backend to
/// the next ring replica.
pub const C_FAILOVER: &str = "router.failover";
/// Counter: submits refused with `Busy` by admission control.
pub const C_SHED: &str = "router.shed";
/// Counter: health probes that failed (connect or protocol error).
pub const C_PROBE_FAIL: &str = "router.probe.fail";
/// Counter: jobs abandoned because no replica could take them.
pub const C_LOST: &str = "router.lost";

/// Every counter the router registers — `tests/metrics_doc.rs` asserts
/// each has a row in `docs/METRICS.md`.
pub const COUNTERS: &[&str] = &[C_FORWARDED, C_FAILOVER, C_SHED, C_PROBE_FAIL, C_LOST];

/// Static description of one shard.
#[derive(Debug, Clone)]
pub struct BackendCfg {
    /// Operator-facing label (defaults to `shard-N`).
    pub name: String,
    /// The shard's Unix socket path.
    pub socket: PathBuf,
}

/// Router tuning.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// The shard fleet, in ring-label order.
    pub backends: Vec<BackendCfg>,
    /// Aggregate queue-depth watermark: at or above it, submits are
    /// shed with `Busy`.
    pub watermark: u64,
    /// The retry hint carried in `Busy` replies, milliseconds.
    pub retry_after_ms: u32,
    /// Health-probe cadence.
    pub probe_interval: Duration,
    /// Per-backend breaker tuning.
    pub breaker: BreakerConfig,
}

impl Default for RouterConfig {
    fn default() -> RouterConfig {
        RouterConfig {
            backends: Vec::new(),
            watermark: 64,
            retry_after_ms: 250,
            probe_interval: Duration::from_millis(100),
            breaker: BreakerConfig {
                // Transport failures are decisive (a dead socket stays
                // dead); trip fast so failover doesn't retry a corpse
                // for long, and re-probe on the probe cadence.
                threshold: 2,
                cooldown: Duration::from_millis(500),
            },
        }
    }
}

/// Live per-backend state shared between the reactor handler and the
/// probe thread.
struct BackendState {
    cfg: BackendCfg,
    healthy: AtomicBool,
    queue_depth: AtomicU64,
    forwarded: AtomicU64,
    failovers: AtomicU64,
    breaker: Mutex<Breaker>,
}

impl BackendState {
    fn admit(&self) -> bool {
        self.breaker.lock().expect("breaker lock").admit()
    }

    fn record(&self, ok: bool) {
        self.breaker.lock().expect("breaker lock").record(ok);
        if !ok {
            self.healthy.store(false, Ordering::Relaxed);
        }
    }
}

/// State shared by the handler and the probe thread.
struct Shared {
    backends: Vec<BackendState>,
    watermark: u64,
    shed: AtomicU64,
    stop_probes: AtomicBool,
}

impl Shared {
    /// Aggregate queue depth across the fleet, from the latest probes.
    fn aggregate_depth(&self) -> u64 {
        self.backends
            .iter()
            .map(|b| b.queue_depth.load(Ordering::Relaxed))
            .sum()
    }

    fn report(&self) -> BackendsReport {
        BackendsReport {
            watermark: self.watermark,
            shed: self.shed.load(Ordering::Relaxed),
            backends: self
                .backends
                .iter()
                .map(|b| BackendStatus {
                    name: b.cfg.name.clone(),
                    socket: b.cfg.socket.display().to_string(),
                    healthy: b.healthy.load(Ordering::Relaxed),
                    queue_depth: b.queue_depth.load(Ordering::Relaxed),
                    forwarded: b.forwarded.load(Ordering::Relaxed),
                    failovers: b.failovers.load(Ordering::Relaxed),
                })
                .collect(),
        }
    }
}

/// One routed job the router is tracking: where it lives now and what
/// to resubmit if that shard dies.
struct JobEntry {
    spec: JobSpec,
    ctx: TraceCtx,
    backend: usize,
    backend_id: u64,
    /// Backends already tried (including the current one); failover
    /// never returns to these.
    tried: Vec<usize>,
}

/// Outcome of driving one routed job forward.
enum JobStep {
    Done(Box<JobResult>),
    Pending,
    Lost(String),
}

/// The reactor handler implementing the routing tier.
pub struct Router {
    shared: Arc<Shared>,
    ring: Ring,
    retry_after_ms: u32,
    /// Persistent forwarding connection per backend, rebuilt on error.
    conns: Vec<Option<UnixStream>>,
    jobs: HashMap<u64, JobEntry>,
    next_id: u64,
    waits: Vec<(Token, u64)>,
    forwarded: Arc<obs::metrics::Counter>,
    failover: Arc<obs::metrics::Counter>,
    shed: Arc<obs::metrics::Counter>,
    lost: Arc<obs::metrics::Counter>,
}

/// The store's content-address key projected onto what the router can
/// see pre-compile: benchmark × opt level × engine. Two submits of the
/// same module at the same level land on the same shard, whose
/// artifact store then serves the warm hit.
fn route_key(spec: &JobSpec) -> Vec<u8> {
    format!(
        "{}|{}|{}",
        spec.benchmark,
        level_byte(spec.level),
        spec.engine.code()
    )
    .into_bytes()
}

/// One blocking request/response exchange on an established stream.
fn exchange(stream: &mut UnixStream, req: &Request) -> io::Result<Response> {
    write_frame(stream, &req.encode())?;
    let payload = read_frame(stream)?
        .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "backend hung up"))?;
    Ok(Response::decode(&payload)?)
}

impl Router {
    /// Builds the routing tier and spawns its probe thread. The probe
    /// thread stops (and is detached) when the router is dropped.
    pub fn new(cfg: &RouterConfig) -> Router {
        let shared = Arc::new(Shared {
            backends: cfg
                .backends
                .iter()
                .map(|b| BackendState {
                    cfg: b.clone(),
                    healthy: AtomicBool::new(false),
                    queue_depth: AtomicU64::new(0),
                    forwarded: AtomicU64::new(0),
                    failovers: AtomicU64::new(0),
                    breaker: Mutex::new(Breaker::new(cfg.breaker)),
                })
                .collect(),
            watermark: cfg.watermark,
            shed: AtomicU64::new(0),
            stop_probes: AtomicBool::new(false),
        });
        spawn_probes(Arc::clone(&shared), cfg.probe_interval);
        let labels: Vec<String> = cfg.backends.iter().map(|b| b.name.clone()).collect();
        Router {
            shared,
            ring: Ring::new(&labels),
            retry_after_ms: cfg.retry_after_ms,
            conns: cfg.backends.iter().map(|_| None).collect(),
            jobs: HashMap::new(),
            next_id: 1,
            waits: Vec::new(),
            forwarded: obs::metrics::counter(C_FORWARDED),
            failover: obs::metrics::counter(C_FAILOVER),
            shed: obs::metrics::counter(C_SHED),
            lost: obs::metrics::counter(C_LOST),
        }
    }

    /// The fleet report served to `Backends` requests.
    pub fn report(&self) -> BackendsReport {
        self.shared.report()
    }

    /// Forwards one request to backend `idx` over its persistent
    /// connection, reconnecting once on a broken stream.
    fn forward(&mut self, idx: usize, req: &Request) -> io::Result<Response> {
        if self.conns[idx].is_none() {
            self.conns[idx] = Some(UnixStream::connect(&self.shared.backends[idx].cfg.socket)?);
        }
        let stream = self.conns[idx].as_mut().expect("connected above");
        match exchange(stream, req) {
            Ok(resp) => Ok(resp),
            Err(e) => {
                // The persistent stream may simply be stale (backend
                // restarted); one fresh connect decides whether the
                // backend is actually gone.
                self.conns[idx] = None;
                let mut fresh = UnixStream::connect(&self.shared.backends[idx].cfg.socket)
                    .map_err(|_| e)?;
                let resp = exchange(&mut fresh, req)?;
                self.conns[idx] = Some(fresh);
                Ok(resp)
            }
        }
    }

    /// Routes a submit across the ring replicas for its key, skipping
    /// open breakers and failing over past dead backends. Returns the
    /// response to send the client.
    fn route_submit(&mut self, spec: JobSpec, ctx: TraceCtx) -> Response {
        let depth = self.shared.aggregate_depth();
        if depth >= self.shared.watermark {
            self.shared.shed.fetch_add(1, Ordering::Relaxed);
            self.shed.inc();
            return Response::Busy(self.retry_after_ms);
        }
        let order = self.ring.replicas(&route_key(&spec));
        let mut tried = Vec::new();
        let mut diverted = false;
        for idx in order {
            tried.push(idx);
            if !self.shared.backends[idx].admit() {
                // Open breaker: fail over without spending a connect.
                self.shared.backends[idx]
                    .failovers
                    .fetch_add(1, Ordering::Relaxed);
                diverted = true;
                continue;
            }
            match self.forward(idx, &Request::Submit(spec.clone(), ctx)) {
                Ok(Response::Submitted(backend_id)) => {
                    self.shared.backends[idx].record(true);
                    self.shared.backends[idx]
                        .forwarded
                        .fetch_add(1, Ordering::Relaxed);
                    self.forwarded.inc();
                    if diverted {
                        self.failover.inc();
                    }
                    let id = self.next_id;
                    self.next_id += 1;
                    self.jobs.insert(
                        id,
                        JobEntry {
                            spec,
                            ctx,
                            backend: idx,
                            backend_id,
                            tried,
                        },
                    );
                    return Response::Submitted(id);
                }
                Ok(other) => {
                    // The backend answered but refused (Err) or spoke
                    // nonsense — don't breaker-trip protocol refusals,
                    // but don't queue the job there either.
                    obs::warn!(
                        "backend {} refused submit: {:?}",
                        self.shared.backends[idx].cfg.name,
                        other
                    );
                    self.shared.backends[idx]
                        .failovers
                        .fetch_add(1, Ordering::Relaxed);
                    diverted = true;
                }
                Err(e) => {
                    obs::warn!(
                        "backend {} unreachable on submit: {e}",
                        self.shared.backends[idx].cfg.name
                    );
                    self.shared.backends[idx].record(false);
                    self.shared.backends[idx]
                        .failovers
                        .fetch_add(1, Ordering::Relaxed);
                    diverted = true;
                }
            }
        }
        self.lost.inc();
        Response::Err("router: no healthy backend accepted the job".to_string())
    }

    /// Drives one tracked job a step forward: polls its current shard,
    /// and on a dead shard resubmits the saved spec to the next
    /// untried replica.
    fn step_job(&mut self, id: u64) -> JobStep {
        let Some(entry) = self.jobs.get(&id) else {
            return JobStep::Lost(format!("router: unknown job id {id}"));
        };
        let (backend, backend_id) = (entry.backend, entry.backend_id);
        match self.forward(backend, &Request::Poll(backend_id)) {
            Ok(Response::Result(mut res)) => {
                self.shared.backends[backend].record(true);
                self.jobs.remove(&id);
                res.id = id;
                JobStep::Done(Box::new(res))
            }
            Ok(Response::Pending) => {
                self.shared.backends[backend].record(true);
                JobStep::Pending
            }
            Ok(other) => {
                // A shard that restarted forgets its ids and answers
                // Pending=never / Err — treat like a dead shard and
                // resubmit elsewhere.
                obs::warn!(
                    "backend {} lost job {backend_id}: {other:?}",
                    self.shared.backends[backend].cfg.name
                );
                self.resubmit(id)
            }
            Err(e) => {
                obs::warn!(
                    "backend {} unreachable on poll: {e}",
                    self.shared.backends[backend].cfg.name
                );
                self.shared.backends[backend].record(false);
                self.resubmit(id)
            }
        }
    }

    /// Moves a stranded job to the next untried ring replica.
    fn resubmit(&mut self, id: u64) -> JobStep {
        let Some(entry) = self.jobs.get(&id) else {
            return JobStep::Lost(format!("router: unknown job id {id}"));
        };
        let (spec, ctx) = (entry.spec.clone(), entry.ctx);
        let order = self.ring.replicas(&route_key(&spec));
        let dead = entry.backend;
        let tried = entry.tried.clone();
        self.shared.backends[dead]
            .failovers
            .fetch_add(1, Ordering::Relaxed);
        for idx in order {
            if tried.contains(&idx) || !self.shared.backends[idx].admit() {
                continue;
            }
            match self.forward(idx, &Request::Submit(spec.clone(), ctx)) {
                Ok(Response::Submitted(backend_id)) => {
                    self.shared.backends[idx].record(true);
                    self.shared.backends[idx]
                        .forwarded
                        .fetch_add(1, Ordering::Relaxed);
                    self.forwarded.inc();
                    self.failover.inc();
                    let entry = self.jobs.get_mut(&id).expect("entry exists");
                    entry.backend = idx;
                    entry.backend_id = backend_id;
                    entry.tried.push(idx);
                    return JobStep::Pending;
                }
                Ok(_) | Err(_) => {
                    self.shared.backends[idx].record(false);
                    continue;
                }
            }
        }
        self.jobs.remove(&id);
        self.lost.inc();
        JobStep::Lost(format!(
            "router: job {id} lost (shard died, no untried replica left)"
        ))
    }

    /// Aggregates `Stats` across reachable shards.
    fn aggregate_stats(&mut self) -> Response {
        let mut sum = svc::scheduler::SvcStats::default();
        for idx in 0..self.shared.backends.len() {
            if let Ok(Response::Stats(s)) = self.forward(idx, &Request::Stats) {
                sum.submitted += s.submitted;
                sum.completed += s.completed;
                sum.ok += s.ok;
                sum.failed += s.failed;
                sum.panicked += s.panicked;
                sum.timed_out += s.timed_out;
                sum.cold_compiles += s.cold_compiles;
                sum.cold_compile_s += s.cold_compile_s;
                sum.warm_loads += s.warm_loads;
                sum.warm_load_s += s.warm_load_s;
                if let Some(st) = s.store {
                    let agg = sum.store.get_or_insert_with(Default::default);
                    agg.hits += st.hits;
                    agg.misses += st.misses;
                    agg.puts += st.puts;
                    agg.evictions += st.evictions;
                    agg.corrupt_rejected += st.corrupt_rejected;
                }
            }
        }
        Response::Stats(sum)
    }

    /// Aggregates `Health` across reachable shards: resilience counters
    /// and queue depths sum; per-engine breakers and fault sites are
    /// per-shard detail and stay empty here (the `Backends` reply is
    /// the router-level health surface).
    fn aggregate_health(&mut self) -> Response {
        let mut sum = HealthReport::default();
        for idx in 0..self.shared.backends.len() {
            if let Ok(Response::Health(h)) = self.forward(idx, &Request::Health) {
                sum.resilience.retries += h.resilience.retries;
                sum.resilience.compile_fallbacks += h.resilience.compile_fallbacks;
                sum.resilience.store_repairs += h.resilience.store_repairs;
                sum.resilience.breaker_fast_fails += h.resilience.breaker_fast_fails;
                sum.queue_depth += h.queue_depth;
                sum.peak_queue_depth += h.peak_queue_depth;
            }
        }
        Response::Health(sum)
    }
}

impl Handler for Router {
    fn handle(&mut self, token: Token, payload: &[u8]) -> Action {
        let response = match Request::decode(payload) {
            Err(e) => Response::Err(e.to_string()),
            Ok(Request::Ping) => Response::Pong,
            Ok(Request::Submit(spec, ctx)) => self.route_submit(spec, ctx),
            Ok(Request::Poll(id)) => match self.step_job(id) {
                JobStep::Done(res) => Response::Result(*res),
                JobStep::Pending => Response::Pending,
                JobStep::Lost(msg) => Response::Err(msg),
            },
            Ok(Request::Wait(id)) => {
                if self.jobs.contains_key(&id) {
                    self.waits.push((token, id));
                    return Action::Park;
                }
                Response::Err(format!("router: unknown job id {id}"))
            }
            Ok(Request::Stats) => self.aggregate_stats(),
            Ok(Request::Health) => self.aggregate_health(),
            Ok(Request::Backends) => Response::Backends(self.report()),
            Ok(Request::StatsExt) => per_shard_err("stats-ext"),
            Ok(Request::Series(_)) => per_shard_err("series"),
            Ok(Request::TraceDump) => per_shard_err("trace-dump"),
            Ok(Request::ProfileDump) => per_shard_err("profile windows"),
            Ok(Request::AlertLog) => per_shard_err("the alert log"),
            Ok(Request::Shutdown) => {
                // Stop the router only; shards are drained individually
                // (docs/OPERATIONS.md). Parked waits on *other*
                // connections are dropped with the reactor.
                return Action::Bye(Response::Bye.encode());
            }
        };
        Action::Respond(response.encode())
    }

    fn tick(&mut self, done: &mut Vec<(Token, Resolution)>) {
        if self.waits.is_empty() {
            return;
        }
        let parked = std::mem::take(&mut self.waits);
        for (token, id) in parked {
            match self.step_job(id) {
                JobStep::Done(res) => done.push((
                    token,
                    Resolution::Respond(Response::Result(*res).encode()),
                )),
                JobStep::Pending => self.waits.push((token, id)),
                JobStep::Lost(msg) => {
                    done.push((token, Resolution::Respond(Response::Err(msg).encode())))
                }
            }
        }
    }

    fn conn_closed(&mut self, conn: u64) {
        self.waits.retain(|(token, _)| token.conn != conn);
    }

    fn parked(&self) -> bool {
        !self.waits.is_empty()
    }
}

impl Drop for Router {
    fn drop(&mut self) {
        self.shared.stop_probes.store(true, Ordering::Relaxed);
    }
}

fn per_shard_err(what: &str) -> Response {
    Response::Err(format!(
        "router: {what} is per-shard; query a shard socket directly (see docs/DEPLOYMENT.md)"
    ))
}

/// Background health probes: one thread, fresh connections (never the
/// reactor's forwarding streams), riding the v4 `Health` request.
fn spawn_probes(shared: Arc<Shared>, interval: Duration) {
    let probe_fail = obs::metrics::counter(C_PROBE_FAIL);
    std::thread::spawn(move || {
        while !shared.stop_probes.load(Ordering::Relaxed) {
            for b in &shared.backends {
                let health = svc::server::Client::connect(&b.cfg.socket)
                    .and_then(|mut c| c.health());
                match health {
                    Ok(h) => {
                        b.queue_depth.store(h.queue_depth, Ordering::Relaxed);
                        b.healthy.store(true, Ordering::Relaxed);
                        b.breaker.lock().expect("breaker lock").record(true);
                    }
                    Err(_) => {
                        probe_fail.inc();
                        b.healthy.store(false, Ordering::Relaxed);
                        // Probes observe but don't trip the breaker:
                        // tripping is reserved for real forwarding
                        // failures so a slow-to-start shard isn't
                        // penalized before it ever takes traffic.
                    }
                }
            }
            std::thread::sleep(interval);
        }
    });
}

/// Binds `path` and serves the routing tier on the shared reactor until
/// a client sends `Shutdown`. Socket hygiene matches `wabench-served`:
/// stale socket files are replaced, live ones refuse the bind, and the
/// file is unlinked on every exit path.
///
/// # Errors
///
/// I/O errors binding or polling the socket.
pub fn serve(path: &Path, cfg: &RouterConfig) -> io::Result<()> {
    let listener = bind_socket(path)?;
    let _guard = SocketGuard::new(path);
    let mut handler = Router::new(cfg);
    svc::reactor::run(&listener, &mut handler)
}
