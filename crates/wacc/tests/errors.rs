//! Diagnostics quality: common source mistakes produce errors that point
//! at the right line and say what went wrong, at every optimization level
//! (errors must not depend on which passes run).

use wacc::{compile, CompileError, OptLevel};

fn err(src: &str) -> CompileError {
    let e0 = compile(src, OptLevel::O0).expect_err("should not compile");
    // The same diagnostic regardless of optimization level.
    let e3 = compile(src, OptLevel::O3).expect_err("should not compile at O3");
    assert_eq!(e0.line, e3.line, "diagnostic line differs across levels");
    assert_eq!(e0.msg, e3.msg, "diagnostic text differs across levels");
    e0
}

#[test]
fn syntax_error_points_at_line() {
    let e = err("export fn main() -> i32 {\n    return 1 +;\n}\n");
    assert_eq!(e.line, 2, "{e:?}");
}

#[test]
fn undefined_variable() {
    let e = err("export fn main() -> i32 {\n    return nope;\n}\n");
    assert_eq!(e.line, 2, "{e:?}");
    assert!(e.msg.contains("nope"), "{e:?}");
}

#[test]
fn undefined_function() {
    let e = err("export fn main() -> i32 {\n    return missing(1);\n}\n");
    assert!(e.msg.contains("missing"), "{e:?}");
}

#[test]
fn wrong_argument_count() {
    let e = err(
        "fn f(x: i32) -> i32 { return x; }\nexport fn main() -> i32 {\n    return f(1, 2);\n}\n",
    );
    assert_eq!(e.line, 3, "{e:?}");
}

#[test]
fn type_mismatch_in_assignment() {
    let e = err(
        "export fn main() -> i32 {\n    let x: i32 = 0;\n    x = 1.5;\n    return x;\n}\n",
    );
    assert!(e.line == 3, "{e:?}");
}

#[test]
fn returning_wrong_type() {
    let e = err("export fn main() -> i32 {\n    return 1.25;\n}\n");
    assert_eq!(e.line, 2, "{e:?}");
}

#[test]
fn missing_return_value() {
    let e = err("export fn main() -> i32 {\n    return;\n}\n");
    assert_eq!(e.line, 2, "{e:?}");
}

#[test]
fn duplicate_function_names() {
    let e = err("fn f() -> i32 { return 1; }\nfn f() -> i32 { return 2; }\nexport fn main() -> i32 { return f(); }\n");
    assert!(e.msg.contains('f'), "{e:?}");
}

#[test]
fn unterminated_block() {
    let e = err("export fn main() -> i32 {\n    return 1;\n");
    assert!(e.line >= 2, "{e:?}");
}

#[test]
fn break_outside_loop() {
    let e = err("export fn main() -> i32 {\n    break;\n    return 0;\n}\n");
    assert_eq!(e.line, 2, "{e:?}");
}

#[test]
fn error_display_includes_line() {
    let e = err("export fn main() -> i32 {\n    return nope;\n}\n");
    let shown = format!("{e}");
    assert!(shown.contains('2'), "display should carry the line: {shown}");
}
