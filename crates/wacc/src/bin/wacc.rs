//! The `wacc` command-line compiler: WaCC source to a `.wasm` binary.
//!
//! ```text
//! wacc input.wc [-o out.wasm] [-O0|-O1|-O2|-O3]
//! ```

use wacc::OptLevel;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut input: Option<String> = None;
    let mut output: Option<String> = None;
    let mut level = OptLevel::O2;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "-o" => {
                i += 1;
                output = args.get(i).cloned();
            }
            "-O0" => level = OptLevel::O0,
            "-O1" => level = OptLevel::O1,
            "-O2" => level = OptLevel::O2,
            "-O3" => level = OptLevel::O3,
            other if !other.starts_with('-') => input = Some(other.to_string()),
            other => {
                eprintln!("unknown flag {other:?}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    let Some(input) = input else {
        eprintln!("usage: wacc input.wc [-o out.wasm] [-O0|-O1|-O2|-O3]");
        std::process::exit(2);
    };
    let source = match std::fs::read_to_string(&input) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{input}: {e}");
            std::process::exit(1);
        }
    };
    match wacc::compile_to_bytes(&source, level) {
        Ok(bytes) => {
            let out = output.unwrap_or_else(|| {
                std::path::Path::new(&input)
                    .with_extension("wasm")
                    .to_string_lossy()
                    .into_owned()
            });
            if let Err(e) = std::fs::write(&out, &bytes) {
                eprintln!("{out}: {e}");
                std::process::exit(1);
            }
            eprintln!("{input} -> {out} ({} bytes, {level})", bytes.len());
        }
        Err(e) => {
            eprintln!("{input}:{e}");
            std::process::exit(1);
        }
    }
}
