//! The WaCC lexer.

use crate::error::CompileError;
use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Identifier or keyword.
    Ident(String),
    /// Integer literal (value, is_i64).
    Int(i64, bool),
    /// Float literal (value, is_f32).
    Float(f64, bool),
    /// String literal (unescaped bytes).
    Str(String),
    /// Punctuation or operator.
    Punct(&'static str),
    /// End of input.
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "`{s}`"),
            Tok::Int(v, _) => write!(f, "{v}"),
            Tok::Float(v, _) => write!(f, "{v}"),
            Tok::Str(_) => write!(f, "string literal"),
            Tok::Punct(p) => write!(f, "`{p}`"),
            Tok::Eof => write!(f, "end of input"),
        }
    }
}

/// A token with its source line.
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    /// The token.
    pub tok: Tok,
    /// 1-based source line.
    pub line: u32,
}

/// Tokenizes WaCC source.
///
/// # Errors
///
/// Returns a [`CompileError`] on unterminated strings/comments, malformed
/// numbers, or unexpected characters.
pub fn lex(src: &str) -> Result<Vec<Spanned>, CompileError> {
    let b = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    let err = |line: u32, msg: String| CompileError { line, msg };

    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'/' if b.get(i + 1) == Some(&b'/') => {
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if b.get(i + 1) == Some(&b'*') => {
                let start_line = line;
                i += 2;
                loop {
                    if i + 1 >= b.len() {
                        return Err(err(start_line, "unterminated block comment".into()));
                    }
                    if b[i] == b'\n' {
                        line += 1;
                    }
                    if b[i] == b'*' && b[i + 1] == b'/' {
                        i += 2;
                        break;
                    }
                    i += 1;
                }
            }
            b'"' => {
                let start_line = line;
                i += 1;
                let mut s = String::new();
                loop {
                    if i >= b.len() {
                        return Err(err(start_line, "unterminated string".into()));
                    }
                    match b[i] {
                        b'"' => {
                            i += 1;
                            break;
                        }
                        b'\\' => {
                            let esc = *b
                                .get(i + 1)
                                .ok_or_else(|| err(line, "unterminated escape".into()))?;
                            s.push(match esc {
                                b'n' => '\n',
                                b't' => '\t',
                                b'r' => '\r',
                                b'0' => '\0',
                                b'\\' => '\\',
                                b'"' => '"',
                                other => {
                                    return Err(err(
                                        line,
                                        format!("unknown escape \\{}", other as char),
                                    ))
                                }
                            });
                            i += 2;
                        }
                        b'\n' => return Err(err(start_line, "newline in string".into())),
                        other => {
                            s.push(other as char);
                            i += 1;
                        }
                    }
                }
                out.push(Spanned {
                    tok: Tok::Str(s),
                    line: start_line,
                });
            }
            b'\'' => {
                // Character literal → i32.
                let (ch, consumed) = match (b.get(i + 1), b.get(i + 2)) {
                    (Some(b'\\'), Some(&esc)) => (
                        match esc {
                            b'n' => b'\n',
                            b't' => b'\t',
                            b'r' => b'\r',
                            b'0' => 0,
                            b'\\' => b'\\',
                            b'\'' => b'\'',
                            other => return Err(err(line, format!("unknown escape \\{}", other as char))),
                        },
                        3,
                    ),
                    (Some(&ch), _) => (ch, 2),
                    _ => return Err(err(line, "unterminated char literal".into())),
                };
                if b.get(i + consumed) != Some(&b'\'') {
                    return Err(err(line, "unterminated char literal".into()));
                }
                i += consumed + 1;
                out.push(Spanned {
                    tok: Tok::Int(ch as i64, false),
                    line,
                });
            }
            b'0'..=b'9' => {
                let start = i;
                let mut is_float = false;
                if c == b'0' && b.get(i + 1) == Some(&b'x') {
                    i += 2;
                    while i < b.len() && (b[i].is_ascii_hexdigit() || b[i] == b'_') {
                        i += 1;
                    }
                    let text: String = src[start + 2..i].chars().filter(|c| *c != '_').collect();
                    let v = u64::from_str_radix(&text, 16)
                        .map_err(|_| err(line, format!("bad hex literal {text}")))?;
                    let is_long = if b.get(i) == Some(&b'L') {
                        i += 1;
                        true
                    } else {
                        false
                    };
                    out.push(Spanned {
                        tok: Tok::Int(v as i64, is_long),
                        line,
                    });
                    continue;
                }
                while i < b.len() && (b[i].is_ascii_digit() || b[i] == b'_') {
                    i += 1;
                }
                if i < b.len() && b[i] == b'.' && b.get(i + 1).is_some_and(|d| d.is_ascii_digit()) {
                    is_float = true;
                    i += 1;
                    while i < b.len() && b[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                if i < b.len() && (b[i] == b'e' || b[i] == b'E') {
                    let mut j = i + 1;
                    if j < b.len() && (b[j] == b'+' || b[j] == b'-') {
                        j += 1;
                    }
                    if j < b.len() && b[j].is_ascii_digit() {
                        is_float = true;
                        i = j;
                        while i < b.len() && b[i].is_ascii_digit() {
                            i += 1;
                        }
                    }
                }
                let text: String = src[start..i].chars().filter(|c| *c != '_').collect();
                if is_float {
                    let is_f32 = if b.get(i) == Some(&b'f') {
                        i += 1;
                        true
                    } else {
                        false
                    };
                    let v: f64 = text
                        .parse()
                        .map_err(|_| err(line, format!("bad float literal {text}")))?;
                    out.push(Spanned {
                        tok: Tok::Float(v, is_f32),
                        line,
                    });
                } else {
                    let is_long = if b.get(i) == Some(&b'L') {
                        i += 1;
                        true
                    } else {
                        false
                    };
                    // Some benchmarks write f64 constants as `1.0`; plain
                    // integers stay integers.
                    let v: i64 = text
                        .parse()
                        .map_err(|_| err(line, format!("bad integer literal {text}")))?;
                    out.push(Spanned {
                        tok: Tok::Int(v, is_long),
                        line,
                    });
                }
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                out.push(Spanned {
                    tok: Tok::Ident(src[start..i].to_string()),
                    line,
                });
            }
            _ => {
                const THREE: [&str; 2] = [">>>", "..."];
                const TWO: [&str; 12] = [
                    "<<", ">>", "<=", ">=", "==", "!=", "&&", "||", "->", "+=", "-=", "*=",
                ];
                const ONE: [&str; 19] = [
                    "+", "-", "*", "/", "%", "&", "|", "^", "~", "!", "<", ">", "=", "(", ")",
                    "{", "}", ",", ";",
                ];
                let rest = &src[i..];
                let mut matched = None;
                for p in THREE {
                    if rest.starts_with(p) {
                        matched = Some(p);
                        break;
                    }
                }
                if matched.is_none() {
                    for p in TWO {
                        if rest.starts_with(p) {
                            matched = Some(p);
                            break;
                        }
                    }
                }
                if matched.is_none() {
                    for p in ONE {
                        if rest.starts_with(p) {
                            matched = Some(p);
                            break;
                        }
                    }
                }
                if matched.is_none() && (c == b':') {
                    matched = Some(":");
                }
                match matched {
                    Some(p) => {
                        out.push(Spanned {
                            tok: Tok::Punct(p),
                            line,
                        });
                        i += p.len();
                    }
                    None => {
                        return Err(err(line, format!("unexpected character {:?}", c as char)))
                    }
                }
            }
        }
    }
    out.push(Spanned {
        tok: Tok::Eof,
        line,
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn lexes_basic_tokens() {
        assert_eq!(
            toks("let x: i32 = 42;"),
            vec![
                Tok::Ident("let".into()),
                Tok::Ident("x".into()),
                Tok::Punct(":"),
                Tok::Ident("i32".into()),
                Tok::Punct("="),
                Tok::Int(42, false),
                Tok::Punct(";"),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn lexes_numbers() {
        assert_eq!(toks("0x1F")[0], Tok::Int(31, false));
        assert_eq!(toks("7L")[0], Tok::Int(7, true));
        assert_eq!(toks("1.5")[0], Tok::Float(1.5, false));
        assert_eq!(toks("2.5f")[0], Tok::Float(2.5, true));
        assert_eq!(toks("1e3")[0], Tok::Float(1000.0, false));
        assert_eq!(toks("1_000_000")[0], Tok::Int(1_000_000, false));
        assert_eq!(toks("0xFFFFFFFF")[0], Tok::Int(0xFFFF_FFFF, false));
    }

    #[test]
    fn lexes_multi_char_operators() {
        assert_eq!(
            toks("a >>> b >> c >= d"),
            vec![
                Tok::Ident("a".into()),
                Tok::Punct(">>>"),
                Tok::Ident("b".into()),
                Tok::Punct(">>"),
                Tok::Ident("c".into()),
                Tok::Punct(">="),
                Tok::Ident("d".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            toks("a // line\n /* block\n comment */ b"),
            vec![Tok::Ident("a".into()), Tok::Ident("b".into()), Tok::Eof]
        );
    }

    #[test]
    fn strings_and_chars() {
        assert_eq!(toks(r#""hi\n""#)[0], Tok::Str("hi\n".into()));
        assert_eq!(toks("'A'")[0], Tok::Int(65, false));
        assert_eq!(toks(r"'\n'")[0], Tok::Int(10, false));
    }

    #[test]
    fn tracks_lines() {
        let spanned = lex("a\nb\n\nc").unwrap();
        assert_eq!(spanned[0].line, 1);
        assert_eq!(spanned[1].line, 2);
        assert_eq!(spanned[2].line, 4);
    }

    #[test]
    fn errors_on_bad_input() {
        assert!(lex("\"unterminated").is_err());
        assert!(lex("/* unterminated").is_err());
        assert!(lex("@").is_err());
    }
}
