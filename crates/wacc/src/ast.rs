//! The abstract syntax tree of the WaCC language.
//!
//! WaCC ("WABench C Compiler") is the mini-C language the benchmark suite
//! is written in. It compiles to WebAssembly + WASI, standing in for the
//! WASI SDK's clang in the paper's methodology: scalars of the four Wasm
//! value types, explicit linear-memory intrinsics instead of pointers,
//! functions, globals, and structured control flow.

use std::fmt;

/// A scalar type (exactly the Wasm value types).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Ty {
    /// 32-bit signed integer.
    I32,
    /// 64-bit signed integer.
    I64,
    /// 32-bit float.
    F32,
    /// 64-bit float.
    F64,
}

impl Ty {
    /// The Wasm value type this compiles to.
    pub fn val_type(self) -> wasm_core::ValType {
        match self {
            Ty::I32 => wasm_core::ValType::I32,
            Ty::I64 => wasm_core::ValType::I64,
            Ty::F32 => wasm_core::ValType::F32,
            Ty::F64 => wasm_core::ValType::F64,
        }
    }

    /// Whether this is an integer type.
    pub fn is_int(self) -> bool {
        matches!(self, Ty::I32 | Ty::I64)
    }
}

impl fmt::Display for Ty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Ty::I32 => "i32",
            Ty::I64 => "i64",
            Ty::F32 => "f32",
            Ty::F64 => "f64",
        };
        f.write_str(s)
    }
}

/// A literal constant value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Lit {
    /// i32 literal.
    I32(i32),
    /// i64 literal.
    I64(i64),
    /// f32 literal.
    F32(f32),
    /// f64 literal.
    F64(f64),
}

impl Lit {
    /// The literal's type.
    pub fn ty(self) -> Ty {
        match self {
            Lit::I32(_) => Ty::I32,
            Lit::I64(_) => Ty::I64,
            Lit::F32(_) => Ty::F32,
            Lit::F64(_) => Ty::F64,
        }
    }
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/` (signed for ints)
    Div,
    /// `%` (signed for ints)
    Rem,
    /// `&`
    And,
    /// `|`
    Or,
    /// `^`
    Xor,
    /// `<<`
    Shl,
    /// `>>` (arithmetic)
    Shr,
    /// `>>>` (logical)
    ShrU,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `&&` (short-circuit)
    AndAnd,
    /// `||` (short-circuit)
    OrOr,
}

impl BinOp {
    /// Whether the operator produces an `i32` boolean regardless of
    /// operand type.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Eq | BinOp::Ne
        )
    }

    /// Whether the operator short-circuits.
    pub fn is_logical(self) -> bool {
        matches!(self, BinOp::AndAnd | BinOp::OrOr)
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Logical not (`!`), yields i32.
    Not,
    /// Bitwise not (`~`), integers only.
    BitNot,
}

/// Compiler builtins: numeric intrinsics, memory access, and raw WASI
/// calls (the friendly I/O helpers are written in WaCC itself, in the
/// prelude).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // names mirror the surface syntax 1:1
pub enum Builtin {
    // Memory access.
    LoadI32,
    LoadI64,
    LoadF32,
    LoadF64,
    LoadU8,
    LoadI8,
    LoadU16,
    LoadI16,
    StoreI32,
    StoreI64,
    StoreF32,
    StoreF64,
    StoreU8,
    StoreU16,
    MemorySize,
    MemoryGrow,
    // Unsigned / bit operations on i32 or i64.
    DivU,
    RemU,
    LtU,
    GtU,
    LeU,
    GeU,
    Clz,
    Ctz,
    Popcnt,
    Rotl,
    Rotr,
    // Float math.
    Sqrt,
    Abs,
    Floor,
    Ceil,
    TruncF,
    Nearest,
    FMin,
    FMax,
    Copysign,
    // Raw WASI imports.
    WasiFdWrite,
    WasiFdRead,
    WasiProcExit,
    WasiClockTimeGet,
    WasiRandomGet,
}

impl Builtin {
    /// Looks a builtin up by its surface name.
    pub fn from_name(name: &str) -> Option<Builtin> {
        use Builtin::*;
        Some(match name {
            "load_i32" => LoadI32,
            "load_i64" => LoadI64,
            "load_f32" => LoadF32,
            "load_f64" => LoadF64,
            "load_u8" => LoadU8,
            "load_i8" => LoadI8,
            "load_u16" => LoadU16,
            "load_i16" => LoadI16,
            "store_i32" => StoreI32,
            "store_i64" => StoreI64,
            "store_f32" => StoreF32,
            "store_f64" => StoreF64,
            "store_u8" => StoreU8,
            "store_u16" => StoreU16,
            "memory_size" => MemorySize,
            "memory_grow" => MemoryGrow,
            "divu" => DivU,
            "remu" => RemU,
            "ltu" => LtU,
            "gtu" => GtU,
            "leu" => LeU,
            "geu" => GeU,
            "clz" => Clz,
            "ctz" => Ctz,
            "popcnt" => Popcnt,
            "rotl" => Rotl,
            "rotr" => Rotr,
            "sqrt" => Sqrt,
            "abs" => Abs,
            "floor" => Floor,
            "ceil" => Ceil,
            "truncf" => TruncF,
            "nearest" => Nearest,
            "fmin" => FMin,
            "fmax" => FMax,
            "copysign" => Copysign,
            "wasi_fd_write" => WasiFdWrite,
            "wasi_fd_read" => WasiFdRead,
            "wasi_proc_exit" => WasiProcExit,
            "wasi_clock_time_get" => WasiClockTimeGet,
            "wasi_random_get" => WasiRandomGet,
            _ => return None,
        })
    }
}

/// An expression, annotated with its type after checking.
#[derive(Debug, Clone, PartialEq)]
pub struct Expr {
    /// The expression node.
    pub kind: ExprKind,
    /// Type, filled in by the checker (`Ty::I32` placeholder before).
    pub ty: Ty,
    /// Source line (1-based) for diagnostics.
    pub line: u32,
}

impl Expr {
    /// Creates an unchecked expression node.
    pub fn new(kind: ExprKind, line: u32) -> Expr {
        Expr {
            kind,
            ty: Ty::I32,
            line,
        }
    }
}

/// Expression node kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind {
    /// Literal constant.
    Lit(Lit),
    /// Local variable or parameter reference (resolved slot).
    Local(u32),
    /// Global variable reference (resolved index).
    Global(u32),
    /// Named reference before resolution.
    Name(String),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Unary operation.
    Un(UnOp, Box<Expr>),
    /// Type cast (`expr as ty`).
    Cast(Box<Expr>, Ty),
    /// Function call by name (resolved to index at check time).
    Call(String, Vec<Expr>),
    /// Builtin invocation.
    Builtin(Builtin, Vec<Expr>),
    /// String literal, already placed in the data section; evaluates to
    /// its address.
    Str(u32),
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `let name: ty = expr;` (slot resolved at check time).
    Let {
        /// Variable name.
        name: String,
        /// Declared type (inferred from initializer if omitted).
        ty: Option<Ty>,
        /// Initializer.
        init: Expr,
        /// Resolved local slot.
        slot: u32,
    },
    /// Assignment to a local or global.
    Assign {
        /// Target name.
        name: String,
        /// Value.
        value: Expr,
        /// Resolved target.
        target: AssignTarget,
    },
    /// Expression statement (value dropped).
    Expr(Expr),
    /// `if (cond) { .. } else { .. }`.
    If {
        /// Condition.
        cond: Expr,
        /// Then-arm.
        then: Vec<Stmt>,
        /// Else-arm.
        els: Vec<Stmt>,
    },
    /// `while (cond) { .. }`.
    While {
        /// Condition.
        cond: Expr,
        /// Body.
        body: Vec<Stmt>,
    },
    /// `for (init; cond; step) { .. }` (kept structured for unrolling).
    For {
        /// Initializer statement.
        init: Box<Stmt>,
        /// Condition.
        cond: Expr,
        /// Step statement.
        step: Box<Stmt>,
        /// Body.
        body: Vec<Stmt>,
    },
    /// `break;` (carries its source line for diagnostics).
    Break(u32),
    /// `continue;` (carries its source line for diagnostics).
    Continue(u32),
    /// `return expr?;` (the second field is the statement's source line).
    Return(Option<Expr>, u32),
    /// A nested block scope.
    Block(Vec<Stmt>),
}

/// Where an assignment resolves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AssignTarget {
    /// Unresolved (pre-check).
    Unresolved,
    /// Local slot.
    Local(u32),
    /// Global index.
    Global(u32),
}

/// A function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct FuncDef {
    /// Function name.
    pub name: String,
    /// Source line of the definition (1-based), for diagnostics.
    pub line: u32,
    /// Parameters (name, type).
    pub params: Vec<(String, Ty)>,
    /// Return type, if any.
    pub ret: Option<Ty>,
    /// Body statements.
    pub body: Vec<Stmt>,
    /// Whether the function is exported.
    pub exported: bool,
    /// Total local slots (params first), filled by the checker.
    pub nlocals: u32,
    /// Types of all local slots, filled by the checker.
    pub local_types: Vec<Ty>,
    /// Names of all local slots (params first), filled by the checker;
    /// lets diagnostics refer to slots by their surface name.
    pub local_names: Vec<String>,
}

/// A global variable definition.
#[derive(Debug, Clone, PartialEq)]
pub struct GlobalDef {
    /// Name.
    pub name: String,
    /// Type.
    pub ty: Ty,
    /// Constant initializer.
    pub init: Lit,
}

/// A compile-time constant (`const N = 32;`).
#[derive(Debug, Clone, PartialEq)]
pub struct ConstDef {
    /// Name.
    pub name: String,
    /// Value.
    pub value: Lit,
}

/// A parsed program.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    /// Linear memory size in 64 KiB pages.
    pub memory_pages: u32,
    /// Global variables.
    pub globals: Vec<GlobalDef>,
    /// Functions.
    pub funcs: Vec<FuncDef>,
    /// String data collected during parsing: (address, bytes).
    pub data: Vec<(u32, Vec<u8>)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_lookup() {
        assert_eq!(Builtin::from_name("load_i32"), Some(Builtin::LoadI32));
        assert_eq!(Builtin::from_name("sqrt"), Some(Builtin::Sqrt));
        assert_eq!(Builtin::from_name("nope"), None);
    }

    #[test]
    fn ty_mapping() {
        assert_eq!(Ty::F64.val_type(), wasm_core::ValType::F64);
        assert!(Ty::I64.is_int());
        assert!(!Ty::F32.is_int());
        assert_eq!(Lit::I64(3).ty(), Ty::I64);
    }

    #[test]
    fn binop_classification() {
        assert!(BinOp::Lt.is_comparison());
        assert!(BinOp::AndAnd.is_logical());
        assert!(!BinOp::Add.is_comparison());
    }
}
