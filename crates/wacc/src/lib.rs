//! # wacc — the WABench C Compiler
//!
//! A mini-C ("WaCC") to WebAssembly + WASI compiler with `-O0..-O3`
//! optimization levels, standing in for the WASI SDK in the paper's
//! methodology. The 50 WABench programs are written in WaCC.
//!
//! Pipeline: [`lexer`] → [`parser`] → [`check`] → [`opt`] (AST-level
//! optimization) → [`codegen`] (Wasm emission). A reference evaluator
//! ([`eval`]) executes the checked AST directly for differential testing.
//!
//! ```
//! use wacc::OptLevel;
//!
//! let src = r#"
//!     export fn main() -> i32 {
//!         let s: i32 = 0;
//!         for (let i: i32 = 1; i <= 10; i += 1) { s += i * i; }
//!         return s;
//!     }
//! "#;
//! let module = wacc::compile(src, OptLevel::O2)?;
//! wasm_core::validate::validate(&module)?;
//! let bytes = wacc::compile_to_bytes(src, OptLevel::O2)?;
//! assert_eq!(&bytes[..4], b"\0asm");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod check;
pub mod codegen;
pub mod error;
pub mod eval;
pub mod lexer;
pub mod opt;
pub mod parser;
pub mod prelude;

pub use error::CompileError;
pub use opt::OptLevel;

use ast::Program;

/// Parses, checks, and optimizes a program (prelude included), returning
/// the typed AST ready for code generation or evaluation.
///
/// # Errors
///
/// Returns the first lexical, syntax, or type error.
pub fn frontend(src: &str, level: OptLevel) -> Result<Program, CompileError> {
    let _span = obs::span!("wacc.frontend", level = level);
    let full = format!("{src}\n{}", prelude::PRELUDE);
    let mut program = {
        let _s = obs::span!("wacc.parse");
        parser::parse(&full)?
    };
    let sigs = {
        let _s = obs::span!("wacc.check");
        check::check(&mut program)?
    };
    opt::optimize(&mut program, &sigs, level);
    Ok(program)
}

/// Compiles WaCC source to a Wasm [`wasm_core::Module`].
///
/// # Errors
///
/// Returns the first compile error.
pub fn compile(src: &str, level: OptLevel) -> Result<wasm_core::Module, CompileError> {
    let _span = obs::span!("wacc.compile", level = level);
    let full = format!("{src}\n{}", prelude::PRELUDE);
    let mut program = {
        let _s = obs::span!("wacc.parse");
        parser::parse(&full)?
    };
    let sigs = {
        let _s = obs::span!("wacc.check");
        check::check(&mut program)?
    };
    opt::optimize(&mut program, &sigs, level);
    let _s = obs::span!("wacc.codegen");
    codegen::generate_with(&program, &sigs, level == OptLevel::O0)
}

/// Compiles WaCC source to Wasm binary bytes.
///
/// # Errors
///
/// Returns the first compile error.
pub fn compile_to_bytes(src: &str, level: OptLevel) -> Result<Vec<u8>, CompileError> {
    let module = compile(src, level)?;
    let _s = obs::span!("wacc.encode");
    Ok(wasm_core::encode::encode(&module))
}
