//! The WaCC recursive-descent parser.

use std::collections::HashMap;

use crate::ast::*;
use crate::error::CompileError;
use crate::lexer::{lex, Spanned, Tok};

/// Base address where string literals are laid out. The scratch region
/// `0..64` is reserved for the prelude's I/O buffers; benchmark data
/// should live at addresses well above the string pool.
pub const STRING_BASE: u32 = 128;

/// Parses WaCC source into a [`Program`].
///
/// # Errors
///
/// Returns the first syntax error encountered.
pub fn parse(src: &str) -> Result<Program, CompileError> {
    let toks = lex(src)?;
    Parser {
        toks,
        pos: 0,
        consts: HashMap::new(),
        program: Program {
            memory_pages: 16,
            ..Program::default()
        },
        string_cursor: STRING_BASE,
    }
    .run()
}

struct Parser {
    toks: Vec<Spanned>,
    pos: usize,
    consts: HashMap<String, Lit>,
    program: Program,
    string_cursor: u32,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].tok
    }

    fn line(&self) -> u32 {
        self.toks[self.pos].line
    }

    fn next(&mut self) -> Tok {
        let t = self.toks[self.pos].tok.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, msg: impl Into<String>) -> CompileError {
        CompileError::new(self.line(), msg)
    }

    fn expect_punct(&mut self, p: &str) -> Result<(), CompileError> {
        match self.peek() {
            Tok::Punct(q) if *q == p => {
                self.next();
                Ok(())
            }
            other => Err(self.err(format!("expected `{p}`, found {other}"))),
        }
    }

    fn eat_punct(&mut self, p: &str) -> bool {
        if matches!(self.peek(), Tok::Punct(q) if *q == p) {
            self.next();
            true
        } else {
            false
        }
    }

    fn expect_ident(&mut self) -> Result<String, CompileError> {
        match self.next() {
            Tok::Ident(s) => Ok(s),
            other => Err(self.err(format!("expected identifier, found {other}"))),
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Tok::Ident(s) if s == kw) {
            self.next();
            true
        } else {
            false
        }
    }

    fn parse_ty(&mut self) -> Result<Ty, CompileError> {
        let name = self.expect_ident()?;
        match name.as_str() {
            "i32" => Ok(Ty::I32),
            "i64" => Ok(Ty::I64),
            "f32" => Ok(Ty::F32),
            "f64" => Ok(Ty::F64),
            other => Err(self.err(format!("unknown type `{other}`"))),
        }
    }

    fn run(mut self) -> Result<Program, CompileError> {
        loop {
            match self.peek().clone() {
                Tok::Eof => break,
                Tok::Ident(kw) => match kw.as_str() {
                    "memory" => {
                        self.next();
                        let pages = self.const_int_expr()?;
                        self.expect_punct(";")?;
                        self.program.memory_pages = pages as u32;
                    }
                    "global" => {
                        self.next();
                        let name = self.expect_ident()?;
                        self.expect_punct(":")?;
                        let ty = self.parse_ty()?;
                        self.expect_punct("=")?;
                        let init = self.parse_lit_of(ty)?;
                        self.expect_punct(";")?;
                        self.program.globals.push(GlobalDef { name, ty, init });
                    }
                    "const" => {
                        self.next();
                        let name = self.expect_ident()?;
                        self.expect_punct("=")?;
                        let v = self.const_int_expr()?;
                        self.expect_punct(";")?;
                        let lit = if v > i32::MAX as i64 || v < i32::MIN as i64 {
                            Lit::I64(v)
                        } else {
                            Lit::I32(v as i32)
                        };
                        self.consts.insert(name, lit);
                    }
                    "export" | "fn" => {
                        let exported = kw == "export";
                        if exported {
                            self.next();
                        }
                        if !self.eat_keyword("fn") {
                            return Err(self.err("expected `fn`"));
                        }
                        let func = self.parse_func(exported)?;
                        self.program.funcs.push(func);
                    }
                    other => return Err(self.err(format!("unexpected item `{other}`"))),
                },
                other => return Err(self.err(format!("unexpected token {other}"))),
            }
        }
        Ok(self.program)
    }

    /// Evaluates a compile-time integer expression (for `const`, `memory`).
    fn const_int_expr(&mut self) -> Result<i64, CompileError> {
        self.const_add()
    }

    fn const_add(&mut self) -> Result<i64, CompileError> {
        let mut v = self.const_mul()?;
        loop {
            if self.eat_punct("+") {
                v += self.const_mul()?;
            } else if self.eat_punct("-") {
                v -= self.const_mul()?;
            } else {
                return Ok(v);
            }
        }
    }

    fn const_mul(&mut self) -> Result<i64, CompileError> {
        let mut v = self.const_atom()?;
        loop {
            if self.eat_punct("*") {
                v *= self.const_atom()?;
            } else if self.eat_punct("/") {
                let d = self.const_atom()?;
                if d == 0 {
                    return Err(self.err("division by zero in constant"));
                }
                v /= d;
            } else if self.eat_punct("<<") {
                v <<= self.const_atom()?;
            } else {
                return Ok(v);
            }
        }
    }

    fn const_atom(&mut self) -> Result<i64, CompileError> {
        if self.eat_punct("(") {
            let v = self.const_int_expr()?;
            self.expect_punct(")")?;
            return Ok(v);
        }
        if self.eat_punct("-") {
            return Ok(-self.const_atom()?);
        }
        match self.next() {
            Tok::Int(v, _) => Ok(v),
            Tok::Ident(name) => match self.consts.get(&name) {
                Some(Lit::I32(v)) => Ok(*v as i64),
                Some(Lit::I64(v)) => Ok(*v),
                _ => Err(self.err(format!("unknown constant `{name}`"))),
            },
            other => Err(self.err(format!("expected constant, found {other}"))),
        }
    }

    fn parse_lit_of(&mut self, ty: Ty) -> Result<Lit, CompileError> {
        let neg = self.eat_punct("-");
        let lit = match self.next() {
            Tok::Int(v, _) => {
                let v = if neg { -v } else { v };
                match ty {
                    Ty::I32 => Lit::I32(v as i32),
                    Ty::I64 => Lit::I64(v),
                    Ty::F32 => Lit::F32(v as f32),
                    Ty::F64 => Lit::F64(v as f64),
                }
            }
            Tok::Float(v, _) => {
                let v = if neg { -v } else { v };
                match ty {
                    Ty::F32 => Lit::F32(v as f32),
                    Ty::F64 => Lit::F64(v),
                    _ => return Err(self.err("float initializer for integer global")),
                }
            }
            other => return Err(self.err(format!("expected literal, found {other}"))),
        };
        Ok(lit)
    }

    fn parse_func(&mut self, exported: bool) -> Result<FuncDef, CompileError> {
        let line = self.line();
        let name = self.expect_ident()?;
        self.expect_punct("(")?;
        let mut params = Vec::new();
        if !self.eat_punct(")") {
            loop {
                let pname = self.expect_ident()?;
                self.expect_punct(":")?;
                let ty = self.parse_ty()?;
                params.push((pname, ty));
                if self.eat_punct(")") {
                    break;
                }
                self.expect_punct(",")?;
            }
        }
        let ret = if self.eat_punct("->") {
            Some(self.parse_ty()?)
        } else {
            None
        };
        let body = self.parse_block()?;
        Ok(FuncDef {
            name,
            line,
            params,
            ret,
            body,
            exported,
            nlocals: 0,
            local_types: Vec::new(),
            local_names: Vec::new(),
        })
    }

    fn parse_block(&mut self) -> Result<Vec<Stmt>, CompileError> {
        self.expect_punct("{")?;
        let mut stmts = Vec::new();
        while !self.eat_punct("}") {
            stmts.push(self.parse_stmt()?);
        }
        Ok(stmts)
    }

    fn parse_stmt(&mut self) -> Result<Stmt, CompileError> {
        match self.peek().clone() {
            Tok::Punct("{") => Ok(Stmt::Block(self.parse_block()?)),
            Tok::Ident(kw) => match kw.as_str() {
                "let" => {
                    let s = self.parse_simple_stmt()?;
                    self.expect_punct(";")?;
                    Ok(s)
                }
                "if" => {
                    self.next();
                    self.expect_punct("(")?;
                    let cond = self.parse_expr()?;
                    self.expect_punct(")")?;
                    let then = self.parse_block()?;
                    let els = if self.eat_keyword("else") {
                        if matches!(self.peek(), Tok::Ident(k) if k == "if") {
                            vec![self.parse_stmt()?]
                        } else {
                            self.parse_block()?
                        }
                    } else {
                        Vec::new()
                    };
                    Ok(Stmt::If { cond, then, els })
                }
                "while" => {
                    self.next();
                    self.expect_punct("(")?;
                    let cond = self.parse_expr()?;
                    self.expect_punct(")")?;
                    let body = self.parse_block()?;
                    Ok(Stmt::While { cond, body })
                }
                "for" => {
                    self.next();
                    self.expect_punct("(")?;
                    let init = Box::new(self.parse_simple_stmt()?);
                    self.expect_punct(";")?;
                    let cond = self.parse_expr()?;
                    self.expect_punct(";")?;
                    let step = Box::new(self.parse_simple_stmt()?);
                    self.expect_punct(")")?;
                    let body = self.parse_block()?;
                    Ok(Stmt::For {
                        init,
                        cond,
                        step,
                        body,
                    })
                }
                "break" => {
                    let line = self.line();
                    self.next();
                    self.expect_punct(";")?;
                    Ok(Stmt::Break(line))
                }
                "continue" => {
                    let line = self.line();
                    self.next();
                    self.expect_punct(";")?;
                    Ok(Stmt::Continue(line))
                }
                "return" => {
                    let line = self.line();
                    self.next();
                    if self.eat_punct(";") {
                        Ok(Stmt::Return(None, line))
                    } else {
                        let e = self.parse_expr()?;
                        self.expect_punct(";")?;
                        Ok(Stmt::Return(Some(e), line))
                    }
                }
                _ => {
                    let s = self.parse_simple_stmt()?;
                    self.expect_punct(";")?;
                    Ok(s)
                }
            },
            _ => {
                let s = self.parse_simple_stmt()?;
                self.expect_punct(";")?;
                Ok(s)
            }
        }
    }

    /// A let, assignment, compound assignment, or expression (no
    /// trailing semicolon — used for `for` headers and plain statements).
    fn parse_simple_stmt(&mut self) -> Result<Stmt, CompileError> {
        if matches!(self.peek(), Tok::Ident(k) if k == "let") {
            self.next();
            let name = self.expect_ident()?;
            let ty = if self.eat_punct(":") {
                Some(self.parse_ty()?)
            } else {
                None
            };
            self.expect_punct("=")?;
            let init = self.parse_expr()?;
            return Ok(Stmt::Let {
                name,
                ty,
                init,
                slot: 0,
            });
        }
        // Lookahead: IDENT (=, +=, -=, *=) ...
        if let Tok::Ident(name) = self.peek().clone() {
            if Builtin::from_name(&name).is_none() && !self.consts.contains_key(&name) {
                let after = &self.toks[self.pos + 1].tok;
                let line = self.line();
                let compound = |op: BinOp, this: &mut Self| -> Result<Stmt, CompileError> {
                    this.next();
                    this.next();
                    let rhs = this.parse_expr()?;
                    let lhs = Expr::new(ExprKind::Name(name.clone()), line);
                    Ok(Stmt::Assign {
                        name: name.clone(),
                        value: Expr::new(ExprKind::Bin(op, Box::new(lhs), Box::new(rhs)), line),
                        target: AssignTarget::Unresolved,
                    })
                };
                match after {
                    Tok::Punct("=") => {
                        self.next();
                        self.next();
                        let value = self.parse_expr()?;
                        return Ok(Stmt::Assign {
                            name,
                            value,
                            target: AssignTarget::Unresolved,
                        });
                    }
                    Tok::Punct("+=") => return compound(BinOp::Add, self),
                    Tok::Punct("-=") => return compound(BinOp::Sub, self),
                    Tok::Punct("*=") => return compound(BinOp::Mul, self),
                    _ => {}
                }
            }
        }
        Ok(Stmt::Expr(self.parse_expr()?))
    }

    fn parse_expr(&mut self) -> Result<Expr, CompileError> {
        self.parse_bin(0)
    }

    fn parse_bin(&mut self, min_prec: u8) -> Result<Expr, CompileError> {
        let mut lhs = self.parse_unary()?;
        loop {
            let (op, prec) = match self.peek() {
                Tok::Punct("||") => (BinOp::OrOr, 1),
                Tok::Punct("&&") => (BinOp::AndAnd, 2),
                Tok::Punct("|") => (BinOp::Or, 3),
                Tok::Punct("^") => (BinOp::Xor, 4),
                Tok::Punct("&") => (BinOp::And, 5),
                Tok::Punct("==") => (BinOp::Eq, 6),
                Tok::Punct("!=") => (BinOp::Ne, 6),
                Tok::Punct("<") => (BinOp::Lt, 7),
                Tok::Punct("<=") => (BinOp::Le, 7),
                Tok::Punct(">") => (BinOp::Gt, 7),
                Tok::Punct(">=") => (BinOp::Ge, 7),
                Tok::Punct("<<") => (BinOp::Shl, 8),
                Tok::Punct(">>") => (BinOp::Shr, 8),
                Tok::Punct(">>>") => (BinOp::ShrU, 8),
                Tok::Punct("+") => (BinOp::Add, 9),
                Tok::Punct("-") => (BinOp::Sub, 9),
                Tok::Punct("*") => (BinOp::Mul, 10),
                Tok::Punct("/") => (BinOp::Div, 10),
                Tok::Punct("%") => (BinOp::Rem, 10),
                _ => break,
            };
            if prec < min_prec {
                break;
            }
            let line = self.line();
            self.next();
            let rhs = self.parse_bin(prec + 1)?;
            lhs = Expr::new(ExprKind::Bin(op, Box::new(lhs), Box::new(rhs)), line);
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> Result<Expr, CompileError> {
        let line = self.line();
        if self.eat_punct("-") {
            let e = self.parse_unary()?;
            // Fold negation of literals immediately so `-2147483648` works.
            if let ExprKind::Lit(lit) = e.kind {
                let folded = match lit {
                    Lit::I32(v) => Lit::I32(v.wrapping_neg()),
                    Lit::I64(v) => Lit::I64(v.wrapping_neg()),
                    Lit::F32(v) => Lit::F32(-v),
                    Lit::F64(v) => Lit::F64(-v),
                };
                return Ok(Expr::new(ExprKind::Lit(folded), line));
            }
            return Ok(Expr::new(ExprKind::Un(UnOp::Neg, Box::new(e)), line));
        }
        if self.eat_punct("!") {
            let e = self.parse_unary()?;
            return Ok(Expr::new(ExprKind::Un(UnOp::Not, Box::new(e)), line));
        }
        if self.eat_punct("~") {
            let e = self.parse_unary()?;
            return Ok(Expr::new(ExprKind::Un(UnOp::BitNot, Box::new(e)), line));
        }
        self.parse_postfix()
    }

    fn parse_postfix(&mut self) -> Result<Expr, CompileError> {
        let mut e = self.parse_primary()?;
        while self.eat_keyword("as") {
            let line = self.line();
            let ty = self.parse_ty()?;
            e = Expr::new(ExprKind::Cast(Box::new(e), ty), line);
        }
        Ok(e)
    }

    fn parse_primary(&mut self) -> Result<Expr, CompileError> {
        let line = self.line();
        match self.next() {
            Tok::Int(v, true) => Ok(Expr::new(ExprKind::Lit(Lit::I64(v)), line)),
            Tok::Int(v, false) => {
                if v > u32::MAX as i64 || v < i32::MIN as i64 {
                    Ok(Expr::new(ExprKind::Lit(Lit::I64(v)), line))
                } else {
                    Ok(Expr::new(ExprKind::Lit(Lit::I32(v as u32 as i32)), line))
                }
            }
            Tok::Float(v, true) => Ok(Expr::new(ExprKind::Lit(Lit::F32(v as f32)), line)),
            Tok::Float(v, false) => Ok(Expr::new(ExprKind::Lit(Lit::F64(v)), line)),
            Tok::Str(s) => {
                let addr = self.string_cursor;
                let bytes = s.into_bytes();
                self.string_cursor += bytes.len() as u32 + 1; // NUL-terminated
                self.program.data.push((addr, bytes));
                Ok(Expr::new(ExprKind::Str(addr), line))
            }
            Tok::Punct("(") => {
                let e = self.parse_expr()?;
                self.expect_punct(")")?;
                Ok(e)
            }
            Tok::Ident(name) => {
                if let Some(lit) = self.consts.get(&name) {
                    return Ok(Expr::new(ExprKind::Lit(*lit), line));
                }
                if self.eat_punct("(") {
                    let mut args = Vec::new();
                    if !self.eat_punct(")") {
                        loop {
                            args.push(self.parse_expr()?);
                            if self.eat_punct(")") {
                                break;
                            }
                            self.expect_punct(",")?;
                        }
                    }
                    Ok(Expr::new(ExprKind::Call(name, args), line))
                } else {
                    Ok(Expr::new(ExprKind::Name(name), line))
                }
            }
            other => Err(CompileError::new(
                line,
                format!("expected expression, found {other}"),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_function_with_params() {
        let p = parse("fn add(a: i32, b: i32) -> i32 { return a + b; }").unwrap();
        assert_eq!(p.funcs.len(), 1);
        let f = &p.funcs[0];
        assert_eq!(f.name, "add");
        assert_eq!(f.params.len(), 2);
        assert_eq!(f.ret, Some(Ty::I32));
        assert!(!f.exported);
    }

    #[test]
    fn parses_module_items() {
        let p = parse(
            "memory 4;\nglobal g: i64 = -5;\nconst N = 3 * 4;\nexport fn main() -> i32 { return N; }",
        )
        .unwrap();
        assert_eq!(p.memory_pages, 4);
        assert_eq!(p.globals[0].init, Lit::I64(-5));
        assert!(p.funcs[0].exported);
        // const substituted as literal
        match &p.funcs[0].body[0] {
            Stmt::Return(Some(e), _) => assert_eq!(e.kind, ExprKind::Lit(Lit::I32(12))),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn precedence_is_c_like() {
        let p = parse("fn f() -> i32 { return 1 + 2 * 3; }").unwrap();
        match &p.funcs[0].body[0] {
            Stmt::Return(Some(e), _) => match &e.kind {
                ExprKind::Bin(BinOp::Add, _, rhs) => {
                    assert!(matches!(rhs.kind, ExprKind::Bin(BinOp::Mul, _, _)));
                }
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_control_flow() {
        let src = r#"
            fn f(n: i32) -> i32 {
                let s: i32 = 0;
                for (let i: i32 = 0; i < n; i += 1) {
                    if (i % 2 == 0) { s += i; } else { continue; }
                    while (s > 100) { break; }
                }
                return s;
            }
        "#;
        let p = parse(src).unwrap();
        assert!(matches!(p.funcs[0].body[1], Stmt::For { .. }));
    }

    #[test]
    fn string_literals_become_data() {
        let p = parse(r#"fn f() -> i32 { return "hi"; }"#).unwrap();
        assert_eq!(p.data.len(), 1);
        assert_eq!(p.data[0].0, STRING_BASE);
        assert_eq!(p.data[0].1, b"hi");
    }

    #[test]
    fn negative_int_min_literal() {
        let p = parse("fn f() -> i32 { return -2147483648; }").unwrap();
        match &p.funcs[0].body[0] {
            Stmt::Return(Some(e), _) => assert_eq!(e.kind, ExprKind::Lit(Lit::I32(i32::MIN))),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn cast_syntax() {
        let p = parse("fn f(x: i32) -> f64 { return x as f64 * 2.0; }").unwrap();
        match &p.funcs[0].body[0] {
            Stmt::Return(Some(e), _) => {
                assert!(matches!(e.kind, ExprKind::Bin(BinOp::Mul, _, _)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn rejects_syntax_errors() {
        assert!(parse("fn f( { }").is_err());
        assert!(parse("fn f() -> waffles { }").is_err());
        assert!(parse("global g: i32 = ;").is_err());
    }
}
