//! The WaCC prelude: friendly I/O helpers written in WaCC itself, lowered
//! onto raw WASI imports — the same layering WASI Libc provides over WASI
//! for C programs.
//!
//! The prelude owns the scratch region `0..64` of linear memory:
//!
//! | range | use |
//! |---|---|
//! | 0..8   | output iovec (ptr, len) |
//! | 8..16  | input iovec (ptr, len) |
//! | 16..20 | single-char output buffer |
//! | 20..32 | decimal conversion buffer |
//! | 33..34 | single-char input buffer |
//! | 48..56 | clock scratch |
//! | 56..60 | nread |
//! | 60..64 | nwritten |

/// WaCC source automatically appended to every program.
pub const PRELUDE: &str = r#"
// ---- WaCC prelude (auto-included) ----

fn print_char(c: i32) {
    store_u8(16, c);
    store_i32(0, 16);
    store_i32(4, 1);
    wasi_fd_write(1, 0, 1, 60);
}

fn print_i64(v: i64) {
    if (v == 0L) { print_char(48); return; }
    let n: i64 = v;
    if (n < 0L) {
        print_char(45);
        n = -n;
    }
    let end: i32 = 32;
    let p: i32 = end;
    while (n > 0L) {
        p = p - 1;
        store_u8(p, 48 + (remu(n, 10L)) as i32);
        n = divu(n, 10L);
    }
    store_i32(0, p);
    store_i32(4, end - p);
    wasi_fd_write(1, 0, 1, 60);
}

fn print_i32(v: i32) {
    print_i64(v as i64);
}

fn print_f64(x: f64) {
    let v: f64 = x;
    if (v < 0.0) {
        print_char(45);
        v = -v;
    }
    let ip: i64 = v as i64;
    let frac: f64 = v - ip as f64;
    let scaled: i64 = (frac * 1000000.0 + 0.5) as i64;
    if (scaled >= 1000000L) {
        ip = ip + 1L;
        scaled = scaled - 1000000L;
    }
    print_i64(ip);
    print_char(46);
    // six fractional digits, zero-padded
    let div: i64 = 100000L;
    while (div > 0L) {
        print_char(48 + (divu(scaled, div) % 10L) as i32);
        div = divu(div, 10L);
    }
}

fn print_str(addr: i32, len: i32) {
    store_i32(0, addr);
    store_i32(4, len);
    wasi_fd_write(1, 0, 1, 60);
}

fn strlen_at(addr: i32) -> i32 {
    let p: i32 = addr;
    while (load_u8(p) != 0) { p = p + 1; }
    return p - addr;
}

fn print_cstr(addr: i32) {
    print_str(addr, strlen_at(addr));
}

fn println() {
    print_char(10);
}

fn read_byte() -> i32 {
    store_i32(8, 33);
    store_i32(12, 1);
    let r: i32 = wasi_fd_read(0, 8, 1, 56);
    if (r != 0) { return -1; }
    if (load_i32(56) == 0) { return -1; }
    return load_u8(33);
}

fn exit(code: i32) {
    wasi_proc_exit(code);
}

fn clock_ns() -> i64 {
    return wasi_clock_time_get();
}
"#;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::check;
    use crate::parser::parse;

    #[test]
    fn prelude_parses_and_checks() {
        let mut p = parse(PRELUDE).unwrap();
        check(&mut p).unwrap();
        assert!(p.funcs.iter().any(|f| f.name == "print_i32"));
    }

    #[test]
    fn prelude_print_formats_numbers() {
        use crate::eval::{Evaluator, V};
        let src = format!(
            "fn t() {{ print_i32(-1234); print_char(32); print_i64(98765L); print_char(32); print_f64(3.25); }}{PRELUDE}"
        );
        let mut p = parse(&src).unwrap();
        check(&mut p).unwrap();
        let mut ev = Evaluator::new(&p);
        ev.call("t", &[]).unwrap();
        assert_eq!(String::from_utf8(ev.stdout.clone()).unwrap(), "-1234 98765 3.250000");
        let _ = V::I32(0);
    }

    #[test]
    fn prelude_zero_and_rounding() {
        use crate::eval::Evaluator;
        let src =
            format!("fn t() {{ print_i32(0); print_char(32); print_f64(0.9999995); }}{PRELUDE}");
        let mut p = parse(&src).unwrap();
        check(&mut p).unwrap();
        let mut ev = Evaluator::new(&p);
        ev.call("t", &[]).unwrap();
        assert_eq!(String::from_utf8(ev.stdout.clone()).unwrap(), "0 1.000000");
    }
}
