//! A reference evaluator for checked WaCC programs.
//!
//! Used for differential testing (the evaluator, all five engines, and
//! the native Rust benchmark implementations must agree) and as the
//! "native compiled at -Ox" proxy in the optimization-level experiment.
//! Semantics mirror WebAssembly exactly: wrapping integer arithmetic,
//! traps on division by zero and invalid conversions, little-endian
//! linear memory.

// Trap range checks mirror the wasm spec's explicit comparison form.
#![allow(clippy::manual_range_contains)]

use crate::ast::*;
use std::fmt;

/// A runtime value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum V {
    /// i32
    I32(i32),
    /// i64
    I64(i64),
    /// f32
    F32(f32),
    /// f64
    F64(f64),
}

impl V {
    fn zero(ty: Ty) -> V {
        match ty {
            Ty::I32 => V::I32(0),
            Ty::I64 => V::I64(0),
            Ty::F32 => V::F32(0.0),
            Ty::F64 => V::F64(0.0),
        }
    }

    /// Extracts an i32.
    ///
    /// # Panics
    ///
    /// Panics on type confusion (checker bugs).
    pub fn as_i32(self) -> i32 {
        match self {
            V::I32(v) => v,
            other => panic!("expected i32, got {other:?}"),
        }
    }

    /// Extracts an i64.
    ///
    /// # Panics
    ///
    /// Panics on type confusion.
    pub fn as_i64(self) -> i64 {
        match self {
            V::I64(v) => v,
            other => panic!("expected i64, got {other:?}"),
        }
    }

    /// Extracts an f64.
    ///
    /// # Panics
    ///
    /// Panics on type confusion.
    pub fn as_f64(self) -> f64 {
        match self {
            V::F64(v) => v,
            other => panic!("expected f64, got {other:?}"),
        }
    }
}

/// An evaluation trap (mirrors engine traps).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalTrap {
    /// Out-of-bounds memory access.
    OutOfBounds,
    /// Integer division by zero.
    DivByZero,
    /// Signed overflow in division.
    Overflow,
    /// Invalid float→int conversion.
    BadConversion,
    /// `exit(code)` was called.
    Exit(i32),
    /// Unknown function (checker bugs only).
    NoSuchFunc(String),
}

impl fmt::Display for EvalTrap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalTrap::OutOfBounds => write!(f, "out of bounds memory access"),
            EvalTrap::DivByZero => write!(f, "division by zero"),
            EvalTrap::Overflow => write!(f, "integer overflow"),
            EvalTrap::BadConversion => write!(f, "invalid conversion"),
            EvalTrap::Exit(c) => write!(f, "exit({c})"),
            EvalTrap::NoSuchFunc(n) => write!(f, "no function {n}"),
        }
    }
}

impl std::error::Error for EvalTrap {}

enum Flow {
    Normal,
    Break,
    Continue,
    Return(Option<V>),
}

/// The evaluator, holding program state between invocations.
pub struct Evaluator<'p> {
    program: &'p Program,
    /// Linear memory.
    pub memory: Vec<u8>,
    globals: Vec<V>,
    /// Captured stdout bytes.
    pub stdout: Vec<u8>,
    /// Remaining stdin bytes.
    pub stdin: Vec<u8>,
    stdin_pos: usize,
    /// Deterministic clock: advances by a fixed step per read.
    clock: i64,
    /// Deterministic xorshift state for `wasi_random_get`.
    rng: u64,
}

impl fmt::Debug for Evaluator<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Evaluator")
            .field("memory_bytes", &self.memory.len())
            .field("stdout_bytes", &self.stdout.len())
            .finish()
    }
}

impl<'p> Evaluator<'p> {
    /// Creates an evaluator for a checked program.
    pub fn new(program: &'p Program) -> Self {
        let mut memory = vec![0u8; program.memory_pages as usize * 65536];
        for (addr, bytes) in &program.data {
            let a = *addr as usize;
            memory[a..a + bytes.len()].copy_from_slice(bytes);
        }
        Evaluator {
            globals: program
                .globals
                .iter()
                .map(|g| match g.init {
                    Lit::I32(v) => V::I32(v),
                    Lit::I64(v) => V::I64(v),
                    Lit::F32(v) => V::F32(v),
                    Lit::F64(v) => V::F64(v),
                })
                .collect(),
            program,
            memory,
            stdout: Vec::new(),
            stdin: Vec::new(),
            stdin_pos: 0,
            clock: 1_000_000_000,
            rng: 0x2545F4914F6CDD1D,
        }
    }

    /// Provides stdin content for `wasi_fd_read`.
    pub fn set_stdin(&mut self, bytes: Vec<u8>) {
        self.stdin = bytes;
        self.stdin_pos = 0;
    }

    /// Calls a function by name.
    ///
    /// # Errors
    ///
    /// Returns any [`EvalTrap`] raised.
    pub fn call(&mut self, name: &str, args: &[V]) -> Result<Option<V>, EvalTrap> {
        let f = self
            .program
            .funcs
            .iter()
            .find(|f| f.name == name)
            .ok_or_else(|| EvalTrap::NoSuchFunc(name.to_string()))?;
        let mut locals: Vec<V> = f
            .local_types
            .iter()
            .map(|t| V::zero(*t))
            .collect();
        locals[..args.len()].copy_from_slice(args);
        match self.block(&f.body, &mut locals)? {
            Flow::Return(v) => Ok(v.or_else(|| f.ret.map(V::zero))),
            _ => Ok(f.ret.map(V::zero)),
        }
    }

    fn block(&mut self, stmts: &[Stmt], locals: &mut Vec<V>) -> Result<Flow, EvalTrap> {
        for s in stmts {
            match self.stmt(s, locals)? {
                Flow::Normal => {}
                other => return Ok(other),
            }
        }
        Ok(Flow::Normal)
    }

    fn stmt(&mut self, s: &Stmt, locals: &mut Vec<V>) -> Result<Flow, EvalTrap> {
        match s {
            Stmt::Let { init, slot, .. } => {
                let v = self.expr(init, locals)?;
                if *slot as usize >= locals.len() {
                    locals.resize(*slot as usize + 1, V::I32(0));
                }
                locals[*slot as usize] = v;
            }
            Stmt::Assign { value, target, .. } => {
                let v = self.expr(value, locals)?;
                match target {
                    AssignTarget::Local(slot) => locals[*slot as usize] = v,
                    AssignTarget::Global(idx) => self.globals[*idx as usize] = v,
                    AssignTarget::Unresolved => unreachable!("checked"),
                }
            }
            Stmt::Expr(e) => {
                self.expr(e, locals)?;
            }
            Stmt::If { cond, then, els } => {
                let c = self.expr(cond, locals)?.as_i32();
                let arm = if c != 0 { then } else { els };
                return self.block(arm, locals);
            }
            Stmt::While { cond, body } => loop {
                if self.expr(cond, locals)?.as_i32() == 0 {
                    break;
                }
                match self.block(body, locals)? {
                    Flow::Normal | Flow::Continue => {}
                    Flow::Break => break,
                    r @ Flow::Return(_) => return Ok(r),
                }
            },
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                match self.stmt(init, locals)? {
                    Flow::Normal => {}
                    other => return Ok(other),
                }
                loop {
                    if self.expr(cond, locals)?.as_i32() == 0 {
                        break;
                    }
                    match self.block(body, locals)? {
                        Flow::Normal | Flow::Continue => {}
                        Flow::Break => break,
                        r @ Flow::Return(_) => return Ok(r),
                    }
                    match self.stmt(step, locals)? {
                        Flow::Normal => {}
                        other => return Ok(other),
                    }
                }
            }
            Stmt::Break(_) => return Ok(Flow::Break),
            Stmt::Continue(_) => return Ok(Flow::Continue),
            Stmt::Return(e, _) => {
                let v = match e {
                    Some(e) => Some(self.expr(e, locals)?),
                    None => None,
                };
                return Ok(Flow::Return(v));
            }
            Stmt::Block(b) => return self.block(b, locals),
        }
        Ok(Flow::Normal)
    }

    fn expr(&mut self, e: &Expr, locals: &mut Vec<V>) -> Result<V, EvalTrap> {
        Ok(match &e.kind {
            ExprKind::Lit(l) => match *l {
                Lit::I32(v) => V::I32(v),
                Lit::I64(v) => V::I64(v),
                Lit::F32(v) => V::F32(v),
                Lit::F64(v) => V::F64(v),
            },
            ExprKind::Str(addr) => V::I32(*addr as i32),
            ExprKind::Local(slot) => locals[*slot as usize],
            ExprKind::Global(idx) => self.globals[*idx as usize],
            ExprKind::Name(n) => unreachable!("unresolved name {n}"),
            ExprKind::Bin(op, a, b) => {
                if op.is_logical() {
                    let av = self.expr(a, locals)?.as_i32();
                    return Ok(match op {
                        BinOp::AndAnd => {
                            if av == 0 {
                                V::I32(0)
                            } else {
                                V::I32((self.expr(b, locals)?.as_i32() != 0) as i32)
                            }
                        }
                        BinOp::OrOr => {
                            if av != 0 {
                                V::I32(1)
                            } else {
                                V::I32((self.expr(b, locals)?.as_i32() != 0) as i32)
                            }
                        }
                        _ => unreachable!(),
                    });
                }
                let av = self.expr(a, locals)?;
                let bv = self.expr(b, locals)?;
                eval_bin(*op, av, bv)?
            }
            ExprKind::Un(op, a) => {
                let v = self.expr(a, locals)?;
                match (op, v) {
                    (UnOp::Neg, V::I32(x)) => V::I32(x.wrapping_neg()),
                    (UnOp::Neg, V::I64(x)) => V::I64(x.wrapping_neg()),
                    (UnOp::Neg, V::F32(x)) => V::F32(-x),
                    (UnOp::Neg, V::F64(x)) => V::F64(-x),
                    (UnOp::Not, V::I32(x)) => V::I32((x == 0) as i32),
                    (UnOp::Not, V::I64(x)) => V::I32((x == 0) as i32),
                    (UnOp::BitNot, V::I32(x)) => V::I32(!x),
                    (UnOp::BitNot, V::I64(x)) => V::I64(!x),
                    other => unreachable!("{other:?}"),
                }
            }
            ExprKind::Cast(a, to) => {
                let v = self.expr(a, locals)?;
                cast(v, *to)?
            }
            ExprKind::Call(name, args) => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(self.expr(a, locals)?);
                }
                let r = self.call(name, &vals)?;
                r.unwrap_or(V::I32(0))
            }
            ExprKind::Builtin(b, args) => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(self.expr(a, locals)?);
                }
                self.builtin(*b, &vals)?
            }
        })
    }

    fn mem_range(&self, addr: i32, len: usize) -> Result<usize, EvalTrap> {
        let a = addr as u32 as usize;
        if a + len > self.memory.len() {
            return Err(EvalTrap::OutOfBounds);
        }
        Ok(a)
    }

    fn builtin(&mut self, b: Builtin, args: &[V]) -> Result<V, EvalTrap> {
        use Builtin::*;
        Ok(match b {
            LoadI32 => {
                let a = self.mem_range(args[0].as_i32(), 4)?;
                V::I32(i32::from_le_bytes(self.memory[a..a + 4].try_into().expect("len")))
            }
            LoadI64 => {
                let a = self.mem_range(args[0].as_i32(), 8)?;
                V::I64(i64::from_le_bytes(self.memory[a..a + 8].try_into().expect("len")))
            }
            LoadF32 => {
                let a = self.mem_range(args[0].as_i32(), 4)?;
                V::F32(f32::from_le_bytes(self.memory[a..a + 4].try_into().expect("len")))
            }
            LoadF64 => {
                let a = self.mem_range(args[0].as_i32(), 8)?;
                V::F64(f64::from_le_bytes(self.memory[a..a + 8].try_into().expect("len")))
            }
            LoadU8 => {
                let a = self.mem_range(args[0].as_i32(), 1)?;
                V::I32(self.memory[a] as i32)
            }
            LoadI8 => {
                let a = self.mem_range(args[0].as_i32(), 1)?;
                V::I32(self.memory[a] as i8 as i32)
            }
            LoadU16 => {
                let a = self.mem_range(args[0].as_i32(), 2)?;
                V::I32(u16::from_le_bytes(self.memory[a..a + 2].try_into().expect("len")) as i32)
            }
            LoadI16 => {
                let a = self.mem_range(args[0].as_i32(), 2)?;
                V::I32(i16::from_le_bytes(self.memory[a..a + 2].try_into().expect("len")) as i32)
            }
            StoreI32 => {
                let a = self.mem_range(args[0].as_i32(), 4)?;
                self.memory[a..a + 4].copy_from_slice(&args[1].as_i32().to_le_bytes());
                V::I32(0)
            }
            StoreI64 => {
                let a = self.mem_range(args[0].as_i32(), 8)?;
                self.memory[a..a + 8].copy_from_slice(&args[1].as_i64().to_le_bytes());
                V::I32(0)
            }
            StoreF32 => {
                let a = self.mem_range(args[0].as_i32(), 4)?;
                let v = match args[1] {
                    V::F32(v) => v,
                    other => panic!("expected f32, got {other:?}"),
                };
                self.memory[a..a + 4].copy_from_slice(&v.to_le_bytes());
                V::I32(0)
            }
            StoreF64 => {
                let a = self.mem_range(args[0].as_i32(), 8)?;
                self.memory[a..a + 8].copy_from_slice(&args[1].as_f64().to_le_bytes());
                V::I32(0)
            }
            StoreU8 => {
                let a = self.mem_range(args[0].as_i32(), 1)?;
                self.memory[a] = args[1].as_i32() as u8;
                V::I32(0)
            }
            StoreU16 => {
                let a = self.mem_range(args[0].as_i32(), 2)?;
                self.memory[a..a + 2].copy_from_slice(&(args[1].as_i32() as u16).to_le_bytes());
                V::I32(0)
            }
            MemorySize => V::I32((self.memory.len() / 65536) as i32),
            MemoryGrow => {
                let delta = args[0].as_i32() as usize;
                let old = self.memory.len() / 65536;
                self.memory.resize((old + delta) * 65536, 0);
                V::I32(old as i32)
            }
            DivU => match (args[0], args[1]) {
                (V::I32(a), V::I32(b)) => {
                    if b == 0 {
                        return Err(EvalTrap::DivByZero);
                    }
                    V::I32(((a as u32) / (b as u32)) as i32)
                }
                (V::I64(a), V::I64(b)) => {
                    if b == 0 {
                        return Err(EvalTrap::DivByZero);
                    }
                    V::I64(((a as u64) / (b as u64)) as i64)
                }
                other => unreachable!("{other:?}"),
            },
            RemU => match (args[0], args[1]) {
                (V::I32(a), V::I32(b)) => {
                    if b == 0 {
                        return Err(EvalTrap::DivByZero);
                    }
                    V::I32(((a as u32) % (b as u32)) as i32)
                }
                (V::I64(a), V::I64(b)) => {
                    if b == 0 {
                        return Err(EvalTrap::DivByZero);
                    }
                    V::I64(((a as u64) % (b as u64)) as i64)
                }
                other => unreachable!("{other:?}"),
            },
            LtU => cmp_u(args, |a, b| a < b),
            GtU => cmp_u(args, |a, b| a > b),
            LeU => cmp_u(args, |a, b| a <= b),
            GeU => cmp_u(args, |a, b| a >= b),
            Clz => match args[0] {
                V::I32(v) => V::I32(v.leading_zeros() as i32),
                V::I64(v) => V::I64(v.leading_zeros() as i64),
                other => unreachable!("{other:?}"),
            },
            Ctz => match args[0] {
                V::I32(v) => V::I32(v.trailing_zeros() as i32),
                V::I64(v) => V::I64(v.trailing_zeros() as i64),
                other => unreachable!("{other:?}"),
            },
            Popcnt => match args[0] {
                V::I32(v) => V::I32(v.count_ones() as i32),
                V::I64(v) => V::I64(v.count_ones() as i64),
                other => unreachable!("{other:?}"),
            },
            Rotl => match (args[0], args[1]) {
                (V::I32(a), V::I32(b)) => V::I32(a.rotate_left(b as u32 & 31)),
                (V::I64(a), V::I64(b)) => V::I64(a.rotate_left(b as u32 & 63)),
                other => unreachable!("{other:?}"),
            },
            Rotr => match (args[0], args[1]) {
                (V::I32(a), V::I32(b)) => V::I32(a.rotate_right(b as u32 & 31)),
                (V::I64(a), V::I64(b)) => V::I64(a.rotate_right(b as u32 & 63)),
                other => unreachable!("{other:?}"),
            },
            Sqrt => float1(args[0], f32::sqrt, f64::sqrt),
            Abs => match args[0] {
                V::I32(v) => V::I32(v.wrapping_abs()),
                V::I64(v) => V::I64(v.wrapping_abs()),
                V::F32(v) => V::F32(v.abs()),
                V::F64(v) => V::F64(v.abs()),
            },
            Floor => float1(args[0], f32::floor, f64::floor),
            Ceil => float1(args[0], f32::ceil, f64::ceil),
            TruncF => float1(args[0], f32::trunc, f64::trunc),
            Nearest => float1(
                args[0],
                |x| {
                    let r = x.round();
                    if (x - x.trunc()).abs() == 0.5 {
                        2.0 * (x / 2.0).round()
                    } else {
                        r
                    }
                },
                |x| {
                    let r = x.round();
                    if (x - x.trunc()).abs() == 0.5 {
                        2.0 * (x / 2.0).round()
                    } else {
                        r
                    }
                },
            ),
            FMin => float2(args, |a, b| if a.is_nan() || b.is_nan() { f32::NAN } else { a.min(b) }, |a, b| if a.is_nan() || b.is_nan() { f64::NAN } else { a.min(b) }),
            FMax => float2(args, |a, b| if a.is_nan() || b.is_nan() { f32::NAN } else { a.max(b) }, |a, b| if a.is_nan() || b.is_nan() { f64::NAN } else { a.max(b) }),
            Copysign => float2(args, f32::copysign, f64::copysign),
            WasiFdWrite => {
                let (fd, iovs, iovs_len, nwritten_ptr) = (
                    args[0].as_i32(),
                    args[1].as_i32(),
                    args[2].as_i32(),
                    args[3].as_i32(),
                );
                let mut written = 0usize;
                for k in 0..iovs_len {
                    let base = self.mem_range(iovs + k * 8, 8)?;
                    let ptr = i32::from_le_bytes(self.memory[base..base + 4].try_into().expect("len"));
                    let len = i32::from_le_bytes(self.memory[base + 4..base + 8].try_into().expect("len"));
                    let d = self.mem_range(ptr, len as usize)?;
                    if fd == 1 || fd == 2 {
                        let chunk = self.memory[d..d + len as usize].to_vec();
                        self.stdout.extend_from_slice(&chunk);
                    }
                    written += len as usize;
                }
                let np = self.mem_range(nwritten_ptr, 4)?;
                self.memory[np..np + 4].copy_from_slice(&(written as i32).to_le_bytes());
                V::I32(0)
            }
            WasiFdRead => {
                let (_fd, iovs, iovs_len, nread_ptr) = (
                    args[0].as_i32(),
                    args[1].as_i32(),
                    args[2].as_i32(),
                    args[3].as_i32(),
                );
                let mut read = 0usize;
                for k in 0..iovs_len {
                    let base = self.mem_range(iovs + k * 8, 8)?;
                    let ptr = i32::from_le_bytes(self.memory[base..base + 4].try_into().expect("len"));
                    let len = i32::from_le_bytes(self.memory[base + 4..base + 8].try_into().expect("len"))
                        as usize;
                    let avail = self.stdin.len() - self.stdin_pos;
                    let n = len.min(avail);
                    let d = self.mem_range(ptr, n)?;
                    let src = self.stdin[self.stdin_pos..self.stdin_pos + n].to_vec();
                    self.memory[d..d + n].copy_from_slice(&src);
                    self.stdin_pos += n;
                    read += n;
                    if n < len {
                        break;
                    }
                }
                let np = self.mem_range(nread_ptr, 4)?;
                self.memory[np..np + 4].copy_from_slice(&(read as i32).to_le_bytes());
                V::I32(0)
            }
            WasiProcExit => return Err(EvalTrap::Exit(args[0].as_i32())),
            WasiClockTimeGet => {
                self.clock += 1000;
                V::I64(self.clock)
            }
            WasiRandomGet => {
                let (ptr, len) = (args[0].as_i32(), args[1].as_i32() as usize);
                let base = self.mem_range(ptr, len)?;
                for k in 0..len {
                    self.rng ^= self.rng << 13;
                    self.rng ^= self.rng >> 7;
                    self.rng ^= self.rng << 17;
                    self.memory[base + k] = self.rng as u8;
                }
                V::I32(0)
            }
        })
    }
}

fn cmp_u(args: &[V], f: impl Fn(u64, u64) -> bool) -> V {
    match (args[0], args[1]) {
        (V::I32(a), V::I32(b)) => V::I32(f(a as u32 as u64, b as u32 as u64) as i32),
        (V::I64(a), V::I64(b)) => V::I32(f(a as u64, b as u64) as i32),
        other => unreachable!("{other:?}"),
    }
}

fn float1(v: V, f32f: impl Fn(f32) -> f32, f64f: impl Fn(f64) -> f64) -> V {
    match v {
        V::F32(v) => V::F32(f32f(v)),
        V::F64(v) => V::F64(f64f(v)),
        other => unreachable!("{other:?}"),
    }
}

fn float2(args: &[V], f32f: impl Fn(f32, f32) -> f32, f64f: impl Fn(f64, f64) -> f64) -> V {
    match (args[0], args[1]) {
        (V::F32(a), V::F32(b)) => V::F32(f32f(a, b)),
        (V::F64(a), V::F64(b)) => V::F64(f64f(a, b)),
        other => unreachable!("{other:?}"),
    }
}

fn cast(v: V, to: Ty) -> Result<V, EvalTrap> {
    Ok(match (v, to) {
        (V::I32(x), Ty::I32) => V::I32(x),
        (V::I32(x), Ty::I64) => V::I64(x as i64),
        (V::I32(x), Ty::F32) => V::F32(x as f32),
        (V::I32(x), Ty::F64) => V::F64(x as f64),
        (V::I64(x), Ty::I32) => V::I32(x as i32),
        (V::I64(x), Ty::I64) => V::I64(x),
        (V::I64(x), Ty::F32) => V::F32(x as f32),
        (V::I64(x), Ty::F64) => V::F64(x as f64),
        (V::F32(x), Ty::F32) => V::F32(x),
        (V::F32(x), Ty::F64) => V::F64(x as f64),
        (V::F32(x), Ty::I32) => {
            if x.is_nan() || x >= 2147483648.0 || x < -2147483648.0 {
                return Err(EvalTrap::BadConversion);
            }
            V::I32(x.trunc() as i32)
        }
        (V::F32(x), Ty::I64) => {
            if x.is_nan() || x >= 9223372036854775808.0 || x < -9223372036854775808.0 {
                return Err(EvalTrap::BadConversion);
            }
            V::I64(x.trunc() as i64)
        }
        (V::F64(x), Ty::F64) => V::F64(x),
        (V::F64(x), Ty::F32) => V::F32(x as f32),
        (V::F64(x), Ty::I32) => {
            if x.is_nan() || x >= 2147483648.0 || x < -2147483649.0 {
                return Err(EvalTrap::BadConversion);
            }
            V::I32(x.trunc() as i32)
        }
        (V::F64(x), Ty::I64) => {
            if x.is_nan() || x >= 9223372036854775808.0 || x < -9223372036854775808.0 {
                return Err(EvalTrap::BadConversion);
            }
            V::I64(x.trunc() as i64)
        }
    })
}

fn eval_bin(op: BinOp, a: V, b: V) -> Result<V, EvalTrap> {
    use BinOp::*;
    Ok(match (a, b) {
        (V::I32(x), V::I32(y)) => match op {
            Add => V::I32(x.wrapping_add(y)),
            Sub => V::I32(x.wrapping_sub(y)),
            Mul => V::I32(x.wrapping_mul(y)),
            Div => {
                if y == 0 {
                    return Err(EvalTrap::DivByZero);
                }
                if x == i32::MIN && y == -1 {
                    return Err(EvalTrap::Overflow);
                }
                V::I32(x.wrapping_div(y))
            }
            Rem => {
                if y == 0 {
                    return Err(EvalTrap::DivByZero);
                }
                V::I32(x.wrapping_rem(y))
            }
            And => V::I32(x & y),
            Or => V::I32(x | y),
            Xor => V::I32(x ^ y),
            Shl => V::I32(x.wrapping_shl(y as u32)),
            Shr => V::I32(x.wrapping_shr(y as u32)),
            ShrU => V::I32(((x as u32).wrapping_shr(y as u32)) as i32),
            Lt => V::I32((x < y) as i32),
            Le => V::I32((x <= y) as i32),
            Gt => V::I32((x > y) as i32),
            Ge => V::I32((x >= y) as i32),
            Eq => V::I32((x == y) as i32),
            Ne => V::I32((x != y) as i32),
            AndAnd | OrOr => unreachable!("short-circuit handled by caller"),
        },
        (V::I64(x), V::I64(y)) => match op {
            Add => V::I64(x.wrapping_add(y)),
            Sub => V::I64(x.wrapping_sub(y)),
            Mul => V::I64(x.wrapping_mul(y)),
            Div => {
                if y == 0 {
                    return Err(EvalTrap::DivByZero);
                }
                if x == i64::MIN && y == -1 {
                    return Err(EvalTrap::Overflow);
                }
                V::I64(x.wrapping_div(y))
            }
            Rem => {
                if y == 0 {
                    return Err(EvalTrap::DivByZero);
                }
                V::I64(x.wrapping_rem(y))
            }
            And => V::I64(x & y),
            Or => V::I64(x | y),
            Xor => V::I64(x ^ y),
            Shl => V::I64(x.wrapping_shl(y as u32)),
            Shr => V::I64(x.wrapping_shr(y as u32)),
            ShrU => V::I64(((x as u64).wrapping_shr(y as u32)) as i64),
            Lt => V::I32((x < y) as i32),
            Le => V::I32((x <= y) as i32),
            Gt => V::I32((x > y) as i32),
            Ge => V::I32((x >= y) as i32),
            Eq => V::I32((x == y) as i32),
            Ne => V::I32((x != y) as i32),
            AndAnd | OrOr => unreachable!(),
        },
        (V::F32(x), V::F32(y)) => match op {
            Add => V::F32(x + y),
            Sub => V::F32(x - y),
            Mul => V::F32(x * y),
            Div => V::F32(x / y),
            Lt => V::I32((x < y) as i32),
            Le => V::I32((x <= y) as i32),
            Gt => V::I32((x > y) as i32),
            Ge => V::I32((x >= y) as i32),
            Eq => V::I32((x == y) as i32),
            Ne => V::I32((x != y) as i32),
            other => unreachable!("{other:?} on f32"),
        },
        (V::F64(x), V::F64(y)) => match op {
            Add => V::F64(x + y),
            Sub => V::F64(x - y),
            Mul => V::F64(x * y),
            Div => V::F64(x / y),
            Lt => V::I32((x < y) as i32),
            Le => V::I32((x <= y) as i32),
            Gt => V::I32((x > y) as i32),
            Ge => V::I32((x >= y) as i32),
            Eq => V::I32((x == y) as i32),
            Ne => V::I32((x != y) as i32),
            other => unreachable!("{other:?} on f64"),
        },
        other => unreachable!("mixed-type binop {other:?}"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::check;
    use crate::parser::parse;

    fn run(src: &str, func: &str, args: &[V]) -> Result<Option<V>, EvalTrap> {
        let mut p = parse(src).unwrap();
        check(&mut p).unwrap();
        let program = Box::leak(Box::new(p));
        let mut ev = Evaluator::new(program);
        ev.call(func, args)
    }

    #[test]
    fn arithmetic_and_control() {
        let src = "fn fib(n: i32) -> i32 {
            if (n < 2) { return n; }
            return fib(n - 1) + fib(n - 2);
        }";
        assert_eq!(run(src, "fib", &[V::I32(10)]).unwrap(), Some(V::I32(55)));
    }

    #[test]
    fn memory_and_loops() {
        let src = "fn f(n: i32) -> i32 {
            for (let i: i32 = 0; i < n; i += 1) { store_i32(1024 + i * 4, i * i); }
            let s: i32 = 0;
            for (let i: i32 = 0; i < n; i += 1) { s += load_i32(1024 + i * 4); }
            return s;
        }";
        assert_eq!(run(src, "f", &[V::I32(5)]).unwrap(), Some(V::I32(30)));
    }

    #[test]
    fn traps() {
        assert_eq!(
            run("fn f() -> i32 { return 1 / 0; }", "f", &[]),
            Err(EvalTrap::DivByZero)
        );
        assert_eq!(
            run("fn f() -> i32 { return load_i32(-4); }", "f", &[]),
            Err(EvalTrap::OutOfBounds)
        );
        assert_eq!(
            run("fn f() -> i32 { return (1e30) as i32; }", "f", &[]),
            Err(EvalTrap::BadConversion)
        );
    }

    #[test]
    fn wasi_write_captures_stdout() {
        let src = r#"fn f() -> i32 {
            store_u8(100, 72); store_u8(101, 105);
            store_i32(0, 100); store_i32(4, 2);
            return wasi_fd_write(1, 0, 1, 60);
        }"#;
        let mut p = parse(src).unwrap();
        check(&mut p).unwrap();
        let mut ev = Evaluator::new(&p);
        ev.call("f", &[]).unwrap();
        assert_eq!(ev.stdout, b"Hi");
        assert_eq!(&ev.memory[60..64], &2i32.to_le_bytes());
    }

    #[test]
    fn wasi_read_consumes_stdin() {
        let src = r#"fn f() -> i32 {
            store_i32(8, 200); store_i32(12, 3);
            wasi_fd_read(0, 8, 1, 56);
            return load_u8(200) + load_u8(201) + load_u8(202);
        }"#;
        let mut p = parse(src).unwrap();
        check(&mut p).unwrap();
        let mut ev = Evaluator::new(&p);
        ev.set_stdin(vec![1, 2, 3, 4]);
        assert_eq!(ev.call("f", &[]).unwrap(), Some(V::I32(6)));
    }

    #[test]
    fn wrapping_matches_wasm() {
        assert_eq!(
            run("fn f() -> i32 { return 2147483647 + 1; }", "f", &[]).unwrap(),
            Some(V::I32(i32::MIN))
        );
        assert_eq!(
            run("fn f(a: i32) -> i32 { return a >>> 1; }", "f", &[V::I32(-2)]).unwrap(),
            Some(V::I32(0x7FFFFFFF))
        );
    }
}
