//! AST-level optimization: the compiler's `-O0`..`-O3` levels.
//!
//! | level | passes |
//! |---|---|
//! | `O0` | none |
//! | `O1` | constant folding, algebraic simplification, dead-branch elimination |
//! | `O2` | `O1` + single-expression function inlining + loop-invariant hoisting |
//! | `O3` | `O2` + full unrolling of small constant-trip `for` loops |
//!
//! These drive the paper's Figure 4 experiment: the same source compiled
//! at different levels produces measurably different Wasm.

use std::collections::{HashMap, HashSet};

use crate::ast::*;
use crate::check::FuncSig;

/// An optimization level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum OptLevel {
    /// No optimization.
    O0,
    /// Folding and simplification.
    O1,
    /// Plus inlining and loop-invariant code motion.
    O2,
    /// Plus loop unrolling.
    O3,
}

impl OptLevel {
    /// All levels in ascending order.
    pub fn all() -> [OptLevel; 4] {
        [OptLevel::O0, OptLevel::O1, OptLevel::O2, OptLevel::O3]
    }
}

impl std::fmt::Display for OptLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            OptLevel::O0 => "-O0",
            OptLevel::O1 => "-O1",
            OptLevel::O2 => "-O2",
            OptLevel::O3 => "-O3",
        };
        f.write_str(s)
    }
}

/// Optimizes a checked program in place.
pub fn optimize(program: &mut Program, sigs: &HashMap<String, FuncSig>, level: OptLevel) {
    if level == OptLevel::O0 {
        return;
    }
    let _span = obs::span!("wacc.opt", level = level);
    // O1: folding + simplification + dead branches (iterated).
    {
        let _s = obs::span!("wacc.pass", name = "fold");
        for _ in 0..2 {
            for f in &mut program.funcs {
                fold_block(&mut f.body);
            }
        }
    }
    if level >= OptLevel::O2 {
        {
            let _s = obs::span!("wacc.pass", name = "inline");
            inline_small_functions(program, sigs);
        }
        {
            let _s = obs::span!("wacc.pass", name = "hoist");
            let mut func_locals: Vec<(u32, Vec<Ty>)> = Vec::new();
            for f in &mut program.funcs {
                let mut locals = f.local_types.clone();
                hoist_block(&mut f.body, &mut locals);
                func_locals.push((locals.len() as u32, locals));
            }
            for (f, (n, l)) in program.funcs.iter_mut().zip(func_locals) {
                f.nlocals = n;
                f.local_types = l;
            }
        }
        let _s = obs::span!("wacc.pass", name = "fold");
        for f in &mut program.funcs {
            fold_block(&mut f.body);
        }
    }
    if level >= OptLevel::O3 {
        let _s = obs::span!("wacc.pass", name = "unroll");
        for f in &mut program.funcs {
            unroll_block(&mut f.body);
            fold_block(&mut f.body);
        }
    }
}


/// Test-only: run just the inlining pass (after O1 folding).
pub fn debug_inline(program: &mut Program, sigs: &HashMap<String, FuncSig>) {
    inline_small_functions(program, sigs);
}

/// Test-only: run just the loop-invariant hoisting pass.
pub fn debug_hoist(program: &mut Program) {
    let mut func_locals: Vec<(u32, Vec<Ty>)> = Vec::new();
    for f in &mut program.funcs {
        let mut locals = f.local_types.clone();
        hoist_block(&mut f.body, &mut locals);
        func_locals.push((locals.len() as u32, locals));
    }
    for (f, (n, l)) in program.funcs.iter_mut().zip(func_locals) {
        f.nlocals = n;
        f.local_types = l;
    }
}

// ---------------------------------------------------------------- folding

fn fold_block(stmts: &mut Vec<Stmt>) {
    for s in stmts.iter_mut() {
        fold_stmt(s);
    }
    // Dead-branch elimination may leave empty nested blocks; flatten them.
    stmts.retain(|s| !matches!(s, Stmt::Block(b) if b.is_empty()));
}

fn fold_stmt(s: &mut Stmt) {
    match s {
        Stmt::Let { init, .. } => fold_expr(init),
        Stmt::Assign { value, .. } => fold_expr(value),
        Stmt::Expr(e) => fold_expr(e),
        Stmt::If { cond, then, els } => {
            fold_expr(cond);
            fold_block(then);
            fold_block(els);
            if let ExprKind::Lit(Lit::I32(c)) = cond.kind {
                let live_arm = if c != 0 {
                    std::mem::take(then)
                } else {
                    std::mem::take(els)
                };
                *s = Stmt::Block(live_arm);
            }
        }
        Stmt::While { cond, body } => {
            fold_expr(cond);
            fold_block(body);
            if let ExprKind::Lit(Lit::I32(0)) = cond.kind {
                *s = Stmt::Block(Vec::new());
            }
        }
        Stmt::For {
            init,
            cond,
            step,
            body,
        } => {
            fold_stmt(init);
            fold_expr(cond);
            fold_stmt(step);
            fold_block(body);
        }
        Stmt::Return(Some(e), _) => fold_expr(e),
        Stmt::Block(b) => fold_block(b),
        _ => {}
    }
}

fn lit_i64(e: &Expr) -> Option<i64> {
    match e.kind {
        ExprKind::Lit(Lit::I32(v)) => Some(v as i64),
        ExprKind::Lit(Lit::I64(v)) => Some(v),
        _ => None,
    }
}

/// Whether evaluating the expression twice (or zero times) is observable.
fn is_pure(e: &Expr) -> bool {
    match &e.kind {
        ExprKind::Lit(_) | ExprKind::Local(_) | ExprKind::Global(_) | ExprKind::Str(_) => true,
        ExprKind::Bin(op, a, b) => {
            // Integer division can trap; treat as impure for deletion.
            !(matches!(op, BinOp::Div | BinOp::Rem) && a.ty.is_int())
                && is_pure(a)
                && is_pure(b)
        }
        ExprKind::Un(_, a) => is_pure(a),
        ExprKind::Cast(a, to) => {
            // Float→int casts can trap.
            !(a.ty == Ty::F32 || a.ty == Ty::F64) || !to.is_int() && is_pure(a) || is_pure(a) && !to.is_int()
        }
        ExprKind::Call(..) => false,
        ExprKind::Builtin(b, args) => {
            use Builtin::*;
            matches!(
                b,
                DivU | RemU // trap on zero — not pure for deletion
            )
            .then_some(false)
            .unwrap_or(
                matches!(
                    b,
                    LtU | GtU | LeU | GeU | Clz | Ctz | Popcnt | Rotl | Rotr | Sqrt | Abs
                        | Floor | Ceil | TruncF | Nearest | FMin | FMax | Copysign
                ) && args.iter().all(is_pure),
            )
        }
        ExprKind::Name(_) => false,
    }
}

fn fold_expr(e: &mut Expr) {
    match &mut e.kind {
        ExprKind::Bin(op, a, b) => {
            fold_expr(a);
            fold_expr(b);
            let op = *op;
            if let Some(folded) = fold_bin(op, a, b, e.ty) {
                e.kind = folded;
                return;
            }
            if let Some(simplified) = simplify_bin(op, a, b) {
                *e = simplified;
            }
        }
        ExprKind::Un(op, a) => {
            fold_expr(a);
            if let (UnOp::Neg, ExprKind::Lit(l)) = (*op, &a.kind) {
                let folded = match *l {
                    Lit::I32(v) => Lit::I32(v.wrapping_neg()),
                    Lit::I64(v) => Lit::I64(v.wrapping_neg()),
                    Lit::F32(v) => Lit::F32(-v),
                    Lit::F64(v) => Lit::F64(-v),
                };
                e.kind = ExprKind::Lit(folded);
            } else if let (UnOp::Not, ExprKind::Lit(Lit::I32(v))) = (*op, &a.kind) {
                e.kind = ExprKind::Lit(Lit::I32((*v == 0) as i32));
            }
        }
        ExprKind::Cast(a, to) => {
            fold_expr(a);
            let to = *to;
            if let ExprKind::Lit(l) = &a.kind {
                let folded = match (*l, to) {
                    (Lit::I32(v), Ty::I64) => Some(Lit::I64(v as i64)),
                    (Lit::I32(v), Ty::F32) => Some(Lit::F32(v as f32)),
                    (Lit::I32(v), Ty::F64) => Some(Lit::F64(v as f64)),
                    (Lit::I64(v), Ty::I32) => Some(Lit::I32(v as i32)),
                    (Lit::I64(v), Ty::F64) => Some(Lit::F64(v as f64)),
                    (Lit::F64(v), Ty::F32) => Some(Lit::F32(v as f32)),
                    (Lit::F32(v), Ty::F64) => Some(Lit::F64(v as f64)),
                    (l, t) if l.ty() == t => Some(l),
                    _ => None,
                };
                if let Some(l) = folded {
                    e.kind = ExprKind::Lit(l);
                }
            } else if a.ty == to {
                let inner = std::mem::replace(
                    a.as_mut(),
                    Expr::new(ExprKind::Lit(Lit::I32(0)), 0),
                );
                *e = inner;
            }
        }
        ExprKind::Call(_, args) | ExprKind::Builtin(_, args) => {
            for a in args.iter_mut() {
                fold_expr(a);
            }
        }
        _ => {}
    }
}

fn fold_bin(op: BinOp, a: &Expr, b: &Expr, _ty: Ty) -> Option<ExprKind> {
    use BinOp::*;
    // Integer folding.
    if let (ExprKind::Lit(la), ExprKind::Lit(lb)) = (&a.kind, &b.kind) {
        match (la, lb) {
            (Lit::I32(x), Lit::I32(y)) => {
                let (x, y) = (*x, *y);
                let v: Option<i32> = match op {
                    Add => Some(x.wrapping_add(y)),
                    Sub => Some(x.wrapping_sub(y)),
                    Mul => Some(x.wrapping_mul(y)),
                    Div if y != 0 && !(x == i32::MIN && y == -1) => Some(x.wrapping_div(y)),
                    Rem if y != 0 => Some(x.wrapping_rem(y)),
                    And => Some(x & y),
                    Or => Some(x | y),
                    Xor => Some(x ^ y),
                    Shl => Some(x.wrapping_shl(y as u32)),
                    Shr => Some(x.wrapping_shr(y as u32)),
                    ShrU => Some(((x as u32).wrapping_shr(y as u32)) as i32),
                    Lt => Some((x < y) as i32),
                    Le => Some((x <= y) as i32),
                    Gt => Some((x > y) as i32),
                    Ge => Some((x >= y) as i32),
                    Eq => Some((x == y) as i32),
                    Ne => Some((x != y) as i32),
                    AndAnd => Some((x != 0 && y != 0) as i32),
                    OrOr => Some((x != 0 || y != 0) as i32),
                    _ => None,
                };
                return v.map(|v| ExprKind::Lit(Lit::I32(v)));
            }
            (Lit::I64(x), Lit::I64(y)) => {
                let (x, y) = (*x, *y);
                let v: Option<Lit> = match op {
                    Add => Some(Lit::I64(x.wrapping_add(y))),
                    Sub => Some(Lit::I64(x.wrapping_sub(y))),
                    Mul => Some(Lit::I64(x.wrapping_mul(y))),
                    Div if y != 0 && !(x == i64::MIN && y == -1) => {
                        Some(Lit::I64(x.wrapping_div(y)))
                    }
                    Rem if y != 0 => Some(Lit::I64(x.wrapping_rem(y))),
                    And => Some(Lit::I64(x & y)),
                    Or => Some(Lit::I64(x | y)),
                    Xor => Some(Lit::I64(x ^ y)),
                    Shl => Some(Lit::I64(x.wrapping_shl(y as u32))),
                    Shr => Some(Lit::I64(x.wrapping_shr(y as u32))),
                    ShrU => Some(Lit::I64(((x as u64).wrapping_shr(y as u32)) as i64)),
                    Lt => Some(Lit::I32((x < y) as i32)),
                    Le => Some(Lit::I32((x <= y) as i32)),
                    Gt => Some(Lit::I32((x > y) as i32)),
                    Ge => Some(Lit::I32((x >= y) as i32)),
                    Eq => Some(Lit::I32((x == y) as i32)),
                    Ne => Some(Lit::I32((x != y) as i32)),
                    _ => None,
                };
                return v.map(ExprKind::Lit);
            }
            (Lit::F64(x), Lit::F64(y)) => {
                let (x, y) = (*x, *y);
                let v: Option<Lit> = match op {
                    Add => Some(Lit::F64(x + y)),
                    Sub => Some(Lit::F64(x - y)),
                    Mul => Some(Lit::F64(x * y)),
                    Div => Some(Lit::F64(x / y)),
                    Lt => Some(Lit::I32((x < y) as i32)),
                    Le => Some(Lit::I32((x <= y) as i32)),
                    Gt => Some(Lit::I32((x > y) as i32)),
                    Ge => Some(Lit::I32((x >= y) as i32)),
                    Eq => Some(Lit::I32((x == y) as i32)),
                    Ne => Some(Lit::I32((x != y) as i32)),
                    _ => None,
                };
                return v.map(ExprKind::Lit);
            }
            _ => {}
        }
    }
    None
}

/// Algebraic identities: `x+0`, `x*1`, `x*0` (pure x), `x-0`, `x/1`,
/// `x<<0`, `x*2^k → x<<k`.
fn simplify_bin(op: BinOp, a: &mut Expr, b: &mut Expr) -> Option<Expr> {
    use BinOp::*;
    let bv = lit_i64(b);
    let take = |e: &mut Expr| std::mem::replace(e, Expr::new(ExprKind::Lit(Lit::I32(0)), 0));
    match (op, bv) {
        (Add | Sub | Or | Xor | Shl | Shr | ShrU, Some(0)) if a.ty.is_int() => Some(take(a)),
        (Mul | Div, Some(1)) if a.ty.is_int() => Some(take(a)),
        (Mul, Some(0)) if a.ty.is_int() && is_pure(a) => Some(take(b)),
        (Mul, Some(k)) if a.ty.is_int() && k > 1 && (k as u64).is_power_of_two() => {
            let shift = k.trailing_zeros() as i64;
            let ty = a.ty;
            let line = a.line;
            let mut sh = Expr::new(
                ExprKind::Lit(if ty == Ty::I64 {
                    Lit::I64(shift)
                } else {
                    Lit::I32(shift as i32)
                }),
                line,
            );
            sh.ty = ty;
            let mut new = Expr::new(ExprKind::Bin(Shl, Box::new(take(a)), Box::new(sh)), line);
            new.ty = ty;
            Some(new)
        }
        _ => {
            // 0 + x → x  (commutative identities on the left).
            let neutral = (matches!(op, Add) && lit_i64(a) == Some(0))
                || (matches!(op, Mul) && lit_i64(a) == Some(1));
            if neutral && b.ty.is_int() {
                Some(take(b))
            } else {
                None
            }
        }
    }
}

// ---------------------------------------------------------------- inlining

/// Inlines functions whose body is exactly `return <expr>;` when actual
/// arguments are safe to substitute (pure, or the parameter is used at
/// most once).
fn inline_small_functions(program: &mut Program, _sigs: &HashMap<String, FuncSig>) {
    // Collect inline candidates.
    let mut candidates: HashMap<String, (Vec<Ty>, Expr)> = HashMap::new();
    for f in &program.funcs {
        if f.body.len() == 1 && f.nlocals == f.params.len() as u32 {
            if let Stmt::Return(Some(e), _) = &f.body[0] {
                if expr_size(e) <= 12 && !calls_anything(e) {
                    candidates.insert(
                        f.name.clone(),
                        (f.params.iter().map(|(_, t)| *t).collect(), e.clone()),
                    );
                }
            }
        }
    }
    if candidates.is_empty() {
        return;
    }
    for f in &mut program.funcs {
        for s in &mut f.body {
            inline_stmt(s, &candidates);
        }
    }
}

fn expr_size(e: &Expr) -> usize {
    match &e.kind {
        ExprKind::Bin(_, a, b) => 1 + expr_size(a) + expr_size(b),
        ExprKind::Un(_, a) | ExprKind::Cast(a, _) => 1 + expr_size(a),
        ExprKind::Call(_, args) | ExprKind::Builtin(_, args) => {
            1 + args.iter().map(expr_size).sum::<usize>()
        }
        _ => 1,
    }
}

fn calls_anything(e: &Expr) -> bool {
    match &e.kind {
        ExprKind::Call(..) => true,
        ExprKind::Bin(_, a, b) => calls_anything(a) || calls_anything(b),
        ExprKind::Un(_, a) | ExprKind::Cast(a, _) => calls_anything(a),
        ExprKind::Builtin(_, args) => args.iter().any(calls_anything),
        _ => false,
    }
}

fn inline_stmt(s: &mut Stmt, candidates: &HashMap<String, (Vec<Ty>, Expr)>) {
    match s {
        Stmt::Let { init, .. } => inline_expr(init, candidates),
        Stmt::Assign { value, .. } => inline_expr(value, candidates),
        Stmt::Expr(e) => inline_expr(e, candidates),
        Stmt::If { cond, then, els } => {
            inline_expr(cond, candidates);
            for s in then.iter_mut().chain(els.iter_mut()) {
                inline_stmt(s, candidates);
            }
        }
        Stmt::While { cond, body } => {
            inline_expr(cond, candidates);
            for s in body {
                inline_stmt(s, candidates);
            }
        }
        Stmt::For {
            init,
            cond,
            step,
            body,
        } => {
            inline_stmt(init, candidates);
            inline_expr(cond, candidates);
            inline_stmt(step, candidates);
            for s in body {
                inline_stmt(s, candidates);
            }
        }
        Stmt::Return(Some(e), _) => inline_expr(e, candidates),
        Stmt::Block(b) => {
            for s in b {
                inline_stmt(s, candidates);
            }
        }
        _ => {}
    }
}

fn inline_expr(e: &mut Expr, candidates: &HashMap<String, (Vec<Ty>, Expr)>) {
    // Recurse first so nested calls inline bottom-up.
    match &mut e.kind {
        ExprKind::Bin(_, a, b) => {
            inline_expr(a, candidates);
            inline_expr(b, candidates);
        }
        ExprKind::Un(_, a) | ExprKind::Cast(a, _) => inline_expr(a, candidates),
        ExprKind::Call(_, args) | ExprKind::Builtin(_, args) => {
            for a in args.iter_mut() {
                inline_expr(a, candidates);
            }
        }
        _ => {}
    }
    if let ExprKind::Call(name, args) = &e.kind {
        if let Some((params, body)) = candidates.get(name) {
            // Safe substitution: every argument pure, or its parameter
            // used at most once.
            let mut counts = vec![0usize; params.len()];
            count_param_uses(body, &mut counts);
            let safe = args
                .iter()
                .zip(&counts)
                .all(|(a, &c)| c <= 1 || is_pure(a));
            if safe {
                let mut new = body.clone();
                substitute_params(&mut new, args);
                new.line = e.line;
                *e = new;
            }
        }
    }
}

fn count_param_uses(e: &Expr, counts: &mut [usize]) {
    match &e.kind {
        ExprKind::Local(i) if (*i as usize) < counts.len() => {
            counts[*i as usize] += 1;
        }
        ExprKind::Bin(_, a, b) => {
            count_param_uses(a, counts);
            count_param_uses(b, counts);
        }
        ExprKind::Un(_, a) | ExprKind::Cast(a, _) => count_param_uses(a, counts),
        ExprKind::Call(_, args) | ExprKind::Builtin(_, args) => {
            for a in args {
                count_param_uses(a, counts);
            }
        }
        _ => {}
    }
}

fn substitute_params(e: &mut Expr, args: &[Expr]) {
    match &mut e.kind {
        ExprKind::Local(i) => {
            let idx = *i as usize;
            if idx < args.len() {
                let ty = e.ty;
                *e = args[idx].clone();
                debug_assert_eq!(e.ty, ty);
            }
        }
        ExprKind::Bin(_, a, b) => {
            substitute_params(a, args);
            substitute_params(b, args);
        }
        ExprKind::Un(_, a) | ExprKind::Cast(a, _) => substitute_params(a, args),
        ExprKind::Call(_, call_args) | ExprKind::Builtin(_, call_args) => {
            for a in call_args.iter_mut() {
                substitute_params(a, args);
            }
        }
        _ => {}
    }
}

// ------------------------------------------------------------------ LICM

/// Hoists loop-invariant pure subexpressions out of `while`/`for` bodies
/// into fresh locals.
fn hoist_block(stmts: &mut Vec<Stmt>, locals: &mut Vec<Ty>) {
    let mut i = 0;
    while i < stmts.len() {
        // Recurse into nested structures first.
        match &mut stmts[i] {
            Stmt::If { then, els, .. } => {
                hoist_block(then, locals);
                hoist_block(els, locals);
            }
            Stmt::Block(b) => hoist_block(b, locals),
            Stmt::While { body, .. } => hoist_block(body, locals),
            Stmt::For { body, .. } => hoist_block(body, locals),
            _ => {}
        }
        let replacement = match &mut stmts[i] {
            Stmt::While { cond, body } => try_hoist_loop(None, cond, None, body, locals),
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => try_hoist_loop(Some(init), cond, Some(step), body, locals),
            _ => None,
        };
        if let Some(mut pre) = replacement {
            let n = pre.len();
            let old = stmts.remove(i);
            pre.push(old);
            for (k, s) in pre.into_iter().enumerate() {
                stmts.insert(i + k, s);
            }
            i += n;
        }
        i += 1;
    }
}

/// Returns prelude statements (hoisted lets) to insert before the loop.
fn try_hoist_loop(
    init: Option<&mut Stmt>,
    cond: &mut Expr,
    step: Option<&mut Stmt>,
    body: &mut [Stmt],
    locals: &mut Vec<Ty>,
) -> Option<Vec<Stmt>> {
    // Variables written anywhere in the loop (cond/step/body).
    let mut written: HashSet<u32> = HashSet::new();
    let mut globals_written = false;
    let mut has_calls = false;
    for s in body.iter() {
        collect_writes(s, &mut written, &mut globals_written, &mut has_calls);
    }
    if let Some(s) = step {
        collect_writes(s, &mut written, &mut globals_written, &mut has_calls);
    }
    if let Some(s) = init {
        collect_writes(s, &mut written, &mut globals_written, &mut has_calls);
    }
    // Any call in the loop may write globals (callees can mutate them),
    // so global reads are only invariant in call-free loops.
    if has_calls {
        globals_written = true;
    }

    let mut hoisted: Vec<Stmt> = Vec::new();
    let mut cache: Vec<(Expr, u32)> = Vec::new();
    for s in body.iter_mut() {
        hoist_in_stmt(s, &written, globals_written, locals, &mut hoisted, &mut cache);
    }
    let _ = cond;
    if hoisted.is_empty() {
        None
    } else {
        Some(hoisted)
    }
}

fn collect_writes(
    s: &Stmt,
    written: &mut HashSet<u32>,
    globals_written: &mut bool,
    has_calls: &mut bool,
) {
    match s {
        Stmt::Let { slot, init, .. } => {
            written.insert(*slot);
            if calls_anything(init) {
                *has_calls = true;
            }
        }
        Stmt::Assign { target, value, .. } => {
            match target {
                AssignTarget::Local(slot) => {
                    written.insert(*slot);
                }
                AssignTarget::Global(_) => *globals_written = true,
                AssignTarget::Unresolved => {}
            }
            if calls_anything(value) {
                *has_calls = true;
            }
        }
        Stmt::Expr(e) if calls_anything(e) || !is_pure(e) => {
            *has_calls = true;
        }
        Stmt::If { then, els, cond } => {
            if calls_anything(cond) {
                *has_calls = true;
            }
            for s in then.iter().chain(els) {
                collect_writes(s, written, globals_written, has_calls);
            }
        }
        Stmt::While { body, cond } => {
            if calls_anything(cond) {
                *has_calls = true;
            }
            for s in body {
                collect_writes(s, written, globals_written, has_calls);
            }
        }
        Stmt::For {
            init,
            cond,
            step,
            body,
        } => {
            collect_writes(init, written, globals_written, has_calls);
            if calls_anything(cond) {
                *has_calls = true;
            }
            collect_writes(step, written, globals_written, has_calls);
            for s in body {
                collect_writes(s, written, globals_written, has_calls);
            }
        }
        Stmt::Return(Some(e), _) if calls_anything(e) => {
            *has_calls = true;
        }
        Stmt::Block(b) => {
            for s in b {
                collect_writes(s, written, globals_written, has_calls);
            }
        }
        _ => {}
    }
}

/// Whether an expression is loop-invariant: pure, and only reads locals
/// outside `written` (and globals only if no global writes).
fn is_invariant(e: &Expr, written: &HashSet<u32>, globals_written: bool) -> bool {
    match &e.kind {
        ExprKind::Lit(_) | ExprKind::Str(_) => true,
        ExprKind::Local(i) => !written.contains(i),
        ExprKind::Global(_) => !globals_written,
        ExprKind::Bin(op, a, b) => {
            (!matches!(op, BinOp::Div | BinOp::Rem) || !a.ty.is_int())
                && is_invariant(a, written, globals_written)
                && is_invariant(b, written, globals_written)
        }
        ExprKind::Un(_, a) => is_invariant(a, written, globals_written),
        ExprKind::Cast(a, to) => {
            (!to.is_int() || a.ty.is_int()) && is_invariant(a, written, globals_written)
        }
        _ => false,
    }
}

fn hoist_in_stmt(
    s: &mut Stmt,
    written: &HashSet<u32>,
    globals_written: bool,
    locals: &mut Vec<Ty>,
    out: &mut Vec<Stmt>,
    cache: &mut Vec<(Expr, u32)>,
) {
    let mut visit = |e: &mut Expr| hoist_in_expr(e, written, globals_written, locals, out, cache);
    match s {
        Stmt::Let { init, .. } => visit(init),
        Stmt::Assign { value, .. } => visit(value),
        Stmt::Expr(e) => visit(e),
        Stmt::If { cond, then, els } => {
            visit(cond);
            for s in then.iter_mut().chain(els.iter_mut()) {
                hoist_in_stmt(s, written, globals_written, locals, out, cache);
            }
        }
        // Nested loops were already processed by the outer walk; hoisting
        // across two levels happens on the second optimize() iteration.
        Stmt::While { .. } | Stmt::For { .. } => {}
        Stmt::Return(Some(e), _) => visit(e),
        Stmt::Block(b) => {
            for s in b {
                hoist_in_stmt(s, written, globals_written, locals, out, cache);
            }
        }
        _ => {}
    }
}

fn hoist_in_expr(
    e: &mut Expr,
    written: &HashSet<u32>,
    globals_written: bool,
    locals: &mut Vec<Ty>,
    out: &mut Vec<Stmt>,
    cache: &mut Vec<(Expr, u32)>,
) {
    if expr_size(e) >= 2
        && !matches!(e.kind, ExprKind::Lit(_) | ExprKind::Local(_))
        && is_invariant(e, written, globals_written)
    {
        // Reuse an identical hoisted expression if present.
        if let Some((_, slot)) = cache.iter().find(|(c, _)| c == e) {
            let ty = e.ty;
            let line = e.line;
            let mut new = Expr::new(ExprKind::Local(*slot), line);
            new.ty = ty;
            *e = new;
            return;
        }
        let slot = locals.len() as u32;
        locals.push(e.ty);
        let taken = std::mem::replace(e, Expr::new(ExprKind::Local(slot), e.line));
        e.ty = taken.ty;
        out.push(Stmt::Let {
            name: format!("__licm{slot}"),
            ty: Some(taken.ty),
            init: taken.clone(),
            slot,
        });
        cache.push((taken, slot));
        return;
    }
    match &mut e.kind {
        ExprKind::Bin(_, a, b) => {
            hoist_in_expr(a, written, globals_written, locals, out, cache);
            hoist_in_expr(b, written, globals_written, locals, out, cache);
        }
        ExprKind::Un(_, a) | ExprKind::Cast(a, _) => {
            hoist_in_expr(a, written, globals_written, locals, out, cache)
        }
        ExprKind::Call(_, args) | ExprKind::Builtin(_, args) => {
            for a in args.iter_mut() {
                hoist_in_expr(a, written, globals_written, locals, out, cache);
            }
        }
        _ => {}
    }
}

// --------------------------------------------------------------- unrolling

/// Fully unrolls `for (let i = C0; i < C1; i += C2)` loops with a small
/// constant trip count and a small body.
fn unroll_block(stmts: &mut Vec<Stmt>) {
    let mut i = 0;
    while i < stmts.len() {
        match &mut stmts[i] {
            Stmt::If { then, els, .. } => {
                unroll_block(then);
                unroll_block(els);
            }
            Stmt::Block(b) => unroll_block(b),
            Stmt::While { body, .. } => unroll_block(body),
            Stmt::For { body, .. } => unroll_block(body),
            _ => {}
        }
        if let Stmt::For {
            init,
            cond,
            step,
            body,
        } = &stmts[i]
        {
            if let Some(unrolled) = try_unroll(init, cond, step, body) {
                stmts.splice(i..=i, unrolled);
                continue; // re-examine from the same position
            }
        }
        i += 1;
    }
}

fn try_unroll(init: &Stmt, cond: &Expr, step: &Stmt, body: &[Stmt]) -> Option<Vec<Stmt>> {
    const MAX_TRIPS: i64 = 16;
    const MAX_BODY: usize = 8;
    if body.len() > MAX_BODY {
        return None;
    }
    // init: let i = C0  (or i = C0)
    let (ivar, start, ity) = match init {
        Stmt::Let { slot, init: e, ty, .. } => (*slot, lit_i64(e)?, ty.unwrap_or(e.ty)),
        Stmt::Assign {
            target: AssignTarget::Local(slot),
            value,
            ..
        } => (*slot, lit_i64(value)?, value.ty),
        _ => return None,
    };
    // cond: i < C1  or  i <= C1
    let (limit, inclusive) = match &cond.kind {
        ExprKind::Bin(BinOp::Lt, a, b) => match (&a.kind, lit_i64(b)) {
            (ExprKind::Local(v), Some(l)) if *v == ivar => (l, false),
            _ => return None,
        },
        ExprKind::Bin(BinOp::Le, a, b) => match (&a.kind, lit_i64(b)) {
            (ExprKind::Local(v), Some(l)) if *v == ivar => (l, true),
            _ => return None,
        },
        _ => return None,
    };
    // step: i = i + C2 (compound += desugars to this)
    let stride = match step {
        Stmt::Assign {
            target: AssignTarget::Local(slot),
            value,
            ..
        } if *slot == ivar => match &value.kind {
            ExprKind::Bin(BinOp::Add, a, b) => match (&a.kind, lit_i64(b)) {
                (ExprKind::Local(v), Some(k)) if *v == ivar && k > 0 => k,
                _ => return None,
            },
            _ => return None,
        },
        _ => return None,
    };
    let end = if inclusive { limit + 1 } else { limit };
    if end <= start {
        return Some(vec![rebuild_init(init, ivar, start, ity)]);
    }
    let trips = (end - start + stride - 1) / stride;
    if trips > MAX_TRIPS {
        return None;
    }
    // Body must not write the induction variable or break/continue.
    let mut written = HashSet::new();
    let mut gw = false;
    let mut hc = false;
    for s in body {
        collect_writes(s, &mut written, &mut gw, &mut hc);
        if has_break_or_continue(s) {
            return None;
        }
    }
    if written.contains(&ivar) {
        return None;
    }

    let mut out = Vec::with_capacity(trips as usize * (body.len() + 1) + 1);
    let mut v = start;
    while v < end {
        out.push(rebuild_init(init, ivar, v, ity));
        out.extend(body.iter().cloned());
        v += stride;
    }
    out.push(rebuild_init(init, ivar, v, ity));
    Some(out)
}

fn has_break_or_continue(s: &Stmt) -> bool {
    match s {
        Stmt::Break(_) | Stmt::Continue(_) => true,
        Stmt::If { then, els, .. } => {
            then.iter().any(has_break_or_continue) || els.iter().any(has_break_or_continue)
        }
        Stmt::Block(b) => b.iter().any(has_break_or_continue),
        // break/continue inside a nested loop bind to that loop.
        Stmt::While { .. } | Stmt::For { .. } => false,
        _ => false,
    }
}

fn rebuild_init(template: &Stmt, ivar: u32, value: i64, ty: Ty) -> Stmt {
    let lit = if ty == Ty::I64 {
        Lit::I64(value)
    } else {
        Lit::I32(value as i32)
    };
    let mut e = Expr::new(ExprKind::Lit(lit), 0);
    e.ty = ty;
    match template {
        Stmt::Let { name, .. } => Stmt::Let {
            name: name.clone(),
            ty: Some(ty),
            init: e,
            slot: ivar,
        },
        _ => Stmt::Assign {
            name: String::new(),
            value: e,
            target: AssignTarget::Local(ivar),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::check;
    use crate::parser::parse;

    fn optimized(src: &str, level: OptLevel) -> Program {
        let mut p = parse(src).unwrap();
        let sigs = check(&mut p).unwrap();
        optimize(&mut p, &sigs, level);
        p
    }

    fn body_str(p: &Program, f: usize) -> String {
        format!("{:?}", p.funcs[f].body)
    }

    #[test]
    fn o1_folds_constants() {
        let p = optimized("fn f() -> i32 { return 2 * 3 + 4; }", OptLevel::O1);
        assert!(body_str(&p, 0).contains("I32(10)"));
    }

    #[test]
    fn o1_removes_dead_branches() {
        let p = optimized(
            "fn f() -> i32 { if (0) { return 1; } return 2; }",
            OptLevel::O1,
        );
        assert!(!body_str(&p, 0).contains("If"));
    }

    #[test]
    fn o1_simplifies_identities() {
        let p = optimized("fn f(x: i32) -> i32 { return x * 8 + 0; }", OptLevel::O1);
        let s = body_str(&p, 0);
        assert!(s.contains("Shl"), "{s}");
        assert!(!s.contains("Add"), "{s}");
    }

    #[test]
    fn o2_inlines_single_expression_functions() {
        let p = optimized(
            "fn sq(x: i32) -> i32 { return x * x; } fn f(a: i32) -> i32 { return sq(a) + 1; }",
            OptLevel::O2,
        );
        assert!(!body_str(&p, 1).contains("Call"), "{}", body_str(&p, 1));
    }

    #[test]
    fn o2_does_not_duplicate_impure_args() {
        let p = optimized(
            "global t: i32 = 0;
             fn sq(x: i32) -> i32 { return x * x; }
             fn g() -> i32 { t = t + 1; return t; }
             fn f() -> i32 { return sq(g()); }",
            OptLevel::O2,
        );
        // g() used twice in the inlined body would double the side effect,
        // so the sq() call must remain (g is not inlinable: two statements).
        assert!(body_str(&p, 2).contains("Call"), "{}", body_str(&p, 2));
    }

    #[test]
    fn o2_hoists_invariant_expressions() {
        let p = optimized(
            "fn f(a: i32, b: i32, n: i32) -> i32 {
                let s: i32 = 0;
                let i: i32 = 0;
                while (i < n) { s = s + (a + 1) * (b + 2); i = i + 1; }
                return s;
            }",
            OptLevel::O2,
        );
        let s = body_str(&p, 0);
        assert!(s.contains("__licm"), "{s}");
    }

    #[test]
    fn o3_unrolls_small_loops() {
        let p = optimized(
            "fn f() -> i32 { let s: i32 = 0; for (let i: i32 = 0; i < 4; i += 1) { s += i; } return s; }",
            OptLevel::O3,
        );
        let s = body_str(&p, 0);
        assert!(!s.contains("For"), "{s}");
    }

    #[test]
    fn o3_keeps_large_loops() {
        let p = optimized(
            "fn f() -> i32 { let s: i32 = 0; for (let i: i32 = 0; i < 1000; i += 1) { s += i; } return s; }",
            OptLevel::O3,
        );
        assert!(body_str(&p, 0).contains("For"));
    }

    #[test]
    fn levels_are_ordered() {
        assert!(OptLevel::O0 < OptLevel::O1);
        assert!(OptLevel::O2 < OptLevel::O3);
        assert_eq!(OptLevel::all().len(), 4);
    }
    #[test]
    fn licm_does_not_hoist_globals_across_calls() {
        // `g` is written by the callee; `g - 1` must stay in the loop.
        let src = "global g: i32 = 0;
             fn bump() { g = g + 1; }
             export fn f() -> i32 {
                 let s: i32 = 0;
                 let i: i32 = 0;
                 while (i < 5) { bump(); s = s + (g - 1) * (g - 1); i = i + 1; }
                 return s;
             }";
        let mut p = crate::parser::parse(src).unwrap();
        let sigs = crate::check::check(&mut p).unwrap();
        let mut p2 = p.clone();
        optimize(&mut p2, &sigs, OptLevel::O2);
        let mut ev0 = crate::eval::Evaluator::new(&p);
        let mut ev2 = crate::eval::Evaluator::new(&p2);
        assert_eq!(
            ev0.call("f", &[]).unwrap(),
            ev2.call("f", &[]).unwrap(),
            "O2 must preserve semantics"
        );
    }
}
