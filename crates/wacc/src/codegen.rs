//! WebAssembly code generation from the checked AST.
//!
//! The emitted modules import the WASI functions they use from
//! `wasi_snapshot_preview1`, export their linear memory as `"memory"`,
//! every `export fn`, and a `_start` wrapper when `main` is present —
//! the same shape the WASI SDK produces.

use std::collections::HashMap;

use crate::ast::*;
use crate::check::FuncSig;
use crate::error::CompileError;
use wasm_core::builder::ModuleBuilder;
use wasm_core::instr::{BlockType, Instr, MemArg};
use wasm_core::module::ConstExpr;
use wasm_core::types::{FuncType, ValType};
use wasm_core::Module;

/// The WASI imports every generated module declares, in index order.
const WASI_IMPORTS: [(&str, &[ValType], &[ValType]); 5] = [
    (
        "fd_write",
        &[ValType::I32, ValType::I32, ValType::I32, ValType::I32],
        &[ValType::I32],
    ),
    (
        "fd_read",
        &[ValType::I32, ValType::I32, ValType::I32, ValType::I32],
        &[ValType::I32],
    ),
    ("proc_exit", &[ValType::I32], &[]),
    (
        "clock_time_get",
        &[ValType::I32, ValType::I64, ValType::I32],
        &[ValType::I32],
    ),
    ("random_get", &[ValType::I32, ValType::I32], &[ValType::I32]),
];

/// Scratch address used by the inline `clock_time_get` glue.
const CLOCK_SCRATCH: u32 = 48;

/// Generates a Wasm module from a checked program.
///
/// # Errors
///
/// Returns an error only for constructs the checker should have rejected.
pub fn generate(program: &Program, sigs: &HashMap<String, FuncSig>) -> Result<Module, CompileError> {
    generate_with(program, sigs, false)
}

/// Like [`generate`], with `naive` code generation: every intermediate
/// result is spilled to a temporary local and reloaded, the code shape an
/// unoptimizing C compiler (clang/gcc at `-O0`, which keep temporaries in
/// stack slots) produces. Used for the `-O0` optimization level.
///
/// # Errors
///
/// Returns an error only for constructs the checker should have rejected.
pub fn generate_with(
    program: &Program,
    sigs: &HashMap<String, FuncSig>,
    naive: bool,
) -> Result<Module, CompileError> {
    let mut b = ModuleBuilder::new();
    for (name, params, results) in WASI_IMPORTS {
        b.import_func(
            "wasi_snapshot_preview1",
            name,
            FuncType::new(params, results),
        );
    }
    b.memory(program.memory_pages, None);
    b.export_memory("memory");

    for g in &program.globals {
        let init = match g.init {
            Lit::I32(v) => ConstExpr::I32(v),
            Lit::I64(v) => ConstExpr::I64(v),
            Lit::F32(v) => ConstExpr::F32(v.to_bits()),
            Lit::F64(v) => ConstExpr::F64(v.to_bits()),
        };
        b.global(g.ty.val_type(), true, init);
    }

    // Function indices: the five imports come first.
    let func_index: HashMap<&str, u32> = program
        .funcs
        .iter()
        .enumerate()
        .map(|(i, f)| (f.name.as_str(), (WASI_IMPORTS.len() + i) as u32))
        .collect();

    for f in &program.funcs {
        let params: Vec<ValType> = f.params.iter().map(|(_, t)| t.val_type()).collect();
        let results: Vec<ValType> = f.ret.iter().map(|t| t.val_type()).collect();
        let idx = b.begin_func(FuncType::new(&params, &results));
        debug_assert_eq!(idx, func_index[f.name.as_str()]);
        let mut cx = GenCx {
            b: &mut b,
            func_index: &func_index,
            sigs,
            param_count: f.params.len() as u32,
            local_types: f.local_types.clone(),
            depth: 0,
            loops: Vec::new(),
            scratch: HashMap::new(),
            naive,
        };
        // Declare non-param locals.
        for t in &f.local_types[f.params.len()..] {
            cx.b.new_local(t.val_type());
        }
        for s in &f.body {
            cx.stmt(s)?;
        }
        if let Some(ret) = f.ret {
            cx.emit_zero(ret);
        }
        b.finish_func();
        if f.exported {
            b.export_func(&f.name, idx);
        }
    }

    if let Some(&main_idx) = func_index.get("main") {
        let main_ret = sigs.get("main").and_then(|s| s.ret);
        let start = b.begin_func(FuncType::new(&[], &[]));
        b.emit(Instr::Call(main_idx));
        if main_ret.is_some() {
            b.emit(Instr::Drop);
        }
        b.finish_func();
        if program.funcs.iter().all(|f| f.name != "_start") {
            b.export_func("_start", start);
        }
    }

    for (addr, bytes) in &program.data {
        if !bytes.is_empty() {
            b.data(*addr as i32, bytes.clone());
        }
    }

    Ok(b.build())
}

struct GenCx<'a> {
    b: &'a mut ModuleBuilder,
    func_index: &'a HashMap<&'a str, u32>,
    sigs: &'a HashMap<String, FuncSig>,
    param_count: u32,
    local_types: Vec<Ty>,
    /// Current structured-control nesting depth.
    depth: u32,
    /// Stack of `(break_target_depth, continue_target_depth)`.
    loops: Vec<(u32, u32)>,
    /// Lazily created scratch locals, one per type.
    scratch: HashMap<Ty, u32>,
    /// `-O0` code shape: spill every intermediate to a temporary local.
    naive: bool,
}

impl GenCx<'_> {
    fn scratch_local(&mut self, ty: Ty) -> u32 {
        if let Some(&s) = self.scratch.get(&ty) {
            return s;
        }
        let s = self.b.new_local(ty.val_type());
        self.local_types.push(ty);
        self.scratch.insert(ty, s);
        let _ = self.param_count;
        s
    }

    fn emit(&mut self, i: Instr) {
        self.b.emit(i);
    }

    fn emit_zero(&mut self, ty: Ty) {
        self.emit(match ty {
            Ty::I32 => Instr::I32Const(0),
            Ty::I64 => Instr::I64Const(0),
            Ty::F32 => Instr::F32Const(0),
            Ty::F64 => Instr::F64Const(0),
        });
    }

    fn stmt(&mut self, s: &Stmt) -> Result<(), CompileError> {
        match s {
            Stmt::Let { init, slot, .. } => {
                self.expr(init)?;
                self.emit(Instr::LocalSet(*slot));
            }
            Stmt::Assign { value, target, .. } => {
                self.expr(value)?;
                match target {
                    AssignTarget::Local(slot) => self.emit(Instr::LocalSet(*slot)),
                    AssignTarget::Global(idx) => self.emit(Instr::GlobalSet(*idx)),
                    AssignTarget::Unresolved => unreachable!("checker resolves targets"),
                }
            }
            Stmt::Expr(e) => {
                self.expr(e)?;
                if produces_value(e, self.sigs) {
                    self.emit(Instr::Drop);
                }
            }
            Stmt::If { cond, then, els } => {
                self.expr(cond)?;
                self.emit(Instr::If(BlockType::Empty));
                self.depth += 1;
                for s in then {
                    self.stmt(s)?;
                }
                if !els.is_empty() {
                    self.emit(Instr::Else);
                    for s in els {
                        self.stmt(s)?;
                    }
                }
                self.emit(Instr::End);
                self.depth -= 1;
            }
            Stmt::While { cond, body } => {
                // block { loop { !cond br_if 1; body; br 0 } }
                self.emit(Instr::Block(BlockType::Empty));
                let break_depth = self.depth;
                self.depth += 1;
                self.emit(Instr::Loop(BlockType::Empty));
                let continue_depth = self.depth;
                self.depth += 1;
                self.expr(cond)?;
                self.emit(eqz_for(cond.ty));
                self.emit(Instr::BrIf(self.depth - 1 - break_depth));
                self.loops.push((break_depth, continue_depth));
                for s in body {
                    self.stmt(s)?;
                }
                self.loops.pop();
                self.emit(Instr::Br(self.depth - 1 - continue_depth));
                self.emit(Instr::End);
                self.emit(Instr::End);
                self.depth -= 2;
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                // init; block { loop { !cond br_if exit; block { body }; step; br loop } }
                self.stmt(init)?;
                self.emit(Instr::Block(BlockType::Empty));
                let break_depth = self.depth;
                self.depth += 1;
                self.emit(Instr::Loop(BlockType::Empty));
                let loop_depth = self.depth;
                self.depth += 1;
                self.expr(cond)?;
                self.emit(eqz_for(cond.ty));
                self.emit(Instr::BrIf(self.depth - 1 - break_depth));
                self.emit(Instr::Block(BlockType::Empty));
                let continue_depth = self.depth;
                self.depth += 1;
                self.loops.push((break_depth, continue_depth));
                for s in body {
                    self.stmt(s)?;
                }
                self.loops.pop();
                self.emit(Instr::End); // continue lands here
                self.depth -= 1;
                self.stmt(step)?;
                self.emit(Instr::Br(self.depth - 1 - loop_depth));
                self.emit(Instr::End);
                self.emit(Instr::End);
                self.depth -= 2;
            }
            Stmt::Break(line) => {
                let (break_depth, _) = *self
                    .loops
                    .last()
                    .ok_or_else(|| CompileError::new(*line, "break outside loop"))?;
                self.emit(Instr::Br(self.depth - 1 - break_depth));
            }
            Stmt::Continue(line) => {
                let (_, continue_depth) = *self
                    .loops
                    .last()
                    .ok_or_else(|| CompileError::new(*line, "continue outside loop"))?;
                self.emit(Instr::Br(self.depth - 1 - continue_depth));
            }
            Stmt::Return(e, _) => {
                if let Some(e) = e {
                    self.expr(e)?;
                }
                self.emit(Instr::Return);
            }
            Stmt::Block(stmts) => {
                for s in stmts {
                    self.stmt(s)?;
                }
            }
        }
        Ok(())
    }

    fn expr(&mut self, e: &Expr) -> Result<(), CompileError> {
        match &e.kind {
            ExprKind::Lit(l) => self.emit(match *l {
                Lit::I32(v) => Instr::I32Const(v),
                Lit::I64(v) => Instr::I64Const(v),
                Lit::F32(v) => Instr::F32Const(v.to_bits()),
                Lit::F64(v) => Instr::F64Const(v.to_bits()),
            }),
            ExprKind::Str(addr) => self.emit(Instr::I32Const(*addr as i32)),
            ExprKind::Local(slot) => self.emit(Instr::LocalGet(*slot)),
            ExprKind::Global(idx) => self.emit(Instr::GlobalGet(*idx)),
            ExprKind::Name(n) => unreachable!("unresolved name `{n}` after checking"),
            ExprKind::Bin(op, a, bx) => self.bin(*op, a, bx)?,
            ExprKind::Un(op, a) => self.un(*op, a)?,
            ExprKind::Cast(a, to) => {
                self.expr(a)?;
                self.cast(a.ty, *to);
            }
            ExprKind::Call(name, args) => {
                for a in args {
                    self.expr(a)?;
                }
                self.emit(Instr::Call(self.func_index[name.as_str()]));
            }
            ExprKind::Builtin(bi, args) => self.builtin(*bi, args)?,
        }
        Ok(())
    }

    fn bin(&mut self, op: BinOp, a: &Expr, b: &Expr) -> Result<(), CompileError> {
        if op.is_logical() {
            // Short-circuit forms produce a normalized i32 bool.
            self.expr(a)?;
            match op {
                BinOp::AndAnd => {
                    self.emit(Instr::If(BlockType::Value(ValType::I32)));
                    self.expr(b)?;
                    self.emit(Instr::I32Eqz);
                    self.emit(Instr::I32Eqz);
                    self.emit(Instr::Else);
                    self.emit(Instr::I32Const(0));
                    self.emit(Instr::End);
                }
                BinOp::OrOr => {
                    self.emit(Instr::If(BlockType::Value(ValType::I32)));
                    self.emit(Instr::I32Const(1));
                    self.emit(Instr::Else);
                    self.expr(b)?;
                    self.emit(Instr::I32Eqz);
                    self.emit(Instr::I32Eqz);
                    self.emit(Instr::End);
                }
                _ => unreachable!(),
            }
            return Ok(());
        }
        self.expr(a)?;
        self.expr(b)?;
        self.emit(bin_instr(op, a.ty));
        if self.naive {
            // clang -O0 materializes every temporary in a stack slot.
            let ty = if op.is_comparison() { Ty::I32 } else { a.ty };
            let t = self.scratch_local(ty);
            self.emit(Instr::LocalSet(t));
            self.emit(Instr::LocalGet(t));
        }
        Ok(())
    }

    fn un(&mut self, op: UnOp, a: &Expr) -> Result<(), CompileError> {
        match (op, a.ty) {
            (UnOp::Neg, Ty::F32) => {
                self.expr(a)?;
                self.emit(Instr::F32Neg);
            }
            (UnOp::Neg, Ty::F64) => {
                self.expr(a)?;
                self.emit(Instr::F64Neg);
            }
            (UnOp::Neg, Ty::I32) => {
                self.emit(Instr::I32Const(0));
                self.expr(a)?;
                self.emit(Instr::I32Sub);
            }
            (UnOp::Neg, Ty::I64) => {
                self.emit(Instr::I64Const(0));
                self.expr(a)?;
                self.emit(Instr::I64Sub);
            }
            (UnOp::Not, _) => {
                self.expr(a)?;
                self.emit(eqz_for(a.ty));
            }
            (UnOp::BitNot, Ty::I32) => {
                self.expr(a)?;
                self.emit(Instr::I32Const(-1));
                self.emit(Instr::I32Xor);
            }
            (UnOp::BitNot, Ty::I64) => {
                self.expr(a)?;
                self.emit(Instr::I64Const(-1));
                self.emit(Instr::I64Xor);
            }
            (UnOp::BitNot, _) => unreachable!("checker rejects float ~"),
        }
        Ok(())
    }

    fn cast(&mut self, from: Ty, to: Ty) {
        use Instr::*;
        if from == to {
            return;
        }
        let i = match (from, to) {
            (Ty::I32, Ty::I64) => I64ExtendI32S,
            (Ty::I32, Ty::F32) => F32ConvertI32S,
            (Ty::I32, Ty::F64) => F64ConvertI32S,
            (Ty::I64, Ty::I32) => I32WrapI64,
            (Ty::I64, Ty::F32) => F32ConvertI64S,
            (Ty::I64, Ty::F64) => F64ConvertI64S,
            (Ty::F32, Ty::I32) => I32TruncF32S,
            (Ty::F32, Ty::I64) => I64TruncF32S,
            (Ty::F32, Ty::F64) => F64PromoteF32,
            (Ty::F64, Ty::I32) => I32TruncF64S,
            (Ty::F64, Ty::I64) => I64TruncF64S,
            (Ty::F64, Ty::F32) => F32DemoteF64,
            _ => unreachable!(),
        };
        self.emit(i);
    }

    fn builtin(&mut self, b: Builtin, args: &[Expr]) -> Result<(), CompileError> {
        use Builtin::*;
        use Instr::*;
        let m = MemArg::default();
        // Most builtins: evaluate args left-to-right, then one instruction.
        let simple: Option<Instr> = match b {
            LoadI32 => Some(I32Load(m)),
            LoadI64 => Some(I64Load(m)),
            LoadF32 => Some(F32Load(m)),
            LoadF64 => Some(F64Load(m)),
            LoadU8 => Some(I32Load8U(m)),
            LoadI8 => Some(I32Load8S(m)),
            LoadU16 => Some(I32Load16U(m)),
            LoadI16 => Some(I32Load16S(m)),
            StoreI32 => Some(I32Store(m)),
            StoreI64 => Some(I64Store(m)),
            StoreF32 => Some(F32Store(m)),
            StoreF64 => Some(F64Store(m)),
            StoreU8 => Some(I32Store8(m)),
            StoreU16 => Some(I32Store16(m)),
            Builtin::MemorySize => Some(Instr::MemorySize),
            Builtin::MemoryGrow => Some(Instr::MemoryGrow),
            DivU => Some(pick_int(args[0].ty, I32DivU, I64DivU)),
            RemU => Some(pick_int(args[0].ty, I32RemU, I64RemU)),
            LtU => Some(pick_int(args[0].ty, I32LtU, I64LtU)),
            GtU => Some(pick_int(args[0].ty, I32GtU, I64GtU)),
            LeU => Some(pick_int(args[0].ty, I32LeU, I64LeU)),
            GeU => Some(pick_int(args[0].ty, I32GeU, I64GeU)),
            Clz => Some(pick_int(args[0].ty, I32Clz, I64Clz)),
            Ctz => Some(pick_int(args[0].ty, I32Ctz, I64Ctz)),
            Popcnt => Some(pick_int(args[0].ty, I32Popcnt, I64Popcnt)),
            Rotl => Some(pick_int(args[0].ty, I32Rotl, I64Rotl)),
            Rotr => Some(pick_int(args[0].ty, I32Rotr, I64Rotr)),
            Sqrt => Some(pick_float(args[0].ty, F32Sqrt, F64Sqrt)),
            Floor => Some(pick_float(args[0].ty, F32Floor, F64Floor)),
            Ceil => Some(pick_float(args[0].ty, F32Ceil, F64Ceil)),
            TruncF => Some(pick_float(args[0].ty, F32Trunc, F64Trunc)),
            Nearest => Some(pick_float(args[0].ty, F32Nearest, F64Nearest)),
            FMin => Some(pick_float(args[0].ty, F32Min, F64Min)),
            FMax => Some(pick_float(args[0].ty, F32Max, F64Max)),
            Copysign => Some(pick_float(args[0].ty, F32Copysign, F64Copysign)),
            Abs if !args[0].ty.is_int() => Some(pick_float(args[0].ty, F32Abs, F64Abs)),
            _ => None,
        };
        if let Some(i) = simple {
            for a in args {
                self.expr(a)?;
            }
            self.emit(i);
            return Ok(());
        }
        match b {
            Abs => {
                // Integer abs: select(-x, x, x < 0) with a scratch local
                // (select returns its first operand when the condition is
                // non-zero).
                let ty = args[0].ty;
                let s = self.scratch_local(ty);
                self.expr(&args[0])?;
                self.emit(LocalSet(s));
                self.emit_zero(ty);
                self.emit(LocalGet(s));
                self.emit(pick_int(ty, I32Sub, I64Sub)); // -x
                self.emit(LocalGet(s)); // x
                self.emit(LocalGet(s));
                self.emit_zero(ty);
                self.emit(pick_int(ty, I32LtS, I64LtS)); // x < 0
                self.emit(Select);
            }
            WasiFdWrite | WasiFdRead => {
                for a in args {
                    self.expr(a)?;
                }
                self.emit(Call(if b == WasiFdWrite { 0 } else { 1 }));
            }
            WasiProcExit => {
                self.expr(&args[0])?;
                self.emit(Call(2));
            }
            WasiClockTimeGet => {
                self.emit(I32Const(0)); // CLOCK_REALTIME
                self.emit(I64Const(1)); // precision
                self.emit(I32Const(CLOCK_SCRATCH as i32));
                self.emit(Call(3));
                self.emit(Drop);
                self.emit(I32Const(CLOCK_SCRATCH as i32));
                self.emit(I64Load(m));
            }
            WasiRandomGet => {
                for a in args {
                    self.expr(a)?;
                }
                self.emit(Call(4));
            }
            other => unreachable!("builtin {other:?} should be simple"),
        }
        Ok(())
    }
}

fn pick_int(ty: Ty, a32: Instr, a64: Instr) -> Instr {
    if ty == Ty::I64 {
        a64
    } else {
        a32
    }
}

fn pick_float(ty: Ty, f32i: Instr, f64i: Instr) -> Instr {
    if ty == Ty::F32 {
        f32i
    } else {
        f64i
    }
}

fn eqz_for(ty: Ty) -> Instr {
    match ty {
        Ty::I32 => Instr::I32Eqz,
        Ty::I64 => Instr::I64Eqz,
        _ => unreachable!("conditions are integers"),
    }
}

fn bin_instr(op: BinOp, ty: Ty) -> Instr {
    use BinOp::*;
    use Instr::*;
    match ty {
        Ty::I32 => match op {
            Add => I32Add,
            Sub => I32Sub,
            Mul => I32Mul,
            Div => I32DivS,
            Rem => I32RemS,
            And => I32And,
            Or => I32Or,
            Xor => I32Xor,
            Shl => I32Shl,
            Shr => I32ShrS,
            ShrU => I32ShrU,
            Lt => I32LtS,
            Le => I32LeS,
            Gt => I32GtS,
            Ge => I32GeS,
            Eq => I32Eq,
            Ne => I32Ne,
            AndAnd | OrOr => unreachable!("logical ops handled separately"),
        },
        Ty::I64 => match op {
            Add => I64Add,
            Sub => I64Sub,
            Mul => I64Mul,
            Div => I64DivS,
            Rem => I64RemS,
            And => I64And,
            Or => I64Or,
            Xor => I64Xor,
            Shl => I64Shl,
            Shr => I64ShrS,
            ShrU => I64ShrU,
            Lt => I64LtS,
            Le => I64LeS,
            Gt => I64GtS,
            Ge => I64GeS,
            Eq => I64Eq,
            Ne => I64Ne,
            AndAnd | OrOr => unreachable!(),
        },
        Ty::F32 => match op {
            Add => F32Add,
            Sub => F32Sub,
            Mul => F32Mul,
            Div => F32Div,
            Lt => F32Lt,
            Le => F32Le,
            Gt => F32Gt,
            Ge => F32Ge,
            Eq => F32Eq,
            Ne => F32Ne,
            other => unreachable!("checker rejects {other:?} on f32"),
        },
        Ty::F64 => match op {
            Add => F64Add,
            Sub => F64Sub,
            Mul => F64Mul,
            Div => F64Div,
            Lt => F64Lt,
            Le => F64Le,
            Gt => F64Gt,
            Ge => F64Ge,
            Eq => F64Eq,
            Ne => F64Ne,
            other => unreachable!("checker rejects {other:?} on f64"),
        },
    }
}

/// Whether an expression leaves a value on the stack (store builtins and
/// void calls do not).
fn produces_value(e: &Expr, sigs: &HashMap<String, FuncSig>) -> bool {
    match &e.kind {
        ExprKind::Call(name, _) => sigs.get(name.as_str()).map(|s| s.ret.is_some()).unwrap_or(true),
        ExprKind::Builtin(b, _) => !matches!(
            b,
            Builtin::StoreI32
                | Builtin::StoreI64
                | Builtin::StoreF32
                | Builtin::StoreF64
                | Builtin::StoreU8
                | Builtin::StoreU16
                | Builtin::WasiProcExit
        ),
        _ => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::check;
    use crate::parser::parse;

    fn compile(src: &str) -> Module {
        let mut p = parse(src).unwrap();
        let sigs = check(&mut p).unwrap();
        let m = generate(&p, &sigs).unwrap();
        wasm_core::validate::validate(&m).unwrap();
        m
    }

    #[test]
    fn generates_valid_module() {
        let m = compile(
            r#"
            memory 2;
            global total: i64 = 0;
            export fn main() -> i32 {
                let s: i32 = 0;
                for (let i: i32 = 0; i < 10; i += 1) {
                    if (i % 2 == 0) { s += i; } else { continue; }
                }
                while (s > 100) { s = s - 1; break; }
                total = s as i64;
                return s;
            }
        "#,
        );
        assert!(m.exported_func("main").is_some());
        assert!(m.exported_func("_start").is_some());
        assert!(m.export("memory").is_some());
        assert_eq!(m.num_imported_funcs(), 5);
    }

    #[test]
    fn builtins_generate() {
        compile(
            r#"
            fn f(x: f64) -> f64 {
                store_f64(128, sqrt(abs(x)));
                return load_f64(128) + fmin(x, 2.0);
            }
            fn g(a: i32) -> i32 {
                return clz(a) + popcnt(a) + rotl(a, 3) + divu(a, 7) + abs(a);
            }
            fn h() -> i64 { return wasi_clock_time_get(); }
            fn io(p: i32) -> i32 { return wasi_fd_write(1, p, 1, 0); }
        "#,
        );
    }

    #[test]
    fn short_circuit_generates_ifs() {
        let m = compile("fn f(a: i32, b: i32) -> i32 { return a && b || !a; }");
        let body = &m.funcs[0].body;
        assert!(body.iter().any(|i| matches!(i, Instr::If(_))));
    }

    #[test]
    fn string_data_emitted() {
        let m = compile(r#"fn f() -> i32 { return "abc"; }"#);
        assert_eq!(m.data.len(), 1);
        assert_eq!(m.data[0].bytes, b"abc");
    }
    #[test]
    fn integer_abs_emits_negated_value_first() {
        // Regression: `select(v1, v2, c)` returns v1 when c != 0, so the
        // negated value must be computed before the plain reload.
        let m = compile("fn f(x: i32) -> i32 { return abs(x); }");
        let body = &m.funcs[0].body;
        let sub = body
            .iter()
            .position(|i| matches!(i, Instr::I32Sub))
            .expect("negation present");
        let select = body
            .iter()
            .position(|i| matches!(i, Instr::Select))
            .expect("select present");
        let lts = body
            .iter()
            .position(|i| matches!(i, Instr::I32LtS))
            .expect("comparison present");
        assert!(sub < lts && lts < select, "{body:?}");
    }
}
