//! Compiler diagnostics.

use std::error::Error;
use std::fmt;

/// A compile-time error with a source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileError {
    /// 1-based source line.
    pub line: u32,
    /// Description.
    pub msg: String,
}

impl CompileError {
    /// Creates an error at `line`.
    pub fn new(line: u32, msg: impl Into<String>) -> Self {
        CompileError {
            line,
            msg: msg.into(),
        }
    }
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl Error for CompileError {}

/// How serious a [`Diagnostic`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Suspicious but not necessarily wrong (e.g. unused variable).
    Warning,
    /// Guaranteed misbehavior if the code is reached (e.g. constant
    /// division by zero).
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// A non-fatal finding about a program that still compiles: what the
/// static analyzer reports, as opposed to [`CompileError`] which aborts
/// compilation. Carries a stable machine-readable `code` so tooling can
/// filter by lint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Finding severity.
    pub severity: Severity,
    /// 1-based source line the finding points at.
    pub line: u32,
    /// Stable lint identifier, e.g. `"unused-variable"`.
    pub code: &'static str,
    /// Human-readable description.
    pub msg: String,
}

impl Diagnostic {
    /// Creates a warning-severity diagnostic.
    pub fn warning(line: u32, code: &'static str, msg: impl Into<String>) -> Self {
        Diagnostic { severity: Severity::Warning, line, code, msg: msg.into() }
    }

    /// Creates an error-severity diagnostic.
    pub fn error(line: u32, code: &'static str, msg: impl Into<String>) -> Self {
        Diagnostic { severity: Severity::Error, line, code, msg: msg.into() }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}] line {}: {}", self.severity, self.code, self.line, self.msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_line() {
        assert_eq!(
            CompileError::new(7, "type mismatch").to_string(),
            "line 7: type mismatch"
        );
    }

    #[test]
    fn diagnostic_display_carries_code_and_severity() {
        let d = Diagnostic::warning(12, "unused-variable", "`x` is never read");
        assert_eq!(d.to_string(), "warning[unused-variable] line 12: `x` is never read");
        let e = Diagnostic::error(3, "const-div-zero", "division by constant zero");
        assert!(e.to_string().starts_with("error[const-div-zero] line 3"));
        assert!(Severity::Warning < Severity::Error);
    }
}
