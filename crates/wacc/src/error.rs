//! Compiler diagnostics.

use std::error::Error;
use std::fmt;

/// A compile-time error with a source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileError {
    /// 1-based source line.
    pub line: u32,
    /// Description.
    pub msg: String,
}

impl CompileError {
    /// Creates an error at `line`.
    pub fn new(line: u32, msg: impl Into<String>) -> Self {
        CompileError {
            line,
            msg: msg.into(),
        }
    }
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl Error for CompileError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_line() {
        assert_eq!(
            CompileError::new(7, "type mismatch").to_string(),
            "line 7: type mismatch"
        );
    }
}
