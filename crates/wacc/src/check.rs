//! Name resolution and type checking.
//!
//! Resolves identifiers to local slots / global indices, assigns a type to
//! every expression, inserts no implicit conversions (only *literals*
//! adapt to an expected type), and records each function's complete local
//! slot table for code generation.

use std::collections::HashMap;

use crate::ast::*;
use crate::error::CompileError;

/// Signature of a checked function.
#[derive(Debug, Clone, PartialEq)]
pub struct FuncSig {
    /// Parameter types.
    pub params: Vec<Ty>,
    /// Return type.
    pub ret: Option<Ty>,
}

/// Checks a parsed program in place.
///
/// # Errors
///
/// Returns the first type or resolution error.
pub fn check(program: &mut Program) -> Result<HashMap<String, FuncSig>, CompileError> {
    let mut sigs: HashMap<String, FuncSig> = HashMap::new();
    for f in &program.funcs {
        if sigs
            .insert(
                f.name.clone(),
                FuncSig {
                    params: f.params.iter().map(|(_, t)| *t).collect(),
                    ret: f.ret,
                },
            )
            .is_some()
        {
            return Err(CompileError::new(0, format!("duplicate function `{}`", f.name)));
        }
    }
    let globals: HashMap<String, (u32, Ty)> = program
        .globals
        .iter()
        .enumerate()
        .map(|(i, g)| (g.name.clone(), (i as u32, g.ty)))
        .collect();
    if globals.len() != program.globals.len() {
        return Err(CompileError::new(0, "duplicate global"));
    }

    for f in &mut program.funcs {
        let mut cx = FuncCx {
            sigs: &sigs,
            globals: &globals,
            scopes: vec![HashMap::new()],
            local_types: f.params.iter().map(|(_, t)| *t).collect(),
            local_names: f.params.iter().map(|(n, _)| n.clone()).collect(),
            ret: f.ret,
            loop_depth: 0,
        };
        for (i, (name, _)) in f.params.iter().enumerate() {
            cx.scopes[0].insert(name.clone(), i as u32);
        }
        check_block(&mut cx, &mut f.body)?;
        f.nlocals = cx.local_types.len() as u32;
        f.local_types = cx.local_types;
        f.local_names = cx.local_names;
    }
    Ok(sigs)
}

struct FuncCx<'a> {
    sigs: &'a HashMap<String, FuncSig>,
    globals: &'a HashMap<String, (u32, Ty)>,
    scopes: Vec<HashMap<String, u32>>,
    local_types: Vec<Ty>,
    local_names: Vec<String>,
    ret: Option<Ty>,
    /// Enclosing loop count: `break`/`continue` are only legal when > 0.
    loop_depth: u32,
}

impl FuncCx<'_> {
    fn lookup_local(&self, name: &str) -> Option<u32> {
        self.scopes.iter().rev().find_map(|s| s.get(name)).copied()
    }
}

fn check_block(cx: &mut FuncCx<'_>, stmts: &mut [Stmt]) -> Result<(), CompileError> {
    cx.scopes.push(HashMap::new());
    for s in stmts.iter_mut() {
        check_stmt(cx, s)?;
    }
    cx.scopes.pop();
    Ok(())
}

fn check_stmt(cx: &mut FuncCx<'_>, stmt: &mut Stmt) -> Result<(), CompileError> {
    match stmt {
        Stmt::Let {
            name,
            ty,
            init,
            slot,
        } => {
            check_expr(cx, init)?;
            let want = match ty {
                Some(t) => {
                    coerce(init, *t)?;
                    *t
                }
                None => init.ty,
            };
            let idx = cx.local_types.len() as u32;
            cx.local_types.push(want);
            cx.local_names.push(name.clone());
            cx.scopes
                .last_mut()
                .expect("scope stack")
                .insert(name.clone(), idx);
            *slot = idx;
        }
        Stmt::Assign {
            name,
            value,
            target,
        } => {
            check_expr(cx, value)?;
            if let Some(slot) = cx.lookup_local(name) {
                coerce(value, cx.local_types[slot as usize])?;
                *target = AssignTarget::Local(slot);
            } else if let Some((idx, ty)) = cx.globals.get(name) {
                coerce(value, *ty)?;
                *target = AssignTarget::Global(*idx);
            } else {
                return Err(CompileError::new(
                    value.line,
                    format!("assignment to unknown variable `{name}`"),
                ));
            }
        }
        Stmt::Expr(e) => {
            check_expr(cx, e)?;
        }
        Stmt::If { cond, then, els } => {
            check_expr(cx, cond)?;
            expect_ty(cond, Ty::I32)?;
            check_block(cx, then)?;
            check_block(cx, els)?;
        }
        Stmt::While { cond, body } => {
            check_expr(cx, cond)?;
            expect_ty(cond, Ty::I32)?;
            cx.loop_depth += 1;
            check_block(cx, body)?;
            cx.loop_depth -= 1;
        }
        Stmt::For {
            init,
            cond,
            step,
            body,
        } => {
            // The init's scope covers cond/step/body.
            cx.scopes.push(HashMap::new());
            check_stmt(cx, init)?;
            check_expr(cx, cond)?;
            expect_ty(cond, Ty::I32)?;
            check_stmt(cx, step)?;
            cx.loop_depth += 1;
            for s in body.iter_mut() {
                check_stmt(cx, s)?;
            }
            cx.loop_depth -= 1;
            cx.scopes.pop();
        }
        Stmt::Break(line) => {
            if cx.loop_depth == 0 {
                return Err(CompileError::new(*line, "break outside loop"));
            }
        }
        Stmt::Continue(line) => {
            if cx.loop_depth == 0 {
                return Err(CompileError::new(*line, "continue outside loop"));
            }
        }
        Stmt::Return(e, line) => match (e, cx.ret) {
            (Some(e), Some(want)) => {
                check_expr(cx, e)?;
                coerce(e, want)?;
            }
            (None, None) => {}
            (Some(e), None) => {
                check_expr(cx, e)?;
                return Err(CompileError::new(e.line, "return with value in void function"));
            }
            (None, Some(_)) => {
                return Err(CompileError::new(*line, "return without value"));
            }
        },
        Stmt::Block(stmts) => check_block(cx, stmts)?,
    }
    Ok(())
}

fn expect_ty(e: &Expr, want: Ty) -> Result<(), CompileError> {
    if e.ty != want {
        return Err(CompileError::new(
            e.line,
            format!("expected {want}, found {}", e.ty),
        ));
    }
    Ok(())
}

/// Adapts a *literal* expression to `want` (re-typing the constant), or
/// checks that the types already match.
fn coerce(e: &mut Expr, want: Ty) -> Result<(), CompileError> {
    if e.ty == want {
        return Ok(());
    }
    if let ExprKind::Lit(lit) = &e.kind {
        let new = match (*lit, want) {
            (Lit::I32(v), Ty::I64) => Some(Lit::I64(v as i64)),
            (Lit::I32(v), Ty::F64) => Some(Lit::F64(v as f64)),
            (Lit::I32(v), Ty::F32) => Some(Lit::F32(v as f32)),
            (Lit::I64(v), Ty::I32) if i32::try_from(v).is_ok() => Some(Lit::I32(v as i32)),
            (Lit::F64(v), Ty::F32) => Some(Lit::F32(v as f32)),
            _ => None,
        };
        if let Some(lit) = new {
            e.kind = ExprKind::Lit(lit);
            e.ty = want;
            return Ok(());
        }
    }
    Err(CompileError::new(
        e.line,
        format!("type mismatch: expected {want}, found {} (use `as`)", e.ty),
    ))
}

fn check_expr(cx: &mut FuncCx<'_>, e: &mut Expr) -> Result<(), CompileError> {
    match &mut e.kind {
        ExprKind::Lit(l) => e.ty = l.ty(),
        ExprKind::Str(_) => e.ty = Ty::I32,
        ExprKind::Local(_) | ExprKind::Global(_) => {
            unreachable!("resolution happens here; nodes arrive as Name")
        }
        ExprKind::Name(name) => {
            if let Some(slot) = cx.lookup_local(name) {
                e.ty = cx.local_types[slot as usize];
                e.kind = ExprKind::Local(slot);
            } else if let Some((idx, ty)) = cx.globals.get(name.as_str()) {
                e.ty = *ty;
                e.kind = ExprKind::Global(*idx);
            } else {
                return Err(CompileError::new(
                    e.line,
                    format!("unknown variable `{name}`"),
                ));
            }
        }
        ExprKind::Bin(op, a, b) => {
            check_expr(cx, a)?;
            check_expr(cx, b)?;
            let op = *op;
            // Unify literal operands with the other side.
            if a.ty != b.ty {
                if matches!(a.kind, ExprKind::Lit(_)) {
                    coerce(a, b.ty)?;
                } else {
                    coerce(b, a.ty)?;
                }
            }
            if op.is_logical() {
                expect_ty(a, Ty::I32)?;
                expect_ty(b, Ty::I32)?;
                e.ty = Ty::I32;
            } else if op.is_comparison() {
                e.ty = Ty::I32;
            } else {
                match op {
                    BinOp::And
                    | BinOp::Or
                    | BinOp::Xor
                    | BinOp::Shl
                    | BinOp::Shr
                    | BinOp::ShrU
                    | BinOp::Rem
                        if !a.ty.is_int() =>
                    {
                        return Err(CompileError::new(
                            e.line,
                            format!("operator requires integers, found {}", a.ty),
                        ))
                    }
                    _ => {}
                }
                e.ty = a.ty;
            }
        }
        ExprKind::Un(op, a) => {
            check_expr(cx, a)?;
            match op {
                UnOp::Neg => e.ty = a.ty,
                UnOp::Not => {
                    if !a.ty.is_int() {
                        return Err(CompileError::new(e.line, "`!` requires an integer"));
                    }
                    e.ty = Ty::I32;
                }
                UnOp::BitNot => {
                    if !a.ty.is_int() {
                        return Err(CompileError::new(e.line, "`~` requires an integer"));
                    }
                    e.ty = a.ty;
                }
            }
        }
        ExprKind::Cast(a, ty) => {
            check_expr(cx, a)?;
            e.ty = *ty;
        }
        ExprKind::Call(name, args) => {
            // Builtins shadow nothing: a user function wins if defined.
            if !cx.sigs.contains_key(name.as_str()) {
                if let Some(b) = Builtin::from_name(name) {
                    let args = std::mem::take(args);
                    e.kind = ExprKind::Builtin(b, args);
                    return check_expr(cx, e);
                }
                return Err(CompileError::new(
                    e.line,
                    format!("unknown function `{name}`"),
                ));
            }
            let sig = cx.sigs[name.as_str()].clone();
            if sig.params.len() != args.len() {
                return Err(CompileError::new(
                    e.line,
                    format!(
                        "`{name}` expects {} arguments, got {}",
                        sig.params.len(),
                        args.len()
                    ),
                ));
            }
            for (arg, want) in args.iter_mut().zip(&sig.params) {
                check_expr(cx, arg)?;
                coerce(arg, *want)?;
            }
            e.ty = sig.ret.unwrap_or(Ty::I32);
            if sig.ret.is_none() {
                // A void call used as an expression statement is fine; the
                // codegen knows not to expect a value. Mark it i32 and rely
                // on Stmt::Expr dropping nothing.
            }
        }
        ExprKind::Builtin(b, args) => {
            for a in args.iter_mut() {
                check_expr(cx, a)?;
            }
            e.ty = check_builtin(*b, args, e.line)?;
        }
    }
    Ok(())
}

fn check_builtin(b: Builtin, args: &mut [Expr], line: u32) -> Result<Ty, CompileError> {
    use Builtin::*;
    let argc = |n: usize| -> Result<(), CompileError> {
        if args.len() != n {
            return Err(CompileError::new(
                line,
                format!("builtin expects {n} arguments, got {}", args.len()),
            ));
        }
        Ok(())
    };
    let ty = match b {
        LoadI32 | LoadU8 | LoadI8 | LoadU16 | LoadI16 => {
            argc(1)?;
            coerce(&mut args[0], Ty::I32)?;
            Ty::I32
        }
        LoadI64 => {
            argc(1)?;
            coerce(&mut args[0], Ty::I32)?;
            Ty::I64
        }
        LoadF32 => {
            argc(1)?;
            coerce(&mut args[0], Ty::I32)?;
            Ty::F32
        }
        LoadF64 => {
            argc(1)?;
            coerce(&mut args[0], Ty::I32)?;
            Ty::F64
        }
        StoreI32 | StoreU8 | StoreU16 => {
            argc(2)?;
            coerce(&mut args[0], Ty::I32)?;
            coerce(&mut args[1], Ty::I32)?;
            Ty::I32 // value-less; codegen treats as statement
        }
        StoreI64 => {
            argc(2)?;
            coerce(&mut args[0], Ty::I32)?;
            coerce(&mut args[1], Ty::I64)?;
            Ty::I32
        }
        StoreF32 => {
            argc(2)?;
            coerce(&mut args[0], Ty::I32)?;
            coerce(&mut args[1], Ty::F32)?;
            Ty::I32
        }
        StoreF64 => {
            argc(2)?;
            coerce(&mut args[0], Ty::I32)?;
            coerce(&mut args[1], Ty::F64)?;
            Ty::I32
        }
        MemorySize => {
            argc(0)?;
            Ty::I32
        }
        MemoryGrow => {
            argc(1)?;
            coerce(&mut args[0], Ty::I32)?;
            Ty::I32
        }
        DivU | RemU | Rotl | Rotr => {
            argc(2)?;
            if args[0].ty != args[1].ty {
                if matches!(args[1].kind, ExprKind::Lit(_)) {
                    let want = args[0].ty;
                    coerce(&mut args[1], want)?;
                } else {
                    let want = args[1].ty;
                    coerce(&mut args[0], want)?;
                }
            }
            if !args[0].ty.is_int() {
                return Err(CompileError::new(line, "builtin requires integers"));
            }
            args[0].ty
        }
        LtU | GtU | LeU | GeU => {
            argc(2)?;
            if args[0].ty != args[1].ty {
                if matches!(args[1].kind, ExprKind::Lit(_)) {
                    let want = args[0].ty;
                    coerce(&mut args[1], want)?;
                } else {
                    let want = args[1].ty;
                    coerce(&mut args[0], want)?;
                }
            }
            if !args[0].ty.is_int() {
                return Err(CompileError::new(line, "builtin requires integers"));
            }
            Ty::I32
        }
        Clz | Ctz | Popcnt => {
            argc(1)?;
            if !args[0].ty.is_int() {
                return Err(CompileError::new(line, "builtin requires an integer"));
            }
            args[0].ty
        }
        Sqrt | Abs | Floor | Ceil | TruncF | Nearest => {
            argc(1)?;
            if args[0].ty.is_int() {
                if b == Abs {
                    return Ok(args[0].ty); // integer abs is lowered in codegen
                }
                coerce(&mut args[0], Ty::F64)?;
            }
            args[0].ty
        }
        FMin | FMax | Copysign => {
            argc(2)?;
            if args[0].ty != args[1].ty {
                if matches!(args[1].kind, ExprKind::Lit(_)) {
                    let want = args[0].ty;
                    coerce(&mut args[1], want)?;
                } else {
                    let want = args[1].ty;
                    coerce(&mut args[0], want)?;
                }
            }
            if args[0].ty.is_int() {
                return Err(CompileError::new(line, "builtin requires floats"));
            }
            args[0].ty
        }
        WasiFdWrite | WasiFdRead => {
            argc(4)?;
            for a in args.iter_mut() {
                coerce(a, Ty::I32)?;
            }
            Ty::I32
        }
        WasiProcExit => {
            argc(1)?;
            coerce(&mut args[0], Ty::I32)?;
            Ty::I32
        }
        WasiClockTimeGet => {
            argc(0)?;
            Ty::I64
        }
        WasiRandomGet => {
            argc(2)?;
            coerce(&mut args[0], Ty::I32)?;
            coerce(&mut args[1], Ty::I32)?;
            Ty::I32
        }
    };
    Ok(ty)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn checked(src: &str) -> Result<Program, CompileError> {
        let mut p = parse(src)?;
        check(&mut p)?;
        Ok(p)
    }

    #[test]
    fn resolves_locals_and_params() {
        let p = checked("fn f(a: i32) -> i32 { let b: i32 = a + 1; return b; }").unwrap();
        let f = &p.funcs[0];
        assert_eq!(f.nlocals, 2);
        assert_eq!(f.local_types, vec![Ty::I32, Ty::I32]);
    }

    #[test]
    fn literal_coercion() {
        checked("fn f() -> i64 { let x: i64 = 0; return x + 1; }").unwrap();
        checked("fn f() -> f64 { let x: f64 = 3; return x * 2; }").unwrap();
    }

    #[test]
    fn rejects_type_mismatch() {
        assert!(checked("fn f(a: i32, b: f64) -> i32 { return a + b; }").is_err());
        assert!(checked("fn f() -> i32 { let x: f32 = 1.5f; return x; }").is_err());
    }

    #[test]
    fn rejects_unknown_names() {
        assert!(checked("fn f() -> i32 { return nope; }").is_err());
        assert!(checked("fn f() -> i32 { return nope(1); }").is_err());
        assert!(checked("fn f() { zork = 3; }").is_err());
    }

    #[test]
    fn builtins_resolve_and_type() {
        let p = checked(
            "fn f() -> f64 { store_f64(8, 1.5); return sqrt(load_f64(8)); }",
        )
        .unwrap();
        // The call nodes were rewritten to builtins.
        let has_builtin = format!("{:?}", p.funcs[0].body).contains("Builtin");
        assert!(has_builtin);
    }

    #[test]
    fn scoping_and_shadowing() {
        let p = checked(
            "fn f() -> i32 { let x: i32 = 1; { let x: i64 = 2; } return x; }",
        )
        .unwrap();
        assert_eq!(p.funcs[0].nlocals, 2);
        assert!(checked("fn f() -> i32 { { let y: i32 = 1; } return y; }").is_err());
    }

    #[test]
    fn globals_resolve() {
        checked("global g: i32 = 7; fn f() -> i32 { g = g + 1; return g; }").unwrap();
    }

    #[test]
    fn call_arity_checked() {
        assert!(checked("fn g(a: i32) {} fn f() { g(); }").is_err());
        assert!(checked("fn g(a: i32) {} fn f() { g(1, 2); }").is_err());
        checked("fn g(a: i32) {} fn f() { g(1); }").unwrap();
    }

    #[test]
    fn unsigned_builtins() {
        checked("fn f(a: i32, b: i32) -> i32 { return divu(a, b) + ltu(a, b); }").unwrap();
        assert!(checked("fn f(a: f64) -> f64 { return divu(a, a); }").is_err());
    }
}
