//! Set-associative cache simulation.

/// Statistics for one cache level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Total accesses.
    pub accesses: u64,
    /// Misses.
    pub misses: u64,
}

impl CacheStats {
    /// Miss ratio in `[0, 1]`.
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

/// A set-associative cache with LRU replacement and 64-byte lines.
#[derive(Debug, Clone)]
pub struct Cache {
    /// Tag store: `sets × ways` entries (`u64::MAX` = invalid).
    tags: Vec<u64>,
    /// LRU stamps parallel to `tags`.
    stamps: Vec<u64>,
    ways: usize,
    set_mask: u64,
    set_shift: u32,
    clock: u64,
    /// Access statistics.
    pub stats: CacheStats,
}

/// Cache line size in bytes (log2).
pub const LINE_SHIFT: u32 = 6;

impl Cache {
    /// Creates a cache of `size_bytes` with the given associativity.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is not a power of two.
    pub fn new(size_bytes: usize, ways: usize) -> Cache {
        let lines = size_bytes >> LINE_SHIFT;
        assert!(lines.is_multiple_of(ways), "size must divide into ways");
        let sets = lines / ways;
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        Cache {
            tags: vec![u64::MAX; sets * ways],
            stamps: vec![0; sets * ways],
            ways,
            set_mask: (sets - 1) as u64,
            set_shift: LINE_SHIFT,
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// Accesses the line containing `addr`; returns `true` on hit.
    /// Touches at most one line — callers split straddling accesses.
    pub fn access(&mut self, addr: u64) -> bool {
        self.clock += 1;
        self.stats.accesses += 1;
        let line = addr >> self.set_shift;
        let set = (line & self.set_mask) as usize;
        let base = set * self.ways;
        let slots = &mut self.tags[base..base + self.ways];
        if let Some(w) = slots.iter().position(|t| *t == line) {
            self.stamps[base + w] = self.clock;
            return true;
        }
        self.stats.misses += 1;
        // Evict LRU.
        let lru = (0..self.ways)
            .min_by_key(|w| self.stamps[base + w])
            .expect("ways > 0");
        self.tags[base + lru] = line;
        self.stamps[base + lru] = self.clock;
        false
    }

    /// The set of line numbers an access of `len` bytes at `addr` touches.
    pub fn lines_touched(addr: u64, len: u32) -> impl Iterator<Item = u64> {
        let first = addr >> LINE_SHIFT;
        // Saturate: an access at the very top of the address space ends
        // on the last line rather than wrapping (and overflowing) to 0.
        let last = addr.saturating_add(len.max(1) as u64 - 1) >> LINE_SHIFT;
        (first..=last).map(|l| l << LINE_SHIFT)
    }
}

/// The three-level hierarchy of the study platform (Table 3):
/// 32 KiB L1-I, 32 KiB L1-D, 256 KiB unified L2, 10 MiB L3.
#[derive(Debug, Clone)]
pub struct Hierarchy {
    /// L1 instruction cache.
    pub l1i: Cache,
    /// L1 data cache.
    pub l1d: Cache,
    /// Unified L2.
    pub l2: Cache,
    /// Last-level cache.
    pub l3: Cache,
}

/// Where an access was served from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServedBy {
    /// Hit in L1.
    L1,
    /// Hit in L2.
    L2,
    /// Hit in L3.
    L3,
    /// Missed everywhere (memory).
    Memory,
}

impl ServedBy {
    /// Approximate load-to-use latency in cycles (Broadwell-class).
    pub fn latency(self) -> u64 {
        match self {
            ServedBy::L1 => 4,
            ServedBy::L2 => 12,
            ServedBy::L3 => 38,
            ServedBy::Memory => 180,
        }
    }
}

impl Default for Hierarchy {
    fn default() -> Self {
        Hierarchy::new()
    }
}

impl Hierarchy {
    /// Builds the study platform's hierarchy.
    pub fn new() -> Hierarchy {
        Hierarchy {
            l1i: Cache::new(32 << 10, 8),
            l1d: Cache::new(32 << 10, 8),
            l2: Cache::new(256 << 10, 8),
            l3: Cache::new(10 << 20, 20),
        }
    }

    /// A data access of `len` bytes at `addr`.
    pub fn data_access(&mut self, addr: u64, len: u32) -> ServedBy {
        let mut worst = ServedBy::L1;
        for line in Cache::lines_touched(addr, len) {
            let served = if self.l1d.access(line) {
                ServedBy::L1
            } else if self.l2.access(line) {
                ServedBy::L2
            } else if self.l3.access(line) {
                ServedBy::L3
            } else {
                ServedBy::Memory
            };
            if served.latency() > worst.latency() {
                worst = served;
            }
        }
        worst
    }

    /// An instruction fetch of `len` bytes at `addr`.
    pub fn inst_access(&mut self, addr: u64, len: u32) -> ServedBy {
        let mut worst = ServedBy::L1;
        for line in Cache::lines_touched(addr, len) {
            let served = if self.l1i.access(line) {
                ServedBy::L1
            } else if self.l2.access(line) {
                ServedBy::L2
            } else if self.l3.access(line) {
                ServedBy::L3
            } else {
                ServedBy::Memory
            };
            if served.latency() > worst.latency() {
                worst = served;
            }
        }
        worst
    }

    /// Last-level cache references (the `perf` "cache-references" analogue).
    pub fn llc_references(&self) -> u64 {
        self.l3.stats.accesses
    }

    /// Last-level cache misses (the `perf` "cache-misses" analogue).
    pub fn llc_misses(&self) -> u64 {
        self.l3.stats.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeated_access_hits() {
        let mut c = Cache::new(32 << 10, 8);
        assert!(!c.access(0x1000));
        assert!(c.access(0x1000));
        assert!(c.access(0x1038)); // same 64-byte line? 0x1038>>6=0x40 vs 0x1000>>6=0x40: yes
        assert_eq!(c.stats.misses, 1);
        assert_eq!(c.stats.accesses, 3);
    }

    #[test]
    fn conflict_eviction_is_lru() {
        // 2 ways, 64-byte lines, tiny cache: 4 lines → 2 sets.
        let mut c = Cache::new(256, 2);
        let set_stride = 2 * 64; // same set every 2 lines
        let a = 0;
        let b = set_stride as u64;
        let d = 2 * set_stride as u64;
        assert!(!c.access(a));
        assert!(!c.access(b));
        assert!(c.access(a)); // refresh a
        assert!(!c.access(d)); // evicts b (LRU)
        assert!(c.access(a));
        assert!(!c.access(b)); // b was evicted
    }

    #[test]
    fn straddling_access_touches_two_lines() {
        let lines: Vec<u64> = Cache::lines_touched(60, 8).collect();
        assert_eq!(lines, vec![0, 64]);
        let lines: Vec<u64> = Cache::lines_touched(64, 4).collect();
        assert_eq!(lines, vec![64]);
    }

    #[test]
    fn hierarchy_fills_downward() {
        let mut h = Hierarchy::new();
        assert_eq!(h.data_access(0x5000, 8), ServedBy::Memory);
        assert_eq!(h.data_access(0x5000, 8), ServedBy::L1);
        assert_eq!(h.llc_references(), 1);
        assert_eq!(h.llc_misses(), 1);
    }

    #[test]
    fn l2_serves_after_l1_eviction() {
        let mut h = Hierarchy::new();
        // Fill one L1 set (8 ways; 64 sets in 32K/8w) with 9 conflicting lines.
        let stride = 64 * 64; // set stride for L1 (64 sets)
        for k in 0..9u64 {
            h.data_access(k * stride as u64, 4);
        }
        // First line is out of L1 but (256K L2 = 512 sets) still in L2.
        assert_eq!(h.data_access(0, 4), ServedBy::L2);
    }

    #[test]
    fn working_set_larger_than_l3_misses() {
        let mut h = Hierarchy::new();
        let lines = (11 << 20) / 64; // > 10 MiB of distinct lines
        for k in 0..lines as u64 {
            h.data_access(k * 64, 1);
        }
        // Re-walk: everything was evicted from L3.
        let before = h.llc_misses();
        for k in 0..4096u64 {
            h.data_access(k * 64, 1);
        }
        assert!(h.llc_misses() > before);
    }

    #[test]
    fn miss_ratio_math() {
        let s = CacheStats {
            accesses: 200,
            misses: 20,
        };
        assert!((s.miss_ratio() - 0.1).abs() < 1e-12);
        assert_eq!(CacheStats::default().miss_ratio(), 0.0);
    }
}
