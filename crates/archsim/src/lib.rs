//! # archsim — architectural simulation substrate
//!
//! The reproduction's stand-in for Linux `perf`: a set-associative cache
//! hierarchy matching the study platform (32 KiB L1-I/L1-D, 256 KiB L2,
//! 10 MiB L3 — Table 3 of the paper), a branch prediction unit (gshare
//! direction predictor, BTB, return-address stack, and a four-component
//! ITTAGE indirect-target predictor — the piece that makes interpreter
//! dispatch predictable, the paper's Table 5 finding), and a simple
//! superscalar cycle model for IPC.
//!
//! [`ArchSim`] implements [`engines::Profiler`], so any engine run in
//! profiled mode streams its instruction fetches, data accesses, and
//! branches through the simulator:
//!
//! ```
//! use archsim::ArchSim;
//! use engines::{Engine, EngineKind};
//!
//! let src = "export fn main() -> i32 { return 6 * 7; }";
//! let bytes = wacc::compile_to_bytes(src, wacc::OptLevel::O2)?;
//! let compiled = Engine::new(EngineKind::Wasm3).compile(&bytes)?;
//! let mut inst = compiled.instantiate(&wasi_rt::imports(), Box::new(wasi_rt::WasiCtx::new()))?;
//! let mut sim = ArchSim::new();
//! inst.invoke_profiled("main", &[], &mut sim)?;
//! let c = sim.counters();
//! assert!(c.instructions > 0 && c.ipc() > 0.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod branch;
pub mod cache;
pub mod sim;

pub use branch::{BranchPredictor, BranchStats};
pub use cache::{Cache, CacheStats, Hierarchy};
pub use sim::{ArchSim, Counters};
