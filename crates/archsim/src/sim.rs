//! The architectural simulator: an [`engines::Profiler`] implementation
//! combining the cache hierarchy, branch predictors, and a simple
//! superscalar cycle model — the reproduction's stand-in for `perf`.

use crate::branch::{BranchPredictor, BranchStats};
use crate::cache::{CacheStats, Hierarchy, ServedBy};
use engines::profiler::{BranchKind, Profiler};

/// Issue width of the modeled core.
const ISSUE_WIDTH: u64 = 4;
/// Pipeline flush penalty for a branch misprediction.
const MISPREDICT_PENALTY: u64 = 15;

/// A snapshot of all counters, in `perf stat` terms.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Counters {
    /// Retired instructions (µops).
    pub instructions: u64,
    /// Modeled cycles.
    pub cycles: u64,
    /// Retired branches.
    pub branches: u64,
    /// Branch mispredictions.
    pub branch_misses: u64,
    /// Last-level cache references.
    pub cache_references: u64,
    /// Last-level cache misses.
    pub cache_misses: u64,
    /// L1-D accesses.
    pub l1d_accesses: u64,
    /// L1-D misses.
    pub l1d_misses: u64,
    /// L1-I accesses.
    pub l1i_accesses: u64,
    /// L1-I misses.
    pub l1i_misses: u64,
    /// Safety checks skipped thanks to static elimination proofs (not a
    /// hardware counter; reported alongside so figures can attribute the
    /// retired-instruction delta to check elimination).
    pub checks_skipped: u64,
}

impl Counters {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// Branch misprediction ratio.
    pub fn branch_miss_ratio(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            self.branch_misses as f64 / self.branches as f64
        }
    }

    /// LLC miss ratio (misses / references), the paper's "cache miss ratio".
    pub fn cache_miss_ratio(&self) -> f64 {
        if self.cache_references == 0 {
            0.0
        } else {
            self.cache_misses as f64 / self.cache_references as f64
        }
    }

    /// Events per thousand instructions (0 when nothing retired).
    fn per_kilo_instr(&self, events: u64) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            events as f64 * 1e3 / self.instructions as f64
        }
    }

    /// Branch MPKI (Figure 12's metric).
    pub fn branch_mpki(&self) -> f64 {
        self.per_kilo_instr(self.branch_misses)
    }

    /// L1-D miss MPKI (Figure 13's metric).
    pub fn l1d_mpki(&self) -> f64 {
        self.per_kilo_instr(self.l1d_misses)
    }

    /// L1-I miss MPKI.
    pub fn l1i_mpki(&self) -> f64 {
        self.per_kilo_instr(self.l1i_misses)
    }

    /// LLC miss MPKI (Figure 14's metric).
    pub fn llc_mpki(&self) -> f64 {
        self.per_kilo_instr(self.cache_misses)
    }

    /// Field-wise difference against an earlier snapshot of the same
    /// simulator — counters are monotone, so saturation only absorbs a
    /// mismatched pair.
    pub fn delta_since(&self, earlier: &Counters) -> Counters {
        Counters {
            instructions: self.instructions.saturating_sub(earlier.instructions),
            cycles: self.cycles.saturating_sub(earlier.cycles),
            branches: self.branches.saturating_sub(earlier.branches),
            branch_misses: self.branch_misses.saturating_sub(earlier.branch_misses),
            cache_references: self
                .cache_references
                .saturating_sub(earlier.cache_references),
            cache_misses: self.cache_misses.saturating_sub(earlier.cache_misses),
            l1d_accesses: self.l1d_accesses.saturating_sub(earlier.l1d_accesses),
            l1d_misses: self.l1d_misses.saturating_sub(earlier.l1d_misses),
            l1i_accesses: self.l1i_accesses.saturating_sub(earlier.l1i_accesses),
            l1i_misses: self.l1i_misses.saturating_sub(earlier.l1i_misses),
            checks_skipped: self.checks_skipped.saturating_sub(earlier.checks_skipped),
        }
    }

    /// Adds another snapshot field-wise (aggregating repetitions or
    /// engines).
    pub fn accumulate(&mut self, other: &Counters) {
        self.instructions += other.instructions;
        self.cycles += other.cycles;
        self.branches += other.branches;
        self.branch_misses += other.branch_misses;
        self.cache_references += other.cache_references;
        self.cache_misses += other.cache_misses;
        self.l1d_accesses += other.l1d_accesses;
        self.l1d_misses += other.l1d_misses;
        self.l1i_accesses += other.l1i_accesses;
        self.l1i_misses += other.l1i_misses;
        self.checks_skipped += other.checks_skipped;
    }
}

impl From<Counters> for obs::trace::SpanCounters {
    fn from(c: Counters) -> obs::trace::SpanCounters {
        obs::trace::SpanCounters {
            instructions: c.instructions,
            cycles: c.cycles,
            branches: c.branches,
            branch_misses: c.branch_misses,
            cache_references: c.cache_references,
            cache_misses: c.cache_misses,
            l1d_accesses: c.l1d_accesses,
            l1d_misses: c.l1d_misses,
            l1i_accesses: c.l1i_accesses,
            l1i_misses: c.l1i_misses,
        }
    }
}

impl From<obs::trace::SpanCounters> for Counters {
    fn from(c: obs::trace::SpanCounters) -> Counters {
        Counters {
            instructions: c.instructions,
            cycles: c.cycles,
            branches: c.branches,
            branch_misses: c.branch_misses,
            cache_references: c.cache_references,
            cache_misses: c.cache_misses,
            l1d_accesses: c.l1d_accesses,
            l1d_misses: c.l1d_misses,
            l1i_accesses: c.l1i_accesses,
            l1i_misses: c.l1i_misses,
            checks_skipped: 0,
        }
    }
}

/// The full-system profiler.
#[derive(Debug)]
pub struct ArchSim {
    /// Cache hierarchy.
    pub caches: Hierarchy,
    /// Branch prediction unit.
    pub branches: BranchPredictor,
    uops: u64,
    stall_cycles: u64,
    checks_skipped: u64,
}

impl Default for ArchSim {
    fn default() -> Self {
        ArchSim::new()
    }
}

impl ArchSim {
    /// Creates a simulator with cold caches and predictors.
    pub fn new() -> ArchSim {
        ArchSim {
            caches: Hierarchy::new(),
            branches: BranchPredictor::new(),
            uops: 0,
            stall_cycles: 0,
            checks_skipped: 0,
        }
    }

    fn stall_for(&mut self, served: ServedBy) {
        // Out-of-order execution hides much of L1/L2 latency; expose a
        // fraction of it plus the full memory penalty.
        let visible = match served {
            ServedBy::L1 => 0,
            ServedBy::L2 => 4,
            ServedBy::L3 => 20,
            ServedBy::Memory => 120,
        };
        self.stall_cycles += visible;
    }

    /// Snapshot of all counters.
    pub fn counters(&self) -> Counters {
        let l1d: CacheStats = self.caches.l1d.stats;
        let l1i: CacheStats = self.caches.l1i.stats;
        let br: BranchStats = self.branches.stats;
        let base_cycles = self.uops.div_ceil(ISSUE_WIDTH);
        Counters {
            instructions: self.uops,
            cycles: base_cycles + self.stall_cycles + br.misses * MISPREDICT_PENALTY,
            branches: br.branches,
            branch_misses: br.misses,
            cache_references: self.caches.llc_references(),
            cache_misses: self.caches.llc_misses(),
            l1d_accesses: l1d.accesses,
            l1d_misses: l1d.misses,
            l1i_accesses: l1i.accesses,
            l1i_misses: l1i.misses,
            checks_skipped: self.checks_skipped,
        }
    }
}

impl Profiler for ArchSim {
    #[inline]
    fn fetch(&mut self, addr: u64, len: u32) {
        let served = self.caches.inst_access(addr, len);
        // Frontend stalls are partially hidden by the fetch queue.
        if !matches!(served, ServedBy::L1) {
            self.stall_for(served);
        }
    }

    #[inline]
    fn uops(&mut self, n: u64) {
        self.uops += n;
    }

    #[inline]
    fn read(&mut self, addr: u64, len: u32) {
        let served = self.caches.data_access(addr, len);
        self.stall_for(served);
    }

    #[inline]
    fn write(&mut self, addr: u64, len: u32) {
        // Write-allocate; store buffers hide most write latency.
        let served = self.caches.data_access(addr, len);
        if matches!(served, ServedBy::Memory) {
            self.stall_cycles += 30;
        }
    }

    #[inline]
    fn branch(&mut self, site: u64, kind: BranchKind, taken: bool, target: u64) {
        self.branches.observe(site, kind, taken, target);
        self.uops += 1; // the branch instruction itself
    }

    #[inline]
    fn check_skipped(&mut self) {
        self.checks_skipped += 1;
    }

    fn perf_counters(&self) -> Option<obs::trace::SpanCounters> {
        Some(self.counters().into())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_derive_ratios() {
        let c = Counters {
            instructions: 400,
            cycles: 200,
            branches: 50,
            branch_misses: 5,
            cache_references: 100,
            cache_misses: 10,
            ..Counters::default()
        };
        assert!((c.ipc() - 2.0).abs() < 1e-9);
        assert!((c.branch_miss_ratio() - 0.1).abs() < 1e-9);
        assert!((c.cache_miss_ratio() - 0.1).abs() < 1e-9);
    }

    #[test]
    fn delta_and_accumulate_invert() {
        let mut sim = ArchSim::new();
        sim.uops(100);
        sim.read(0x8000_0000, 8);
        let before = sim.counters();
        sim.uops(50);
        sim.branch(0x40, BranchKind::Cond, true, 0x80);
        let after = sim.counters();
        let delta = after.delta_since(&before);
        assert_eq!(delta.instructions, 51); // 50 uops + the branch
        assert_eq!(delta.branches, 1);
        let mut rebuilt = before;
        rebuilt.accumulate(&delta);
        assert_eq!(rebuilt, after);
    }

    #[test]
    fn mpki_derivations_match_by_hand() {
        let c = Counters {
            instructions: 2_000,
            branch_misses: 4,
            l1d_misses: 10,
            l1i_misses: 2,
            cache_misses: 6,
            ..Counters::default()
        };
        assert!((c.branch_mpki() - 2.0).abs() < 1e-9);
        assert!((c.l1d_mpki() - 5.0).abs() < 1e-9);
        assert!((c.l1i_mpki() - 1.0).abs() < 1e-9);
        assert!((c.llc_mpki() - 3.0).abs() < 1e-9);
        assert_eq!(Counters::default().branch_mpki(), 0.0);
    }

    #[test]
    fn span_counters_round_trip() {
        let mut sim = ArchSim::new();
        sim.uops(7);
        sim.read(0x8000_0000, 4);
        let c = sim.counters();
        let span: obs::trace::SpanCounters = c.into();
        assert_eq!(Counters::from(span), c);
        assert_eq!(sim.perf_counters(), Some(span));
    }

    #[test]
    fn mispredicts_cost_cycles() {
        let mut a = ArchSim::new();
        let mut b = ArchSim::new();
        let mut rng: u64 = 0x9E3779B97F4A7C15;
        for _ in 0..1000u64 {
            a.uops(1);
            b.uops(1);
            a.branch(0x40, BranchKind::Cond, true, 0x80); // predictable
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            b.branch(0x40, BranchKind::Cond, rng & 1 == 0, 0x80); // not
        }
        assert!(b.counters().cycles > a.counters().cycles);
        assert!(b.counters().ipc() < a.counters().ipc());
    }

    #[test]
    fn memory_traffic_costs_cycles() {
        let mut hot = ArchSim::new();
        let mut cold = ArchSim::new();
        for i in 0..10_000u64 {
            hot.uops(1);
            cold.uops(1);
            hot.read(0x8000_0000, 8); // same line every time
            cold.read(0x8000_0000 + i * 4096, 8); // new page every time
        }
        assert!(cold.counters().cycles > hot.counters().cycles);
        assert!(cold.counters().cache_misses > hot.counters().cache_misses);
    }

    #[test]
    fn profiled_engine_run_produces_sane_counters() {
        use engines::{Engine, EngineKind};
        use wasm_core::types::Value;
        let src = r#"
            export fn test() -> i32 {
                let s: i32 = 0;
                for (let i: i32 = 0; i < 2000; i += 1) {
                    store_i32(4096 + (i % 64) * 4, i);
                    s += load_i32(4096 + (i % 64) * 4);
                }
                return s;
            }
        "#;
        let bytes = wacc::compile_to_bytes(src, wacc::OptLevel::O2).unwrap();
        let mut per_engine = Vec::new();
        for kind in EngineKind::all() {
            let compiled = Engine::new(kind).compile(&bytes).unwrap();
            let mut inst = compiled
                .instantiate(&wasi_rt::imports(), Box::new(wasi_rt::WasiCtx::new()))
                .unwrap();
            let mut sim = ArchSim::new();
            let out = inst.invoke_profiled("test", &[], &mut sim).unwrap();
            assert!(matches!(out, Some(Value::I32(_))));
            per_engine.push((kind, sim.counters()));
        }
        // Interpreters retire far more µops than compiled tiers.
        let get = |k: EngineKind| {
            per_engine
                .iter()
                .find(|(kind, _)| *kind == k)
                .expect("present")
                .1
        };
        let wamr = get(EngineKind::Wamr);
        let wasm3 = get(EngineKind::Wasm3);
        let wasmtime = get(EngineKind::Wasmtime);
        assert!(wamr.instructions > 2 * wasmtime.instructions);
        assert!(wasm3.instructions > wasmtime.instructions);
        assert!(wamr.instructions > wasm3.instructions, "classic > threaded");
        // Interpreters take many more indirect (dispatch) branch misses.
        assert!(wasm3.branch_misses > wasmtime.branch_misses);
        // Everyone retires work at a plausible IPC.
        for (kind, c) in &per_engine {
            assert!(c.ipc() > 0.2 && c.ipc() < 4.0, "{kind}: IPC {}", c.ipc());
        }
    }
}
