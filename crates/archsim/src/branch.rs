//! Branch prediction simulation: a gshare direction predictor, a BTB for
//! direct branches, a four-component ITTAGE predictor for indirect
//! branches (geometric target-path histories, tagged tables, longest
//! matching history provides), and a return-address stack.

use engines::profiler::BranchKind;

/// Statistics from the branch predictor.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BranchStats {
    /// Retired branch instructions.
    pub branches: u64,
    /// Mispredictions (direction or target).
    pub misses: u64,
}

impl BranchStats {
    /// Misprediction ratio in `[0, 1]`.
    pub fn miss_ratio(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            self.misses as f64 / self.branches as f64
        }
    }
}

const GSHARE_BITS: u32 = 13;
const BTB_BITS: u32 = 14;
const RAS_DEPTH: usize = 16;
/// Index bits per tagged indirect table.
const ITT_BITS: u32 = 12;
/// Per-table history shifts: each table folds a rolling target-path hash
/// `h = (h << shift) ^ hash(target)`, so a shift of `s` retains roughly the
/// last `64 / s` targets — a geometric history series (4, 8, 16, 32), as
/// in ITTAGE.
const ITT_SHIFTS: [u32; 4] = [16, 8, 4, 2];

/// A tagged indirect-target entry.
#[derive(Debug, Clone, Copy)]
struct ItEntry {
    tag: u16,
    target: u64,
    /// Replacement hysteresis: a mispredicting entry must decay before its
    /// target is displaced.
    conf: u8,
}

const EMPTY_IT: ItEntry = ItEntry { tag: u16::MAX, target: 0, conf: 0 };

/// The branch prediction unit.
#[derive(Debug, Clone)]
pub struct BranchPredictor {
    /// 2-bit saturating counters indexed by `pc ⊕ history`.
    counters: Vec<u8>,
    history: u64,
    /// Direct-mapped BTB: predicted target per site (direct branches).
    btb: Vec<(u64, u64)>,
    /// ITTAGE base component: site-indexed target table.
    itb: Vec<(u64, u64)>,
    /// ITTAGE tagged components, shortest history first.
    itt: Vec<Vec<ItEntry>>,
    /// Rolling target-path histories, one per tagged component.
    ihistory: [u64; ITT_SHIFTS.len()],
    /// Return-address stack.
    ras: Vec<u64>,
    /// Statistics.
    pub stats: BranchStats,
}

impl Default for BranchPredictor {
    fn default() -> Self {
        BranchPredictor::new()
    }
}

impl BranchPredictor {
    /// Creates a predictor with cleared state.
    pub fn new() -> BranchPredictor {
        BranchPredictor {
            counters: vec![1; 1 << GSHARE_BITS], // weakly not-taken
            history: 0,
            btb: vec![(u64::MAX, 0); 1 << BTB_BITS],
            itb: vec![(u64::MAX, 0); 1 << BTB_BITS],
            itt: vec![vec![EMPTY_IT; 1 << ITT_BITS]; ITT_SHIFTS.len()],
            ihistory: [0; ITT_SHIFTS.len()],
            ras: Vec::with_capacity(RAS_DEPTH),
            stats: BranchStats::default(),
        }
    }

    /// Observes a branch; returns `true` if it was mispredicted.
    pub fn observe(&mut self, site: u64, kind: BranchKind, taken: bool, target: u64) -> bool {
        self.stats.branches += 1;
        let missed = match kind {
            BranchKind::Cond => {
                let idx =
                    (((site >> 2) ^ self.history) & ((1 << GSHARE_BITS) - 1) as u64) as usize;
                let ctr = self.counters[idx];
                let predicted_taken = ctr >= 2;
                if taken && ctr < 3 {
                    self.counters[idx] = ctr + 1;
                } else if !taken && ctr > 0 {
                    self.counters[idx] = ctr - 1;
                }
                self.history = (self.history << 1) | taken as u64;
                let mut missed = predicted_taken != taken;
                // Direction correct and taken: the target must also be known.
                if !missed && taken {
                    missed = !self.btb_check_update(site, target);
                }
                missed
            }
            BranchKind::Uncond => !self.btb_check_update(site, target),
            BranchKind::Indirect | BranchKind::IndirectCall => {
                let hit = self.indirect_check_update(site, target);
                if kind == BranchKind::IndirectCall {
                    self.push_ras(site + 1);
                }
                !hit
            }
            BranchKind::Call => {
                self.push_ras(site + 1);
                !self.btb_check_update(site, target)
            }
            BranchKind::Ret => {
                // A return predicted by the RAS: a miss only when the stack
                // has underflowed (deep call chains).
                let hit = self.ras.pop().is_some();
                !hit
            }
        };
        if missed {
            self.stats.misses += 1;
        }
        missed
    }

    fn push_ras(&mut self, ret_addr: u64) {
        if self.ras.len() == RAS_DEPTH {
            self.ras.remove(0);
        }
        self.ras.push(ret_addr);
    }

    /// Indirect-target prediction, ITTAGE-style: tagged tables indexed by
    /// site XOR geometric-length target-path histories, longest matching
    /// history providing the prediction, with a site-indexed base table as
    /// fallback. This is what makes an interpreter's central dispatch
    /// branch largely predictable on modern cores — the last few handler
    /// addresses identify the position in the bytecode stream, so a
    /// repeating dispatch sequence (a loop body) predicts near-perfectly
    /// while novel or data-dependent sequences miss.
    fn indirect_check_update(&mut self, site: u64, target: u64) -> bool {
        // Find the provider: the longest-history component whose tag hits.
        let mut provider: Option<(usize, usize)> = None; // (component, index)
        for k in (0..ITT_SHIFTS.len()).rev() {
            let idx = self.itt_index(k, site);
            if self.itt[k][idx].tag == Self::itt_tag(self.ihistory[k], site) {
                provider = Some((k, idx));
                break;
            }
        }

        let hit = match provider {
            Some((k, idx)) => {
                let e = &mut self.itt[k][idx];
                if e.target == target {
                    e.conf = (e.conf + 1).min(3);
                    true
                } else {
                    if e.conf > 0 {
                        e.conf -= 1;
                    } else {
                        e.target = target;
                    }
                    false
                }
            }
            None => {
                // Base component: plain site-indexed target.
                let idx = ((site >> 2) & ((1 << BTB_BITS) - 1) as u64) as usize;
                let (tag, predicted) = self.itb[idx];
                let hit = tag == site && predicted == target;
                self.itb[idx] = (site, target);
                hit
            }
        };

        // On a misprediction, allocate the path into the next-longer
        // component so a recurring context graduates to longer history.
        if !hit {
            let next = provider.map_or(0, |(k, _)| k + 1);
            if next < ITT_SHIFTS.len() {
                let idx = self.itt_index(next, site);
                let e = &mut self.itt[next][idx];
                // Confident entries resist displacement (useful-bit analogue).
                if e.conf == 0 {
                    *e = ItEntry {
                        tag: Self::itt_tag(self.ihistory[next], site),
                        target,
                        conf: 0,
                    };
                } else {
                    e.conf -= 1;
                }
            }
        }

        // Fold the taken target into every path history (the low bits of
        // the handler address identify the opcode).
        for (k, shift) in ITT_SHIFTS.iter().enumerate() {
            self.ihistory[k] = (self.ihistory[k] << shift) ^ (target >> 6);
        }
        hit
    }

    /// Index into tagged component `k` for this site under its history.
    fn itt_index(&self, k: usize, site: u64) -> usize {
        let h = self.ihistory[k] ^ (site >> 2);
        (Self::fold(h, ITT_BITS) & ((1 << ITT_BITS) - 1) as u64) as usize
    }

    /// Entry tag: a different folding of the same (history, site) pair, so
    /// index aliasing is caught by a tag mismatch.
    fn itt_tag(history: u64, site: u64) -> u16 {
        Self::fold(history.rotate_left(21) ^ (site >> 2).rotate_left(7), 16) as u16
    }

    /// XOR-folds a 64-bit value down to `bits` bits.
    fn fold(mut v: u64, bits: u32) -> u64 {
        let mask = (1u64 << bits) - 1;
        let mut out = 0u64;
        while v != 0 {
            out ^= v & mask;
            v >>= bits;
        }
        out
    }

    /// Checks the BTB for `site → target` and installs the new target.
    /// Returns `true` on a correct prediction.
    fn btb_check_update(&mut self, site: u64, target: u64) -> bool {
        let idx = ((site >> 2) & ((1 << BTB_BITS) - 1) as u64) as usize;
        let (tag, predicted) = self.btb[idx];
        let hit = tag == site && predicted == target;
        self.btb[idx] = (site, target);
        hit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_a_steady_loop_branch() {
        let mut bp = BranchPredictor::new();
        let mut late_misses = 0;
        for i in 0..1000 {
            let missed = bp.observe(0x100, BranchKind::Cond, true, 0x80);
            if i > 30 && missed {
                late_misses += 1;
            }
        }
        assert_eq!(late_misses, 0, "a monomorphic loop branch should saturate");
    }

    #[test]
    fn alternating_pattern_with_short_history_misses_sometimes() {
        let mut bp = BranchPredictor::new();
        let mut misses = 0;
        let mut rng: u64 = 0x9E3779B97F4A7C15;
        for _ in 0..2000 {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            let taken = rng & 1 == 0;
            if bp.observe(0x200, BranchKind::Cond, taken, 0x300) {
                misses += 1;
            }
        }
        assert!(misses > 400, "random directions should miss often: {misses}");
    }

    #[test]
    fn polymorphic_indirect_misses_monomorphic_hits() {
        let mut bp = BranchPredictor::new();
        // Monomorphic indirect branch: learns the target.
        for _ in 0..10 {
            bp.observe(0x400, BranchKind::Indirect, true, 0x900);
        }
        assert!(!bp.observe(0x400, BranchKind::Indirect, true, 0x900));
        // Alternating targets: the history-indexed table learns the
        // pattern after warmup (real indirect predictors do).
        let mut late_misses = 0;
        for i in 0..200 {
            let target = if i % 2 == 0 { 0xA00 } else { 0xB00 };
            let missed = bp.observe(0x500, BranchKind::Indirect, true, target);
            if i > 50 && missed {
                late_misses += 1;
            }
        }
        assert!(late_misses <= 5, "alternating dispatch should be learned: {late_misses}");
        // Random targets stay unpredictable.
        let mut rng: u64 = 0x243F6A8885A308D3;
        let mut misses = 0;
        for _ in 0..500 {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            let target = 0x1000 + (rng % 64) * 0x40;
            if bp.observe(0x600, BranchKind::Indirect, true, target) {
                misses += 1;
            }
        }
        assert!(misses > 250, "random indirect targets should miss: {misses}");
    }

    #[test]
    fn repeating_dispatch_sequence_is_learned() {
        // An interpreter running a loop: one dispatch site cycling through
        // a long fixed sequence of handler targets. After the first
        // iterations the tagged long-history components should predict it
        // nearly perfectly — the paper's Table 5 finding.
        let mut bp = BranchPredictor::new();
        let body: Vec<u64> = (0..100u64).map(|i| 0x10000 + (i * 37 % 64) * 0x40).collect();
        let mut late_misses = 0;
        let mut late_total = 0;
        for iter in 0..60 {
            for &t in &body {
                let missed = bp.observe(0x4000, BranchKind::Indirect, true, t);
                if iter >= 20 {
                    late_total += 1;
                    if missed {
                        late_misses += 1;
                    }
                }
            }
        }
        let ratio = late_misses as f64 / late_total as f64;
        assert!(
            ratio < 0.03,
            "steady dispatch stream should be near-perfectly predicted, got {:.1}%",
            ratio * 100.0
        );
    }

    #[test]
    fn calls_and_returns_pair_through_ras() {
        let mut bp = BranchPredictor::new();
        for depth in 0..8u64 {
            bp.observe(0x600 + depth * 8, BranchKind::Call, true, 0x1000);
        }
        let mut ret_misses = 0;
        for depth in (0..8u64).rev() {
            if bp.observe(0x2000 + depth, BranchKind::Ret, true, 0x600) {
                ret_misses += 1;
            }
        }
        assert_eq!(ret_misses, 0);
        // Underflow: one more return than calls.
        assert!(bp.observe(0x2100, BranchKind::Ret, true, 0));
    }

    #[test]
    fn stats_accumulate() {
        let mut bp = BranchPredictor::new();
        bp.observe(0, BranchKind::Cond, true, 64);
        bp.observe(0, BranchKind::Cond, true, 64);
        assert_eq!(bp.stats.branches, 2);
        assert!(bp.stats.miss_ratio() > 0.0);
    }
}
