//! Property tests for the architectural models: the set-associative cache
//! must agree with a brute-force reference model, and counters must stay
//! internally consistent.

use archsim::{ArchSim, Cache};
use engines::profiler::{BranchKind, Profiler};
use proptest::prelude::*;

/// A brute-force fully-explicit model of a set-associative LRU cache.
struct RefCache {
    sets: Vec<Vec<u64>>, // per set: lines in LRU order (front = MRU)
    ways: usize,
    set_mask: u64,
}

impl RefCache {
    fn new(size: usize, ways: usize) -> RefCache {
        let sets = size / 64 / ways;
        RefCache {
            sets: vec![Vec::new(); sets],
            ways,
            set_mask: (sets - 1) as u64,
        }
    }

    fn access(&mut self, addr: u64) -> bool {
        let line = addr >> 6;
        let set = (line & self.set_mask) as usize;
        let s = &mut self.sets[set];
        if let Some(pos) = s.iter().position(|l| *l == line) {
            let l = s.remove(pos);
            s.insert(0, l);
            true
        } else {
            s.insert(0, line);
            s.truncate(self.ways);
            false
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The production cache and the reference model agree on every access
    /// of a random trace.
    #[test]
    fn cache_matches_reference_model(
        addrs in proptest::collection::vec(0u64..(1 << 18), 1..2000)
    ) {
        let mut real = Cache::new(4096, 4);
        let mut reference = RefCache::new(4096, 4);
        for addr in addrs {
            let a = real.access(addr & !63);
            let b = reference.access(addr & !63);
            prop_assert_eq!(a, b, "divergence at {:#x}", addr);
        }
    }

    /// Counters are internally consistent for arbitrary event streams.
    #[test]
    fn counters_are_consistent(
        events in proptest::collection::vec((0u8..4, any::<u64>(), 1u32..64), 0..500)
    ) {
        let mut sim = ArchSim::new();
        let mut branches = 0u64;
        for (kind, addr, len) in events {
            match kind {
                0 => sim.read(addr, len),
                1 => sim.write(addr, len),
                2 => sim.fetch(addr, len),
                _ => {
                    sim.branch(addr, BranchKind::Cond, addr % 2 == 0, addr ^ 0x40);
                    branches += 1;
                }
            }
            sim.uops(1);
        }
        let c = sim.counters();
        prop_assert_eq!(c.branches, branches);
        prop_assert!(c.branch_misses <= c.branches);
        prop_assert!(c.cache_misses <= c.cache_references);
        prop_assert!(c.l1d_misses <= c.l1d_accesses);
        prop_assert!(c.l1i_misses <= c.l1i_accesses);
        prop_assert!(c.cycles >= c.instructions / 4);
    }
}
