//! Native mirrors of the 30 PolyBench kernels, matching the WaCC
//! programs' arithmetic operation-for-operation.

use crate::common::{fmix, mix, Rng};

#[inline]
fn remu(a: i32, b: i32) -> i32 {
    (a as u32 % b as u32) as i32
}

/// gemm
pub fn gemm(n: i32) -> i32 {
    let nn = n as usize;
    let nf = n as f64;
    let mut a = vec![0f64; nn * nn];
    let mut b = vec![0f64; nn * nn];
    let mut c = vec![0f64; nn * nn];
    for i in 0..nn {
        for j in 0..nn {
            let (iw, jw) = (i as i32, j as i32);
            a[i * nn + j] = remu(iw.wrapping_mul(jw) + 1, n) as f64 / nf;
            b[i * nn + j] = remu(iw.wrapping_mul(jw) + 2, n) as f64 / nf;
            c[i * nn + j] = remu(iw.wrapping_mul(jw) + 3, n) as f64 / nf;
        }
    }
    let (alpha, beta) = (1.5, 1.2);
    for i in 0..nn {
        for j in 0..nn {
            c[i * nn + j] *= beta;
        }
        for k in 0..nn {
            let aik = alpha * a[i * nn + k];
            for j in 0..nn {
                c[i * nn + j] += aik * b[k * nn + j];
            }
        }
    }
    let mut h = 0i32;
    for i in 0..nn {
        h = fmix(h, c[i * nn + remu(i as i32 * 7, n) as usize]);
    }
    let mut s = 0f64;
    for v in &c {
        s += v;
    }
    fmix(h, s)
}

/// 2mm
pub fn two_mm(n: i32) -> i32 {
    let nn = n as usize;
    let nf = n as f64;
    let mut a = vec![0f64; nn * nn];
    let mut b = vec![0f64; nn * nn];
    let mut c = vec![0f64; nn * nn];
    let mut d = vec![0f64; nn * nn];
    let mut tmp = vec![0f64; nn * nn];
    for i in 0..nn as i32 {
        for j in 0..nn as i32 {
            let p = (i as usize) * nn + j as usize;
            a[p] = remu(i.wrapping_mul(j) + 1, n) as f64 / nf;
            b[p] = remu(i.wrapping_mul(j + 1), n) as f64 / nf;
            c[p] = remu(i.wrapping_mul(j + 3) + 1, n) as f64 / nf;
            d[p] = remu(i.wrapping_mul(j + 2), n) as f64 / nf;
        }
    }
    let (alpha, beta) = (1.5, 1.2);
    for i in 0..nn {
        for j in 0..nn {
            let mut s = 0f64;
            for k in 0..nn {
                s += alpha * a[i * nn + k] * b[k * nn + j];
            }
            tmp[i * nn + j] = s;
        }
    }
    for i in 0..nn {
        for j in 0..nn {
            let mut s = d[i * nn + j] * beta;
            for k in 0..nn {
                s += tmp[i * nn + k] * c[k * nn + j];
            }
            d[i * nn + j] = s;
        }
    }
    let mut s = 0f64;
    for v in &d {
        s += v;
    }
    fmix(0, s)
}

/// 3mm
pub fn three_mm(n: i32) -> i32 {
    let nn = n as usize;
    let nf = n as f64;
    let mut a = vec![0f64; nn * nn];
    let mut b = vec![0f64; nn * nn];
    let mut c = vec![0f64; nn * nn];
    let mut d = vec![0f64; nn * nn];
    for i in 0..nn as i32 {
        for j in 0..nn as i32 {
            let p = (i as usize) * nn + j as usize;
            a[p] = remu(i.wrapping_mul(j) + 1, n) as f64 / nf / 5.0;
            b[p] = remu(i.wrapping_mul(j + 1) + 2, n) as f64 / nf / 5.0;
            c[p] = remu(i.wrapping_mul(j + 3), n) as f64 / nf / 5.0;
            d[p] = remu(i.wrapping_mul(j + 2) + 2, n) as f64 / nf / 5.0;
        }
    }
    let mm = |x: &[f64], y: &[f64]| -> Vec<f64> {
        let mut out = vec![0f64; nn * nn];
        for i in 0..nn {
            for j in 0..nn {
                let mut s = 0f64;
                for k in 0..nn {
                    s += x[i * nn + k] * y[k * nn + j];
                }
                out[i * nn + j] = s;
            }
        }
        out
    };
    let e = mm(&a, &b);
    let f = mm(&c, &d);
    let g = mm(&e, &f);
    let mut s = 0f64;
    for v in &g {
        s += v;
    }
    fmix(0, s)
}

/// atax
pub fn atax(n: i32) -> i32 {
    let nn = n as usize;
    let nf = n as f64;
    let mut a = vec![0f64; nn * nn];
    let mut x = vec![0f64; nn];
    let mut y = vec![0f64; nn];
    for i in 0..nn {
        x[i] = 1.0 + i as f64 / nf;
        for j in 0..nn {
            a[i * nn + j] = remu((i + j) as i32, n) as f64 / (5.0 * nf);
        }
    }
    for i in 0..nn {
        let mut s = 0f64;
        for j in 0..nn {
            s += a[i * nn + j] * x[j];
        }
        for j in 0..nn {
            y[j] += a[i * nn + j] * s;
        }
    }
    let mut h = 0i32;
    for v in &y {
        h = fmix(h, *v);
    }
    h
}

/// bicg
pub fn bicg(n: i32) -> i32 {
    let nn = n as usize;
    let nf = n as f64;
    let mut a = vec![0f64; nn * nn];
    let mut s = vec![0f64; nn];
    let mut q = vec![0f64; nn];
    let mut p = vec![0f64; nn];
    let mut r = vec![0f64; nn];
    for i in 0..nn as i32 {
        p[i as usize] = remu(i, n) as f64 / nf;
        r[i as usize] = remu(i * 3 + 1, n) as f64 / nf;
        for j in 0..nn as i32 {
            a[(i as usize) * nn + j as usize] = remu(i.wrapping_mul(j + 1) + 1, n) as f64 / nf;
        }
    }
    for i in 0..nn {
        let ri = r[i];
        let mut acc = 0f64;
        for j in 0..nn {
            s[j] += ri * a[i * nn + j];
            acc += a[i * nn + j] * p[j];
        }
        q[i] = acc;
    }
    let mut h = 0i32;
    for i in 0..nn {
        h = fmix(h, s[i]);
        h = fmix(h, q[i]);
    }
    h
}

/// mvt
pub fn mvt(n: i32) -> i32 {
    let nn = n as usize;
    let nf = n as f64;
    let mut a = vec![0f64; nn * nn];
    let mut x1 = vec![0f64; nn];
    let mut x2 = vec![0f64; nn];
    let mut y1 = vec![0f64; nn];
    let mut y2 = vec![0f64; nn];
    for i in 0..nn as i32 {
        x1[i as usize] = remu(i, n) as f64 / nf;
        x2[i as usize] = remu(i + 1, n) as f64 / nf;
        y1[i as usize] = remu(i + 3, n) as f64 / nf;
        y2[i as usize] = remu(i + 4, n) as f64 / nf;
        for j in 0..nn as i32 {
            a[(i as usize) * nn + j as usize] = remu(i.wrapping_mul(j), n) as f64 / nf;
        }
    }
    for i in 0..nn {
        let mut s = x1[i];
        for j in 0..nn {
            s += a[i * nn + j] * y1[j];
        }
        x1[i] = s;
    }
    for i in 0..nn {
        let mut s = x2[i];
        for j in 0..nn {
            s += a[j * nn + i] * y2[j];
        }
        x2[i] = s;
    }
    let mut h = 0i32;
    for i in 0..nn {
        h = fmix(h, x1[i]);
        h = fmix(h, x2[i]);
    }
    h
}

/// gesummv
pub fn gesummv(n: i32) -> i32 {
    let nn = n as usize;
    let nf = n as f64;
    let mut a = vec![0f64; nn * nn];
    let mut b = vec![0f64; nn * nn];
    let mut x = vec![0f64; nn];
    let mut y = vec![0f64; nn];
    for i in 0..nn as i32 {
        x[i as usize] = remu(i, n) as f64 / nf;
        for j in 0..nn as i32 {
            let p = (i as usize) * nn + j as usize;
            a[p] = remu(i.wrapping_mul(j) + 1, n) as f64 / nf;
            b[p] = remu(i.wrapping_mul(j) + 2, n) as f64 / nf;
        }
    }
    let (alpha, beta) = (1.5, 1.2);
    for i in 0..nn {
        let (mut t1, mut t2) = (0f64, 0f64);
        for j in 0..nn {
            t1 += a[i * nn + j] * x[j];
            t2 += b[i * nn + j] * x[j];
        }
        y[i] = alpha * t1 + beta * t2;
    }
    let mut h = 0i32;
    for v in &y {
        h = fmix(h, *v);
    }
    h
}

/// gemver
pub fn gemver(n: i32) -> i32 {
    let nn = n as usize;
    let nf = n as f64;
    let mut a = vec![0f64; nn * nn];
    let mut u1 = vec![0f64; nn];
    let mut v1 = vec![0f64; nn];
    let mut u2 = vec![0f64; nn];
    let mut v2 = vec![0f64; nn];
    let mut w = vec![0f64; nn];
    let mut x = vec![0f64; nn];
    let mut y = vec![0f64; nn];
    let mut z = vec![0f64; nn];
    for i in 0..nn as i32 {
        let fi = i as f64;
        u1[i as usize] = fi / nf;
        u2[i as usize] = (fi + 1.0) / nf / 2.0;
        v1[i as usize] = (fi + 2.0) / nf / 4.0;
        v2[i as usize] = (fi + 3.0) / nf / 6.0;
        y[i as usize] = (fi + 4.0) / nf / 8.0;
        z[i as usize] = (fi + 5.0) / nf / 9.0;
        for j in 0..nn as i32 {
            a[(i as usize) * nn + j as usize] = remu(i.wrapping_mul(j), n) as f64 / nf;
        }
    }
    let (alpha, beta) = (1.5, 1.2);
    for i in 0..nn {
        for j in 0..nn {
            a[i * nn + j] = a[i * nn + j] + u1[i] * v1[j] + u2[i] * v2[j];
        }
    }
    for i in 0..nn {
        let mut s = x[i];
        for j in 0..nn {
            s += beta * a[j * nn + i] * y[j];
        }
        x[i] = s;
    }
    for i in 0..nn {
        x[i] += z[i];
    }
    for i in 0..nn {
        let mut s = w[i];
        for j in 0..nn {
            s += alpha * a[i * nn + j] * x[j];
        }
        w[i] = s;
    }
    let mut h = 0i32;
    for v in &w {
        h = fmix(h, *v);
    }
    h
}

/// symm
pub fn symm(n: i32) -> i32 {
    let nn = n as usize;
    let nf = n as f64;
    let mut a = vec![0f64; nn * nn];
    let mut b = vec![0f64; nn * nn];
    let mut c = vec![0f64; nn * nn];
    for i in 0..nn as i32 {
        for j in 0..nn as i32 {
            let (mut lo, mut hi) = (i, j);
            if lo > hi {
                std::mem::swap(&mut lo, &mut hi);
            }
            let p = (i as usize) * nn + j as usize;
            a[p] = remu(lo.wrapping_mul(hi) + 1, n) as f64 / nf;
            b[p] = remu(i + j, n) as f64 / nf;
            c[p] = remu(i * 2 + j, n) as f64 / nf;
        }
    }
    let (alpha, beta) = (1.5, 1.2);
    for i in 0..nn {
        for j in 0..nn {
            let mut temp2 = 0f64;
            for k in 0..i {
                c[k * nn + j] += alpha * b[i * nn + j] * a[i * nn + k];
                temp2 += b[k * nn + j] * a[i * nn + k];
            }
            c[i * nn + j] =
                beta * c[i * nn + j] + alpha * b[i * nn + j] * a[i * nn + i] + alpha * temp2;
        }
    }
    let mut s = 0f64;
    for v in &c {
        s += v;
    }
    fmix(0, s)
}

/// syrk
pub fn syrk(n: i32) -> i32 {
    let nn = n as usize;
    let nf = n as f64;
    let mut a = vec![0f64; nn * nn];
    let mut c = vec![0f64; nn * nn];
    for i in 0..nn as i32 {
        for j in 0..nn as i32 {
            let p = (i as usize) * nn + j as usize;
            a[p] = remu(i.wrapping_mul(j) + 1, n) as f64 / nf;
            c[p] = remu(i + j + 2, n) as f64 / nf;
        }
    }
    let (alpha, beta) = (1.5, 1.2);
    for i in 0..nn {
        for j in 0..=i {
            c[i * nn + j] *= beta;
        }
        for k in 0..nn {
            for j in 0..=i {
                c[i * nn + j] += alpha * a[i * nn + k] * a[j * nn + k];
            }
        }
    }
    let mut s = 0f64;
    for v in &c {
        s += v;
    }
    fmix(0, s)
}

/// syr2k
pub fn syr2k(n: i32) -> i32 {
    let nn = n as usize;
    let nf = n as f64;
    let mut a = vec![0f64; nn * nn];
    let mut b = vec![0f64; nn * nn];
    let mut c = vec![0f64; nn * nn];
    for i in 0..nn as i32 {
        for j in 0..nn as i32 {
            let p = (i as usize) * nn + j as usize;
            a[p] = remu(i.wrapping_mul(j) + 1, n) as f64 / nf;
            b[p] = remu(i.wrapping_mul(j) + 2, n) as f64 / nf;
            c[p] = remu(i + j + 3, n) as f64 / nf;
        }
    }
    let (alpha, beta) = (1.5, 1.2);
    for i in 0..nn {
        for j in 0..=i {
            c[i * nn + j] *= beta;
        }
        for k in 0..nn {
            for j in 0..=i {
                c[i * nn + j] = c[i * nn + j]
                    + a[j * nn + k] * alpha * b[i * nn + k]
                    + b[j * nn + k] * alpha * a[i * nn + k];
            }
        }
    }
    let mut s = 0f64;
    for v in &c {
        s += v;
    }
    fmix(0, s)
}

/// trmm
pub fn trmm(n: i32) -> i32 {
    let nn = n as usize;
    let nf = n as f64;
    let mut a = vec![0f64; nn * nn];
    let mut b = vec![0f64; nn * nn];
    for i in 0..nn as i32 {
        for j in 0..nn as i32 {
            let p = (i as usize) * nn + j as usize;
            a[p] = remu(i + j, n) as f64 / nf;
            b[p] = remu(n + i - j, n) as f64 / nf;
        }
    }
    let alpha = 1.5;
    for i in 0..nn {
        for j in 0..nn {
            let mut s = b[i * nn + j];
            for k in i + 1..nn {
                s += a[k * nn + i] * b[k * nn + j];
            }
            b[i * nn + j] = alpha * s;
        }
    }
    let mut s = 0f64;
    for v in &b {
        s += v;
    }
    fmix(0, s)
}

/// correlation
pub fn correlation(n: i32) -> i32 {
    let nn = n as usize;
    let float_n = n as f64;
    let mut data = vec![0f64; nn * nn];
    let mut corr = vec![0f64; nn * nn];
    let mut mean = vec![0f64; nn];
    let mut stddev = vec![0f64; nn];
    for i in 0..nn {
        for j in 0..nn {
            data[i * nn + j] = ((i as i32).wrapping_mul(j as i32)) as f64 / float_n + i as f64;
        }
    }
    let eps = 0.1;
    for j in 0..nn {
        let mut m = 0f64;
        for i in 0..nn {
            m += data[i * nn + j];
        }
        m /= float_n;
        mean[j] = m;
        let mut sd = 0f64;
        for i in 0..nn {
            let d = data[i * nn + j] - m;
            sd += d * d;
        }
        sd = (sd / float_n).sqrt();
        if sd <= eps {
            sd = 1.0;
        }
        stddev[j] = sd;
    }
    for i in 0..nn {
        for j in 0..nn {
            let v = data[i * nn + j] - mean[j];
            data[i * nn + j] = v / (float_n.sqrt() * stddev[j]);
        }
    }
    for i in 0..nn - 1 {
        corr[i * nn + i] = 1.0;
        for j in i + 1..nn {
            let mut s = 0f64;
            for k in 0..nn {
                s += data[k * nn + i] * data[k * nn + j];
            }
            corr[i * nn + j] = s;
            corr[j * nn + i] = s;
        }
    }
    corr[(nn - 1) * nn + (nn - 1)] = 1.0;
    let mut s = 0f64;
    for v in &corr {
        s += v;
    }
    fmix(0, s)
}

/// covariance
pub fn covariance(n: i32) -> i32 {
    let nn = n as usize;
    let float_n = n as f64;
    let mut data = vec![0f64; nn * nn];
    let mut cov = vec![0f64; nn * nn];
    let mut mean = vec![0f64; nn];
    for i in 0..nn {
        for j in 0..nn {
            data[i * nn + j] = ((i as i32).wrapping_mul(j as i32)) as f64 / float_n;
        }
    }
    for j in 0..nn {
        let mut m = 0f64;
        for i in 0..nn {
            m += data[i * nn + j];
        }
        mean[j] = m / float_n;
    }
    for i in 0..nn {
        for j in 0..nn {
            data[i * nn + j] -= mean[j];
        }
    }
    for i in 0..nn {
        for j in i..nn {
            let mut s = 0f64;
            for k in 0..nn {
                s += data[k * nn + i] * data[k * nn + j];
            }
            s /= float_n - 1.0;
            cov[i * nn + j] = s;
            cov[j * nn + i] = s;
        }
    }
    let mut s = 0f64;
    for v in &cov {
        s += v;
    }
    fmix(0, s)
}

/// doitgen
pub fn doitgen(n: i32) -> i32 {
    let nn = n as usize;
    let nf = n as f64;
    let mut a = vec![0f64; nn * nn * nn];
    let mut c4 = vec![0f64; nn * nn];
    let mut sum = vec![0f64; nn];
    for r in 0..nn as i32 {
        for q in 0..nn as i32 {
            for s in 0..nn as i32 {
                a[((r as usize) * nn + q as usize) * nn + s as usize] =
                    remu(r.wrapping_mul(q) + s, n) as f64 / nf;
            }
        }
    }
    for s in 0..nn as i32 {
        for p in 0..nn as i32 {
            c4[(s as usize) * nn + p as usize] = remu(s.wrapping_mul(p), n) as f64 / nf;
        }
    }
    for r in 0..nn {
        for q in 0..nn {
            for p in 0..nn {
                let mut acc = 0f64;
                for s in 0..nn {
                    acc += a[(r * nn + q) * nn + s] * c4[s * nn + p];
                }
                sum[p] = acc;
            }
            for p in 0..nn {
                a[(r * nn + q) * nn + p] = sum[p];
            }
        }
    }
    let mut s = 0f64;
    for v in &a {
        s += v;
    }
    fmix(0, s)
}

/// trisolv
pub fn trisolv(n: i32) -> i32 {
    let nn = n as usize;
    let nf = n as f64;
    let mut l = vec![0f64; nn * nn];
    let mut x = vec![-999.0f64; nn];
    let mut b = vec![0f64; nn];
    for i in 0..nn {
        b[i] = i as f64;
        for j in 0..=i {
            l[i * nn + j] = (i + nn - j + 1) as f64 * 2.0 / nf;
        }
    }
    for i in 0..nn {
        let mut s = b[i];
        for j in 0..i {
            s -= l[i * nn + j] * x[j];
        }
        x[i] = s / l[i * nn + i];
    }
    let mut h = 0i32;
    for v in &x {
        h = fmix(h, *v);
    }
    h
}

/// cholesky
pub fn cholesky(n: i32) -> i32 {
    let nn = n as usize;
    let nf = n as f64;
    let mut a = vec![0f64; nn * nn];
    let mut b = vec![0f64; nn * nn];
    for i in 0..nn as i32 {
        for j in 0..nn as i32 {
            b[(i as usize) * nn + j as usize] = remu(i.wrapping_mul(j) + 1, n) as f64 / nf;
        }
    }
    for i in 0..nn {
        for j in 0..nn {
            let mut s = 0f64;
            for k in 0..nn {
                s += b[i * nn + k] * b[j * nn + k];
            }
            if i == j {
                s += nf;
            }
            a[i * nn + j] = s;
        }
    }
    for i in 0..nn {
        for j in 0..i {
            let mut s = a[i * nn + j];
            for k in 0..j {
                s -= a[i * nn + k] * a[j * nn + k];
            }
            a[i * nn + j] = s / a[j * nn + j];
        }
        let mut s = a[i * nn + i];
        for k in 0..i {
            let v = a[i * nn + k];
            s -= v * v;
        }
        a[i * nn + i] = s.sqrt();
    }
    let mut h = 0i32;
    for i in 0..nn {
        for j in 0..=i {
            if (i + j) as u32 % 7 == 0 {
                h = fmix(h, a[i * nn + j]);
            }
        }
    }
    h
}

/// durbin
pub fn durbin(n: i32) -> i32 {
    let nn = n as usize;
    let mut r = vec![0f64; nn];
    let mut y = vec![0f64; nn];
    let mut z = vec![0f64; nn];
    for i in 0..nn {
        r[i] = (nn + 1 - i) as f64 / (nn * 2) as f64;
    }
    y[0] = -r[0];
    let mut beta = 1.0f64;
    let mut alpha = -r[0];
    for k in 1..nn {
        beta = (1.0 - alpha * alpha) * beta;
        let mut s = 0f64;
        for i in 0..k {
            s += r[k - i - 1] * y[i];
        }
        alpha = -(r[k] + s) / beta;
        for i in 0..k {
            z[i] = y[i] + alpha * y[k - i - 1];
        }
        y[..k].copy_from_slice(&z[..k]);
        y[k] = alpha;
    }
    let mut h = 0i32;
    for v in &y {
        h = fmix(h, *v);
    }
    h
}

/// gramschmidt
pub fn gramschmidt(n: i32) -> i32 {
    let nn = n as usize;
    let nf = n as f64;
    let mut a = vec![0f64; nn * nn];
    let mut r = vec![0f64; nn * nn];
    let mut q = vec![0f64; nn * nn];
    for i in 0..nn as i32 {
        for j in 0..nn as i32 {
            a[(i as usize) * nn + j as usize] =
                (remu(i.wrapping_mul(j), n) as f64 / nf + 1.0) * 10.0;
        }
    }
    for k in 0..nn {
        let mut nrm = 0f64;
        for i in 0..nn {
            let v = a[i * nn + k];
            nrm += v * v;
        }
        r[k * nn + k] = nrm.sqrt();
        for i in 0..nn {
            q[i * nn + k] = a[i * nn + k] / r[k * nn + k];
        }
        for j in k + 1..nn {
            let mut s = 0f64;
            for i in 0..nn {
                s += q[i * nn + k] * a[i * nn + j];
            }
            r[k * nn + j] = s;
            for i in 0..nn {
                a[i * nn + j] -= q[i * nn + k] * s;
            }
        }
    }
    let mut s = 0f64;
    for i in 0..nn * nn {
        s = s + r[i] + q[i];
    }
    fmix(0, s)
}

fn lu_style_input(n: i32) -> Vec<f64> {
    let nn = n as usize;
    let nf = n as f64;
    let mut a = vec![0f64; nn * nn];
    for i in 0..nn as i32 {
        for j in 0..nn as i32 {
            let mut v = if j <= i {
                0i32.wrapping_sub(remu(i + j, n)) as f64 / nf + 1.0
            } else {
                0.0
            };
            if i == j {
                v = 1.0;
            }
            a[(i as usize) * nn + j as usize] = v;
        }
    }
    let mut b = vec![0f64; nn * nn];
    for i in 0..nn {
        for j in 0..nn {
            let mut s = 0f64;
            for k in 0..nn {
                s += a[i * nn + k] * a[j * nn + k];
            }
            b[i * nn + j] = s;
        }
    }
    b
}

fn lu_decompose(a: &mut [f64], nn: usize) {
    for i in 0..nn {
        for j in 0..i {
            let mut s = a[i * nn + j];
            for k in 0..j {
                s -= a[i * nn + k] * a[k * nn + j];
            }
            a[i * nn + j] = s / a[j * nn + j];
        }
        for j in i..nn {
            let mut s = a[i * nn + j];
            for k in 0..i {
                s -= a[i * nn + k] * a[k * nn + j];
            }
            a[i * nn + j] = s;
        }
    }
}

/// lu
pub fn lu(n: i32) -> i32 {
    let nn = n as usize;
    let mut a = lu_style_input(n);
    lu_decompose(&mut a, nn);
    let mut s = 0f64;
    for v in &a {
        s += v;
    }
    fmix(0, s)
}

/// ludcmp
pub fn ludcmp(n: i32) -> i32 {
    let nn = n as usize;
    let nf = n as f64;
    let mut b = vec![0f64; nn];
    for (i, bi) in b.iter_mut().enumerate() {
        *bi = (i + 1) as f64 / nf / 2.0 + 4.0;
    }
    let mut a = lu_style_input(n);
    lu_decompose(&mut a, nn);
    let mut y = vec![0f64; nn];
    let mut x = vec![0f64; nn];
    for i in 0..nn {
        let mut s = b[i];
        for j in 0..i {
            s -= a[i * nn + j] * y[j];
        }
        y[i] = s;
    }
    for i in (0..nn).rev() {
        let mut s = y[i];
        for j in i + 1..nn {
            s -= a[i * nn + j] * x[j];
        }
        x[i] = s / a[i * nn + i];
    }
    let mut h = 0i32;
    for v in &x {
        h = fmix(h, *v);
    }
    h
}

/// floyd-warshall
pub fn floyd_warshall(n: i32) -> i32 {
    let nn = n as usize;
    let mut path = vec![0i32; nn * nn];
    for i in 0..nn as i32 {
        for j in 0..nn as i32 {
            let mut w = remu(i.wrapping_mul(j), 7) + 1;
            if remu(i + j, 13) == 0 || remu(i, 7) == 0 || remu(j, 11) == 0 {
                w = 999;
            }
            if i == j {
                w = 0;
            }
            path[(i as usize) * nn + j as usize] = w;
        }
    }
    for k in 0..nn {
        for i in 0..nn {
            let ik = path[i * nn + k];
            for j in 0..nn {
                let via = ik.wrapping_add(path[k * nn + j]);
                if via < path[i * nn + j] {
                    path[i * nn + j] = via;
                }
            }
        }
    }
    let mut h = 0i32;
    for v in &path {
        h = mix(h, *v);
    }
    h
}

/// nussinov
pub fn nussinov(n: i32) -> i32 {
    let nn = n as usize;
    let mut rng = Rng::new(73);
    let seq: Vec<u8> = (0..nn).map(|_| rng.below(4) as u8).collect();
    let mut table = vec![0i32; nn * nn];
    for i in (0..nn as i32).rev() {
        for j in i + 1..nn as i32 {
            let (iu, ju) = (i as usize, j as usize);
            let mut best = table[iu * nn + ju - 1];
            if i + 1 < nn as i32 {
                best = best.max(table[(iu + 1) * nn + ju]);
            }
            if i + 1 < nn as i32 && j - 1 >= 0 {
                let pair = (seq[iu] as i32 + seq[ju] as i32 == 3) as i32;
                if i < j - 1 {
                    best = best.max(table[(iu + 1) * nn + ju - 1] + pair);
                } else {
                    best = best.max(pair);
                }
            }
            for k in i + 1..j {
                best = best.max(table[iu * nn + k as usize] + table[(k as usize + 1) * nn + ju]);
            }
            table[iu * nn + ju] = best;
        }
    }
    let mut h = mix(0, table[nn - 1]);
    for i in 0..nn {
        h = mix(h, table[i * nn + nn - 1]);
    }
    h
}

/// jacobi-1d
pub fn jacobi_1d(n: i32) -> i32 {
    let nn = n as usize;
    let nf = n as f64;
    let mut a: Vec<f64> = (0..nn).map(|i| (i + 2) as f64 / nf).collect();
    let mut b: Vec<f64> = (0..nn).map(|i| (i + 3) as f64 / nf).collect();
    let tsteps = n / 2;
    for _ in 0..tsteps {
        for i in 1..nn - 1 {
            b[i] = 0.33333 * (a[i - 1] + a[i] + a[i + 1]);
        }
        for i in 1..nn - 1 {
            a[i] = 0.33333 * (b[i - 1] + b[i] + b[i + 1]);
        }
    }
    let mut h = 0i32;
    for v in &a {
        h = fmix(h, *v);
    }
    h
}

/// jacobi-2d
pub fn jacobi_2d(n: i32) -> i32 {
    let nn = n as usize;
    let nf = n as f64;
    let mut a = vec![0f64; nn * nn];
    let mut b = vec![0f64; nn * nn];
    for i in 0..nn {
        for j in 0..nn {
            a[i * nn + j] = (i as f64 * (j + 2) as f64 + 2.0) / nf;
            b[i * nn + j] = (i as f64 * (j + 3) as f64 + 3.0) / nf;
        }
    }
    let tsteps = n / 4 + 1;
    for _ in 0..tsteps {
        for i in 1..nn - 1 {
            for j in 1..nn - 1 {
                b[i * nn + j] = 0.2
                    * (a[i * nn + j]
                        + a[i * nn + j - 1]
                        + a[i * nn + j + 1]
                        + a[(i + 1) * nn + j]
                        + a[(i - 1) * nn + j]);
            }
        }
        for i in 1..nn - 1 {
            for j in 1..nn - 1 {
                a[i * nn + j] = 0.2
                    * (b[i * nn + j]
                        + b[i * nn + j - 1]
                        + b[i * nn + j + 1]
                        + b[(i + 1) * nn + j]
                        + b[(i - 1) * nn + j]);
            }
        }
    }
    let mut s = 0f64;
    for v in &a {
        s += v;
    }
    fmix(0, s)
}

/// seidel-2d
pub fn seidel_2d(n: i32) -> i32 {
    let nn = n as usize;
    let nf = n as f64;
    let mut a = vec![0f64; nn * nn];
    for i in 0..nn {
        for j in 0..nn {
            a[i * nn + j] = (i as f64 * (j + 2) as f64 + 2.0) / nf;
        }
    }
    let tsteps = n / 4 + 1;
    for _ in 0..tsteps {
        for i in 1..nn - 1 {
            for j in 1..nn - 1 {
                a[i * nn + j] = (a[(i - 1) * nn + j - 1]
                    + a[(i - 1) * nn + j]
                    + a[(i - 1) * nn + j + 1]
                    + a[i * nn + j - 1]
                    + a[i * nn + j]
                    + a[i * nn + j + 1]
                    + a[(i + 1) * nn + j - 1]
                    + a[(i + 1) * nn + j]
                    + a[(i + 1) * nn + j + 1])
                    / 9.0;
            }
        }
    }
    let mut s = 0f64;
    for v in &a {
        s += v;
    }
    fmix(0, s)
}

/// heat-3d
pub fn heat_3d(n: i32) -> i32 {
    let nn = n as usize;
    let nf = n as f64;
    let mut a = vec![0f64; nn * nn * nn];
    let mut b = vec![0f64; nn * nn * nn];
    for i in 0..nn {
        for j in 0..nn {
            for k in 0..nn {
                let v = ((i + j) as f64 + (nn - k) as f64) * 10.0 / nf;
                a[(i * nn + j) * nn + k] = v;
                b[(i * nn + j) * nn + k] = v;
            }
        }
    }
    let idx = |i: usize, j: usize, k: usize| (i * nn + j) * nn + k;
    for _ in 0..4 {
        for i in 1..nn - 1 {
            for j in 1..nn - 1 {
                for k in 1..nn - 1 {
                    b[idx(i, j, k)] = 0.125
                        * (a[idx(i + 1, j, k)] - 2.0 * a[idx(i, j, k)] + a[idx(i - 1, j, k)])
                        + 0.125
                            * (a[idx(i, j + 1, k)] - 2.0 * a[idx(i, j, k)] + a[idx(i, j - 1, k)])
                        + 0.125
                            * (a[idx(i, j, k + 1)] - 2.0 * a[idx(i, j, k)] + a[idx(i, j, k - 1)])
                        + a[idx(i, j, k)];
                }
            }
        }
        for i in 1..nn - 1 {
            for j in 1..nn - 1 {
                for k in 1..nn - 1 {
                    a[idx(i, j, k)] = 0.125
                        * (b[idx(i + 1, j, k)] - 2.0 * b[idx(i, j, k)] + b[idx(i - 1, j, k)])
                        + 0.125
                            * (b[idx(i, j + 1, k)] - 2.0 * b[idx(i, j, k)] + b[idx(i, j - 1, k)])
                        + 0.125
                            * (b[idx(i, j, k + 1)] - 2.0 * b[idx(i, j, k)] + b[idx(i, j, k - 1)])
                        + b[idx(i, j, k)];
                }
            }
        }
    }
    let mut s = 0f64;
    for v in &a {
        s += v;
    }
    fmix(0, s)
}

/// fdtd-2d
pub fn fdtd_2d(n: i32) -> i32 {
    let nn = n as usize;
    let nf = n as f64;
    let mut ex = vec![0f64; nn * nn];
    let mut ey = vec![0f64; nn * nn];
    let mut hz = vec![0f64; nn * nn];
    for i in 0..nn as i32 {
        for j in 0..nn as i32 {
            let p = (i as usize) * nn + j as usize;
            ex[p] = i.wrapping_mul(j + 1) as f64 / nf;
            ey[p] = i.wrapping_mul(j + 2) as f64 / nf;
            hz[p] = i.wrapping_mul(j + 3) as f64 / nf;
        }
    }
    let tmax = n / 8 + 2;
    for t in 0..tmax {
        for j in 0..nn {
            ey[j] = t as f64;
        }
        for i in 1..nn {
            for j in 0..nn {
                ey[i * nn + j] -= 0.5 * (hz[i * nn + j] - hz[(i - 1) * nn + j]);
            }
        }
        for i in 0..nn {
            for j in 1..nn {
                ex[i * nn + j] -= 0.5 * (hz[i * nn + j] - hz[i * nn + j - 1]);
            }
        }
        for i in 0..nn - 1 {
            for j in 0..nn - 1 {
                hz[i * nn + j] -= 0.7
                    * (ex[i * nn + j + 1] - ex[i * nn + j] + ey[(i + 1) * nn + j]
                        - ey[i * nn + j]);
            }
        }
    }
    let mut s = 0f64;
    for i in 0..nn * nn {
        s = s + ex[i] + ey[i] + hz[i];
    }
    fmix(0, s)
}

/// adi
pub fn adi(n: i32) -> i32 {
    let nn = n as usize;
    let mut u = vec![0f64; nn * nn];
    let mut v = vec![0f64; nn * nn];
    let mut p = vec![0f64; nn * nn];
    let mut q = vec![0f64; nn * nn];
    for i in 0..nn {
        for j in 0..nn {
            u[i * nn + j] = (i + nn - j) as f64 / nn as f64;
        }
    }
    let tsteps = n / 8 + 1;
    let dx = 1.0 / nn as f64;
    let dy = 1.0 / nn as f64;
    let dt = 1.0 / (tsteps + 1) as f64;
    let b1 = 2.0;
    let b2 = 1.0;
    let mul1 = b1 * dt / (dx * dx);
    let mul2 = b2 * dt / (dy * dy);
    let aa = -mul1 / 2.0;
    let bb = 1.0 + mul1;
    let cc = aa;
    let dd = -mul2 / 2.0;
    let ee = 1.0 + mul2;
    let ff = dd;
    for _ in 1..=tsteps {
        for i in 1..nn - 1 {
            v[i] = 1.0;
            p[i * nn] = 0.0;
            q[i * nn] = v[i];
            for j in 1..nn - 1 {
                p[i * nn + j] = -cc / (aa * p[i * nn + j - 1] + bb);
                q[i * nn + j] = (-dd * u[j * nn + i - 1] + (1.0 + 2.0 * dd) * u[j * nn + i]
                    - ff * u[j * nn + i + 1]
                    - aa * q[i * nn + j - 1])
                    / (aa * p[i * nn + j - 1] + bb);
            }
            v[(nn - 1) * nn + i] = 1.0;
            for j in (1..=nn - 2).rev() {
                v[j * nn + i] = p[i * nn + j] * v[(j + 1) * nn + i] + q[i * nn + j];
            }
        }
        for i in 1..nn - 1 {
            u[i * nn] = 1.0;
            p[i * nn] = 0.0;
            q[i * nn] = u[i * nn];
            for j in 1..nn - 1 {
                p[i * nn + j] = -ff / (dd * p[i * nn + j - 1] + ee);
                q[i * nn + j] = (-aa * v[(i - 1) * nn + j] + (1.0 + 2.0 * aa) * v[i * nn + j]
                    - cc * v[(i + 1) * nn + j]
                    - dd * q[i * nn + j - 1])
                    / (dd * p[i * nn + j - 1] + ee);
            }
            u[i * nn + nn - 1] = 1.0;
            for j in (1..=nn - 2).rev() {
                u[i * nn + j] = p[i * nn + j] * u[i * nn + j + 1] + q[i * nn + j];
            }
        }
    }
    let mut s = 0f64;
    for val in &u {
        s += val;
    }
    fmix(0, s)
}

/// deriche
pub fn deriche(n: i32) -> i32 {
    let w = n as usize;
    let hgt = n as usize;
    let mut img = vec![0f64; w * hgt];
    let mut y1 = vec![0f64; w * hgt];
    let mut y2 = vec![0f64; w * hgt];
    let mut out = vec![0f64; w * hgt];
    for i in 0..w as i32 {
        for j in 0..hgt as i32 {
            img[(i as usize) * hgt + j as usize] =
                remu(313i32.wrapping_mul(i).wrapping_add(991i32.wrapping_mul(j)), 65536) as f64
                    / 65535.0;
        }
    }
    let alpha = 0.25f64;
    let ea = 1.0 - alpha + alpha * alpha / 2.0 - alpha * alpha * alpha / 6.0
        + alpha * alpha * alpha * alpha / 24.0;
    let k = (1.0 - ea) * (1.0 - ea) / (1.0 + 2.0 * alpha * ea - ea * ea);
    let a1 = k;
    let a2 = k * ea * (alpha - 1.0);
    let a3 = k * ea * (alpha + 1.0);
    let a4 = -k * ea * ea;
    let b1 = 2.0 * ea;
    let b2 = -ea * ea;
    for i in 0..w {
        let (mut ym1, mut ym2, mut xm1) = (0f64, 0f64, 0f64);
        for j in 0..hgt {
            let x = img[i * hgt + j];
            let y = a1 * x + a2 * xm1 + b1 * ym1 + b2 * ym2;
            y1[i * hgt + j] = y;
            xm1 = x;
            ym2 = ym1;
            ym1 = y;
        }
        let (mut yp1, mut yp2, mut xp1, mut xp2) = (0f64, 0f64, 0f64, 0f64);
        for j in (0..hgt).rev() {
            let x = img[i * hgt + j];
            let y = a3 * xp1 + a4 * xp2 + b1 * yp1 + b2 * yp2;
            y2[i * hgt + j] = y;
            xp2 = xp1;
            xp1 = x;
            yp2 = yp1;
            yp1 = y;
        }
        for j in 0..hgt {
            out[i * hgt + j] = y1[i * hgt + j] + y2[i * hgt + j];
        }
    }
    for j in 0..hgt {
        let (mut tm1, mut ym1, mut ym2) = (0f64, 0f64, 0f64);
        for i in 0..w {
            let x = out[i * hgt + j];
            let y = a1 * x + a2 * tm1 + b1 * ym1 + b2 * ym2;
            y1[i * hgt + j] = y;
            tm1 = x;
            ym2 = ym1;
            ym1 = y;
        }
        let (mut tp1, mut tp2, mut yp1, mut yp2) = (0f64, 0f64, 0f64, 0f64);
        for i in (0..w).rev() {
            let x = out[i * hgt + j];
            let y = a3 * tp1 + a4 * tp2 + b1 * yp1 + b2 * yp2;
            y2[i * hgt + j] = y;
            tp2 = tp1;
            tp1 = x;
            yp2 = yp1;
            yp1 = y;
        }
        for i in 0..w {
            img[i * hgt + j] = y1[i * hgt + j] + y2[i * hgt + j];
        }
    }
    let mut s = 0f64;
    for v in &img {
        s += v;
    }
    fmix(0, s)
}
