//! Native mirrors of the seven whole applications.

use crate::common::{fmix, mix, Rng};

#[inline]
fn remu(a: i32, b: i32) -> i32 {
    (a as u32 % b as u32) as i32
}

/// bzip2: BWT + MTF + RLE block compressor.
pub fn bzip2(n: i32) -> i32 {
    let mut rng = Rng::new(79);
    let nn = n as usize;
    let mut input = vec![0u8; nn];
    let mut i = 0usize;
    while i < nn {
        let w = rng.below(16);
        let wl = remu(w * 7 + 3, 6) + 2;
        let mut k = 0;
        while k < wl && i < nn {
            input[i] = (97 + remu(w * 13 + k * 5, 26)) as u8;
            i += 1;
            k += 1;
        }
        if i < nn {
            input[i] = 32;
            i += 1;
        }
    }
    let mut out: Vec<u8> = Vec::new();
    let rot_less = |block: &[u8], a: usize, b: usize| -> bool {
        let len = block.len();
        for k in 0..len {
            let ca = block[(a + k) % len];
            let cb = block[(b + k) % len];
            if ca < cb {
                return true;
            }
            if ca > cb {
                return false;
            }
        }
        false
    };
    let mut h = 0i32;
    let bs = 192usize;
    let mut off = 0usize;
    while off < nn {
        let len = bs.min(nn - off);
        let block = &input[off..off + len];
        let mut rot: Vec<usize> = (0..len).collect();
        for i in 1..len {
            let v = rot[i];
            let mut j = i as isize - 1;
            while j >= 0 && rot_less(block, v, rot[j as usize]) {
                rot[j as usize + 1] = rot[j as usize];
                j -= 1;
            }
            rot[(j + 1) as usize] = v;
        }
        let start = out.len();
        let mut primary = 0usize;
        for (i, &r) in rot.iter().enumerate() {
            if r == 0 {
                primary = i;
            }
            out.push(block[(r + len - 1) % len]);
        }
        out.push((primary & 255) as u8);
        out.push(((primary >> 8) & 255) as u8);
        let end = out.len() - 2;
        let mut mtf: Vec<u8> = (0..=255u8).collect();
        let mut zrun = 0i32;
        for p in start..end {
            let c = out[p];
            let r = mtf.iter().position(|&x| x == c).expect("byte present");
            for k in (1..=r).rev() {
                mtf[k] = mtf[k - 1];
            }
            mtf[0] = c;
            if r == 0 {
                zrun += 1;
            } else {
                if zrun > 0 {
                    h = mix(h, -zrun);
                    zrun = 0;
                }
                h = mix(h, r as i32);
            }
        }
        if zrun > 0 {
            h = mix(h, -zrun);
        }
        off += bs;
    }
    mix(h, out.len() as i32)
}

/// snappy: LZ77 with 4-byte hashing, plus round-trip verification.
pub fn snappy(n: i32) -> i32 {
    let mut rng = Rng::new(83);
    let nn = n as usize;
    let mut input = vec![0u8; nn];
    let mut i = 0usize;
    while i < nn {
        let phrase = rng.below(32);
        let pl = remu(phrase * 11 + 5, 24) + 4;
        let mut k = 0;
        while k < pl && i < nn {
            input[i] = (32 + remu(phrase * 31 + k * 17, 90)) as u8;
            i += 1;
            k += 1;
        }
    }
    let load4 =
        |b: &[u8], p: usize| -> i32 { i32::from_le_bytes(b[p..p + 4].try_into().expect("len")) };
    let hash4 = |v: i32| -> usize { ((v.wrapping_mul(-1640531527) as u32) >> 18) as usize };
    let mut hash = vec![-1i32; 16384];
    let mut comp: Vec<u8> = Vec::new();
    let mut pos = 0usize;
    let mut lit_start = 0usize;
    while pos + 4 <= nn {
        let hh = hash4(load4(&input, pos));
        let cand = hash[hh];
        hash[hh] = pos as i32;
        if cand >= 0
            && pos - (cand as usize) < 32768
            && load4(&input, cand as usize) == load4(&input, pos)
        {
            let mut litlen = pos - lit_start;
            while litlen > 0 {
                let chunk = litlen.min(60);
                comp.push((chunk << 2) as u8);
                for k in 0..chunk {
                    comp.push(input[lit_start + k]);
                }
                lit_start += chunk;
                litlen -= chunk;
            }
            let cand = cand as usize;
            let mut mlen = 4usize;
            while pos + mlen < nn && mlen < 60 && input[cand + mlen] == input[pos + mlen] {
                mlen += 1;
            }
            let offset = pos - cand;
            comp.push((1 | (mlen << 2)) as u8);
            comp.push((offset & 255) as u8);
            comp.push(((offset >> 8) & 255) as u8);
            pos += mlen;
            lit_start = pos;
        } else {
            pos += 1;
        }
    }
    let mut litlen = nn - lit_start;
    while litlen > 0 {
        let chunk = litlen.min(60);
        comp.push((chunk << 2) as u8);
        for k in 0..chunk {
            comp.push(input[lit_start + k]);
        }
        lit_start += chunk;
        litlen -= chunk;
    }
    let comp_len = comp.len();
    let mut decomp: Vec<u8> = Vec::with_capacity(nn);
    let mut rp = 0usize;
    while rp < comp_len {
        let tag = comp[rp] as usize;
        rp += 1;
        if tag & 1 != 0 {
            let mlen = tag >> 2;
            let offset = comp[rp] as usize | ((comp[rp + 1] as usize) << 8);
            rp += 2;
            for _ in 0..mlen {
                let b = decomp[decomp.len() - offset];
                decomp.push(b);
            }
        } else {
            let litlen2 = tag >> 2;
            for _ in 0..litlen2 {
                decomp.push(comp[rp]);
                rp += 1;
            }
        }
    }
    let ok = (decomp == input) as i32;
    let mut h = mix(0, comp_len as i32);
    h = mix(h, ok);
    let mut k = 0usize;
    while k < comp_len {
        h = mix(h, comp[k] as i32);
        k += 13;
    }
    h
}

/// whitedb: in-memory record store with a hash index.
pub fn whitedb(n: i32) -> i32 {
    const RECSZ: usize = 5;
    let mut recs: Vec<i32> = Vec::new();
    let mut index = vec![0i32; 65536];
    let key_hash =
        |k: i32| -> usize { ((k.wrapping_mul(-1640531527) as u32 >> 16) & 65535) as usize };
    let mut rng = Rng::new(89);
    for i in 0..n {
        let id = (recs.len() / RECSZ) as i32;
        recs.extend_from_slice(&[i * 7 + 1, rng.below(1000), rng.below(1000), i, rng.next()]);
        let mut slot = key_hash(i * 7 + 1);
        while index[slot] != 0 {
            slot = (slot + 1) & 65535;
        }
        index[slot] = id + 1;
    }
    let find = |recs: &[i32], index: &[i32], k: i32| -> i32 {
        let mut slot = key_hash(k);
        loop {
            let v = index[slot];
            if v == 0 {
                return -1;
            }
            if v > 0 {
                let id = (v - 1) as usize;
                if recs[id * RECSZ] == k {
                    return v - 1;
                }
            }
            slot = (slot + 1) & 65535;
        }
    };
    let mut h = 0i32;
    let mut found = 0i32;
    let mut sum = 0i32;
    for _ in 0..n * 2 {
        let k = rng.below(n * 14) + 1;
        let id = find(&recs, &index, k);
        if id >= 0 {
            found += 1;
            sum = sum.wrapping_add(recs[id as usize * RECSZ + 1]);
        }
    }
    h = mix(h, found);
    h = mix(h, sum);
    let mut i = 0;
    while i < n {
        let id = find(&recs, &index, i * 7 + 1);
        if id >= 0 {
            recs[id as usize * RECSZ + 2] += 1;
        }
        i += 3;
    }
    let mut deleted = 0i32;
    let mut i = 0;
    while i < n {
        let k = i * 7 + 1;
        let mut slot = key_hash(k);
        loop {
            let v = index[slot];
            if v == 0 {
                break;
            }
            if v > 0 {
                let id = (v - 1) as usize;
                if recs[id * RECSZ] == k {
                    index[slot] = -1;
                    recs[id * RECSZ] = -1;
                    deleted += 1;
                    break;
                }
            }
            slot = (slot + 1) & 65535;
        }
        i += 5;
    }
    h = mix(h, deleted);
    let mut live = 0i32;
    let mut agg = 0i32;
    for id in 0..recs.len() / RECSZ {
        if recs[id * RECSZ] >= 0 {
            live += 1;
            agg = agg
                .wrapping_add(recs[id * RECSZ + 2])
                .wrapping_sub(recs[id * RECSZ + 3]);
        }
    }
    h = mix(h, live);
    mix(h, agg)
}

/// espeak: letter-to-phoneme rules + formant synthesis.
pub fn espeak(n: i32) -> i32 {
    let mut rng = Rng::new(97);
    let nn = n as usize;
    let mut text = vec![0u8; nn];
    let mut i = 0usize;
    while i < nn {
        let wl = rng.below(7) + 2;
        let mut k = 0;
        while k < wl && i < nn {
            text[i] = (97 + rng.below(26)) as u8;
            i += 1;
            k += 1;
        }
        if i < nn {
            text[i] = 32;
            i += 1;
        }
    }
    let is_vowel = |c: u8| matches!(c, b'a' | b'e' | b'i' | b'o' | b'u');
    let mut phon: Vec<(i32, i32)> = Vec::new();
    let mut i = 0usize;
    while i < nn {
        let c = text[i];
        if c == 32 {
            phon.push((0, 6));
            i += 1;
        } else if is_vowel(c) {
            let mut dur = 10;
            if i + 1 < nn && is_vowel(text[i + 1]) {
                dur = 14;
            }
            phon.push((c as i32 - 96, dur));
            i += 1;
        } else if c == 116 && i + 1 < nn && text[i + 1] == 104 {
            phon.push((30, 8));
            i += 2;
        } else if c == 115 && i + 1 < nn && text[i + 1] == 104 {
            phon.push((31, 8));
            i += 2;
        } else if c == 99 && i + 1 < nn && text[i + 1] == 104 {
            phon.push((32, 8));
            i += 2;
        } else {
            phon.push((c as i32 - 96, 4));
            i += 1;
        }
    }
    fn sin_approx(x: f64) -> f64 {
        let two_pi = 6.283185307179586;
        let mut v = x - (x / two_pi).floor() * two_pi;
        if v > 3.141592653589793 {
            v -= two_pi;
        }
        let v2 = v * v;
        v * (1.0 - v2 / 6.0 + v2 * v2 / 120.0 - v2 * v2 * v2 / 5040.0
            + v2 * v2 * v2 * v2 / 362880.0)
    }
    let mut wave: Vec<i16> = Vec::new();
    for &(id, dur) in &phon {
        let f0 = 90.0 + id as f64 * 12.5;
        let nsamp = dur * 16;
        for t in 0..nsamp {
            let ft = t as f64 / 8000.0;
            let env = 1.0 - ((2 * t - nsamp) as f64 / nsamp as f64).abs();
            let s = env
                * (sin_approx(6.283185307179586 * f0 * ft)
                    + 0.5 * sin_approx(6.283185307179586 * 2.0 * f0 * ft)
                    + 0.25 * sin_approx(6.283185307179586 * 3.3 * f0 * ft));
            wave.push((s * 8000.0) as i32 as i16);
        }
    }
    let mut h = mix(0, phon.len() as i32);
    h = mix(h, wave.len() as i32);
    let mut k = 0usize;
    while k < wave.len() {
        h = mix(h, wave[k] as i32);
        k += 37;
    }
    h
}

/// facedetection: two conv+pool stages plus a sliding-window classifier.
pub fn facedetection(n: i32) -> i32 {
    let nn = n as usize;
    let mut rng = Rng::new(101);
    let mut img = vec![0f64; nn * nn];
    for y in 0..nn {
        for x in 0..nn {
            img[y * nn + x] = remu((x as i32) * 7 + (y as i32) * 3, 64) as f64 / 64.0;
        }
    }
    let nblobs = n / 16;
    for _ in 0..nblobs {
        let cx = (rng.below(n - 12) + 6) as isize;
        let cy = (rng.below(n - 12) + 6) as isize;
        for dy in -5isize..=5 {
            for dx in -5isize..=5 {
                let d2 = dx * dx + dy * dy;
                if d2 <= 25 {
                    let p = ((cy + dy) as usize) * nn + (cx + dx) as usize;
                    // Match the WaCC association: (img + 1.0) - d2/30.
                    img[p] = img[p] + 1.0 - d2 as f64 / 30.0;
                }
            }
        }
    }
    let mut k1 = [0f64; 9];
    let mut k2 = [0f64; 9];
    for k in 0..9 {
        k1[k] = (rng.below(200) - 100) as f64 / 150.0;
        k2[k] = (rng.below(200) - 100) as f64 / 150.0;
    }
    let mut wvec = [0f64; 16];
    for w in wvec.iter_mut() {
        *w = (rng.below(200) - 100) as f64 / 120.0;
    }
    let m1 = nn - 2;
    let mut c1 = vec![0f64; m1 * m1];
    for y in 0..m1 {
        for x in 0..m1 {
            let mut acc = 0f64;
            for ky in 0..3 {
                for kx in 0..3 {
                    acc += k1[ky * 3 + kx] * img[(y + ky) * nn + x + kx];
                }
            }
            if acc < 0.0 {
                acc = 0.0;
            }
            c1[y * m1 + x] = acc;
        }
    }
    let wasm_fmax = |a: f64, b: f64| -> f64 {
        if a.is_nan() || b.is_nan() {
            f64::NAN
        } else {
            a.max(b)
        }
    };
    let q1 = m1 / 2;
    let mut p1 = vec![0f64; q1 * q1];
    for y in 0..q1 {
        for x in 0..q1 {
            let mut mx = c1[(y * 2) * m1 + x * 2];
            mx = wasm_fmax(mx, c1[(y * 2) * m1 + x * 2 + 1]);
            mx = wasm_fmax(mx, c1[(y * 2 + 1) * m1 + x * 2]);
            mx = wasm_fmax(mx, c1[(y * 2 + 1) * m1 + x * 2 + 1]);
            p1[y * q1 + x] = mx;
        }
    }
    let m2 = q1 - 2;
    let mut c2 = vec![0f64; m2 * m2];
    for y in 0..m2 {
        for x in 0..m2 {
            let mut acc = 0f64;
            for ky in 0..3 {
                for kx in 0..3 {
                    acc += k2[ky * 3 + kx] * p1[(y + ky) * q1 + x + kx];
                }
            }
            if acc < 0.0 {
                acc = 0.0;
            }
            c2[y * m2 + x] = acc;
        }
    }
    let q2 = m2 / 2;
    let mut p2 = vec![0f64; q2 * q2];
    for y in 0..q2 {
        for x in 0..q2 {
            let mut mx = c2[(y * 2) * m2 + x * 2];
            mx = wasm_fmax(mx, c2[(y * 2) * m2 + x * 2 + 1]);
            mx = wasm_fmax(mx, c2[(y * 2 + 1) * m2 + x * 2]);
            mx = wasm_fmax(mx, c2[(y * 2 + 1) * m2 + x * 2 + 1]);
            p2[y * q2 + x] = mx;
        }
    }
    let mut detections = 0i32;
    let mut score_sum = 0f64;
    let mut y = 0usize;
    while y + 4 <= q2 {
        let mut x = 0usize;
        while x + 4 <= q2 {
            let mut score = 0f64;
            for wy in 0..4 {
                for wx in 0..4 {
                    score += wvec[wy * 4 + wx] * p2[(y + wy) * q2 + x + wx];
                }
            }
            score_sum += score;
            if score > 0.35 {
                detections += 1;
            }
            x += 1;
        }
        y += 1;
    }
    let h = mix(0, detections);
    fmix(h, score_sum)
}

/// mnist: 64-32-10 MLP trained with SGD on synthetic digits.
pub fn mnist(n: i32) -> i32 {
    let mut rng = Rng::new(103);
    let mut w1 = vec![0f64; 64 * 32];
    for w in w1.iter_mut() {
        *w = (rng.below(200) - 100) as f64 / 400.0;
    }
    let mut b1 = [0f64; 32];
    let mut w2 = vec![0f64; 32 * 10];
    for w in w2.iter_mut() {
        *w = (rng.below(200) - 100) as f64 / 400.0;
    }
    let mut b2 = [0f64; 10];
    fn sigmoid(x: f64) -> f64 {
        let mut v = x;
        if v > 6.0 {
            v = 6.0;
        }
        if v < -6.0 {
            v = -6.0;
        }
        let z = -v;
        let mut e = 1.0;
        for k in (1..=16).rev() {
            e = 1.0 + z * e / k as f64;
        }
        1.0 / (1.0 + e)
    }
    let lr = 0.5;
    let mut correct = 0i32;
    let mut xin = [0f64; 64];
    let mut hid = [0f64; 32];
    let mut outv = [0f64; 10];
    let mut delta2 = [0f64; 10];
    let mut delta1 = [0f64; 32];
    for step in 0..n {
        let label = remu(step, 10);
        for v in xin.iter_mut() {
            *v = 0.0;
        }
        for i in 0..8i32 {
            for j in 0..8i32 {
                let mut v = 0.0;
                if remu(i + label, 4) == 0 || remu(j * (label + 2), 5) == 0 {
                    v = 0.9;
                }
                if i == label - 2 || j == 9 - label {
                    v = 1.0;
                }
                v += rng.below(20) as f64 / 100.0;
                xin[(i * 8 + j) as usize] = v;
            }
        }
        for j in 0..32 {
            let mut a = b1[j];
            for i in 0..64 {
                a += xin[i] * w1[i * 32 + j];
            }
            hid[j] = sigmoid(a);
        }
        let mut best = 0usize;
        let mut bestv = -1.0f64;
        for k in 0..10 {
            let mut a = b2[k];
            for j in 0..32 {
                a += hid[j] * w2[j * 10 + k];
            }
            let o = sigmoid(a);
            outv[k] = o;
            if o > bestv {
                bestv = o;
                best = k;
            }
        }
        if best as i32 == label {
            correct += 1;
        }
        for k in 0..10 {
            let target = if k as i32 == label { 1.0 } else { 0.0 };
            let o = outv[k];
            delta2[k] = (o - target) * o * (1.0 - o);
        }
        for j in 0..32 {
            let mut s = 0f64;
            for k in 0..10 {
                s += delta2[k] * w2[j * 10 + k];
            }
            let hv = hid[j];
            delta1[j] = s * hv * (1.0 - hv);
        }
        for j in 0..32 {
            for k in 0..10 {
                w2[j * 10 + k] -= lr * delta2[k] * hid[j];
            }
        }
        for k in 0..10 {
            b2[k] -= lr * delta2[k];
        }
        for i in 0..64 {
            for j in 0..32 {
                w1[i * 32 + j] -= lr * delta1[j] * xin[i];
            }
        }
        for j in 0..32 {
            b1[j] -= lr * delta1[j];
        }
    }
    let h = mix(0, correct);
    let mut s = 0f64;
    for v in &w1 {
        s += v;
    }
    for v in &w2 {
        s += v;
    }
    fmix(h, s)
}

/// gnuchess: alpha-beta self-play at depth `n`.
pub fn gnuchess(n: i32) -> i32 {
    const WP: i32 = 1;
    const WN: i32 = 2;
    const WB: i32 = 3;
    const WR: i32 = 4;
    const WQ: i32 = 5;
    const WK: i32 = 6;
    fn piece_side(p: i32) -> i32 {
        if p == 0 {
            -1
        } else if p <= 6 {
            0
        } else {
            1
        }
    }
    fn piece_type(p: i32) -> i32 {
        if p > 6 {
            p - 6
        } else {
            p
        }
    }
    let mut board = [0i32; 64];
    board[0] = WR + 6;
    board[1] = WN + 6;
    board[2] = WB + 6;
    board[3] = WQ + 6;
    board[4] = WK + 6;
    board[5] = WB + 6;
    board[6] = WN + 6;
    board[7] = WR + 6;
    for f in 0..8 {
        board[8 + f] = WP + 6;
        board[48 + f] = WP;
    }
    board[56] = WR;
    board[57] = WN;
    board[58] = WB;
    board[59] = WQ;
    board[60] = WK;
    board[61] = WB;
    board[62] = WN;
    board[63] = WR;

    fn gen_moves(board: &[i32; 64], side: i32, out: &mut Vec<i32>) {
        out.clear();
        let add = |out: &mut Vec<i32>, board: &[i32; 64], from: i32, to: i32, promo: i32| {
            let cap = board[to as usize];
            out.push(from | (to << 6) | (cap << 12) | (promo << 16));
        };
        for s in 0..64i32 {
            let p = board[s as usize];
            if piece_side(p) != side {
                continue;
            }
            let t = piece_type(p);
            let rank = s >> 3;
            let file = s & 7;
            if t == WP {
                let (dir, start_rank, last_rank) = if side == 1 { (8, 1, 7) } else { (-8, 6, 0) };
                let fwd = s + dir;
                if (0..64).contains(&fwd) && board[fwd as usize] == 0 {
                    let promo = ((fwd >> 3) == last_rank) as i32;
                    add(out, board, s, fwd, promo);
                    if rank == start_rank && board[(fwd + dir) as usize] == 0 {
                        add(out, board, s, fwd + dir, 0);
                    }
                }
                if file > 0 {
                    let c = s + dir - 1;
                    if (0..64).contains(&c) && piece_side(board[c as usize]) == 1 - side {
                        let promo = ((c >> 3) == last_rank) as i32;
                        add(out, board, s, c, promo);
                    }
                }
                if file < 7 {
                    let c = s + dir + 1;
                    if (0..64).contains(&c) && piece_side(board[c as usize]) == 1 - side {
                        let promo = ((c >> 3) == last_rank) as i32;
                        add(out, board, s, c, promo);
                    }
                }
            } else if t == WN {
                const OFFS: [(i32, i32); 8] = [
                    (-2, -1),
                    (-2, 1),
                    (-1, -2),
                    (-1, 2),
                    (1, -2),
                    (1, 2),
                    (2, -1),
                    (2, 1),
                ];
                for (dr, df) in OFFS {
                    let nr = rank + dr;
                    let nf = file + df;
                    if (0..8).contains(&nr) && (0..8).contains(&nf) {
                        let to = nr * 8 + nf;
                        if piece_side(board[to as usize]) != side {
                            add(out, board, s, to, 0);
                        }
                    }
                }
            } else if t == WK {
                for dr in -1..=1 {
                    for df in -1..=1 {
                        if dr != 0 || df != 0 {
                            let nr = rank + dr;
                            let nf = file + df;
                            if (0..8).contains(&nr) && (0..8).contains(&nf) {
                                let to = nr * 8 + nf;
                                if piece_side(board[to as usize]) != side {
                                    add(out, board, s, to, 0);
                                }
                            }
                        }
                    }
                }
            } else {
                const DIRS: [(i32, i32); 8] = [
                    (-1, 0),
                    (1, 0),
                    (0, -1),
                    (0, 1),
                    (-1, -1),
                    (-1, 1),
                    (1, -1),
                    (1, 1),
                ];
                for (d, (dr, df)) in DIRS.into_iter().enumerate() {
                    let straight = d < 4;
                    if t == WB && straight {
                        continue;
                    }
                    if t == WR && !straight {
                        continue;
                    }
                    let mut nr = rank + dr;
                    let mut nf = file + df;
                    while (0..8).contains(&nr) && (0..8).contains(&nf) {
                        let to = nr * 8 + nf;
                        let tp = board[to as usize];
                        if piece_side(tp) == side {
                            break;
                        }
                        add(out, board, s, to, 0);
                        if tp != 0 {
                            break;
                        }
                        nr += dr;
                        nf += df;
                    }
                }
            }
        }
    }
    fn make_move(board: &mut [i32; 64], m: i32, side: i32) {
        let from = m & 63;
        let to = (m >> 6) & 63;
        let promo = (m >> 16) & 1;
        let mut p = board[from as usize];
        if promo != 0 {
            p = if side == 1 { WQ + 6 } else { WQ };
        }
        board[to as usize] = p;
        board[from as usize] = 0;
    }
    fn unmake_move(board: &mut [i32; 64], m: i32, side: i32) {
        let from = m & 63;
        let to = (m >> 6) & 63;
        let cap = (m >> 12) & 15;
        let promo = (m >> 16) & 1;
        let mut p = board[to as usize];
        if promo != 0 {
            p = if side == 1 { WP + 6 } else { WP };
        }
        board[from as usize] = p;
        board[to as usize] = cap;
    }
    fn piece_value(t: i32) -> i32 {
        match t {
            1 => 100,
            2 => 320,
            3 => 330,
            4 => 500,
            5 => 900,
            _ => 20000,
        }
    }
    fn eval(board: &[i32; 64], side: i32) -> i32 {
        let mut score = 0i32;
        for s in 0..64i32 {
            let p = board[s as usize];
            if p == 0 {
                continue;
            }
            let t = piece_type(p);
            let mut v = piece_value(t);
            let rank = s >> 3;
            let file = s & 7;
            let cr = if rank > 3 { 7 - rank } else { rank };
            let cf = if file > 3 { 7 - file } else { file };
            if t == WN || t == WB || t == WP {
                v += (cr + cf) * 3;
            }
            if piece_side(p) == side {
                score += v;
            } else {
                score -= v;
            }
        }
        score
    }
    fn search(
        board: &mut [i32; 64],
        side: i32,
        depth: i32,
        alpha: i32,
        beta: i32,
        ply: i32,
        nodes: &mut i32,
    ) -> i32 {
        *nodes += 1;
        if depth == 0 {
            return eval(board, side);
        }
        let mut moves = Vec::new();
        gen_moves(board, side, &mut moves);
        if moves.is_empty() {
            return -19000;
        }
        let mut best = -30000;
        let mut a = alpha;
        for m in moves {
            let cap = (m >> 12) & 15;
            if piece_type(cap) == WK && cap != 0 {
                return 20000 - ply;
            }
            make_move(board, m, side);
            let v = -search(board, 1 - side, depth - 1, -beta, -a, ply + 1, nodes);
            unmake_move(board, m, side);
            if v > best {
                best = v;
            }
            if best > a {
                a = best;
            }
            if a >= beta {
                break;
            }
        }
        best
    }
    let mut nodes = 0i32;
    let mut h = 0i32;
    let mut side = 0i32;
    for _ in 0..12 {
        let mut moves = Vec::new();
        gen_moves(&board, side, &mut moves);
        if moves.is_empty() {
            break;
        }
        let mut best_move = -1;
        let mut best_score = -30000;
        for m in moves {
            let cap = (m >> 12) & 15;
            let v = if piece_type(cap) == WK && cap != 0 {
                20000
            } else {
                make_move(&mut board, m, side);
                let v = -search(&mut board, 1 - side, n - 1, -30000, 30000, 0, &mut nodes);
                unmake_move(&mut board, m, side);
                v
            };
            if v > best_score {
                best_score = v;
                best_move = m;
            }
        }
        make_move(&mut board, best_move, side);
        h = mix(h, best_move);
        h = mix(h, best_score);
        side = 1 - side;
    }
    mix(h, nodes)
}
