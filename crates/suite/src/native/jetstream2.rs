//! Native mirrors of the JetStream2 benchmarks.

use crate::common::{fmix, mix, Rng};

/// gcc-loops: ten vectorizer-tuning loop kernels.
pub fn gcc_loops(n: i32) -> i32 {
    let mut rng = Rng::new(7);
    let len = n as usize;
    let mut a = vec![0i32; len];
    let mut b = vec![0i32; len];
    let mut c = vec![0i32; len];
    let mut x = vec![0f32; len];
    let mut y = vec![0f32; len];
    let mut z = vec![0f32; len];
    for i in 0..len {
        a[i] = rng.below(10000);
        b[i] = rng.below(10000) - 5000;
        c[i] = rng.below(100) + 1;
        x[i] = rng.below(1000) as f32 / 8.0;
        y[i] = rng.below(1000) as f32 / 16.0;
        z[i] = 0.0;
    }
    let mut h = 0i32;
    for i in 0..len {
        a[i] = b[i].wrapping_add(c[i]);
    }
    for i in 0..len {
        b[i] = a[i].wrapping_mul(3);
    }
    let mut s = 0i32;
    for v in &a {
        s = s.wrapping_add(*v);
    }
    h = mix(h, s);
    let mut mx = -2147483647;
    for v in &b {
        if *v > mx {
            mx = *v;
        }
    }
    h = mix(h, mx);
    let alpha = 1.5f32;
    for i in 0..len {
        z[i] = alpha * x[i] + y[i];
    }
    let mut dot = 0f32;
    for i in 0..len {
        dot += z[i] * x[i];
    }
    h = fmix(h, dot as f64);
    for i in 0..len / 4 {
        c[i] = a[i * 4];
    }
    for v in b.iter_mut() {
        if *v > 0 {
            *v = 0i32.wrapping_sub(*v);
        }
    }
    let mut acc = 0i32;
    for v in c.iter_mut() {
        acc = acc.wrapping_add(*v);
        *v = acc;
    }
    h = mix(h, acc);
    for i in 0..len {
        a[i] = b[len - 1 - i];
    }
    let mut i = 0;
    while i < len {
        h = mix(h, a[i]);
        h = mix(h, c[i]);
        h = fmix(h, z[i] as f64);
        i += 16;
    }
    h
}

/// hashset: open-addressing hash table operations.
pub fn hashset(n: i32) -> i32 {
    fn hash_key(k: i32) -> i32 {
        let h = k.wrapping_mul(-1640531527);
        h ^ (((h as u32) >> 16) as i32)
    }
    let mut cap = 64i32;
    while cap < n * 4 {
        cap *= 2;
    }
    let mut table = vec![0i32; cap as usize];
    let mask = cap - 1;
    let probe = |table: &[i32], key: i32| -> usize {
        let mut i = (hash_key(key) & mask) as usize;
        loop {
            let v = table[i];
            if v == 0 || v == key {
                return i;
            }
            i = (i + 1) & mask as usize;
        }
    };
    let mut rng = Rng::new(11);
    let mut h = 0i32;
    let mut added = 0;
    for _ in 0..n {
        let key = (rng.below(n * 2) + 1) | 1;
        let i = probe(&table, key);
        if table[i] != key {
            table[i] = key;
            added += 1;
        }
    }
    h = mix(h, added);
    let mut hits = 0;
    let mut rng = Rng::new(13);
    for _ in 0..n * 2 {
        let key = rng.below(n * 4) + 1;
        let i = probe(&table, key);
        hits += (table[i] == key) as i32;
    }
    h = mix(h, hits);
    let mut occ = 0;
    for v in &table {
        if *v != 0 {
            occ += 1;
            h = mix(h, *v);
        }
    }
    mix(h, occ)
}

/// quicksort: recursive quicksort with insertion cutoff.
pub fn quicksort(n: i32) -> i32 {
    fn insertion(arr: &mut [i32], lo: usize, hi: usize) {
        for i in lo + 1..=hi {
            let v = arr[i];
            let mut j = i as isize - 1;
            while j >= lo as isize && arr[j as usize] > v {
                arr[j as usize + 1] = arr[j as usize];
                j -= 1;
            }
            arr[(j + 1) as usize] = v;
        }
    }
    fn qsort(arr: &mut [i32], lo: usize, hi: usize) {
        if hi - lo < 16 {
            insertion(arr, lo, hi);
            return;
        }
        let mid = lo + (hi - lo) / 2;
        if arr[mid] < arr[lo] {
            arr.swap(mid, lo);
        }
        if arr[hi] < arr[lo] {
            arr.swap(hi, lo);
        }
        if arr[hi] < arr[mid] {
            arr.swap(hi, mid);
        }
        let pivot = arr[mid];
        let mut i = lo as isize - 1;
        let mut j = hi as isize + 1;
        loop {
            i += 1;
            while arr[i as usize] < pivot {
                i += 1;
            }
            j -= 1;
            while arr[j as usize] > pivot {
                j -= 1;
            }
            if i >= j {
                break;
            }
            arr.swap(i as usize, j as usize);
        }
        qsort(arr, lo, j as usize);
        qsort(arr, j as usize + 1, hi);
    }
    let mut rng = Rng::new(17);
    let len = n as usize;
    let mut arr: Vec<i32> = (0..len).map(|_| rng.next()).collect();
    qsort(&mut arr, 0, len - 1);
    let mut h = 0i32;
    let sorted = arr.windows(2).all(|w| w[0] <= w[1]) as i32;
    h = mix(h, sorted);
    let step = (n / 64).max(1) as usize;
    let mut i = 0;
    while i < len {
        h = mix(h, arr[i]);
        i += step;
    }
    h
}

/// tsf: typed-stream serialize + parse.
pub fn tsf(n: i32) -> i32 {
    let mut out: Vec<u8> = Vec::new();
    let emit_varint = |out: &mut Vec<u8>, v: i32| {
        let mut x = v as u32;
        while x >= 128 {
            out.push(((x & 127) | 128) as u8);
            x >>= 7;
        }
        out.push(x as u8);
    };
    let mut rng = Rng::new(23);
    for i in 0..n {
        emit_varint(&mut out, i.wrapping_mul(7));
        let tag = (i as u32 % 3) as i32;
        out.push(tag as u8);
        if tag == 0 {
            emit_varint(&mut out, rng.below(100000));
        } else if tag == 1 {
            let v = rng.below(1000000) as f64 / 256.0;
            out.extend_from_slice(&v.to_bits().to_le_bytes());
        } else {
            let len = rng.below(24) + 1;
            emit_varint(&mut out, len);
            for _ in 0..len {
                out.push((97 + rng.below(26)) as u8);
            }
        }
    }
    let total = out.len() as i32;
    let mut pos = 0usize;
    let take_u8 = |pos: &mut usize| -> i32 {
        let v = out[*pos] as i32;
        *pos += 1;
        v
    };
    let take_varint = |pos: &mut usize| -> i32 {
        let mut v = 0i32;
        let mut shift = 0;
        loop {
            let b = take_u8(pos);
            v |= (b & 127) << shift;
            if b & 128 == 0 {
                return v;
            }
            shift += 7;
        }
    };
    let mut h = mix(0, total);
    for _ in 0..n {
        h = mix(h, take_varint(&mut pos));
        let tag = take_varint(&mut pos) & 0xFF; // single byte, same value
        if tag == 0 {
            h = mix(h, take_varint(&mut pos));
        } else if tag == 1 {
            let mut b = 0u64;
            for k in 0..8 {
                b |= (out[pos] as u64) << (k * 8);
                pos += 1;
            }
            h = fmix(h, f64::from_bits(b));
        } else {
            let len = take_varint(&mut pos);
            let mut s = 0i32;
            for _ in 0..len {
                let c = out[pos] as i32;
                pos += 1;
                s = s.wrapping_mul(131).wrapping_add(c);
            }
            h = mix(h, s);
        }
    }
    mix(h, pos as i32)
}
