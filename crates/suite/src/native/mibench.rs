//! Native mirrors of the MiBench benchmarks.

use crate::common::{fmix, mix, Rng};

/// basicmath: cubic solver, integer square root, angle conversions.
pub fn basicmath(n: i32) -> i32 {
    fn cbrt_approx(x: f64) -> f64 {
        if x == 0.0 {
            return 0.0;
        }
        let mut g = x;
        if g > 1.0 {
            g = x / 3.0;
        }
        for _ in 0..40 {
            g = (2.0 * g + x / (g * g)) / 3.0;
        }
        g
    }
    fn solve_cubic(a: f64, b: f64, c: f64, h0: i32) -> i32 {
        let mut h = h0;
        let q = (a * a - 3.0 * b) / 9.0;
        let r = (2.0 * a * a * a - 9.0 * a * b + 27.0 * c) / 54.0;
        let q3 = q * q * q;
        let r2 = r * r;
        if r2 < q3 {
            let z = r / q3.sqrt();
            let acosv = 1.5707963267948966 - z - z * z * z / 6.0 - 3.0 * z * z * z * z * z / 40.0;
            let th = acosv / 3.0;
            let sq = -2.0 * q.sqrt();
            let c1 = 1.0 - th * th / 2.0 + th * th * th * th / 24.0;
            let r1 = sq * c1 - a / 3.0;
            h = fmix(h, r1);
            h = mix(h, 3);
        } else {
            let mut e = cbrt_approx(r.abs() + (r2 - q3).sqrt());
            if r > 0.0 {
                e = -e;
            }
            let r1 = e + q / (e + 1e-300) - a / 3.0;
            h = fmix(h, r1);
            h = mix(h, 1);
        }
        h
    }
    fn isqrt(v: i32) -> i32 {
        let mut res = 0i32;
        let mut bit = 1i32 << 30;
        let mut x = v;
        while bit > x {
            bit = ((bit as u32) >> 2) as i32;
        }
        while bit != 0 {
            if x >= res.wrapping_add(bit) {
                x -= res.wrapping_add(bit);
                res = (((res as u32) >> 1) as i32).wrapping_add(bit);
            } else {
                res = ((res as u32) >> 1) as i32;
            }
            bit = ((bit as u32) >> 2) as i32;
        }
        res
    }
    let mut h = 0i32;
    for i in 0..n {
        let a = i as f64 / 10.0 - 5.0;
        let b = i as f64 / 25.0;
        let c = -1.0 - i as f64 / 50.0;
        h = solve_cubic(a, b, c, h);
    }
    let mut rng = Rng::new(31);
    for _ in 0..n * 4 {
        h = mix(h, isqrt(rng.below(1000000000)));
    }
    let two_pi = 6.283185307179586;
    for d in 0..360 {
        let rad = d as f64 * two_pi / 360.0;
        let back = rad * 360.0 / two_pi;
        h = fmix(h, rad);
        h = mix(h, back as i32);
    }
    h
}

/// bitcount: five bit-count strategies cross-checked.
pub fn bitcount(n: i32) -> i32 {
    fn count_shift(v: i32) -> i32 {
        let mut c = 0;
        let mut x = v as u32;
        while x != 0 {
            c += (x & 1) as i32;
            x >>= 1;
        }
        c
    }
    fn count_kernighan(v: i32) -> i32 {
        let mut c = 0;
        let mut x = v;
        while x != 0 {
            x &= x.wrapping_sub(1);
            c += 1;
        }
        c
    }
    fn count_swar(v: i32) -> i32 {
        let mut x = v as u32;
        x = x.wrapping_sub((x >> 1) & 0x55555555);
        x = (x & 0x33333333).wrapping_add((x >> 2) & 0x33333333);
        x = x.wrapping_add(x >> 4) & 0x0F0F0F0F;
        (x.wrapping_mul(0x01010101) >> 24) as i32
    }
    let mut tab = [0u8; 256];
    for (i, t) in tab.iter_mut().enumerate() {
        *t = count_shift(i as i32) as u8;
    }
    let count_table = |v: i32| -> i32 {
        let x = v as u32;
        tab[(x & 255) as usize] as i32
            + tab[((x >> 8) & 255) as usize] as i32
            + tab[((x >> 16) & 255) as usize] as i32
            + tab[((x >> 24) & 255) as usize] as i32
    };
    let mut rng = Rng::new(37);
    let (mut t1, mut t2, mut t3, mut t4, mut t5) = (0i32, 0i32, 0i32, 0i32, 0i32);
    for _ in 0..n {
        let v = rng.next();
        t1 = t1.wrapping_add(count_shift(v));
        t2 = t2.wrapping_add(count_kernighan(v));
        t3 = t3.wrapping_add(count_swar(v));
        t4 = t4.wrapping_add(count_table(v));
        t5 = t5.wrapping_add(v.count_ones() as i32);
    }
    if t1 != t5 || t2 != t5 || t3 != t5 || t4 != t5 {
        return -1;
    }
    mix(mix(0, t1), t5)
}

/// crc32: CRC-32 over a generated buffer in three chunkings.
pub fn crc32(n: i32) -> i32 {
    let mut tab = [0u32; 256];
    for (i, t) in tab.iter_mut().enumerate() {
        let mut c = i as u32;
        for _ in 0..8 {
            c = if c & 1 != 0 { 0xEDB88320 ^ (c >> 1) } else { c >> 1 };
        }
        *t = c;
    }
    let mut rng = Rng::new(41);
    let buf: Vec<u8> = (0..n).map(|_| rng.below(256) as u8).collect();
    let update = |crc: u32, byte: u8| tab[((crc ^ byte as u32) & 255) as usize] ^ (crc >> 8);
    let mut h = 0i32;
    let mut crc = 0xFFFFFFFFu32;
    for b in &buf {
        crc = update(crc, *b);
    }
    h = mix(h, !(crc as i32));
    crc = 0xFFFFFFFF;
    for i in 0..(n / 2) as usize {
        crc = update(crc, buf[i * 2]);
    }
    h = mix(h, !(crc as i32));
    crc = 0xFFFFFFFF;
    for b in buf.iter().rev() {
        crc = update(crc, *b);
    }
    mix(h, !(crc as i32))
}

/// stringsearch: Horspool over generated pseudo-text.
pub fn stringsearch(n: i32) -> i32 {
    let mut rng = Rng::new(43);
    let len = n as usize;
    let mut text = vec![0u8; len];
    let mut i = 0usize;
    while i < len {
        let wl = rng.below(8) + 2;
        let mut k = 0;
        while k < wl && i < len {
            text[i] = (97 + rng.below(26)) as u8;
            i += 1;
            k += 1;
        }
        if i < len {
            text[i] = 32;
            i += 1;
        }
    }
    let search = |text: &[u8], pat: &[u8]| -> i32 {
        let m = pat.len();
        let mut skip = [m as u8; 128];
        for k in 0..m - 1 {
            skip[pat[k] as usize] = (m - 1 - k) as u8;
        }
        let mut count = 0;
        let mut pos = 0usize;
        while pos + m <= text.len() {
            let mut j = m as isize - 1;
            while j >= 0 && text[pos + j as usize] == pat[j as usize] {
                j -= 1;
            }
            if j < 0 {
                count += 1;
                pos += 1;
            } else {
                pos += skip[text[pos + m - 1] as usize] as usize;
            }
        }
        count
    };
    let mut h = 0i32;
    for p in 0..32 {
        let m = (p % 5) + 2;
        let pat: Vec<u8> = (0..m).map(|_| (97 + rng.below(26)) as u8).collect();
        h = mix(h, search(&text, &pat));
    }
    h
}

/// sha: SHA-1 over a generated message.
pub fn sha(n: i32) -> i32 {
    let mut rng = Rng::new(47);
    let mut msg: Vec<u8> = (0..n).map(|_| rng.below(256) as u8).collect();
    let (mut h0, mut h1, mut h2, mut h3, mut h4) =
        (0x67452301u32, 0xEFCDAB89u32, 0x98BADCFEu32, 0x10325476u32, 0xC3D2E1F0u32);
    // Padding.
    let full = (n / 64) as usize;
    let rem = n as usize - full * 64;
    let tail_len = if rem + 9 > 64 { 128 } else { 64 };
    msg.resize(full * 64 + tail_len, 0);
    msg[n as usize] = 0x80;
    let bits = (n as u64) * 8;
    let end = full * 64 + tail_len;
    msg[end - 8..end].copy_from_slice(&bits.to_be_bytes());

    for block in msg.chunks_exact(64) {
        let mut w = [0u32; 80];
        for (t, wt) in w.iter_mut().take(16).enumerate() {
            *wt = u32::from_be_bytes(block[t * 4..t * 4 + 4].try_into().expect("len"));
        }
        for t in 16..80 {
            w[t] = (w[t - 3] ^ w[t - 8] ^ w[t - 14] ^ w[t - 16]).rotate_left(1);
        }
        let (mut a, mut b, mut c, mut d, mut e) = (h0, h1, h2, h3, h4);
        for (t, wt) in w.iter().enumerate() {
            let (f, k) = match t {
                0..=19 => ((b & c) | ((!b) & d), 0x5A827999u32),
                20..=39 => (b ^ c ^ d, 0x6ED9EBA1),
                40..=59 => ((b & c) | (b & d) | (c & d), 0x8F1BBCDC),
                _ => (b ^ c ^ d, 0xCA62C1D6),
            };
            let tmp = a
                .rotate_left(5)
                .wrapping_add(f)
                .wrapping_add(e)
                .wrapping_add(k)
                .wrapping_add(*wt);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = tmp;
        }
        h0 = h0.wrapping_add(a);
        h1 = h1.wrapping_add(b);
        h2 = h2.wrapping_add(c);
        h3 = h3.wrapping_add(d);
        h4 = h4.wrapping_add(e);
    }
    let mut h = 0i32;
    for v in [h0, h1, h2, h3, h4] {
        h = mix(h, v as i32);
    }
    h
}

/// adpcm: IMA-style encode + decode with drift measurement.
pub fn adpcm(n: i32) -> i32 {
    const NSTEPS: i32 = 89;
    let mut steps = [0i32; NSTEPS as usize];
    let mut s = 7i32;
    for st in steps.iter_mut() {
        *st = s;
        s = s + (s >> 1) / 2 + 1;
        if s > 32767 {
            s = 32767;
        }
    }
    fn index_adjust(code: i32) -> i32 {
        match code & 7 {
            0..=3 => -1,
            4 => 2,
            5 => 4,
            6 => 6,
            _ => 8,
        }
    }
    let clamp_index = |i: i32| i.clamp(0, NSTEPS - 1);
    let clamp16 = |v: i32| v.clamp(-32768, 32767);

    let mut rng = Rng::new(53);
    let pcm: Vec<i16> = (0..n)
        .map(|i| {
            let v = (i.wrapping_mul(37) as u32 % 4096) as i32 - 2048
                + ((i.wrapping_mul(11) as u32 % 1024) as i32 - 512)
                + rng.below(65)
                - 32;
            clamp16(v) as i16
        })
        .collect();

    let (mut enc_pred, mut enc_index) = (0i32, 0i32);
    let codes: Vec<u8> = pcm
        .iter()
        .map(|&sample| {
            let step = steps[enc_index as usize];
            let mut diff = sample as i32 - enc_pred;
            let mut code = 0;
            if diff < 0 {
                code = 8;
                diff = -diff;
            }
            let mut delta = step >> 3;
            if diff >= step {
                code |= 4;
                diff -= step;
                delta += step;
            }
            if diff >= step >> 1 {
                code |= 2;
                diff -= step >> 1;
                delta += step >> 1;
            }
            if diff >= step >> 2 {
                code |= 1;
                delta += step >> 2;
            }
            enc_pred = if code & 8 != 0 {
                clamp16(enc_pred - delta)
            } else {
                clamp16(enc_pred + delta)
            };
            enc_index = clamp_index(enc_index + index_adjust(code));
            code as u8
        })
        .collect();

    let (mut dec_pred, mut dec_index) = (0i32, 0i32);
    let mut h = 0i32;
    let mut drift = 0i64;
    for (i, &code) in codes.iter().enumerate() {
        let code = code as i32;
        let step = steps[dec_index as usize];
        let mut delta = step >> 3;
        if code & 4 != 0 {
            delta += step;
        }
        if code & 2 != 0 {
            delta += step >> 1;
        }
        if code & 1 != 0 {
            delta += step >> 2;
        }
        dec_pred = if code & 8 != 0 {
            clamp16(dec_pred - delta)
        } else {
            clamp16(dec_pred + delta)
        };
        dec_index = clamp_index(dec_index + index_adjust(code));
        let d = dec_pred - pcm[i] as i32;
        drift += d.wrapping_mul(d) as i64;
        if i as u32 % 997 == 0 {
            h = mix(h, dec_pred);
        }
    }
    mix(h, (drift / n as i64) as i32)
}

/// blowfish: Feistel cipher with PRNG-scheduled boxes.
pub fn blowfish(n: i32) -> i32 {
    let mut p = [0i32; 18];
    let mut sbox = [0i32; 1024];
    let mut rng = Rng::new(59);
    for v in p.iter_mut() {
        *v = rng.next();
    }
    for v in sbox.iter_mut() {
        *v = rng.next();
    }
    fn f_func(sbox: &[i32; 1024], x: i32) -> i32 {
        let xu = x as u32;
        let a = (xu >> 24) as usize;
        let b = ((xu >> 16) & 255) as usize;
        let c = ((xu >> 8) & 255) as usize;
        let d = (xu & 255) as usize;
        (sbox[a].wrapping_add(sbox[256 + b]) ^ sbox[512 + c]).wrapping_add(sbox[768 + d])
    }
    let encrypt = |p: &[i32; 18], sbox: &[i32; 1024], mut xl: i32, mut xr: i32| -> (i32, i32) {
        for i in 0..16 {
            xl ^= p[i];
            xr = f_func(sbox, xl) ^ xr;
            std::mem::swap(&mut xl, &mut xr);
        }
        std::mem::swap(&mut xl, &mut xr);
        xr ^= p[16];
        xl ^= p[17];
        (xl, xr)
    };
    let decrypt = |p: &[i32; 18], sbox: &[i32; 1024], mut xl: i32, mut xr: i32| -> (i32, i32) {
        for i in (2..18).rev() {
            xl ^= p[i];
            xr = f_func(sbox, xl) ^ xr;
            std::mem::swap(&mut xl, &mut xr);
        }
        std::mem::swap(&mut xl, &mut xr);
        xr ^= p[1];
        xl ^= p[0];
        (xl, xr)
    };
    // Key schedule: encrypt the zero block through the P-array.
    let (mut xl, mut xr) = (0i32, 0i32);
    for i in 0..9 {
        let (l, r) = encrypt(&p, &sbox, xl, xr);
        xl = l;
        xr = r;
        p[i * 2] = xl;
        p[i * 2 + 1] = xr;
    }
    let mut rng = Rng::new(61);
    let mut data: Vec<i32> = (0..n * 2).map(|_| rng.next()).collect();
    for b in 0..n as usize {
        let (l, r) = encrypt(&p, &sbox, data[b * 2], data[b * 2 + 1]);
        data[b * 2] = l;
        data[b * 2 + 1] = r;
    }
    let mut h = 0i32;
    let mut b = 0usize;
    while b < n as usize {
        h = mix(h, data[b * 2]);
        b += 8;
    }
    let mut rng = Rng::new(61);
    let mut ok = 1;
    for b in 0..n as usize {
        let (l, r) = decrypt(&p, &sbox, data[b * 2], data[b * 2 + 1]);
        if l != rng.next() {
            ok = 0;
        }
        if r != rng.next() {
            ok = 0;
        }
    }
    mix(h, ok)
}

/// rijndael: AES-128 ECB with a computed S-box.
pub fn rijndael(n: i32) -> i32 {
    fn xtime(x: i32) -> i32 {
        let v = x << 1;
        (if x & 0x80 != 0 { v ^ 0x1B } else { v }) & 0xFF
    }
    fn gmul(a: i32, b: i32) -> i32 {
        let (mut p, mut x, mut y) = (0, a, b);
        for _ in 0..8 {
            if y & 1 != 0 {
                p ^= x;
            }
            x = xtime(x);
            y >>= 1;
        }
        p & 0xFF
    }
    fn rotl8(x: i32, k: i32) -> i32 {
        ((x << k) | ((x as u32) >> (8 - k)) as i32) & 0xFF
    }
    let mut sbox = [0u8; 256];
    sbox[0] = 0x63;
    for a in 1..256 {
        let mut inv = 1;
        for b in 1..256 {
            if gmul(a, b) == 1 {
                inv = b;
                break;
            }
        }
        sbox[a as usize] =
            ((inv ^ rotl8(inv, 1) ^ rotl8(inv, 2) ^ rotl8(inv, 3) ^ rotl8(inv, 4) ^ 0x63) & 0xFF)
                as u8;
    }
    let sub = |x: i32| sbox[(x & 0xFF) as usize] as i32;

    let mut rng = Rng::new(67);
    let mut rkeys = [0u8; 176];
    for k in rkeys.iter_mut().take(16) {
        *k = rng.below(256) as u8;
    }
    let mut rcon = 1i32;
    let mut i = 16usize;
    while i < 176 {
        let (mut t0, mut t1, mut t2, mut t3) = (
            rkeys[i - 4] as i32,
            rkeys[i - 3] as i32,
            rkeys[i - 2] as i32,
            rkeys[i - 1] as i32,
        );
        if i % 16 == 0 {
            let tmp = t0;
            t0 = sub(t1) ^ rcon;
            t1 = sub(t2);
            t2 = sub(t3);
            t3 = sub(tmp);
            rcon = xtime(rcon);
        }
        rkeys[i] = (rkeys[i - 16] as i32 ^ t0) as u8;
        rkeys[i + 1] = (rkeys[i - 15] as i32 ^ t1) as u8;
        rkeys[i + 2] = (rkeys[i - 14] as i32 ^ t2) as u8;
        rkeys[i + 3] = (rkeys[i - 13] as i32 ^ t3) as u8;
        i += 4;
    }

    let mut data: Vec<u8> = (0..n * 16).map(|_| rng.below(256) as u8).collect();
    let mut state = [0u8; 32];
    for blk in 0..n as usize {
        let p = blk * 16;
        state[..16].copy_from_slice(&data[p..p + 16]);
        let add_round_key = |state: &mut [u8; 32], round: usize| {
            for i in 0..16 {
                state[i] ^= rkeys[round * 16 + i];
            }
        };
        let sub_shift = |state: &mut [u8; 32], sbox: &[u8; 256]| {
            for i in 0..16 {
                state[16 + i] = sbox[state[i] as usize];
            }
            for r in 0..4usize {
                for c in 0..4usize {
                    state[r + c * 4] = state[16 + r + ((c + r) % 4) * 4];
                }
            }
        };
        let mix_columns = |state: &mut [u8; 32]| {
            for c in 0..4usize {
                let a0 = state[c * 4] as i32;
                let a1 = state[c * 4 + 1] as i32;
                let a2 = state[c * 4 + 2] as i32;
                let a3 = state[c * 4 + 3] as i32;
                state[c * 4] = ((xtime(a0) ^ (xtime(a1) ^ a1) ^ a2 ^ a3) & 0xFF) as u8;
                state[c * 4 + 1] = ((a0 ^ xtime(a1) ^ (xtime(a2) ^ a2) ^ a3) & 0xFF) as u8;
                state[c * 4 + 2] = ((a0 ^ a1 ^ xtime(a2) ^ (xtime(a3) ^ a3)) & 0xFF) as u8;
                state[c * 4 + 3] = (((xtime(a0) ^ a0) ^ a1 ^ a2 ^ xtime(a3)) & 0xFF) as u8;
            }
        };
        add_round_key(&mut state, 0);
        for round in 1..10 {
            sub_shift(&mut state, &sbox);
            mix_columns(&mut state);
            add_round_key(&mut state, round);
        }
        sub_shift(&mut state, &sbox);
        add_round_key(&mut state, 10);
        data[p..p + 16].copy_from_slice(&state[..16]);
    }
    let mut h = 0i32;
    let mut i = 0usize;
    while i < (n * 16) as usize {
        h = mix(h, i32::from_le_bytes(data[i..i + 4].try_into().expect("len")));
        i += 4;
    }
    h
}

/// jpeg: forward DCT + quantization + zigzag RLE over a synthetic image.
pub fn jpeg(n: i32) -> i32 {
    // Zigzag table (mirrors the WaCC construction).
    let mut zig = [0u8; 64];
    let mut idx = 0usize;
    for s in 0..15i32 {
        if s % 2 == 0 {
            let mut r = s.min(7);
            while r >= 0 && s - r <= 7 {
                zig[idx] = (r * 8 + (s - r)) as u8;
                idx += 1;
                r -= 1;
            }
        } else {
            let mut c = s.min(7);
            while c >= 0 && s - c <= 7 {
                zig[idx] = ((s - c) * 8 + c) as u8;
                idx += 1;
                c -= 1;
            }
        }
    }
    let mut qtab = [0i32; 64];
    for r in 0..8 {
        for c in 0..8 {
            qtab[r * 8 + c] = 8 + (r + c) as i32 * 3;
        }
    }
    fn cos_approx(x: f64) -> f64 {
        let two_pi = 6.283185307179586;
        let mut v = x - (x / two_pi).floor() * two_pi;
        if v > 3.141592653589793 {
            v -= two_pi;
        }
        let v2 = v * v;
        1.0 - v2 / 2.0 + v2 * v2 / 24.0 - v2 * v2 * v2 / 720.0 + v2 * v2 * v2 * v2 / 40320.0
            - v2 * v2 * v2 * v2 * v2 / 3628800.0
    }
    fn wasm_nearest(x: f64) -> f64 {
        let r = x.round();
        if (x - x.trunc()).abs() == 0.5 {
            2.0 * (x / 2.0).round()
        } else {
            r
        }
    }
    let img_w = (n * 8) as usize;
    let mut rng = Rng::new(71);
    let mut img = vec![0u8; img_w * img_w];
    for y in 0..img_w {
        for x in 0..img_w {
            let v = ((x as i32).wrapping_mul(3).wrapping_add((y as i32).wrapping_mul(2)) as u32
                % 256) as i32;
            img[y * img_w + x] = ((v + rng.below(32)) & 255) as u8;
        }
    }
    let mut out: Vec<u8> = Vec::new();
    let mut dcsum = 0i32;
    let mut blk = [0f64; 64];
    let mut coef = [0f64; 64];
    for by in 0..n as usize {
        for bx in 0..n as usize {
            for x in 0..8 {
                for y in 0..8 {
                    let px = img[(by * 8 + x) * img_w + bx * 8 + y] as i32;
                    blk[x * 8 + y] = (px - 128) as f64;
                }
            }
            for u in 0..8usize {
                for v in 0..8usize {
                    let mut sum = 0f64;
                    for x in 0..8usize {
                        for y in 0..8usize {
                            let cx = cos_approx(
                                ((2 * x + 1) * u) as f64 * 0.19634954084936207,
                            );
                            let cy = cos_approx(
                                ((2 * y + 1) * v) as f64 * 0.19634954084936207,
                            );
                            sum += blk[x * 8 + y] * cx * cy;
                        }
                    }
                    let cu = if u == 0 { 0.7071067811865476 } else { 1.0 };
                    let cv = if v == 0 { 0.7071067811865476 } else { 1.0 };
                    coef[u * 8 + v] = 0.25 * cu * cv * sum;
                }
            }
            let mut runlen = 0i32;
            for k in 0..64 {
                let pos = zig[k] as usize;
                let quant = wasm_nearest(coef[pos] / qtab[pos] as f64) as i32;
                if k == 0 {
                    dcsum = dcsum.wrapping_add(quant);
                }
                if quant == 0 {
                    runlen += 1;
                } else {
                    out.push((runlen & 255) as u8);
                    out.push((quant & 255) as u8);
                    out.push(((quant >> 8) & 255) as u8);
                    runlen = 0;
                }
            }
            out.push(255);
        }
    }
    let mut h = mix(0, dcsum);
    h = mix(h, out.len() as i32);
    let mut i = 0usize;
    while i < out.len() {
        h = mix(h, out[i] as i32);
        i += 7;
    }
    h
}
