//! Native Rust implementations mirroring every WaCC benchmark
//! operation-for-operation (same arithmetic in the same order, so the
//! checksums are bit-identical).

// These mirrors must reproduce the WaCC source literally — the same
// float literals (not `consts::PI`), the same index arithmetic, the same
// control shape — or the differential checksums diverge. Style lints that
// would rewrite the arithmetic are therefore off for this subtree.
#![allow(clippy::approx_constant)]
#![allow(clippy::needless_range_loop)]
#![allow(clippy::manual_range_contains)]
#![allow(clippy::assign_op_pattern)]
#![allow(clippy::identity_op)]
#![allow(clippy::int_plus_one)]
#![allow(clippy::manual_is_multiple_of)]
#![allow(clippy::manual_clamp)]

pub mod apps;
pub mod jetstream2;
pub mod mibench;
pub mod polybench;
