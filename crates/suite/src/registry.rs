//! The benchmark registry: all 50 WABench programs (Table 2).

// Footprint formulas keep their dimensional form (`n*n * arrays * 8`)
// even when a factor is 1, so each benchmark's memory layout reads off
// the registry directly.
#![allow(clippy::identity_op)]
// The registry is a single literal list built with one `push` per
// benchmark so entries can be reordered/commented individually.
#![allow(clippy::vec_init_then_push)]

use crate::native;
use crate::{Benchmark, Group, Sizes};

macro_rules! bench {
    ($name:literal, $group:ident, $domain:literal, $desc:literal,
     $file:literal, $native:path, test=$t:literal, profile=$p:literal,
     timing=$w:literal, footprint=$fp:expr) => {
        Benchmark {
            name: $name,
            group: Group::$group,
            domain: $domain,
            description: $desc,
            source: include_str!($file),
            native: $native,
            sizes: Sizes {
                test: $t,
                profile: $p,
                timing: $w,
            },
            native_footprint: $fp,
        }
    };
}

/// All 50 benchmarks in Table 2 order.
pub fn all() -> &'static [Benchmark] {
    static ALL: std::sync::OnceLock<Vec<Benchmark>> = std::sync::OnceLock::new();
    ALL.get_or_init(build)
}

/// Finds a benchmark by name.
pub fn by_name(name: &str) -> Option<&'static Benchmark> {
    all().iter().find(|b| b.name == name)
}

fn build() -> Vec<Benchmark> {
    let mut v = Vec::with_capacity(50);
    // ---- JetStream2 (4) ----
    v.push(bench!(
        "gcc-loops", JetStream2, "Compilation",
        "Loops used to tune the GCC vectorizer",
        "../programs/jetstream2/gcc_loops.wc", native::jetstream2::gcc_loops,
        test = 256, profile = 20000, timing = 400000,
        footprint = |n| n as usize * 24
    ));
    v.push(bench!(
        "hashset", JetStream2, "Hash table",
        "Hash table operations of web page loading",
        "../programs/jetstream2/hashset.wc", native::jetstream2::hashset,
        test = 200, profile = 20000, timing = 300000,
        footprint = |n| (n as usize * 4).next_power_of_two() * 4
    ));
    v.push(bench!(
        "quicksort", JetStream2, "Data Sorting",
        "Quick sort algorithm implementation",
        "../programs/jetstream2/quicksort.wc", native::jetstream2::quicksort,
        test = 500, profile = 50000, timing = 1000000,
        footprint = |n| n as usize * 4
    ));
    v.push(bench!(
        "tsf", JetStream2, "Data processing",
        "Implementation of a typed stream format",
        "../programs/jetstream2/tsf.wc", native::jetstream2::tsf,
        test = 200, profile = 20000, timing = 300000,
        footprint = |n| n as usize * 14
    ));
    // ---- MiBench (9) ----
    v.push(bench!(
        "basicmath", MiBench, "Automotive",
        "Basic mathematical computations",
        "../programs/mibench/basicmath.wc", native::mibench::basicmath,
        test = 50, profile = 2000, timing = 30000,
        footprint = |_| 4096
    ));
    v.push(bench!(
        "bitcount", MiBench, "Automotive",
        "Bit manipulations",
        "../programs/mibench/bitcount.wc", native::mibench::bitcount,
        test = 500, profile = 50000, timing = 1500000,
        footprint = |_| 4096
    ));
    v.push(bench!(
        "jpeg", MiBench, "Consumer multimedia",
        "JPEG image compression/decompression",
        "../programs/mibench/jpeg.wc", native::mibench::jpeg,
        test = 3, profile = 6, timing = 24,
        footprint = |n| (n as usize * 8).pow(2) * 2
    ));
    v.push(bench!(
        "stringsearch", MiBench, "Office automation",
        "Searching given words in phrases",
        "../programs/mibench/stringsearch.wc", native::mibench::stringsearch,
        test = 2000, profile = 40000, timing = 500000,
        footprint = |n| n as usize
    ));
    v.push(bench!(
        "blowfish", MiBench, "Security",
        "Symmetric block cipher",
        "../programs/mibench/blowfish.wc", native::mibench::blowfish,
        test = 200, profile = 20000, timing = 400000,
        footprint = |n| n as usize * 8 + 4168
    ));
    v.push(bench!(
        "rijndael", MiBench, "Security",
        "Block cipher with variable length keys",
        "../programs/mibench/rijndael.wc", native::mibench::rijndael,
        test = 50, profile = 3000, timing = 60000,
        footprint = |n| n as usize * 16 + 512
    ));
    v.push(bench!(
        "sha", MiBench, "Security",
        "Secure hash algorithm",
        "../programs/mibench/sha.wc", native::mibench::sha,
        test = 1000, profile = 100000, timing = 2000000,
        footprint = |n| n as usize + 512
    ));
    v.push(bench!(
        "adpcm", MiBench, "Telecommunications",
        "Adaptive differential pulse code modulation",
        "../programs/mibench/adpcm.wc", native::mibench::adpcm,
        test = 2000, profile = 100000, timing = 2000000,
        footprint = |n| n as usize * 3
    ));
    v.push(bench!(
        "crc32", MiBench, "Telecommunications",
        "32-bit Cyclic Redundancy Check",
        "../programs/mibench/crc32.wc", native::mibench::crc32,
        test = 4000, profile = 200000, timing = 4000000,
        footprint = |n| n as usize + 1024
    ));
    // ---- PolyBench (30) ----
    v.push(bench!(
        "correlation", PolyBench, "Data mining",
        "Correlation computation",
        "../programs/polybench/correlation.wc", native::polybench::correlation,
        test = 16, profile = 48, timing = 140,
        footprint = |n| (n as usize) * (n as usize) * 3 * 8
    ));
    v.push(bench!(
        "covariance", PolyBench, "Data mining",
        "Covariance computation",
        "../programs/polybench/covariance.wc", native::polybench::covariance,
        test = 16, profile = 48, timing = 140,
        footprint = |n| (n as usize) * (n as usize) * 3 * 8
    ));
    v.push(bench!(
        "gemm", PolyBench, "Linear algebra",
        "Matrix multiplication",
        "../programs/polybench/gemm.wc", native::polybench::gemm,
        test = 16, profile = 48, timing = 160,
        footprint = |n| (n as usize) * (n as usize) * 3 * 8
    ));
    v.push(bench!(
        "gemver", PolyBench, "Linear algebra",
        "Vector multiplication and matrix addition",
        "../programs/polybench/gemver.wc", native::polybench::gemver,
        test = 32, profile = 300, timing = 1200,
        footprint = |n| (n as usize) * (n as usize) * 1 * 8
    ));
    v.push(bench!(
        "gesummv", PolyBench, "Linear algebra",
        "Scalar, vector and matrix multiplication",
        "../programs/polybench/gesummv.wc", native::polybench::gesummv,
        test = 32, profile = 300, timing = 1200,
        footprint = |n| (n as usize) * (n as usize) * 2 * 8
    ));
    v.push(bench!(
        "symm", PolyBench, "Linear algebra",
        "Symmetric matrix multiplication",
        "../programs/polybench/symm.wc", native::polybench::symm,
        test = 16, profile = 48, timing = 140,
        footprint = |n| (n as usize) * (n as usize) * 3 * 8
    ));
    v.push(bench!(
        "syr2k", PolyBench, "Linear algebra",
        "Symmetric rank-2k operations",
        "../programs/polybench/syr2k.wc", native::polybench::syr2k,
        test = 16, profile = 48, timing = 140,
        footprint = |n| (n as usize) * (n as usize) * 3 * 8
    ));
    v.push(bench!(
        "syrk", PolyBench, "Linear algebra",
        "Symmetric rank-k operations",
        "../programs/polybench/syrk.wc", native::polybench::syrk,
        test = 16, profile = 48, timing = 160,
        footprint = |n| (n as usize) * (n as usize) * 2 * 8
    ));
    v.push(bench!(
        "trmm", PolyBench, "Linear algebra",
        "Triangular matrix multiplication",
        "../programs/polybench/trmm.wc", native::polybench::trmm,
        test = 16, profile = 48, timing = 160,
        footprint = |n| (n as usize) * (n as usize) * 2 * 8
    ));
    v.push(bench!(
        "2mm", PolyBench, "Linear algebra",
        "Two matrix multiplications",
        "../programs/polybench/two_mm.wc", native::polybench::two_mm,
        test = 16, profile = 48, timing = 140,
        footprint = |n| (n as usize) * (n as usize) * 5 * 8
    ));
    v.push(bench!(
        "3mm", PolyBench, "Linear algebra",
        "Three matrix multiplications",
        "../programs/polybench/three_mm.wc", native::polybench::three_mm,
        test = 16, profile = 40, timing = 120,
        footprint = |n| (n as usize) * (n as usize) * 7 * 8
    ));
    v.push(bench!(
        "atax", PolyBench, "Linear algebra",
        "Matrix transpose and vector multiplication",
        "../programs/polybench/atax.wc", native::polybench::atax,
        test = 32, profile = 300, timing = 1200,
        footprint = |n| (n as usize) * (n as usize) * 1 * 8
    ));
    v.push(bench!(
        "bicg", PolyBench, "Linear algebra",
        "BiCG sub kernel of BiCGStab linear solver",
        "../programs/polybench/bicg.wc", native::polybench::bicg,
        test = 32, profile = 300, timing = 1200,
        footprint = |n| (n as usize) * (n as usize) * 1 * 8
    ));
    v.push(bench!(
        "doitgen", PolyBench, "Linear algebra",
        "Multiresolution analysis kernel",
        "../programs/polybench/doitgen.wc", native::polybench::doitgen,
        test = 8, profile = 20, timing = 44,
        footprint = |n| (n as usize).pow(3) * 8
    ));
    v.push(bench!(
        "mvt", PolyBench, "Linear algebra",
        "Matrix vector product and transpose",
        "../programs/polybench/mvt.wc", native::polybench::mvt,
        test = 32, profile = 300, timing = 1200,
        footprint = |n| (n as usize) * (n as usize) * 1 * 8
    ));
    v.push(bench!(
        "cholesky", PolyBench, "Linear algebra solver",
        "Cholesky decomposition",
        "../programs/polybench/cholesky.wc", native::polybench::cholesky,
        test = 16, profile = 40, timing = 120,
        footprint = |n| (n as usize) * (n as usize) * 2 * 8
    ));
    v.push(bench!(
        "durbin", PolyBench, "Linear algebra solver",
        "Toeplitz system solver",
        "../programs/polybench/durbin.wc", native::polybench::durbin,
        test = 32, profile = 400, timing = 2000,
        footprint = |n| (n as usize).pow(3) * 8
    ));
    v.push(bench!(
        "gramschmidt", PolyBench, "Linear algebra solver",
        "Gram-Schmidt decomposition",
        "../programs/polybench/gramschmidt.wc", native::polybench::gramschmidt,
        test = 16, profile = 40, timing = 120,
        footprint = |n| (n as usize) * (n as usize) * 3 * 8
    ));
    v.push(bench!(
        "lu", PolyBench, "Linear algebra solver",
        "LU decomposition",
        "../programs/polybench/lu.wc", native::polybench::lu,
        test = 16, profile = 40, timing = 120,
        footprint = |n| (n as usize) * (n as usize) * 2 * 8
    ));
    v.push(bench!(
        "ludcmp", PolyBench, "Linear algebra solver",
        "LU decomposition with substitution",
        "../programs/polybench/ludcmp.wc", native::polybench::ludcmp,
        test = 16, profile = 40, timing = 120,
        footprint = |n| (n as usize) * (n as usize) * 2 * 8
    ));
    v.push(bench!(
        "trisolv", PolyBench, "Linear algebra solver",
        "Triangular solver",
        "../programs/polybench/trisolv.wc", native::polybench::trisolv,
        test = 32, profile = 400, timing = 2000,
        footprint = |n| (n as usize) * (n as usize) * 1 * 8
    ));
    v.push(bench!(
        "deriche", PolyBench, "Image processing",
        "Edge detection filter",
        "../programs/polybench/deriche.wc", native::polybench::deriche,
        test = 16, profile = 100, timing = 400,
        footprint = |n| (n as usize) * (n as usize) * 4 * 8
    ));
    v.push(bench!(
        "floyd-warshall", PolyBench, "Graph algorithms",
        "Computing shortest paths in a graph",
        "../programs/polybench/floyd_warshall.wc", native::polybench::floyd_warshall,
        test = 16, profile = 48, timing = 140,
        footprint = |n| (n as usize) * (n as usize) * 1 * 4
    ));
    v.push(bench!(
        "nussinov", PolyBench, "Sequence alignment",
        "RNA sequence alignment",
        "../programs/polybench/nussinov.wc", native::polybench::nussinov,
        test = 16, profile = 48, timing = 140,
        footprint = |n| (n as usize) * (n as usize) * 1 * 4
    ));
    v.push(bench!(
        "adi", PolyBench, "Stencil",
        "Alternating direction implicit solver",
        "../programs/polybench/adi.wc", native::polybench::adi,
        test = 16, profile = 48, timing = 120,
        footprint = |n| (n as usize) * (n as usize) * 4 * 8
    ));
    v.push(bench!(
        "fdtd-2d", PolyBench, "Stencil",
        "2-D finite-difference time-domain kernel",
        "../programs/polybench/fdtd_2d.wc", native::polybench::fdtd_2d,
        test = 16, profile = 48, timing = 140,
        footprint = |n| (n as usize) * (n as usize) * 3 * 8
    ));
    v.push(bench!(
        "heat-3d", PolyBench, "Stencil",
        "Heat equation over 3D data domain",
        "../programs/polybench/heat_3d.wc", native::polybench::heat_3d,
        test = 8, profile = 20, timing = 44,
        footprint = |n| (n as usize).pow(3) * 8
    ));
    v.push(bench!(
        "jacobi-1d", PolyBench, "Stencil",
        "1-D Jacobi stencil computation",
        "../programs/polybench/jacobi_1d.wc", native::polybench::jacobi_1d,
        test = 64, profile = 1000, timing = 8000,
        footprint = |n| (n as usize) * (n as usize) * 2 * 8
    ));
    v.push(bench!(
        "jacobi-2d", PolyBench, "Stencil",
        "2-D Jacobi stencil computation",
        "../programs/polybench/jacobi_2d.wc", native::polybench::jacobi_2d,
        test = 16, profile = 48, timing = 140,
        footprint = |n| (n as usize) * (n as usize) * 2 * 8
    ));
    v.push(bench!(
        "seidel-2d", PolyBench, "Stencil",
        "2-D Seidel stencil computation",
        "../programs/polybench/seidel_2d.wc", native::polybench::seidel_2d,
        test = 16, profile = 48, timing = 140,
        footprint = |n| (n as usize) * (n as usize) * 1 * 8
    ));
    // ---- Whole Applications (7) ----
    v.push(bench!(
        "bzip2", Apps, "File management",
        "File compression/decompression",
        "../programs/apps/bzip2.wc", native::apps::bzip2,
        test = 600, profile = 4000, timing = 20000,
        footprint = |n| n as usize * 2 + 2048
    ));
    v.push(bench!(
        "espeak", Apps, "NLP",
        "Text-to-Speech synthesizer",
        "../programs/apps/espeak.wc", native::apps::espeak,
        test = 400, profile = 8000, timing = 60000,
        footprint = |n| n as usize * 230
    ));
    v.push(bench!(
        "facedetection", Apps, "Computer vision",
        "Detecting human faces in images",
        "../programs/apps/facedetection.wc", native::apps::facedetection,
        test = 64, profile = 256, timing = 768,
        footprint = |n| (n as usize) * (n as usize) * 8 * 2
    ));
    v.push(bench!(
        "gnuchess", Apps, "Gaming",
        "Chess-playing game",
        "../programs/apps/gnuchess.wc", native::apps::gnuchess,
        test = 2, profile = 3, timing = 5,
        footprint = |_| 16384
    ));
    v.push(bench!(
        "mnist", Apps, "Machine learning",
        "A neural network for digit recognition",
        "../programs/apps/mnist.wc", native::apps::mnist,
        test = 30, profile = 300, timing = 1000,
        footprint = |_| (64 * 32 + 32 * 10 + 200) * 8
    ));
    v.push(bench!(
        "snappy", Apps, "Big data processing",
        "Data compression/decompression library",
        "../programs/apps/snappy.wc", native::apps::snappy,
        test = 5000, profile = 200000, timing = 4000000,
        footprint = |n| n as usize * 3 + 65536
    ));
    v.push(bench!(
        "whitedb", Apps, "Database",
        "Lightweight NoSQL database",
        "../programs/apps/whitedb.wc", native::apps::whitedb,
        test = 800, profile = 8000, timing = 40000,
        footprint = |n| n as usize * 20 + 262144
    ));
    v
}
