//! # suite — WABench
//!
//! The 50-program benchmark suite of the paper (Table 2): 4 JetStream2
//! programs, 9 MiBench programs, all 30 PolyBench kernels, and 7 whole
//! applications. Every benchmark exists twice:
//!
//! - a **WaCC** source (compiled to Wasm + WASI at any `-O` level), and
//! - a **native Rust** implementation mirroring it operation-for-operation.
//!
//! Both produce the *same i32 checksum* for the same scale argument, which
//! the test suite verifies differentially across all five engines.
//!
//! ## Conventions
//!
//! - Entry point: `export fn run(n: i32) -> i32` — `n` scales the
//!   workload, the result is a checksum.
//! - Shared helpers ([`COMMON`]): a deterministic xorshift32 PRNG
//!   (`srand`/`rand32`/`randn`), FNV-style checksum mixing (`mix`,
//!   `fmix`), and scratch space at addresses `64..128`.
//! - Benchmark data lives at addresses ≥ 64 KiB.
//!
//! ```
//! let b = suite::by_name("crc32").expect("registered");
//! let bytes = b.compile(wacc::OptLevel::O2).expect("compiles");
//! assert_eq!(&bytes[..4], b"\0asm");
//! let native = (b.native)(b.sizes.test);
//! assert_eq!(native, b.checksum_via_evaluator(b.sizes.test).unwrap());
//! ```

#![warn(missing_docs)]

pub mod native;

use wacc::OptLevel;

/// Shared WaCC helpers prepended to every benchmark source.
///
/// Scratch addresses `64..128` belong to these helpers (the compiler
/// prelude owns `0..64`, string literals start at 128).
pub const COMMON: &str = r#"
// ---- WABench common helpers ----
global __rng: i32 = -1831433763;

fn srand(s: i32) {
    __rng = s | 1;
}

fn rand32() -> i32 {
    let x: i32 = __rng;
    x = x ^ (x << 13);
    x = x ^ (x >>> 17);
    x = x ^ (x << 5);
    __rng = x;
    return x;
}

fn randn(n: i32) -> i32 {
    return remu(rand32(), n);
}

fn mix(h: i32, v: i32) -> i32 {
    return (h ^ v) * 16777619;
}

fn fmix(h: i32, x: f64) -> i32 {
    store_f64(64, x);
    let b: i64 = load_i64(64);
    return mix(mix(h, b as i32), (b >>> 32) as i32);
}
"#;

/// Benchmark suite groups (Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Group {
    /// Web benchmarks from JetStream2.
    JetStream2,
    /// Embedded benchmarks from MiBench.
    MiBench,
    /// Numerical kernels from PolyBench.
    PolyBench,
    /// Whole applications.
    Apps,
}

impl Group {
    /// All groups in presentation order.
    pub fn all() -> [Group; 4] {
        [Group::JetStream2, Group::MiBench, Group::PolyBench, Group::Apps]
    }

    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            Group::JetStream2 => "JetStream2",
            Group::MiBench => "MiBench",
            Group::PolyBench => "PolyBench",
            Group::Apps => "Whole Applications",
        }
    }
}

impl std::fmt::Display for Group {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Workload scale arguments for the three measurement contexts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Sizes {
    /// Tiny: unit/differential tests.
    pub test: i32,
    /// Medium: profiled (simulated) runs.
    pub profile: i32,
    /// Large: wall-clock timing runs.
    pub timing: i32,
}

/// One WABench benchmark.
pub struct Benchmark {
    /// Short name (Table 2 spelling).
    pub name: &'static str,
    /// Suite group.
    pub group: Group,
    /// Application domain (Table 2).
    pub domain: &'static str,
    /// One-line description.
    pub description: &'static str,
    /// WaCC source (without [`COMMON`], which [`Benchmark::full_source`]
    /// prepends).
    pub source: &'static str,
    /// The mirrored native implementation.
    pub native: fn(i32) -> i32,
    /// Scale arguments.
    pub sizes: Sizes,
    /// Approximate native data footprint in bytes at scale `n`
    /// (for MRSS normalization).
    pub native_footprint: fn(i32) -> usize,
}

impl std::fmt::Debug for Benchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Benchmark")
            .field("name", &self.name)
            .field("group", &self.group)
            .finish()
    }
}

impl Benchmark {
    /// The complete WaCC source (common helpers + benchmark).
    pub fn full_source(&self) -> String {
        format!("{COMMON}\n{}", self.source)
    }

    /// Compiles the benchmark to Wasm binary bytes.
    ///
    /// # Errors
    ///
    /// Propagates compiler errors (a registered benchmark never fails).
    pub fn compile(&self, level: OptLevel) -> Result<Vec<u8>, wacc::CompileError> {
        wacc::compile_to_bytes(&self.full_source(), level)
    }

    /// Runs `run(n)` on the WaCC reference evaluator (used in tests).
    ///
    /// # Errors
    ///
    /// Returns an error string on compile failure or trap.
    pub fn checksum_via_evaluator(&self, n: i32) -> Result<i32, String> {
        let program =
            wacc::frontend(&self.full_source(), OptLevel::O0).map_err(|e| e.to_string())?;
        let mut ev = wacc::eval::Evaluator::new(&program);
        match ev.call("run", &[wacc::eval::V::I32(n)]) {
            Ok(Some(wacc::eval::V::I32(v))) => Ok(v),
            Ok(other) => Err(format!("run() returned {other:?}")),
            Err(t) => Err(t.to_string()),
        }
    }
}

mod registry;

pub use registry::{all, by_name};

/// The mirrored native-side helpers matching [`COMMON`].
pub mod common {
    /// The xorshift32 PRNG matching the WaCC `rand32`.
    #[derive(Debug, Clone)]
    pub struct Rng(pub i32);

    impl Rng {
        /// Matches `srand(s)`.
        pub fn new(seed: i32) -> Rng {
            Rng(seed | 1)
        }

        /// Matches `rand32()`.
        #[allow(clippy::should_implement_trait)] // mirrors the .wc builtin name
        pub fn next(&mut self) -> i32 {
            let mut x = self.0;
            x ^= x << 13;
            x = ((x as u32) >> 17) as i32 ^ x;
            x ^= x << 5;
            self.0 = x;
            x
        }

        /// Matches `randn(n)`.
        pub fn below(&mut self, n: i32) -> i32 {
            (self.next() as u32 % n as u32) as i32
        }
    }

    /// Matches the WaCC `mix`.
    pub fn mix(h: i32, v: i32) -> i32 {
        (h ^ v).wrapping_mul(16777619)
    }

    /// Matches the WaCC `fmix`.
    pub fn fmix(h: i32, x: f64) -> i32 {
        let b = x.to_bits();
        mix(mix(h, b as i32), (b >> 32) as i32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_fifty_benchmarks() {
        assert_eq!(all().len(), 50);
        assert_eq!(all().iter().filter(|b| b.group == Group::JetStream2).count(), 4);
        assert_eq!(all().iter().filter(|b| b.group == Group::MiBench).count(), 9);
        assert_eq!(all().iter().filter(|b| b.group == Group::PolyBench).count(), 30);
        assert_eq!(all().iter().filter(|b| b.group == Group::Apps).count(), 7);
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = all().iter().map(|b| b.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 50);
    }

    #[test]
    fn lookup_by_name() {
        assert!(by_name("gemm").is_some());
        assert!(by_name("nope").is_none());
    }

    #[test]
    fn common_rng_matches_wacc() {
        // Evaluate rand32 three times in WaCC and natively.
        let src = format!(
            "{COMMON}\nexport fn run(n: i32) -> i32 {{ srand(n); let h: i32 = 0; h = mix(h, rand32()); h = mix(h, rand32()); h = mix(h, rand32()); return h; }}"
        );
        let program = wacc::frontend(&src, OptLevel::O0).unwrap();
        let mut ev = wacc::eval::Evaluator::new(&program);
        let got = match ev.call("run", &[wacc::eval::V::I32(42)]).unwrap() {
            Some(wacc::eval::V::I32(v)) => v,
            other => panic!("{other:?}"),
        };
        let mut rng = common::Rng::new(42);
        let mut h = 0i32;
        for _ in 0..3 {
            h = common::mix(h, rng.next());
        }
        assert_eq!(got, h);
    }
}

#[cfg(test)]
mod validation {
    use super::*;

    /// Every registered benchmark: evaluator checksum == native checksum.
    #[test]
    fn native_matches_evaluator_at_test_scale() {
        for b in all() {
            let native = (b.native)(b.sizes.test);
            let eval = b
                .checksum_via_evaluator(b.sizes.test)
                .unwrap_or_else(|e| panic!("{}: {e}", b.name));
            assert_eq!(native, eval, "{} checksum mismatch", b.name);
        }
    }

    /// Every registered benchmark compiles at every level and validates.
    #[test]
    fn all_compile_and_validate() {
        for b in all() {
            for level in wacc::OptLevel::all() {
                let bytes = b
                    .compile(level)
                    .unwrap_or_else(|e| panic!("{} at {level}: {e}", b.name));
                let module = wasm_core::decode::decode(&bytes)
                    .unwrap_or_else(|e| panic!("{}: {e}", b.name));
                wasm_core::validate::validate(&module)
                    .unwrap_or_else(|e| panic!("{}: {e}", b.name));
            }
        }
    }
}
