//! Quickstart: compile a WaCC program to WebAssembly and run it on each
//! of the five standalone runtime engines.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use engines::{Engine, EngineKind};
use wasi_rt::WasiCtx;
use wasm_core::types::Value;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small program in WaCC, the workspace's mini-C language. It is
    // compiled to a real WebAssembly module importing WASI.
    let source = r#"
        export fn fib(n: i32) -> i32 {
            if (n < 2) { return n; }
            return fib(n - 1) + fib(n - 2);
        }

        export fn main() -> i32 {
            print_cstr("fib(30) = ");
            print_i32(fib(30));
            println();
            return 0;
        }
    "#;

    let wasm = wacc::compile_to_bytes(source, wacc::OptLevel::O2)?;
    println!("compiled {} bytes of Wasm\n", wasm.len());

    for kind in EngineKind::all() {
        let engine = Engine::new(kind);
        let t0 = std::time::Instant::now();
        let module = engine.compile(&wasm)?;
        let compile = t0.elapsed();

        let mut instance = module.instantiate(&wasi_rt::imports(), Box::new(WasiCtx::new()))?;
        let t1 = std::time::Instant::now();
        instance.invoke("main", &[])?;
        let exec = t1.elapsed();

        // Direct function calls work too:
        let fib10 = instance.invoke("fib", &[Value::I32(10)])?;
        assert_eq!(fib10, Some(Value::I32(55)));

        let ctx = instance
            .host_data()
            .downcast_ref::<WasiCtx>()
            .expect("wasi host data");
        print!(
            "{:<9} compile {:>9.3?}  exec {:>9.3?}  stdout: {}",
            kind.name(),
            compile,
            exec,
            String::from_utf8_lossy(ctx.stdout())
        );
    }
    Ok(())
}
