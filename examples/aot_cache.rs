//! AOT compilation caching: precompile a module once, persist the
//! artifact, and load it back for fast startup — the workflow behind
//! Figure 3 and Table 4 of the paper.
//!
//! ```sh
//! cargo run --release --example aot_cache
//! ```

use engines::{Engine, EngineKind};
use wasi_rt::WasiCtx;
use wasm_core::types::Value;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A compile-heavy module: many functions give the optimizing tiers
    // real work, so AOT loading has something to save.
    let mut source = String::new();
    for i in 0..60 {
        source.push_str(&format!(
            "fn work{i}(x: i32) -> i32 {{
                 let acc: i32 = x;
                 for (let j: i32 = 0; j < 8; j += 1) {{
                     acc = acc * 31 + j + {i};
                 }}
                 return acc;
             }}\n"
        ));
    }
    source.push_str("export fn run(n: i32) -> i32 {\n    let acc: i32 = n;\n");
    for i in 0..60 {
        source.push_str(&format!("    acc = acc ^ work{i}(acc);\n"));
    }
    source.push_str("    return acc;\n}\n");

    let wasm = wacc::compile_to_bytes(&source, wacc::OptLevel::O2)?;
    println!("module: {} bytes of Wasm, 60 functions\n", wasm.len());

    let dir = std::env::temp_dir().join("wabench-aot-cache");
    std::fs::create_dir_all(&dir)?;

    // Only the compiling engines have an AOT mode; interpreters reject it.
    for kind in EngineKind::all().iter().copied().filter(|k| k.tier().is_some()) {
        let engine = Engine::new(kind);

        // Cold start: full compilation.
        let t0 = std::time::Instant::now();
        let artifact = engine.precompile(&wasm)?;
        let compile = t0.elapsed();

        let path = dir.join(format!("{}.aot", kind.name()));
        std::fs::write(&path, &artifact)?;

        // Warm start: deserialize the artifact instead of compiling.
        let bytes = std::fs::read(&path)?;
        let t1 = std::time::Instant::now();
        let module = engine.load_artifact(&bytes)?;
        let load = t1.elapsed();

        let mut instance = module.instantiate(&wasi_rt::imports(), Box::new(WasiCtx::new()))?;
        let out = instance.invoke("run", &[Value::I32(7)])?;

        println!(
            "{:<12} compile {:>9.3?}  load {:>9.3?}  ({:>5.1}x faster startup)  artifact {} bytes  run(7) = {:?}",
            kind.name(),
            compile,
            load,
            compile.as_secs_f64() / load.as_secs_f64().max(1e-9),
            artifact.len(),
            out
        );

        // Artifacts are validated on load: corruption is a clean error,
        // never undefined behaviour.
        let truncated = &artifact[..artifact.len() - 7];
        match engine.load_artifact(truncated) {
            Err(e) => println!("{:<12} truncated artifact rejected: {e}", ""),
            Ok(_) => unreachable!("truncated artifact must not load"),
        }
    }

    // An interpreter has nothing to precompile.
    let err = Engine::new(EngineKind::Wasm3).precompile(&wasm).unwrap_err();
    println!("\nwasm3: {err}");
    Ok(())
}
