//! Architectural profiling: run a benchmark on two engines under the
//! cache/branch-predictor simulator and compare the counters — the
//! reproduction's version of `perf stat`.
//!
//! ```sh
//! cargo run --release --example compile_and_profile -- gemm
//! ```

use engines::EngineKind;
use harness::runner;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "gemm".into());
    let b = suite::by_name(&name).unwrap_or_else(|| {
        eprintln!("unknown benchmark {name:?}");
        std::process::exit(2);
    });
    let n = b.sizes.test;
    let bytes = runner::wasm_bytes(b, wacc::OptLevel::O2);

    println!("{} (n = {n}), counters from the architectural simulator:\n", b.name);
    println!(
        "{:<10} {:>14} {:>14} {:>6} {:>12} {:>9} {:>12} {:>9}",
        "config", "instructions", "cycles", "IPC", "branches", "miss%", "LLC refs", "miss%"
    );
    let native = runner::run_native_profiled(&bytes, n);
    let print_row = |label: &str, c: &archsim::Counters| {
        println!(
            "{label:<10} {:>14} {:>14} {:>6.2} {:>12} {:>8.2}% {:>12} {:>8.2}%",
            c.instructions,
            c.cycles,
            c.ipc(),
            c.branches,
            c.branch_miss_ratio() * 100.0,
            c.cache_references,
            c.cache_miss_ratio() * 100.0,
        );
    };
    print_row("native", &native);
    for kind in EngineKind::all() {
        let c = runner::run_profiled(kind, &bytes, n);
        print_row(kind.name(), &c);
    }
}
