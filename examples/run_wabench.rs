//! Run one WABench benchmark across all engines and print the paper-style
//! normalized execution times.
//!
//! ```sh
//! cargo run --release --example run_wabench -- crc32 [test|profile|timing]
//! ```

use engines::EngineKind;
use harness::runner;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let name = args.first().map(String::as_str).unwrap_or("crc32");
    let scale = match args.get(1).map(String::as_str) {
        Some("timing") => runner::Scale::Timing,
        Some("test") => runner::Scale::Test,
        _ => runner::Scale::Profile,
    };
    let Some(b) = suite::by_name(name) else {
        eprintln!("unknown benchmark {name:?}; available:");
        for b in suite::all() {
            eprintln!("  {:16} [{}] {}", b.name, b.group, b.description);
        }
        std::process::exit(2);
    };

    let n = scale.arg(b);
    let expected = (b.native)(n);
    println!("{} ({}, {}), n = {n}", b.name, b.group, b.domain);

    let native_s = harness::stats::time_secs(
        || {
            std::hint::black_box((b.native)(n));
        },
        0.1,
        10,
    );
    println!("  {:<10} {:>12}", "native", harness::report::secs(native_s));

    let bytes = runner::wasm_bytes(b, wacc::OptLevel::O2);
    for kind in EngineKind::all() {
        let t = runner::run_engine(kind, &bytes, n, expected);
        println!(
            "  {:<10} {:>12}  (compile {}, exec {})  {:>8} vs native",
            kind.name(),
            harness::report::secs(t.total()),
            harness::report::secs(t.compile_s),
            harness::report::secs(t.exec_s),
            harness::report::ratio(t.total() / native_s),
        );
    }
}
