//! Compare every execution configuration on one benchmark: the five
//! engines, Wasmer's three backends, AOT on/off, and all four compiler
//! optimization levels.
//!
//! ```sh
//! cargo run --release --example engine_shootout -- quicksort
//! ```

use engines::{Backend, EngineKind};
use harness::report::{ratio, secs};
use harness::runner;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "quicksort".into());
    let b = suite::by_name(&name).unwrap_or_else(|| {
        eprintln!("unknown benchmark {name:?}");
        std::process::exit(2);
    });
    let n = b.sizes.profile;
    let expected = (b.native)(n);
    println!("== {} (n = {n}) ==\n", b.name);

    println!("-- engines (at -O2) --");
    let bytes = runner::wasm_bytes(b, wacc::OptLevel::O2);
    let base = runner::run_engine(EngineKind::Wasmtime, &bytes, n, expected).total();
    for kind in EngineKind::all() {
        let t = runner::run_engine(kind, &bytes, n, expected).total();
        println!("  {:<18} {:>10}  {:>7} of Wasmtime", kind.name(), secs(t), ratio(t / base));
    }

    println!("\n-- Wasmer backends --");
    for backend in Backend::all() {
        let t = runner::run_engine(EngineKind::Wasmer(backend), &bytes, n, expected).total();
        println!("  {:<18} {:>10}", backend.to_string(), secs(t));
    }

    println!("\n-- AOT (WAVM) --");
    let jit = runner::run_engine(EngineKind::Wavm, &bytes, n, expected);
    let (aot_compile, aot) = runner::run_engine_aot(EngineKind::Wavm, &bytes, n, expected);
    println!("  JIT total          {:>10}", secs(jit.total()));
    println!("  AOT compile (once) {:>10}", secs(aot_compile));
    println!("  AOT load + exec    {:>10}  ({} speedup)", secs(aot.total()), ratio(jit.total() / aot.total()));

    println!("\n-- optimization levels (Wasm3) --");
    let t0 = runner::run_engine(EngineKind::Wasm3, &runner::wasm_bytes(b, wacc::OptLevel::O0), n, expected).total();
    for level in wacc::OptLevel::all() {
        let t = runner::run_engine(EngineKind::Wasm3, &runner::wasm_bytes(b, level), n, expected).total();
        println!("  {:<5} {:>10}  ({} speedup vs -O0)", level.to_string(), secs(t), ratio(t0 / t));
    }
}
