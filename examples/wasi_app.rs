//! A WASI application end to end: the guest reads from stdin, transforms
//! the text, and writes to stdout — all through real `wasi_snapshot_preview1`
//! imports served by the in-memory WASI host.
//!
//! ```sh
//! cargo run --release --example wasi_app
//! ```

use engines::{Engine, EngineKind};
use wasi_rt::WasiCtx;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ROT13 over stdin, with a line count, exiting with the line count.
    let source = r#"
        export fn main() -> i32 {
            let lines: i32 = 0;
            let c: i32 = read_byte();
            while (c >= 0) {
                if (c >= 'a' && c <= 'z') {
                    c = 97 + remu(c - 97 + 13, 26);
                } else { if (c >= 'A' && c <= 'Z') {
                    c = 65 + remu(c - 65 + 13, 26);
                } else { if (c == '\n') {
                    lines += 1;
                } } }
                print_char(c);
                c = read_byte();
            }
            exit(lines);
            return 0;
        }
    "#;
    let wasm = wacc::compile_to_bytes(source, wacc::OptLevel::O2)?;

    let engine = Engine::new(EngineKind::Wasm3);
    let module = engine.compile(&wasm)?;
    let ctx = WasiCtx::with_stdin(b"Hello WebAssembly!\nGoodbye browsers.\n".to_vec());
    let mut instance = module.instantiate(&wasi_rt::imports(), Box::new(ctx))?;

    // proc_exit surfaces as a Trap::Exit, like a real process exit.
    match instance.invoke("main", &[]) {
        Err(engines::Trap::Exit(code)) => println!("guest exited with code {code}"),
        other => println!("guest finished: {other:?}"),
    }
    let ctx = instance.host_data().downcast_ref::<WasiCtx>().expect("wasi");
    println!("guest stdout:\n{}", String::from_utf8_lossy(ctx.stdout()));
    Ok(())
}
