//! Offline stub of `serde_derive` (see `vendor/README.md`).
//!
//! The workspace uses the serde derives purely as decoration on data
//! types; no code in the tree calls serialization at runtime. These
//! derives therefore expand to nothing, which keeps every
//! `#[derive(serde::Serialize, serde::Deserialize)]` compiling without
//! pulling `syn`/`quote` (unavailable offline). Swap in the real crate
//! if a serialization consumer ever lands.

use proc_macro::TokenStream;

/// No-op stand-in for `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
